package main

import (
	"strings"
	"testing"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/models"
	"repro/internal/spec"
)

func TestPaperName(t *testing.T) {
	cases := map[string]string{
		"dD3": "D3", "dU2": "U2", "dG1": "G1", "uP2": "uP2", "A1": "A1", "C1": "C1",
	}
	for in, want := range cases {
		if got := paperName(hgraph.ID(in)); got != want {
			t.Errorf("paperName(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestAllocAndClusterStrings(t *testing.T) {
	s := models.SetTopBox()
	im := core.Implement(s, spec.NewAllocation("uP2", "dG1", "dU2", "C1"), core.Options{}, nil)
	if im == nil {
		t.Fatal("implement failed")
	}
	as := allocString(im)
	if as != "C1, G1, U2, uP2" {
		t.Errorf("allocString = %q", as)
	}
	cs := clusterString(im)
	if cs != "yD1, yG1, yI, yU1, yU2" {
		t.Errorf("clusterString = %q", cs)
	}
	if strings.Contains(cs, "yD,") || strings.Contains(cs, "yG,") {
		t.Error("parent clusters must be omitted")
	}
}

func TestTimingPolicyFlag(t *testing.T) {
	cases := map[string]bind.TimingPolicy{
		"paper": bind.TimingPaper, "none": bind.TimingNone,
		"ll": bind.TimingLiuLayland, "liu-layland": bind.TimingLiuLayland,
		"rta": bind.TimingRTA, "anything-else": bind.TimingPaper,
	}
	for in, want := range cases {
		if got := timingPolicy(in); got != want {
			t.Errorf("timingPolicy(%s) = %v, want %v", in, got, want)
		}
	}
}
