package main

import (
	"strings"
	"testing"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/models"
	"repro/internal/spec"
)

func TestPaperName(t *testing.T) {
	cases := map[string]string{
		"dD3": "D3", "dU2": "U2", "dG1": "G1", "uP2": "uP2", "A1": "A1", "C1": "C1",
	}
	for in, want := range cases {
		if got := paperName(hgraph.ID(in)); got != want {
			t.Errorf("paperName(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestAllocAndClusterStrings(t *testing.T) {
	s := models.SetTopBox()
	im := core.Implement(s, spec.NewAllocation("uP2", "dG1", "dU2", "C1"), core.Options{}, nil)
	if im == nil {
		t.Fatal("implement failed")
	}
	as := allocString(im)
	if as != "C1, G1, U2, uP2" {
		t.Errorf("allocString = %q", as)
	}
	cs := clusterString(im)
	if cs != "yD1, yG1, yI, yU1, yU2" {
		t.Errorf("clusterString = %q", cs)
	}
	if strings.Contains(cs, "yD,") || strings.Contains(cs, "yG,") {
		t.Error("parent clusters must be omitted")
	}
}

func TestTimingPolicyFlag(t *testing.T) {
	cases := map[string]bind.TimingPolicy{
		"paper": bind.TimingPaper, "none": bind.TimingNone,
		"ll": bind.TimingLiuLayland, "liu-layland": bind.TimingLiuLayland,
		"rta": bind.TimingRTA, "anything-else": bind.TimingPaper,
	}
	for in, want := range cases {
		if got := timingPolicy(in); got != want {
			t.Errorf("timingPolicy(%s) = %v, want %v", in, got, want)
		}
	}
}

// baseFlags returns a valid default flag set; tests mutate one aspect
// and assert on problems().
func baseFlags() *cliFlags {
	return &cliFlags{
		checkpointEvery: 64, cache: "on", workers: 1,
		explicit: map[string]bool{},
	}
}

func TestFlagValidationAccepts(t *testing.T) {
	cases := []func(*cliFlags){
		func(f *cliFlags) {},
		func(f *cliFlags) { f.table1 = true },
		func(f *cliFlags) { f.compare = true },
		func(f *cliFlags) { f.checkpoint = "ck.json" },
		func(f *cliFlags) { f.checkpoint = "ck.json"; f.resume = true },
		func(f *cliFlags) {
			f.checkpoint = "ck.json"
			f.checkpointEvery = 8
			f.explicit["checkpoint"] = true
			f.explicit["checkpoint-every"] = true
		},
		func(f *cliFlags) { f.workers = 0 },
		func(f *cliFlags) { f.workers = 4; f.batch = 32 },
		func(f *cliFlags) { f.timeout = 1 },
		func(f *cliFlags) { f.cache = "off" },
		func(f *cliFlags) { f.enumerator = "symbolic"; f.explicit["enumerator"] = true },
		func(f *cliFlags) { f.enumerator = "auto" },
		func(f *cliFlags) { f.producers = 2; f.explicit["producers"] = true },
	}
	for i, mutate := range cases {
		f := baseFlags()
		mutate(f)
		if probs := f.problems(); len(probs) != 0 {
			t.Errorf("case %d: valid flags rejected: %v", i, probs)
		}
	}
}

func TestFlagValidationRejects(t *testing.T) {
	cases := []struct {
		mutate func(*cliFlags)
		want   string
	}{
		{func(f *cliFlags) { f.checkpoint = "ck.json"; f.table1 = true }, "only apply to the default"},
		{func(f *cliFlags) { f.resume = true; f.verify = true }, "only apply to the default"},
		{func(f *cliFlags) { f.resume = true }, "-resume requires"},
		{func(f *cliFlags) { f.checkpointEvery = 0 }, "-checkpoint-every must be > 0"},
		{func(f *cliFlags) { f.explicit["checkpoint-every"] = true }, "-checkpoint-every requires -checkpoint"},
		{func(f *cliFlags) { f.timeout = -1 }, "-timeout"},
		{func(f *cliFlags) { f.cache = "maybe" }, "-cache"},
		{func(f *cliFlags) { f.workers = -1 }, "-workers must be >= 0"},
		{func(f *cliFlags) { f.workers = 4; f.family = true }, "-workers only applies"},
		{func(f *cliFlags) { f.batch = -1; f.workers = 4 }, "-batch must be >= 0"},
		{func(f *cliFlags) { f.batch = 8 }, "-batch only applies"},
		{func(f *cliFlags) { f.enumerator = "bdd" }, "-enumerator must be"},
		{func(f *cliFlags) { f.producers = -1 }, "-producers must be"},
		{func(f *cliFlags) { f.producers = 2; f.verify = true; f.explicit["producers"] = true }, "-producers only applies"},
		{func(f *cliFlags) { f.enumerator = "symbolic"; f.table1 = true; f.explicit["enumerator"] = true }, "-enumerator only applies"},
		{func(f *cliFlags) { f.prof.CPUProfile = "p.out"; f.prof.Trace = "p.out" }, "same file"},
	}
	for i, tc := range cases {
		f := baseFlags()
		tc.mutate(f)
		probs := f.problems()
		found := false
		for _, p := range probs {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("case %d: want a problem matching %q, got %v", i, tc.want, probs)
		}
	}
}

// Every rejection must surface all problems at once, not just the first.
func TestFlagValidationReportsAll(t *testing.T) {
	f := baseFlags()
	f.resume = true
	f.timeout = -1
	f.workers = -2
	if probs := f.problems(); len(probs) < 3 {
		t.Errorf("want >= 3 problems, got %v", probs)
	}
}
