// Command casestudy reproduces the paper's Section 5 evaluation on the
// Set-Top box specification: Table 1, the Pareto-optimal set, the
// search-space reduction statistics, and the Fig. 4 trade-off curve.
//
// Usage:
//
//	casestudy                  # run EXPLORE, print the Pareto table + stats
//	casestudy -table1          # print Table 1 (possible mappings)
//	casestudy -tradeoff        # print the Fig. 4 trade-off curve as TSV
//	casestudy -compare         # compare EXPLORE, exhaustive, random, EA
//	casestudy -timing=rta      # ablation: exact response-time analysis
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"repro/internal/activation"
	"repro/internal/bind"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/hgraph"
	"repro/internal/lint"
	"repro/internal/listsched"
	"repro/internal/models"
	"repro/internal/profiling"
	"repro/internal/spec"
)

// paperName maps internal unit IDs to the paper's component names.
func paperName(id hgraph.ID) string {
	switch id {
	case "dD3":
		return "D3"
	case "dU2":
		return "U2"
	case "dG1":
		return "G1"
	default:
		return strings.Replace(string(id), "uP", "uP", 1)
	}
}

func allocString(im *core.Implementation) string {
	var parts []string
	for _, id := range im.Allocation.IDs() {
		parts = append(parts, paperName(id))
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

func clusterString(im *core.Implementation) string {
	var parts []string
	for _, c := range im.Clusters {
		cs := string(c)
		// Only the leaf clusters are listed in the paper's table.
		switch cs {
		case "GP", "gG", "gD":
			continue
		}
		parts = append(parts, "y"+strings.TrimPrefix(cs, "g"))
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

func timingPolicy(name string) bind.TimingPolicy {
	switch name {
	case "none":
		return bind.TimingNone
	case "ll", "liu-layland":
		return bind.TimingLiuLayland
	case "rta":
		return bind.TimingRTA
	default:
		return bind.TimingPaper
	}
}

// cliFlags carries the parsed command line for validation; explicit
// indicates which flags the user actually set (flag.Visit), so
// incompatible-combination checks do not misfire on defaults.
type cliFlags struct {
	table1          bool
	tradeoff        bool
	compare         bool
	verify          bool
	family          bool
	timeout         time.Duration
	checkpoint      string
	checkpointEvery int
	resume          bool
	cache           string
	workers         int
	batch           int
	producers       int
	enumerator      string
	prof            profiling.Flags
	explicit        map[string]bool
}

// modeSelected reports whether a non-default analysis mode is active
// (they all preclude checkpointing and parallel workers).
func (f *cliFlags) modeSelected() bool {
	return f.table1 || f.tradeoff || f.compare || f.verify || f.family
}

// problems returns every reason the flag combination is rejected; a
// non-empty result exits with status 2 before any exploration starts.
func (f *cliFlags) problems() []string {
	var out []string
	if (f.checkpoint != "" || f.resume) && f.modeSelected() {
		out = append(out, "-checkpoint/-resume only apply to the default Pareto run")
	}
	if f.resume && f.checkpoint == "" {
		out = append(out, "-resume requires -checkpoint")
	}
	if f.checkpointEvery <= 0 {
		out = append(out, "-checkpoint-every must be > 0")
	}
	if f.explicit["checkpoint-every"] && f.checkpoint == "" {
		out = append(out, "-checkpoint-every requires -checkpoint (there is no snapshot file to write)")
	}
	if f.timeout < 0 {
		out = append(out, "-timeout must be >= 0")
	}
	if f.cache != "on" && f.cache != "off" {
		out = append(out, "-cache must be on or off")
	}
	if f.workers < 0 {
		out = append(out, "-workers must be >= 0 (0 selects GOMAXPROCS)")
	}
	if f.workers != 1 && f.modeSelected() {
		out = append(out, "-workers only applies to the default Pareto run")
	}
	if f.batch < 0 {
		out = append(out, "-batch must be >= 0 (0 selects adaptive sizing)")
	}
	if f.batch != 0 && f.workers == 1 {
		out = append(out, "-batch only applies to parallel exploration (-workers != 1)")
	}
	if f.producers < 0 {
		out = append(out, "-producers must be >= 0 (0 selects the automatic producer count)")
	}
	if f.explicit["producers"] && f.modeSelected() {
		out = append(out, "-producers only applies to the default Pareto run")
	}
	if !core.ValidEnumerator(f.enumerator) {
		out = append(out, "-enumerator must be auto, bitset or symbolic")
	}
	if f.explicit["enumerator"] && f.modeSelected() {
		out = append(out, "-enumerator only applies to the default Pareto run")
	}
	out = append(out, f.prof.Problems()...)
	return out
}

func main() {
	os.Exit(run())
}

// run is main minus the exit: returning (instead of os.Exit) lets the
// deferred profiling teardown flush -cpuprofile/-memprofile/-trace on
// every path.
func run() int {
	table1 := flag.Bool("table1", false, "print Table 1 (possible mappings and latencies)")
	tradeoff := flag.Bool("tradeoff", false, "print the Fig. 4 flexibility/cost trade-off as TSV")
	compare := flag.Bool("compare", false, "compare EXPLORE against exhaustive, random and EA baselines")
	verify := flag.Bool("verify", false, "re-verify every front implementation end to end (binding rules, schedules, activation rules)")
	family := flag.Bool("family", false, "product-family analysis of the front (entry costs, commonality, marginal costs)")
	timing := flag.String("timing", "paper", "timing policy: paper|rta|ll|none")
	weighted := flag.Bool("weighted", false, "use the weighted flexibility metric (footnote 2)")
	lintMode := flag.String("lint", "on", "preflight static analysis: on | off (see docs/lint-codes.md)")
	timeout := flag.Duration("timeout", 0, "stop after this duration and print the best-so-far result (0 = no limit)")
	ckPath := flag.String("checkpoint", "", "periodically write an atomic resume snapshot (default run only)")
	ckEvery := flag.Int("checkpoint-every", 64, "candidates between periodic checkpoints")
	resume := flag.Bool("resume", false, "continue from the -checkpoint snapshot (default run only)")
	cache := flag.String("cache", "on", "cross-candidate evaluation caches: on | off (off is the uncached differential/ablation baseline)")
	workers := flag.Int("workers", 1, "parallel exploration workers for the default run (0 = GOMAXPROCS); the front is identical to sequential")
	batch := flag.Int("batch", 0, "candidates per parallel range job (0 = adaptive); the front is identical for every batch size")
	producers := flag.Int("producers", 0, "candidate-producer shards merged back into cost order (0 = auto); the stream is identical for every count (see docs/performance.md)")
	enumerator := flag.String("enumerator", "auto", "possible-allocation producer: auto | bitset | symbolic; the front is identical either way (see docs/symbolic.md)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	fl := &cliFlags{
		table1: *table1, tradeoff: *tradeoff, compare: *compare, verify: *verify,
		family: *family, timeout: *timeout, checkpoint: *ckPath, checkpointEvery: *ckEvery,
		resume: *resume, cache: *cache, workers: *workers, batch: *batch, producers: *producers, enumerator: *enumerator,
		prof:     profiling.Flags{CPUProfile: *cpuProfile, MemProfile: *memProfile, Trace: *tracePath},
		explicit: map[string]bool{},
	}
	flag.Visit(func(f *flag.Flag) { fl.explicit[f.Name] = true })
	if probs := fl.problems(); len(probs) > 0 {
		for _, p := range probs {
			fmt.Fprintln(os.Stderr, "casestudy:", p)
		}
		return 2
	}
	stopProf, err := fl.prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "casestudy:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "casestudy:", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	s := models.SetTopBox()
	if *lintMode != "off" {
		if err := lint.Preflight(s, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "casestudy:", err, "(rerun with -lint=off to explore anyway)")
			return 1
		}
	}
	opts := core.Options{Timing: timingPolicy(*timing), Weighted: *weighted, DisableCache: *cache == "off", Batch: *batch, Producers: *producers, Enumerator: core.Enumerator(*enumerator)}

	switch {
	case *table1:
		printTable1()
	case *tradeoff:
		r := core.ExploreContext(ctx, s, opts)
		var pts []dot.TradeoffPoint
		for _, im := range r.Front {
			pts = append(pts, dot.TradeoffPoint{
				Cost: im.Cost, Flexibility: im.Flexibility, Label: allocString(im),
			})
		}
		fmt.Print(dot.TradeoffTSV(pts))
	case *compare:
		return compareExplorers(ctx, s, opts)
	case *verify:
		return verifyFront(ctx, s, opts)
	case *family:
		r := core.ExploreContext(ctx, s, opts)
		fmt.Print(core.AnalyzeFamily(s, r.Front))
	default:
		var writer *checkpoint.Writer
		if *ckPath != "" {
			writer = &checkpoint.Writer{Path: *ckPath}
			opts.ProgressEvery = *ckEvery
			opts.Progress = func(p core.Progress) {
				snap, err := checkpoint.Capture(s, opts, p)
				if err == nil {
					err = writer.Save(snap)
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "casestudy:", err)
				}
			}
		}
		if *resume {
			snap, err := checkpoint.Load(*ckPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "casestudy:", err)
				return 1
			}
			res, err := snap.Resume(s, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "casestudy:", err)
				return 1
			}
			opts.Resume = res
			fmt.Fprintf(os.Stderr, "casestudy: resuming at candidate %d (%d front entries)\n",
				snap.Cursor, len(snap.Front))
		}
		var r *core.Result
		if *workers != 1 {
			r = core.ExploreParallelContext(ctx, s, opts, *workers, 0)
		} else {
			r = core.ExploreContext(ctx, s, opts)
		}
		if writer != nil {
			snap, err := checkpoint.FromResult(s, opts, r)
			if err == nil {
				err = writer.Save(snap)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "casestudy:", err)
			}
		}
		if r.Interrupted {
			fmt.Fprintf(os.Stderr, "casestudy: interrupted (%s) at candidate %d; the table below covers the explored prefix\n",
				r.Reason, r.Cursor)
		}
		fmt.Println("Set-Top box case study (Section 5) — Pareto-optimal set:")
		fmt.Println()
		fmt.Printf("%-26s | %-40s | %6s | %2s\n", "Resources", "Clusters", "c", "f")
		fmt.Println(strings.Repeat("-", 84))
		for _, im := range r.Front {
			fmt.Printf("%-26s | %-40s | $%5.0f | %2.0f\n",
				allocString(im), clusterString(im), im.Cost, im.Flexibility)
		}
		fmt.Println()
		st := r.Stats
		fmt.Printf("design space        : 2^25 = %.0f design points\n", st.DesignSpace)
		fmt.Printf("allocation subsets  : 2^14 = %.0f (scanned %d in cost order)\n", st.AllocSpace, st.Scanned)
		fmt.Printf("possible allocations: %d (flexibility estimated for each)\n", st.PossibleAllocations)
		fmt.Printf("implementations     : %d attempted, %d feasible\n", st.Attempted, st.Feasible)
		fmt.Printf("binding solver      : %d runs over %d behaviours (%d search nodes)\n",
			st.BindingRuns, st.ECSTested, st.BindingNodes)
		if c := st.Cache; c != (core.CacheStats{}) {
			fmt.Printf("evaluation caches   : %d bindings reused / %d solved, flatten %d/%d hits (problem/arch)\n",
				c.BindHits(), c.BindMisses, c.FlattenHits, c.ArchFlattenHits)
		}
		if p := st.Pipeline; p.Workers > 0 {
			fmt.Printf("parallel pipeline   : %d workers, queue %d (high water %d), %d commit stalls, %s busy\n",
				p.Workers, p.QueueDepth, p.QueueHighWater, p.CommitStalls,
				time.Duration(p.BusyNanos).Round(time.Millisecond))
			fmt.Printf("range jobs          : %d committed (batch size %d), %d bound publishes\n",
				p.BatchesCommitted, p.BatchSize, p.BoundPublishes)
		}
		if p := st.Pipeline; p.Producers > 0 {
			fmt.Printf("sharded producers   : %d shards, %s busy, %d merge stalls\n",
				p.Producers, time.Duration(p.ProducerBusyNanos).Round(time.Millisecond), p.MergeStalls)
		}
		fmt.Printf("maximum flexibility : %g\n", r.MaxFlexibility)
	}
	return 0
}

func printTable1() {
	resources := []hgraph.ID{"uP1", "uP2", "A1", "A2", "A3", "D3", "U2", "G1"}
	fmt.Printf("%-8s", "Process")
	for _, r := range resources {
		fmt.Printf(" %5s", r)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 8+6*len(resources)))
	for _, row := range models.Table1() {
		fmt.Printf("%-8s", row.Process)
		for _, r := range resources {
			if lat, ok := row.Latencies[r]; ok {
				fmt.Printf(" %5.0f", lat)
			} else {
				fmt.Printf(" %5s", "-")
			}
		}
		fmt.Println()
	}
}

func compareExplorers(ctx context.Context, s *spec.Spec, opts core.Options) int {
	type run struct {
		name string
		res  *core.Result
	}
	runs := []run{
		{"EXPLORE (paper)", core.ExploreContext(ctx, s, opts)},
		{"exhaustive", core.ExhaustiveContext(ctx, s, opts)},
		{"random (1000)", core.RandomSearchContext(ctx, s, opts, 1000, 1)},
		{"evolutionary", core.EvolutionaryContext(ctx, s, opts, core.EAConfig{Seed: 1})},
	}
	fmt.Printf("%-16s | %6s | %9s | %8s | %9s\n", "explorer", "front", "attempted", "bindings", "nodes")
	fmt.Println(strings.Repeat("-", 62))
	for _, r := range runs {
		fmt.Printf("%-16s | %6d | %9d | %8d | %9d\n", r.name, len(r.res.Front),
			r.res.Stats.Attempted, r.res.Stats.BindingRuns, r.res.Stats.BindingNodes)
	}
	return 0
}

// verifyFront re-derives every Pareto implementation and checks each of
// its behaviours with the independent validators: binding feasibility
// rules, a constructed static schedule, and the hierarchical activation
// rules over a round-robin schedule of all behaviours. It also reports
// the latency head-room an optimizing re-binding recovers.
func verifyFront(ctx context.Context, s *spec.Spec, opts core.Options) int {
	opts.AllBehaviours = true
	r := core.ExploreContext(ctx, s, opts)
	failures := 0
	for _, im := range r.Front {
		var phases []activation.Phase
		saved, optimal := 0.0, 0.0
		for i, beh := range im.Behaviours {
			fp, err := s.Problem.Flatten(beh.ECS.Selection)
			if err != nil {
				fmt.Println("FAIL flatten:", err)
				failures++
				continue
			}
			av, err := s.ArchViewFor(im.Allocation, beh.ArchSelection)
			if err != nil {
				fmt.Println("FAIL arch view:", err)
				failures++
				continue
			}
			if err := bind.Check(s, fp, av, beh.Binding, bind.Options{Timing: bind.TimingPaper}); err != nil {
				fmt.Println("FAIL binding rules:", err)
				failures++
			}
			sch, err := listsched.Build(s, fp, beh.Binding)
			if err != nil {
				fmt.Println("FAIL schedule:", err)
				failures++
			} else if err := listsched.Validate(s, fp, beh.Binding, sch); err != nil {
				fmt.Println("FAIL schedule validation:", err)
				failures++
			}
			if best, ok := bind.FindMinLatency(s, fp, av, bind.Options{Timing: bind.TimingPaper}); ok {
				saved += bind.TotalLatency(s, beh.Binding) - bind.TotalLatency(s, best.Binding)
				optimal += bind.TotalLatency(s, best.Binding)
			}
			phases = append(phases, activation.Phase{
				Start:         float64(i) * 10000,
				Selection:     beh.ECS.Selection,
				ArchSelection: beh.ArchSelection,
				Binding:       beh.Binding,
			})
		}
		sched := &activation.Schedule{Phases: phases}
		if err := activation.CheckSchedule(s, im.Allocation, sched, bind.Options{Timing: bind.TimingPaper}); err != nil {
			fmt.Println("FAIL activation rules:", err)
			failures++
		}
		fmt.Printf("$%4.0f f=%-2g: %d behaviours verified; re-binding saves %4.0f ns total latency (optimum %4.0f)\n",
			im.Cost, im.Flexibility, len(im.Behaviours), saved, optimal)
	}
	if failures > 0 {
		fmt.Printf("%d verification failures\n", failures)
		return 1
	}
	fmt.Println("all implementations verified end to end")
	return 0
}
