// Command flexvet runs the repository's FX001–FX007 analyzer suite
// (see internal/analysis and docs/analyzers.md).
//
// It speaks two protocols:
//
//	flexvet [packages...]            standalone: load packages via the
//	                                 go command and report findings
//	go vet -vettool=$(which flexvet) unit-checker: the go command
//	                                 invokes flexvet once per package
//	                                 with a .cfg file describing the
//	                                 compilation unit
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet handshake: `flexvet -V=full` must print a stable identity
	// line ending in a content-derived build ID, which the go command
	// folds into its action cache key.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		return printVersion()
	}
	// go vet introspects the tool's analyzer flags as JSON before the
	// first real invocation; flexvet exposes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	fs := flag.NewFlagSet("flexvet", flag.ContinueOnError)
	listFlag := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	rest := fs.Args()
	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%s %s: %s\n", a.Code, a.Name, a.Doc)
		}
		return 0
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return standalone(rest)
}

func printVersion() int {
	var sum [sha256.Size]byte
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("flexvet version devel comments-go-here buildID=%02x\n", sum)
	return 0
}

func standalone(patterns []string) int {
	pkgs, err := analysis.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found := 0
	for _, p := range pkgs {
		diags, err := analysis.RunAnalyzers(p, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", p.Fset.Position(d.Pos), d.Message)
			found++
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}
