package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON configuration file the go command hands a
// -vettool for each compilation unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one compilation unit under the go vet driver.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "flexvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The driver requires the .vetx facts file to exist even though
	// flexvet exchanges no facts between packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Test files are excluded: the invariants flexvet enforces are
	// about production explorer code, and tests legitimately use wall
	// clocks and unsorted map dumps.
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0 // external test package: nothing but _test.go files
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("flexvet: no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	p := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}
	diags, err := analysis.RunAnalyzers(p, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
