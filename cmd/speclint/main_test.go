package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chdirRepoRoot makes corpus paths in the output stable
// ("testdata/lint/SL001.json") regardless of the package directory.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	})
}

// corpusFiles returns the seeded-defect corpus, one file per code.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "lint", "SL*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	sort.Strings(files)
	return files
}

func codeOf(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".json")
}

func checkGolden(t *testing.T, goldenPath string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestCorpusText checks that every seeded-defect file is flagged with
// its eponymous code in text mode and that the full rendering matches
// the golden output.
func TestCorpusText(t *testing.T) {
	chdirRepoRoot(t)
	for _, f := range corpusFiles(t) {
		code := codeOf(f)
		var stdout, stderr bytes.Buffer
		exit := run([]string{f}, &stdout, &stderr)
		if stderr.Len() > 0 {
			t.Errorf("%s: unexpected stderr: %s", f, stderr.String())
		}
		if !strings.Contains(stdout.String(), code) {
			t.Errorf("%s: output does not flag %s:\n%s", f, code, stdout.String())
		}
		wantExit := 0
		if strings.Contains(stdout.String(), "error SL") {
			wantExit = 1
		}
		if exit != wantExit {
			t.Errorf("%s: exit = %d, want %d", f, exit, wantExit)
		}
		checkGolden(t, filepath.Join("testdata", "lint", "golden", code+".txt"), stdout.Bytes())
	}
}

// TestCorpusJSON checks the JSON rendering against golden files and
// that it parses back into diagnostics carrying the eponymous code.
func TestCorpusJSON(t *testing.T) {
	chdirRepoRoot(t)
	for _, f := range corpusFiles(t) {
		code := codeOf(f)
		var stdout, stderr bytes.Buffer
		run([]string{"-format", "json", f}, &stdout, &stderr)
		if stderr.Len() > 0 {
			t.Errorf("%s: unexpected stderr: %s", f, stderr.String())
		}
		var rep struct {
			Spec        string `json:"spec"`
			Diagnostics []struct {
				Code, Severity, Element, Message string
			} `json:"diagnostics"`
		}
		if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
			t.Errorf("%s: bad JSON: %v", f, err)
			continue
		}
		found := false
		for _, d := range rep.Diagnostics {
			if d.Code == code {
				found = true
			}
			if d.Severity == "" || d.Element == "" || d.Message == "" {
				t.Errorf("%s: incomplete diagnostic %+v", f, d)
			}
		}
		if !found {
			t.Errorf("%s: JSON output does not flag %s", f, code)
		}
		checkGolden(t, filepath.Join("testdata", "lint", "golden", code+".json.golden"), stdout.Bytes())
	}
}

// TestCleanSpec: a defect-free specification produces no diagnostics
// and exit code 0.
func TestCleanSpec(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	exit := run([]string{filepath.Join("testdata", "lint", "clean.json")}, &stdout, &stderr)
	if exit != 0 {
		t.Errorf("exit = %d, want 0; output:\n%s%s", exit, stdout.String(), stderr.String())
	}
	if strings.Contains(stdout.String(), "SL0") {
		t.Errorf("clean spec produced diagnostics:\n%s", stdout.String())
	}
}

// TestSetTopLintsClean: the shipped case-study file must lint clean.
func TestSetTopLintsClean(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	exit := run([]string{filepath.Join("testdata", "settop.json")}, &stdout, &stderr)
	if exit != 0 || strings.Contains(stdout.String(), "SL0") {
		t.Errorf("settop.json lints dirty (exit %d):\n%s%s", exit, stdout.String(), stderr.String())
	}
}

// TestWholeCorpusExitsNonZero: linting the whole seeded corpus in one
// invocation must fail the build (exit 1).
func TestWholeCorpusExitsNonZero(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	if exit := run(corpusFiles(t), &stdout, &stderr); exit != 1 {
		t.Errorf("exit = %d, want 1", exit)
	}
}

func TestCodesListing(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if exit := run([]string{"-codes"}, &stdout, &stderr); exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	for i := 1; i <= 10; i++ {
		code := fmt.Sprintf("SL%03d", i)
		if !strings.Contains(stdout.String(), code) {
			t.Errorf("-codes listing misses %s", code)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if exit := run(nil, &stdout, &stderr); exit != 2 {
		t.Errorf("no args: exit = %d, want 2", exit)
	}
	if exit := run([]string{"-format", "xml", "x.json"}, &stdout, &stderr); exit != 2 {
		t.Errorf("bad format: exit = %d, want 2", exit)
	}
	if exit := run([]string{"/nonexistent-spec.json"}, &stdout, &stderr); exit != 2 {
		t.Errorf("missing file: exit = %d, want 2", exit)
	}
}
