// Command speclint statically analyzes hierarchical specification
// graphs (the JSON format of docs/spec-format.md) and reports modelling
// defects — unmappable processes, dead clusters, communication-
// infeasible dependences, unsatisfiable timing and more — as located,
// coded diagnostics before any exploration is run. See
// docs/lint-codes.md for the full catalogue.
//
// Usage:
//
//	speclint system.json             # lint, human-readable output
//	speclint -format json system.json
//	speclint -codes                  # list all diagnostic codes
//	explore -spec system.json        # the same checks run as a preflight
//
// speclint accepts files that spec validation rejects: every structural
// violation surfaces as a diagnostic instead of aborting the run. The
// exit code is 1 when any error-severity diagnostic is found, 2 on
// usage or read failures, and 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
	"repro/internal/spec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("speclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "output format: text | json")
	codes := fs.Bool("codes", false, "list every diagnostic code and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: speclint [-format text|json] [-codes] <spec.json ...>  (- for stdin)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *codes {
		for _, p := range lint.AllPasses() {
			fmt.Fprintf(stdout, "%s %s\n    %s\n", p.Code(), p.Name(), p.Doc())
		}
		return 0
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "speclint: unknown format %q (text | json)\n", *format)
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	exit := 0
	var reports []*lint.Report
	for _, path := range fs.Args() {
		s, err := load(path)
		if err != nil {
			fmt.Fprintf(stderr, "speclint: %s: %v\n", path, err)
			return 2
		}
		rep := lint.NewEngine().Run(s)
		if rep.HasErrors() {
			exit = 1
		}
		if *format == "json" {
			reports = append(reports, rep)
			continue
		}
		for _, d := range rep.Diagnostics {
			fmt.Fprintf(stdout, "%s: %s\n", path, d)
		}
		errs, warns, infos := rep.Counts()
		fmt.Fprintf(stdout, "%s: %d error(s), %d warning(s), %d info(s)\n", path, errs, warns, infos)
	}
	if *format == "json" {
		var err error
		if len(reports) == 1 {
			err = reports[0].WriteJSON(stdout)
		} else {
			err = lint.WriteJSONReports(stdout, reports)
		}
		if err != nil {
			fmt.Fprintln(stderr, "speclint:", err)
			return 2
		}
	}
	return exit
}

// load reads a specification leniently: files that fail validation are
// still analyzed, their defects become diagnostics.
func load(path string) (*spec.Spec, error) {
	if path == "-" {
		return spec.ReadLenient(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return spec.ReadLenient(f)
}
