package main

import (
	"strings"
	"testing"
)

func TestRenderModels(t *testing.T) {
	cases := []struct {
		model, part, want string
	}{
		{"fig1", "spec", "decoder-problem"},
		{"fig3", "spec", "settop-problem"},
		{"fig2", "spec", "cluster_problem"},
		{"fig2", "problem", "decoder-problem"},
		{"fig2", "arch", "decoder-arch"},
		{"fig5", "spec", "cluster_arch"},
	}
	for _, c := range cases {
		out, err := render(c.model, "", c.part)
		if err != nil {
			t.Errorf("render(%s,%s): %v", c.model, c.part, err)
			continue
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("render(%s,%s) lacks %q", c.model, c.part, c.want)
		}
	}
}

func TestRenderFromFile(t *testing.T) {
	out, err := render("", "../../testdata/settop.json", "spec")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cluster_problem") || !strings.Contains(out, `"PD3" -> "D3"`) {
		t.Error("file-based rendering incomplete")
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := render("nope", "", "spec"); err == nil {
		t.Error("unknown model")
	}
	if _, err := render("", "", "spec"); err == nil {
		t.Error("no source")
	}
	if _, err := render("fig2", "", "nope"); err == nil {
		t.Error("unknown part")
	}
	if _, err := render("", "/nonexistent.json", "spec"); err == nil {
		t.Error("missing file")
	}
}

func TestRenderBDDModels(t *testing.T) {
	for _, model := range []string{"settop-bdd", "decoder-bdd"} {
		out, err := render(model, "", "spec")
		if err != nil {
			t.Fatalf("render(%s): %v", model, err)
		}
		if !strings.Contains(out, "digraph bdd") || !strings.Contains(out, "style=dashed") {
			t.Errorf("%s output not a BDD diagram", model)
		}
	}
	// The Set-Top equation reduces to "a processor is allocated".
	out, _ := render("settop-bdd", "", "spec")
	if !strings.Contains(out, `label="uP2"`) || !strings.Contains(out, `label="uP1"`) {
		t.Error("allocation BDD should test the processors")
	}
}
