// Command flexdot renders hierarchical graphs and specification graphs
// as Graphviz DOT, reproducing the visual structure of the paper's
// figures.
//
// Usage:
//
//	flexdot -model fig1            # Fig. 1: TV decoder problem graph
//	flexdot -model fig2            # Fig. 2: decoder specification graph
//	flexdot -model fig3            # Fig. 3: Set-Top problem graph
//	flexdot -model fig5            # Fig. 5: Set-Top specification graph
//	flexdot -spec system.json      # custom specification
//	flexdot -spec system.json -part problem
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/alloc"
	"repro/internal/dot"
	"repro/internal/models"
	"repro/internal/spec"
)

func main() {
	model := flag.String("model", "", "figure to render: fig1 | fig2 | fig3 | fig5 | sdr | settop-bdd | decoder-bdd")
	specPath := flag.String("spec", "", "path to a specification JSON file (- for stdin)")
	part := flag.String("part", "spec", "which part to render: spec | problem | arch")
	flag.Parse()

	out, err := render(*model, *specPath, *part)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexdot:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func render(model, specPath, part string) (string, error) {
	switch model {
	case "fig1":
		return dot.Hierarchical(models.DecoderProblem()), nil
	case "fig3":
		return dot.Hierarchical(models.SetTopProblem()), nil
	case "fig2":
		return renderSpec(models.Decoder(), part)
	case "fig5":
		return renderSpec(models.SetTopBox(), part)
	case "sdr":
		return renderSpec(models.SDR(), part)
	case "settop-bdd":
		return allocBDD(models.SetTopBox()), nil
	case "decoder-bdd":
		return allocBDD(models.Decoder()), nil
	case "":
		// fall through to -spec
	default:
		return "", fmt.Errorf("unknown model %q", model)
	}
	if specPath == "" {
		return "", fmt.Errorf("one of -model or -spec is required")
	}
	var s *spec.Spec
	var err error
	if specPath == "-" {
		s, err = spec.Read(os.Stdin)
	} else {
		f, ferr := os.Open(specPath)
		if ferr != nil {
			return "", ferr
		}
		defer f.Close()
		s, err = spec.Read(f)
	}
	if err != nil {
		return "", err
	}
	return renderSpec(s, part)
}

func renderSpec(s *spec.Spec, part string) (string, error) {
	switch part {
	case "spec":
		return dot.Specification(s), nil
	case "problem":
		return dot.Hierarchical(s.Problem), nil
	case "arch":
		return dot.Hierarchical(s.Arch), nil
	default:
		return "", fmt.Errorf("unknown part %q (spec | problem | arch)", part)
	}
}

// allocBDD renders the paper's "one boolean equation" — the
// possible-resource-allocation constraint — as a BDD diagram.
func allocBDD(s *spec.Spec) string {
	m, f, units := alloc.Symbolic(s)
	names := make([]string, len(units))
	for i, u := range units {
		names[i] = string(u.ID)
	}
	return m.DOT(f, names)
}
