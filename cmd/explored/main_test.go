package main

import (
	"strings"
	"testing"
	"time"
)

// baseFlags returns a valid default flag set; tests mutate one aspect
// and assert on problems().
func baseFlags() *cliFlags {
	return &cliFlags{
		addr: "localhost:8080", checkpointDir: "/tmp/ck",
		queueDepth: 16, maxRunning: 2, lintMode: "on",
		workers: 1, drainTimeout: 30 * time.Second,
		explicit: map[string]bool{},
	}
}

func TestFlagValidationAccepts(t *testing.T) {
	cases := []func(*cliFlags){
		func(f *cliFlags) {},
		func(f *cliFlags) { f.addr = ":0" },
		func(f *cliFlags) { f.queueDepth = 1; f.maxRunning = 1 },
		func(f *cliFlags) { f.highWater = 12; f.explicit["high-water"] = true },
		func(f *cliFlags) { f.highWater = 16; f.explicit["high-water"] = true },
		func(f *cliFlags) { f.maxDeadline = time.Minute },
		func(f *cliFlags) { f.jobTTL = time.Hour },
		func(f *cliFlags) { f.jobTTL = 0 },
		func(f *cliFlags) { f.workers = 0 },
		func(f *cliFlags) { f.workers = 8 },
		func(f *cliFlags) { f.lintMode = "off" },
		func(f *cliFlags) { f.drainTimeout = time.Second },
	}
	for i, mutate := range cases {
		f := baseFlags()
		mutate(f)
		if probs := f.problems(); len(probs) != 0 {
			t.Errorf("case %d: valid flags rejected: %v", i, probs)
		}
	}
}

func TestFlagValidationRejects(t *testing.T) {
	cases := []struct {
		mutate func(*cliFlags)
		want   string
	}{
		{func(f *cliFlags) { f.addr = "" }, "-addr"},
		{func(f *cliFlags) { f.checkpointDir = "" }, "-checkpoint-dir is required"},
		{func(f *cliFlags) { f.queueDepth = 0 }, "-queue-depth"},
		{func(f *cliFlags) { f.queueDepth = -4 }, "-queue-depth"},
		{func(f *cliFlags) { f.maxRunning = 0 }, "-max-running"},
		{func(f *cliFlags) { f.highWater = -1 }, "-high-water must be >= 0"},
		{func(f *cliFlags) { f.highWater = 17; f.explicit["high-water"] = true }, "must not exceed -queue-depth"},
		{func(f *cliFlags) { f.maxDeadline = -time.Second }, "-max-deadline"},
		{func(f *cliFlags) { f.jobTTL = -time.Minute }, "-job-ttl"},
		{func(f *cliFlags) { f.workers = -1 }, "-workers"},
		{func(f *cliFlags) { f.lintMode = "maybe" }, "-lint"},
		{func(f *cliFlags) { f.drainTimeout = 0 }, "-drain-timeout"},
		{func(f *cliFlags) { f.drainTimeout = -time.Second }, "-drain-timeout"},
	}
	for i, tc := range cases {
		f := baseFlags()
		tc.mutate(f)
		probs := f.problems()
		found := false
		for _, p := range probs {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("case %d: want a problem matching %q, got %v", i, tc.want, probs)
		}
	}
}

// Every rejection must surface all problems at once, not just the first.
func TestFlagValidationReportsAll(t *testing.T) {
	f := baseFlags()
	f.checkpointDir = ""
	f.queueDepth = 0
	f.workers = -1
	if probs := f.problems(); len(probs) < 3 {
		t.Errorf("want >= 3 problems, got %v", probs)
	}
}
