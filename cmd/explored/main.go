// Command explored serves the anytime exploration runtime as a
// fault-tolerant HTTP/JSON daemon (internal/server): admission control
// with a lint preflight and a bounded queue, per-job wall-clock /
// worker / scan budgets, load shedding through checkpoint-backed
// suspend/resume, per-job panic isolation, and a graceful SIGTERM
// drain that checkpoints every in-flight job before exit.
//
// Usage:
//
//	explored -addr :8080 -checkpoint-dir /var/lib/explored
//	curl -d '{"model":"settop"}' http://localhost:8080/jobs
//	curl http://localhost:8080/jobs/j-1/result
//
// The API (endpoints, job state machine, error codes) is documented in
// docs/explored-api.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/server"
)

// cliFlags carries the parsed command line for validation; explicit
// indicates which flags the user actually set (flag.Visit), so
// incompatible-combination checks do not misfire on defaults.
type cliFlags struct {
	addr          string
	checkpointDir string
	queueDepth    int
	maxRunning    int
	highWater     int
	maxDeadline   time.Duration
	jobTTL        time.Duration
	workers       int
	lintMode      string
	drainTimeout  time.Duration
	explicit      map[string]bool
}

// problems returns every reason the flag combination is rejected; a
// non-empty result exits with status 2 before the server starts.
func (f *cliFlags) problems() []string {
	var out []string
	if f.addr == "" {
		out = append(out, "-addr must not be empty")
	}
	if f.checkpointDir == "" {
		out = append(out, "-checkpoint-dir is required (the suspend/resume and drain snapshots land there)")
	}
	if f.queueDepth <= 0 {
		out = append(out, "-queue-depth must be > 0")
	}
	if f.maxRunning <= 0 {
		out = append(out, "-max-running must be > 0")
	}
	if f.highWater < 0 {
		out = append(out, "-high-water must be >= 0 (0 selects 3/4 of -queue-depth)")
	}
	if f.explicit["high-water"] && f.highWater > f.queueDepth {
		out = append(out, fmt.Sprintf("-high-water %d must not exceed -queue-depth %d", f.highWater, f.queueDepth))
	}
	if f.maxDeadline < 0 {
		out = append(out, "-max-deadline must be >= 0 (0 = no default and no cap)")
	}
	if f.jobTTL < 0 {
		out = append(out, "-job-ttl must be >= 0 (0 keeps terminal jobs forever)")
	}
	if f.workers < 0 {
		out = append(out, "-workers must be >= 0 (0 selects GOMAXPROCS per job)")
	}
	if f.lintMode != "on" && f.lintMode != "off" {
		out = append(out, "-lint must be on or off")
	}
	if f.drainTimeout <= 0 {
		out = append(out, "-drain-timeout must be > 0 (the SIGTERM drain needs time to checkpoint in-flight jobs)")
	}
	return out
}

func main() {
	os.Exit(run())
}

// run is main minus the exit, so deferred cleanup runs on every path.
func run() int {
	addr := flag.String("addr", "localhost:8080", "listen address")
	ckDir := flag.String("checkpoint-dir", "", "directory for job checkpoints (required)")
	queueDepth := flag.Int("queue-depth", 16, "admission queue bound; a full queue answers 429 + Retry-After")
	maxRunning := flag.Int("max-running", 2, "concurrently running jobs")
	highWater := flag.Int("high-water", 0, "queue length that triggers load shedding (0 = 3/4 of -queue-depth)")
	maxDeadline := flag.Duration("max-deadline", 0, "default and cap for per-job wall-clock budgets (0 = none)")
	jobTTL := flag.Duration("job-ttl", 0, "evict terminal jobs from memory after this long (0 = keep forever); checkpoint files stay on disk")
	workers := flag.Int("workers", 1, "default per-job worker budget (0 = GOMAXPROCS, 1 = sequential)")
	lintMode := flag.String("lint", "on", "admission lint preflight: on | off (defective specs are rejected with 422)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the SIGTERM graceful drain")
	flag.Parse()

	fl := &cliFlags{
		addr: *addr, checkpointDir: *ckDir, queueDepth: *queueDepth,
		maxRunning: *maxRunning, highWater: *highWater, maxDeadline: *maxDeadline,
		jobTTL: *jobTTL, workers: *workers, lintMode: *lintMode, drainTimeout: *drainTimeout,
		explicit: map[string]bool{},
	}
	flag.Visit(func(f *flag.Flag) { fl.explicit[f.Name] = true })
	if probs := fl.problems(); len(probs) > 0 {
		for _, p := range probs {
			fmt.Fprintln(os.Stderr, "explored:", p)
		}
		return 2
	}

	// server.Config maps DefaultWorkers <= 0 to 1 (sequential); resolve
	// the documented "-workers 0 = GOMAXPROCS per job" here.
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	logger := log.New(os.Stderr, "explored: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		CheckpointDir:  *ckDir,
		QueueDepth:     *queueDepth,
		MaxRunning:     *maxRunning,
		HighWater:      *highWater,
		MaxDeadline:    *maxDeadline,
		JobTTL:         *jobTTL,
		DefaultWorkers: *workers,
		Lint:           *lintMode != "off",
		Logf:           logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "explored:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explored:", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	logger.Printf("listening on http://%s (checkpoints in %s)", ln.Addr(), *ckDir)

	// SIGTERM/SIGINT starts the graceful drain: stop admitting, suspend
	// every running job through a digest-guarded checkpoint, persist the
	// queued and suspended remainder, then close the listener. A second
	// signal (or the drain timeout) forces exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "explored:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us
	logger.Printf("signal received; draining (timeout %s)", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "explored: drain:", err)
		code = 1
	} else {
		logger.Printf("drain complete; all in-flight jobs checkpointed")
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "explored:", err)
		code = 1
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	return code
}
