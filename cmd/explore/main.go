// Command explore runs flexibility/cost design-space exploration on an
// arbitrary specification graph given as JSON (see internal/spec for
// the format), or on one of the built-in paper models.
//
// Usage:
//
//	explore -spec system.json            # EXPLORE, print the Pareto front
//	explore -model settop -stats         # built-in model with counters
//	explore -spec system.json -algo ea   # evolutionary baseline
//	explore -spec system.json -tsv       # trade-off curve as TSV
//
// Long scans are interruptible and crash-safe: -timeout bounds the wall
// clock, Ctrl-C stops the scan cleanly (both print the best-so-far
// front, which is exactly the Pareto set of the explored cost-ordered
// prefix), and -checkpoint periodically persists an atomic snapshot
// that -resume continues from (see docs/checkpoint-format.md):
//
//	explore -model settop -algo exhaustive -checkpoint ck.json -timeout 500ms
//	explore -model settop -algo exhaustive -checkpoint ck.json -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/bind"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/hgraph"
	"repro/internal/lint"
	"repro/internal/models"
	"repro/internal/profiling"
	"repro/internal/spec"
)

// cliFlags carries the parsed command line for validation; explicit
// indicates which flags the user actually set (flag.Visit), so
// incompatible-combination checks do not misfire on defaults.
type cliFlags struct {
	algo            string
	model           string
	objectives      string
	upgradeFrom     string
	workers         int
	batch           int
	producers       int
	enumerator      string
	iters           int
	checkpointEvery int
	timeout         time.Duration
	checkpoint      string
	resume          bool
	cache           string
	prof            profiling.Flags
	explicit        map[string]bool
}

// problems returns every reason the flag combination is rejected; a
// non-empty result exits with status 2 before any exploration starts.
func (f *cliFlags) problems() []string {
	var out []string
	if f.workers < 0 {
		out = append(out, "-workers must be >= 0 (0 selects GOMAXPROCS)")
	}
	if f.batch < 0 {
		out = append(out, "-batch must be >= 0 (0 selects adaptive sizing)")
	}
	if f.explicit["batch"] && f.workers == 1 {
		out = append(out, "-batch only applies to parallel exploration (-workers != 1)")
	}
	if f.producers < 0 {
		out = append(out, "-producers must be >= 0 (0 selects the automatic producer count)")
	}
	if f.explicit["producers"] && f.algo != "explore" && f.algo != "exhaustive" {
		out = append(out, "-producers requires a cost-ordered scan (-algo explore or exhaustive)")
	}
	if !core.ValidEnumerator(f.enumerator) {
		out = append(out, "-enumerator must be auto, bitset or symbolic")
	}
	if f.explicit["enumerator"] && f.algo != "explore" && f.algo != "exhaustive" {
		out = append(out, "-enumerator requires a cost-ordered scan (-algo explore or exhaustive)")
	}
	if f.iters <= 0 {
		out = append(out, "-iters must be > 0")
	}
	if f.explicit["iters"] && f.algo != "random" {
		out = append(out, "-iters only applies to -algo random")
	}
	if f.explicit["seed"] && f.algo != "random" && f.algo != "ea" && f.model != "synthetic" {
		out = append(out, "-seed only applies to -algo random, -algo ea, or -model synthetic")
	}
	if f.explicit["workers"] && f.workers != 1 && f.algo != "explore" {
		out = append(out, "-workers only applies to -algo explore")
	}
	if f.checkpointEvery <= 0 {
		out = append(out, "-checkpoint-every must be > 0")
	}
	if f.explicit["checkpoint-every"] && f.checkpoint == "" {
		out = append(out, "-checkpoint-every requires -checkpoint (there is no snapshot file to write)")
	}
	if f.timeout < 0 {
		out = append(out, "-timeout must be >= 0")
	}
	if f.resume && f.checkpoint == "" {
		out = append(out, "-resume requires -checkpoint (the snapshot to continue from)")
	}
	if f.checkpoint != "" {
		if f.algo != "explore" && f.algo != "exhaustive" {
			out = append(out, "-checkpoint requires a deterministic cost-ordered scan (-algo explore or exhaustive)")
		}
		if f.objectives != "" || f.upgradeFrom != "" {
			out = append(out, "-checkpoint is not supported with -objectives or -upgrade-from")
		}
	}
	if f.cache != "on" && f.cache != "off" {
		out = append(out, "-cache must be on or off")
	}
	out = append(out, f.prof.Problems()...)
	return out
}

func main() {
	os.Exit(run())
}

// run is main minus the exit: returning (instead of os.Exit) lets the
// deferred profiling teardown flush -cpuprofile/-memprofile/-trace on
// every path.
func run() int {
	specPath := flag.String("spec", "", "path to a specification graph JSON file (- for stdin)")
	model := flag.String("model", "", "built-in model: settop | decoder | sdr | synthetic")
	algo := flag.String("algo", "explore", "explorer: explore | exhaustive | random | ea")
	timing := flag.String("timing", "paper", "timing policy: paper | rta | ll | none")
	weighted := flag.Bool("weighted", false, "weighted flexibility metric")
	stats := flag.Bool("stats", false, "print exploration statistics")
	tsv := flag.Bool("tsv", false, "emit the front as TSV instead of a table")
	asJSON := flag.Bool("json", false, "emit the full result (front, behaviours, stats) as JSON")
	iters := flag.Int("iters", 1000, "iterations for -algo random")
	seed := flag.Int64("seed", 1, "seed for random/ea explorers and synthetic models")
	stopMax := flag.Bool("stop-at-max", false, "terminate when maximum flexibility is implemented")
	objectives := flag.String("objectives", "", "comma-separated extra objectives beyond cost+1/flexibility: latency, or any resource attribute (e.g. power)")
	upgradeFrom := flag.String("upgrade-from", "", "comma-separated deployed units; explore cost-ordered upgrades (supersets only)")
	workers := flag.Int("workers", 1, "parallel exploration workers (0 = GOMAXPROCS); front is identical to sequential")
	batch := flag.Int("batch", 0, "candidates per parallel range job (0 = adaptive); the front is identical for every batch size")
	producers := flag.Int("producers", 0, "candidate-producer shards merged back into cost order (0 = auto); the stream is identical for every count (see docs/performance.md)")
	enumerator := flag.String("enumerator", "auto", "possible-allocation producer: auto | bitset | symbolic; the front is identical either way (see docs/symbolic.md)")
	lintMode := flag.String("lint", "on", "preflight static analysis: on | off (see docs/lint-codes.md)")
	timeout := flag.Duration("timeout", 0, "stop the scan after this duration and print the best-so-far front (0 = no limit)")
	ckPath := flag.String("checkpoint", "", "periodically write an atomic resume snapshot to this file")
	ckEvery := flag.Int("checkpoint-every", 64, "candidates between periodic checkpoints")
	resume := flag.Bool("resume", false, "continue the scan from the -checkpoint snapshot")
	cache := flag.String("cache", "on", "cross-candidate evaluation caches: on | off (off is the uncached differential/ablation baseline)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	fl := &cliFlags{
		algo: *algo, model: *model, objectives: *objectives, upgradeFrom: *upgradeFrom,
		workers: *workers, batch: *batch, producers: *producers, enumerator: *enumerator, iters: *iters, checkpointEvery: *ckEvery,
		timeout: *timeout, checkpoint: *ckPath, resume: *resume, cache: *cache,
		prof:     profiling.Flags{CPUProfile: *cpuProfile, MemProfile: *memProfile, Trace: *tracePath},
		explicit: map[string]bool{},
	}
	flag.Visit(func(f *flag.Flag) { fl.explicit[f.Name] = true })
	if probs := fl.problems(); len(probs) > 0 {
		for _, p := range probs {
			fmt.Fprintln(os.Stderr, "explore:", p)
		}
		return 2
	}

	stopProf, err := fl.prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err)
		}
	}()

	s, err := loadSpec(*specPath, *model, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		return 1
	}
	if *lintMode != "off" {
		if err := lint.Preflight(s, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err, "(rerun with -lint=off to explore anyway)")
			return 1
		}
	}

	opts := core.Options{Weighted: *weighted, StopAtMaxFlex: *stopMax, DisableCache: *cache == "off", Batch: *batch, Producers: *producers, Enumerator: core.Enumerator(*enumerator)}
	switch *timing {
	case "paper":
		opts.Timing = bind.TimingPaper
	case "rta":
		opts.Timing = bind.TimingRTA
	case "ll":
		opts.Timing = bind.TimingLiuLayland
	case "none":
		opts.Timing = bind.TimingNone
	default:
		fmt.Fprintf(os.Stderr, "explore: unknown timing policy %q\n", *timing)
		return 2
	}

	// A SIGINT cancels the scan instead of killing the process: the
	// explorers return their prefix-exact partial front, a final
	// checkpoint is flushed, and the front is printed before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *objectives != "" {
		runMulti(ctx, s, opts, *objectives)
		return 0
	}
	if *upgradeFrom != "" {
		base := spec.Allocation{}
		for _, id := range strings.Split(*upgradeFrom, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				base[hgraph.ID(id)] = true
			}
		}
		r := core.UpgradeContext(ctx, s, base, opts)
		fmt.Printf("upgrades of %v: %d Pareto-optimal extensions\n\n", base, len(r.Front))
		fmt.Print(r.FrontTable(s.Problem.Root.ID))
		return 0
	}

	// The exhaustive overrides must be in opts before the checkpoint
	// wiring so the options digest describes the scan actually run and
	// a snapshot taken under -algo exhaustive resumes consistently.
	if *algo == "exhaustive" {
		opts.DisableFlexBound = true
		opts.IncludeUselessComm = true
		opts.StopAtMaxFlex = false
	}

	var writer *checkpoint.Writer
	if *ckPath != "" {
		writer = &checkpoint.Writer{Path: *ckPath}
		opts.ProgressEvery = *ckEvery
		opts.Progress = func(p core.Progress) {
			snap, err := checkpoint.Capture(s, opts, p)
			if err == nil {
				err = writer.Save(snap)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "explore:", err)
			}
		}
	}
	if *resume {
		snap, err := checkpoint.Load(*ckPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err)
			return 1
		}
		res, err := snap.Resume(s, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err)
			return 1
		}
		opts.Resume = res
		fmt.Fprintf(os.Stderr, "explore: resuming %q at candidate %d (%d front entries)\n",
			snap.SpecName, snap.Cursor, len(snap.Front))
	}

	var r *core.Result
	switch *algo {
	case "explore":
		if *workers != 1 {
			r = core.ExploreParallelContext(ctx, s, opts, *workers, 0)
		} else {
			r = core.ExploreContext(ctx, s, opts)
		}
	case "exhaustive":
		r = core.ExhaustiveContext(ctx, s, opts)
	case "random":
		r = core.RandomSearchContext(ctx, s, opts, *iters, *seed)
	case "ea":
		r = core.EvolutionaryContext(ctx, s, opts, core.EAConfig{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "explore: unknown algorithm %q\n", *algo)
		return 2
	}

	if writer != nil {
		// Final flush so the snapshot covers the whole explored prefix,
		// interrupted or not.
		snap, err := checkpoint.FromResult(s, opts, r)
		if err == nil {
			err = writer.Save(snap)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err)
		}
	}
	if r.Interrupted {
		fmt.Fprintf(os.Stderr, "explore: interrupted (%s) at candidate %d; the front below is the Pareto set of the explored prefix\n",
			r.Reason, r.Cursor)
		if writer != nil {
			fmt.Fprintf(os.Stderr, "explore: continue with: explore %s -resume\n",
				strings.Join(resumeArgs(), " "))
		}
	}

	if *asJSON {
		data, err := r.MarshalJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err)
			return 1
		}
		fmt.Println(string(data))
		return 0
	}
	if *tsv {
		var pts []dot.TradeoffPoint
		for _, im := range r.Front {
			pts = append(pts, dot.TradeoffPoint{
				Cost: im.Cost, Flexibility: im.Flexibility, Label: im.Allocation.String(),
			})
		}
		fmt.Print(dot.TradeoffTSV(pts))
	} else {
		fmt.Printf("specification %q: %d Pareto-optimal implementations (max flexibility %g)\n\n",
			s.Name, len(r.Front), r.MaxFlexibility)
		fmt.Print(r.FrontTable(s.Problem.Root.ID))
	}
	if *stats {
		st := r.Stats
		fmt.Println()
		fmt.Println(s.Summary())
		fmt.Printf("design space         : %.3g design points\n", st.DesignSpace)
		fmt.Printf("allocation space     : %.3g subsets, %d scanned\n", st.AllocSpace, st.Scanned)
		fmt.Printf("possible allocations : %d\n", st.PossibleAllocations)
		fmt.Printf("implementations      : %d attempted, %d feasible\n", st.Attempted, st.Feasible)
		fmt.Printf("binding solver       : %d runs, %d nodes, %d behaviours tested\n",
			st.BindingRuns, st.BindingNodes, st.ECSTested)
		if c := st.Cache; c != (core.CacheStats{}) {
			fmt.Printf("flatten cache        : problem %d hits / %d misses, arch %d hits / %d misses\n",
				c.FlattenHits, c.FlattenMisses, c.ArchFlattenHits, c.ArchFlattenMisses)
			fmt.Printf("binding memo         : %d reused (%d exact, %d replayed, %d dominated), %d solved, %d supportable-sets reused\n",
				c.BindHits(), c.BindExactHits, c.BindReplayHits, c.BindInfeasibleHits, c.BindMisses, c.SupportableReused)
		}
		if p := st.Pipeline; p.Workers > 0 {
			fmt.Printf("parallel pipeline    : %d workers, queue %d (high water %d), %d commit stalls, %s busy\n",
				p.Workers, p.QueueDepth, p.QueueHighWater, p.CommitStalls,
				time.Duration(p.BusyNanos).Round(time.Millisecond))
			fmt.Printf("range jobs           : %d committed (batch size %d), %d bound publishes\n",
				p.BatchesCommitted, p.BatchSize, p.BoundPublishes)
		}
		if p := st.Pipeline; p.Producers > 0 {
			fmt.Printf("sharded producers    : %d shards, %s busy, %d merge stalls\n",
				p.Producers, time.Duration(p.ProducerBusyNanos).Round(time.Millisecond), p.MergeStalls)
		}
		fmt.Printf("termination          : %s (cursor %d)\n", r.Reason, r.Cursor)
		if len(st.Diags) > 0 {
			fmt.Printf("skipped candidates   : %d (injected faults or recovered panics)\n", len(st.Diags))
		}
	}
	return 0
}

// resumeArgs reconstructs the flags (minus -resume/-timeout) the user
// would pass to continue an interrupted scan.
func resumeArgs() []string {
	var out []string
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "resume" || f.Name == "timeout" {
			return
		}
		out = append(out, fmt.Sprintf("-%s=%s", f.Name, f.Value))
	})
	return out
}

func loadSpec(path, model string, seed int64) (*spec.Spec, error) {
	switch {
	case path == "" && model == "":
		return nil, fmt.Errorf("one of -spec or -model is required")
	case path != "" && model != "":
		return nil, fmt.Errorf("-spec and -model are mutually exclusive")
	case path == "-":
		return spec.Read(os.Stdin)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return spec.Read(f)
	}
	switch model {
	case "settop":
		return models.SetTopBox(), nil
	case "decoder":
		return models.Decoder(), nil
	case "sdr":
		return models.SDR(), nil
	case "synthetic":
		return models.Synthetic(models.DefaultSynthetic(seed)), nil
	default:
		return nil, fmt.Errorf("unknown model %q (settop | decoder | sdr | synthetic)", model)
	}
}

// runMulti runs the generalized multi-objective exploration.
func runMulti(ctx context.Context, s *spec.Spec, opts core.Options, names string) {
	objs := []core.Objective{core.CostObjective(), core.InvFlexibilityObjective()}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		switch n {
		case "":
		case "latency":
			opts.AllBehaviours = true
			objs = append(objs, core.MeanLatencyObjective())
		default:
			objs = append(objs, core.ResourceSumObjective(n))
		}
	}
	r := core.ExploreMultiContext(ctx, s, opts, objs)
	if r.Interrupted {
		fmt.Fprintf(os.Stderr, "explore: interrupted (%s) at candidate %d; partial front follows\n", r.Reason, r.Cursor)
	}
	for _, name := range r.Names {
		fmt.Printf("%-14s ", name)
	}
	fmt.Println("allocation")
	for i, im := range r.Front {
		for _, v := range r.Objectives[i] {
			fmt.Printf("%-14.4g ", v)
		}
		fmt.Println(im.Allocation)
	}
}
