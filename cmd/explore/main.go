// Command explore runs flexibility/cost design-space exploration on an
// arbitrary specification graph given as JSON (see internal/spec for
// the format), or on one of the built-in paper models.
//
// Usage:
//
//	explore -spec system.json            # EXPLORE, print the Pareto front
//	explore -model settop -stats         # built-in model with counters
//	explore -spec system.json -algo ea   # evolutionary baseline
//	explore -spec system.json -tsv       # trade-off curve as TSV
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/hgraph"
	"repro/internal/lint"
	"repro/internal/models"
	"repro/internal/spec"
)

func main() {
	specPath := flag.String("spec", "", "path to a specification graph JSON file (- for stdin)")
	model := flag.String("model", "", "built-in model: settop | decoder | sdr | synthetic")
	algo := flag.String("algo", "explore", "explorer: explore | exhaustive | random | ea")
	timing := flag.String("timing", "paper", "timing policy: paper | rta | ll | none")
	weighted := flag.Bool("weighted", false, "weighted flexibility metric")
	stats := flag.Bool("stats", false, "print exploration statistics")
	tsv := flag.Bool("tsv", false, "emit the front as TSV instead of a table")
	asJSON := flag.Bool("json", false, "emit the full result (front, behaviours, stats) as JSON")
	iters := flag.Int("iters", 1000, "iterations for -algo random")
	seed := flag.Int64("seed", 1, "seed for random/ea explorers and synthetic models")
	stopMax := flag.Bool("stop-at-max", false, "terminate when maximum flexibility is implemented")
	objectives := flag.String("objectives", "", "comma-separated extra objectives beyond cost+1/flexibility: latency, or any resource attribute (e.g. power)")
	upgradeFrom := flag.String("upgrade-from", "", "comma-separated deployed units; explore cost-ordered upgrades (supersets only)")
	workers := flag.Int("workers", 1, "parallel exploration workers (0 = GOMAXPROCS); front is identical to sequential")
	lintMode := flag.String("lint", "on", "preflight static analysis: on | off (see docs/lint-codes.md)")
	flag.Parse()

	s, err := loadSpec(*specPath, *model, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
	if *lintMode != "off" {
		if err := lint.Preflight(s, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err, "(rerun with -lint=off to explore anyway)")
			os.Exit(1)
		}
	}

	opts := core.Options{Weighted: *weighted, StopAtMaxFlex: *stopMax}
	switch *timing {
	case "paper":
		opts.Timing = bind.TimingPaper
	case "rta":
		opts.Timing = bind.TimingRTA
	case "ll":
		opts.Timing = bind.TimingLiuLayland
	case "none":
		opts.Timing = bind.TimingNone
	default:
		fmt.Fprintf(os.Stderr, "explore: unknown timing policy %q\n", *timing)
		os.Exit(2)
	}

	if *objectives != "" {
		runMulti(s, opts, *objectives)
		return
	}
	if *upgradeFrom != "" {
		base := spec.Allocation{}
		for _, id := range strings.Split(*upgradeFrom, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				base[hgraph.ID(id)] = true
			}
		}
		r := core.Upgrade(s, base, opts)
		fmt.Printf("upgrades of %v: %d Pareto-optimal extensions\n\n", base, len(r.Front))
		fmt.Print(r.FrontTable(s.Problem.Root.ID))
		return
	}

	var r *core.Result
	switch *algo {
	case "explore":
		if *workers != 1 {
			r = core.ExploreParallel(s, opts, *workers, 0)
		} else {
			r = core.Explore(s, opts)
		}
	case "exhaustive":
		r = core.Exhaustive(s, opts)
	case "random":
		r = core.RandomSearch(s, opts, *iters, *seed)
	case "ea":
		r = core.Evolutionary(s, opts, core.EAConfig{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "explore: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	if *asJSON {
		data, err := r.MarshalJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}
	if *tsv {
		var pts []dot.TradeoffPoint
		for _, im := range r.Front {
			pts = append(pts, dot.TradeoffPoint{
				Cost: im.Cost, Flexibility: im.Flexibility, Label: im.Allocation.String(),
			})
		}
		fmt.Print(dot.TradeoffTSV(pts))
	} else {
		fmt.Printf("specification %q: %d Pareto-optimal implementations (max flexibility %g)\n\n",
			s.Name, len(r.Front), r.MaxFlexibility)
		fmt.Print(r.FrontTable(s.Problem.Root.ID))
	}
	if *stats {
		st := r.Stats
		fmt.Println()
		fmt.Println(s.Summary())
		fmt.Printf("design space         : %.3g design points\n", st.DesignSpace)
		fmt.Printf("allocation space     : %.3g subsets, %d scanned\n", st.AllocSpace, st.Scanned)
		fmt.Printf("possible allocations : %d\n", st.PossibleAllocations)
		fmt.Printf("implementations      : %d attempted, %d feasible\n", st.Attempted, st.Feasible)
		fmt.Printf("binding solver       : %d runs, %d nodes, %d behaviours tested\n",
			st.BindingRuns, st.BindingNodes, st.ECSTested)
	}
}

func loadSpec(path, model string, seed int64) (*spec.Spec, error) {
	switch {
	case path == "" && model == "":
		return nil, fmt.Errorf("one of -spec or -model is required")
	case path != "" && model != "":
		return nil, fmt.Errorf("-spec and -model are mutually exclusive")
	case path == "-":
		return spec.Read(os.Stdin)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return spec.Read(f)
	}
	switch model {
	case "settop":
		return models.SetTopBox(), nil
	case "decoder":
		return models.Decoder(), nil
	case "sdr":
		return models.SDR(), nil
	case "synthetic":
		return models.Synthetic(models.DefaultSynthetic(seed)), nil
	default:
		return nil, fmt.Errorf("unknown model %q (settop | decoder | sdr | synthetic)", model)
	}
}

// runMulti runs the generalized multi-objective exploration.
func runMulti(s *spec.Spec, opts core.Options, names string) {
	objs := []core.Objective{core.CostObjective(), core.InvFlexibilityObjective()}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		switch n {
		case "":
		case "latency":
			opts.AllBehaviours = true
			objs = append(objs, core.MeanLatencyObjective())
		default:
			objs = append(objs, core.ResourceSumObjective(n))
		}
	}
	r := core.ExploreMulti(s, opts, objs)
	for _, name := range r.Names {
		fmt.Printf("%-14s ", name)
	}
	fmt.Println("allocation")
	for i, im := range r.Front {
		for _, v := range r.Objectives[i] {
			fmt.Printf("%-14.4g ", v)
		}
		fmt.Println(im.Allocation)
	}
}
