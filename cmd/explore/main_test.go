package main

import (
	"testing"

	"repro/internal/core"
)

func TestLoadSpecModels(t *testing.T) {
	for _, m := range []string{"settop", "decoder", "synthetic"} {
		s, err := loadSpec("", m, 1)
		if err != nil {
			t.Errorf("loadSpec(%s): %v", m, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", m, err)
		}
	}
}

func TestLoadSpecErrors(t *testing.T) {
	if _, err := loadSpec("", "", 0); err == nil {
		t.Error("no source should error")
	}
	if _, err := loadSpec("x.json", "settop", 0); err == nil {
		t.Error("both sources should error")
	}
	if _, err := loadSpec("", "nope", 0); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := loadSpec("/nonexistent.json", "", 0); err == nil {
		t.Error("missing file should error")
	}
}

// TestLoadSpecFromJSONFile loads the shipped case-study model from disk
// and checks that exploring it reproduces the published front.
func TestLoadSpecFromJSONFile(t *testing.T) {
	s, err := loadSpec("../../testdata/settop.json", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Explore(s, core.Options{})
	want := [][2]float64{{100, 2}, {120, 3}, {230, 4}, {290, 5}, {360, 7}, {430, 8}}
	if len(r.Front) != len(want) {
		t.Fatalf("front size = %d, want %d", len(r.Front), len(want))
	}
	for i, w := range want {
		if r.Front[i].Cost != w[0] || r.Front[i].Flexibility != w[1] {
			t.Errorf("row %d = (%v,%v), want (%v,%v)",
				i, r.Front[i].Cost, r.Front[i].Flexibility, w[0], w[1])
		}
	}
}
