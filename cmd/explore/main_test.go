package main

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// baseFlags returns a valid default flag set; tests mutate one aspect
// and assert on problems().
func baseFlags() *cliFlags {
	return &cliFlags{
		algo: "explore", workers: 1, iters: 1000, checkpointEvery: 64,
		cache: "on", explicit: map[string]bool{},
	}
}

func TestFlagValidationAccepts(t *testing.T) {
	cases := []func(*cliFlags){
		func(f *cliFlags) {},
		func(f *cliFlags) { f.workers = 0; f.explicit["workers"] = true },
		func(f *cliFlags) { f.workers = 8; f.explicit["workers"] = true },
		func(f *cliFlags) {
			f.workers = 4
			f.batch = 64
			f.explicit["workers"] = true
			f.explicit["batch"] = true
		},
		func(f *cliFlags) {
			f.workers = 0
			f.batch = 0
			f.explicit["workers"] = true
			f.explicit["batch"] = true
		},
		func(f *cliFlags) {
			f.algo = "random"
			f.iters = 5
			f.explicit["iters"] = true
			f.explicit["seed"] = true
		},
		func(f *cliFlags) { f.algo = "ea"; f.explicit["seed"] = true },
		func(f *cliFlags) { f.model = "synthetic"; f.explicit["seed"] = true },
		func(f *cliFlags) { f.checkpoint = "ck.json"; f.checkpointEvery = 4 },
		func(f *cliFlags) {
			f.checkpoint = "ck.json"
			f.checkpointEvery = 4
			f.explicit["checkpoint"] = true
			f.explicit["checkpoint-every"] = true
		},
		func(f *cliFlags) { f.algo = "exhaustive"; f.checkpoint = "ck.json"; f.resume = true },
		func(f *cliFlags) { f.timeout = 1 },
		func(f *cliFlags) { f.cache = "off" },
		func(f *cliFlags) { f.enumerator = "symbolic"; f.explicit["enumerator"] = true },
		func(f *cliFlags) { f.enumerator = "bitset"; f.explicit["enumerator"] = true },
		func(f *cliFlags) { f.producers = 4; f.explicit["producers"] = true },
		func(f *cliFlags) {
			f.algo = "exhaustive"
			f.producers = 1
			f.explicit["producers"] = true
		},
		func(f *cliFlags) { f.enumerator = "auto" },
		func(f *cliFlags) {
			f.algo = "exhaustive"
			f.enumerator = "symbolic"
			f.explicit["enumerator"] = true
		},
		func(f *cliFlags) {
			f.prof.CPUProfile = "cpu.out"
			f.prof.MemProfile = "mem.out"
			f.prof.Trace = "trace.out"
		},
	}
	for i, mutate := range cases {
		f := baseFlags()
		mutate(f)
		if probs := f.problems(); len(probs) != 0 {
			t.Errorf("case %d: valid flags rejected: %v", i, probs)
		}
	}
}

func TestFlagValidationRejects(t *testing.T) {
	cases := []struct {
		mutate func(*cliFlags)
		want   string
	}{
		{func(f *cliFlags) { f.workers = -1 }, "-workers"},
		{func(f *cliFlags) { f.workers = 4; f.batch = -1; f.explicit["workers"] = true }, "-batch must be >= 0"},
		{func(f *cliFlags) { f.batch = 8; f.explicit["batch"] = true }, "-batch only applies"},
		{func(f *cliFlags) { f.iters = 0 }, "-iters"},
		{func(f *cliFlags) { f.iters = -3 }, "-iters"},
		{func(f *cliFlags) { f.explicit["iters"] = true }, "-iters only applies"},
		{func(f *cliFlags) { f.explicit["seed"] = true }, "-seed only applies"},
		{func(f *cliFlags) { f.algo = "ea"; f.workers = 4; f.explicit["workers"] = true }, "-workers only applies"},
		{func(f *cliFlags) { f.checkpointEvery = 0 }, "-checkpoint-every"},
		{func(f *cliFlags) { f.explicit["checkpoint-every"] = true }, "-checkpoint-every requires -checkpoint"},
		{func(f *cliFlags) { f.timeout = -1 }, "-timeout"},
		{func(f *cliFlags) { f.resume = true }, "-resume requires"},
		{func(f *cliFlags) { f.algo = "random"; f.checkpoint = "ck.json" }, "cost-ordered"},
		{func(f *cliFlags) { f.algo = "ea"; f.checkpoint = "ck.json" }, "cost-ordered"},
		{func(f *cliFlags) { f.checkpoint = "ck.json"; f.objectives = "latency" }, "not supported"},
		{func(f *cliFlags) { f.checkpoint = "ck.json"; f.upgradeFrom = "CPU1" }, "not supported"},
		{func(f *cliFlags) { f.cache = "maybe" }, "-cache"},
		{func(f *cliFlags) { f.enumerator = "bdd" }, "-enumerator must be"},
		{func(f *cliFlags) { f.producers = -1 }, "-producers must be"},
		{func(f *cliFlags) { f.algo = "random"; f.producers = 2; f.explicit["producers"] = true }, "-producers requires"},
		{func(f *cliFlags) { f.algo = "random"; f.enumerator = "symbolic"; f.explicit["enumerator"] = true }, "-enumerator requires"},
		{func(f *cliFlags) { f.prof.CPUProfile = "p.out"; f.prof.Trace = "p.out" }, "same file"},
	}
	for i, tc := range cases {
		f := baseFlags()
		tc.mutate(f)
		probs := f.problems()
		found := false
		for _, p := range probs {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("case %d: want a problem matching %q, got %v", i, tc.want, probs)
		}
	}
}

// Every rejection must surface all problems at once, not just the first.
func TestFlagValidationReportsAll(t *testing.T) {
	f := baseFlags()
	f.workers = -2
	f.iters = 0
	f.timeout = -1
	if probs := f.problems(); len(probs) < 3 {
		t.Errorf("want >= 3 problems, got %v", probs)
	}
}

func TestLoadSpecModels(t *testing.T) {
	for _, m := range []string{"settop", "decoder", "synthetic"} {
		s, err := loadSpec("", m, 1)
		if err != nil {
			t.Errorf("loadSpec(%s): %v", m, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", m, err)
		}
	}
}

func TestLoadSpecErrors(t *testing.T) {
	if _, err := loadSpec("", "", 0); err == nil {
		t.Error("no source should error")
	}
	if _, err := loadSpec("x.json", "settop", 0); err == nil {
		t.Error("both sources should error")
	}
	if _, err := loadSpec("", "nope", 0); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := loadSpec("/nonexistent.json", "", 0); err == nil {
		t.Error("missing file should error")
	}
}

// TestLoadSpecFromJSONFile loads the shipped case-study model from disk
// and checks that exploring it reproduces the published front.
func TestLoadSpecFromJSONFile(t *testing.T) {
	s, err := loadSpec("../../testdata/settop.json", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Explore(s, core.Options{})
	want := [][2]float64{{100, 2}, {120, 3}, {230, 4}, {290, 5}, {360, 7}, {430, 8}}
	if len(r.Front) != len(want) {
		t.Fatalf("front size = %d, want %d", len(r.Front), len(want))
	}
	for i, w := range want {
		if r.Front[i].Cost != w[0] || r.Front[i].Flexibility != w[1] {
			t.Errorf("row %d = (%v,%v), want (%v,%v)",
				i, r.Front[i].Cost, r.Front[i].Flexibility, w[0], w[1])
		}
	}
}
