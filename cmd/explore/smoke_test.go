package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestWorkersSmoke builds the CLI and runs the same exploration
// sequentially and with a worker pool, asserting the advertised
// contract of -workers: the front is byte-identical to the sequential
// scan.
func TestWorkersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the explore binary")
	}
	bin := filepath.Join(t.TempDir(), "explore")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("%s %s: %v", bin, strings.Join(args, " "), err)
		}
		return string(out)
	}
	seq := run("-model", "settop", "-tsv")
	if !strings.Contains(seq, "\t") {
		t.Fatalf("sequential run produced no TSV front:\n%s", seq)
	}
	for _, workers := range []string{"0", "4"} {
		par := run("-model", "settop", "-tsv", "-workers", workers)
		if par != seq {
			t.Errorf("-workers %s front differs from sequential:\nsequential:\n%s\nparallel:\n%s", workers, seq, par)
		}
	}
	// -batch sizes the parallel range jobs; the committed front must be
	// byte-identical for every size (1 = per-candidate, 64 = the
	// adaptive ceiling).
	for _, batch := range []string{"1", "4", "64"} {
		par := run("-model", "settop", "-tsv", "-workers", "4", "-batch", batch)
		if par != seq {
			t.Errorf("-batch %s front differs from sequential:\nsequential:\n%s\nbatched:\n%s", batch, seq, par)
		}
	}
	// -producers shards candidate production; the merged stream — and so
	// the front — must be byte-identical for every shard count, with and
	// without a worker pool on top.
	for _, producers := range []string{"1", "2", "4"} {
		sh := run("-model", "settop", "-tsv", "-producers", producers)
		if sh != seq {
			t.Errorf("-producers %s front differs from sequential:\nsequential:\n%s\nsharded:\n%s", producers, seq, sh)
		}
	}
	if sh := run("-model", "settop", "-tsv", "-workers", "4", "-producers", "3"); sh != seq {
		t.Errorf("-workers 4 -producers 3 front differs from sequential:\nsequential:\n%s\nsharded:\n%s", seq, sh)
	}
}
