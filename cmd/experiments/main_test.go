package main

import "testing"

// TestAllExperimentsRun smoke-tests every experiment function: each
// must complete without panicking (their numeric assertions live in the
// package test suites; this guards the regeneration binary itself).
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment regeneration skipped in -short mode")
	}
	funcs := map[string]func(){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E5": e5, "E6": e6,
		"E7": e7, "E8": e8, "E9": e9, "E10": e10, "E11": e11,
		"E12": e12, "E13": e13, "E14": e14, "E15": e15, "E16": e16, "E17": e17,
	}
	for name, fn := range funcs {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("experiment %s panicked: %v", name, r)
				}
			}()
			fn()
		})
	}
}
