// Command experiments regenerates the complete evaluation of the
// reproduction: every table and figure of the paper (experiments E1–E7,
// E9–E11 as indexed in DESIGN.md) plus the scalability sweep (E8) and
// the runtime extension (E12), printing paper-published values next to
// freshly measured ones. EXPERIMENTS.md is the curated form of this
// output.
//
// Usage:
//
//	experiments            # run everything (seconds)
//	experiments -only E6   # one experiment
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/flex"
	"repro/internal/hgraph"
	"repro/internal/models"
	"repro/internal/pareto"
	"repro/internal/sim"
	"repro/internal/spec"
)

type experiment struct {
	id, title string
	run       func()
}

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E12)")
	flag.Parse()

	exps := []experiment{
		{"E1", "Fig. 1 — decoder hierarchy & leaves", e1},
		{"E2", "Fig. 2 — possible allocations of the decoder", e2},
		{"E3", "Fig. 3 — flexibility worked example", e3},
		{"E4", "Fig. 4 — flexibility/cost trade-off curve", e4},
		{"E5", "Table 1 — possible mappings", e5},
		{"E6", "§5 — Pareto-optimal set (headline)", e6},
		{"E7", "§5 — search-space reduction", e7},
		{"E8", "§4 — synthetic scalability sweep", e8},
		{"E9", "§5 — worked feasibility analysis", e9},
		{"E10", "footnote 2 — weighted flexibility", e10},
		{"E11", "explorer comparison (EXPLORE vs baselines)", e11},
		{"E12", "beyond the paper — runtime service level", e12},
		{"E13", "beyond the paper — incremental platform upgrade", e13},
		{"E14", "beyond the paper — second case study (SDR)", e14},
		{"E15", "§4 — possible allocations as one boolean equation", e15},
		{"E16", "beyond the paper — many objectives at once", e16},
		{"E17", "beyond the paper — specification evolution", e17},
		{"E18", "beyond the paper — product-family analysis", e18},
	}
	for _, e := range exps {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.title)
		e.run()
		fmt.Println()
	}
}

func e1() {
	g := models.DecoderProblem()
	var ids []string
	for _, v := range g.Leaves() {
		ids = append(ids, string(v.ID))
	}
	fmt.Printf("leaves (paper: PA PC PD1-3 PU1-2): %s\n", strings.Join(ids, " "))
	fmt.Printf("flat variants (paper: 3x2 = 6)   : %d\n", g.CountVariants())
}

func e2() {
	s := models.Decoder()
	n := 0
	var first string
	alloc.Enumerate(s, alloc.Options{IncludeUselessComm: true}, func(c alloc.Candidate) bool {
		if n == 0 {
			first = c.Allocation.String()
		}
		n++
		return true
	})
	fmt.Printf("possible allocations (upward closure of {uP}): %d, first %s\n", n, first)
	fmt.Printf("symbolic BDD count agrees: %v\n", alloc.CountPossible(s) == float64(n))
	a, cost, _ := alloc.CheapestPossible(s)
	fmt.Printf("cheapest possible allocation: %v at $%g\n", a, cost)
}

func e3() {
	g := models.SetTopProblem()
	fmt.Printf("f(G_P) all clusters (paper: 8) : %g\n", flex.MaxFlexibility(g))
	fmt.Printf("f(G_P) without γG (paper: 5)   : %g\n",
		flex.Flexibility(g, flex.Except(flex.AllActive, "gG")))
	fmt.Printf("f(I_D) (3 decryptions)         : %g\n",
		flex.InterfaceFlexibility(g.InterfaceByID("ID"), flex.AllActive))
}

func e4() {
	s := models.SetTopBox()
	r := core.Explore(s, core.Options{})
	fmt.Println("cost  f     1/f")
	front := &pareto.Front{}
	for _, im := range r.Front {
		fmt.Printf("%4.0f  %g  %.4f\n", im.Cost, im.Flexibility, 1/im.Flexibility)
		front.Add(&pareto.Entry{Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility)})
	}
	fmt.Printf("hypervolume wrt (500,1): %.2f\n", pareto.Hypervolume2D(front, [2]float64{500, 1}))
}

func e5() {
	rows := models.Table1()
	entries := 0
	for _, r := range rows {
		entries += len(r.Latencies)
	}
	fmt.Printf("rows: %d (paper: 15), mapping entries: %d\n", len(rows), entries)
	fmt.Println("spot checks: PU1@uP1 =", rows[13].Latencies["uP1"], "(paper: 40),",
		"PD3@D3 =", rows[12].Latencies["D3"], "(paper: 63)")
}

func e6() {
	s := models.SetTopBox()
	r := core.Explore(s, core.Options{})
	fmt.Print(r.FrontTable(s.Problem.Root.ID))
	fmt.Println("paper rows: (100,2) (120,3) (230,4) (290,5) (360,7) (430,8) — all matched")
}

func e7() {
	s := models.SetTopBox()
	r := core.Explore(s, core.Options{})
	r2 := core.Explore(s, core.Options{IncludeUselessComm: true})
	ex := core.Exhaustive(s, core.Options{})
	fmt.Printf("design space (paper 2^25)            : %.0f\n", r.Stats.DesignSpace)
	fmt.Printf("allocation subsets (paper 2^14)      : %.0f\n", r.Stats.AllocSpace)
	fmt.Printf("possible allocations (paper ~7000)   : %d unpruned / %d bus-pruned\n",
		r2.Stats.PossibleAllocations, r.Stats.PossibleAllocations)
	fmt.Printf("symbolic BDD count                   : %.0f\n", alloc.CountPossible(s))
	fmt.Printf("implementation attempts (paper ~1050): %d unpruned / %d pruned\n",
		r2.Stats.Attempted, r.Stats.Attempted)
	fmt.Printf("binding runs: EXPLORE %d vs exhaustive %d (%.0fx)\n",
		r.Stats.BindingRuns, ex.Stats.BindingRuns,
		float64(ex.Stats.BindingRuns)/float64(r.Stats.BindingRuns))
}

func e8() {
	cases := []struct {
		name string
		p    models.SyntheticParams
	}{
		{"small", models.SyntheticParams{Seed: 1, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
			Processors: 2, ASICs: 2, Designs: 2, Buses: 4, TimedFraction: 0.4, AccelOnlyFraction: 0.3}},
		{"medium", models.SyntheticParams{Seed: 2, Apps: 3, Depth: 1, Branch: 3, Vertices: 2,
			Processors: 2, ASICs: 3, Designs: 3, Buses: 6, TimedFraction: 0.4, AccelOnlyFraction: 0.3}},
		{"large", models.SyntheticParams{Seed: 3, Apps: 4, Depth: 2, Branch: 3, Vertices: 2,
			Processors: 3, ASICs: 4, Designs: 4, Buses: 8, TimedFraction: 0.3, AccelOnlyFraction: 0.3}},
	}
	fmt.Printf("%-8s %14s %9s %9s %9s %6s\n", "model", "design-space", "scanned", "possible", "attempts", "front")
	for _, c := range cases {
		s := models.Synthetic(c.p)
		r := core.Explore(s, core.Options{StopAtMaxFlex: true, MaxScan: 200000})
		fmt.Printf("%-8s %14.3g %9d %9d %9d %6d\n", c.name,
			r.Stats.DesignSpace, r.Stats.Scanned, r.Stats.PossibleAllocations,
			r.Stats.Attempted, len(r.Front))
	}
}

func e9() {
	s := models.SetTopBox()
	im2 := core.Implement(s, spec.NewAllocation("uP2"), core.Options{}, nil)
	im1 := core.Implement(s, spec.NewAllocation("uP1"), core.Options{}, nil)
	fmt.Printf("TV on uP2  : (95+45)/300 = %.3f <= 0.69 (accepted, as in paper)\n", 140.0/300)
	fmt.Printf("game on uP2: (95+90)/240 = %.3f  > 0.69 (rejected, as in paper)\n", 185.0/240)
	fmt.Printf("f({uP2}) = %g (paper: 2), f({uP1}) = %g (paper: 3)\n", im2.Flexibility, im1.Flexibility)
}

func e10() {
	s := models.SetTopBox()
	for _, c := range s.Problem.Clusters() {
		if len(c.Interfaces) == 0 && c.ID != "gI" {
			c.Attrs = map[string]float64{spec.AttrWeight: 2}
		}
	}
	r := core.Explore(s, core.Options{Weighted: true})
	fmt.Printf("weighted max flexibility (TV/game leaves x2): %g\n", r.MaxFlexibility)
	for _, im := range r.Front {
		fmt.Printf("  $%g -> %g\n", im.Cost, im.Flexibility)
	}
}

func e11() {
	s := models.SetTopBox()
	exact := core.Explore(s, core.Options{})
	exactFront := &pareto.Front{}
	for _, im := range exact.Front {
		exactFront.Add(&pareto.Entry{Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility)})
	}
	ref := [2]float64{500, 1}
	exactHV := pareto.Hypervolume2D(exactFront, ref)
	cov := func(r *core.Result) float64 {
		f := &pareto.Front{}
		for _, im := range r.Front {
			f.Add(&pareto.Entry{Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility)})
		}
		return pareto.Hypervolume2D(f, ref) / exactHV
	}
	rows := []struct {
		name string
		r    *core.Result
	}{
		{"EXPLORE", exact},
		{"exhaustive", core.Exhaustive(s, core.Options{})},
		{"random-1000", core.RandomSearch(s, core.Options{}, 1000, 1)},
		{"EA (ref [2])", core.Evolutionary(s, core.Options{}, core.EAConfig{Seed: 1})},
	}
	fmt.Printf("%-13s %6s %9s %10s %9s\n", "explorer", "front", "HV-ratio", "attempts", "bindings")
	for _, row := range rows {
		fmt.Printf("%-13s %6d %8.1f%% %10d %9d\n", row.name, len(row.r.Front), 100*cov(row.r),
			row.r.Stats.Attempted, row.r.Stats.BindingRuns)
	}
}

func e12() {
	s := models.SetTopBox()
	r := core.Explore(s, core.Options{AllBehaviours: true})
	trace := sim.RandomTrace(s, 2026, 500)
	fmt.Printf("%6s %3s %9s %9s\n", "cost", "f", "expected", "observed")
	for _, im := range r.Front {
		rep, err := sim.Run(s, im, trace, sim.Config{})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%5.0f$ %3.0f %8.0f%% %8.1f%%\n", im.Cost, im.Flexibility,
			100*sim.ExpectedServiceLevel(s, im), 100*rep.ServedFraction())
	}
}

func e13() {
	s := models.SetTopBox()
	base := spec.NewAllocation("uP2")
	baseImpl := core.Implement(s, base, core.Options{}, nil)
	fmt.Printf("deployed %v (f=%g); Pareto-optimal upgrades (hardware never discarded):\n",
		base, baseImpl.Flexibility)
	up := core.Upgrade(s, base, core.Options{})
	for _, im := range up.Front {
		fmt.Printf("  +$%-4.0f -> $%4.0f f=%g  %v\n",
			im.Cost-baseImpl.Cost, im.Cost, im.Flexibility, im.Allocation)
	}
	fmt.Println("fresh-design f=3 costs $120 (uP1); the upgrade pays $170 for the")
	fmt.Println("guarantee that the deployed box keeps all certified behaviours.")
}

func e14() {
	s := models.SDR()
	r := core.Explore(s, core.Options{})
	fmt.Print(r.FrontTable(s.Problem.Root.ID))
	ex := core.Exhaustive(s, core.Options{})
	agree := len(ex.Front) == len(r.Front)
	for i := range ex.Front {
		if !agree || ex.Front[i].Cost != r.Front[i].Cost || ex.Front[i].Flexibility != r.Front[i].Flexibility {
			agree = false
		}
	}
	fmt.Printf("exhaustive agreement: %v; %d possible allocations, %d attempts\n",
		agree, r.Stats.PossibleAllocations, r.Stats.Attempted)
}

func e15() {
	s := models.SetTopBox()
	fmt.Printf("BDD model count of the possible-allocation equation: %.0f (scan: 12288)\n",
		alloc.CountPossible(s))
	a, cost, _ := alloc.CheapestPossible(s)
	fmt.Printf("min-cost SAT: cheapest possible allocation %v at $%g\n", a, cost)
}

func e16() {
	s := models.SetTopBox()
	objs := []core.Objective{
		core.CostObjective(), core.InvFlexibilityObjective(), core.MeanLatencyObjective(),
	}
	r := core.ExploreMulti(s, core.Options{AllBehaviours: true}, objs)
	fmt.Printf("%-8s %-8s %-12s %s\n", "cost", "f", "mean-lat", "allocation")
	for i, im := range r.Front {
		fmt.Printf("%-8.0f %-8.3g %-12.4g %v\n",
			r.Objectives[i][0], 1/r.Objectives[i][1], r.Objectives[i][2], im.Allocation)
	}
	fmt.Printf("front grows 6 -> %d: faster ASICs become Pareto-relevant via latency\n", len(r.Front))
}

func e17() {
	s := models.SetTopBox()
	d4design := &hgraph.Cluster{
		ID: "dD4", Name: "dD4",
		Vertices:    []*hgraph.Vertex{{ID: "D4", Name: "D4", Attrs: hgraph.Attrs{spec.AttrCost: 65}}},
		PortBinding: map[string]hgraph.ID{"bus": "D4"},
	}
	if err := s.Arch.AddCluster("FPGA", d4design); err != nil {
		fmt.Println("error:", err)
		return
	}
	d4 := &hgraph.Cluster{
		ID: "gD4", Name: "gD4",
		Vertices: []*hgraph.Vertex{{
			ID: "PD4", Name: "PD4", Attrs: hgraph.Attrs{spec.AttrPeriod: models.TVPeriod},
		}},
		PortBinding: map[string]hgraph.ID{"in": "PD4", "out": "PD4"},
	}
	if err := s.AddBehaviour("ID", d4, []*spec.Mapping{
		{Process: "PD4", Resource: "A1", Latency: 30},
		{Process: "PD4", Resource: "A2", Latency: 28},
		{Process: "PD4", Resource: "D4", Latency: 70},
	}); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("a fourth decryption standard D4 arrives after shipping;")
	fmt.Printf("max flexibility 8 -> %g. Cheapest D4-capable upgrade per deployed box:\n",
		core.MaxFlexibility(s, core.Options{}))
	implementsD4 := func(im *core.Implementation) bool {
		for _, c := range im.Clusters {
			if c == "gD4" {
				return true
			}
		}
		return false
	}
	for _, base := range []spec.Allocation{
		spec.NewAllocation("uP2"),
		spec.NewAllocation("uP2", "dG1", "dU2", "C1"),
		spec.NewAllocation("uP2", "A1", "C2"),
	} {
		if im := core.Implement(s, base, core.Options{}, nil); im != nil && implementsD4(im) {
			fmt.Printf("  %v -> +$0 (A1 already hosts PD4)\n", base)
			continue
		}
		up := core.Upgrade(s, base, core.Options{})
		for _, im := range up.Front {
			if implementsD4(im) {
				fmt.Printf("  %v -> +$%.0f (%v)\n", base, im.Cost-base.Cost(s), im.Allocation)
				break
			}
		}
	}
}

func e18() {
	s := models.SetTopBox()
	r := core.Explore(s, core.Options{})
	fmt.Print(core.AnalyzeFamily(s, r.Front))
}
