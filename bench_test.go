// Experiment benchmarks: one per table/figure of the paper (DESIGN.md
// carries the index, EXPERIMENTS.md the paper-vs-measured record).
// Custom metrics attach the reproduced quantities to the benchmark
// output, so `go test -bench=.` regenerates every number.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/flex"
	"repro/internal/models"
	"repro/internal/pareto"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/spec"
)

// BenchmarkE1_Fig1Leaves — Fig. 1: the hierarchical TV-decoder problem
// graph and its leaf set per Eq. (1).
func BenchmarkE1_Fig1Leaves(b *testing.B) {
	g := models.DecoderProblem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(g.Leaves()) != 7 {
			b.Fatal("Fig. 1 has 7 leaves")
		}
	}
	b.ReportMetric(7, "leaves")
	b.ReportMetric(6, "variants")
}

// BenchmarkE2_Fig2Allocations — Fig. 2: the possible-resource-allocation
// set of the decoder specification (the paper's upward closure of {μP}).
func BenchmarkE2_Fig2Allocations(b *testing.B) {
	s := models.Decoder()
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n = 0
		alloc.Enumerate(s, alloc.Options{IncludeUselessComm: true}, func(alloc.Candidate) bool {
			n++
			return true
		})
	}
	b.ReportMetric(float64(n), "possible_allocs")
}

// BenchmarkE3_Fig3Flexibility — Fig. 3: the worked flexibility equation
// (max 8; 5 without the game cluster).
func BenchmarkE3_Fig3Flexibility(b *testing.B) {
	g := models.SetTopProblem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if flex.MaxFlexibility(g) != 8 {
			b.Fatal("f(G_P) = 8")
		}
		if flex.Flexibility(g, flex.Except(flex.AllActive, "gG")) != 5 {
			b.Fatal("f without gG = 5")
		}
	}
	b.ReportMetric(8, "f_max")
	b.ReportMetric(5, "f_without_game")
}

// BenchmarkE4_TradeoffCurve — Fig. 4: the cost vs 1/flexibility
// trade-off curve with dominance pruning; the hypervolume quantifies
// the curve.
func BenchmarkE4_TradeoffCurve(b *testing.B) {
	s := models.SetTopBox()
	var hv float64
	var rows int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := core.Explore(s, core.Options{})
		front := &pareto.Front{}
		var pts []dot.TradeoffPoint
		for _, im := range r.Front {
			front.Add(&pareto.Entry{Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility)})
			pts = append(pts, dot.TradeoffPoint{Cost: im.Cost, Flexibility: im.Flexibility})
		}
		hv = pareto.Hypervolume2D(front, [2]float64{500, 1})
		rows = len(dot.TradeoffTSV(pts))
		if rows == 0 {
			b.Fatal("empty curve")
		}
	}
	b.ReportMetric(hv, "hypervolume")
}

// BenchmarkE5_Table1 — Table 1: assembling the case-study specification
// from the published mapping table and validating it.
func BenchmarkE5_Table1(b *testing.B) {
	b.ReportAllocs()
	var m int
	for i := 0; i < b.N; i++ {
		s := models.SetTopBox()
		m = len(s.Mappings)
	}
	b.ReportMetric(float64(m), "mapping_edges")
}

// BenchmarkE6_CaseStudyExplore — the Section 5 Pareto table: EXPLORE on
// the Set-Top box, asserting the published six rows.
func BenchmarkE6_CaseStudyExplore(b *testing.B) {
	s := models.SetTopBox()
	want := [][2]float64{{100, 2}, {120, 3}, {230, 4}, {290, 5}, {360, 7}, {430, 8}}
	b.ReportAllocs()
	b.ResetTimer()
	var st core.Stats
	for i := 0; i < b.N; i++ {
		r := core.Explore(s, core.Options{})
		if len(r.Front) != len(want) {
			b.Fatal("front size")
		}
		for k, w := range want {
			if r.Front[k].Cost != w[0] || r.Front[k].Flexibility != w[1] {
				b.Fatalf("row %d mismatch", k)
			}
		}
		st = r.Stats
	}
	b.ReportMetric(6, "pareto_points")
	b.ReportMetric(float64(st.BindingRuns), "binding_runs")
}

// BenchmarkE7_PruningStats — Section 5's search-space reduction:
// 2^25 design points, 2^14 allocation subsets, possible allocations,
// and implementation attempts, for EXPLORE and for the exhaustive
// baseline.
func BenchmarkE7_PruningStats(b *testing.B) {
	s := models.SetTopBox()
	b.Run("explore", func(b *testing.B) {
		var st core.Stats
		for i := 0; i < b.N; i++ {
			st = core.Explore(s, core.Options{}).Stats
		}
		b.ReportMetric(st.DesignSpace, "design_space")
		b.ReportMetric(float64(st.PossibleAllocations), "possible_allocs")
		b.ReportMetric(float64(st.Attempted), "attempted")
	})
	b.Run("explore-nopruning", func(b *testing.B) {
		var st core.Stats
		for i := 0; i < b.N; i++ {
			st = core.Explore(s, core.Options{IncludeUselessComm: true}).Stats
		}
		b.ReportMetric(float64(st.PossibleAllocations), "possible_allocs")
		b.ReportMetric(float64(st.Attempted), "attempted")
	})
	b.Run("exhaustive", func(b *testing.B) {
		var st core.Stats
		for i := 0; i < b.N; i++ {
			st = core.Exhaustive(s, core.Options{}).Stats
		}
		b.ReportMetric(float64(st.Attempted), "attempted")
		b.ReportMetric(float64(st.BindingRuns), "binding_runs")
	})
}

// BenchmarkE8_SyntheticSweep — Section 4's scalability claim: search
// spaces of 10^5–10^12 design points reduce to 10^3–10^4 possible
// allocations and far fewer implementation attempts.
func BenchmarkE8_SyntheticSweep(b *testing.B) {
	cases := []struct {
		name string
		p    models.SyntheticParams
	}{
		{"small-2^16", models.SyntheticParams{Seed: 1, Apps: 2, Depth: 1, Branch: 2,
			Vertices: 2, Processors: 2, ASICs: 2, Designs: 2, Buses: 4, TimedFraction: 0.4, AccelOnlyFraction: 0.3}},
		{"medium-2^26", models.SyntheticParams{Seed: 2, Apps: 3, Depth: 1, Branch: 3,
			Vertices: 2, Processors: 2, ASICs: 3, Designs: 3, Buses: 6, TimedFraction: 0.4, AccelOnlyFraction: 0.3}},
		{"large-2^71", models.SyntheticParams{Seed: 3, Apps: 4, Depth: 2, Branch: 3,
			Vertices: 2, Processors: 3, ASICs: 4, Designs: 4, Buses: 8, TimedFraction: 0.3, AccelOnlyFraction: 0.3}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			s := models.Synthetic(tc.p)
			var st core.Stats
			var front int
			for i := 0; i < b.N; i++ {
				r := core.Explore(s, core.Options{StopAtMaxFlex: true, MaxScan: 200000})
				st = r.Stats
				front = len(r.Front)
			}
			b.ReportMetric(st.DesignSpace, "design_space")
			b.ReportMetric(float64(st.Scanned), "scanned")
			b.ReportMetric(float64(st.PossibleAllocations), "possible_allocs")
			b.ReportMetric(float64(st.Attempted), "attempted")
			b.ReportMetric(float64(front), "front")
		})
	}
}

// BenchmarkE9_WorkedFeasibility — the paper's worked feasibility
// analysis of μP2 (f=2, game rejected by the 69% test) and μP1 (f=3).
func BenchmarkE9_WorkedFeasibility(b *testing.B) {
	s := models.SetTopBox()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		im2 := core.Implement(s, spec.NewAllocation("uP2"), core.Options{}, nil)
		im1 := core.Implement(s, spec.NewAllocation("uP1"), core.Options{}, nil)
		if im2.Flexibility != 2 || im1.Flexibility != 3 {
			b.Fatal("worked example mismatch")
		}
	}
	b.ReportMetric(2, "f_uP2")
	b.ReportMetric(3, "f_uP1")
}

// BenchmarkE10_WeightedFlex — footnote 2: the weighted flexibility
// variant over the case study.
func BenchmarkE10_WeightedFlex(b *testing.B) {
	s := models.SetTopBox()
	for _, c := range s.Problem.Clusters() {
		if len(c.Interfaces) == 0 && c.ID != "gI" {
			c.Attrs = map[string]float64{spec.AttrWeight: 2}
		}
	}
	var fmax float64
	for i := 0; i < b.N; i++ {
		r := core.Explore(s, core.Options{Weighted: true})
		fmax = r.MaxFlexibility
	}
	b.ReportMetric(fmax, "weighted_f_max")
}

// BenchmarkE11_ExplorerComparison — EXPLORE vs exhaustive vs random vs
// evolutionary (paper reference [2]) on the case study: front quality
// (coverage of the exact front) and solver effort.
func BenchmarkE11_ExplorerComparison(b *testing.B) {
	s := models.SetTopBox()
	exact := core.Explore(s, core.Options{})
	exactFront := &pareto.Front{}
	for _, im := range exact.Front {
		exactFront.Add(&pareto.Entry{Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility)})
	}
	ref := [2]float64{500, 1}
	exactHV := pareto.Hypervolume2D(exactFront, ref)
	coverage := func(r *core.Result) float64 {
		f := &pareto.Front{}
		for _, im := range r.Front {
			f.Add(&pareto.Entry{Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility)})
		}
		return pareto.Hypervolume2D(f, ref) / exactHV
	}
	b.Run("explore", func(b *testing.B) {
		var r *core.Result
		for i := 0; i < b.N; i++ {
			r = core.Explore(s, core.Options{})
		}
		b.ReportMetric(coverage(r), "hv_ratio")
		b.ReportMetric(float64(r.Stats.BindingRuns), "binding_runs")
	})
	b.Run("exhaustive", func(b *testing.B) {
		var r *core.Result
		for i := 0; i < b.N; i++ {
			r = core.Exhaustive(s, core.Options{})
		}
		b.ReportMetric(coverage(r), "hv_ratio")
		b.ReportMetric(float64(r.Stats.BindingRuns), "binding_runs")
	})
	b.Run("random1000", func(b *testing.B) {
		var r *core.Result
		for i := 0; i < b.N; i++ {
			r = core.RandomSearch(s, core.Options{}, 1000, 1)
		}
		b.ReportMetric(coverage(r), "hv_ratio")
		b.ReportMetric(float64(r.Stats.BindingRuns), "binding_runs")
	})
	b.Run("evolutionary", func(b *testing.B) {
		var r *core.Result
		for i := 0; i < b.N; i++ {
			r = core.Evolutionary(s, core.Options{}, core.EAConfig{Seed: 1})
		}
		b.ReportMetric(coverage(r), "hv_ratio")
		b.ReportMetric(float64(r.Stats.BindingRuns), "binding_runs")
	})
}

// BenchmarkE12_ServiceLevel — beyond the paper: the runtime payoff of
// flexibility. Expected service level of the cheapest and richest
// Pareto implementations under uniform behaviour requests.
func BenchmarkE12_ServiceLevel(b *testing.B) {
	s := models.SetTopBox()
	r := core.Explore(s, core.Options{AllBehaviours: true})
	var lo, hi float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		levels := sim.ServiceLevel(s, r.Front, 7, 200)
		lo, hi = levels[0], levels[len(levels)-1]
	}
	b.ReportMetric(lo, "service_cheapest")
	b.ReportMetric(hi, "service_richest")
}

// BenchmarkAblation_FlexBound — design-choice ablation: the flexibility
// estimation bound on vs off (same front, different effort).
func BenchmarkAblation_FlexBound(b *testing.B) {
	s := models.SetTopBox()
	b.Run("bound-on", func(b *testing.B) {
		var st core.Stats
		for i := 0; i < b.N; i++ {
			st = core.Explore(s, core.Options{}).Stats
		}
		b.ReportMetric(float64(st.Attempted), "attempted")
	})
	b.Run("bound-off", func(b *testing.B) {
		var st core.Stats
		for i := 0; i < b.N; i++ {
			st = core.Explore(s, core.Options{DisableFlexBound: true}).Stats
		}
		b.ReportMetric(float64(st.Attempted), "attempted")
	})
}

// BenchmarkAblation_TimingPolicy — design-choice ablation: the paper's
// 69% estimate vs the exact Liu-Layland bound vs response-time
// analysis.
func BenchmarkAblation_TimingPolicy(b *testing.B) {
	s := models.SetTopBox()
	for _, p := range []bind.TimingPolicy{
		bind.TimingPaper, bind.TimingLiuLayland, bind.TimingRTA, bind.TimingNone,
	} {
		b.Run(p.String(), func(b *testing.B) {
			var front int
			var f0 float64
			for i := 0; i < b.N; i++ {
				r := core.Explore(s, core.Options{Timing: p})
				front = len(r.Front)
				f0 = r.Front[0].Flexibility
			}
			b.ReportMetric(float64(front), "front")
			b.ReportMetric(f0, "f_at_cheapest")
		})
	}
}

// BenchmarkAblation_CostOrder — design-choice ablation: cost-sorted
// candidate order is what makes the flexibility bound effective; with
// the bound disabled the order does not matter for the result but the
// bound-on/off gap quantifies the synergy.
func BenchmarkAblation_CostOrder(b *testing.B) {
	s := models.SetTopBox()
	b.Run("sorted+bound", func(b *testing.B) {
		var st core.Stats
		for i := 0; i < b.N; i++ {
			st = core.Explore(s, core.Options{}).Stats
		}
		b.ReportMetric(float64(st.BindingRuns), "binding_runs")
	})
	b.Run("sorted+stop-at-max", func(b *testing.B) {
		var st core.Stats
		for i := 0; i < b.N; i++ {
			st = core.Explore(s, core.Options{StopAtMaxFlex: true}).Stats
		}
		b.ReportMetric(float64(st.Scanned), "scanned")
		b.ReportMetric(float64(st.BindingRuns), "binding_runs")
	})
}

// BenchmarkE13_Upgrade — beyond the paper: incremental platform
// upgrades from the deployed $100 box (supersets only; running
// behaviours guaranteed to survive).
func BenchmarkE13_Upgrade(b *testing.B) {
	s := models.SetTopBox()
	base := spec.NewAllocation("uP2")
	var front int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.Upgrade(s, base, core.Options{})
		front = len(r.Front)
	}
	b.ReportMetric(float64(front), "upgrade_points")
}

// BenchmarkE14_SDR — beyond the paper: the software-defined-radio case
// study, exact front in one exploration.
func BenchmarkE14_SDR(b *testing.B) {
	s := models.SDR()
	var st core.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.Explore(s, core.Options{})
		if len(r.Front) != 4 {
			b.Fatal("wrong front")
		}
		st = r.Stats
	}
	b.ReportMetric(float64(st.Attempted), "attempted")
	b.ReportMetric(4, "pareto_points")
}

// BenchmarkE15_SymbolicCount — the paper's "one boolean equation":
// counting the possible-allocation set symbolically (BDD) instead of
// scanning 2^14 subsets.
func BenchmarkE15_SymbolicCount(b *testing.B) {
	s := models.SetTopBox()
	b.ReportAllocs()
	var n float64
	for i := 0; i < b.N; i++ {
		n = alloc.CountPossible(s)
	}
	b.ReportMetric(n, "possible_allocs")
}

// BenchmarkExploreSynthetic — the evaluation-cache benchmark: one
// EXPLORE run over a mid-size synthetic spec with the cross-candidate
// caches on (the default) and off (the -cache=off legacy path). The
// flexibility bound is disabled so every possible allocation is
// implemented — the candidate-evaluation hot path the caches target,
// not the subset scan around it. The acceptance bar is ≥2× fewer
// allocs/op cached; the custom metrics record the per-run cache hit
// rates behind the saving.
func BenchmarkExploreSynthetic(b *testing.B) {
	p := models.SyntheticParams{Seed: 11, Apps: 3, Depth: 1, Branch: 3,
		Vertices: 2, Processors: 2, ASICs: 3, Designs: 3, Buses: 6,
		TimedFraction: 0.4, AccelOnlyFraction: 0.3}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"cached", false}, {"uncached", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s := models.Synthetic(p)
			var st core.Stats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st = core.Explore(s, core.Options{
					DisableCache: mode.disable, DisableFlexBound: true, MaxScan: 50000,
				}).Stats
			}
			b.ReportMetric(float64(st.BindingRuns), "binding_runs")
			if n := st.Cache.BindHits() + st.Cache.BindMisses; n > 0 {
				b.ReportMetric(float64(st.Cache.BindHits())/float64(n), "bind_hit_rate")
			}
			if n := st.Cache.FlattenHits + st.Cache.FlattenMisses; n > 0 {
				b.ReportMetric(float64(st.Cache.FlattenHits)/float64(n), "flatten_hit_rate")
			}
		})
	}
	// Worker-count variants of the same run through the pipelined
	// explorer (workers-1 routes to the sequential path). The front and
	// the semantic stats are identical across all of them — the variants
	// measure the ordered-commit pipeline's scaling, and the stall /
	// high-water gauges record how hard the commit stage had to reorder.
	// "workers=N", not "workers-N": bench.sh strips a trailing -N as the
	// GOMAXPROCS suffix, which would swallow a hyphenated worker count.
	// Producer variants: the same run with each possible-allocation
	// enumerator pinned. The emitted candidate stream — and therefore
	// the front and every semantic counter — is bit-identical; the
	// variants isolate the producer's own cost (bitset heap scan vs
	// cost-ordered BDD walk) inside a full EXPLORE run.
	for _, en := range []core.Enumerator{core.EnumeratorBitset, core.EnumeratorSymbolic} {
		b.Run("enumerator="+string(en), func(b *testing.B) {
			s := models.Synthetic(p)
			var st core.Stats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st = core.Explore(s, core.Options{
					DisableFlexBound: true, Enumerator: en,
				}).Stats
			}
			b.ReportMetric(float64(st.Scanned), "scanned")
			b.ReportMetric(float64(st.BindingRuns), "binding_runs")
		})
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s := models.Synthetic(p)
			var st core.Stats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st = core.ExploreParallel(s, core.Options{
					DisableFlexBound: true, MaxScan: 50000,
				}, w, 0).Stats
			}
			b.ReportMetric(float64(st.BindingRuns), "binding_runs")
			if w > 1 {
				b.ReportMetric(float64(st.Pipeline.CommitStalls), "commit_stalls")
				b.ReportMetric(float64(st.Pipeline.QueueHighWater), "queue_high_water")
				b.ReportMetric(float64(st.Pipeline.BatchesCommitted), "batches_committed")
				b.ReportMetric(float64(st.Pipeline.BoundPublishes), "bound_publishes")
			}
		})
	}
	// Sharded-producer variants: the exact run the "cached" variant
	// times, forced through P producer shards and the k-way merge on the
	// sequential explorer. The merged stream is bit-identical to the
	// direct scan, so ns/op isolates the sharding machinery's own cost;
	// bench.sh divides each variant by the cached baseline into
	// overhead_vs_direct, which benchdiff gates for producers=1 — the
	// pure merge-layer tax with zero parallelism to pay for it.
	for _, prod := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("producers=%d", prod), func(b *testing.B) {
			s := models.Synthetic(p)
			var st core.Stats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st = core.Explore(s, core.Options{
					DisableFlexBound: true, MaxScan: 50000, Producers: prod,
				}).Stats
			}
			b.ReportMetric(float64(st.BindingRuns), "binding_runs")
			b.ReportMetric(float64(st.Pipeline.Producers), "producers")
			b.ReportMetric(float64(st.Pipeline.MergeStalls), "merge_stalls")
		})
	}
}

// BenchmarkEnumerateSynthetic — the bitset-native allocation scan: the
// subset heap carries pooled index slices and unit bitsets, the
// useless-comm and supportability tests run on machine words, and no
// per-subset map is built — an Allocation map is materialized only for
// the emitted (possible) candidates. allocs/op is the acceptance
// metric: it scales with possible candidates, not with scanned subsets.
func BenchmarkEnumerateSynthetic(b *testing.B) {
	p := models.SyntheticParams{Seed: 11, Apps: 3, Depth: 1, Branch: 3,
		Vertices: 2, Processors: 2, ASICs: 3, Designs: 3, Buses: 6,
		TimedFraction: 0.4, AccelOnlyFraction: 0.3}
	s := models.Synthetic(p)
	var scanned, possible int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		possible = 0
		st := alloc.Enumerate(s, alloc.Options{MaxScan: 50000}, func(alloc.Candidate) bool {
			possible++
			return true
		})
		scanned = st.Scanned
	}
	b.ReportMetric(float64(scanned), "scanned")
	b.ReportMetric(float64(possible), "possible_allocs")
}

// BenchmarkEnumerateSymbolic — the escape from the 2^n allocation
// scan. The enumeration variant emits a 4096-candidate cost-ordered
// prefix over a 30-unit synthetic architecture, where the bitset heap
// scan would have to pop up to 2^30 subsets to reach the same stream
// position; the custom metrics record the BDD search nodes visited
// (the symbolic analogue of "scanned", measured ~675k — three orders
// of magnitude under 2^30) and the candidates emitted. allocs/op is
// the churn gauge: pooling the walk's frontier nodes and reusing its
// memo slices (internal/boolfunc) cut units=30 from ~175 MB / 2.07M
// allocs per op to ~57.7 MB / 560k — same visits, same stream. The count
// variants exercise the pure-symbolic path on 50- and 100-unit
// architectures, where cost-ordered *enumeration* effort is dominated
// by the cheap-bus cost plateau (docs/symbolic.md) but counting the
// whole possible-allocation set stays polynomial in the BDD size.
func BenchmarkEnumerateSymbolic(b *testing.B) {
	b.Run("units=30", func(b *testing.B) {
		s := models.Synthetic(models.ScaledSynthetic(1, 30))
		var st alloc.Stats
		emitted := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			emitted = 0
			st = alloc.EnumerateSymbolic(s, alloc.Options{}, func(alloc.Candidate) bool {
				emitted++
				return emitted < 4096
			})
		}
		b.ReportMetric(float64(st.Scanned), "visited")
		b.ReportMetric(float64(emitted), "emitted")
	})
	for _, units := range []int{50, 100} {
		b.Run(fmt.Sprintf("count/units=%d", units), func(b *testing.B) {
			s := models.Synthetic(models.ScaledSynthetic(1, units))
			var digits int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				digits = len(alloc.CountPossibleBig(s).String())
			}
			b.ReportMetric(float64(digits), "count_digits")
		})
	}
}

// BenchmarkE16_TriObjective — §4's "many different design objectives":
// cost × 1/flexibility × mean optimal latency. The front grows beyond
// the bi-objective one (faster ASICs become Pareto-relevant).
func BenchmarkE16_TriObjective(b *testing.B) {
	s := models.SetTopBox()
	objs := []core.Objective{
		core.CostObjective(), core.InvFlexibilityObjective(), core.MeanLatencyObjective(),
	}
	var front int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.ExploreMulti(s, core.Options{AllBehaviours: true}, objs)
		front = len(r.Front)
	}
	b.ReportMetric(float64(front), "front")
}

// BenchmarkServerOverhead — the service path's tax over the bare
// runtime: the same synthetic exploration measured as a direct
// core.Explore call and as a full loopback HTTP job lifecycle
// (submit → poll → result fetch) against internal/server. The delta
// between the two variants is the admission + scheduling + JSON +
// polling overhead per job; bench.sh records both into
// BENCH_explore.json so the service tax is tracked from day one.
func BenchmarkServerOverhead(b *testing.B) {
	body := `{"model": "synthetic", "seed": 1, "workers": 1}`
	b.Run("direct", func(b *testing.B) {
		s := models.Synthetic(models.DefaultSynthetic(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := core.Explore(s, core.Options{}); len(r.Front) == 0 {
				b.Fatal("empty front")
			}
		}
	})
	b.Run("http", func(b *testing.B) {
		srv, err := server.New(server.Config{CheckpointDir: b.TempDir(), MaxRunning: 1})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var view struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b.Fatalf("submit: status %d", resp.StatusCode)
			}
			for {
				rr, err := http.Get(ts.URL + "/jobs/" + view.ID + "/result")
				if err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, rr.Body)
				rr.Body.Close()
				if rr.StatusCode == http.StatusOK {
					break
				}
				if rr.StatusCode != http.StatusAccepted {
					b.Fatalf("result: status %d", rr.StatusCode)
				}
				time.Sleep(500 * time.Microsecond)
			}
		}
		b.StopTimer()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	})
}
