// Command benchdiff compares two BENCH_explore.json files (as written
// by scripts/bench.sh) and fails when a gated benchmark's ns/op
// regressed beyond a threshold.
//
//	go run ./scripts/benchdiff [-match RE] [-max-regress PCT] old.json new.json
//
// Every benchmark present in both files is printed with its old→new
// ns/op and the percent delta; only the benchmarks whose name matches
// -match are gated. The default gate covers the cached
// BenchmarkExploreSynthetic variant — the deterministic evaluation hot
// path — because wall-clock numbers for the uncached and multi-worker
// variants swing too much across runner hardware to gate in CI.
//
// Exit status: 0 gate passed, 1 regression, 2 operational error
// (bad flags, unreadable or malformed input, nothing to compare).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

type benchFile struct {
	Count      int                          `json:"count"`
	Benchmarks []map[string]json.RawMessage `json:"benchmarks"`
}

// load returns benchmark name → ns/op for every entry that carries one.
func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		var name string
		if raw, ok := b["name"]; ok {
			if err := json.Unmarshal(raw, &name); err != nil {
				continue
			}
		}
		var ns float64
		raw, ok := b["ns/op"]
		if name == "" || !ok || json.Unmarshal(raw, &ns) != nil || ns <= 0 {
			continue
		}
		out[name] = ns
	}
	return out, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the exit, so tests can drive the full CLI surface.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	match := fs.String("match", `^BenchmarkExploreSynthetic/cached$`,
		"regexp of benchmark names the regression gate applies to")
	maxRegress := fs.Float64("max-regress", 25,
		"fail when a gated benchmark's ns/op grows more than this percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-match RE] [-max-regress PCT] old.json new.json")
		return 2
	}
	gate, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	old, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	var names []string
	for name := range old {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no common benchmarks between the two files")
		return 2
	}

	failed := false
	gated := 0
	for _, name := range names {
		o, n := old[name], cur[name]
		delta := (n - o) / o * 100
		status := ""
		if gate.MatchString(name) {
			gated++
			if delta > *maxRegress {
				status = fmt.Sprintf("  REGRESSION (> %+.0f%%)", *maxRegress)
				failed = true
			} else {
				status = "  ok (gated)"
			}
		}
		fmt.Fprintf(stdout, "%-50s %14.0f -> %14.0f ns/op  %+7.1f%%%s\n", name, o, n, delta, status)
	}
	if gated == 0 {
		fmt.Fprintf(stderr, "benchdiff: no benchmark matched the gate %q\n", *match)
		return 2
	}
	if failed {
		return 1
	}
	return 0
}
