// Command benchdiff compares two BENCH_explore.json files (as written
// by scripts/bench.sh) and fails when a gated benchmark's ns/op
// regressed beyond a threshold, or when a gated parallel variant's
// scaling ratio (speedup_vs_1, derived by bench.sh) fell beyond a
// threshold.
//
//	go run ./scripts/benchdiff [-match RE] [-max-regress PCT] \
//	    [-scaling-match RE] [-max-scaling-loss PCT] \
//	    [-overhead-match RE] [-max-overhead PCT] old.json new.json
//
// Every benchmark present in both files is printed with its old→new
// ns/op and the percent delta; only the benchmarks whose name matches
// -match are gated on ns/op. The default gate covers the cached
// BenchmarkExploreSynthetic variant — the deterministic evaluation hot
// path — because wall-clock numbers for the uncached and multi-worker
// variants swing too much across runner hardware to gate in CI.
//
// The scaling gate is host-portable where absolute ns/op is not: the
// speedup_vs_1 ratio divides out the machine. It engages only for
// -scaling-match names whose OLD (committed) entry carries a
// speedup_vs_1 field — older baselines without the field simply leave
// the gate inactive — and fails when the new ratio loses more than
// -max-scaling-loss percent of the committed one, or when a
// gated-and-committed ratio is missing from the new file. When either
// file records a num_cpu below 4 (bench.sh writes the machine's CPU
// count), the scaling gate is skipped entirely with a loud warning: a
// workers=8 speedup measured on 1–3 CPUs says nothing about pipeline
// scaling. Files without num_cpu keep the gate active, so older
// baselines stay comparable.
//
// The overhead gate bounds the producer-sharding merge tax: bench.sh
// derives overhead_vs_direct — ns/op of a producers=N variant over
// ns/op of the direct (cached) run of the same workload — and the gate
// fails when a -overhead-match benchmark's new ratio exceeds
// 1 + -max-overhead percent. Like the ratios above it divides out the
// host, so it stays active on any CPU count; like the scaling gate it
// engages only where the committed baseline carries the field, and a
// gated-and-committed ratio missing from the new file is an error. The
// default covers producers=1 — the merge layer running with zero
// parallelism to pay for it, which must stay within noise of the
// direct scan.
//
// Exit status: 0 gates passed, 1 regression, 2 operational error
// (bad flags, unreadable or malformed input, nothing to compare).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

type benchFile struct {
	Count      int                          `json:"count"`
	NumCPU     int                          `json:"num_cpu"`
	Benchmarks []map[string]json.RawMessage `json:"benchmarks"`
}

// entry is one benchmark's gateable numbers: ns/op always, the scaling
// and overhead ratios only when bench.sh derived them.
type entry struct {
	ns          float64
	speedup     float64
	hasSpeedup  bool
	overhead    float64
	hasOverhead bool
}

// load returns benchmark name → entry for every benchmark that carries
// an ns/op, plus the recorded CPU count (0 when the file predates the
// num_cpu field).
func load(path string) (map[string]entry, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]entry, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		var name string
		if raw, ok := b["name"]; ok {
			if err := json.Unmarshal(raw, &name); err != nil {
				continue
			}
		}
		var e entry
		raw, ok := b["ns/op"]
		if name == "" || !ok || json.Unmarshal(raw, &e.ns) != nil || e.ns <= 0 {
			continue
		}
		if raw, ok := b["speedup_vs_1"]; ok && json.Unmarshal(raw, &e.speedup) == nil && e.speedup > 0 {
			e.hasSpeedup = true
		}
		if raw, ok := b["overhead_vs_direct"]; ok && json.Unmarshal(raw, &e.overhead) == nil && e.overhead > 0 {
			e.hasOverhead = true
		}
		out[name] = e
	}
	return out, f.NumCPU, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the exit, so tests can drive the full CLI surface.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	match := fs.String("match", `^BenchmarkExploreSynthetic/cached$`,
		"regexp of benchmark names the ns/op regression gate applies to")
	maxRegress := fs.Float64("max-regress", 25,
		"fail when a gated benchmark's ns/op grows more than this percent")
	scalingMatch := fs.String("scaling-match", `^BenchmarkExploreSynthetic/workers=8$`,
		"regexp of benchmark names the speedup_vs_1 scaling gate applies to")
	maxScalingLoss := fs.Float64("max-scaling-loss", 20,
		"fail when a gated benchmark's speedup_vs_1 shrinks more than this percent of the committed ratio")
	overheadMatch := fs.String("overhead-match", `^BenchmarkExploreSynthetic/producers=1$`,
		"regexp of benchmark names the overhead_vs_direct gate applies to")
	maxOverhead := fs.Float64("max-overhead", 25,
		"fail when a gated benchmark's overhead_vs_direct exceeds 1 plus this percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-match RE] [-max-regress PCT] [-scaling-match RE] [-max-scaling-loss PCT] old.json new.json")
		return 2
	}
	gate, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	scalingGate, err := regexp.Compile(*scalingMatch)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	overheadGate, err := regexp.Compile(*overheadMatch)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	old, oldCPU, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	cur, curCPU, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	// A workers=8 speedup ratio from a 1–3-CPU machine is noise, not
	// signal; refuse to gate on it rather than fail spuriously. 0 means
	// the file predates the num_cpu field — keep the gate active so old
	// baselines stay comparable.
	scalingActive := true
	lowCPU := func(n int) bool { return n > 0 && n < 4 }
	if lowCPU(oldCPU) || lowCPU(curCPU) {
		scalingActive = false
		fmt.Fprintf(stderr, "benchdiff: WARNING: scaling gate SKIPPED — baseline ran with %d CPU(s), candidate with %d; speedup_vs_1 needs >= 4 CPUs to be meaningful\n", oldCPU, curCPU)
	}

	var names []string
	for name := range old {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no common benchmarks between the two files")
		return 2
	}

	failed := false
	gated := 0
	for _, name := range names {
		o, n := old[name], cur[name]
		delta := (n.ns - o.ns) / o.ns * 100
		status := ""
		if gate.MatchString(name) {
			gated++
			if delta > *maxRegress {
				status = fmt.Sprintf("  REGRESSION (> %+.0f%%)", *maxRegress)
				failed = true
			} else {
				status = "  ok (gated)"
			}
		}
		fmt.Fprintf(stdout, "%-50s %14.0f -> %14.0f ns/op  %+7.1f%%%s\n", name, o.ns, n.ns, delta, status)
		// Both ratio gates engage only where the committed baseline
		// recorded the ratio: old baselines stay comparable.
		if scalingActive && scalingGate.MatchString(name) && o.hasSpeedup {
			if !n.hasSpeedup {
				fmt.Fprintf(stderr, "benchdiff: %s: committed file has speedup_vs_1 but the new file does not\n", name)
				return 2
			}
			floor := o.speedup * (1 - *maxScalingLoss/100)
			status = "  ok (scaling gated)"
			// The relative epsilon keeps an exactly-at-threshold ratio on
			// the passing side of the float arithmetic.
			if n.speedup < floor*(1-1e-9) {
				status = fmt.Sprintf("  SCALING LOSS (< %.2fx)", floor)
				failed = true
			}
			fmt.Fprintf(stdout, "%-50s %13.2fx -> %13.2fx speedup_vs_1%s\n", name, o.speedup, n.speedup, status)
		}
		if overheadGate.MatchString(name) && o.hasOverhead {
			if !n.hasOverhead {
				fmt.Fprintf(stderr, "benchdiff: %s: committed file has overhead_vs_direct but the new file does not\n", name)
				return 2
			}
			ceil := 1 + *maxOverhead/100
			status = "  ok (overhead gated)"
			if n.overhead > ceil*(1+1e-9) {
				status = fmt.Sprintf("  OVERHEAD (> %.2fx direct)", ceil)
				failed = true
			}
			fmt.Fprintf(stdout, "%-50s %13.2fx -> %13.2fx overhead_vs_direct%s\n", name, o.overhead, n.overhead, status)
		}
	}
	if gated == 0 {
		fmt.Fprintf(stderr, "benchdiff: no benchmark matched the gate %q\n", *match)
		return 2
	}
	if failed {
		return 1
	}
	return 0
}
