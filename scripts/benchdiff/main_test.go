package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench writes a minimal BENCH_explore.json with the given
// name→ns/op entries.
func writeBench(t *testing.T, name string, benches map[string]float64) string {
	t.Helper()
	var entries []string
	for n, ns := range benches {
		entries = append(entries, fmt.Sprintf(`{"name":%q,"ns/op":%g}`, n, ns))
	}
	data := fmt.Sprintf(`{"count":%d,"benchmarks":[%s]}`, len(benches), strings.Join(entries, ","))
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

const gatedName = "BenchmarkExploreSynthetic/cached"

func TestPassWithinThreshold(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{gatedName: 1000})
	cur := writeBench(t, "new.json", map[string]float64{gatedName: 1100})
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "ok (gated)") {
		t.Errorf("gated benchmark not marked ok:\n%s", out)
	}
}

func TestFailBeyondThreshold(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{gatedName: 1000})
	cur := writeBench(t, "new.json", map[string]float64{gatedName: 1300})
	code, out, _ := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("regression not reported:\n%s", out)
	}
}

// TestExactThresholdBoundary: the gate fires only beyond the
// threshold, so exactly +25.0%% must pass.
func TestExactThresholdBoundary(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{gatedName: 1000})
	cur := writeBench(t, "new.json", map[string]float64{gatedName: 1250})
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit = %d on an exactly-25%% delta, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "+25.0%") {
		t.Errorf("delta not printed as +25.0%%:\n%s", out)
	}
}

// TestMissingGatedBenchmark: the gated key absent from the new file
// means the gate cannot run — an operational error, not a pass.
func TestMissingGatedBenchmark(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{gatedName: 1000, "BenchmarkOther": 50})
	cur := writeBench(t, "new.json", map[string]float64{"BenchmarkOther": 55})
	code, _, errOut := runDiff(t, old, cur)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "no benchmark matched the gate") {
		t.Errorf("missing gate not diagnosed:\n%s", errOut)
	}
}

// TestNoCommonBenchmarks: disjoint files have nothing to compare.
func TestNoCommonBenchmarks(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"BenchmarkA": 10})
	cur := writeBench(t, "new.json", map[string]float64{"BenchmarkB": 10})
	code, _, errOut := runDiff(t, old, cur)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "no common benchmarks") {
		t.Errorf("disjoint files not diagnosed:\n%s", errOut)
	}
}

// TestMalformedInput: truncated or non-JSON input exits 2 with a
// diagnostic instead of panicking.
func TestMalformedInput(t *testing.T) {
	good := writeBench(t, "good.json", map[string]float64{gatedName: 1000})
	for name, data := range map[string]string{
		"truncated.json":  `{"count":1,"benchmarks":[{"name":"x"`,
		"notjson.json":    "BenchmarkExploreSynthetic/cached 100 12345 ns/op",
		"wrongshape.json": `{"benchmarks":"nope"}`,
	} {
		bad := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(bad, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		code, _, errOut := runDiff(t, good, bad)
		if code != 2 {
			t.Errorf("%s: exit = %d, want 2", name, code)
		}
		if !strings.Contains(errOut, name) {
			t.Errorf("%s: file not named in diagnostic:\n%s", name, errOut)
		}
	}
}

// TestMissingFile: an unreadable path exits 2.
func TestMissingFile(t *testing.T) {
	good := writeBench(t, "good.json", map[string]float64{gatedName: 1000})
	code, _, _ := runDiff(t, good, filepath.Join(t.TempDir(), "absent.json"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestBadUsage: wrong arity and bad regexps are usage errors.
func TestBadUsage(t *testing.T) {
	good := writeBench(t, "good.json", map[string]float64{gatedName: 1000})
	if code, _, _ := runDiff(t, good); code != 2 {
		t.Errorf("one file: exit = %d, want 2", code)
	}
	if code, _, _ := runDiff(t, "-match", "(", good, good); code != 2 {
		t.Errorf("bad regexp: exit = %d, want 2", code)
	}
}
