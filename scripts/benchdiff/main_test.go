package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench writes a minimal BENCH_explore.json with the given
// name→ns/op entries.
func writeBench(t *testing.T, name string, benches map[string]float64) string {
	t.Helper()
	var entries []string
	for n, ns := range benches {
		entries = append(entries, fmt.Sprintf(`{"name":%q,"ns/op":%g}`, n, ns))
	}
	data := fmt.Sprintf(`{"count":%d,"benchmarks":[%s]}`, len(benches), strings.Join(entries, ","))
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

const gatedName = "BenchmarkExploreSynthetic/cached"

func TestPassWithinThreshold(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{gatedName: 1000})
	cur := writeBench(t, "new.json", map[string]float64{gatedName: 1100})
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "ok (gated)") {
		t.Errorf("gated benchmark not marked ok:\n%s", out)
	}
}

func TestFailBeyondThreshold(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{gatedName: 1000})
	cur := writeBench(t, "new.json", map[string]float64{gatedName: 1300})
	code, out, _ := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("regression not reported:\n%s", out)
	}
}

// TestExactThresholdBoundary: the gate fires only beyond the
// threshold, so exactly +25.0%% must pass.
func TestExactThresholdBoundary(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{gatedName: 1000})
	cur := writeBench(t, "new.json", map[string]float64{gatedName: 1250})
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit = %d on an exactly-25%% delta, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "+25.0%") {
		t.Errorf("delta not printed as +25.0%%:\n%s", out)
	}
}

// TestMissingGatedBenchmark: the gated key absent from the new file
// means the gate cannot run — an operational error, not a pass.
func TestMissingGatedBenchmark(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{gatedName: 1000, "BenchmarkOther": 50})
	cur := writeBench(t, "new.json", map[string]float64{"BenchmarkOther": 55})
	code, _, errOut := runDiff(t, old, cur)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "no benchmark matched the gate") {
		t.Errorf("missing gate not diagnosed:\n%s", errOut)
	}
}

// TestNoCommonBenchmarks: disjoint files have nothing to compare.
func TestNoCommonBenchmarks(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"BenchmarkA": 10})
	cur := writeBench(t, "new.json", map[string]float64{"BenchmarkB": 10})
	code, _, errOut := runDiff(t, old, cur)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "no common benchmarks") {
		t.Errorf("disjoint files not diagnosed:\n%s", errOut)
	}
}

// TestMalformedInput: truncated or non-JSON input exits 2 with a
// diagnostic instead of panicking.
func TestMalformedInput(t *testing.T) {
	good := writeBench(t, "good.json", map[string]float64{gatedName: 1000})
	for name, data := range map[string]string{
		"truncated.json":  `{"count":1,"benchmarks":[{"name":"x"`,
		"notjson.json":    "BenchmarkExploreSynthetic/cached 100 12345 ns/op",
		"wrongshape.json": `{"benchmarks":"nope"}`,
	} {
		bad := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(bad, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		code, _, errOut := runDiff(t, good, bad)
		if code != 2 {
			t.Errorf("%s: exit = %d, want 2", name, code)
		}
		if !strings.Contains(errOut, name) {
			t.Errorf("%s: file not named in diagnostic:\n%s", name, errOut)
		}
	}
}

// TestMissingFile: an unreadable path exits 2.
func TestMissingFile(t *testing.T) {
	good := writeBench(t, "good.json", map[string]float64{gatedName: 1000})
	code, _, _ := runDiff(t, good, filepath.Join(t.TempDir(), "absent.json"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestBadUsage: wrong arity and bad regexps are usage errors.
func TestBadUsage(t *testing.T) {
	good := writeBench(t, "good.json", map[string]float64{gatedName: 1000})
	if code, _, _ := runDiff(t, good); code != 2 {
		t.Errorf("one file: exit = %d, want 2", code)
	}
	if code, _, _ := runDiff(t, "-match", "(", good, good); code != 2 {
		t.Errorf("bad regexp: exit = %d, want 2", code)
	}
}

const scaledName = "BenchmarkExploreSynthetic/workers=8"

// writeBenchSpeedup is writeBench with a speedup_vs_1 on every entry
// whose value is positive.
func writeBenchSpeedup(t *testing.T, name string, benches map[string][2]float64) string {
	t.Helper()
	var entries []string
	for n, v := range benches {
		if v[1] > 0 {
			entries = append(entries, fmt.Sprintf(`{"name":%q,"ns/op":%g,"speedup_vs_1":%g}`, n, v[0], v[1]))
		} else {
			entries = append(entries, fmt.Sprintf(`{"name":%q,"ns/op":%g}`, n, v[0]))
		}
	}
	data := fmt.Sprintf(`{"count":%d,"benchmarks":[%s]}`, len(benches), strings.Join(entries, ","))
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScalingGatePasses: losing less than -max-scaling-loss of the
// committed speedup ratio passes and is reported as gated.
func TestScalingGatePasses(t *testing.T) {
	old := writeBenchSpeedup(t, "old.json", map[string][2]float64{
		gatedName: {1000, 0}, scaledName: {900, 3.0},
	})
	cur := writeBenchSpeedup(t, "new.json", map[string][2]float64{
		gatedName: {1000, 0}, scaledName: {950, 2.6},
	})
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "ok (scaling gated)") {
		t.Errorf("scaling gate not reported:\n%s", out)
	}
}

// TestScalingGateFails: a speedup collapse beyond the threshold (here
// 3.0x -> 1.1x) fails the diff even though ns/op is fine.
func TestScalingGateFails(t *testing.T) {
	old := writeBenchSpeedup(t, "old.json", map[string][2]float64{
		gatedName: {1000, 0}, scaledName: {900, 3.0},
	})
	cur := writeBenchSpeedup(t, "new.json", map[string][2]float64{
		gatedName: {1000, 0}, scaledName: {950, 1.1},
	})
	code, out, _ := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "SCALING LOSS") {
		t.Errorf("scaling loss not reported:\n%s", out)
	}
}

// TestScalingGateExactBoundary: exactly -max-scaling-loss percent
// (default 20: 3.0x -> 2.4x) still passes; the gate fires only beyond.
func TestScalingGateExactBoundary(t *testing.T) {
	old := writeBenchSpeedup(t, "old.json", map[string][2]float64{
		gatedName: {1000, 0}, scaledName: {900, 3.0},
	})
	cur := writeBenchSpeedup(t, "new.json", map[string][2]float64{
		gatedName: {1000, 0}, scaledName: {900, 2.4},
	})
	if code, out, _ := runDiff(t, old, cur); code != 0 {
		t.Fatalf("exit = %d on an exact-threshold loss, want 0\n%s", code, out)
	}
}

// TestScalingGateInactiveWithoutCommittedRatio: a committed baseline
// predating speedup_vs_1 leaves the scaling gate off — the ns/op gate
// alone decides.
func TestScalingGateInactiveWithoutCommittedRatio(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{gatedName: 1000, scaledName: 900})
	cur := writeBenchSpeedup(t, "new.json", map[string][2]float64{
		gatedName: {1000, 0}, scaledName: {900, 1.0},
	})
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (no committed ratio, gate inactive)\n%s", code, out)
	}
	if strings.Contains(out, "scaling") {
		t.Errorf("inactive scaling gate still reported:\n%s", out)
	}
}

// TestScalingGateMissingNewRatio: the committed file promises a ratio
// the new file lost — an operational error, not a silent pass.
func TestScalingGateMissingNewRatio(t *testing.T) {
	old := writeBenchSpeedup(t, "old.json", map[string][2]float64{
		gatedName: {1000, 0}, scaledName: {900, 3.0},
	})
	cur := writeBench(t, "new.json", map[string]float64{gatedName: 1000, scaledName: 900})
	code, _, errOut := runDiff(t, old, cur)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "speedup_vs_1") {
		t.Errorf("missing ratio not diagnosed:\n%s", errOut)
	}
}

// writeBenchCPU is writeBenchSpeedup plus a top-level num_cpu field.
func writeBenchCPU(t *testing.T, name string, numCPU int, benches map[string][2]float64) string {
	t.Helper()
	var entries []string
	for n, v := range benches {
		if v[1] > 0 {
			entries = append(entries, fmt.Sprintf(`{"name":%q,"ns/op":%g,"speedup_vs_1":%g}`, n, v[0], v[1]))
		} else {
			entries = append(entries, fmt.Sprintf(`{"name":%q,"ns/op":%g}`, n, v[0]))
		}
	}
	data := fmt.Sprintf(`{"count":%d,"num_cpu":%d,"benchmarks":[%s]}`,
		len(benches), numCPU, strings.Join(entries, ","))
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScalingGateSkippedOnLowCPU: a speedup collapse that would fail
// the gate passes — with a loud warning — when either side ran on
// fewer than 4 CPUs, where workers=8 ratios are noise.
func TestScalingGateSkippedOnLowCPU(t *testing.T) {
	collapse := map[string][2]float64{gatedName: {1000, 0}, scaledName: {900, 1.05}}
	committed := map[string][2]float64{gatedName: {1000, 0}, scaledName: {900, 3.0}}
	cases := []struct{ oldCPU, newCPU int }{{1, 8}, {8, 2}, {1, 1}}
	for _, tc := range cases {
		old := writeBenchCPU(t, "old.json", tc.oldCPU, committed)
		cur := writeBenchCPU(t, "new.json", tc.newCPU, collapse)
		code, out, errOut := runDiff(t, old, cur)
		if code != 0 {
			t.Fatalf("cpus %d->%d: exit = %d, want 0 (gate skipped)\n%s", tc.oldCPU, tc.newCPU, code, out)
		}
		if !strings.Contains(errOut, "scaling gate SKIPPED") {
			t.Errorf("cpus %d->%d: no loud warning on stderr:\n%s", tc.oldCPU, tc.newCPU, errOut)
		}
	}
	// Both sides >= 4 CPUs: the same collapse must still fail.
	old := writeBenchCPU(t, "old.json", 8, committed)
	cur := writeBenchCPU(t, "new.json", 4, collapse)
	if code, out, _ := runDiff(t, old, cur); code != 1 {
		t.Fatalf("8->4 CPUs: exit = %d, want 1 (gate active)\n%s", code, out)
	}
	// Files without num_cpu keep the gate active (old baselines).
	old = writeBenchSpeedup(t, "old.json", committed)
	cur = writeBenchSpeedup(t, "new.json", collapse)
	if code, out, _ := runDiff(t, old, cur); code != 1 {
		t.Fatalf("no num_cpu: exit = %d, want 1 (gate active)\n%s", code, out)
	}
}

const overheadName = "BenchmarkExploreSynthetic/producers=1"

// writeBenchOverhead is writeBench with an overhead_vs_direct on every
// entry whose value is positive.
func writeBenchOverhead(t *testing.T, name string, benches map[string][2]float64) string {
	t.Helper()
	var entries []string
	for n, v := range benches {
		if v[1] > 0 {
			entries = append(entries, fmt.Sprintf(`{"name":%q,"ns/op":%g,"overhead_vs_direct":%g}`, n, v[0], v[1]))
		} else {
			entries = append(entries, fmt.Sprintf(`{"name":%q,"ns/op":%g}`, n, v[0]))
		}
	}
	data := fmt.Sprintf(`{"count":%d,"benchmarks":[%s]}`, len(benches), strings.Join(entries, ","))
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOverheadGatePasses: a producers=1 merge tax within 1 +
// -max-overhead of the direct scan passes and is reported as gated.
// The gate is absolute (the ratio already divides out the host), so a
// committed 1.02x does not tighten the bar for a new 1.10x.
func TestOverheadGatePasses(t *testing.T) {
	old := writeBenchOverhead(t, "old.json", map[string][2]float64{
		gatedName: {1000, 0}, overheadName: {1020, 1.02},
	})
	cur := writeBenchOverhead(t, "new.json", map[string][2]float64{
		gatedName: {1000, 0}, overheadName: {1100, 1.10},
	})
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "ok (overhead gated)") {
		t.Errorf("overhead gate not reported:\n%s", out)
	}
}

// TestOverheadGateFails: a merge tax beyond 1 + -max-overhead (default
// 25: here 1.60x direct) fails the diff even though the gated ns/op
// entry itself is fine.
func TestOverheadGateFails(t *testing.T) {
	old := writeBenchOverhead(t, "old.json", map[string][2]float64{
		gatedName: {1000, 0}, overheadName: {1020, 1.02},
	})
	cur := writeBenchOverhead(t, "new.json", map[string][2]float64{
		gatedName: {1000, 0}, overheadName: {1600, 1.60},
	})
	code, out, _ := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "OVERHEAD") {
		t.Errorf("overhead breach not reported:\n%s", out)
	}
}

// TestOverheadGateExactBoundary: exactly 1.25x passes; the gate fires
// only beyond the ceiling.
func TestOverheadGateExactBoundary(t *testing.T) {
	old := writeBenchOverhead(t, "old.json", map[string][2]float64{
		gatedName: {1000, 0}, overheadName: {1020, 1.02},
	})
	cur := writeBenchOverhead(t, "new.json", map[string][2]float64{
		gatedName: {1000, 0}, overheadName: {1250, 1.25},
	})
	if code, out, _ := runDiff(t, old, cur); code != 0 {
		t.Fatalf("exit = %d on an exact-ceiling ratio, want 0\n%s", code, out)
	}
}

// TestOverheadGateInactiveWithoutCommittedRatio: a committed baseline
// predating overhead_vs_direct leaves the gate off.
func TestOverheadGateInactiveWithoutCommittedRatio(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{gatedName: 1000, overheadName: 1020})
	cur := writeBenchOverhead(t, "new.json", map[string][2]float64{
		gatedName: {1000, 0}, overheadName: {2000, 2.0},
	})
	code, out, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (no committed ratio, gate inactive)\n%s", code, out)
	}
	if strings.Contains(out, "overhead gated") {
		t.Errorf("inactive overhead gate still reported:\n%s", out)
	}
}

// TestOverheadGateMissingNewRatio: the committed file promises an
// overhead ratio the new file lost — an operational error.
func TestOverheadGateMissingNewRatio(t *testing.T) {
	old := writeBenchOverhead(t, "old.json", map[string][2]float64{
		gatedName: {1000, 0}, overheadName: {1020, 1.02},
	})
	cur := writeBench(t, "new.json", map[string]float64{gatedName: 1000, overheadName: 1020})
	code, _, errOut := runDiff(t, old, cur)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "overhead_vs_direct") {
		t.Errorf("missing ratio not diagnosed:\n%s", errOut)
	}
}

// TestOverheadGateActiveOnLowCPU: unlike the scaling gate, the
// overhead gate stays active on a 1-CPU runner — the producers=1 merge
// tax is a sequential measurement, meaningful on any machine.
func TestOverheadGateActiveOnLowCPU(t *testing.T) {
	writeCPU := func(name string, numCPU int, overhead float64) string {
		data := fmt.Sprintf(`{"count":2,"num_cpu":%d,"benchmarks":[`+
			`{"name":%q,"ns/op":1000},`+
			`{"name":%q,"ns/op":%g,"overhead_vs_direct":%g}]}`,
			numCPU, gatedName, overheadName, 1000*overhead, overhead)
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := writeCPU("old.json", 1, 1.02)
	cur := writeCPU("new.json", 1, 1.60)
	if code, out, _ := runDiff(t, old, cur); code != 1 {
		t.Fatalf("exit = %d, want 1 (overhead gate active on 1 CPU)\n%s", code, out)
	}
}
