#!/usr/bin/env bash
# Benchmark the EXPLORE hot path — allocation enumeration (E2 and the
# bitset-native BenchmarkEnumerateSynthetic), spec assembly (E5), the
# cached-vs-uncached / pipelined-worker candidate evaluation
# (BenchmarkExploreSynthetic and the other Explore benchmarks), and the
# server_overhead measurement (BenchmarkServerOverhead: a loopback HTTP
# job lifecycle vs the direct core.Explore call on the same synthetic
# spec) — and aggregate the numbers (ns/op, B/op, allocs/op, cache hit
# rates, binding-run counts, pipeline gauges) into BENCH_explore.json.
#
# Usage: scripts/bench.sh [count] [-force]   # default 5 repetitions
#
# -force: overwrite BENCH_explore.json even when the committed baseline
# was produced on a machine with more CPUs than this one. Without it,
# the script refuses the overwrite: re-baselining the parallel-scaling
# and producer-sharding numbers on a smaller machine silently lowers
# the bar the committed file is supposed to hold.
set -euo pipefail
cd "$(dirname "$0")/.."

count=5
force=0
for arg in "$@"; do
  case "$arg" in
    -force|--force) force=1 ;;
    *) count="$arg" ;;
  esac
done
# Record the machine's CPU count: benchdiff refuses to gate the
# workers=8 scaling ratio when either side ran on fewer than 4 CPUs
# (the ratio is meaningless there).
ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"

if [ "$force" -eq 0 ] && [ -f BENCH_explore.json ]; then
  committed_ncpu="$(sed -n 's/.*"num_cpu": *\([0-9]*\).*/\1/p' BENCH_explore.json | head -n1)"
  if [ -n "$committed_ncpu" ] && [ "$ncpu" -gt 0 ] && [ "$committed_ncpu" -gt "$ncpu" ]; then
    echo "bench.sh: committed BENCH_explore.json was measured on $committed_ncpu CPUs;" >&2
    echo "          this machine has $ncpu. Refusing to overwrite the baseline with" >&2
    echo "          weaker-machine numbers — rerun with -force to do it anyway." >&2
    exit 1
  fi
fi
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'E2|E5|Explore|Enumerate|ServerOverhead' -benchmem -count "$count" . | tee "$raw"

awk -v count="$count" -v ncpu="$ncpu" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    if (!(name in seen)) { order[++nb] = name; seen[name] = 1 }
    runs[name] += $2
    for (i = 3; i + 1 <= NF; i += 2) {
        u = $(i + 1); k = name SUBSEP u
        if (!(k in has)) {
            has[k] = 1
            units[name] = units[name] == "" ? u : units[name] "\t" u
        }
        sum[k] += $i; cnt[k]++
    }
}
END {
    # Derive the parallel scaling ratio: for every workers=N variant,
    # speedup_vs_1 = ns/op of the workers=1 variant of the same
    # benchmark family over ns/op of this variant. The ratio is what
    # benchdiff gates — absolute ns/op depends on the host, the ratio
    # only on how well the pipeline scales.
    for (b = 1; b <= nb; b++) {
        name = order[b]
        if (name !~ /\/workers=[0-9]+$/) continue
        base = name; sub(/\/workers=[0-9]+$/, "/workers=1", base)
        k = name SUBSEP "ns/op"; kb = base SUBSEP "ns/op"
        if ((k in cnt) && (kb in cnt) && sum[k] > 0) {
            speedup[name] = (sum[kb] / cnt[kb]) / (sum[k] / cnt[k])
        }
    }
    # Derive the producer-sharding overhead ratio: each producers=N
    # variant runs the exact workload of the cached variant of the same
    # family, so ns/op(producers=N) / ns/op(cached) is the sharding
    # machinery s own cost, independent of the host. benchdiff gates
    # overhead_vs_direct for producers=1 (merge tax with no parallelism
    # to pay for it).
    for (b = 1; b <= nb; b++) {
        name = order[b]
        if (name !~ /\/producers=[0-9]+$/) continue
        base = name; sub(/\/producers=[0-9]+$/, "/cached", base)
        k = name SUBSEP "ns/op"; kb = base SUBSEP "ns/op"
        if ((k in cnt) && (kb in cnt) && sum[kb] > 0) {
            overhead[name] = (sum[k] / cnt[k]) / (sum[kb] / cnt[kb])
        }
    }
    printf "{\n  \"count\": %d,\n  \"num_cpu\": %d,\n  \"benchmarks\": [\n", count, ncpu
    for (b = 1; b <= nb; b++) {
        name = order[b]
        printf "    {\"name\": \"%s\", \"iterations\": %d", name, runs[name]
        m = split(units[name], us, "\t")
        for (j = 1; j <= m; j++) {
            u = us[j]; k = name SUBSEP u
            printf ", \"%s\": %.6g", u, sum[k] / cnt[k]
        }
        if (name in speedup) printf ", \"speedup_vs_1\": %.6g", speedup[name]
        if (name in overhead) printf ", \"overhead_vs_direct\": %.6g", overhead[name]
        printf "}%s\n", (b < nb ? "," : "")
    }
    print "  ]"
    print "}"
}' "$raw" > BENCH_explore.json

echo "wrote BENCH_explore.json"
