#!/usr/bin/env bash
# Benchmark the EXPLORE hot path — allocation enumeration (E2 and the
# bitset-native BenchmarkEnumerateSynthetic), spec assembly (E5), and
# the cached-vs-uncached / pipelined-worker candidate evaluation
# (BenchmarkExploreSynthetic and the other Explore benchmarks) — and
# aggregate the numbers (ns/op, B/op, allocs/op, cache hit rates,
# binding-run counts, pipeline gauges) into BENCH_explore.json.
#
# Usage: scripts/bench.sh [count]    # default 5 repetitions
set -euo pipefail
cd "$(dirname "$0")/.."

count="${1:-5}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'E2|E5|Explore|Enumerate' -benchmem -count "$count" . | tee "$raw"

awk -v count="$count" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    if (!(name in seen)) { order[++nb] = name; seen[name] = 1 }
    runs[name] += $2
    for (i = 3; i + 1 <= NF; i += 2) {
        u = $(i + 1); k = name SUBSEP u
        if (!(k in has)) {
            has[k] = 1
            units[name] = units[name] == "" ? u : units[name] "\t" u
        }
        sum[k] += $i; cnt[k]++
    }
}
END {
    printf "{\n  \"count\": %d,\n  \"benchmarks\": [\n", count
    for (b = 1; b <= nb; b++) {
        name = order[b]
        printf "    {\"name\": \"%s\", \"iterations\": %d", name, runs[name]
        m = split(units[name], us, "\t")
        for (j = 1; j <= m; j++) {
            u = us[j]; k = name SUBSEP u
            printf ", \"%s\": %.6g", u, sum[k] / cnt[k]
        }
        printf "}%s\n", (b < nb ? "," : "")
    }
    print "  ]"
    print "}"
}' "$raw" > BENCH_explore.json

echo "wrote BENCH_explore.json"
