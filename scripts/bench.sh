#!/usr/bin/env bash
# Benchmark the EXPLORE hot path — allocation enumeration (E2 and the
# bitset-native BenchmarkEnumerateSynthetic), spec assembly (E5), the
# cached-vs-uncached / pipelined-worker candidate evaluation
# (BenchmarkExploreSynthetic and the other Explore benchmarks), and the
# server_overhead measurement (BenchmarkServerOverhead: a loopback HTTP
# job lifecycle vs the direct core.Explore call on the same synthetic
# spec) — and aggregate the numbers (ns/op, B/op, allocs/op, cache hit
# rates, binding-run counts, pipeline gauges) into BENCH_explore.json.
#
# Usage: scripts/bench.sh [count]    # default 5 repetitions
set -euo pipefail
cd "$(dirname "$0")/.."

count="${1:-5}"
# Record the machine's CPU count: benchdiff refuses to gate the
# workers=8 scaling ratio when either side ran on fewer than 4 CPUs
# (the ratio is meaningless there).
ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'E2|E5|Explore|Enumerate|ServerOverhead' -benchmem -count "$count" . | tee "$raw"

awk -v count="$count" -v ncpu="$ncpu" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    if (!(name in seen)) { order[++nb] = name; seen[name] = 1 }
    runs[name] += $2
    for (i = 3; i + 1 <= NF; i += 2) {
        u = $(i + 1); k = name SUBSEP u
        if (!(k in has)) {
            has[k] = 1
            units[name] = units[name] == "" ? u : units[name] "\t" u
        }
        sum[k] += $i; cnt[k]++
    }
}
END {
    # Derive the parallel scaling ratio: for every workers=N variant,
    # speedup_vs_1 = ns/op of the workers=1 variant of the same
    # benchmark family over ns/op of this variant. The ratio is what
    # benchdiff gates — absolute ns/op depends on the host, the ratio
    # only on how well the pipeline scales.
    for (b = 1; b <= nb; b++) {
        name = order[b]
        if (name !~ /\/workers=[0-9]+$/) continue
        base = name; sub(/\/workers=[0-9]+$/, "/workers=1", base)
        k = name SUBSEP "ns/op"; kb = base SUBSEP "ns/op"
        if ((k in cnt) && (kb in cnt) && sum[k] > 0) {
            speedup[name] = (sum[kb] / cnt[kb]) / (sum[k] / cnt[k])
        }
    }
    printf "{\n  \"count\": %d,\n  \"num_cpu\": %d,\n  \"benchmarks\": [\n", count, ncpu
    for (b = 1; b <= nb; b++) {
        name = order[b]
        printf "    {\"name\": \"%s\", \"iterations\": %d", name, runs[name]
        m = split(units[name], us, "\t")
        for (j = 1; j <= m; j++) {
            u = us[j]; k = name SUBSEP u
            printf ", \"%s\": %.6g", u, sum[k] / cnt[k]
        }
        if (name in speedup) printf ", \"speedup_vs_1\": %.6g", speedup[name]
        printf "}%s\n", (b < nb ? "," : "")
    }
    print "  ]"
    print "}"
}' "$raw" > BENCH_explore.json

echo "wrote BENCH_explore.json"
