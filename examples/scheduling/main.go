// Static scheduling of implemented behaviours — the paper's future
// work, made concrete.
//
//	go run ./examples/scheduling
//
// For the $360 Set-Top box (μP2 + ASIC A1), every implemented behaviour
// is compiled into a static non-preemptive schedule: Gantt charts show
// how the list scheduler overlaps the processor and the ASIC, and the
// schedule-based acceptance test is compared against the paper's 69 %
// utilization estimate for the behaviours the estimate rejects.
package main

import (
	"fmt"
	"log"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/listsched"
	"repro/internal/models"
	"repro/internal/spec"
)

func main() {
	s := models.SetTopBox()
	alloc := spec.NewAllocation("uP2", "A1", "C2")
	im := core.Implement(s, alloc, core.Options{AllBehaviours: true}, nil)
	if im == nil {
		log.Fatal("allocation should implement")
	}
	fmt.Printf("implementation %v (f=%g), %d behaviours\n\n", im.Allocation, im.Flexibility, len(im.Behaviours))

	for _, beh := range im.Behaviours {
		fp, err := s.Problem.Flatten(beh.ECS.Selection)
		if err != nil {
			log.Fatal(err)
		}
		sch, err := listsched.Build(s, fp, beh.Binding)
		if err != nil {
			log.Fatal(err)
		}
		if err := listsched.Validate(s, fp, beh.Binding, sch); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("behaviour %s  (makespan %g, meets periods: %v)\n",
			beh.ECS, sch.Makespan, listsched.MeetsPeriods(s, fp, sch))
		fmt.Print(listsched.Gantt(sch, 60))
		fmt.Println()
	}

	// Where the estimate and the schedule disagree: the game console on
	// μP2 alone exceeds the 69 % bound but its static schedule fits the
	// 240 ns frame period.
	fmt.Println("== Utilization estimate vs static schedule (game on uP2) ==")
	fpG, err := s.Problem.Flatten(hgraph.Selection{"IApp": "gG", "IG": "gG1"})
	if err != nil {
		log.Fatal(err)
	}
	av, err := s.ArchViewFor(spec.NewAllocation("uP2"), nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, ok := bind.Find(s, fpG, av, bind.Options{Timing: bind.TimingPaper}); ok {
		log.Fatal("the 69% estimate should reject the game on uP2")
	}
	res, ok := bind.Find(s, fpG, av, bind.Options{Timing: bind.TimingNone})
	if !ok {
		log.Fatal("binding exists structurally")
	}
	sch, err := listsched.Build(s, fpG, res.Binding)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("utilization (PG1+PD)/240 = %.3f > 0.69      -> estimate rejects\n", (95.0+90)/240)
	fmt.Printf("static schedule timed span %g <= period 240 -> schedule accepts\n", timedSpan(s, sch))
	fmt.Print(listsched.Gantt(sch, 60))
	fmt.Println("\nThe paper's estimate is deliberately conservative; the scheduler")
	fmt.Println("(its declared future work) recovers the lost design point.")
}

func timedSpan(s *spec.Spec, sch *listsched.Schedule) float64 {
	span := 0.0
	for _, e := range sch.Entries {
		if s.Period(e.Process) > 0 && e.Finish > span {
			span = e.Finish
		}
	}
	return span
}
