// Quickstart: model a tiny flexible system, explore its
// flexibility/cost trade-off, and inspect the result.
//
//	go run ./examples/quickstart
//
// The system is a sensor node that must support two alternative
// filtering algorithms (an interface with two clusters) on a platform
// of a microcontroller and an optional DSP connected by a bus. More
// implemented alternatives = more flexibility = more cost.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

func main() {
	// 1. Behaviour: a hierarchical problem graph. The sampling process
	//    feeds a filter interface that can be refined by a cheap IIR
	//    filter or a high-quality FFT filter; both periods are 100 µs.
	pb := hgraph.NewBuilder("sensor-problem", "top")
	pb.Root().Vertex("sample")
	filt := pb.Root().Interface("IFilter",
		hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	filt.Cluster("iir").Vertex("runIIR", spec.AttrPeriod, 100).
		Bind("in", "runIIR").Bind("out", "runIIR")
	filt.Cluster("fft").Vertex("runFFT", spec.AttrPeriod, 100).
		Bind("in", "runFFT").Bind("out", "runFFT")
	pb.Root().Vertex("send")
	pb.Root().PortEdge("sample", "", "IFilter", "in")
	pb.Root().PortEdge("IFilter", "out", "send", "")
	problem := pb.MustBuild()

	// 2. Structure: an architecture graph. The MCU is mandatory; a DSP
	//    can be added via a bus.
	ab := hgraph.NewBuilder("sensor-arch", "arch")
	ab.Root().Vertex("MCU", spec.AttrCost, 5)
	ab.Root().Vertex("DSP", spec.AttrCost, 12)
	ab.Root().Vertex("BUS", spec.AttrCost, 1, spec.AttrComm, 1)
	ab.Root().Edge("MCU", "BUS")
	ab.Root().Edge("BUS", "DSP")
	arch := ab.MustBuild()

	// 3. Mapping edges: which process can run where, and how fast.
	s, err := spec.New("sensor", problem, arch, []*spec.Mapping{
		{Process: "sample", Resource: "MCU", Latency: 10},
		{Process: "send", Resource: "MCU", Latency: 5},
		{Process: "runIIR", Resource: "MCU", Latency: 40},
		{Process: "runIIR", Resource: "DSP", Latency: 8},
		{Process: "runFFT", Resource: "DSP", Latency: 30}, // too heavy for the MCU
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Explore the flexibility/cost design space.
	result := core.Explore(s, core.Options{})
	fmt.Printf("max flexibility: %g\n\n", result.MaxFlexibility)
	fmt.Print(result.FrontTable(problem.Root.ID))

	// 5. Inspect the richest implementation: which behaviours does it
	//    support, and how are they bound?
	best := result.Front[len(result.Front)-1]
	fmt.Printf("\nrichest implementation %v:\n", best)
	for _, b := range best.Behaviours {
		fmt.Printf("  behaviour %-28s binding %v\n", b.ECS, b.Binding)
	}

	// 6. Specifications serialize to JSON for tooling.
	fmt.Println("\nJSON model (excerpt):")
	if err := s.Write(limitedWriter{}); err != nil {
		log.Fatal(err)
	}
}

// limitedWriter prints only the first few lines of the JSON document.
type limitedWriter struct{}

func (limitedWriter) Write(p []byte) (int, error) {
	const maxBytes = 400
	if len(p) > maxBytes {
		os.Stdout.Write(p[:maxBytes])
		fmt.Println("\n  ...")
		return len(p), nil
	}
	return os.Stdout.Write(p)
}
