// Set-Top box walkthrough: the paper's Section 5 case study driven
// through the public API, following the text step by step.
//
//	go run ./examples/settopbox
package main

import (
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/flex"
	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/spec"
)

func main() {
	s := models.SetTopBox()

	// --- The specification (Figs. 3 and 5, Table 1). ---
	fmt.Println("== Specification ==")
	pv, pi, pc, _ := s.Problem.ElementCount()
	av, ai, ac, _ := s.Arch.ElementCount()
	fmt.Printf("problem graph : %d processes, %d interfaces, %d clusters\n", pv, pi, pc)
	fmt.Printf("architecture  : %d resources, %d interfaces, %d designs\n", av, ai, ac)
	fmt.Printf("mapping edges : %d (Table 1)\n", len(s.Mappings))
	units := alloc.Units(s)
	fmt.Printf("search space  : 2^(%d units + %d clusters) = 2^25 design points\n\n",
		len(units), pc)

	// --- Flexibility of the problem graph (Fig. 3's worked example). ---
	fmt.Println("== Flexibility (Definition 4) ==")
	fmt.Printf("f(G_P) with all clusters activatable : %g\n",
		flex.MaxFlexibility(s.Problem))
	fmt.Printf("f(G_P) without the game cluster      : %g\n\n",
		flex.Flexibility(s.Problem, flex.Except(flex.AllActive, "gG")))

	// --- The paper's worked feasibility analysis of candidate μP2. ---
	fmt.Println("== First candidate: uP2 alone ==")
	limit := sched.PaperUtilizationLimit
	fmt.Printf("digital TV  (PD1+PU1 on uP2): (95+45)/300 = %.3f <= %.2f  -> accepted\n",
		(95.0+45)/300, limit)
	fmt.Printf("game console (PG1+PD on uP2): (95+90)/240 = %.3f >  %.2f  -> rejected\n",
		(95.0+90)/240, limit)
	im := core.Implement(s, spec.NewAllocation("uP2"), core.Options{}, nil)
	fmt.Printf("implemented flexibility of {uP2}: %g (paper: 2)\n\n", im.Flexibility)

	// --- Full exploration: the published Pareto table. ---
	fmt.Println("== EXPLORE: Pareto-optimal set ==")
	r := core.Explore(s, core.Options{})
	fmt.Print(r.FrontTable(s.Problem.Root.ID))
	st := r.Stats
	fmt.Printf("\npruning: %.0f design points -> %d possible allocations -> %d implementation attempts\n",
		st.DesignSpace, st.PossibleAllocations, st.Attempted)
	fmt.Printf("(%0.4f%% of the design space needed the NP-complete binding solver)\n\n",
		100*float64(st.Attempted)/st.DesignSpace)

	// --- What each Pareto step buys. ---
	fmt.Println("== Marginal cost of flexibility ==")
	for i := 1; i < len(r.Front); i++ {
		dc := r.Front[i].Cost - r.Front[i-1].Cost
		df := r.Front[i].Flexibility - r.Front[i-1].Flexibility
		fmt.Printf("f %g -> %g : +$%.0f (%.0f$/flexibility unit)  adds %s\n",
			r.Front[i-1].Flexibility, r.Front[i].Flexibility, dc, dc/df,
			diffClusters(r.Front[i-1], r.Front[i]))
	}
}

func diffClusters(a, b *core.Implementation) string {
	have := map[string]bool{}
	for _, c := range a.Clusters {
		have[string(c)] = true
	}
	var added []string
	for _, c := range b.Clusters {
		if !have[string(c)] {
			added = append(added, string(c))
		}
	}
	return strings.Join(added, ",")
}
