// Software-defined radio: a second domain for the flexibility/cost
// method, plus incremental platform upgrades and a Markov environment.
//
//	go run ./examples/radio
//
// A radio must support GSM-style, WiFi-style and Bluetooth-style air
// interfaces with nested algorithm alternatives. The example explores
// the platform family, then upgrades a deployed entry-level radio
// without breaking its certified behaviours, and finally evaluates the
// long-run service level under a sticky Markov environment (users
// mostly stay on one standard).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	s := models.SDR()

	// --- Fresh design space. ---
	fmt.Println("== SDR platform family ==")
	r := core.Explore(s, core.Options{AllBehaviours: true})
	fmt.Print(r.FrontTable(s.Problem.Root.ID))
	fmt.Printf("max flexibility %g; %d possible allocations, %d implementation attempts\n\n",
		r.MaxFlexibility, r.Stats.PossibleAllocations, r.Stats.Attempted)

	// --- Incremental upgrade of the deployed entry radio. ---
	fmt.Println("== Upgrading the deployed {DSP1} radio ==")
	base := r.Front[0]
	up := core.Upgrade(s, base.Allocation, core.Options{AllBehaviours: true})
	fmt.Printf("deployed: %v (f=%g). Upgrade path (never discards hardware):\n",
		base.Allocation, base.Flexibility)
	for _, im := range up.Front {
		fmt.Printf("  +$%-4.0f -> $%4.0f f=%g  %v\n",
			im.Cost-base.Cost, im.Cost, im.Flexibility, im.Allocation)
	}
	fmt.Println()

	// --- Markov environment: mostly-sticky standard switching. ---
	fmt.Println("== Long-run service level under a sticky environment ==")
	modes := trace.ModesOf(s.Problem, 0)
	chain, err := trace.Sticky(modes, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := chain.Generate(42, 0, 2000, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %3s %10s %10s %9s\n", "cost", "f", "analytic", "simulated", "reconfig")
	for _, im := range r.Front {
		analytic, err := trace.ExpectedServiceLevel(chain, im)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Run(s, im, tr, sim.Config{ReconfigDelay: 20})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.0f$ %3.0f %9.1f%% %9.1f%% %9d\n",
			im.Cost, im.Flexibility, 100*analytic, 100*rep.ServedFraction(), rep.Reconfigurations)
	}
	fmt.Println()
	fmt.Println("The analytic column is Σ π_i·[behaviour_i implemented] over the")
	fmt.Println("chain's stationary distribution; the simulation converges to it.")
}
