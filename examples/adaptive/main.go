// Adaptive system at run time: what flexibility buys when the
// environment keeps changing.
//
//	go run ./examples/adaptive
//
// Every Pareto-optimal Set-Top box faces the same stream of channel
// switches (TV stations with different decryption/uncompression
// demands, game sessions, browsing). More flexible boxes serve more of
// the stream; the simulator also accounts FPGA reconfigurations and
// emits a hierarchical timed activation that is re-verified against
// the activation rules.
package main

import (
	"fmt"
	"log"

	"repro/internal/activation"
	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/models"
	"repro/internal/sim"
)

func main() {
	s := models.SetTopBox()
	r := core.Explore(s, core.Options{AllBehaviours: true})

	fmt.Println("Service level of each Pareto-optimal Set-Top box under a")
	fmt.Println("random environment trace (500 requests over the 10 behaviours):")
	fmt.Println()
	trace := sim.RandomTrace(s, 2026, 500)
	fmt.Printf("%10s | %4s | %9s | %8s | %8s | %8s\n",
		"cost", "f", "expected", "served", "rejected", "reconfig")
	fmt.Println("------------------------------------------------------------")
	for _, im := range r.Front {
		rep, err := sim.Run(s, im, trace, sim.Config{ReconfigDelay: 50, SwitchDelay: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0f$ | %4.0f | %8.0f%% | %7.1f%% | %8d | %8d\n",
			im.Cost, im.Flexibility,
			100*sim.ExpectedServiceLevel(s, im),
			100*rep.ServedFraction(), rep.Rejected, rep.Reconfigurations)
	}

	// A day in the life of the $290 box, verified phase by phase.
	fmt.Println()
	fmt.Println("Timed activation of the $290 box over an evening:")
	im := find(r, 290)
	evening := []sim.Request{
		{At: 0, Behaviour: sel("IApp", "gD", "ID", "gD1", "IU", "gU1")},    // station A
		{At: 3600, Behaviour: sel("IApp", "gG", "IG", "gG1")},              // game break
		{At: 7200, Behaviour: sel("IApp", "gD", "ID", "gD3", "IU", "gU1")}, // station B
		{At: 9000, Behaviour: sel("IApp", "gI")},                           // browsing
	}
	rep, err := sim.Run(s, im, evening, sim.Config{ReconfigDelay: 50})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range rep.Events {
		fmt.Printf("  t=%6.0f  %-11s %s\n", e.At, e.Kind, e.Detail)
	}
	if err := activation.CheckSchedule(s, im.Allocation, &rep.Schedule, bind.Options{}); err != nil {
		log.Fatalf("schedule verification failed: %v", err)
	}
	behSw, reconf := rep.Schedule.Switches()
	fmt.Printf("schedule verified: %d phases, %d behaviour switches, %d FPGA reconfigurations\n",
		len(rep.Schedule.Phases), behSw, reconf)
}

func find(r *core.Result, cost float64) *core.Implementation {
	for _, im := range r.Front {
		if im.Cost == cost {
			return im
		}
	}
	log.Fatalf("no front point at cost %v", cost)
	return nil
}

func sel(kv ...string) hgraph.Selection {
	out := hgraph.Selection{}
	for i := 0; i < len(kv); i += 2 {
		out[hgraph.ID(kv[i])] = hgraph.ID(kv[i+1])
	}
	return out
}
