// Platform-based design: dimensioning one platform for a product
// family.
//
//	go run ./examples/platformfamily
//
// A vendor ships three product tiers from one platform. The weighted
// flexibility metric (the paper's footnote 2) expresses that the TV
// behaviours earn more than the game behaviours; exploration under
// different timing policies shows how much platform the 69 % estimate
// over-provisions compared to exact response-time analysis.
package main

import (
	"fmt"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/models"
	"repro/internal/spec"
)

func main() {
	// --- Tiered product family via weighted flexibility. ---
	s := models.SetTopBox()
	// The browser ships in every tier (weight 1); TV variants are the
	// revenue drivers (weight 2 each); game classes are premium extras
	// (weight 1.5).
	for _, c := range []hgraph.ID{"gD1", "gD2", "gD3", "gU1", "gU2"} {
		s.Problem.ClusterByID(c).Attrs = hgraph.Attrs{spec.AttrWeight: 2}
	}
	for _, c := range []hgraph.ID{"gG1", "gG2", "gG3"} {
		s.Problem.ClusterByID(c).Attrs = hgraph.Attrs{spec.AttrWeight: 1.5}
	}

	fmt.Println("== Weighted flexibility (product-family value) ==")
	r := core.Explore(s, core.Options{Weighted: true})
	fmt.Print(r.FrontTable(s.Problem.Root.ID))
	fmt.Printf("\nmaximum family value: %g\n\n", r.MaxFlexibility)

	// --- Tier selection: pick the front points for three price caps. ---
	fmt.Println("== Tier selection ==")
	for _, tier := range []struct {
		name string
		cap  float64
	}{{"entry", 150}, {"mid", 300}, {"premium", 500}} {
		best := pick(r, tier.cap)
		if best == nil {
			fmt.Printf("%-8s (<= $%3.0f): no feasible platform\n", tier.name, tier.cap)
			continue
		}
		fmt.Printf("%-8s (<= $%3.0f): $%3.0f, value %4.1f, resources %v\n",
			tier.name, tier.cap, best.Cost, best.Flexibility, best.Allocation)
	}
	fmt.Println()

	// --- Timing-policy ablation on the unweighted case study. ---
	fmt.Println("== Timing-policy ablation (unweighted) ==")
	base := models.SetTopBox()
	fmt.Printf("%-14s | %5s | %s\n", "policy", "front", "(cost,f) pairs")
	fmt.Println("--------------------------------------------------------------")
	for _, p := range []bind.TimingPolicy{
		bind.TimingPaper, bind.TimingLiuLayland, bind.TimingRTA, bind.TimingNone,
	} {
		res := core.Explore(base, core.Options{Timing: p})
		fmt.Printf("%-14v | %5d | %s\n", p, len(res.Front), pairs(res))
	}
	fmt.Println()
	fmt.Println("Reading: exact RTA accepts the game console on uP2 (utilization")
	fmt.Println("0.77, worst response 185 <= 240), so the cheapest point already")
	fmt.Println("reaches f=3 — the paper's 69% estimate buys safety margin with")
	fmt.Println("an extra $20 processor upgrade.")
}

func pick(r *core.Result, cap float64) *core.Implementation {
	var best *core.Implementation
	for _, im := range r.Front {
		if im.Cost <= cap {
			best = im
		}
	}
	return best
}

func pairs(r *core.Result) string {
	out := ""
	for i, im := range r.Front {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("(%.0f,%g)", im.Cost, im.Flexibility)
	}
	return out
}
