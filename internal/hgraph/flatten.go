package hgraph

import (
	"fmt"
	"sort"
)

// Selection assigns to interfaces the cluster chosen to refine them
// (cluster selection in the paper). A selection needs entries only for
// interfaces that are active, i.e. reachable from the root through
// selected clusters. Selecting exactly one cluster per active interface
// corresponds to an elementary cluster selection; flattening such a
// selection yields a non-hierarchical graph.
type Selection map[ID]ID

// Clone returns a copy of the selection.
func (s Selection) Clone() Selection {
	c := make(Selection, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// String renders the selection deterministically (sorted by interface).
func (s Selection) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += k + "=" + string(s[ID(k)])
	}
	return out + "}"
}

// ActiveInterfaces returns the interfaces that are active under the
// given (possibly partial) selection: interfaces of the root cluster
// and, recursively, of every selected cluster. Interfaces whose
// selection is missing are included (they are active but unresolved).
func (g *Graph) ActiveInterfaces(sel Selection) []*Interface {
	var out []*Interface
	var walk func(c *Cluster)
	walk = func(c *Cluster) {
		for _, i := range c.Interfaces {
			out = append(out, i)
			if cid, ok := sel[i.ID]; ok {
				if sub := i.Cluster(cid); sub != nil {
					walk(sub)
				}
			}
		}
	}
	walk(g.Root)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ActiveClusters returns the IDs of all clusters activated by the
// selection, always including the root (rule 2 of hierarchical
// activation: activating a cluster activates its content; the root is
// always activated). The result is sorted.
func (g *Graph) ActiveClusters(sel Selection) []ID {
	out := []ID{g.Root.ID}
	var walk func(c *Cluster)
	walk = func(c *Cluster) {
		for _, i := range c.Interfaces {
			cid, ok := sel[i.ID]
			if !ok {
				continue
			}
			if sub := i.Cluster(cid); sub != nil {
				out = append(out, sub.ID)
				walk(sub)
			}
		}
	}
	walk(g.Root)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Complete reports whether the selection assigns a valid cluster to
// every active interface.
func (g *Graph) Complete(sel Selection) bool {
	ok := true
	var walk func(c *Cluster)
	walk = func(c *Cluster) {
		for _, i := range c.Interfaces {
			cid, has := sel[i.ID]
			if !has {
				ok = false
				continue
			}
			sub := i.Cluster(cid)
			if sub == nil {
				ok = false
				continue
			}
			walk(sub)
		}
	}
	walk(g.Root)
	return ok
}

// EnumerateSelections calls fn for every elementary cluster selection
// (every complete selection) of the graph, in a deterministic order.
// The selection passed to fn is reused between calls; clone it if it
// must be retained. Enumeration stops early if fn returns false.
func (g *Graph) EnumerateSelections(fn func(Selection) bool) {
	sel := Selection{}
	g.enumCluster(g.Root, sel, func() bool { return fn(sel) })
}

// enumCluster enumerates selections for the interfaces of cluster c
// (and, nested, of the clusters those selections activate), then calls
// done. It returns false if enumeration should stop.
func (g *Graph) enumCluster(c *Cluster, sel Selection, done func() bool) bool {
	return g.enumInterfaces(c.Interfaces, 0, sel, done)
}

func (g *Graph) enumInterfaces(ifs []*Interface, k int, sel Selection, done func() bool) bool {
	if k == len(ifs) {
		return done()
	}
	i := ifs[k]
	for _, sub := range i.Clusters {
		sel[i.ID] = sub.ID
		cont := g.enumCluster(sub, sel, func() bool {
			return g.enumInterfaces(ifs, k+1, sel, done)
		})
		delete(sel, i.ID)
		if !cont {
			return false
		}
	}
	return true
}

// Selections returns all elementary cluster selections materialized as
// independent maps. Prefer EnumerateSelections for large graphs.
func (g *Graph) Selections() []Selection {
	var out []Selection
	g.EnumerateSelections(func(s Selection) bool {
		out = append(out, s.Clone())
		return true
	})
	return out
}

// FlatEdge is a dependence edge of a flattened graph; interface
// endpoints of the original edge have been resolved through port
// bindings to leaf vertices.
type FlatEdge struct {
	From, To ID
	Orig     *Edge
}

// FlatGraph is the non-hierarchical graph obtained by flattening a
// hierarchical graph under an elementary cluster selection.
type FlatGraph struct {
	Name     string
	Vertices []*Vertex
	Edges    []FlatEdge

	succ map[ID][]ID
	pred map[ID][]ID
}

// Flatten resolves the hierarchy under the given selection: it
// activates the root's content and, for every active interface, the
// content of the selected cluster (hierarchical activation rules 1–2),
// and reroutes edges that attach to interface ports to the vertices the
// selected clusters bind those ports to. The selection must be complete.
func (g *Graph) Flatten(sel Selection) (*FlatGraph, error) {
	if !g.Complete(sel) {
		return nil, fmt.Errorf("hgraph %q: selection %v is not complete", g.Name, sel)
	}
	fg := &FlatGraph{Name: g.Name}
	var rawEdges []*Edge
	var walk func(c *Cluster)
	walk = func(c *Cluster) {
		fg.Vertices = append(fg.Vertices, c.Vertices...)
		rawEdges = append(rawEdges, c.Edges...)
		for _, i := range c.Interfaces {
			sub := i.Cluster(sel[i.ID])
			walk(sub)
		}
	}
	walk(g.Root)

	for _, e := range rawEdges {
		from, err := g.resolveEndpoint(e.From, e.FromPort, sel)
		if err != nil {
			return nil, fmt.Errorf("edge %q: %w", e.ID, err)
		}
		to, err := g.resolveEndpoint(e.To, e.ToPort, sel)
		if err != nil {
			return nil, fmt.Errorf("edge %q: %w", e.ID, err)
		}
		fg.Edges = append(fg.Edges, FlatEdge{From: from, To: to, Orig: e})
	}
	sort.Slice(fg.Vertices, func(a, b int) bool { return fg.Vertices[a].ID < fg.Vertices[b].ID })
	sort.Slice(fg.Edges, func(a, b int) bool {
		if fg.Edges[a].From != fg.Edges[b].From {
			return fg.Edges[a].From < fg.Edges[b].From
		}
		return fg.Edges[a].To < fg.Edges[b].To
	})
	return fg, nil
}

// resolveEndpoint maps an edge endpoint to a leaf vertex: vertex
// endpoints map to themselves, interface endpoints resolve through the
// selected cluster's port binding; when a binding targets a nested
// interface, resolution continues with the same port name on the nested
// interface.
func (g *Graph) resolveEndpoint(id ID, port string, sel Selection) (ID, error) {
	for {
		if g.VertexByID(id) != nil {
			return id, nil
		}
		iface := g.InterfaceByID(id)
		if iface == nil {
			return "", fmt.Errorf("endpoint %q is neither vertex nor interface", id)
		}
		cid, ok := sel[iface.ID]
		if !ok {
			return "", fmt.Errorf("interface %q unresolved in selection", id)
		}
		sub := iface.Cluster(cid)
		if sub == nil {
			return "", fmt.Errorf("interface %q: selected cluster %q unknown", id, cid)
		}
		target, ok := sub.PortBinding[port]
		if !ok {
			return "", fmt.Errorf("cluster %q: no binding for port %q", cid, port)
		}
		id = target
	}
}

// VertexByID returns the flat graph's vertex with the given ID, or nil.
func (fg *FlatGraph) VertexByID(id ID) *Vertex {
	for _, v := range fg.Vertices {
		if v.ID == id {
			return v
		}
	}
	return nil
}

// Precompute eagerly builds the adjacency indices that Successors,
// Predecessors and TopoSort otherwise build lazily on first use. The
// lazy build mutates the graph, so a FlatGraph shared between
// goroutines (e.g. an interned flattening reused across parallel
// exploration workers) must be Precomputed before it is published.
func (fg *FlatGraph) Precompute() {
	fg.buildAdjacency()
}

func (fg *FlatGraph) buildAdjacency() {
	if fg.succ != nil {
		return
	}
	fg.succ = map[ID][]ID{}
	fg.pred = map[ID][]ID{}
	for _, e := range fg.Edges {
		fg.succ[e.From] = append(fg.succ[e.From], e.To)
		fg.pred[e.To] = append(fg.pred[e.To], e.From)
	}
}

// Successors returns the direct successors of a vertex.
func (fg *FlatGraph) Successors(id ID) []ID {
	fg.buildAdjacency()
	return fg.succ[id]
}

// Predecessors returns the direct predecessors of a vertex.
func (fg *FlatGraph) Predecessors(id ID) []ID {
	fg.buildAdjacency()
	return fg.pred[id]
}

// TopoSort returns a topological order of the flat graph's vertices or
// an error if the graph contains a dependence cycle. Ties are broken by
// vertex ID so the order is deterministic.
func (fg *FlatGraph) TopoSort() ([]*Vertex, error) {
	fg.buildAdjacency()
	indeg := map[ID]int{}
	for _, v := range fg.Vertices {
		indeg[v.ID] = 0
	}
	for _, e := range fg.Edges {
		indeg[e.To]++
	}
	var ready []ID
	for _, v := range fg.Vertices {
		if indeg[v.ID] == 0 {
			ready = append(ready, v.ID)
		}
	}
	sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
	var order []*Vertex
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, fg.VertexByID(id))
		next := append([]ID(nil), fg.succ[id]...)
		sort.Slice(next, func(a, b int) bool { return next[a] < next[b] })
		for _, s := range next {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
		sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
	}
	if len(order) != len(fg.Vertices) {
		return nil, fmt.Errorf("flat graph %q contains a dependence cycle", fg.Name)
	}
	return order, nil
}

// IsAcyclic reports whether the flat graph is a DAG.
func (fg *FlatGraph) IsAcyclic() bool {
	_, err := fg.TopoSort()
	return err == nil
}
