package hgraph

import (
	"fmt"
	"sort"
)

// Validate checks structural well-formedness of the hierarchical graph:
//
//   - IDs are globally unique across vertices, interfaces, clusters and
//     edges at all levels;
//   - every interface has at least one refining cluster;
//   - edges reference nodes contained directly in the same cluster;
//   - edges attaching to an interface name one of its declared ports
//     (vertex endpoints must not name a port);
//   - every cluster refining an interface binds each of the interface's
//     ports to one of its internal nodes.
//
// It returns the first group of problems found as a single error.
func (g *Graph) Validate() error {
	var errs []string
	seen := map[ID]string{}
	claim := func(id ID, kind string) {
		if id == "" {
			errs = append(errs, fmt.Sprintf("%s with empty ID", kind))
			return
		}
		if prev, dup := seen[id]; dup {
			errs = append(errs, fmt.Sprintf("duplicate ID %q (%s and %s)", id, prev, kind))
			return
		}
		seen[id] = kind
	}

	var walk func(c *Cluster, owner *Interface)
	walk = func(c *Cluster, owner *Interface) {
		claim(c.ID, "cluster")
		local := map[ID]any{}
		for _, v := range c.Vertices {
			claim(v.ID, "vertex")
			local[v.ID] = v
		}
		for _, i := range c.Interfaces {
			claim(i.ID, "interface")
			local[i.ID] = i
			if len(i.Clusters) == 0 {
				errs = append(errs, fmt.Sprintf("interface %q has no refining cluster", i.ID))
			}
			portNames := map[string]bool{}
			for _, p := range i.Ports {
				if portNames[p.Name] {
					errs = append(errs, fmt.Sprintf("interface %q declares port %q twice", i.ID, p.Name))
				}
				portNames[p.Name] = true
			}
		}
		for _, e := range c.Edges {
			claim(e.ID, "edge")
			g.validateEndpoint(c, local, e, e.From, e.FromPort, "source", &errs)
			g.validateEndpoint(c, local, e, e.To, e.ToPort, "target", &errs)
		}
		for _, i := range c.Interfaces {
			for _, sub := range i.Clusters {
				g.validatePortBinding(i, sub, &errs)
				walk(sub, i)
			}
		}
		_ = owner
	}
	walk(g.Root, nil)

	if len(errs) > 0 {
		sort.Strings(errs)
		return fmt.Errorf("hgraph %q: %d problem(s): %s", g.Name, len(errs), errs[0])
	}
	return nil
}

func (g *Graph) validateEndpoint(c *Cluster, local map[ID]any, e *Edge, id ID, port, role string, errs *[]string) {
	node, ok := local[id]
	if !ok {
		*errs = append(*errs, fmt.Sprintf("edge %q: %s %q is not a node of cluster %q", e.ID, role, id, c.ID))
		return
	}
	switch n := node.(type) {
	case *Interface:
		if port == "" {
			*errs = append(*errs, fmt.Sprintf("edge %q: %s interface %q requires a port name", e.ID, role, id))
		} else if n.Port(port) == nil {
			*errs = append(*errs, fmt.Sprintf("edge %q: interface %q has no port %q", e.ID, id, port))
		}
	case *Vertex:
		if port != "" {
			*errs = append(*errs, fmt.Sprintf("edge %q: vertex %s endpoint %q must not name a port", e.ID, role, id))
		}
	}
}

func (g *Graph) validatePortBinding(i *Interface, c *Cluster, errs *[]string) {
	for _, p := range i.Ports {
		target, ok := c.PortBinding[p.Name]
		if !ok {
			*errs = append(*errs, fmt.Sprintf("cluster %q: missing binding for port %q of interface %q", c.ID, p.Name, i.ID))
			continue
		}
		if c.Vertex(target) == nil && c.Interface(target) == nil {
			*errs = append(*errs, fmt.Sprintf("cluster %q: port %q bound to %q which is not an internal node", c.ID, p.Name, target))
		}
	}
	for name := range c.PortBinding {
		if i.Port(name) == nil {
			*errs = append(*errs, fmt.Sprintf("cluster %q: binding for undeclared port %q of interface %q", c.ID, name, i.ID))
		}
	}
}
