package hgraph

import (
	"fmt"
	"sort"
)

// ProblemKind classifies a structural problem found by Problems. The
// kinds are stable so that tooling (package lint, CLIs) can map them to
// diagnostic codes without parsing messages.
type ProblemKind int

// Problem kinds.
const (
	// ProblemEmptyID: an element has an empty ID.
	ProblemEmptyID ProblemKind = iota
	// ProblemDuplicateID: two elements share one ID.
	ProblemDuplicateID
	// ProblemInterfaceNoCluster: an interface has no refining cluster.
	ProblemInterfaceNoCluster
	// ProblemDuplicatePort: an interface declares a port name twice.
	ProblemDuplicatePort
	// ProblemEdgeEndpoint: an edge references a node that is not
	// directly contained in its cluster.
	ProblemEdgeEndpoint
	// ProblemEdgePort: an edge endpoint names a missing port, omits a
	// required port, or names a port on a plain vertex.
	ProblemEdgePort
	// ProblemPortBinding: a cluster's port binding is missing, targets a
	// non-internal node, or binds an undeclared port.
	ProblemPortBinding
)

// String implements fmt.Stringer.
func (k ProblemKind) String() string {
	switch k {
	case ProblemEmptyID:
		return "empty-id"
	case ProblemDuplicateID:
		return "duplicate-id"
	case ProblemInterfaceNoCluster:
		return "interface-no-cluster"
	case ProblemDuplicatePort:
		return "duplicate-port"
	case ProblemEdgeEndpoint:
		return "edge-endpoint"
	case ProblemEdgePort:
		return "edge-port"
	case ProblemPortBinding:
		return "port-binding"
	default:
		return fmt.Sprintf("ProblemKind(%d)", int(k))
	}
}

// Problem is one structural well-formedness violation.
type Problem struct {
	Kind ProblemKind
	// Element is the most specific element involved (the edge, the
	// interface, the cluster); empty when the element itself has no ID.
	Element ID
	Message string
}

func (p Problem) String() string { return p.Message }

// Problems checks structural well-formedness of the hierarchical graph
// and returns every violation found:
//
//   - IDs are globally unique across vertices, interfaces, clusters and
//     edges at all levels;
//   - every interface has at least one refining cluster;
//   - edges reference nodes contained directly in the same cluster;
//   - edges attaching to an interface name one of its declared ports
//     (vertex endpoints must not name a port);
//   - every cluster refining an interface binds each of the interface's
//     ports to one of its internal nodes.
//
// The result is sorted by message for determinism; an empty result
// means the graph is well-formed.
func (g *Graph) Problems() []Problem {
	var probs []Problem
	add := func(kind ProblemKind, elem ID, format string, args ...any) {
		probs = append(probs, Problem{Kind: kind, Element: elem, Message: fmt.Sprintf(format, args...)})
	}
	seen := map[ID]string{}
	claim := func(id ID, kind string) {
		if id == "" {
			add(ProblemEmptyID, "", "%s with empty ID", kind)
			return
		}
		if prev, dup := seen[id]; dup {
			add(ProblemDuplicateID, id, "duplicate ID %q (%s and %s)", id, prev, kind)
			return
		}
		seen[id] = kind
	}

	var walk func(c *Cluster, owner *Interface)
	walk = func(c *Cluster, owner *Interface) {
		claim(c.ID, "cluster")
		local := map[ID]any{}
		for _, v := range c.Vertices {
			claim(v.ID, "vertex")
			local[v.ID] = v
		}
		for _, i := range c.Interfaces {
			claim(i.ID, "interface")
			local[i.ID] = i
			if len(i.Clusters) == 0 {
				add(ProblemInterfaceNoCluster, i.ID, "interface %q has no refining cluster", i.ID)
			}
			portNames := map[string]bool{}
			for _, p := range i.Ports {
				if portNames[p.Name] {
					add(ProblemDuplicatePort, i.ID, "interface %q declares port %q twice", i.ID, p.Name)
				}
				portNames[p.Name] = true
			}
		}
		for _, e := range c.Edges {
			claim(e.ID, "edge")
			validateEndpoint(c, local, e, e.From, e.FromPort, "source", add)
			validateEndpoint(c, local, e, e.To, e.ToPort, "target", add)
		}
		for _, i := range c.Interfaces {
			for _, sub := range i.Clusters {
				validatePortBinding(i, sub, add)
				walk(sub, i)
			}
		}
		_ = owner
	}
	walk(g.Root, nil)

	sort.SliceStable(probs, func(i, j int) bool { return probs[i].Message < probs[j].Message })
	return probs
}

// Validate checks structural well-formedness (see Problems) and returns
// the first group of problems found as a single error, or nil.
func (g *Graph) Validate() error {
	probs := g.Problems()
	if len(probs) > 0 {
		return fmt.Errorf("hgraph %q: %d problem(s): %s", g.Name, len(probs), probs[0].Message)
	}
	return nil
}

func validateEndpoint(c *Cluster, local map[ID]any, e *Edge, id ID, port, role string, add func(ProblemKind, ID, string, ...any)) {
	node, ok := local[id]
	if !ok {
		add(ProblemEdgeEndpoint, e.ID, "edge %q: %s %q is not a node of cluster %q", e.ID, role, id, c.ID)
		return
	}
	switch n := node.(type) {
	case *Interface:
		if port == "" {
			add(ProblemEdgePort, e.ID, "edge %q: %s interface %q requires a port name", e.ID, role, id)
		} else if n.Port(port) == nil {
			add(ProblemEdgePort, e.ID, "edge %q: interface %q has no port %q", e.ID, id, port)
		}
	case *Vertex:
		if port != "" {
			add(ProblemEdgePort, e.ID, "edge %q: vertex %s endpoint %q must not name a port", e.ID, role, id)
		}
	}
}

func validatePortBinding(i *Interface, c *Cluster, add func(ProblemKind, ID, string, ...any)) {
	for _, p := range i.Ports {
		target, ok := c.PortBinding[p.Name]
		if !ok {
			add(ProblemPortBinding, c.ID, "cluster %q: missing binding for port %q of interface %q", c.ID, p.Name, i.ID)
			continue
		}
		if c.Vertex(target) == nil && c.Interface(target) == nil {
			add(ProblemPortBinding, c.ID, "cluster %q: port %q bound to %q which is not an internal node", c.ID, p.Name, target)
		}
	}
	for name := range c.PortBinding {
		if i.Port(name) == nil {
			add(ProblemPortBinding, c.ID, "cluster %q: binding for undeclared port %q of interface %q", c.ID, name, i.ID)
		}
	}
}
