package hgraph

import "fmt"

// AddCluster attaches a new alternative refinement cluster to the
// interface with the given ID and revalidates the graph — the
// specification-evolution primitive behind incremental design: a new
// behaviour variant (a new decryption standard, a new game class)
// arrives after the platform shipped. On error the graph is left
// unchanged.
func (g *Graph) AddCluster(interfaceID ID, c *Cluster) error {
	iface := g.InterfaceByID(interfaceID)
	if iface == nil {
		return fmt.Errorf("hgraph %q: no interface %q", g.Name, interfaceID)
	}
	iface.Clusters = append(iface.Clusters, c)
	if err := g.Validate(); err != nil {
		iface.Clusters = iface.Clusters[:len(iface.Clusters)-1]
		return fmt.Errorf("hgraph %q: adding cluster %q: %w", g.Name, c.ID, err)
	}
	g.idx = nil // reindex lazily
	return nil
}

// RemoveCluster detaches the cluster with the given ID from its
// interface (e.g. a discontinued behaviour variant). Removing the last
// cluster of an interface is rejected — an interface without
// refinements violates the model. On error the graph is unchanged.
func (g *Graph) RemoveCluster(clusterID ID) error {
	owner := g.OwnerInterface(clusterID)
	if owner == nil {
		return fmt.Errorf("hgraph %q: no removable cluster %q (unknown or root)", g.Name, clusterID)
	}
	if len(owner.Clusters) == 1 {
		return fmt.Errorf("hgraph %q: cannot remove last cluster %q of interface %q",
			g.Name, clusterID, owner.ID)
	}
	kept := owner.Clusters[:0]
	for _, c := range owner.Clusters {
		if c.ID != clusterID {
			kept = append(kept, c)
		}
	}
	owner.Clusters = kept
	g.idx = nil
	return nil
}
