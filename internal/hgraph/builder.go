package hgraph

import (
	"errors"
	"fmt"
)

// Builder constructs hierarchical graphs with error accumulation: every
// construction method records problems instead of failing immediately,
// and Build reports them all at once. This keeps model definitions —
// which are naturally long and declarative — free of per-call error
// handling while still surfacing every mistake.
type Builder struct {
	name string
	root *clusterBuilder
	errs []error
}

// NewBuilder creates a builder for a hierarchical graph whose top level
// is the root cluster with the given IDs.
func NewBuilder(graphName string, rootID ID) *Builder {
	b := &Builder{name: graphName}
	b.root = &clusterBuilder{b: b, c: &Cluster{ID: rootID, Name: string(rootID)}}
	return b
}

// Root returns the builder for the top-level cluster.
func (b *Builder) Root() *ClusterBuilder { return (*ClusterBuilder)(b.root) }

// Build validates and returns the constructed graph. When construction
// methods recorded problems, all of them are reported at once (joined
// with errors.Join), not just the first.
func (b *Builder) Build() (*Graph, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("hgraph: %d construction error(s): %w", len(b.errs), errors.Join(b.errs...))
	}
	return New(b.name, b.root.c)
}

// MustBuild is like Build but panics on error; intended for statically
// known models.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

type clusterBuilder struct {
	b *Builder
	c *Cluster
}

// ClusterBuilder adds elements to one cluster.
type ClusterBuilder clusterBuilder

// Attr sets an attribute on the cluster.
func (cb *ClusterBuilder) Attr(key string, val float64) *ClusterBuilder {
	if cb.c.Attrs == nil {
		cb.c.Attrs = Attrs{}
	}
	cb.c.Attrs[key] = val
	return cb
}

// Vertex adds a non-hierarchical vertex with optional attributes given
// as alternating key, value pairs (keys must be strings, values
// float64-convertible numbers are supplied as float64).
func (cb *ClusterBuilder) Vertex(id ID, attrs ...any) *ClusterBuilder {
	v := &Vertex{ID: id, Name: string(id)}
	v.Attrs = cb.parseAttrs(id, attrs)
	cb.c.Vertices = append(cb.c.Vertices, v)
	return cb
}

func (cb *ClusterBuilder) parseAttrs(owner ID, attrs []any) Attrs {
	if len(attrs) == 0 {
		return nil
	}
	if len(attrs)%2 != 0 {
		cb.b.errorf("element %s: odd attribute list", owner)
		return nil
	}
	a := Attrs{}
	for i := 0; i < len(attrs); i += 2 {
		k, ok := attrs[i].(string)
		if !ok {
			cb.b.errorf("element %s: attribute key %v is not a string", owner, attrs[i])
			continue
		}
		switch val := attrs[i+1].(type) {
		case float64:
			a[k] = val
		case int:
			a[k] = float64(val)
		default:
			cb.b.errorf("element %s: attribute %s has non-numeric value %v", owner, k, attrs[i+1])
		}
	}
	return a
}

// Edge adds a directed dependence edge between two local nodes. The
// edge ID is synthesized from the endpoints.
func (cb *ClusterBuilder) Edge(from, to ID) *ClusterBuilder {
	return cb.PortEdge(from, "", to, "")
}

// PortEdge adds a directed edge where either endpoint may be an
// interface; fromPort/toPort name the interface ports used ("" for
// vertex endpoints).
func (cb *ClusterBuilder) PortEdge(from ID, fromPort string, to ID, toPort string) *ClusterBuilder {
	id := ID(fmt.Sprintf("%s:%s->%s", cb.c.ID, from, to))
	cb.c.Edges = append(cb.c.Edges, &Edge{ID: id, From: from, FromPort: fromPort, To: to, ToPort: toPort})
	return cb
}

// Interface adds an interface (hierarchical vertex) with the given
// ports and returns its builder so that alternative clusters can be
// attached.
func (cb *ClusterBuilder) Interface(id ID, ports ...Port) *InterfaceBuilder {
	i := &Interface{ID: id, Name: string(id), Ports: ports}
	cb.c.Interfaces = append(cb.c.Interfaces, i)
	return &InterfaceBuilder{b: cb.b, i: i}
}

// Bind records a port binding of this cluster: port name → internal
// node ID. Only meaningful for clusters that refine an interface.
func (cb *ClusterBuilder) Bind(port string, node ID) *ClusterBuilder {
	if cb.c.PortBinding == nil {
		cb.c.PortBinding = map[string]ID{}
	}
	cb.c.PortBinding[port] = node
	return cb
}

// InterfaceBuilder attaches alternative refinement clusters to one
// interface.
type InterfaceBuilder struct {
	b *Builder
	i *Interface
}

// Attr sets an attribute on the interface.
func (ib *InterfaceBuilder) Attr(key string, val float64) *InterfaceBuilder {
	if ib.i.Attrs == nil {
		ib.i.Attrs = Attrs{}
	}
	ib.i.Attrs[key] = val
	return ib
}

// Cluster adds an alternative refinement cluster to the interface and
// returns its builder.
func (ib *InterfaceBuilder) Cluster(id ID) *ClusterBuilder {
	c := &Cluster{ID: id, Name: string(id)}
	ib.i.Clusters = append(ib.i.Clusters, c)
	return (*ClusterBuilder)(&clusterBuilder{b: ib.b, c: c})
}
