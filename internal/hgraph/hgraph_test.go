package hgraph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildDecoder constructs the digital TV decoder of Fig. 1: top-level
// vertices P_A (authentification) and P_C (controller), an interface
// I_D with three alternative decryption clusters and an interface I_U
// with two alternative uncompression clusters, where uncompression
// consumes the output of decryption.
func buildDecoder(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder("fig1", "top")
	r := b.Root()
	r.Vertex("PA").Vertex("PC")
	ifD := r.Interface("ID", Port{Name: "in", Dir: In}, Port{Name: "out", Dir: Out})
	for k := 1; k <= 3; k++ {
		id := ID(fmt.Sprintf("gD%d", k))
		pd := ID(fmt.Sprintf("PD%d", k))
		ifD.Cluster(id).Vertex(pd).Bind("in", pd).Bind("out", pd)
	}
	ifU := r.Interface("IU", Port{Name: "in", Dir: In}, Port{Name: "out", Dir: Out})
	for k := 1; k <= 2; k++ {
		id := ID(fmt.Sprintf("gU%d", k))
		pu := ID(fmt.Sprintf("PU%d", k))
		ifU.Cluster(id).Vertex(pu).Bind("in", pu).Bind("out", pu)
	}
	r.PortEdge("PC", "", "ID", "in")
	r.PortEdge("ID", "out", "IU", "in")
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build decoder: %v", err)
	}
	return g
}

func TestFig1Leaves(t *testing.T) {
	g := buildDecoder(t)
	leaves := g.Leaves()
	want := []ID{"PA", "PC", "PD1", "PD2", "PD3", "PU1", "PU2"}
	if len(leaves) != len(want) {
		t.Fatalf("got %d leaves, want %d", len(leaves), len(want))
	}
	for i, w := range want {
		if leaves[i].ID != w {
			t.Errorf("leaf %d = %s, want %s", i, leaves[i].ID, w)
		}
	}
}

func TestElementCount(t *testing.T) {
	g := buildDecoder(t)
	v, i, c, e := g.ElementCount()
	if v != 7 {
		t.Errorf("vertices = %d, want 7", v)
	}
	if i != 2 {
		t.Errorf("interfaces = %d, want 2", i)
	}
	if c != 5 {
		t.Errorf("clusters = %d, want 5", c)
	}
	if e != 2 {
		t.Errorf("edges = %d, want 2", e)
	}
}

func TestCountVariants(t *testing.T) {
	g := buildDecoder(t)
	if got := g.CountVariants(); got != 6 {
		t.Errorf("CountVariants = %d, want 3*2 = 6", got)
	}
}

func TestSelectionsEnumeration(t *testing.T) {
	g := buildDecoder(t)
	sels := g.Selections()
	if len(sels) != 6 {
		t.Fatalf("got %d selections, want 6", len(sels))
	}
	seen := map[string]bool{}
	for _, s := range sels {
		if !g.Complete(s) {
			t.Errorf("selection %v incomplete", s)
		}
		if seen[s.String()] {
			t.Errorf("duplicate selection %v", s)
		}
		seen[s.String()] = true
	}
}

func TestEnumerateSelectionsEarlyStop(t *testing.T) {
	g := buildDecoder(t)
	n := 0
	g.EnumerateSelections(func(Selection) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("enumerated %d selections after early stop, want 3", n)
	}
}

func TestFlattenReroutesPorts(t *testing.T) {
	g := buildDecoder(t)
	sel := Selection{"ID": "gD2", "IU": "gU1"}
	fg, err := g.Flatten(sel)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	if len(fg.Vertices) != 4 {
		t.Fatalf("flat vertices = %d, want 4 (PA, PC, PD2, PU1)", len(fg.Vertices))
	}
	wantEdges := map[string]bool{"PC->PD2": true, "PD2->PU1": true}
	for _, e := range fg.Edges {
		key := string(e.From) + "->" + string(e.To)
		if !wantEdges[key] {
			t.Errorf("unexpected flat edge %s", key)
		}
		delete(wantEdges, key)
	}
	for k := range wantEdges {
		t.Errorf("missing flat edge %s", k)
	}
}

func TestFlattenIncompleteSelection(t *testing.T) {
	g := buildDecoder(t)
	if _, err := g.Flatten(Selection{"ID": "gD1"}); err == nil {
		t.Error("flatten with incomplete selection should fail")
	}
	if _, err := g.Flatten(Selection{"ID": "gD1", "IU": "nope"}); err == nil {
		t.Error("flatten with unknown cluster should fail")
	}
}

func TestActiveClusters(t *testing.T) {
	g := buildDecoder(t)
	got := g.ActiveClusters(Selection{"ID": "gD1", "IU": "gU2"})
	want := []ID{"gD1", "gU2", "top"}
	if len(got) != len(want) {
		t.Fatalf("ActiveClusters = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ActiveClusters[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLookupAndParents(t *testing.T) {
	g := buildDecoder(t)
	if g.VertexByID("PD2") == nil {
		t.Error("VertexByID(PD2) = nil")
	}
	if g.InterfaceByID("ID") == nil {
		t.Error("InterfaceByID(ID) = nil")
	}
	if g.ClusterByID("gU2") == nil {
		t.Error("ClusterByID(gU2) = nil")
	}
	if p := g.ParentCluster("PD2"); p == nil || p.ID != "gD2" {
		t.Errorf("ParentCluster(PD2) = %v, want gD2", p)
	}
	if o := g.OwnerInterface("gD2"); o == nil || o.ID != "ID" {
		t.Errorf("OwnerInterface(gD2) = %v, want ID", o)
	}
	if g.OwnerInterface("top") != nil {
		t.Error("OwnerInterface(top) should be nil")
	}
	if !g.Has("PA") || !g.Has("ID") || !g.Has("gD1") || g.Has("nope") {
		t.Error("Has misbehaves")
	}
}

func TestDepth(t *testing.T) {
	g := buildDecoder(t)
	if d := g.Depth(); d != 1 {
		t.Errorf("Depth = %d, want 1", d)
	}
	flat := MustNew("flat", &Cluster{ID: "r", Vertices: []*Vertex{{ID: "a"}}})
	if d := flat.Depth(); d != 0 {
		t.Errorf("flat Depth = %d, want 0", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildDecoder(t)
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	c.Root.Vertices[0].ID = "mutated"
	c.Root.Vertices[0].Attrs = Attrs{"x": 1}
	if g.Root.Vertices[0].ID == "mutated" {
		t.Error("clone shares vertex storage with original")
	}
	v, i, cl, e := c.ElementCount()
	ov, oi, ocl, oe := g.ElementCount()
	if i != oi || cl != ocl || e != oe || v != ov {
		t.Errorf("clone counts differ: (%d %d %d %d) vs (%d %d %d %d)", v, i, cl, e, ov, oi, ocl, oe)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		root *Cluster
	}{
		{"duplicate id", &Cluster{ID: "r", Vertices: []*Vertex{{ID: "a"}, {ID: "a"}}}},
		{"empty id", &Cluster{ID: "r", Vertices: []*Vertex{{ID: ""}}}},
		{"edge to unknown", &Cluster{ID: "r", Vertices: []*Vertex{{ID: "a"}},
			Edges: []*Edge{{ID: "e", From: "a", To: "b"}}}},
		{"interface without cluster", &Cluster{ID: "r",
			Interfaces: []*Interface{{ID: "i"}}}},
		{"edge to interface without port", &Cluster{ID: "r",
			Vertices: []*Vertex{{ID: "a"}},
			Interfaces: []*Interface{{ID: "i", Ports: []Port{{Name: "in"}},
				Clusters: []*Cluster{{ID: "c", Vertices: []*Vertex{{ID: "x"}},
					PortBinding: map[string]ID{"in": "x"}}}}},
			Edges: []*Edge{{ID: "e", From: "a", To: "i"}}}},
		{"vertex endpoint with port", &Cluster{ID: "r",
			Vertices: []*Vertex{{ID: "a"}, {ID: "b"}},
			Edges:    []*Edge{{ID: "e", From: "a", To: "b", ToPort: "p"}}}},
		{"missing port binding", &Cluster{ID: "r",
			Interfaces: []*Interface{{ID: "i", Ports: []Port{{Name: "in"}},
				Clusters: []*Cluster{{ID: "c", Vertices: []*Vertex{{ID: "x"}}}}}}}},
		{"binding to non-node", &Cluster{ID: "r",
			Interfaces: []*Interface{{ID: "i", Ports: []Port{{Name: "in"}},
				Clusters: []*Cluster{{ID: "c", Vertices: []*Vertex{{ID: "x"}},
					PortBinding: map[string]ID{"in": "y"}}}}}}},
		{"binding for undeclared port", &Cluster{ID: "r",
			Interfaces: []*Interface{{ID: "i",
				Clusters: []*Cluster{{ID: "c", Vertices: []*Vertex{{ID: "x"}},
					PortBinding: map[string]ID{"ghost": "x"}}}}}}},
		{"duplicate port", &Cluster{ID: "r",
			Interfaces: []*Interface{{ID: "i", Ports: []Port{{Name: "p"}, {Name: "p"}},
				Clusters: []*Cluster{{ID: "c", Vertices: []*Vertex{{ID: "x"}},
					PortBinding: map[string]ID{"p": "x"}}}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New("bad", tc.root); err == nil {
				t.Errorf("New accepted invalid graph (%s)", tc.name)
			}
		})
	}
}

func TestBuilderErrorAccumulation(t *testing.T) {
	b := NewBuilder("bad", "r")
	b.Root().Vertex("v", "odd")              // odd attribute list
	b.Root().Vertex("w", 1, 2)               // non-string key
	b.Root().Vertex("x", "k", "not-numeric") // non-numeric value
	_, err := b.Build()
	if err == nil {
		t.Fatal("Build should fail with accumulated errors")
	}
	// All accumulated problems must be reported, not just the first.
	msg := err.Error()
	for _, want := range []string{
		"3 construction error(s)",
		"element v: odd attribute list",
		"element w: attribute key 1 is not a string",
		"element x: attribute k has non-numeric value not-numeric",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Build error lacks %q:\n%s", want, msg)
		}
	}
}

func TestBuilderAttrs(t *testing.T) {
	b := NewBuilder("g", "r")
	b.Root().Vertex("v", "cost", 100, "lat", 2.5).Attr("rootAttr", 7)
	ifc := b.Root().Interface("i", Port{Name: "p"})
	ifc.Attr("ia", 1).Cluster("c").Attr("ca", 2).Vertex("x").Bind("p", "x")
	g := b.MustBuild()
	v := g.VertexByID("v")
	if got := v.Attrs.GetDefault("cost", 0); got != 100 {
		t.Errorf("cost = %v, want 100", got)
	}
	if got := v.Attrs.GetDefault("lat", 0); got != 2.5 {
		t.Errorf("lat = %v, want 2.5", got)
	}
	if got := g.Root.Attrs.GetDefault("rootAttr", 0); got != 7 {
		t.Errorf("rootAttr = %v, want 7", got)
	}
	if got := g.InterfaceByID("i").Attrs.GetDefault("ia", 0); got != 1 {
		t.Errorf("ia = %v, want 1", got)
	}
	if got := g.ClusterByID("c").Attrs.GetDefault("ca", 0); got != 2 {
		t.Errorf("ca = %v, want 2", got)
	}
	if _, ok := v.Attrs.Get("missing"); ok {
		t.Error("Get(missing) reported present")
	}
}

func TestAttrsNilSafety(t *testing.T) {
	var a Attrs
	if _, ok := a.Get("x"); ok {
		t.Error("nil Attrs Get reported present")
	}
	if got := a.GetDefault("x", 3); got != 3 {
		t.Errorf("nil Attrs GetDefault = %v, want 3", got)
	}
	if a.Clone() != nil {
		t.Error("nil Attrs Clone should stay nil")
	}
}

func TestTopoSort(t *testing.T) {
	fg := &FlatGraph{
		Name:     "dag",
		Vertices: []*Vertex{{ID: "c"}, {ID: "a"}, {ID: "b"}},
		Edges:    []FlatEdge{{From: "a", To: "b"}, {From: "b", To: "c"}},
	}
	order, err := fg.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	want := []ID{"a", "b", "c"}
	for i, w := range want {
		if order[i].ID != w {
			t.Errorf("order[%d] = %s, want %s", i, order[i].ID, w)
		}
	}
	if !fg.IsAcyclic() {
		t.Error("IsAcyclic = false for DAG")
	}
}

func TestTopoSortCycle(t *testing.T) {
	fg := &FlatGraph{
		Name:     "cycle",
		Vertices: []*Vertex{{ID: "a"}, {ID: "b"}},
		Edges:    []FlatEdge{{From: "a", To: "b"}, {From: "b", To: "a"}},
	}
	if _, err := fg.TopoSort(); err == nil {
		t.Error("TopoSort accepted a cyclic graph")
	}
	if fg.IsAcyclic() {
		t.Error("IsAcyclic = true for cycle")
	}
}

func TestFlatGraphAdjacency(t *testing.T) {
	fg := &FlatGraph{
		Vertices: []*Vertex{{ID: "a"}, {ID: "b"}, {ID: "c"}},
		Edges:    []FlatEdge{{From: "a", To: "b"}, {From: "a", To: "c"}},
	}
	if got := fg.Successors("a"); len(got) != 2 {
		t.Errorf("Successors(a) = %v, want 2 entries", got)
	}
	if got := fg.Predecessors("c"); len(got) != 1 || got[0] != "a" {
		t.Errorf("Predecessors(c) = %v, want [a]", got)
	}
	if fg.VertexByID("b") == nil || fg.VertexByID("zz") != nil {
		t.Error("FlatGraph.VertexByID misbehaves")
	}
}

// randomGraph builds a random but valid hierarchical graph from a seed.
// Used by the property tests below.
func randomGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	counter := 0
	nextID := func(prefix string) ID {
		counter++
		return ID(fmt.Sprintf("%s%d", prefix, counter))
	}
	var fill func(cb *ClusterBuilder, depth int)
	fill = func(cb *ClusterBuilder, depth int) {
		nv := 1 + rng.Intn(3)
		var ids []ID
		for k := 0; k < nv; k++ {
			id := nextID("v")
			cb.Vertex(id)
			ids = append(ids, id)
		}
		for k := 1; k < len(ids); k++ {
			if rng.Intn(2) == 0 {
				cb.Edge(ids[k-1], ids[k])
			}
		}
		if depth > 0 {
			ni := rng.Intn(3)
			for k := 0; k < ni; k++ {
				ib := cb.Interface(nextID("i"), Port{Name: "p", Dir: In})
				nc := 1 + rng.Intn(3)
				for j := 0; j < nc; j++ {
					sub := ib.Cluster(nextID("g"))
					fill(sub, depth-1)
					sub.Bind("p", sub.c.Vertices[0].ID)
				}
			}
		}
	}
	b := NewBuilder(fmt.Sprintf("rand%d", seed), "root")
	fill(b.Root(), 2+rng.Intn(2))
	return b.MustBuild()
}

// Property: CountVariants equals the number of enumerated selections,
// and every enumerated selection is complete and flattens successfully.
func TestPropVariantCountMatchesEnumeration(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed % 1000)
		n := 0
		ok := true
		g.EnumerateSelections(func(s Selection) bool {
			n++
			if !g.Complete(s) {
				ok = false
				return false
			}
			if _, err := g.Flatten(s); err != nil {
				ok = false
				return false
			}
			return n < 20000
		})
		if n >= 20000 {
			return true // graph too large to enumerate fully; skip count check
		}
		return ok && n == g.CountVariants()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the leaves of a graph are exactly the union of the vertices
// appearing in the flattened variants.
func TestPropLeavesCoverFlattenedVertices(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed % 1000)
		leafSet := map[ID]bool{}
		for _, v := range g.Leaves() {
			leafSet[v.ID] = true
		}
		covered := map[ID]bool{}
		n := 0
		g.EnumerateSelections(func(s Selection) bool {
			fg, err := g.Flatten(s)
			if err != nil {
				return false
			}
			for _, v := range fg.Vertices {
				if !leafSet[v.ID] {
					return false
				}
				covered[v.ID] = true
			}
			n++
			return n < 5000
		})
		if n >= 5000 {
			return true
		}
		return len(covered) == len(leafSet)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: cloning preserves validation, counts and variant counts.
func TestPropCloneEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed % 1000)
		c := g.Clone()
		if err := c.Validate(); err != nil {
			return false
		}
		v1, i1, c1, e1 := g.ElementCount()
		v2, i2, c2, e2 := c.ElementCount()
		return v1 == v2 && i1 == i2 && c1 == c2 && e1 == e2 &&
			g.CountVariants() == c.CountVariants() && g.Depth() == c.Depth()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLeaves(b *testing.B) {
	g := randomGraph(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Leaves()
	}
}

func BenchmarkFlatten(b *testing.B) {
	g := randomGraph(42)
	var sel Selection
	g.EnumerateSelections(func(s Selection) bool { sel = s.Clone(); return false })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Flatten(sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateSelections(b *testing.B) {
	g := randomGraph(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		g.EnumerateSelections(func(Selection) bool { n++; return n < 1000 })
	}
}
