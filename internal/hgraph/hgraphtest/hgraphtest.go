// Package hgraphtest provides deterministic random hierarchical graphs
// for property-based tests of packages building on hgraph.
package hgraphtest

import (
	"fmt"
	"math/rand"

	"repro/internal/hgraph"
)

// Options bounds the shape of generated graphs.
type Options struct {
	MaxDepth      int // maximum nesting depth (default 3)
	MaxVertices   int // max vertices per cluster (default 3, min 1)
	MaxInterfaces int // max interfaces per cluster below the root (default 2)
	MaxClusters   int // max alternative clusters per interface (default 3, min 1)
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 3
	}
	if o.MaxVertices == 0 {
		o.MaxVertices = 3
	}
	if o.MaxInterfaces == 0 {
		o.MaxInterfaces = 2
	}
	if o.MaxClusters == 0 {
		o.MaxClusters = 3
	}
	return o
}

// Random builds a random but structurally valid hierarchical graph from
// a seed. The same seed always yields the same graph.
func Random(seed int64, opts Options) *hgraph.Graph {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	counter := 0
	nextID := func(prefix string) hgraph.ID {
		counter++
		return hgraph.ID(fmt.Sprintf("%s%d", prefix, counter))
	}
	var fill func(cb *hgraph.ClusterBuilder, depth int) hgraph.ID
	fill = func(cb *hgraph.ClusterBuilder, depth int) hgraph.ID {
		nv := 1 + rng.Intn(o.MaxVertices)
		var first hgraph.ID
		var prev hgraph.ID
		for k := 0; k < nv; k++ {
			id := nextID("v")
			cb.Vertex(id)
			if k == 0 {
				first = id
			} else if rng.Intn(2) == 0 {
				cb.Edge(prev, id)
			}
			prev = id
		}
		if depth > 0 {
			ni := rng.Intn(o.MaxInterfaces + 1)
			for k := 0; k < ni; k++ {
				ib := cb.Interface(nextID("i"), hgraph.Port{Name: "p", Dir: hgraph.In})
				nc := 1 + rng.Intn(o.MaxClusters)
				for j := 0; j < nc; j++ {
					sub := ib.Cluster(nextID("g"))
					inner := fill(sub, depth-1)
					sub.Bind("p", inner)
				}
			}
		}
		return first
	}
	b := hgraph.NewBuilder(fmt.Sprintf("rand%d", seed), "root")
	fill(b.Root(), 1+rng.Intn(o.MaxDepth))
	return b.MustBuild()
}

// RandomActivation returns a deterministic pseudo-random activation over
// the graph's clusters: each cluster (root included) is active with
// probability pActive.
func RandomActivation(g *hgraph.Graph, seed int64, pActive float64) map[hgraph.ID]bool {
	rng := rand.New(rand.NewSource(seed))
	act := map[hgraph.ID]bool{}
	for _, c := range g.Clusters() {
		act[c.ID] = rng.Float64() < pActive
	}
	return act
}
