package hgraphtest

import "testing"

func TestRandomDeterministic(t *testing.T) {
	a := Random(5, Options{})
	b := Random(5, Options{})
	av, ai, ac, ae := a.ElementCount()
	bv, bi, bc, be := b.ElementCount()
	if av != bv || ai != bi || ac != bc || ae != be {
		t.Error("same seed must produce identical shapes")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRespectsOptions(t *testing.T) {
	g := Random(9, Options{MaxDepth: 1, MaxVertices: 1, MaxInterfaces: 1, MaxClusters: 1})
	if d := g.Depth(); d > 1 {
		t.Errorf("depth = %d, want <= 1", d)
	}
	for _, c := range g.Clusters() {
		if len(c.Vertices) > 1 {
			t.Errorf("cluster %s has %d vertices", c.ID, len(c.Vertices))
		}
		if len(c.Interfaces) > 1 {
			t.Errorf("cluster %s has %d interfaces", c.ID, len(c.Interfaces))
		}
	}
}

func TestRandomActivation(t *testing.T) {
	g := Random(3, Options{})
	all := RandomActivation(g, 1, 1.0)
	none := RandomActivation(g, 1, 0.0)
	for _, c := range g.Clusters() {
		if !all[c.ID] {
			t.Errorf("p=1 should activate %s", c.ID)
		}
		if none[c.ID] {
			t.Errorf("p=0 should not activate %s", c.ID)
		}
	}
	if len(all) != len(g.Clusters()) {
		t.Error("activation must cover all clusters")
	}
}
