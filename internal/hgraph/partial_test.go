package hgraph

import (
	"testing"
	"testing/quick"
)

// buildArchLike constructs an architecture-style graph: two fixed
// resources, a bus, and a reconfigurable interface with two designs,
// where the bus connects a resource to the interface.
func buildArchLike(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder("arch", "top")
	r := b.Root()
	r.Vertex("P1").Vertex("BUS")
	fpga := r.Interface("FPGA", Port{Name: "bus"})
	fpga.Cluster("d1").Vertex("R1").Bind("bus", "R1")
	fpga.Cluster("d2").Vertex("R2").Bind("bus", "R2")
	r.Edge("P1", "BUS")
	r.PortEdge("BUS", "", "FPGA", "bus")
	return b.MustBuild()
}

func TestFlattenPartialDropsInactiveInterface(t *testing.T) {
	g := buildArchLike(t)
	fg, err := g.FlattenPartial(Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fg.Vertices) != 2 {
		t.Errorf("vertices = %d, want 2 (P1, BUS)", len(fg.Vertices))
	}
	if len(fg.Edges) != 1 {
		t.Errorf("edges = %d, want 1 (P1-BUS; BUS-FPGA dropped)", len(fg.Edges))
	}
}

func TestFlattenPartialSelectsDesign(t *testing.T) {
	g := buildArchLike(t)
	fg, err := g.FlattenPartial(Selection{"FPGA": "d2"})
	if err != nil {
		t.Fatal(err)
	}
	if fg.VertexByID("R2") == nil || fg.VertexByID("R1") != nil {
		t.Error("selected design content wrong")
	}
	found := false
	for _, e := range fg.Edges {
		if e.From == "BUS" && e.To == "R2" {
			found = true
		}
	}
	if !found {
		t.Error("BUS-FPGA edge should reroute to R2")
	}
}

func TestFlattenPartialUnknownCluster(t *testing.T) {
	g := buildArchLike(t)
	if _, err := g.FlattenPartial(Selection{"FPGA": "nope"}); err == nil {
		t.Error("unknown cluster must fail")
	}
}

func TestFlattenPartialMissingPortBinding(t *testing.T) {
	// A cluster that does not bind the port reached by an edge: the
	// edge is dropped rather than failing (the design simply has no
	// such connector).
	b := NewBuilder("g", "top")
	r := b.Root()
	r.Vertex("A")
	i := r.Interface("I", Port{Name: "p"}, Port{Name: "q"})
	// Binding for q only comes from manual construction: builder Bind
	// sets both; construct manually instead.
	c := i.Cluster("c")
	c.Vertex("X")
	c.Bind("p", "X")
	c.Bind("q", "X")
	r.PortEdge("A", "", "I", "p")
	g := b.MustBuild()
	// Remove the "p" binding post hoc to simulate a partial connector.
	g.ClusterByID("c").PortBinding = map[string]ID{"q": "X"}
	fg, err := g.FlattenPartial(Selection{"I": "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fg.Edges) != 0 {
		t.Errorf("edge through unbound port should be dropped, got %v", fg.Edges)
	}
	if fg.VertexByID("X") == nil {
		t.Error("cluster content must still be present")
	}
}

// Property: FlattenPartial with a complete selection equals Flatten.
func TestPropPartialEqualsFullOnCompleteSelections(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed % 500)
		ok := true
		n := 0
		g.EnumerateSelections(func(sel Selection) bool {
			full, err1 := g.Flatten(sel)
			part, err2 := g.FlattenPartial(sel)
			if err1 != nil || err2 != nil {
				ok = false
				return false
			}
			if len(full.Vertices) != len(part.Vertices) || len(full.Edges) != len(part.Edges) {
				ok = false
				return false
			}
			for i := range full.Vertices {
				if full.Vertices[i].ID != part.Vertices[i].ID {
					ok = false
					return false
				}
			}
			for i := range full.Edges {
				if full.Edges[i] != part.Edges[i] {
					ok = false
					return false
				}
			}
			n++
			return n < 200
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a partial selection yields a subgraph of any completion.
func TestPropPartialIsSubgraphOfCompletion(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed % 500)
		var complete Selection
		g.EnumerateSelections(func(sel Selection) bool {
			complete = sel.Clone()
			return false
		})
		if complete == nil {
			return true
		}
		// Drop half the entries.
		partial := Selection{}
		i := 0
		for k, v := range complete {
			if i%2 == 0 {
				partial[k] = v
			}
			i++
		}
		// Keep only entries that remain reachable (active) under the
		// partial selection; inactive entries are ignored by
		// FlattenPartial anyway.
		part, err := g.FlattenPartial(partial)
		if err != nil {
			return false
		}
		full, err := g.Flatten(complete)
		if err != nil {
			return false
		}
		fullSet := map[ID]bool{}
		for _, v := range full.Vertices {
			fullSet[v.ID] = true
		}
		for _, v := range part.Vertices {
			if !fullSet[v.ID] {
				return false
			}
		}
		return len(part.Vertices) <= len(full.Vertices)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFlattenPartial(b *testing.B) {
	g := buildArchLike(b)
	sel := Selection{"FPGA": "d1"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.FlattenPartial(sel); err != nil {
			b.Fatal(err)
		}
	}
}
