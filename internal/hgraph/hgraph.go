// Package hgraph implements the hierarchical graph model of Definition 1
// in "System Design for Flexibility" (Haubelt, Teich, Richter, Ernst;
// DATE 2002).
//
// A hierarchical graph G = (V, E, Ψ, Γ) consists of ordinary vertices V,
// edges E, interfaces Ψ (hierarchical vertices) and clusters Γ
// (subgraphs). Every interface is refined by one or more alternative
// clusters; selecting exactly one cluster per activated interface yields
// a flat (non-hierarchical) graph. Interfaces expose ports; a cluster
// embedded into an interface binds each port of that interface to one of
// its internal nodes (the paper's "port mapping").
//
// The package is the substrate for both the problem graph and the
// architecture graph of a specification graph (package spec) and is
// deliberately generic: nodes carry free-form numeric attributes so that
// higher layers can annotate costs, latencies and periods.
package hgraph

import (
	"fmt"
	"sort"
)

// ID identifies a vertex, edge, interface or cluster. IDs must be unique
// across the whole hierarchical graph (all levels), which permits global
// indexing and makes selections and activations unambiguous.
type ID string

// Attrs carries free-form numeric annotations (cost, latency, period,
// priority, power, ...). A nil Attrs behaves like an empty one through
// the Get accessor.
type Attrs map[string]float64

// Get returns the attribute value and whether it is present. It is safe
// to call on a nil map.
func (a Attrs) Get(key string) (float64, bool) {
	v, ok := a[key]
	return v, ok
}

// GetDefault returns the attribute value or def when absent.
func (a Attrs) GetDefault(key string, def float64) float64 {
	if v, ok := a[key]; ok {
		return v
	}
	return def
}

// Clone returns a deep copy of the attribute map (nil stays nil).
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	c := make(Attrs, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Direction describes the orientation of an interface port.
type Direction int

// Port directions.
const (
	In Direction = iota
	Out
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Port is a named connection point of an interface. Edges of the parent
// cluster attach to interface ports; clusters refining the interface
// bind every port to one of their internal nodes.
type Port struct {
	Name string
	Dir  Direction
}

// Vertex is a non-hierarchical node: a process or communication operation
// in a problem graph, or a functional/communication resource in an
// architecture graph.
type Vertex struct {
	ID    ID
	Name  string
	Attrs Attrs
}

// String implements fmt.Stringer.
func (v *Vertex) String() string { return string(v.ID) }

// Edge connects two nodes of the same cluster scope. Endpoints may be
// vertices or interfaces; when an endpoint is an interface the FromPort
// or ToPort names which port of the interface the edge attaches to.
type Edge struct {
	ID       ID
	From     ID
	To       ID
	FromPort string
	ToPort   string
	Attrs    Attrs
}

// String implements fmt.Stringer.
func (e *Edge) String() string { return fmt.Sprintf("%s->%s", e.From, e.To) }

// Interface is a hierarchical vertex ψ ∈ Ψ. It is refined by one or more
// alternative clusters; the process of cluster selection picks exactly
// one of them at each instant of time.
type Interface struct {
	ID       ID
	Name     string
	Ports    []Port
	Clusters []*Cluster
	Attrs    Attrs
}

// String implements fmt.Stringer.
func (i *Interface) String() string { return string(i.ID) }

// Port returns the port with the given name, or nil.
func (i *Interface) Port(name string) *Port {
	for k := range i.Ports {
		if i.Ports[k].Name == name {
			return &i.Ports[k]
		}
	}
	return nil
}

// Cluster returns the refining cluster with the given ID, or nil.
func (i *Interface) Cluster(id ID) *Cluster {
	for _, c := range i.Clusters {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Cluster is a subgraph γ ∈ Γ: an alternative refinement of an
// interface. Clusters are defined in analogy to hierarchical graphs and
// may themselves contain interfaces, giving arbitrary nesting depth.
type Cluster struct {
	ID         ID
	Name       string
	Vertices   []*Vertex
	Interfaces []*Interface
	Edges      []*Edge
	// PortBinding implements the paper's port mapping: it maps each
	// port name of the owning interface to an internal node (vertex or
	// interface) of this cluster. For a nested interface target the
	// binding resolves further through that interface's selected
	// cluster during flattening.
	PortBinding map[string]ID
	Attrs       Attrs
}

// String implements fmt.Stringer.
func (c *Cluster) String() string { return string(c.ID) }

// Vertex returns the directly contained vertex with the given ID, or nil.
func (c *Cluster) Vertex(id ID) *Vertex {
	for _, v := range c.Vertices {
		if v.ID == id {
			return v
		}
	}
	return nil
}

// Interface returns the directly contained interface with the given ID,
// or nil.
func (c *Cluster) Interface(id ID) *Interface {
	for _, i := range c.Interfaces {
		if i.ID == id {
			return i
		}
	}
	return nil
}

// Graph is a hierarchical graph. The top level is itself represented as
// a cluster (Root), mirroring the paper's observation that clusters are
// defined in analogy to hierarchical graphs; Root is always considered
// activated (a⁺(Root) = 1 corresponds to a⁺(G_P) in the paper's
// flexibility equation).
type Graph struct {
	Name string
	Root *Cluster

	idx *index
}

// New creates a hierarchical graph around the given root cluster and
// validates it. It returns an error if validation fails.
func New(name string, root *Cluster) (*Graph, error) {
	g := &Graph{Name: name, Root: root}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.buildIndex()
	return g, nil
}

// MustNew is like New but panics on validation errors. It is intended
// for statically known models (e.g. the paper's case studies and tests).
func MustNew(name string, root *Cluster) *Graph {
	g, err := New(name, root)
	if err != nil {
		panic(fmt.Sprintf("hgraph: invalid graph %q: %v", name, err))
	}
	return g
}

// index provides O(1) global lookup of every element of the graph.
type index struct {
	vertices   map[ID]*Vertex
	interfaces map[ID]*Interface
	clusters   map[ID]*Cluster
	edges      map[ID]*Edge
	// parentCluster maps a vertex/interface/edge ID to the cluster that
	// directly contains it; Root maps to "".
	parentCluster map[ID]*Cluster
	// owner maps a cluster ID to the interface it refines (nil for Root).
	owner map[ID]*Interface
}

func (g *Graph) buildIndex() {
	ix := &index{
		vertices:      make(map[ID]*Vertex),
		interfaces:    make(map[ID]*Interface),
		clusters:      make(map[ID]*Cluster),
		edges:         make(map[ID]*Edge),
		parentCluster: make(map[ID]*Cluster),
		owner:         make(map[ID]*Interface),
	}
	var walk func(c *Cluster, owner *Interface)
	walk = func(c *Cluster, owner *Interface) {
		ix.clusters[c.ID] = c
		if owner != nil {
			ix.owner[c.ID] = owner
		}
		for _, v := range c.Vertices {
			ix.vertices[v.ID] = v
			ix.parentCluster[v.ID] = c
		}
		for _, e := range c.Edges {
			ix.edges[e.ID] = e
			ix.parentCluster[e.ID] = c
		}
		for _, i := range c.Interfaces {
			ix.interfaces[i.ID] = i
			ix.parentCluster[i.ID] = c
			for _, sub := range i.Clusters {
				walk(sub, i)
			}
		}
	}
	walk(g.Root, nil)
	g.idx = ix
}

func (g *Graph) ensureIndex() *index {
	if g.idx == nil {
		g.buildIndex()
	}
	return g.idx
}

// VertexByID returns the vertex with the given ID anywhere in the
// hierarchy, or nil.
func (g *Graph) VertexByID(id ID) *Vertex { return g.ensureIndex().vertices[id] }

// InterfaceByID returns the interface with the given ID anywhere in the
// hierarchy, or nil.
func (g *Graph) InterfaceByID(id ID) *Interface { return g.ensureIndex().interfaces[id] }

// ClusterByID returns the cluster with the given ID anywhere in the
// hierarchy, or nil. The root cluster is included.
func (g *Graph) ClusterByID(id ID) *Cluster { return g.ensureIndex().clusters[id] }

// EdgeByID returns the edge with the given ID anywhere in the hierarchy,
// or nil.
func (g *Graph) EdgeByID(id ID) *Edge { return g.ensureIndex().edges[id] }

// ParentCluster returns the cluster that directly contains the element
// with the given ID (vertex, interface or edge), or nil for unknown IDs
// and for the root cluster itself.
func (g *Graph) ParentCluster(id ID) *Cluster { return g.ensureIndex().parentCluster[id] }

// OwnerInterface returns the interface refined by the cluster with the
// given ID, or nil for the root cluster and unknown IDs.
func (g *Graph) OwnerInterface(clusterID ID) *Interface { return g.ensureIndex().owner[clusterID] }

// Has reports whether any element (vertex, interface, cluster or edge)
// with the given ID exists in the graph.
func (g *Graph) Has(id ID) bool {
	ix := g.ensureIndex()
	if _, ok := ix.vertices[id]; ok {
		return true
	}
	if _, ok := ix.interfaces[id]; ok {
		return true
	}
	if _, ok := ix.clusters[id]; ok {
		return true
	}
	_, ok := ix.edges[id]
	return ok
}

// Leaves returns the set of leaves V_l(G) of the hierarchical graph per
// Equation (1) of the paper: all non-hierarchical vertices of the root
// plus, recursively, the leaves of every cluster of every interface.
// The result is sorted by ID for determinism.
func (g *Graph) Leaves() []*Vertex {
	var out []*Vertex
	var walk func(c *Cluster)
	walk = func(c *Cluster) {
		out = append(out, c.Vertices...)
		for _, i := range c.Interfaces {
			for _, sub := range i.Clusters {
				walk(sub)
			}
		}
	}
	walk(g.Root)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// LeavesOf returns the leaves of a single cluster (Eq. 1 applied to γ).
func (g *Graph) LeavesOf(c *Cluster) []*Vertex {
	sub := &Graph{Name: string(c.ID), Root: c}
	return sub.Leaves()
}

// Clusters returns every cluster of the graph including the root,
// sorted by ID.
func (g *Graph) Clusters() []*Cluster {
	ix := g.ensureIndex()
	out := make([]*Cluster, 0, len(ix.clusters))
	for _, c := range ix.clusters {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Interfaces returns every interface of the graph at any depth, sorted
// by ID.
func (g *Graph) Interfaces() []*Interface {
	ix := g.ensureIndex()
	out := make([]*Interface, 0, len(ix.interfaces))
	for _, i := range ix.interfaces {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Edges returns every edge of the graph at any depth, sorted by ID.
func (g *Graph) Edges() []*Edge {
	ix := g.ensureIndex()
	out := make([]*Edge, 0, len(ix.edges))
	for _, e := range ix.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ElementCount returns |V_S|-style element counts: the number of
// non-hierarchical vertices, interfaces, clusters (excluding the root)
// and edges of the graph. The paper's 2^|V_S| search-space headline uses
// vertices+interfaces+clusters.
func (g *Graph) ElementCount() (vertices, interfaces, clusters, edges int) {
	ix := g.ensureIndex()
	return len(ix.vertices), len(ix.interfaces), len(ix.clusters) - 1, len(ix.edges)
}

// Depth returns the maximum nesting depth of the hierarchy; a graph
// without interfaces has depth 0.
func (g *Graph) Depth() int {
	var depth func(c *Cluster) int
	depth = func(c *Cluster) int {
		max := 0
		for _, i := range c.Interfaces {
			for _, sub := range i.Clusters {
				if d := 1 + depth(sub); d > max {
					max = d
				}
			}
		}
		return max
	}
	return depth(g.Root)
}

// Clone returns a deep copy of the graph. The copy shares no mutable
// state with the original.
func (g *Graph) Clone() *Graph {
	return &Graph{Name: g.Name, Root: cloneCluster(g.Root)}
}

func cloneCluster(c *Cluster) *Cluster {
	nc := &Cluster{ID: c.ID, Name: c.Name, Attrs: c.Attrs.Clone()}
	for _, v := range c.Vertices {
		nc.Vertices = append(nc.Vertices, &Vertex{ID: v.ID, Name: v.Name, Attrs: v.Attrs.Clone()})
	}
	for _, e := range c.Edges {
		ne := *e
		ne.Attrs = e.Attrs.Clone()
		nc.Edges = append(nc.Edges, &ne)
	}
	for _, i := range c.Interfaces {
		ni := &Interface{ID: i.ID, Name: i.Name, Attrs: i.Attrs.Clone()}
		ni.Ports = append(ni.Ports, i.Ports...)
		for _, sub := range i.Clusters {
			ni.Clusters = append(ni.Clusters, cloneCluster(sub))
		}
		nc.Interfaces = append(nc.Interfaces, ni)
	}
	if c.PortBinding != nil {
		nc.PortBinding = make(map[string]ID, len(c.PortBinding))
		for k, v := range c.PortBinding {
			nc.PortBinding[k] = v
		}
	}
	return nc
}

// CountVariants returns the number of distinct fully flattened variants
// of the graph, i.e. the number of elementary cluster selections. For a
// cluster it is the product over its interfaces of the sum over the
// interface's clusters of their variant counts.
func (g *Graph) CountVariants() int {
	return countVariants(g.Root)
}

func countVariants(c *Cluster) int {
	prod := 1
	for _, i := range c.Interfaces {
		sum := 0
		for _, sub := range i.Clusters {
			sum += countVariants(sub)
		}
		prod *= sum
	}
	return prod
}
