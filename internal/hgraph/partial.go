package hgraph

import (
	"fmt"
	"sort"
)

// FlattenPartial flattens the graph under a possibly partial selection:
// interfaces without a selection entry are considered inactive and are
// dropped together with every edge attached to them. This models the
// architecture side of a specification, where a reconfigurable
// component (an interface) that is not part of the allocation simply
// does not exist in the implementation, whereas on the problem side
// rule 4 of hierarchical activation demands a complete selection (use
// Flatten there).
func (g *Graph) FlattenPartial(sel Selection) (*FlatGraph, error) {
	fg := &FlatGraph{Name: g.Name}
	var rawEdges []*Edge
	var walk func(c *Cluster) error
	walk = func(c *Cluster) error {
		fg.Vertices = append(fg.Vertices, c.Vertices...)
		rawEdges = append(rawEdges, c.Edges...)
		for _, i := range c.Interfaces {
			cid, ok := sel[i.ID]
			if !ok {
				continue // inactive interface: dropped
			}
			sub := i.Cluster(cid)
			if sub == nil {
				return fmt.Errorf("interface %q: selected cluster %q unknown", i.ID, cid)
			}
			if err := walk(sub); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(g.Root); err != nil {
		return nil, err
	}

	for _, e := range rawEdges {
		from, ok, err := g.resolvePartial(e.From, e.FromPort, sel)
		if err != nil {
			return nil, fmt.Errorf("edge %q: %w", e.ID, err)
		}
		if !ok {
			continue
		}
		to, ok, err := g.resolvePartial(e.To, e.ToPort, sel)
		if err != nil {
			return nil, fmt.Errorf("edge %q: %w", e.ID, err)
		}
		if !ok {
			continue
		}
		fg.Edges = append(fg.Edges, FlatEdge{From: from, To: to, Orig: e})
	}
	sort.Slice(fg.Vertices, func(a, b int) bool { return fg.Vertices[a].ID < fg.Vertices[b].ID })
	sort.Slice(fg.Edges, func(a, b int) bool {
		if fg.Edges[a].From != fg.Edges[b].From {
			return fg.Edges[a].From < fg.Edges[b].From
		}
		return fg.Edges[a].To < fg.Edges[b].To
	})
	return fg, nil
}

// resolvePartial resolves an endpoint like resolveEndpoint but reports
// ok=false (drop the edge) when resolution reaches an inactive
// interface or a missing port binding.
func (g *Graph) resolvePartial(id ID, port string, sel Selection) (ID, bool, error) {
	for {
		if g.VertexByID(id) != nil {
			return id, true, nil
		}
		iface := g.InterfaceByID(id)
		if iface == nil {
			return "", false, fmt.Errorf("endpoint %q is neither vertex nor interface", id)
		}
		cid, ok := sel[iface.ID]
		if !ok {
			return "", false, nil
		}
		sub := iface.Cluster(cid)
		if sub == nil {
			return "", false, fmt.Errorf("interface %q: selected cluster %q unknown", id, cid)
		}
		target, ok := sub.PortBinding[port]
		if !ok {
			return "", false, nil
		}
		id = target
	}
}
