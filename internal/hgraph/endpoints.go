package hgraph

import "sort"

// EndpointLeaves returns every leaf vertex an edge endpoint can resolve
// to across all cluster selections: a vertex endpoint resolves to
// itself; an interface endpoint resolves, for each refining cluster,
// through that cluster's binding of the named port (recursively, when
// the binding targets a nested interface, with the same port name —
// mirroring Flatten's resolveEndpoint, but without fixing a selection).
//
// Unknown IDs, missing bindings and binding cycles contribute nothing;
// the function is therefore safe on graphs that fail Validate and is
// the substrate for whole-hierarchy reachability analyses (package
// lint). The result is sorted and duplicate-free.
func (g *Graph) EndpointLeaves(id ID, port string) []ID {
	set := map[ID]bool{}
	seen := map[[2]ID]bool{} // (interface, port-target) pairs on the current path
	var resolve func(id ID, port string)
	resolve = func(id ID, port string) {
		if g.VertexByID(id) != nil {
			set[id] = true
			return
		}
		iface := g.InterfaceByID(id)
		if iface == nil {
			return
		}
		for _, sub := range iface.Clusters {
			target, ok := sub.PortBinding[port]
			if !ok {
				continue
			}
			key := [2]ID{iface.ID, target}
			if seen[key] {
				continue
			}
			seen[key] = true
			resolve(target, port)
			delete(seen, key)
		}
	}
	resolve(id, port)
	out := make([]ID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
