package hgraph

import "testing"

func TestAddCluster(t *testing.T) {
	g := buildDecoder(t)
	c := &Cluster{
		ID: "gD4", Name: "gD4",
		Vertices:    []*Vertex{{ID: "PD4"}},
		PortBinding: map[string]ID{"in": "PD4", "out": "PD4"},
	}
	if err := g.AddCluster("ID", c); err != nil {
		t.Fatal(err)
	}
	if g.ClusterByID("gD4") == nil || g.VertexByID("PD4") == nil {
		t.Error("added cluster not indexed")
	}
	if got := g.CountVariants(); got != 8 {
		t.Errorf("variants = %d, want 4*2 = 8", got)
	}
	if o := g.OwnerInterface("gD4"); o == nil || o.ID != "ID" {
		t.Errorf("owner = %v", o)
	}
	// Flattening through the new cluster works (port bindings applied).
	fg, err := g.Flatten(Selection{"ID": "gD4", "IU": "gU1"})
	if err != nil {
		t.Fatal(err)
	}
	if fg.VertexByID("PD4") == nil {
		t.Error("flatten through added cluster failed")
	}
}

func TestAddClusterErrors(t *testing.T) {
	g := buildDecoder(t)
	if err := g.AddCluster("nope", &Cluster{ID: "x"}); err == nil {
		t.Error("unknown interface must fail")
	}
	// Duplicate ID: rolled back.
	if err := g.AddCluster("ID", &Cluster{ID: "gD1"}); err == nil {
		t.Error("duplicate ID must fail")
	}
	// Missing port binding: rolled back.
	bad := &Cluster{ID: "gDx", Vertices: []*Vertex{{ID: "PDx"}}}
	if err := g.AddCluster("ID", bad); err == nil {
		t.Error("missing port binding must fail")
	}
	if g.ClusterByID("gDx") != nil || g.ClusterByID("x") != nil {
		t.Error("failed additions left clusters behind")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("graph corrupted: %v", err)
	}
}

func TestRemoveCluster(t *testing.T) {
	g := buildDecoder(t)
	if err := g.RemoveCluster("gD3"); err != nil {
		t.Fatal(err)
	}
	if g.ClusterByID("gD3") != nil || g.VertexByID("PD3") != nil {
		t.Error("removed cluster still indexed")
	}
	if got := g.CountVariants(); got != 4 {
		t.Errorf("variants = %d, want 2*2 = 4", got)
	}
	if err := g.RemoveCluster("gU1"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveCluster("gU2"); err == nil {
		t.Error("removing the last cluster must fail")
	}
	if err := g.RemoveCluster("top"); err == nil {
		t.Error("removing the root must fail")
	}
	if err := g.RemoveCluster("ghost"); err == nil {
		t.Error("unknown cluster must fail")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("graph invalid after removals: %v", err)
	}
}
