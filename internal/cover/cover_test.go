package cover

import (
	"testing"
	"testing/quick"

	"repro/internal/flex"
	"repro/internal/hgraph"
	"repro/internal/hgraph/hgraphtest"
)

// buildSetTop builds the Fig. 3 problem-graph hierarchy (application
// interface refined by browser, game console and digital TV).
func buildSetTop(t testing.TB) *hgraph.Graph {
	t.Helper()
	b := hgraph.NewBuilder("settop", "GP")
	app := b.Root().Interface("IApp")
	app.Cluster("gI").Vertex("PCI")
	gG := app.Cluster("gG")
	gG.Vertex("PCG")
	ig := gG.Interface("IG", hgraph.Port{Name: "p"})
	ig.Cluster("gG1").Vertex("PG1").Bind("p", "PG1")
	ig.Cluster("gG2").Vertex("PG2").Bind("p", "PG2")
	ig.Cluster("gG3").Vertex("PG3").Bind("p", "PG3")
	gD := app.Cluster("gD")
	gD.Vertex("PCD")
	id := gD.Interface("ID", hgraph.Port{Name: "p"})
	id.Cluster("gD1").Vertex("PD1").Bind("p", "PD1")
	id.Cluster("gD2").Vertex("PD2").Bind("p", "PD2")
	id.Cluster("gD3").Vertex("PD3").Bind("p", "PD3")
	iu := gD.Interface("IU", hgraph.Port{Name: "p"})
	iu.Cluster("gU1").Vertex("PU1").Bind("p", "PU1")
	iu.Cluster("gU2").Vertex("PU2").Bind("p", "PU2")
	return b.MustBuild()
}

func allActive(g *hgraph.Graph) map[hgraph.ID]bool {
	act := map[hgraph.ID]bool{}
	for _, c := range g.Clusters() {
		act[c.ID] = true
	}
	return act
}

func TestEnumerateCount(t *testing.T) {
	g := buildSetTop(t)
	if got := Count(g, allActive(g)); got != 10 {
		t.Errorf("ecs count = %d, want 1+3+6 = 10", got)
	}
}

func TestEnumerateRestricted(t *testing.T) {
	g := buildSetTop(t)
	act := allActive(g)
	act["gD3"] = false
	if got := Count(g, act); got != 8 {
		t.Errorf("ecs count without gD3 = %d, want 1+3+4 = 8", got)
	}
	// Removing all game classes removes the whole console branch only
	// if gG is also deactivated (callers normalize via
	// flex.ActivatableClusters); raw enumeration just finds no choice.
	act2 := allActive(g)
	act2["gG1"], act2["gG2"], act2["gG3"] = false, false, false
	if got := Count(g, act2); got != 7 {
		t.Errorf("ecs count without game classes = %d, want 1+0+6 = 7", got)
	}
}

func TestEnumerateRootInactive(t *testing.T) {
	g := buildSetTop(t)
	act := allActive(g)
	act["GP"] = false
	if got := Count(g, act); got != 0 {
		t.Errorf("ecs count with inactive root = %d, want 0", got)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := buildSetTop(t)
	n := 0
	Enumerate(g, allActive(g), func(ECS) bool { n++; return n < 4 })
	if n != 4 {
		t.Errorf("early stop after %d, want 4", n)
	}
}

func TestECSClusters(t *testing.T) {
	g := buildSetTop(t)
	var tvECS *ECS
	Enumerate(g, allActive(g), func(e ECS) bool {
		if e.Selection["IApp"] == "gD" && e.Selection["ID"] == "gD2" && e.Selection["IU"] == "gU1" {
			tvECS = &e
			return false
		}
		return true
	})
	if tvECS == nil {
		t.Fatal("TV ecs (gD2, gU1) not enumerated")
	}
	want := map[hgraph.ID]bool{"GP": true, "gD": true, "gD2": true, "gU1": true}
	if len(tvECS.Clusters) != len(want) {
		t.Fatalf("ecs clusters = %v, want %v", tvECS.Clusters, want)
	}
	for _, c := range tvECS.Clusters {
		if !want[c] {
			t.Errorf("unexpected cluster %s in ecs", c)
		}
	}
	if tvECS.String() != "{GP gD gD2 gU1}" {
		t.Errorf("String = %s", tvECS.String())
	}
}

func TestCoverSetTop(t *testing.T) {
	g := buildSetTop(t)
	act := allActive(g)
	cov, err := Cover(g, act)
	if err != nil {
		t.Fatal(err)
	}
	if !Covers(cov, act, g.Root.ID) {
		t.Error("Cover result does not cover the activatable set")
	}
	// The minimum is 7 (one per browser, three game classes, and
	// max(3 decryptions, 2 uncompressions) = 3 TV behaviours); the
	// greedy cover must achieve it here.
	if len(cov) != 7 {
		t.Errorf("cover size = %d, want 7", len(cov))
	}
}

// TestCoverPaperExample reproduces the coverage example of Section 4:
// for activatable clusters γD1, γD2, γU1, γU2 (decoder without γD3) a
// coverage by two elementary cluster activations exists, e.g.
// {γD2 γU1} and {γD1 γU2}.
func TestCoverPaperExample(t *testing.T) {
	b := hgraph.NewBuilder("fig2", "top")
	r := b.Root()
	r.Vertex("PA").Vertex("PC")
	id := r.Interface("ID", hgraph.Port{Name: "p"})
	id.Cluster("gD1").Vertex("PD1").Bind("p", "PD1")
	id.Cluster("gD2").Vertex("PD2").Bind("p", "PD2")
	iu := r.Interface("IU", hgraph.Port{Name: "p"})
	iu.Cluster("gU1").Vertex("PU1").Bind("p", "PU1")
	iu.Cluster("gU2").Vertex("PU2").Bind("p", "PU2")
	g := b.MustBuild()

	act := allActive(g)
	cov, err := Cover(g, act)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov) != 2 {
		t.Fatalf("cover size = %d, want 2 (paper's example)", len(cov))
	}
	if !Covers(cov, act, g.Root.ID) {
		t.Error("cover incomplete")
	}
	min, err := MinimalCoverSize(g, act, 0)
	if err != nil {
		t.Fatal(err)
	}
	if min != 2 {
		t.Errorf("minimal cover size = %d, want 2", min)
	}
}

func TestCoverFlatGraph(t *testing.T) {
	b := hgraph.NewBuilder("flat", "top")
	b.Root().Vertex("a").Vertex("b")
	g := b.MustBuild()
	cov, err := Cover(g, allActive(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(cov) != 1 {
		t.Fatalf("flat graph cover size = %d, want 1 (the single behaviour)", len(cov))
	}
	if len(cov[0].Selection) != 0 {
		t.Errorf("flat graph ecs selection = %v, want empty", cov[0].Selection)
	}
}

func TestCoverEmptyActivatable(t *testing.T) {
	g := buildSetTop(t)
	cov, err := Cover(g, map[hgraph.ID]bool{})
	if err != nil || cov != nil {
		t.Errorf("empty activatable: cov=%v err=%v, want nil/nil", cov, err)
	}
}

func TestCoverInconsistentSet(t *testing.T) {
	g := buildSetTop(t)
	// gG activatable but none of its game classes: forced chain for gG1
	// is absent, and gG itself cannot be completed.
	act := allActive(g)
	act["gG1"], act["gG2"], act["gG3"] = false, false, false
	if _, err := Cover(g, act); err == nil {
		t.Error("inconsistent activatable set should fail (use flex.ActivatableClusters to normalize)")
	}
}

func TestCoversHelper(t *testing.T) {
	g := buildSetTop(t)
	act := allActive(g)
	if Covers(nil, act, g.Root.ID) {
		t.Error("empty ecs set cannot cover")
	}
}

func TestMinimalCoverSizeLimit(t *testing.T) {
	g := buildSetTop(t)
	if _, err := MinimalCoverSize(g, allActive(g), 5); err == nil {
		t.Error("limit exceeded should error (10 ecs > 5)")
	}
	min, err := MinimalCoverSize(g, allActive(g), 10)
	if err != nil {
		t.Fatal(err)
	}
	if min != 7 {
		t.Errorf("minimal cover size = %d, want 7", min)
	}
}

// Property: on random graphs with normalized random activations, Cover
// succeeds, covers the set, and each ecs selects only activatable
// clusters with a complete selection.
func TestPropCoverSound(t *testing.T) {
	prop := func(seed int64) bool {
		g := hgraphtest.Random(seed%400, hgraphtest.Options{})
		raw := hgraphtest.RandomActivation(g, seed, 0.8)
		raw[g.Root.ID] = true
		act := flex.ActivatableClusters(g, flex.FromSet(raw))
		cov, err := Cover(g, act)
		if err != nil {
			return false
		}
		if len(act) > 0 && !Covers(cov, act, g.Root.ID) {
			return false
		}
		for _, e := range cov {
			for _, cid := range e.Clusters {
				if !act[cid] {
					return false
				}
			}
			if !g.Complete(e.Selection) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated ecs under a normalized activation uses
// only activatable clusters, and distinct ecs have distinct selections.
func TestPropEnumerateSound(t *testing.T) {
	prop := func(seed int64) bool {
		g := hgraphtest.Random(seed%400, hgraphtest.Options{})
		act := flex.ActivatableClusters(g, flex.AllActive)
		seen := map[string]bool{}
		ok := true
		n := 0
		Enumerate(g, act, func(e ECS) bool {
			n++
			key := e.Selection.String()
			if seen[key] {
				ok = false
				return false
			}
			seen[key] = true
			for _, cid := range e.Clusters {
				if !act[cid] {
					ok = false
					return false
				}
			}
			return n < 5000
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCover(b *testing.B) {
	g := buildSetTop(b)
	act := allActive(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Cover(g, act); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerate(b *testing.B) {
	g := buildSetTop(b)
	act := allActive(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(g, act)
	}
}
