// Package cover implements elementary cluster activations (ecs) and
// coverage of the activatable-cluster set, as required by the paper's
// exploration step: "Since every activatable cluster has to be part of
// the implementation to obtain the expected flexibility, we have to
// determine a coverage of Γ_act by elementary cluster-activations."
//
// An elementary cluster activation selects exactly one activatable
// cluster per activated interface; a coverage is a set of ecs such that
// every activatable cluster appears in at least one of them. Each ecs
// corresponds to one instantaneous behaviour of the adaptive system; the
// coverage is the set of behaviours that must each admit a feasible
// binding for the estimated flexibility to be implementable.
package cover

import (
	"fmt"
	"sort"

	"repro/internal/hgraph"
)

// ECS is an elementary cluster activation: a complete cluster selection
// drawn from the activatable set, together with the clusters it
// activates (including the root).
type ECS struct {
	Selection hgraph.Selection
	Clusters  []hgraph.ID
}

// String renders the activated clusters, e.g. "{gD1 gU1 top}".
func (e ECS) String() string {
	parts := make([]string, len(e.Clusters))
	for i, c := range e.Clusters {
		parts[i] = string(c)
	}
	sort.Strings(parts)
	out := "{"
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out + "}"
}

// Enumerate calls fn for every elementary cluster activation of the
// graph restricted to the activatable clusters (the root must be
// activatable for any ecs to exist). Enumeration stops when fn returns
// false. The ECS passed to fn owns its selection (safe to retain).
func Enumerate(g *hgraph.Graph, activatable map[hgraph.ID]bool, fn func(ECS) bool) {
	EnumerateFunc(g, func(id hgraph.ID) bool { return activatable[id] }, fn)
}

// EnumerateFunc is Enumerate with the activatable set given as a
// predicate, so callers holding the set in another representation (e.g.
// a bitset) need not materialize a map per candidate.
func EnumerateFunc(g *hgraph.Graph, activatable func(hgraph.ID) bool, fn func(ECS) bool) {
	if !activatable(g.Root.ID) {
		return
	}
	sel := hgraph.Selection{}
	var enumIfs func(ifs []*hgraph.Interface, k int, done func() bool) bool
	var enumCluster func(c *hgraph.Cluster, done func() bool) bool
	enumCluster = func(c *hgraph.Cluster, done func() bool) bool {
		return enumIfs(c.Interfaces, 0, done)
	}
	enumIfs = func(ifs []*hgraph.Interface, k int, done func() bool) bool {
		if k == len(ifs) {
			return done()
		}
		i := ifs[k]
		for _, sub := range i.Clusters {
			if !activatable(sub.ID) {
				continue
			}
			sel[i.ID] = sub.ID
			cont := enumCluster(sub, func() bool { return enumIfs(ifs, k+1, done) })
			delete(sel, i.ID)
			if !cont {
				return false
			}
		}
		return true
	}
	enumCluster(g.Root, func() bool {
		return fn(ECS{Selection: sel.Clone(), Clusters: g.ActiveClusters(sel)})
	})
}

// All returns every elementary cluster activation. Use Enumerate for
// graphs with many variants.
func All(g *hgraph.Graph, activatable map[hgraph.ID]bool) []ECS {
	var out []ECS
	Enumerate(g, activatable, func(e ECS) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Count returns the number of elementary cluster activations without
// materializing them.
func Count(g *hgraph.Graph, activatable map[hgraph.ID]bool) int {
	n := 0
	Enumerate(g, activatable, func(ECS) bool { n++; return true })
	return n
}

// Cover computes a coverage of the activatable clusters by elementary
// cluster activations without enumerating all ecs: it repeatedly builds
// an ecs that forces the lexicographically smallest uncovered cluster
// active and greedily routes remaining choices through uncovered
// clusters. The result is deterministic; its size is at most the number
// of activatable clusters. An error is returned if the activatable set
// is inconsistent (a forced chain cannot be completed).
func Cover(g *hgraph.Graph, activatable map[hgraph.ID]bool) ([]ECS, error) {
	uncovered := map[hgraph.ID]bool{}
	for id, on := range activatable {
		if on {
			uncovered[id] = true
		}
	}
	if len(uncovered) == 0 {
		return nil, nil
	}
	if !activatable[g.Root.ID] {
		return nil, fmt.Errorf("cover: root %q not activatable", g.Root.ID)
	}
	delete(uncovered, g.Root.ID)

	// uncoveredBelow counts uncovered clusters in the subtree rooted at
	// a cluster (the cluster itself included).
	var uncoveredBelow func(c *hgraph.Cluster) int
	uncoveredBelow = func(c *hgraph.Cluster) int {
		n := 0
		if uncovered[c.ID] {
			n++
		}
		for _, i := range c.Interfaces {
			for _, sub := range i.Clusters {
				if activatable[sub.ID] {
					n += uncoveredBelow(sub)
				}
			}
		}
		return n
	}

	var out []ECS
	// At least one ecs is always produced (even for a flat graph with no
	// clusters beyond the root): downstream binding needs a behaviour to
	// implement.
	for first := true; first || len(uncovered) > 0; first = false {
		forced := map[hgraph.ID]hgraph.ID{} // interface -> forced cluster
		var target hgraph.ID
		if len(uncovered) > 0 {
			target = smallest(uncovered)
			// Force the ancestor chain of the target cluster.
			for id := target; ; {
				owner := g.OwnerInterface(id)
				if owner == nil {
					break // reached the root
				}
				forced[owner.ID] = id
				parent := g.ParentCluster(owner.ID)
				if parent == nil {
					break
				}
				id = parent.ID
			}
		}
		sel := hgraph.Selection{}
		var build func(c *hgraph.Cluster) error
		build = func(c *hgraph.Cluster) error {
			for _, i := range c.Interfaces {
				var choice *hgraph.Cluster
				if fid, ok := forced[i.ID]; ok {
					choice = i.Cluster(fid)
					if choice == nil || !activatable[choice.ID] {
						return fmt.Errorf("cover: forced cluster %q of interface %q not activatable", fid, i.ID)
					}
				} else {
					best := -1
					for _, sub := range i.Clusters {
						if !activatable[sub.ID] {
							continue
						}
						score := uncoveredBelow(sub)
						if score > best || (score == best && choice != nil && sub.ID < choice.ID) {
							if score > best {
								best = score
								choice = sub
							} else if sub.ID < choice.ID {
								choice = sub
							}
						}
					}
					if choice == nil {
						return fmt.Errorf("cover: interface %q has no activatable cluster", i.ID)
					}
				}
				sel[i.ID] = choice.ID
				if err := build(choice); err != nil {
					return err
				}
			}
			return nil
		}
		if err := build(g.Root); err != nil {
			return nil, err
		}
		ecs := ECS{Selection: sel, Clusters: g.ActiveClusters(sel)}
		out = append(out, ecs)
		for _, c := range ecs.Clusters {
			delete(uncovered, c)
		}
		if target != "" && uncovered[target] {
			return nil, fmt.Errorf("cover: failed to cover cluster %q", target)
		}
	}
	return out, nil
}

func smallest(set map[hgraph.ID]bool) hgraph.ID {
	var best hgraph.ID
	first := true
	for id := range set {
		if first || id < best {
			best = id
			first = false
		}
	}
	return best
}

// Covers reports whether the given ecs set covers every activatable
// cluster (root excluded — it is covered by construction).
func Covers(ecss []ECS, activatable map[hgraph.ID]bool, root hgraph.ID) bool {
	covered := map[hgraph.ID]bool{root: true}
	for _, e := range ecss {
		for _, c := range e.Clusters {
			covered[c] = true
		}
	}
	for id, on := range activatable {
		if on && !covered[id] {
			return false
		}
	}
	return true
}

// MinimalCoverSize computes the size of a minimum coverage by brute
// force over all ecs subsets. Exponential — intended for tests on small
// graphs only; maxECS bounds the enumeration (0 meaning 20).
func MinimalCoverSize(g *hgraph.Graph, activatable map[hgraph.ID]bool, maxECS int) (int, error) {
	if maxECS == 0 {
		maxECS = 20
	}
	all := All(g, activatable)
	if len(all) > maxECS {
		return 0, fmt.Errorf("cover: %d ecs exceed limit %d", len(all), maxECS)
	}
	if len(all) == 0 {
		if len(activatable) == 0 {
			return 0, nil
		}
		return 0, fmt.Errorf("cover: no ecs exists")
	}
	for size := 1; size <= len(all); size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			subset := make([]ECS, size)
			for i, k := range idx {
				subset[i] = all[k]
			}
			if Covers(subset, activatable, g.Root.ID) {
				return size, nil
			}
			// next combination
			i := size - 1
			for i >= 0 && idx[i] == len(all)-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return 0, fmt.Errorf("cover: no subset covers the activatable set")
}
