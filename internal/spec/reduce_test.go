package spec

import (
	"testing"
)

func TestReduceToProcessorOnly(t *testing.T) {
	s := buildMini(t)
	r, err := s.Reduce(NewAllocation("uP"))
	if err != nil {
		t.Fatal(err)
	}
	// Problem side: PD2 (ASIC/FPGA only) is gone together with its
	// cluster; gD1 and gU1 survive.
	if r.Problem.VertexByID("PD2") != nil {
		t.Error("PD2 must be removed (no mapping into {uP})")
	}
	if r.Problem.ClusterByID("gD2") != nil {
		t.Error("cluster gD2 must be removed")
	}
	if r.Problem.VertexByID("PD1") == nil || r.Problem.VertexByID("PU1") == nil {
		t.Error("bindable clusters must survive")
	}
	// Architecture side: only uP remains; the FPGA interface is gone.
	if r.Arch.VertexByID("A") != nil || r.Arch.VertexByID("C1") != nil {
		t.Error("unallocated resources must be removed")
	}
	if r.Arch.InterfaceByID("FPGA") != nil {
		t.Error("FPGA interface without allocated designs must be removed")
	}
	// Mapping edges only into uP.
	for _, m := range r.Mappings {
		if m.Resource != "uP" {
			t.Errorf("mapping %v survived reduction", m)
		}
	}
	// Exactly one variant remains.
	if got := r.Problem.CountVariants(); got != 1 {
		t.Errorf("variants = %d, want 1", got)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("reduced spec invalid: %v", err)
	}
}

func TestReducePreservesFPGADesign(t *testing.T) {
	s := buildMini(t)
	r, err := s.Reduce(NewAllocation("uP", "C1", "dD3"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Arch.InterfaceByID("FPGA") == nil || r.Arch.ClusterByID("dD3") == nil {
		t.Error("allocated FPGA design must survive")
	}
	if r.Arch.ClusterByID("dU2") != nil {
		t.Error("unallocated design must be removed")
	}
	// The bus edge uP–C1–FPGA survives; C2's edges are pruned.
	for _, e := range r.Arch.Edges() {
		if e.From == "C2" || e.To == "C2" {
			t.Errorf("dangling edge %v survived", e)
		}
	}
	// PD2 maps to D3 in the mini fixture, so gD2 survives here.
	if r.Problem.ClusterByID("gD2") == nil {
		t.Error("gD2 (bindable onto D3) must survive")
	}
}

func TestReduceImpossibleAllocation(t *testing.T) {
	s := buildMini(t)
	if _, err := s.Reduce(NewAllocation("A")); err == nil {
		t.Error("allocation without a processor for PA/PC must fail")
	}
	if _, err := s.Reduce(Allocation{}); err == nil {
		t.Error("empty allocation must fail")
	}
}

func TestReduceDoesNotMutateReceiver(t *testing.T) {
	s := buildMini(t)
	before := s.Problem.CountVariants()
	if _, err := s.Reduce(NewAllocation("uP")); err != nil {
		t.Fatal(err)
	}
	if s.Problem.CountVariants() != before {
		t.Error("Reduce mutated the receiver")
	}
	if s.Arch.VertexByID("A") == nil {
		t.Error("Reduce removed resources from the receiver")
	}
}
