package spec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hgraph"
)

// Allocation is a (time-invariant) resource allocation: the set of
// architecture elements that are activated at some time during system
// operation. Per the paper's possible-resource-allocation construction,
// its members are leaves of the top-level architecture graph and whole
// architecture clusters (e.g. FPGA designs); allocating a cluster
// allocates the resources it contains.
//
// Note that an allocation may contain several clusters of the same
// architecture interface: with time-variant activation the interface
// switches between them (reconfiguration); at each instant exactly one
// is active.
type Allocation map[hgraph.ID]bool

// NewAllocation builds an allocation from element IDs.
func NewAllocation(ids ...hgraph.ID) Allocation {
	a := make(Allocation, len(ids))
	for _, id := range ids {
		a[id] = true
	}
	return a
}

// Clone returns a copy of the allocation.
func (a Allocation) Clone() Allocation {
	c := make(Allocation, len(a))
	for k := range a {
		c[k] = true
	}
	return c
}

// IDs returns the allocated element IDs, sorted.
func (a Allocation) IDs() []hgraph.ID {
	out := make([]hgraph.ID, 0, len(a))
	for id := range a {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the allocation deterministically, e.g. "{C1 G1 uP2}".
func (a Allocation) String() string {
	ids := a.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Equal reports whether two allocations contain the same elements.
func (a Allocation) Equal(b Allocation) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// Subset reports whether a ⊆ b.
func (a Allocation) Subset(b Allocation) bool {
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// Cost returns the allocation cost c_impl: the sum of the realization
// costs of all allocated elements. For an allocated cluster this is the
// cluster's own cost attribute plus the costs of all leaf resources it
// contains.
func (a Allocation) Cost(s *Spec) float64 {
	total := 0.0
	for id := range a {
		if v := s.Arch.VertexByID(id); v != nil {
			total += v.Attrs.GetDefault(AttrCost, 0)
			continue
		}
		if c := s.Arch.ClusterByID(id); c != nil {
			total += c.Attrs.GetDefault(AttrCost, 0)
			for _, lv := range s.Arch.LeavesOf(c) {
				total += lv.Attrs.GetDefault(AttrCost, 0)
			}
		}
	}
	return total
}

// Resources returns all architecture leaf vertices made available by
// the allocation: directly allocated top-level leaves plus the leaves
// of every allocated cluster. Sorted by ID.
func (a Allocation) Resources(s *Spec) []hgraph.ID {
	set := map[hgraph.ID]bool{}
	for id := range a {
		if v := s.Arch.VertexByID(id); v != nil {
			set[v.ID] = true
			continue
		}
		if c := s.Arch.ClusterByID(id); c != nil {
			for _, lv := range s.Arch.LeavesOf(c) {
				set[lv.ID] = true
			}
		}
	}
	out := make([]hgraph.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResourceSet is Resources as a set.
func (a Allocation) ResourceSet(s *Spec) map[hgraph.ID]bool {
	set := map[hgraph.ID]bool{}
	for _, id := range a.Resources(s) {
		set[id] = true
	}
	return set
}

// AllocatedClusters returns the allocated architecture clusters grouped
// by their owning interface, considering only clusters whose owning
// interface is reachable (nested clusters under unallocated parents are
// ignored). Interfaces with no allocated cluster are absent.
func (a Allocation) AllocatedClusters(s *Spec) map[hgraph.ID][]hgraph.ID {
	out := map[hgraph.ID][]hgraph.ID{}
	var walk func(c *hgraph.Cluster)
	walk = func(c *hgraph.Cluster) {
		for _, i := range c.Interfaces {
			for _, sub := range i.Clusters {
				if a[sub.ID] {
					out[i.ID] = append(out[i.ID], sub.ID)
					walk(sub)
				}
			}
		}
	}
	walk(s.Arch.Root)
	for _, cs := range out {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	return out
}

// EnumerateArchSelections calls fn for every instantaneous architecture
// configuration consistent with the allocation: for each reachable
// architecture interface that has at least one allocated cluster,
// exactly one allocated cluster is selected; interfaces without an
// allocated cluster stay inactive. Enumeration stops when fn returns
// false. The selection passed to fn is reused; clone to retain.
func (a Allocation) EnumerateArchSelections(s *Spec, fn func(hgraph.Selection) bool) {
	sel := hgraph.Selection{}
	var enumIfs func(ifs []*hgraph.Interface, k int, done func() bool) bool
	var enumCluster func(c *hgraph.Cluster, done func() bool) bool
	enumCluster = func(c *hgraph.Cluster, done func() bool) bool {
		return enumIfs(c.Interfaces, 0, done)
	}
	enumIfs = func(ifs []*hgraph.Interface, k int, done func() bool) bool {
		if k == len(ifs) {
			return done()
		}
		i := ifs[k]
		var opts []*hgraph.Cluster
		for _, sub := range i.Clusters {
			if a[sub.ID] {
				opts = append(opts, sub)
			}
		}
		if len(opts) == 0 {
			return enumIfs(ifs, k+1, done) // interface inactive
		}
		for _, sub := range opts {
			sel[i.ID] = sub.ID
			cont := enumCluster(sub, func() bool { return enumIfs(ifs, k+1, done) })
			delete(sel, i.ID)
			if !cont {
				return false
			}
		}
		return true
	}
	enumCluster(s.Arch.Root, func() bool { return fn(sel) })
}

// ArchView is the instantaneous architecture implied by an allocation
// and one architecture configuration (cluster selection): the set of
// present resources and their interconnection, used to decide
// communication feasibility of bindings.
type ArchView struct {
	spec      *Spec
	Selection hgraph.Selection
	present   map[hgraph.ID]bool
	adj       map[hgraph.ID]map[hgraph.ID]bool
}

// ArchViewFor constructs the architecture view for an allocation under
// a given architecture configuration. Resources not covered by the
// allocation are removed together with their links.
func (s *Spec) ArchViewFor(a Allocation, archSel hgraph.Selection) (*ArchView, error) {
	fg, err := s.Arch.FlattenPartial(archSel)
	if err != nil {
		return nil, fmt.Errorf("spec %q: flatten architecture: %w", s.Name, err)
	}
	avail := a.ResourceSet(s)
	return s.ArchViewFromFlat(fg, func(id hgraph.ID) bool { return avail[id] }, archSel), nil
}

// ArchViewFromFlat builds the architecture view from an already
// flattened architecture configuration, restricting it to the resources
// for which avail holds. It lets callers that evaluate many allocations
// under the same configuration (the exploration hot path) intern the
// FlattenPartial result instead of recomputing it per candidate.
func (s *Spec) ArchViewFromFlat(fg *hgraph.FlatGraph, avail func(hgraph.ID) bool, archSel hgraph.Selection) *ArchView {
	present := map[hgraph.ID]bool{}
	for _, v := range fg.Vertices {
		if avail(v.ID) {
			present[v.ID] = true
		}
	}
	av := &ArchView{spec: s, Selection: archSel.Clone(), present: present,
		adj: map[hgraph.ID]map[hgraph.ID]bool{}}
	link := func(x, y hgraph.ID) {
		if av.adj[x] == nil {
			av.adj[x] = map[hgraph.ID]bool{}
		}
		av.adj[x][y] = true
	}
	for _, e := range fg.Edges {
		if !present[e.From] || !present[e.To] {
			continue
		}
		// Buses are bidirectional at this level of abstraction: the
		// paper's feasibility rule only asks for an activated
		// architecture link handling the communication.
		link(e.From, e.To)
		link(e.To, e.From)
	}
	return av
}

// Present reports whether a resource exists in this view.
func (av *ArchView) Present(r hgraph.ID) bool { return av.present[r] }

// PresentResources returns the resources of the view, sorted.
func (av *ArchView) PresentResources() []hgraph.ID {
	out := make([]hgraph.ID, 0, len(av.present))
	for id := range av.present {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Adjacent reports whether two present resources are directly linked.
func (av *ArchView) Adjacent(r1, r2 hgraph.ID) bool { return av.adj[r1][r2] }

// CanCommunicate implements the paper's binding feasibility rule 3 for
// an edge of the problem graph whose endpoints are bound to r1 and r2:
// either both operations share a resource, or an activated architecture
// link handles the communication — a direct link, or a one-hop route
// through an activated communication resource (bus vertex) connected to
// both. (The Fig. 2 example — no bus between ASIC and FPGA — requires
// exactly this notion.)
func (av *ArchView) CanCommunicate(r1, r2 hgraph.ID) bool {
	if r1 == r2 {
		return av.present[r1]
	}
	if !av.present[r1] || !av.present[r2] {
		return false
	}
	if av.adj[r1][r2] {
		return true
	}
	for b := range av.adj[r1] {
		if av.spec.IsComm(b) && av.adj[b][r2] {
			return true
		}
	}
	return false
}
