// Package spec implements the hierarchical specification graph
// G_S = (G_P, G_A, E_M) of "System Design for Flexibility": a problem
// graph modelling the required behaviour, an architecture graph
// modelling the class of possible architectures (both hierarchical
// graphs per package hgraph), and user-defined mapping edges that link
// leaves of the problem graph to leaves of the architecture graph with
// a "can be implemented by" relation.
//
// Components carry the attributes the paper annotates to G_S: allocation
// costs on architecture resources, execution latencies on mapping edges,
// and timing constraints (minimal periods) on problem-graph output
// processes.
package spec

import (
	"fmt"
	"sort"

	"repro/internal/hgraph"
)

// Well-known attribute keys used across the library.
const (
	// AttrCost is the allocation cost of an architecture resource
	// (vertex) or architecture cluster.
	AttrCost = "cost"
	// AttrPeriod is the minimal period (timing constraint) annotated to
	// a problem-graph process; 0 or absent means the process is not
	// subject to a timing constraint.
	AttrPeriod = "period"
	// AttrComm marks an architecture vertex as a communication resource
	// (bus) when set to a non-zero value.
	AttrComm = "comm"
	// AttrLatency is the core execution time of a process on a resource,
	// annotated to mapping edges.
	AttrLatency = "latency"
	// AttrWeight is an optional per-cluster weight for the weighted
	// flexibility variant (paper, footnote 2); defaults to 1.
	AttrWeight = "weight"
)

// Mapping is a user-defined mapping edge e ∈ E_M: process (a leaf of
// the problem graph) can be implemented by resource (a leaf of the
// architecture graph) with the given execution latency.
type Mapping struct {
	Process  hgraph.ID
	Resource hgraph.ID
	Latency  float64
	Attrs    hgraph.Attrs
}

// String implements fmt.Stringer.
func (m *Mapping) String() string {
	return fmt.Sprintf("%s=>%s(%g)", m.Process, m.Resource, m.Latency)
}

// Spec is a hierarchical specification graph.
type Spec struct {
	Name     string
	Problem  *hgraph.Graph
	Arch     *hgraph.Graph
	Mappings []*Mapping

	byProcess  map[hgraph.ID][]*Mapping
	byResource map[hgraph.ID][]*Mapping
}

// New assembles and validates a specification graph.
func New(name string, problem, arch *hgraph.Graph, mappings []*Mapping) (*Spec, error) {
	s := &Spec{Name: name, Problem: problem, Arch: arch, Mappings: mappings}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.buildIndex()
	return s, nil
}

// MustNew is like New but panics on validation errors; intended for
// statically known models.
func MustNew(name string, problem, arch *hgraph.Graph, mappings []*Mapping) *Spec {
	s, err := New(name, problem, arch, mappings)
	if err != nil {
		panic(fmt.Sprintf("spec: invalid specification %q: %v", name, err))
	}
	return s
}

// Validate checks that both graphs validate, that every mapping edge
// links a problem-graph leaf to an architecture-graph leaf, and that no
// (process, resource) pair is mapped twice.
func (s *Spec) Validate() error {
	if s.Problem == nil || s.Arch == nil {
		return fmt.Errorf("spec %q: problem and architecture graphs are required", s.Name)
	}
	if err := s.Problem.Validate(); err != nil {
		return fmt.Errorf("spec %q: problem graph: %w", s.Name, err)
	}
	if err := s.Arch.Validate(); err != nil {
		return fmt.Errorf("spec %q: architecture graph: %w", s.Name, err)
	}
	seen := map[[2]hgraph.ID]bool{}
	for _, m := range s.Mappings {
		if s.Problem.VertexByID(m.Process) == nil {
			return fmt.Errorf("spec %q: mapping %v: %q is not a problem-graph leaf", s.Name, m, m.Process)
		}
		if s.Arch.VertexByID(m.Resource) == nil {
			return fmt.Errorf("spec %q: mapping %v: %q is not an architecture-graph leaf", s.Name, m, m.Resource)
		}
		key := [2]hgraph.ID{m.Process, m.Resource}
		if seen[key] {
			return fmt.Errorf("spec %q: duplicate mapping %v", s.Name, m)
		}
		seen[key] = true
		if m.Latency < 0 {
			return fmt.Errorf("spec %q: mapping %v: negative latency", s.Name, m)
		}
	}
	return nil
}

func (s *Spec) buildIndex() {
	s.byProcess = map[hgraph.ID][]*Mapping{}
	s.byResource = map[hgraph.ID][]*Mapping{}
	for _, m := range s.Mappings {
		s.byProcess[m.Process] = append(s.byProcess[m.Process], m)
		s.byResource[m.Resource] = append(s.byResource[m.Resource], m)
	}
	for _, ms := range s.byProcess {
		sort.Slice(ms, func(a, b int) bool { return ms[a].Resource < ms[b].Resource })
	}
	for _, ms := range s.byResource {
		sort.Slice(ms, func(a, b int) bool { return ms[a].Process < ms[b].Process })
	}
}

func (s *Spec) ensureIndex() {
	if s.byProcess == nil {
		s.buildIndex()
	}
}

// MappingsFor returns the mapping edges leaving the given process,
// sorted by resource ID. The paper calls the target set R_ij, the
// reachable resources of a vertex.
func (s *Spec) MappingsFor(process hgraph.ID) []*Mapping {
	s.ensureIndex()
	return s.byProcess[process]
}

// MappingsOnto returns the mapping edges arriving at a resource, sorted
// by process ID.
func (s *Spec) MappingsOnto(resource hgraph.ID) []*Mapping {
	s.ensureIndex()
	return s.byResource[resource]
}

// Mapping returns the mapping edge for (process, resource), or nil.
func (s *Spec) Mapping(process, resource hgraph.ID) *Mapping {
	for _, m := range s.MappingsFor(process) {
		if m.Resource == resource {
			return m
		}
	}
	return nil
}

// ReachableResources returns the IDs of resources reachable from the
// process via mapping edges, sorted.
func (s *Spec) ReachableResources(process hgraph.ID) []hgraph.ID {
	ms := s.MappingsFor(process)
	out := make([]hgraph.ID, len(ms))
	for i, m := range ms {
		out[i] = m.Resource
	}
	return out
}

// IsComm reports whether the architecture leaf with the given ID is a
// communication resource.
func (s *Spec) IsComm(resource hgraph.ID) bool {
	v := s.Arch.VertexByID(resource)
	return v != nil && v.Attrs.GetDefault(AttrComm, 0) != 0
}

// Period returns the timing constraint (minimal period) of a process,
// or 0 when the process is untimed.
func (s *Spec) Period(process hgraph.ID) float64 {
	v := s.Problem.VertexByID(process)
	if v == nil {
		return 0
	}
	return v.Attrs.GetDefault(AttrPeriod, 0)
}

// ResourceCost returns the allocation cost of an architecture leaf
// vertex or architecture cluster.
func (s *Spec) ResourceCost(id hgraph.ID) float64 {
	if v := s.Arch.VertexByID(id); v != nil {
		return v.Attrs.GetDefault(AttrCost, 0)
	}
	if c := s.Arch.ClusterByID(id); c != nil {
		return c.Attrs.GetDefault(AttrCost, 0)
	}
	return 0
}

// VertexCount returns |V_S| as used by the paper's search-space
// headline: all non-hierarchical vertices, interfaces and clusters
// contained in the problem or architecture graph.
func (s *Spec) VertexCount() int {
	pv, pi, pc, _ := s.Problem.ElementCount()
	av, ai, ac, _ := s.Arch.ElementCount()
	return pv + pi + pc + av + ai + ac
}

// Clone returns a deep copy of the specification.
func (s *Spec) Clone() *Spec {
	ms := make([]*Mapping, len(s.Mappings))
	for i, m := range s.Mappings {
		cm := *m
		cm.Attrs = m.Attrs.Clone()
		ms[i] = &cm
	}
	return MustNew(s.Name, s.Problem.Clone(), s.Arch.Clone(), ms)
}

// Summary renders a one-paragraph structural overview of the
// specification: element counts, behaviour variants, timed processes
// and resource classes. Used by the CLI tools.
func (s *Spec) Summary() string {
	pv, pi, pc, pe := s.Problem.ElementCount()
	av, ai, ac, ae := s.Arch.ElementCount()
	timed := 0
	for _, v := range s.Problem.Leaves() {
		if s.Period(v.ID) > 0 {
			timed++
		}
	}
	comm := 0
	for _, v := range s.Arch.Leaves() {
		if s.IsComm(v.ID) {
			comm++
		}
	}
	return fmt.Sprintf(
		"spec %q: problem %d processes (%d timed), %d interfaces, %d clusters, %d edges, %d behaviour variants; "+
			"architecture %d resources (%d buses), %d interfaces, %d designs, %d links; %d mapping edges",
		s.Name, pv, timed, pi, pc, pe, s.Problem.CountVariants(),
		av, comm, ai, ac, ae, len(s.Mappings))
}
