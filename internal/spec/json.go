package spec

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/hgraph"
)

// JSON wire format for specification graphs. The format mirrors the
// hierarchical structure directly so that models are readable and
// hand-editable:
//
//	{
//	  "name": "settop",
//	  "problem": { "root": { "id": "top", "vertices": [...], ... } },
//	  "arch":    { "root": { ... } },
//	  "mappings": [ {"process": "PU1", "resource": "uP1", "latency": 40} ]
//	}
type jsonSpec struct {
	Name     string        `json:"name"`
	Problem  jsonGraph     `json:"problem"`
	Arch     jsonGraph     `json:"arch"`
	Mappings []jsonMapping `json:"mappings"`
}

type jsonGraph struct {
	Name string      `json:"name,omitempty"`
	Root jsonCluster `json:"root"`
}

type jsonCluster struct {
	ID          string             `json:"id"`
	Name        string             `json:"name,omitempty"`
	Attrs       map[string]float64 `json:"attrs,omitempty"`
	Vertices    []jsonVertex       `json:"vertices,omitempty"`
	Edges       []jsonEdge         `json:"edges,omitempty"`
	Interfaces  []jsonInterface    `json:"interfaces,omitempty"`
	PortBinding map[string]string  `json:"portBinding,omitempty"`
}

type jsonVertex struct {
	ID    string             `json:"id"`
	Name  string             `json:"name,omitempty"`
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

type jsonEdge struct {
	From     string             `json:"from"`
	To       string             `json:"to"`
	FromPort string             `json:"fromPort,omitempty"`
	ToPort   string             `json:"toPort,omitempty"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
}

type jsonInterface struct {
	ID       string             `json:"id"`
	Name     string             `json:"name,omitempty"`
	Ports    []jsonPort         `json:"ports,omitempty"`
	Clusters []jsonCluster      `json:"clusters"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
}

type jsonPort struct {
	Name string `json:"name"`
	Dir  string `json:"dir,omitempty"` // "in" (default) or "out"
}

type jsonMapping struct {
	Process  string             `json:"process"`
	Resource string             `json:"resource"`
	Latency  float64            `json:"latency"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
}

// MarshalJSON encodes the specification in the wire format above.
func (s *Spec) MarshalJSON() ([]byte, error) {
	js := jsonSpec{
		Name:    s.Name,
		Problem: jsonGraph{Name: s.Problem.Name, Root: encodeCluster(s.Problem.Root)},
		Arch:    jsonGraph{Name: s.Arch.Name, Root: encodeCluster(s.Arch.Root)},
	}
	for _, m := range s.Mappings {
		js.Mappings = append(js.Mappings, jsonMapping{
			Process: string(m.Process), Resource: string(m.Resource),
			Latency: m.Latency, Attrs: m.Attrs,
		})
	}
	return json.Marshal(js)
}

func encodeCluster(c *hgraph.Cluster) jsonCluster {
	jc := jsonCluster{ID: string(c.ID), Name: c.Name, Attrs: c.Attrs}
	for _, v := range c.Vertices {
		jc.Vertices = append(jc.Vertices, jsonVertex{ID: string(v.ID), Name: v.Name, Attrs: v.Attrs})
	}
	for _, e := range c.Edges {
		jc.Edges = append(jc.Edges, jsonEdge{
			From: string(e.From), To: string(e.To),
			FromPort: e.FromPort, ToPort: e.ToPort, Attrs: e.Attrs,
		})
	}
	for _, i := range c.Interfaces {
		ji := jsonInterface{ID: string(i.ID), Name: i.Name, Attrs: i.Attrs}
		for _, p := range i.Ports {
			dir := "in"
			if p.Dir == hgraph.Out {
				dir = "out"
			}
			ji.Ports = append(ji.Ports, jsonPort{Name: p.Name, Dir: dir})
		}
		for _, sub := range i.Clusters {
			ji.Clusters = append(ji.Clusters, encodeCluster(sub))
		}
		jc.Interfaces = append(jc.Interfaces, ji)
	}
	if len(c.PortBinding) > 0 {
		jc.PortBinding = map[string]string{}
		for k, v := range c.PortBinding {
			jc.PortBinding[k] = string(v)
		}
	}
	return jc
}

// UnmarshalJSON decodes and validates a specification from the wire
// format.
func (s *Spec) UnmarshalJSON(data []byte) error {
	raw, err := decodeSpec(data)
	if err != nil {
		return err
	}
	if err := raw.Problem.Validate(); err != nil {
		return fmt.Errorf("spec %q: problem graph: %w", raw.Name, err)
	}
	if err := raw.Arch.Validate(); err != nil {
		return fmt.Errorf("spec %q: architecture graph: %w", raw.Name, err)
	}
	dec, err := New(raw.Name, raw.Problem, raw.Arch, raw.Mappings)
	if err != nil {
		return err
	}
	*s = *dec
	return nil
}

// decodeSpec parses the wire format into an unvalidated Spec. Only JSON
// syntax errors fail; structural problems (duplicate IDs, dangling
// edges, bad mappings) are preserved for later analysis.
func decodeSpec(data []byte) (*Spec, error) {
	var js jsonSpec
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	s := &Spec{
		Name:    js.Name,
		Problem: &hgraph.Graph{Name: orDefault(js.Problem.Name, js.Name+".problem"), Root: decodeCluster(js.Problem.Root)},
		Arch:    &hgraph.Graph{Name: orDefault(js.Arch.Name, js.Name+".arch"), Root: decodeCluster(js.Arch.Root)},
	}
	for _, m := range js.Mappings {
		s.Mappings = append(s.Mappings, &Mapping{
			Process: hgraph.ID(m.Process), Resource: hgraph.ID(m.Resource),
			Latency: m.Latency, Attrs: m.Attrs,
		})
	}
	return s, nil
}

func orDefault(v, def string) string {
	if v != "" {
		return v
	}
	return def
}

func decodeCluster(jc jsonCluster) *hgraph.Cluster {
	c := &hgraph.Cluster{ID: hgraph.ID(jc.ID), Name: orDefault(jc.Name, jc.ID), Attrs: jc.Attrs}
	for _, v := range jc.Vertices {
		c.Vertices = append(c.Vertices, &hgraph.Vertex{
			ID: hgraph.ID(v.ID), Name: orDefault(v.Name, v.ID), Attrs: v.Attrs,
		})
	}
	for k, e := range jc.Edges {
		c.Edges = append(c.Edges, &hgraph.Edge{
			ID:   hgraph.ID(fmt.Sprintf("%s:e%d:%s->%s", jc.ID, k, e.From, e.To)),
			From: hgraph.ID(e.From), To: hgraph.ID(e.To),
			FromPort: e.FromPort, ToPort: e.ToPort, Attrs: e.Attrs,
		})
	}
	for _, ji := range jc.Interfaces {
		i := &hgraph.Interface{ID: hgraph.ID(ji.ID), Name: orDefault(ji.Name, ji.ID), Attrs: ji.Attrs}
		for _, p := range ji.Ports {
			dir := hgraph.In
			if p.Dir == "out" {
				dir = hgraph.Out
			}
			i.Ports = append(i.Ports, hgraph.Port{Name: p.Name, Dir: dir})
		}
		for _, sub := range ji.Clusters {
			i.Clusters = append(i.Clusters, decodeCluster(sub))
		}
		c.Interfaces = append(c.Interfaces, i)
	}
	if len(jc.PortBinding) > 0 {
		c.PortBinding = map[string]hgraph.ID{}
		for k, v := range jc.PortBinding {
			c.PortBinding[k] = hgraph.ID(v)
		}
	}
	return c
}

// Write encodes the specification as indented JSON to w.
func (s *Spec) Write(w io.Writer) error {
	data, err := s.MarshalJSON()
	if err != nil {
		return err
	}
	var buf []byte
	{
		var tmp interface{}
		if err := json.Unmarshal(data, &tmp); err != nil {
			return err
		}
		buf, err = json.MarshalIndent(tmp, "", "  ")
		if err != nil {
			return err
		}
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// Read decodes a specification from JSON on r.
func Read(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := &Spec{}
	if err := s.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadLenient decodes a specification from JSON on r WITHOUT
// validating it: only JSON syntax errors fail. The result may violate
// every structural invariant (duplicate IDs, dangling edges, mappings
// onto unknown elements) — it exists so static analysis (package lint,
// cmd/speclint) can diagnose malformed specifications precisely instead
// of stopping at the first validation error. Exploration and binding
// must never consume a lenient spec directly.
func ReadLenient(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeSpec(data)
}
