package spec

import (
	"fmt"

	"repro/internal/hgraph"
)

// AddBehaviour evolves the specification with a new behaviour variant:
// a cluster is attached to a problem-graph interface and its processes
// gain mapping edges. This is the paper's incremental-design scenario
// (new functionality arriving after the platform is dimensioned, §1's
// discussion of [10]); pair it with core.Upgrade to find the cheapest
// platform extension implementing the newcomer. On error the
// specification is unchanged.
func (s *Spec) AddBehaviour(interfaceID hgraph.ID, c *hgraph.Cluster, mappings []*Mapping) error {
	if err := s.Problem.AddCluster(interfaceID, c); err != nil {
		return err
	}
	old := s.Mappings
	s.Mappings = append(append([]*Mapping(nil), old...), mappings...)
	if err := s.Validate(); err != nil {
		s.Mappings = old
		if rerr := s.Problem.RemoveCluster(c.ID); rerr != nil {
			return fmt.Errorf("spec %q: %w (rollback failed: %w)", s.Name, err, rerr)
		}
		return err
	}
	s.buildIndex()
	return nil
}

// RemoveBehaviour removes a problem-graph cluster and the mapping edges
// of the processes it (exclusively) contained.
func (s *Spec) RemoveBehaviour(clusterID hgraph.ID) error {
	c := s.Problem.ClusterByID(clusterID)
	if c == nil {
		return fmt.Errorf("spec %q: no cluster %q", s.Name, clusterID)
	}
	gone := map[hgraph.ID]bool{}
	for _, v := range s.Problem.LeavesOf(c) {
		gone[v.ID] = true
	}
	if err := s.Problem.RemoveCluster(clusterID); err != nil {
		return err
	}
	kept := s.Mappings[:0]
	for _, m := range s.Mappings {
		if !gone[m.Process] {
			kept = append(kept, m)
		}
	}
	s.Mappings = kept
	s.buildIndex()
	return nil
}
