package spec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hgraph"
)

// buildMini constructs a reduced Fig. 2-style specification: a decoder
// problem graph (controller, authentification, decryption interface
// with two alternatives, uncompression interface with one alternative)
// over an architecture with a processor, an ASIC, two buses, and an
// FPGA interface with two alternative designs. There is deliberately no
// bus between the ASIC and the FPGA (the paper's infeasible-binding
// example).
func buildMini(t testing.TB) *Spec {
	t.Helper()

	pb := hgraph.NewBuilder("problem", "ptop")
	r := pb.Root()
	r.Vertex("PA").Vertex("PC")
	ifD := r.Interface("IfD", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	ifD.Cluster("gD1").Vertex("PD1", AttrPeriod, 300).Bind("in", "PD1").Bind("out", "PD1")
	ifD.Cluster("gD2").Vertex("PD2", AttrPeriod, 300).Bind("in", "PD2").Bind("out", "PD2")
	ifU := r.Interface("IfU", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	ifU.Cluster("gU1").Vertex("PU1", AttrPeriod, 300).Bind("in", "PU1").Bind("out", "PU1")
	r.PortEdge("PC", "", "IfD", "in")
	r.PortEdge("IfD", "out", "IfU", "in")
	problem := pb.MustBuild()

	ab := hgraph.NewBuilder("arch", "atop")
	ar := ab.Root()
	ar.Vertex("uP", AttrCost, 50)
	ar.Vertex("A", AttrCost, 100)
	ar.Vertex("C1", AttrCost, 5, AttrComm, 1)
	ar.Vertex("C2", AttrCost, 5, AttrComm, 1)
	fpga := ar.Interface("FPGA", hgraph.Port{Name: "bus"})
	fpga.Cluster("dD3").Vertex("D3", AttrCost, 20).Bind("bus", "D3")
	fpga.Cluster("dU2").Vertex("U2", AttrCost, 20).Bind("bus", "U2")
	ar.Edge("uP", "C1")
	ar.PortEdge("C1", "", "FPGA", "bus")
	ar.Edge("uP", "C2")
	ar.Edge("C2", "A")
	arch := ab.MustBuild()

	mappings := []*Mapping{
		{Process: "PA", Resource: "uP", Latency: 55},
		{Process: "PC", Resource: "uP", Latency: 10},
		{Process: "PD1", Resource: "uP", Latency: 85},
		{Process: "PD1", Resource: "A", Latency: 25},
		{Process: "PD2", Resource: "A", Latency: 35},
		{Process: "PD2", Resource: "D3", Latency: 63},
		{Process: "PU1", Resource: "uP", Latency: 40},
		{Process: "PU1", Resource: "A", Latency: 15},
		{Process: "PU1", Resource: "U2", Latency: 59},
	}
	return MustNew("mini", problem, arch, mappings)
}

func TestValidateRejections(t *testing.T) {
	s := buildMini(t)
	cases := []struct {
		name string
		ms   []*Mapping
	}{
		{"unknown process", []*Mapping{{Process: "nope", Resource: "uP"}}},
		{"unknown resource", []*Mapping{{Process: "PA", Resource: "nope"}}},
		{"interface as process", []*Mapping{{Process: "IfD", Resource: "uP"}}},
		{"duplicate", []*Mapping{{Process: "PA", Resource: "uP"}, {Process: "PA", Resource: "uP"}}},
		{"negative latency", []*Mapping{{Process: "PA", Resource: "uP", Latency: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New("bad", s.Problem, s.Arch, tc.ms); err == nil {
				t.Errorf("New accepted %s", tc.name)
			}
		})
	}
	if _, err := New("bad", nil, s.Arch, nil); err == nil {
		t.Error("New accepted nil problem graph")
	}
}

func TestMappingLookups(t *testing.T) {
	s := buildMini(t)
	if got := len(s.MappingsFor("PD1")); got != 2 {
		t.Errorf("MappingsFor(PD1) = %d entries, want 2", got)
	}
	rs := s.ReachableResources("PD1")
	if len(rs) != 2 || rs[0] != "A" || rs[1] != "uP" {
		t.Errorf("ReachableResources(PD1) = %v, want [A uP]", rs)
	}
	if m := s.Mapping("PU1", "A"); m == nil || m.Latency != 15 {
		t.Errorf("Mapping(PU1,A) = %v, want latency 15", m)
	}
	if m := s.Mapping("PU1", "D3"); m != nil {
		t.Errorf("Mapping(PU1,D3) = %v, want nil", m)
	}
	if got := len(s.MappingsOnto("uP")); got != 4 {
		t.Errorf("MappingsOnto(uP) = %d entries, want 4", got)
	}
	if got := s.ReachableResources("unmapped"); len(got) != 0 {
		t.Errorf("ReachableResources(unmapped) = %v, want empty", got)
	}
}

func TestAttributeAccessors(t *testing.T) {
	s := buildMini(t)
	if !s.IsComm("C1") || s.IsComm("uP") || s.IsComm("nope") {
		t.Error("IsComm misbehaves")
	}
	if got := s.Period("PD1"); got != 300 {
		t.Errorf("Period(PD1) = %v, want 300", got)
	}
	if got := s.Period("PA"); got != 0 {
		t.Errorf("Period(PA) = %v, want 0 (untimed)", got)
	}
	if got := s.ResourceCost("A"); got != 100 {
		t.Errorf("ResourceCost(A) = %v, want 100", got)
	}
	if got := s.ResourceCost("dD3"); got != 0 {
		// cluster itself carries no cost attr; cost sits on D3
		t.Errorf("ResourceCost(dD3) = %v, want 0", got)
	}
	if got := s.ResourceCost("ghost"); got != 0 {
		t.Errorf("ResourceCost(ghost) = %v, want 0", got)
	}
}

func TestVertexCount(t *testing.T) {
	s := buildMini(t)
	// problem: 5 vertices + 2 interfaces + 3 clusters = 10
	// arch: 6 vertices + 1 interface + 2 clusters = 9
	if got := s.VertexCount(); got != 19 {
		t.Errorf("VertexCount = %d, want 19", got)
	}
}

func TestAllocationBasics(t *testing.T) {
	s := buildMini(t)
	a := NewAllocation("uP", "C1", "dD3")
	if got := a.Cost(s); got != 75 {
		t.Errorf("Cost = %v, want 50+5+20 = 75", got)
	}
	rs := a.Resources(s)
	want := []hgraph.ID{"C1", "D3", "uP"}
	if len(rs) != len(want) {
		t.Fatalf("Resources = %v, want %v", rs, want)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("Resources[%d] = %s, want %s", i, rs[i], want[i])
		}
	}
	if a.String() != "{C1 dD3 uP}" {
		t.Errorf("String = %s", a.String())
	}
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	delete(b, "C1")
	if a.Equal(b) || !b.Subset(a) || a.Subset(b) {
		t.Error("Equal/Subset misbehave")
	}
	if len(a.IDs()) != 3 {
		t.Errorf("IDs = %v", a.IDs())
	}
}

func TestAllocationClusterCost(t *testing.T) {
	// A cluster with its own cost attribute adds it on top of contained
	// resource costs.
	ab := hgraph.NewBuilder("arch", "t")
	fpga := ab.Root().Interface("F", hgraph.Port{Name: "p"})
	fpga.Cluster("d1").Attr(AttrCost, 7).Vertex("r1", AttrCost, 3).Bind("p", "r1")
	arch := ab.MustBuild()
	pb := hgraph.NewBuilder("problem", "pt")
	pb.Root().Vertex("x")
	prob := pb.MustBuild()
	s := MustNew("c", prob, arch, []*Mapping{{Process: "x", Resource: "r1"}})
	if got := NewAllocation("d1").Cost(s); got != 10 {
		t.Errorf("cluster cost = %v, want 10", got)
	}
}

func TestAllocatedClusters(t *testing.T) {
	s := buildMini(t)
	a := NewAllocation("uP", "dD3", "dU2")
	byIf := a.AllocatedClusters(s)
	cs, ok := byIf["FPGA"]
	if !ok || len(cs) != 2 || cs[0] != "dD3" || cs[1] != "dU2" {
		t.Errorf("AllocatedClusters[FPGA] = %v, want [dD3 dU2]", cs)
	}
	if len(byIf) != 1 {
		t.Errorf("AllocatedClusters has %d interfaces, want 1", len(byIf))
	}
}

func TestEnumerateArchSelections(t *testing.T) {
	s := buildMini(t)
	count := func(a Allocation) int {
		n := 0
		a.EnumerateArchSelections(s, func(hgraph.Selection) bool { n++; return true })
		return n
	}
	if got := count(NewAllocation("uP")); got != 1 {
		t.Errorf("no FPGA design allocated: %d selections, want 1 (FPGA inactive)", got)
	}
	if got := count(NewAllocation("uP", "dD3")); got != 1 {
		t.Errorf("one design: %d selections, want 1", got)
	}
	if got := count(NewAllocation("uP", "dD3", "dU2")); got != 2 {
		t.Errorf("two designs: %d selections, want 2", got)
	}
	// early stop
	n := 0
	NewAllocation("uP", "dD3", "dU2").EnumerateArchSelections(s, func(hgraph.Selection) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop enumerated %d, want 1", n)
	}
}

func TestArchViewCommunication(t *testing.T) {
	s := buildMini(t)

	// uP and A connected via bus C2.
	a := NewAllocation("uP", "A", "C2")
	av, err := s.ArchViewFor(a, hgraph.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if !av.CanCommunicate("uP", "A") {
		t.Error("uP<->A via C2 should communicate")
	}
	if !av.CanCommunicate("uP", "uP") {
		t.Error("same resource should communicate")
	}

	// Without the bus they cannot.
	a2 := NewAllocation("uP", "A")
	av2, err := s.ArchViewFor(a2, hgraph.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if av2.CanCommunicate("uP", "A") {
		t.Error("uP<->A without bus must not communicate")
	}

	// FPGA design D3 reachable from uP via C1 (edge rerouted through the
	// FPGA interface port binding).
	a3 := NewAllocation("uP", "C1", "dD3")
	av3, err := s.ArchViewFor(a3, hgraph.Selection{"FPGA": "dD3"})
	if err != nil {
		t.Fatal(err)
	}
	if !av3.CanCommunicate("uP", "D3") {
		t.Error("uP<->D3 via C1 should communicate")
	}
	if !av3.Present("D3") || av3.Present("U2") || av3.Present("A") {
		t.Error("presence filtering wrong")
	}

	// The paper's infeasible example: no bus between ASIC and FPGA.
	a4 := NewAllocation("uP", "A", "C1", "C2", "dD3")
	av4, err := s.ArchViewFor(a4, hgraph.Selection{"FPGA": "dD3"})
	if err != nil {
		t.Fatal(err)
	}
	if av4.CanCommunicate("A", "D3") {
		t.Error("A<->D3 must not communicate (no shared bus)")
	}
	if !av4.CanCommunicate("uP", "A") || !av4.CanCommunicate("uP", "D3") {
		t.Error("uP must reach both A and D3")
	}

	// Unallocated endpoint never communicates.
	if av3.CanCommunicate("uP", "A") || av3.CanCommunicate("A", "A") {
		t.Error("absent resources must not communicate")
	}
}

func TestArchViewAdjacencyAndResources(t *testing.T) {
	s := buildMini(t)
	a := NewAllocation("uP", "A", "C2")
	av, err := s.ArchViewFor(a, hgraph.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if !av.Adjacent("uP", "C2") || !av.Adjacent("C2", "uP") {
		t.Error("bus adjacency should be symmetric")
	}
	if av.Adjacent("uP", "A") {
		t.Error("uP-A are not directly adjacent")
	}
	rs := av.PresentResources()
	if len(rs) != 3 {
		t.Errorf("PresentResources = %v, want 3 entries", rs)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := buildMini(t)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != s.Name {
		t.Errorf("Name = %q, want %q", got.Name, s.Name)
	}
	if got.VertexCount() != s.VertexCount() {
		t.Errorf("VertexCount = %d, want %d", got.VertexCount(), s.VertexCount())
	}
	if len(got.Mappings) != len(s.Mappings) {
		t.Fatalf("mappings = %d, want %d", len(got.Mappings), len(s.Mappings))
	}
	if m := got.Mapping("PU1", "A"); m == nil || m.Latency != 15 {
		t.Errorf("round-tripped Mapping(PU1,A) = %v", m)
	}
	if got.Period("PD1") != 300 {
		t.Errorf("round-tripped Period(PD1) = %v", got.Period("PD1"))
	}
	if !got.IsComm("C1") {
		t.Error("round-tripped IsComm(C1) = false")
	}
	if got.ResourceCost("A") != 100 {
		t.Errorf("round-tripped ResourceCost(A) = %v", got.ResourceCost("A"))
	}
	// Flattening behaviour preserved (port bindings survive).
	av, err := got.ArchViewFor(NewAllocation("uP", "C1", "dD3"), hgraph.Selection{"FPGA": "dD3"})
	if err != nil {
		t.Fatal(err)
	}
	if !av.CanCommunicate("uP", "D3") {
		t.Error("round-tripped arch lost port binding connectivity")
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"name":"x","problem":{"root":{"id":"p","vertices":[{"id":"a"},{"id":"a"}]}},"arch":{"root":{"id":"t"}}}`,                                                          // dup vertex
		`{"name":"x","problem":{"root":{"id":"p","vertices":[{"id":"a"}]}},"arch":{"root":{"id":"t","vertices":[{"id":"r"}]}},"mappings":[{"process":"z","resource":"r"}]}`, // unknown process
	}
	for i, c := range cases {
		s := &Spec{}
		if err := s.UnmarshalJSON([]byte(c)); err == nil {
			t.Errorf("case %d: UnmarshalJSON accepted invalid input", i)
		}
	}
}

func TestSpecClone(t *testing.T) {
	s := buildMini(t)
	c := s.Clone()
	c.Mappings[0].Latency = 999
	if s.Mappings[0].Latency == 999 {
		t.Error("clone shares mapping storage")
	}
	if c.VertexCount() != s.VertexCount() {
		t.Error("clone counts differ")
	}
}

func BenchmarkArchViewFor(b *testing.B) {
	s := buildMini(b)
	a := NewAllocation("uP", "A", "C1", "C2", "dD3")
	sel := hgraph.Selection{"FPGA": "dD3"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.ArchViewFor(a, sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	s := buildMini(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := s.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		out := &Spec{}
		if err := out.UnmarshalJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSummary(t *testing.T) {
	s := buildMini(t)
	got := s.Summary()
	for _, frag := range []string{`spec "mini"`, "5 processes (3 timed)", "2 behaviour variants", "2 buses", "9 mapping edges"} {
		if !strings.Contains(got, frag) {
			t.Errorf("Summary lacks %q:\n%s", frag, got)
		}
	}
}
