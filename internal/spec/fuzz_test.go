package spec

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalJSON checks that arbitrary input never panics the
// decoder and that everything it accepts survives a re-encode/re-decode
// round trip with identical structure.
func FuzzUnmarshalJSON(f *testing.F) {
	s := buildMini(&testing.T{})
	seed, err := s.MarshalJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","problem":{"root":{"id":"p","vertices":[{"id":"a"}]}},"arch":{"root":{"id":"t","vertices":[{"id":"r"}]}},"mappings":[{"process":"a","resource":"r","latency":3}]}`))
	f.Add([]byte(`{"name":"x","problem":{"root":{"id":"p"}},"arch":{"root":{"id":"p"}}}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s1 Spec
		if err := s1.UnmarshalJSON(data); err != nil {
			return // rejected input is fine; panics are not
		}
		out1, err := s1.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted spec failed to marshal: %v", err)
		}
		var s2 Spec
		if err := s2.UnmarshalJSON(out1); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		out2, err := s2.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("encode/decode not idempotent:\n%s\nvs\n%s", out1, out2)
		}
		if s1.VertexCount() != s2.VertexCount() || len(s1.Mappings) != len(s2.Mappings) {
			t.Fatal("round trip changed structure")
		}
	})
}
