package spec

import (
	"fmt"

	"repro/internal/hgraph"
)

// Reduce implements the paper's reduction step verbatim: "For every
// possible resource allocation, we remove all resources that are not
// activated from the architecture graph. By removing these elements,
// also mapping edges are removed from the specification graph. Next, we
// delete all vertices in the problem graph with no incident mapping
// edge. This results in a reduced specification graph."
//
// Clusters of the problem graph that lose a vertex are removed entirely
// (a cluster whose process cannot be bound can never be activated), and
// interfaces that lose all clusters propagate the removal upward. The
// architecture graph keeps only allocated elements; architecture
// interfaces keep only allocated clusters. The reduced specification is
// returned as an independent value; the receiver is not modified.
//
// The maximum flexibility of the reduced specification equals the
// paper's flexibility estimation for the allocation.
func (s *Spec) Reduce(a Allocation) (*Spec, error) {
	avail := a.ResourceSet(s)

	// --- architecture graph: keep allocated elements only ---
	arch := s.Arch.Clone()
	keepArch := func(c *hgraph.Cluster, top bool) {
		var vs []*hgraph.Vertex
		for _, v := range c.Vertices {
			if !top || avail[v.ID] {
				vs = append(vs, v)
			}
		}
		c.Vertices = vs
	}
	keepArch(arch.Root, true)
	var filterIfs func(c *hgraph.Cluster)
	filterIfs = func(c *hgraph.Cluster) {
		var ifs []*hgraph.Interface
		for _, i := range c.Interfaces {
			var cs []*hgraph.Cluster
			for _, sub := range i.Clusters {
				if a[sub.ID] {
					filterIfs(sub)
					cs = append(cs, sub)
				}
			}
			i.Clusters = cs
			if len(cs) > 0 {
				ifs = append(ifs, i)
			}
		}
		c.Interfaces = ifs
	}
	filterIfs(arch.Root)
	pruneDanglingEdges(arch.Root)

	// --- mapping edges: keep those into available resources ---
	var mappings []*Mapping
	hasMapping := map[hgraph.ID]bool{}
	for _, m := range s.Mappings {
		if avail[m.Resource] {
			cm := *m
			cm.Attrs = m.Attrs.Clone()
			mappings = append(mappings, &cm)
			hasMapping[m.Process] = true
		}
	}

	// --- problem graph: drop unbindable vertices, then clusters ---
	problem := s.Problem.Clone()
	var reduceCluster func(c *hgraph.Cluster) bool // false = cluster dies
	reduceCluster = func(c *hgraph.Cluster) bool {
		for _, v := range c.Vertices {
			if !hasMapping[v.ID] {
				return false
			}
		}
		var ifs []*hgraph.Interface
		for _, i := range c.Interfaces {
			var cs []*hgraph.Cluster
			for _, sub := range i.Clusters {
				if reduceCluster(sub) {
					cs = append(cs, sub)
				}
			}
			i.Clusters = cs
			if len(cs) == 0 {
				return false // interface unsatisfiable => cluster dies
			}
			ifs = append(ifs, i)
		}
		c.Interfaces = ifs
		return true
	}
	if !reduceCluster(problem.Root) {
		return nil, fmt.Errorf("spec %q: allocation %v is not possible (top level unbindable)", s.Name, a)
	}
	pruneDanglingEdges(problem.Root)
	// Drop mapping edges whose process no longer exists.
	probLeaves := map[hgraph.ID]bool{}
	for _, v := range (&hgraph.Graph{Name: "tmp", Root: problem.Root}).Leaves() {
		probLeaves[v.ID] = true
	}
	var kept []*Mapping
	for _, m := range mappings {
		if probLeaves[m.Process] {
			kept = append(kept, m)
		}
	}

	reducedProblem, err := hgraph.New(s.Problem.Name+"-reduced", problem.Root)
	if err != nil {
		return nil, fmt.Errorf("spec %q: reduced problem graph: %w", s.Name, err)
	}
	reducedArch, err := hgraph.New(s.Arch.Name+"-reduced", arch.Root)
	if err != nil {
		return nil, fmt.Errorf("spec %q: reduced architecture graph: %w", s.Name, err)
	}
	return New(s.Name+"-reduced", reducedProblem, reducedArch, kept)
}

// pruneDanglingEdges removes, in every cluster, edges whose endpoints
// no longer exist in that cluster.
func pruneDanglingEdges(c *hgraph.Cluster) {
	local := map[hgraph.ID]bool{}
	for _, v := range c.Vertices {
		local[v.ID] = true
	}
	for _, i := range c.Interfaces {
		local[i.ID] = true
	}
	var es []*hgraph.Edge
	for _, e := range c.Edges {
		if local[e.From] && local[e.To] {
			es = append(es, e)
		}
	}
	c.Edges = es
	for _, i := range c.Interfaces {
		for _, sub := range i.Clusters {
			pruneDanglingEdges(sub)
		}
	}
}
