// Package flex implements the flexibility metric of Definition 4 in
// "System Design for Flexibility" (DATE 2002).
//
// The flexibility of a cluster γ, if ever activated, is the sum of the
// flexibilities of all its interfaces minus (number of interfaces − 1);
// a cluster without interfaces has flexibility 1; a never-activated
// cluster has flexibility 0. The flexibility of an interface is the sum
// of the flexibilities of its clusters. The future-activation indicator
// a⁺(γ) is supplied by the caller (for maximum flexibility every cluster
// is activatable; for implemented flexibility only clusters that are
// part of a feasible implementation count).
//
// The package also provides the weighted variant suggested by the
// paper's footnote 2, where each cluster carries a weight (attribute
// "weight", default 1) expressing the relative worth of the behaviour
// it implements.
package flex

import (
	"repro/internal/bitset"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// Activation is the future-activation indicator a⁺: it reports whether
// the cluster with the given ID will ever be selected. The root cluster
// is queried as well (a⁺(G_P) in the paper's worked equation).
type Activation func(hgraph.ID) bool

// AllActive is the activation under which every cluster is activatable;
// it yields the maximum flexibility of a graph.
func AllActive(hgraph.ID) bool { return true }

// FromSet adapts a set of activatable cluster IDs to an Activation.
func FromSet(active map[hgraph.ID]bool) Activation {
	return func(id hgraph.ID) bool { return active[id] }
}

// FromBits adapts a dense cluster set (indexed by ix) to an
// Activation. It is the allocation-free counterpart of FromSet used on
// the exploration hot path.
func FromBits(set bitset.Set, ix *bitset.Indexer[hgraph.ID]) Activation {
	return func(id hgraph.ID) bool {
		i, ok := ix.Index(id)
		return ok && set.Has(i)
	}
}

// Except returns an activation that is act minus the listed clusters.
func Except(act Activation, excluded ...hgraph.ID) Activation {
	ex := map[hgraph.ID]bool{}
	for _, id := range excluded {
		ex[id] = true
	}
	return func(id hgraph.ID) bool { return !ex[id] && act(id) }
}

// Flexibility computes f_impl(G) of a hierarchical (problem) graph under
// the activation a⁺ — Definition 4 applied to the root cluster.
//
// One consequence of the hierarchical activation rules is made explicit
// here: a cluster containing an interface none of whose clusters is
// activatable can itself never be activated (rule 1 would be violated),
// so its flexibility is 0 regardless of a⁺.
func Flexibility(g *hgraph.Graph, act Activation) float64 {
	return clusterFlex(g.Root, act, nil)
}

// MaxFlexibility is Flexibility under AllActive: the flexibility
// obtained if all clusters can be activated in future implementations.
func MaxFlexibility(g *hgraph.Graph) float64 {
	return Flexibility(g, AllActive)
}

// WeightedFlexibility computes the footnote-2 variant: every cluster's
// contribution is scaled by its "weight" attribute (default 1). With
// all weights 1 it coincides with Flexibility.
func WeightedFlexibility(g *hgraph.Graph, act Activation) float64 {
	return clusterFlex(g.Root, act, func(c *hgraph.Cluster) float64 {
		return c.Attrs.GetDefault(spec.AttrWeight, 1)
	})
}

// clusterFlex evaluates Definition 4 on one cluster. weight is nil for
// the unweighted metric.
func clusterFlex(c *hgraph.Cluster, act Activation, weight func(*hgraph.Cluster) float64) float64 {
	if !act(c.ID) {
		return 0
	}
	w := 1.0
	if weight != nil {
		w = weight(c)
	}
	if len(c.Interfaces) == 0 {
		return w
	}
	total := 0.0
	for _, i := range c.Interfaces {
		sum := 0.0
		for _, sub := range i.Clusters {
			sum += clusterFlex(sub, act, weight)
		}
		if sum == 0 {
			// No activatable refinement for this interface: the cluster
			// can never be activated (activation rule 1).
			return 0
		}
		total += sum
	}
	return w * (total - float64(len(c.Interfaces)-1))
}

// InterfaceFlexibility computes the flexibility of a single interface:
// the sum of the flexibilities of its clusters.
func InterfaceFlexibility(i *hgraph.Interface, act Activation) float64 {
	sum := 0.0
	for _, sub := range i.Clusters {
		sum += clusterFlex(sub, act, nil)
	}
	return sum
}

// ClusterFlexibility computes Definition 4 on one cluster of the graph.
func ClusterFlexibility(c *hgraph.Cluster, act Activation) float64 {
	return clusterFlex(c, act, nil)
}

// ActivatableClusters returns, given an activation, the set of cluster
// IDs that can actually be activated under the hierarchical activation
// rules: a cluster is effectively activatable iff a⁺ holds for it, its
// owner interface belongs to an effectively activatable cluster, and
// every one of its interfaces has at least one effectively activatable
// cluster. The root is subject to a⁺ like any other cluster, matching
// the a⁺(G_P) factor of the paper's worked equation. Normalizing an
// activation through this set leaves Flexibility unchanged.
func ActivatableClusters(g *hgraph.Graph, act Activation) map[hgraph.ID]bool {
	out := map[hgraph.ID]bool{}
	memo := map[hgraph.ID]bool{}
	var ok func(c *hgraph.Cluster) bool
	ok = func(c *hgraph.Cluster) bool {
		if v, seen := memo[c.ID]; seen {
			return v
		}
		res := act(c.ID)
		if res {
			for _, i := range c.Interfaces {
				any := false
				for _, sub := range i.Clusters {
					if ok(sub) {
						any = true
					}
				}
				if !any {
					res = false
					break
				}
			}
		}
		memo[c.ID] = res
		return res
	}
	// Evaluate all clusters so the memo is complete even under early
	// failures, then mark top-down: a cluster is in the result only if
	// its whole ancestor chain is activatable.
	var mark func(c *hgraph.Cluster)
	mark = func(c *hgraph.Cluster) {
		if !ok(c) {
			return
		}
		out[c.ID] = true
		for _, i := range c.Interfaces {
			for _, sub := range i.Clusters {
				mark(sub)
			}
		}
	}
	mark(g.Root)
	return out
}

// ActivatableSet is ActivatableClusters over dense bitsets: the
// activation a⁺ is the cluster set act (indexed by ix, which must index
// every cluster of g) and the result is the effectively activatable
// set under the hierarchical activation rules, in the same index space.
// A slice memo replaces the map memo, so one exploration candidate
// costs two small allocations instead of two maps.
func ActivatableSet(g *hgraph.Graph, act bitset.Set, ix *bitset.Indexer[hgraph.ID]) bitset.Set {
	out := bitset.New(ix.Len())
	memo := make([]int8, ix.Len()) // 0 unknown, 1 activatable, 2 not
	var ok func(c *hgraph.Cluster) bool
	ok = func(c *hgraph.Cluster) bool {
		i, _ := ix.Index(c.ID)
		if memo[i] != 0 {
			return memo[i] == 1
		}
		res := act.Has(i)
		if res {
			for _, iface := range c.Interfaces {
				any := false
				for _, sub := range iface.Clusters {
					if ok(sub) {
						any = true
					}
				}
				if !any {
					res = false
					break
				}
			}
		}
		if res {
			memo[i] = 1
		} else {
			memo[i] = 2
		}
		return res
	}
	var mark func(c *hgraph.Cluster)
	mark = func(c *hgraph.Cluster) {
		if !ok(c) {
			return
		}
		i, _ := ix.Index(c.ID)
		out.Add(i)
		for _, iface := range c.Interfaces {
			for _, sub := range iface.Clusters {
				mark(sub)
			}
		}
	}
	mark(g.Root)
	return out
}
