package flex

import (
	"testing"
	"testing/quick"

	"repro/internal/hgraph"
	"repro/internal/hgraph/hgraphtest"
	"repro/internal/spec"
)

// buildFig3 constructs the problem graph of Fig. 3: a Set-Top box family
// whose top-level application interface is refined by an Internet
// browser, a game console (with three game-class alternatives) and a
// digital TV decoder (with three decryption and two uncompression
// alternatives).
func buildFig3(t testing.TB) *hgraph.Graph {
	t.Helper()
	b := hgraph.NewBuilder("fig3", "GP")
	app := b.Root().Interface("IApp")

	gI := app.Cluster("gI")
	gI.Vertex("PCI").Vertex("PP").Vertex("PF")
	gI.Edge("PCI", "PP").Edge("PP", "PF")

	gG := app.Cluster("gG")
	gG.Vertex("PCG").Vertex("PD")
	ig := gG.Interface("IG", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	ig.Cluster("gG1").Vertex("PG1").Bind("in", "PG1").Bind("out", "PG1")
	ig.Cluster("gG2").Vertex("PG2").Bind("in", "PG2").Bind("out", "PG2")
	ig.Cluster("gG3").Vertex("PG3").Bind("in", "PG3").Bind("out", "PG3")
	gG.PortEdge("PCG", "", "IG", "in")
	gG.PortEdge("IG", "out", "PD", "")

	gD := app.Cluster("gD")
	gD.Vertex("PA").Vertex("PCD")
	id := gD.Interface("ID", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	id.Cluster("gD1").Vertex("PD1").Bind("in", "PD1").Bind("out", "PD1")
	id.Cluster("gD2").Vertex("PD2").Bind("in", "PD2").Bind("out", "PD2")
	id.Cluster("gD3").Vertex("PD3").Bind("in", "PD3").Bind("out", "PD3")
	iu := gD.Interface("IU", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	iu.Cluster("gU1").Vertex("PU1").Bind("in", "PU1").Bind("out", "PU1")
	iu.Cluster("gU2").Vertex("PU2").Bind("in", "PU2").Bind("out", "PU2")
	gD.PortEdge("PCD", "", "ID", "in")
	gD.PortEdge("ID", "out", "IU", "in")

	return b.MustBuild()
}

// TestFig3Flexibility reproduces the paper's worked example: with all
// clusters activatable f(G_P) = 8 (the maximum); without the game
// cluster γ_G the flexibility drops to 5.
func TestFig3Flexibility(t *testing.T) {
	g := buildFig3(t)
	if got := MaxFlexibility(g); got != 8 {
		t.Errorf("max flexibility = %v, want 8", got)
	}
	if got := Flexibility(g, Except(AllActive, "gG")); got != 5 {
		t.Errorf("flexibility without gG = %v, want 5", got)
	}
}

func TestFlexibilityPartialActivations(t *testing.T) {
	g := buildFig3(t)
	cases := []struct {
		name     string
		excluded []hgraph.ID
		want     float64
	}{
		{"all", nil, 8},
		{"no browser", []hgraph.ID{"gI"}, 7},
		{"single game class", []hgraph.ID{"gG2", "gG3"}, 6},
		{"one decryption one uncompression", []hgraph.ID{"gD2", "gD3", "gU2"}, 1 + 3 + 1},
		{"no uncompression kills TV", []hgraph.ID{"gU1", "gU2"}, 1 + 3},
		{"no game classes kills console", []hgraph.ID{"gG1", "gG2", "gG3"}, 1 + 4},
		{"root inactive", []hgraph.ID{"GP"}, 0},
		{"everything but browser", []hgraph.ID{"gG", "gD"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Flexibility(g, Except(AllActive, tc.excluded...)); got != tc.want {
				t.Errorf("flexibility = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestInterfaceAndClusterFlexibility(t *testing.T) {
	g := buildFig3(t)
	if got := InterfaceFlexibility(g.InterfaceByID("ID"), AllActive); got != 3 {
		t.Errorf("f(I_D) = %v, want 3", got)
	}
	if got := InterfaceFlexibility(g.InterfaceByID("IApp"), AllActive); got != 8 {
		t.Errorf("f(I_App) = %v, want 8", got)
	}
	if got := ClusterFlexibility(g.ClusterByID("gD"), AllActive); got != 4 {
		t.Errorf("f(γ_D) = %v, want 4 (3+2-1)", got)
	}
	if got := ClusterFlexibility(g.ClusterByID("gI"), AllActive); got != 1 {
		t.Errorf("f(γ_I) = %v, want 1", got)
	}
	if got := ClusterFlexibility(g.ClusterByID("gD"), Except(AllActive, "gD")); got != 0 {
		t.Errorf("f of deactivated cluster = %v, want 0", got)
	}
}

func TestFromSet(t *testing.T) {
	g := buildFig3(t)
	active := map[hgraph.ID]bool{"GP": true, "gI": true}
	if got := Flexibility(g, FromSet(active)); got != 1 {
		t.Errorf("FromSet flexibility = %v, want 1", got)
	}
}

func TestWeightedFlexibility(t *testing.T) {
	g := buildFig3(t)
	// All weights default to 1: identical to the unweighted metric.
	if got := WeightedFlexibility(g, AllActive); got != 8 {
		t.Errorf("weighted (all-1) = %v, want 8", got)
	}
	// Doubling the browser's weight raises the total by 1.
	g.ClusterByID("gI").Attrs = hgraph.Attrs{spec.AttrWeight: 2}
	if got := WeightedFlexibility(g, AllActive); got != 9 {
		t.Errorf("weighted (browser x2) = %v, want 9", got)
	}
	// Halving a game class weight lowers the game interface sum.
	g.ClusterByID("gG1").Attrs = hgraph.Attrs{spec.AttrWeight: 0.5}
	if got := WeightedFlexibility(g, AllActive); got != 8.5 {
		t.Errorf("weighted (game1 x0.5) = %v, want 8.5", got)
	}
}

func TestActivatableClusters(t *testing.T) {
	g := buildFig3(t)
	// Deactivating all decryption clusters makes gD unactivatable and
	// with it the uncompression clusters below it.
	act := Except(AllActive, "gD1", "gD2", "gD3")
	set := ActivatableClusters(g, act)
	for _, id := range []hgraph.ID{"gD", "gD1", "gU1", "gU2"} {
		if set[id] {
			t.Errorf("%s should not be activatable", id)
		}
	}
	for _, id := range []hgraph.ID{"GP", "gI", "gG", "gG1"} {
		if !set[id] {
			t.Errorf("%s should be activatable", id)
		}
	}
}

func TestActivatableClustersRootInactive(t *testing.T) {
	g := buildFig3(t)
	set := ActivatableClusters(g, Except(AllActive, "GP"))
	if len(set) != 0 {
		t.Errorf("inactive root should yield empty set, got %v", set)
	}
}

// Property: normalizing an activation through ActivatableClusters does
// not change the flexibility value (the guard in clusterFlex encodes
// exactly the same rule).
func TestPropNormalizationInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		g := hgraphtest.Random(seed%500, hgraphtest.Options{})
		raw := hgraphtest.RandomActivation(g, seed, 0.7)
		act := FromSet(raw)
		norm := FromSet(ActivatableClusters(g, act))
		return Flexibility(g, act) == Flexibility(g, norm)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: flexibility is monotone — activating more clusters never
// decreases flexibility.
func TestPropMonotonicity(t *testing.T) {
	prop := func(seed int64) bool {
		g := hgraphtest.Random(seed%500, hgraphtest.Options{})
		small := hgraphtest.RandomActivation(g, seed, 0.5)
		big := map[hgraph.ID]bool{}
		for k, v := range small {
			big[k] = v
		}
		// activate some extra clusters deterministically
		extra := hgraphtest.RandomActivation(g, seed+1, 0.5)
		for k, v := range extra {
			if v {
				big[k] = true
			}
		}
		return Flexibility(g, FromSet(big)) >= Flexibility(g, FromSet(small))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: maximum flexibility is bounded below by 1 for graphs whose
// every interface has clusters (always true by construction) and above
// by the number of leaf clusters (clusters without interfaces).
func TestPropMaxFlexibilityBounds(t *testing.T) {
	prop := func(seed int64) bool {
		g := hgraphtest.Random(seed%500, hgraphtest.Options{})
		f := MaxFlexibility(g)
		if f < 1 {
			return false
		}
		leafClusters := 0
		for _, c := range g.Clusters() {
			if len(c.Interfaces) == 0 {
				leafClusters++
			}
		}
		if leafClusters == 0 {
			leafClusters = 1 // root without interfaces
		}
		return f <= float64(leafClusters)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: weighted flexibility with all weights 1 equals unweighted.
func TestPropWeightedDefaultsToUnweighted(t *testing.T) {
	prop := func(seed int64) bool {
		g := hgraphtest.Random(seed%500, hgraphtest.Options{})
		act := FromSet(hgraphtest.RandomActivation(g, seed, 0.8))
		return WeightedFlexibility(g, act) == Flexibility(g, act)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFlexibilityFig3(b *testing.B) {
	g := buildFig3(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if MaxFlexibility(g) != 8 {
			b.Fatal("wrong flexibility")
		}
	}
}

func BenchmarkActivatableClusters(b *testing.B) {
	g := hgraphtest.Random(11, hgraphtest.Options{MaxDepth: 4})
	act := FromSet(hgraphtest.RandomActivation(g, 3, 0.8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ActivatableClusters(g, act)
	}
}
