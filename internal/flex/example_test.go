package flex_test

import (
	"fmt"

	"repro/internal/flex"
	"repro/internal/hgraph"
)

// The paper's Fig. 3 equation: a Set-Top box family whose application
// interface offers an Internet browser, a game console with three game
// classes, and a digital TV decoder with three decryptions and two
// uncompressions.
func Example() {
	b := hgraph.NewBuilder("settop", "GP")
	app := b.Root().Interface("IApp")
	app.Cluster("browser").Vertex("P_parse")

	game := app.Cluster("game")
	game.Vertex("P_ctrl")
	core := game.Interface("IGameCore", hgraph.Port{Name: "p"})
	core.Cluster("class1").Vertex("G1").Bind("p", "G1")
	core.Cluster("class2").Vertex("G2").Bind("p", "G2")
	core.Cluster("class3").Vertex("G3").Bind("p", "G3")

	tv := app.Cluster("tv")
	tv.Vertex("P_auth")
	dec := tv.Interface("IDecrypt", hgraph.Port{Name: "p"})
	dec.Cluster("d1").Vertex("D1").Bind("p", "D1")
	dec.Cluster("d2").Vertex("D2").Bind("p", "D2")
	dec.Cluster("d3").Vertex("D3").Bind("p", "D3")
	unc := tv.Interface("IUncompress", hgraph.Port{Name: "p"})
	unc.Cluster("u1").Vertex("U1").Bind("p", "U1")
	unc.Cluster("u2").Vertex("U2").Bind("p", "U2")

	g := b.MustBuild()
	fmt.Println("max flexibility:", flex.MaxFlexibility(g))
	fmt.Println("without game:   ", flex.Flexibility(g, flex.Except(flex.AllActive, "game")))
	// Output:
	// max flexibility: 8
	// without game:    5
}

func ExampleFlexibility() {
	b := hgraph.NewBuilder("simple", "top")
	i := b.Root().Interface("I")
	i.Cluster("a").Vertex("va")
	i.Cluster("b").Vertex("vb")
	g := b.MustBuild()

	// Both alternatives implementable: flexibility 2; only one: 1.
	fmt.Println(flex.Flexibility(g, flex.AllActive))
	fmt.Println(flex.Flexibility(g, flex.Except(flex.AllActive, "b")))
	// Output:
	// 2
	// 1
}
