package core

import (
	"reflect"
	"testing"

	"repro/internal/models"
	"repro/internal/spec"
)

// TestProducersResolution pins the dispatch rule for Options.Producers:
// auto (0) keeps the sequential explorer on the direct in-process scan
// and gives the parallel explorer min(workers, 4) shards; an explicit
// count — including 1 — always selects the sharded machinery, clamped
// to the unit count; a unitless specification never shards.
func TestProducersResolution(t *testing.T) {
	cases := []struct {
		producers, workers, n, want int
	}{
		{0, 1, 14, 0},                                     // auto + sequential: direct scan
		{0, 2, 14, 2},                                     // auto + parallel: one shard per worker...
		{0, 8, 14, 4},                                     // ...capped at autoMaxProducers
		{0, 8, 3, 3},                                      // ...and at the unit count
		{1, 1, 14, 1},                                     // explicit 1 is still the sharded machinery
		{3, 1, 14, 3},                                     // explicit count, sequential explorer
		{64, 1, 14, 14} /* clamped to n */, {2, 8, 14, 2}, // explicit wins over workers
		{0, 8, 0, 0}, {5, 1, 0, 0}, // no units: nothing to shard
	}
	for _, tc := range cases {
		got := (Options{Producers: tc.producers}).producersFor(tc.workers, tc.n)
		if got != tc.want {
			t.Errorf("producersFor(producers=%d, workers=%d, n=%d) = %d, want %d",
				tc.producers, tc.workers, tc.n, got, tc.want)
		}
	}
}

// TestProducersDifferentialGrid (acceptance): across specifications ×
// enumerators × producer counts × worker counts, sharded candidate
// production returns bit-identical fronts, cursors, termination
// reasons and Semantic() stats to the single-producer direct scan. The
// k-way merge reassembles the exact global stream (see internal/alloc),
// so everything downstream is oblivious to the shard count. CI runs
// this under -race.
//
// MaxScan is deliberately absent: it is a producer-specific effort
// budget (split across shards), so a budgeted run legitimately stops
// at different stream positions under different producer counts (the
// same caveat as the enumerator grid).
func TestProducersDifferentialGrid(t *testing.T) {
	synth := func(seed int64) *spec.Spec {
		return models.Synthetic(models.SyntheticParams{
			Seed: seed, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
			Processors: 2, ASICs: 2, Designs: 2, Buses: 3,
			TimedFraction: 0.3, AccelOnlyFraction: 0.3,
		})
	}
	specs := []struct {
		name string
		s    *spec.Spec
		opts Options
		// stopEarly marks runs that end before the scan is exhausted;
		// the parallel producer legitimately enumerates ahead of the
		// stop decision, so PossibleAllocations may overshoot there.
		stopEarly bool
	}{
		{"settop", models.SetTopBox(), Options{}, false},
		{"decoder", models.Decoder(), Options{}, false},
		{"synth3", synth(3), Options{}, false},
		{"synth7-nobound", synth(7), Options{DisableFlexBound: true}, false},
		{"settop-stopmax", models.SetTopBox(), Options{StopAtMaxFlex: true}, true},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			base := Explore(tc.s, tc.opts)
			for _, enum := range []Enumerator{EnumeratorBitset, EnumeratorSymbolic} {
				for _, p := range []int{1, 2, 4} {
					for _, w := range []int{1, 4} {
						opts := tc.opts
						opts.Enumerator = enum
						opts.Producers = p
						var r *Result
						if w == 1 {
							r = Explore(tc.s, opts)
						} else {
							r = ExploreParallel(tc.s, opts, w, 2*w)
						}
						label := string(enum)
						sameFronts(t, base, r)
						if r.Cursor != base.Cursor {
							t.Errorf("%s p=%d w=%d: cursor %d != baseline %d", label, p, w, r.Cursor, base.Cursor)
						}
						if r.Reason != base.Reason {
							t.Errorf("%s p=%d w=%d: reason %q != baseline %q", label, p, w, r.Reason, base.Reason)
						}
						if got := r.Stats.Pipeline.Producers; got != p {
							t.Errorf("%s p=%d w=%d: Pipeline.Producers = %d, want %d", label, p, w, got, p)
						}
						rs, bs := r.Stats.Semantic(), base.Stats.Semantic()
						if tc.stopEarly && w > 1 {
							if rs.PossibleAllocations < bs.PossibleAllocations {
								t.Errorf("%s p=%d w=%d: enumerated less than the sequential baseline", label, p, w)
							}
							rs.PossibleAllocations, bs.PossibleAllocations = 0, 0
						}
						if !reflect.DeepEqual(rs, bs) {
							t.Errorf("%s p=%d w=%d: semantic stats diverge:\nsharded:  %+v\nbaseline: %+v",
								label, p, w, rs, bs)
						}
					}
				}
			}
		})
	}
}

// TestCrossProducerResume: a scan interrupted under one producer count
// resumes under any other — including the direct scan and the parallel
// explorer — and converges to the uninterrupted front with identical
// semantic counters. This is what justifies excluding Producers from
// the checkpoint options digest: the cursor addresses the same
// bit-identical stream whatever the shard count.
func TestCrossProducerResume(t *testing.T) {
	s := models.SetTopBox()
	full := Explore(s, Options{})

	k := full.Stats.PossibleAllocations / 2
	part := cancelAt(s, Options{Producers: 1}, k)
	if !part.Interrupted || part.Cursor != k {
		t.Fatalf("interrupt failed: interrupted=%v cursor=%d", part.Interrupted, part.Cursor)
	}

	for _, p := range []int{0, 3} {
		opts := Options{Producers: p, Resume: &Resume{Cursor: part.Cursor, Front: part.Front, Stats: part.Stats}}
		if r := Explore(s, opts); !frontsEqual(r.Front, full.Front) {
			t.Errorf("sequential resume under producers=%d diverges from the full run", p)
		} else if !reflect.DeepEqual(r.Stats.Semantic(), full.Stats.Semantic()) {
			t.Errorf("sequential resume under producers=%d: semantic stats diverge", p)
		}
		if r := ExploreParallel(s, opts, 4, 8); !frontsEqual(r.Front, full.Front) {
			t.Errorf("parallel resume under producers=%d diverges from the full run", p)
		}
	}
}
