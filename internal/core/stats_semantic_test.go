package core

import (
	"reflect"
	"testing"
)

// fillNonZero sets every settable field of a struct value (recursing
// into nested structs) to a nonzero value, so zeroing is observable.
func fillNonZero(v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillNonZero(v.Field(i))
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(7)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(7.5)
	case reflect.Bool:
		v.SetBool(true)
	case reflect.String:
		v.SetString("x")
	case reflect.Slice:
		elem := reflect.New(v.Type().Elem()).Elem()
		fillNonZero(elem)
		v.Set(reflect.Append(reflect.MakeSlice(v.Type(), 0, 1), elem))
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		key := reflect.New(v.Type().Key()).Elem()
		val := reflect.New(v.Type().Elem()).Elem()
		fillNonZero(key)
		fillNonZero(val)
		m.SetMapIndex(key, val)
		v.Set(m)
	case reflect.Pointer:
		p := reflect.New(v.Type().Elem())
		fillNonZero(p.Elem())
		v.Set(p)
	default:
		// Chan, func, interface fields would need bespoke handling;
		// Stats has none, and a new one should be thought about.
	}
}

// TestSemanticZeroesTelemetry is the runtime twin of flexvet FX003:
// starting from a Stats with every field nonzero, Semantic() must
// zero exactly the fields absent from statsSemanticFields and
// preserve the rest bit-for-bit.
func TestSemanticZeroesTelemetry(t *testing.T) {
	var filled Stats
	fillNonZero(reflect.ValueOf(&filled).Elem())

	fv := reflect.ValueOf(filled)
	for i := 0; i < fv.NumField(); i++ {
		if fv.Field(i).IsZero() {
			t.Fatalf("fillNonZero left Stats.%s zero; extend it for this field's type %s",
				fv.Type().Field(i).Name, fv.Type().Field(i).Type)
		}
	}

	sv := reflect.ValueOf(filled.Semantic())
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Type().Field(i)
		got := sv.Field(i)
		if statsSemanticFields[f.Name] {
			if !reflect.DeepEqual(got.Interface(), fv.Field(i).Interface()) {
				t.Errorf("Semantic() changed semantic field Stats.%s: %v -> %v",
					f.Name, fv.Field(i).Interface(), got.Interface())
			}
		} else if !got.IsZero() {
			t.Errorf("Semantic() preserved telemetry field Stats.%s = %v; zero it or add it to statsSemanticFields",
				f.Name, got.Interface())
		}
	}

	st := reflect.TypeOf(Stats{})
	for name := range statsSemanticFields {
		if _, ok := st.FieldByName(name); !ok {
			t.Errorf("statsSemanticFields names %q, which is not a Stats field", name)
		}
	}
}
