package core

import (
	"reflect"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/models"
	"repro/internal/spec"
)

// cacheSpecs are the differential subjects: every spec must produce an
// identical front and identical semantic counters with the evaluation
// caches on (the default) and off (the legacy uncached path).
func cacheSpecs() map[string]*spec.Spec {
	return map[string]*spec.Spec{
		"settop":    models.SetTopBox(),
		"decoder":   models.Decoder(),
		"synthetic": models.Synthetic(models.DefaultSynthetic(7)),
	}
}

func diffCachedUncached(t *testing.T, name string, cached, uncached *Result) {
	t.Helper()
	if !frontsEqual(cached.Front, uncached.Front) {
		t.Errorf("%s: cached front differs from uncached front", name)
	}
	if !reflect.DeepEqual(cached.Stats.Semantic(), uncached.Stats.Semantic()) {
		t.Errorf("%s: semantic counters diverge:\ncached   %+v\nuncached %+v",
			name, cached.Stats, uncached.Stats)
	}
	if uncached.Stats.Cache != (CacheStats{}) {
		t.Errorf("%s: uncached run reported cache activity: %+v", name, uncached.Stats.Cache)
	}
}

func TestCacheDifferentialExplore(t *testing.T) {
	for name, s := range cacheSpecs() {
		cached := Explore(s, Options{})
		uncached := Explore(s, Options{DisableCache: true})
		diffCachedUncached(t, name, cached, uncached)
		if c := cached.Stats.Cache; c.BindHits() == 0 || c.FlattenHits == 0 {
			t.Errorf("%s: caches never engaged: %+v", name, c)
		}
		// The solver-effort reduction is the point of the cache layer:
		// every reused binding is a solver run the uncached path pays for.
		if cached.Stats.BindingRuns >= uncached.Stats.BindingRuns {
			t.Errorf("%s: cached run solved %d bindings, uncached %d — memo saved nothing",
				name, cached.Stats.BindingRuns, uncached.Stats.BindingRuns)
		}
	}
}

func TestCacheDifferentialWeighted(t *testing.T) {
	s := models.SetTopBox()
	diffCachedUncached(t, "settop/weighted",
		Explore(s, Options{Weighted: true}),
		Explore(s, Options{Weighted: true, DisableCache: true}))
}

func TestCacheDifferentialExhaustive(t *testing.T) {
	s := models.SetTopBox()
	opts := Options{DisableFlexBound: true, IncludeUselessComm: true}
	off := opts
	off.DisableCache = true
	diffCachedUncached(t, "settop/exhaustive", Explore(s, opts), Explore(s, off))
}

// TestCacheDifferentialBoundedSolver: with MaxBindNodes the solver is
// truncation-bounded and feasibility is no longer monotone, so the memo
// must fall back to exact-key hits only — and still agree with the
// uncached run bit for bit.
func TestCacheDifferentialBoundedSolver(t *testing.T) {
	s := models.SetTopBox()
	opts := Options{MaxBindNodes: 8}
	off := opts
	off.DisableCache = true
	cached, uncached := Explore(s, opts), Explore(s, off)
	diffCachedUncached(t, "settop/bounded", cached, uncached)
	if c := cached.Stats.Cache; c.BindReplayHits != 0 {
		t.Errorf("replay dominance used under a bounded solver: %+v", c)
	}
}

// TestCacheDifferentialUnderFaultInjection: an injected per-candidate
// error skips the same candidate in both runs; the fronts and diagnostics
// must continue to agree.
func TestCacheDifferentialUnderFaultInjection(t *testing.T) {
	s := models.SetTopBox()
	mk := func(disable bool) *Result {
		return Explore(s, Options{
			DisableCache: disable,
			Fault:        faultinject.New().ErrorAt(SiteEstimate, 40, nil),
		})
	}
	cached, uncached := mk(false), mk(true)
	diffCachedUncached(t, "settop/fault", cached, uncached)
	if len(cached.Stats.Diags) != 1 || len(uncached.Stats.Diags) != 1 {
		t.Fatalf("want one injected diag in each run, got %d cached / %d uncached",
			len(cached.Stats.Diags), len(uncached.Stats.Diags))
	}
	if !reflect.DeepEqual(cached.Stats.Diags, uncached.Stats.Diags) {
		t.Errorf("diags diverge: %+v vs %+v", cached.Stats.Diags, uncached.Stats.Diags)
	}
}

// TestCacheSharedAcrossWorkers: many workers hammer one shared evaluator
// (run under -race to check the striped maps and single-flight interning)
// and the front must still match the uncached sequential reference.
func TestCacheSharedAcrossWorkers(t *testing.T) {
	for name, s := range cacheSpecs() {
		par := ExploreParallel(s, Options{}, 8, 16)
		ref := Explore(s, Options{DisableCache: true})
		if !frontsEqual(par.Front, ref.Front) {
			t.Errorf("%s: parallel cached front differs from sequential uncached front", name)
		}
	}
}

// TestCacheCountersAccounting: the counters surfaced in Stats must add
// up — every binding decision is either a hit or a miss, and the
// Estimate→Implement handoff reuses one supportable set per attempt.
func TestCacheCountersAccounting(t *testing.T) {
	s := models.SetTopBox()
	r := Explore(s, Options{})
	c := r.Stats.Cache
	// Every behaviour test makes at least one binding decision (an ECS may
	// try several arch views), and each decision is either a hit or a miss.
	if got := c.BindHits() + c.BindMisses; got < r.Stats.ECSTested {
		t.Errorf("binding decisions %d (hits %d + misses %d) < behaviours tested %d",
			got, c.BindHits(), c.BindMisses, r.Stats.ECSTested)
	}
	if c.BindMisses != r.Stats.BindingRuns {
		t.Errorf("misses %d != solver runs %d: a miss is exactly one solve", c.BindMisses, r.Stats.BindingRuns)
	}
	if c.SupportableReused != r.Stats.Attempted {
		t.Errorf("supportable sets reused %d != attempted implementations %d",
			c.SupportableReused, r.Stats.Attempted)
	}
	if c.FlattenMisses <= 0 || c.ArchFlattenMisses <= 0 {
		t.Errorf("interners report no construction at all: %+v", c)
	}
}
