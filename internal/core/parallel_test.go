package core

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/models"
	"repro/internal/spec"
)

func sameFronts(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Front) != len(b.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(a.Front), len(b.Front))
	}
	for i := range a.Front {
		if a.Front[i].Cost != b.Front[i].Cost ||
			a.Front[i].Flexibility != b.Front[i].Flexibility ||
			!a.Front[i].Allocation.Equal(b.Front[i].Allocation) {
			t.Errorf("row %d differs: %v vs %v", i, a.Front[i], b.Front[i])
		}
	}
}

// TestExploreParallelMatchesSequential: identical fronts (including the
// representatives at equal-cost ties) for several worker/batch shapes.
func TestExploreParallelMatchesSequential(t *testing.T) {
	s := models.SetTopBox()
	seq := Explore(s, Options{})
	for _, cfg := range []struct{ workers, queue, batch int }{
		{2, 1, 1}, {2, 8, 0}, {4, 16, 7}, {8, 64, 64}, {0, 0, 0},
	} {
		par := ExploreParallel(s, Options{Batch: cfg.batch}, cfg.workers, cfg.queue)
		sameFronts(t, seq, par)
		if par.Stats.PossibleAllocations != seq.Stats.PossibleAllocations {
			t.Errorf("possible allocations differ: %d vs %d",
				par.Stats.PossibleAllocations, seq.Stats.PossibleAllocations)
		}
		// The batch lag may only increase attempts.
		if par.Stats.Attempted < seq.Stats.Attempted {
			t.Errorf("parallel attempted %d < sequential %d",
				par.Stats.Attempted, seq.Stats.Attempted)
		}
	}
}

func TestExploreParallelSDR(t *testing.T) {
	s := models.SDR()
	sameFronts(t, Explore(s, Options{}), ExploreParallel(s, Options{}, 4, 8))
}

func TestExploreParallelSingleWorker(t *testing.T) {
	s := models.Decoder()
	sameFronts(t, Explore(s, Options{}), ExploreParallel(s, Options{}, 1, 0))
}

// Property: parallel and sequential exploration agree on synthetic
// models across worker counts.
func TestPropParallelAgrees(t *testing.T) {
	prop := func(seed int64) bool {
		p := models.SyntheticParams{
			Seed: seed % 30, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
			Processors: 2, ASICs: 1, Designs: 1, Buses: 3,
			TimedFraction: 0.3, AccelOnlyFraction: 0.3,
		}
		s := models.Synthetic(p)
		seq := Explore(s, Options{})
		par := ExploreParallel(s, Options{}, 3, 5)
		if len(seq.Front) != len(par.Front) {
			return false
		}
		for i := range seq.Front {
			if seq.Front[i].Cost != par.Front[i].Cost ||
				seq.Front[i].Flexibility != par.Front[i].Flexibility ||
				!seq.Front[i].Allocation.Equal(par.Front[i].Allocation) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPipelineDifferentialGrid: across a grid of specs × worker counts
// × batch sizes (fixed 1/4/64 and adaptive, with queue depths cycled
// through the grid), the pipelined explorer produces bit-identical
// fronts, cursors, termination reasons and Semantic() stats to the
// sequential explorer. The strict ordered commit plus the second-chance
// bound check make even Estimated/Attempted/ECSTested/Feasible exactly
// equal (the stale bound a worker caches per batch is never above the
// commit-time bound, so the commit replay removes precisely the extra
// attempts), and the wholesale per-batch archive merge is exact for the
// same reason. CI runs this under -race.
func TestPipelineDifferentialGrid(t *testing.T) {
	synth := func(seed int64) *spec.Spec {
		return models.Synthetic(models.SyntheticParams{
			Seed: seed, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
			Processors: 2, ASICs: 2, Designs: 2, Buses: 3,
			TimedFraction: 0.3, AccelOnlyFraction: 0.3,
		})
	}
	specs := []struct {
		name string
		s    *spec.Spec
		opts Options
		// stopEarly marks runs that end before the scan is exhausted.
		// There the producer legitimately enumerates ahead of the stop
		// decision still in flight (bounded by the pipeline capacity),
		// so the scan-effort counters Scanned/PossibleAllocations may
		// overshoot the sequential run's; everything the commit stage
		// folded — fronts, cursor, reason, evaluation counters — must
		// still be identical.
		stopEarly bool
	}{
		{"settop", models.SetTopBox(), Options{}, false},
		{"decoder", models.Decoder(), Options{}, false},
		{"synth3", synth(3), Options{}, false},
		{"synth7-nobound", synth(7), Options{DisableFlexBound: true}, false},
		{"settop-stopmax", models.SetTopBox(), Options{StopAtMaxFlex: true}, true},
	}
	queues := []int{1, 4, 32}
	for _, tc := range specs {
		seq := Explore(tc.s, tc.opts)
		run := 0
		for _, w := range []int{2, 4, 8} {
			for _, b := range []int{1, 4, 64, 0} { // 0 = adaptive ramp
				q := queues[run%len(queues)]
				run++
				opts := tc.opts
				opts.Batch = b
				par := ExploreParallel(tc.s, opts, w, q)
				sameFronts(t, seq, par)
				if par.Cursor != seq.Cursor {
					t.Errorf("%s w=%d b=%d q=%d: cursor %d != sequential %d",
						tc.name, w, b, q, par.Cursor, seq.Cursor)
				}
				if par.Reason != seq.Reason {
					t.Errorf("%s w=%d b=%d q=%d: reason %q != sequential %q",
						tc.name, w, b, q, par.Reason, seq.Reason)
				}
				ps, ss := par.Stats.Semantic(), seq.Stats.Semantic()
				if tc.stopEarly {
					// Scanned is telemetry (zeroed by Semantic), so the
					// overshoot bound is checked on the raw counters.
					if par.Stats.Scanned < seq.Stats.Scanned || ps.PossibleAllocations < ss.PossibleAllocations {
						t.Errorf("%s w=%d b=%d q=%d: pipeline scanned less than sequential", tc.name, w, b, q)
					}
					ps.PossibleAllocations, ss.PossibleAllocations = 0, 0
				}
				if !reflect.DeepEqual(ps, ss) {
					t.Errorf("%s w=%d b=%d q=%d: semantic stats diverge:\npar: %+v\nseq: %+v",
						tc.name, w, b, q, ps, ss)
				}
			}
		}
	}
}

// TestPipelineCounters: the new pipeline gauges are populated for
// parallel runs, absent from sequential ones, and excluded from the
// semantic view. Workers records the pool size — the total goroutine
// spawn count — independent of how many candidates flow through, which
// is the "no per-candidate goroutine" invariant in observable form.
func TestPipelineCounters(t *testing.T) {
	s := models.SetTopBox()
	r := ExploreParallel(s, Options{DisableFlexBound: true}, 3, 5)
	p := r.Stats.Pipeline
	if p.Workers != 3 || p.QueueDepth != 5 {
		t.Fatalf("pipeline shape not recorded: %+v", p)
	}
	if r.Stats.PossibleAllocations <= p.Workers {
		t.Fatalf("model too small to distinguish pool from per-candidate spawning")
	}
	if p.QueueHighWater < 1 || p.QueueHighWater > p.QueueDepth {
		t.Errorf("queue high water %d outside [1, %d]", p.QueueHighWater, p.QueueDepth)
	}
	if p.BusyNanos <= 0 {
		t.Errorf("no worker busy time recorded")
	}
	if r.Stats.Semantic().Pipeline != (PipelineStats{}) {
		t.Errorf("pipeline gauges leak into the semantic view")
	}
	if seq := Explore(s, Options{}); seq.Stats.Pipeline != (PipelineStats{}) {
		t.Errorf("sequential run reports pipeline stats: %+v", seq.Stats.Pipeline)
	}
}

// TestImplementConcurrentAfterWarmup: the parallel explorer relies on a
// single warm-up Estimate building every lazy index of the shared
// specification before workers hit it concurrently. Exercise exactly
// that pattern under the race detector: warm up once, then hammer
// Implement from many goroutines and check the results against a
// sequential run on a pristine spec instance.
func TestImplementConcurrentAfterWarmup(t *testing.T) {
	s := models.SetTopBox()
	_ = Estimate(s, spec.Allocation{}, Options{})

	var cands []spec.Allocation
	alloc.Enumerate(s, alloc.Options{}, func(c alloc.Candidate) bool {
		cands = append(cands, c.Allocation.Clone())
		return len(cands) < 40
	})

	want := make([][2]float64, len(cands))
	fresh := models.SetTopBox()
	for i, a := range cands {
		want[i] = [2]float64{-1, -1}
		if im := Implement(fresh, a, Options{}, nil); im != nil {
			want[i] = [2]float64{im.Cost, im.Flexibility}
		}
	}

	const workers = 8
	got := make([][2]float64, len(cands))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(cands); i += workers {
				got[i] = [2]float64{-1, -1}
				if im := Implement(s, cands[i], Options{}, nil); im != nil {
					got[i] = [2]float64{im.Cost, im.Flexibility}
				}
			}
		}(w)
	}
	wg.Wait()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("concurrent Implement results diverge from sequential run")
	}
}

func BenchmarkExploreParallel(b *testing.B) {
	s := models.SetTopBox()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(Explore(s, Options{DisableFlexBound: true}).Front) != 6 {
				b.Fatal("front")
			}
		}
	})
	b.Run("parallel-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(ExploreParallel(s, Options{DisableFlexBound: true}, 4, 32).Front) != 6 {
				b.Fatal("front")
			}
		}
	})
}
