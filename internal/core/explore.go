package core

import (
	"repro/internal/alloc"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// Explore runs the paper's EXPLORE algorithm: possible resource
// allocations are inspected in order of increasing allocation cost;
// for each candidate the maximum implementable flexibility is estimated
// by a single reduction of the specification, and only candidates whose
// estimate exceeds the best implemented flexibility go to the expensive
// implementation construction (elementary cluster activations, binding,
// timing validation). Because candidates arrive in nondecreasing cost,
// a newly constructed implementation is Pareto-optimal iff its
// flexibility exceeds every flexibility implemented so far, so the
// returned front is exactly the Pareto-optimal set over the explored
// space.
func Explore(s *spec.Spec, opts Options) *Result {
	res := &Result{MaxFlexibility: MaxFlexibility(s, opts)}
	front := &pareto.Front{}
	fcur := 0.0

	_, _, pc, _ := s.Problem.ElementCount()
	aStats := alloc.Enumerate(s, alloc.Options{
		IncludeUselessComm: opts.IncludeUselessComm,
		MaxScan:            opts.MaxScan,
	}, func(c alloc.Candidate) bool {
		res.Stats.PossibleAllocations++
		res.Stats.Estimated++
		est := Estimate(s, c.Allocation, opts)
		if !opts.DisableFlexBound && est <= fcur {
			return true
		}
		res.Stats.Attempted++
		im := Implement(s, c.Allocation, opts, &res.Stats)
		if im == nil {
			return true
		}
		res.Stats.Feasible++
		if front.Add(&pareto.Entry{
			Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility),
			Value:      im,
		}) {
			if im.Flexibility > fcur {
				fcur = im.Flexibility
			}
		}
		if opts.StopAtMaxFlex && fcur >= res.MaxFlexibility {
			return false
		}
		return true
	})
	res.Stats.Scanned = aStats.Scanned
	res.Stats.AllocSpace = aStats.SearchSpace
	res.Stats.DesignSpace = aStats.SearchSpace * pow2(pc)
	res.Front = frontToImplementations(front)
	return res
}

func pow2(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out
}

func frontToImplementations(front *pareto.Front) []*Implementation {
	var out []*Implementation
	for _, e := range front.Entries() {
		out = append(out, e.Value.(*Implementation))
	}
	return out
}
