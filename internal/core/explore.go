package core

import (
	"context"

	"repro/internal/alloc"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// Explore runs the paper's EXPLORE algorithm: possible resource
// allocations are inspected in order of increasing allocation cost;
// for each candidate the maximum implementable flexibility is estimated
// by a single reduction of the specification, and only candidates whose
// estimate exceeds the best implemented flexibility go to the expensive
// implementation construction (elementary cluster activations, binding,
// timing validation). Because candidates arrive in nondecreasing cost,
// a newly constructed implementation is Pareto-optimal iff its
// flexibility exceeds every flexibility implemented so far, so the
// returned front is exactly the Pareto-optimal set over the explored
// space.
func Explore(s *spec.Spec, opts Options) *Result {
	return ExploreContext(context.Background(), s, opts)
}

// ExploreContext is Explore under a context: when ctx is cancelled or
// its deadline expires, the cost-ordered scan stops cleanly and the
// best-so-far front is returned with Interrupted set and Cursor at the
// first unevaluated candidate. The cost ordering makes every partial
// front exactly the Pareto set of the explored prefix, so an
// interrupted result is a valid anytime answer; continue it with
// Options.Resume.
func ExploreContext(ctx context.Context, s *spec.Spec, opts Options) *Result {
	res := &Result{MaxFlexibility: MaxFlexibility(s, opts), Reason: ReasonCompleted}
	front := &pareto.Front{}
	fcur, startCursor := seedResume(res, front, opts.Resume)
	idx := startCursor
	lastEmit := startCursor
	res.Cursor = startCursor
	// The enumeration replays the resumed prefix internally (no
	// allocation maps materialized); the prefix candidates are
	// accounted here so the running count matches a from-scratch scan.
	res.Stats.PossibleAllocations = startCursor

	ev := newEvaluator(s, opts)
	_, _, pc, _ := s.Problem.ElementCount()
	producers := opts.producersFor(1, len(alloc.Units(s)))
	aStats := enumerateRange(s, opts, producers, startCursor, func(c alloc.Candidate) bool {
		res.Stats.PossibleAllocations++
		if ctx.Err() != nil {
			res.Interrupted, res.Reason = true, reasonFor(ctx)
			return false
		}
		if opts.Progress != nil && idx-lastEmit >= opts.progressEvery() {
			ev.fold(&res.Stats)
			opts.Progress(Progress{
				Cursor:         idx,
				BestFlex:       fcur,
				MaxFlexibility: res.MaxFlexibility,
				Front:          frontToImplementations(front),
				Stats:          res.Stats,
			})
			lastEmit = idx
		}
		if err := opts.Fault.Fire(SiteEstimate, idx); err != nil {
			res.Stats.Diags = append(res.Stats.Diags, Diag{
				Kind: DiagError, Site: SiteEstimate, Cursor: idx,
				Allocation: c.Allocation.String(), Message: err.Error(),
			})
			idx++
			res.Cursor = idx
			return true
		}
		if ctx.Err() != nil {
			// A Cancel failpoint fired between the two checks.
			res.Interrupted, res.Reason = true, reasonFor(ctx)
			return false
		}
		res.Stats.Estimated++
		est, sup, haveSup := ev.estimate(c.Allocation)
		if !opts.DisableFlexBound && est <= fcur {
			idx++
			res.Cursor = idx
			return true
		}
		if err := opts.Fault.Fire(SiteImplement, idx); err != nil {
			res.Stats.Diags = append(res.Stats.Diags, Diag{
				Kind: DiagError, Site: SiteImplement, Cursor: idx,
				Allocation: c.Allocation.String(), Message: err.Error(),
			})
			idx++
			res.Cursor = idx
			return true
		}
		res.Stats.Attempted++
		im := ev.implement(c.Allocation, sup, haveSup, &res.Stats)
		if im != nil {
			res.Stats.Feasible++
			if front.Add(&pareto.Entry{
				Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility),
				Value:      im,
			}) && im.Flexibility > fcur {
				fcur = im.Flexibility
			}
		}
		idx++
		res.Cursor = idx
		if opts.StopAtMaxFlex && fcur >= res.MaxFlexibility {
			res.Reason = ReasonMaxFlex
			return false
		}
		return true
	})
	ev.fold(&res.Stats)
	finishResult(res, aStats, pc, opts)
	res.Front = frontToImplementations(front)
	return res
}

// seedResume folds a Resume snapshot into a fresh run: front entries,
// the flexibility bound, and the effort counters. Scanned and
// PossibleAllocations restart at zero because the resumed enumeration
// replays the whole prefix, so counting every candidate again yields
// the uninterrupted run's totals.
func seedResume(res *Result, front *pareto.Front, r *Resume) (fcur float64, startCursor int) {
	if r == nil {
		return 0, 0
	}
	res.Stats = r.Stats
	res.Stats.Scanned = 0
	res.Stats.PossibleAllocations = 0
	// Pipeline gauges describe a single run, not the cumulative scan; a
	// resumed run (sequential or parallel) starts them afresh.
	res.Stats.Pipeline = PipelineStats{}
	for _, im := range r.Front {
		if front.Add(&pareto.Entry{
			Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility),
			Value:      im,
		}) && im.Flexibility > fcur {
			fcur = im.Flexibility
		}
	}
	return fcur, r.Cursor
}

// enumerateRange drives the cost-ordered candidate stream through the
// producer Options.Enumerator selects, sharded across producers
// walker goroutines when producers >= 1 (as resolved by producersFor;
// 0 selects the direct in-process scan). Every producer choice and
// count emits the bit-identical stream with the same range addressing,
// so everything downstream — fronts, cursors, resume, checkpoints —
// is oblivious to the configuration; only the Scanned effort counter
// (and what MaxScan bounds) is producer-specific.
func enumerateRange(s *spec.Spec, opts Options, producers, start int, fn func(alloc.Candidate) bool) alloc.Stats {
	ao := alloc.Options{
		IncludeUselessComm: opts.IncludeUselessComm,
		MaxScan:            opts.MaxScan,
	}
	symbolic := opts.enumeratorFor(len(alloc.Units(s))) == EnumeratorSymbolic
	switch {
	case producers >= 1 && symbolic:
		return alloc.EnumerateSymbolicShardedRange(s, ao, producers, start, fn)
	case producers >= 1:
		return alloc.EnumerateShardedRange(s, ao, producers, start, fn)
	case symbolic:
		return alloc.EnumerateSymbolicRange(s, ao, start, fn)
	default:
		return alloc.EnumerateRange(s, ao, start, fn)
	}
}

// finishResult folds the enumeration statistics into the result and
// classifies a MaxScan-bounded termination.
func finishResult(res *Result, aStats alloc.Stats, pc int, opts Options) {
	res.Stats.Scanned = aStats.Scanned
	res.Stats.AllocSpace = aStats.SearchSpace
	res.Stats.DesignSpace = aStats.SearchSpace * alloc.SearchSpace(pc)
	res.Stats.Pipeline.Producers = aStats.Producers
	res.Stats.Pipeline.ProducerBusyNanos = aStats.ProducerBusyNanos
	res.Stats.Pipeline.MergeStalls = aStats.MergeStalls
	if res.Reason == ReasonCompleted && opts.MaxScan > 0 && aStats.Scanned >= opts.MaxScan {
		res.Reason = ReasonScanBound
	}
}

func frontToImplementations(front *pareto.Front) []*Implementation {
	var out []*Implementation
	for _, e := range front.Entries() {
		out = append(out, e.Value.(*Implementation))
	}
	return out
}
