package core

import (
	"context"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/bitset"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// Exhaustive explores every possible resource allocation (no
// flexibility bound, no useless-bus pruning) and implements each one.
// It is the reference the paper's pruning claims are measured against:
// EXPLORE must return the same front with far fewer solver invocations.
func Exhaustive(s *spec.Spec, opts Options) *Result {
	return ExhaustiveContext(context.Background(), s, opts)
}

// ExhaustiveContext is Exhaustive under a context; the anytime
// semantics (clean interruption, prefix-exact partial front, resume)
// are inherited from ExploreContext.
func ExhaustiveContext(ctx context.Context, s *spec.Spec, opts Options) *Result {
	opts.DisableFlexBound = true
	opts.IncludeUselessComm = true
	opts.StopAtMaxFlex = false
	return ExploreContext(ctx, s, opts)
}

// RandomSearch samples iters random allocations (uniform over unit
// subsets) and implements each, keeping the Pareto archive. It is the
// naive baseline for explorer comparisons.
func RandomSearch(s *spec.Spec, opts Options, iters int, seed int64) *Result {
	return RandomSearchContext(context.Background(), s, opts, iters, seed)
}

// RandomSearchContext is RandomSearch under a context: cancellation or
// deadline expiry stops the sampling loop cleanly and returns the
// best-so-far archive with Interrupted set; Cursor counts the
// iterations performed.
func RandomSearchContext(ctx context.Context, s *spec.Spec, opts Options, iters int, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	units := alloc.Units(s)
	ev := newEvaluator(s, opts)
	res := &Result{MaxFlexibility: MaxFlexibility(s, opts), Reason: ReasonCompleted}
	res.Stats.AllocSpace = alloc.SearchSpace(len(units))
	_, _, pc, _ := s.Problem.ElementCount()
	res.Stats.DesignSpace = res.Stats.AllocSpace * alloc.SearchSpace(pc)
	front := &pareto.Front{}
	seen := map[string]bool{}
	for i := 0; i < iters; i++ {
		if ctx.Err() != nil {
			res.Interrupted, res.Reason = true, reasonFor(ctx)
			break
		}
		res.Cursor = i + 1
		a := spec.Allocation{}
		for _, u := range units {
			if rng.Intn(2) == 0 {
				a[u.ID] = true
			}
		}
		res.Stats.Scanned++
		key := a.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		if !alloc.Possible(s, a) {
			continue
		}
		res.Stats.PossibleAllocations++
		res.Stats.Attempted++
		if im := ev.implement(a, bitset.Set{}, false, &res.Stats); im != nil {
			res.Stats.Feasible++
			front.Add(&pareto.Entry{
				Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility),
				Value:      im,
			})
		}
	}
	ev.fold(&res.Stats)
	res.Front = frontToImplementations(front)
	return res
}

// EAConfig parameterizes the evolutionary baseline.
type EAConfig struct {
	Seed        int64
	Population  int     // default 24
	Generations int     // default 40
	CrossoverP  float64 // default 0.9
	MutationP   float64 // per-bit; default 1/#units
}

func (c EAConfig) withDefaults(nUnits int) EAConfig {
	if c.Population <= 0 {
		c.Population = 24
	}
	if c.Generations <= 0 {
		c.Generations = 40
	}
	if c.CrossoverP <= 0 {
		c.CrossoverP = 0.9
	}
	if c.MutationP <= 0 && nUnits > 0 {
		c.MutationP = 1.0 / float64(nUnits)
	}
	return c
}

// Evolutionary runs a multi-objective evolutionary exploration in the
// spirit of the paper's reference [2] (Blickle, Teich, Thiele:
// system-level synthesis using evolutionary algorithms): individuals
// are allocation bit-vectors, fitness is the (cost, 1/flexibility)
// pair, selection is binary tournament on Pareto dominance with the
// archive kept externally. It trades the exactness of EXPLORE for
// metaheuristic scalability; the comparison benchmark (experiment E11)
// measures what that trade costs on the case study.
func Evolutionary(s *spec.Spec, opts Options, cfg EAConfig) *Result {
	return EvolutionaryContext(context.Background(), s, opts, cfg)
}

// EvolutionaryContext is Evolutionary under a context: cancellation or
// deadline expiry stops the evolution at a generation boundary and
// returns the archive accumulated so far with Interrupted set; Cursor
// counts the generations completed.
func EvolutionaryContext(ctx context.Context, s *spec.Spec, opts Options, cfg EAConfig) *Result {
	units := alloc.Units(s)
	cfg = cfg.withDefaults(len(units))
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The EA revisits allocations across generations (beyond what its
	// own genome cache dedups), so the evaluation caches pay off even in
	// a sampling explorer.
	ev := newEvaluator(s, opts)

	res := &Result{MaxFlexibility: MaxFlexibility(s, opts), Reason: ReasonCompleted}
	res.Stats.AllocSpace = alloc.SearchSpace(len(units))
	_, _, pc, _ := s.Problem.ElementCount()
	res.Stats.DesignSpace = res.Stats.AllocSpace * alloc.SearchSpace(pc)
	front := &pareto.Front{}

	type genome []bool
	cache := map[string][2]float64{} // allocation -> (cost, flex); flex<0 = infeasible

	toAlloc := func(g genome) spec.Allocation {
		a := spec.Allocation{}
		for i, on := range g {
			if on {
				a[units[i].ID] = true
			}
		}
		return a
	}
	evaluate := func(g genome) (cost, f float64) {
		a := toAlloc(g)
		key := a.String()
		if v, ok := cache[key]; ok {
			return v[0], v[1]
		}
		res.Stats.Scanned++
		cost = a.Cost(s)
		f = -1
		if alloc.Possible(s, a) {
			res.Stats.PossibleAllocations++
			res.Stats.Attempted++
			if im := ev.implement(a, bitset.Set{}, false, &res.Stats); im != nil {
				res.Stats.Feasible++
				f = im.Flexibility
				front.Add(&pareto.Entry{
					Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility),
					Value:      im,
				})
			}
		}
		cache[key] = [2]float64{cost, f}
		return cost, f
	}
	objectives := func(g genome) []float64 {
		cost, f := evaluate(g)
		if f < 0 {
			// Infeasible: strictly dominated by everything feasible.
			return []float64{cost + 1e9, 1e9}
		}
		return pareto.CostFlexObjectives(cost, f)
	}

	pop := make([]genome, cfg.Population)
	for i := range pop {
		g := make(genome, len(units))
		for j := range g {
			g[j] = rng.Intn(2) == 0
		}
		pop[i] = g
	}
	tournament := func() genome {
		a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
		oa, ob := objectives(a), objectives(b)
		switch {
		case pareto.Dominates(oa, ob):
			return a
		case pareto.Dominates(ob, oa):
			return b
		case rng.Intn(2) == 0:
			return a
		default:
			return b
		}
	}
	for gen := 0; gen < cfg.Generations; gen++ {
		if ctx.Err() != nil {
			res.Interrupted, res.Reason = true, reasonFor(ctx)
			ev.fold(&res.Stats)
			res.Front = frontToImplementations(front)
			return res
		}
		res.Cursor = gen + 1
		next := make([]genome, 0, cfg.Population)
		for len(next) < cfg.Population {
			p1, p2 := tournament(), tournament()
			child := make(genome, len(units))
			if rng.Float64() < cfg.CrossoverP {
				for j := range child {
					if rng.Intn(2) == 0 {
						child[j] = p1[j]
					} else {
						child[j] = p2[j]
					}
				}
			} else {
				copy(child, p1)
			}
			for j := range child {
				if rng.Float64() < cfg.MutationP {
					child[j] = !child[j]
				}
			}
			next = append(next, child)
		}
		pop = next
	}
	// Final evaluation of the last generation.
	for _, g := range pop {
		if ctx.Err() != nil {
			res.Interrupted, res.Reason = true, reasonFor(ctx)
			break
		}
		evaluate(g)
	}
	ev.fold(&res.Stats)
	res.Front = frontToImplementations(front)
	return res
}
