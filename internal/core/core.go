// Package core implements the paper's primary contribution: the
// flexibility/cost design-space exploration of hierarchical
// specification graphs (EXPLORE, Section 4), together with the
// implementation model it produces and baseline explorers (exhaustive
// search, random search and an evolutionary algorithm in the spirit of
// the paper's reference [2]) used to validate the front and to measure
// the pruning the paper reports.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/bind"
	"repro/internal/cover"
	"repro/internal/faultinject"
	"repro/internal/flex"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// Behaviour is one feasibly implemented elementary cluster activation:
// the behaviour's cluster selection, the architecture configuration
// chosen for it, and the binding of its processes.
type Behaviour struct {
	ECS           cover.ECS
	ArchSelection hgraph.Selection
	Binding       bind.Binding
}

// Implementation is a feasible design point: a resource allocation with
// its cost, the set of problem-graph clusters it implements (a⁺ = 1),
// the resulting flexibility, and one feasible behaviour per implemented
// elementary cluster activation.
type Implementation struct {
	Allocation  spec.Allocation
	Cost        float64
	Flexibility float64
	Clusters    []hgraph.ID
	Behaviours  []Behaviour
}

// ClusterString renders the implemented clusters (root omitted), e.g.
// "gD1 gI gU1".
func (im *Implementation) ClusterString(root hgraph.ID) string {
	var parts []string
	for _, c := range im.Clusters {
		if c != root {
			parts = append(parts, string(c))
		}
	}
	return strings.Join(parts, " ")
}

// String implements fmt.Stringer.
func (im *Implementation) String() string {
	return fmt.Sprintf("%s c=%g f=%g", im.Allocation, im.Cost, im.Flexibility)
}

// Options configures exploration.
type Options struct {
	// Timing is the performance test applied during binding (the paper
	// uses the 69 % utilization estimate).
	Timing bind.TimingPolicy
	// Weighted switches the flexibility metric to the footnote-2
	// weighted variant.
	Weighted bool
	// IncludeUselessComm disables the useless-bus pruning of the
	// allocation enumeration.
	IncludeUselessComm bool
	// DisableFlexBound disables the paper's flexibility-estimation
	// bound (every possible allocation is then implemented) — ablation.
	DisableFlexBound bool
	// StopAtMaxFlex terminates the exploration as soon as the maximum
	// flexibility of the specification has been implemented. The full
	// cost-ordered scan (paper behaviour) is the default.
	StopAtMaxFlex bool
	// AllBehaviours records every feasible elementary cluster
	// activation in the implementation instead of only those that
	// extend the implemented cluster set. Needed when the behaviours
	// drive a runtime simulation (package sim); irrelevant for the
	// flexibility value.
	AllBehaviours bool
	// MaxECS bounds the number of elementary cluster activations tested
	// per candidate (0 = 10000).
	MaxECS int
	// MaxScan bounds the allocation subsets scanned (0 = unbounded).
	MaxScan int
	// MaxBindNodes bounds each binding search (0 = unbounded).
	MaxBindNodes int
	// DisableCache turns off the cross-candidate evaluation caches
	// (interned flattenings, binding memoization, bitset sets): every
	// candidate is then evaluated by the uncached Implement/Estimate
	// functions. The front and the semantic counters (Stats.Semantic)
	// are identical either way — caching only removes redundant solver
	// work — so this is an ablation/verification switch, excluded from
	// checkpoint option digests like the other runtime fields.
	DisableCache bool
	// Batch sets the candidate-range size of the parallel explorer's
	// jobs (0 = adaptive: small first batches for low commit latency,
	// ramping up to amortize channel and commit overhead, capped at
	// the progress interval so batching never coarsens the
	// checkpoint cadence). Like DisableCache it never changes what a
	// run returns — the differential grid test proves fronts, cursors
	// and semantic counters are bit-identical across batch sizes — so
	// it is excluded from checkpoint option digests and a snapshot
	// taken under one batch size resumes under any other. Sequential
	// exploration ignores it.
	Batch int
	// Enumerator selects the possible-allocation producer: the
	// exhaustive cost-ordered subset scan (EnumeratorBitset), the
	// symbolic BDD-pruned search (EnumeratorSymbolic), or automatic
	// selection (EnumeratorAuto, the zero value), which switches to
	// symbolic above autoSymbolicUnits allocatable units. Both
	// producers emit the bit-identical candidate stream — order, costs,
	// allocations, range addressing — so the choice never changes
	// fronts, cursors or semantic counters; only the Scanned effort
	// counter is producer-specific. Like Batch it is excluded from
	// checkpoint option digests: a snapshot taken under one enumerator
	// resumes under any other.
	Enumerator Enumerator
	// Producers sets the candidate-producer goroutine count: the
	// enumeration is sharded across that many walkers and re-serialized
	// by a deterministic k-way merge into the bit-identical
	// single-producer stream (see internal/alloc's sharded enumerators).
	// 0 = auto: the direct in-process scan for sequential exploration,
	// min(workers, 4) sharded producers for parallel exploration (the
	// producer side rarely profits beyond that, and never beyond the
	// unit count, to which the value is clamped). An explicit 1 runs
	// the full shard/merge machinery with one walker — the merged
	// stream is the same, and keeping that path's overhead within noise
	// of the direct scan is benchmarked and gated. Because the stream
	// is bit-identical for every value, Producers is runtime
	// configuration like Batch and Enumerator: excluded from checkpoint
	// option digests, so a snapshot taken under one producer count
	// resumes under any other.
	Producers int

	// The fields below configure the anytime runtime, not the
	// exploration semantics: they never change which front a completed
	// run returns, and they are excluded from checkpoint option
	// digests.

	// Fault injects deterministic failures at the engine's failpoints
	// (SiteEstimate, SiteImplement); see internal/faultinject. A nil
	// plan is inert. Test harness only.
	Fault *faultinject.Plan
	// Progress, if non-nil, is called from the scan goroutine every
	// ProgressEvery processed candidates with a consistent snapshot of
	// the run, suitable for checkpointing. The snapshot's front shares
	// the run's implementations; treat them as read-only.
	Progress func(Progress)
	// ProgressEvery is the candidate interval between Progress calls
	// (0 = 64).
	ProgressEvery int
	// Resume seeds the run with the state of an earlier interrupted
	// run: candidates before Resume.Cursor are skipped (the
	// cost-ordered enumeration is deterministic, so the skip replays
	// the identical prefix) and the front, best flexibility, and effort
	// counters continue from the snapshot.
	Resume *Resume
}

func (o Options) maxECS() int {
	if o.MaxECS <= 0 {
		return 10000
	}
	return o.MaxECS
}

func (o Options) progressEvery() int {
	if o.ProgressEvery <= 0 {
		return 64
	}
	return o.ProgressEvery
}

// Enumerator names a possible-allocation producer (Options.Enumerator).
type Enumerator string

const (
	// EnumeratorAuto — the zero value; the spelling "auto" is also
	// accepted — picks the bitset scan up to autoSymbolicUnits
	// allocatable units and the symbolic enumeration above.
	EnumeratorAuto Enumerator = ""
	// EnumeratorBitset forces the exhaustive cost-ordered subset scan
	// (alloc.EnumerateRange): every one of the 2^n subsets is generated
	// and tested.
	EnumeratorBitset Enumerator = "bitset"
	// EnumeratorSymbolic forces the BDD-pruned cost-ordered search
	// (alloc.EnumerateSymbolicRange): only subset-tree nodes whose
	// subtree still contains a possible allocation are visited.
	EnumeratorSymbolic Enumerator = "symbolic"
)

// autoSymbolicUnits is EnumeratorAuto's switchover point. Above 20
// allocatable units the bitset scan's 2^n subsets pass a million while
// the symbolic search still visits only the trie of the possible set,
// so auto switches to symbolic there; at or below it the scan's lower
// constant factor wins. Every specification of the paper's case study
// (14 units) stays on the bitset scan, so auto preserves the seed's
// behaviour exactly.
const autoSymbolicUnits = 20

// ValidEnumerator reports whether s names a selectable enumerator.
// "auto" and the empty string both select automatic choice. Flag and
// request validation use it so a misspelled name fails fast instead of
// silently falling back to a default.
func ValidEnumerator(s string) bool {
	switch Enumerator(s) {
	case EnumeratorAuto, "auto", EnumeratorBitset, EnumeratorSymbolic:
		return true
	}
	return false
}

// enumeratorFor resolves the configured producer for a specification
// with n allocatable units. Unknown values panic: the CLI and server
// layers validate with ValidEnumerator before options reach the engine.
func (o Options) enumeratorFor(n int) Enumerator {
	switch o.Enumerator {
	case EnumeratorBitset, EnumeratorSymbolic:
		return o.Enumerator
	case EnumeratorAuto, "auto":
		if n > autoSymbolicUnits {
			return EnumeratorSymbolic
		}
		return EnumeratorBitset
	default:
		panic(fmt.Sprintf("core: unknown enumerator %q", o.Enumerator))
	}
}

// autoMaxProducers caps the auto-resolved producer count for parallel
// exploration. Candidate production is a small fraction of the total
// work (ROADMAP's profiling put it near 18%), so a handful of walkers
// removes the serial spine; beyond that the merge's coordination buys
// nothing.
const autoMaxProducers = 4

// producersFor resolves Options.Producers for an explorer with the
// given worker count over a specification with n allocatable units.
// It returns 0 for the direct single-goroutine scan (the auto default
// for sequential exploration) and otherwise the sharded producer
// count, clamped to [1, n]. An explicit Producers value — including 1
// — always selects the sharded machinery.
func (o Options) producersFor(workers, n int) int {
	p := o.Producers
	if p <= 0 {
		if workers <= 1 {
			return 0
		}
		p = workers
		if p > autoMaxProducers {
			p = autoMaxProducers
		}
	}
	if n == 0 {
		return 0
	}
	if p > n {
		p = n
	}
	return p
}

// Failpoint sites of the exploration engine (see Options.Fault). Both
// are fired with the cost-ordered candidate index.
const (
	// SiteEstimate fires before each candidate's flexibility
	// estimation.
	SiteEstimate = "core/estimate"
	// SiteImplement fires before each candidate's implementation
	// construction (only candidates that beat the flexibility bound).
	SiteImplement = "core/implement"
)

// Diag kinds recorded in Stats.Diags.
const (
	DiagError = "error"
	DiagPanic = "panic"
)

// Diag is a structured diagnostic for one candidate evaluation that
// failed (an injected error, or a panic recovered by the parallel
// explorer). The candidate is skipped; the scan continues.
type Diag struct {
	Kind       string `json:"kind"` // DiagError | DiagPanic
	Site       string `json:"site"` // SiteEstimate | SiteImplement
	Cursor     int    `json:"cursor"`
	Allocation string `json:"allocation"`
	Message    string `json:"message"`
	Stack      string `json:"stack,omitempty"`
}

// Reason classifies how an exploration run ended.
type Reason string

const (
	// ReasonCompleted: the scan exhausted the possible-allocation
	// space.
	ReasonCompleted Reason = "completed"
	// ReasonMaxFlex: Options.StopAtMaxFlex terminated the scan after
	// the specification's maximum flexibility was implemented.
	ReasonMaxFlex Reason = "max-flex"
	// ReasonScanBound: Options.MaxScan bounded the enumeration.
	ReasonScanBound Reason = "scan-bound"
	// ReasonDeadline: the context's deadline expired mid-scan.
	ReasonDeadline Reason = "deadline"
	// ReasonCancelled: the context was cancelled mid-scan (SIGINT, a
	// parent cancellation, or an injected fault).
	ReasonCancelled Reason = "cancelled"
)

// reasonFor maps a done context to the interruption reason.
func reasonFor(ctx context.Context) Reason {
	if ctx.Err() == context.DeadlineExceeded {
		return ReasonDeadline
	}
	return ReasonCancelled
}

// Progress is a consistent snapshot of a running scan, delivered to
// Options.Progress. Cursor counts the possible candidates already
// folded into the front, so the front is exactly the Pareto set of the
// explored prefix [0, Cursor).
type Progress struct {
	Cursor         int
	BestFlex       float64
	MaxFlexibility float64
	Front          []*Implementation
	Stats          Stats
}

// Resume is the state needed to continue an interrupted cost-ordered
// scan; build it from a Result (Cursor, Front, Stats) or through
// internal/checkpoint, which persists and revalidates it.
type Resume struct {
	// Cursor is the index of the next possible candidate to evaluate.
	Cursor int
	// Front is the Pareto front over the explored prefix.
	Front []*Implementation
	// Stats holds the effort counters accumulated before the
	// interruption; the resumed run continues them, so a resumed run's
	// final counters match an uninterrupted run's.
	Stats Stats
}

// Stats aggregates the effort counters the paper reports in Section 5.
type Stats struct {
	// DesignSpace is 2^(allocatable units + problem clusters), the
	// paper's headline search-space size (2^25 for the case study).
	DesignSpace float64 `json:"designSpace"`
	// AllocSpace is 2^(allocatable units).
	AllocSpace float64 `json:"allocSpace"`
	// Scanned counts enumeration effort in the producer's own unit:
	// allocation subsets generated in cost order (bitset scan) or BDD
	// search nodes visited (symbolic enumeration). Enumerator-specific
	// telemetry, zeroed by Semantic().
	Scanned int `json:"scanned"`
	// PossibleAllocations counts subsets passing the possibility test
	// (the paper's "set of possible resource allocations").
	PossibleAllocations int `json:"possibleAllocations"`
	// Estimated counts flexibility estimations performed (one boolean
	// equation per candidate, in the paper's terms).
	Estimated int `json:"estimated"`
	// Attempted counts candidates whose estimate beat the implemented
	// flexibility and therefore went to implementation construction.
	Attempted int `json:"attempted"`
	// ECSTested counts elementary cluster activations submitted to the
	// binding solver; BindingRuns counts solver invocations (one per
	// architecture configuration tried); BindingNodes their summed
	// search nodes.
	ECSTested    int `json:"ecsTested"`
	BindingRuns  int `json:"bindingRuns"`
	BindingNodes int `json:"bindingNodes"`
	// Feasible counts candidates that yielded an implementation with
	// positive flexibility.
	Feasible int `json:"feasible"`
	// Diags records candidate evaluations that failed (injected
	// errors, panics recovered by the parallel workers). The failed
	// candidates are skipped; everything else proceeds.
	Diags []Diag `json:"diags,omitempty"`
	// Cache reports the evaluation-cache effectiveness (zero when
	// Options.DisableCache is set).
	Cache CacheStats `json:"cache,omitempty"`
	// Pipeline instruments the parallel explorer's streaming pipeline
	// (zero for sequential runs).
	Pipeline PipelineStats `json:"pipeline"`
}

// PipelineStats describes one parallel exploration run: the pipeline
// shape and the contention gauges that tell whether the worker pool was
// actually saturated. Like the cache counters these are runtime
// telemetry, not semantics — Semantic() zeroes them, and a resumed run
// starts them afresh.
type PipelineStats struct {
	// Workers is the number of persistent worker goroutines the run
	// spawned — once each at startup, never per candidate.
	Workers int `json:"workers,omitempty"`
	// QueueDepth is the capacity of the bounded job channel feeding the
	// workers; QueueHighWater is the deepest the queue actually got. A
	// high-water mark pinned at the depth means enumeration outruns the
	// workers (the pool is saturated); near zero means the producer
	// starves it.
	QueueDepth     int `json:"queueDepth,omitempty"`
	QueueHighWater int `json:"queueHighWater,omitempty"`
	// CommitStalls counts range jobs that reached the ordered-commit
	// stage before an earlier range had finished and waited in the
	// reorder buffer.
	CommitStalls int `json:"commitStalls,omitempty"`
	// BatchSize is the largest candidate-range size the run used (an
	// adaptive run ramps up to it); BatchesCommitted counts the range
	// archives folded into the front by the ordered-commit stage; and
	// BoundPublishes counts publications of the shared flexibility
	// bound to the workers — at most one per committed batch plus the
	// initial seed, which is the relaxed cadence's observable form.
	BatchSize        int `json:"batchSize,omitempty"`
	BatchesCommitted int `json:"batchesCommitted,omitempty"`
	BoundPublishes   int `json:"boundPublishes,omitempty"`
	// BusyNanos sums the wall-clock time workers spent evaluating
	// candidates; BusyNanos / (elapsed × Workers) approximates pool
	// utilization.
	BusyNanos int64 `json:"busyNanos,omitempty"`
	// Producers is the resolved candidate-producer goroutine count when
	// the run used the sharded enumeration (0 for the direct
	// single-goroutine scan). ProducerBusyNanos sums the walkers'
	// tree-walking time (wall time minus blocked-send time), and
	// MergeStalls counts merge reads that found the needed producer
	// stream empty — together they tell whether candidate production or
	// evaluation was the bottleneck.
	Producers         int   `json:"producers,omitempty"`
	ProducerBusyNanos int64 `json:"producerBusyNanos,omitempty"`
	MergeStalls       int   `json:"mergeStalls,omitempty"`
}

// CacheStats counts hits and misses of the candidate-evaluation caches
// (see internal/core/evaluator.go). Hits measure avoided work: a
// flatten hit is a graph flattening not recomputed, a bind hit is a
// solver invocation not run (exact = same inputs seen before, replay =
// feasible binding replayed under a resource superset, infeasible =
// skipped by subset dominance), and SupportableReused counts
// Implement calls that reused the supportable-cluster set computed by
// the preceding Estimate.
type CacheStats struct {
	FlattenHits        int `json:"flattenHits,omitempty"`
	FlattenMisses      int `json:"flattenMisses,omitempty"`
	ArchFlattenHits    int `json:"archFlattenHits,omitempty"`
	ArchFlattenMisses  int `json:"archFlattenMisses,omitempty"`
	BindExactHits      int `json:"bindExactHits,omitempty"`
	BindReplayHits     int `json:"bindReplayHits,omitempty"`
	BindInfeasibleHits int `json:"bindInfeasibleHits,omitempty"`
	BindMisses         int `json:"bindMisses,omitempty"`
	SupportableReused  int `json:"supportableReused,omitempty"`
}

// plus returns the counter-wise sum.
func (c CacheStats) plus(d CacheStats) CacheStats {
	c.FlattenHits += d.FlattenHits
	c.FlattenMisses += d.FlattenMisses
	c.ArchFlattenHits += d.ArchFlattenHits
	c.ArchFlattenMisses += d.ArchFlattenMisses
	c.BindExactHits += d.BindExactHits
	c.BindReplayHits += d.BindReplayHits
	c.BindInfeasibleHits += d.BindInfeasibleHits
	c.BindMisses += d.BindMisses
	c.SupportableReused += d.SupportableReused
	return c
}

// BindHits returns the solver invocations avoided by the binding memo.
func (c CacheStats) BindHits() int {
	return c.BindExactHits + c.BindReplayHits + c.BindInfeasibleHits
}

// Semantic returns the counters that are invariant across cache
// configuration, enumerator choice and resume splitting: what was
// found possible, estimated, attempted and found feasible.
// BindingRuns/BindingNodes measure actual solver effort — exactly what
// caching removes and what a resumed run (cold cache) redoes — the
// cache counters measure the caching itself, and Scanned counts effort
// in the enumerator's own unit (subsets scanned vs BDD nodes visited),
// so all are zeroed. Differential tests compare runs through this
// view.
func (s Stats) Semantic() Stats {
	s.Scanned = 0
	s.BindingRuns = 0
	s.BindingNodes = 0
	s.Cache = CacheStats{}
	s.Pipeline = PipelineStats{}
	return s
}

// statsSemanticFields is the exhaustive list of Stats fields Semantic()
// preserves: the counters that must match across cache modes, worker
// counts and resume splits. Every Stats field must appear here or be
// zeroed in Semantic() — flexvet FX003 enforces the split, and
// TestSemanticZeroesTelemetry exercises it at runtime.
var statsSemanticFields = map[string]bool{
	"DesignSpace":         true,
	"AllocSpace":          true,
	"PossibleAllocations": true,
	"Estimated":           true,
	"Attempted":           true,
	"ECSTested":           true,
	"Feasible":            true,
	"Diags":               true,
}

// Result is the outcome of an exploration. Because candidates arrive
// in nondecreasing cost, an interrupted run's Front is still exactly
// the Pareto-optimal set of the explored prefix [0, Cursor) — a valid
// anytime answer, resumable via Options.Resume.
type Result struct {
	// Front is the Pareto-optimal set, sorted by increasing cost.
	Front []*Implementation
	// MaxFlexibility is the flexibility of the specification when every
	// bindable cluster is activated (upper bound of the front).
	MaxFlexibility float64
	// Interrupted reports that the scan stopped early on a context
	// deadline or cancellation; Front is the partial (prefix-exact)
	// answer.
	Interrupted bool
	// Reason classifies the termination.
	Reason Reason
	// Cursor is the scan cursor: the index of the next possible
	// candidate the scan would have evaluated (== the number of
	// candidates whose evaluation is reflected in Front). For the
	// sampling baselines it counts iterations (RandomSearch) or
	// generations (Evolutionary) instead.
	Cursor int
	Stats  Stats
}

// FrontTable renders the Pareto set in the layout of the paper's
// Section 5 table.
func (r *Result) FrontTable(root hgraph.ID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s | %-44s | %6s | %3s\n", "Resources", "Clusters", "c", "f")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 92))
	for _, im := range r.Front {
		res := strings.Trim(im.Allocation.String(), "{}")
		fmt.Fprintf(&b, "%-28s | %-44s | $%5.0f | %4g\n", res, im.ClusterString(root), im.Cost, im.Flexibility)
	}
	return b.String()
}

// flexOf evaluates the configured flexibility metric for an activation
// set.
func (o Options) flexOf(g *hgraph.Graph, active map[hgraph.ID]bool) float64 {
	if o.Weighted {
		return flex.WeightedFlexibility(g, flex.FromSet(active))
	}
	return flex.Flexibility(g, flex.FromSet(active))
}

// Implement attempts to construct an implementation for one resource
// allocation: it determines the supportable clusters, tests every
// elementary cluster activation over the allocation's architecture
// configurations with the binding solver, and evaluates the flexibility
// of the clusters that are part of at least one feasible behaviour.
// It returns nil when no behaviour is feasible. Search effort is added
// to stats (which may be nil).
func Implement(s *spec.Spec, a spec.Allocation, opts Options, stats *Stats) *Implementation {
	if stats == nil {
		stats = &Stats{}
	}
	supportable := alloc.SupportableClusters(s, a)
	feasible := map[hgraph.ID]bool{}
	var behaviours []Behaviour

	// Architecture configurations are enumerated once.
	var views []*spec.ArchView
	a.EnumerateArchSelections(s, func(sel hgraph.Selection) bool {
		if av, err := s.ArchViewFor(a, sel); err == nil {
			views = append(views, av)
		}
		return true
	})

	tested := 0
	cover.Enumerate(s.Problem, supportable, func(e cover.ECS) bool {
		tested++
		// Skip behaviours that cannot extend the feasible cluster set
		// (unless the caller wants the full behaviour inventory).
		if !opts.AllBehaviours {
			novel := false
			for _, c := range e.Clusters {
				if !feasible[c] {
					novel = true
					break
				}
			}
			if !novel {
				return tested < opts.maxECS()
			}
		}
		stats.ECSTested++
		fp, err := s.Problem.Flatten(e.Selection)
		if err != nil {
			return tested < opts.maxECS()
		}
		for _, av := range views {
			stats.BindingRuns++
			res, ok := bind.Find(s, fp, av, bind.Options{Timing: opts.Timing, MaxNodes: opts.MaxBindNodes})
			stats.BindingNodes += res.Nodes
			if ok {
				for _, c := range e.Clusters {
					feasible[c] = true
				}
				behaviours = append(behaviours, Behaviour{
					ECS: e, ArchSelection: av.Selection, Binding: res.Binding,
				})
				break
			}
		}
		return tested < opts.maxECS()
	})

	implemented := flex.ActivatableClusters(s.Problem, flex.FromSet(feasible))
	f := opts.flexOf(s.Problem, implemented)
	if f <= 0 {
		return nil
	}
	clusters := make([]hgraph.ID, 0, len(implemented))
	for c := range implemented {
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i] < clusters[j] })
	// Keep only behaviours whose clusters survived normalization.
	kept := behaviours[:0]
	for _, b := range behaviours {
		all := true
		for _, c := range b.ECS.Clusters {
			if !implemented[c] {
				all = false
				break
			}
		}
		if all {
			kept = append(kept, b)
		}
	}
	return &Implementation{
		Allocation:  a.Clone(),
		Cost:        a.Cost(s),
		Flexibility: f,
		Clusters:    clusters,
		Behaviours:  kept,
	}
}

// Estimate computes the paper's flexibility estimation for an
// allocation: the flexibility of the specification reduced to the
// clusters supportable under the allocation, ignoring binding and
// timing feasibility. It is an upper bound on the implementable
// flexibility.
func Estimate(s *spec.Spec, a spec.Allocation, opts Options) float64 {
	return opts.flexOf(s.Problem, alloc.SupportableClusters(s, a))
}

// MaxFlexibility returns the flexibility upper bound of the whole
// specification: the estimate under the full allocation (every unit).
func MaxFlexibility(s *spec.Spec, opts Options) float64 {
	full := spec.Allocation{}
	for _, u := range alloc.Units(s) {
		full[u.ID] = true
	}
	return Estimate(s, full, opts)
}
