// Package core implements the paper's primary contribution: the
// flexibility/cost design-space exploration of hierarchical
// specification graphs (EXPLORE, Section 4), together with the
// implementation model it produces and baseline explorers (exhaustive
// search, random search and an evolutionary algorithm in the spirit of
// the paper's reference [2]) used to validate the front and to measure
// the pruning the paper reports.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/bind"
	"repro/internal/cover"
	"repro/internal/flex"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// Behaviour is one feasibly implemented elementary cluster activation:
// the behaviour's cluster selection, the architecture configuration
// chosen for it, and the binding of its processes.
type Behaviour struct {
	ECS           cover.ECS
	ArchSelection hgraph.Selection
	Binding       bind.Binding
}

// Implementation is a feasible design point: a resource allocation with
// its cost, the set of problem-graph clusters it implements (a⁺ = 1),
// the resulting flexibility, and one feasible behaviour per implemented
// elementary cluster activation.
type Implementation struct {
	Allocation  spec.Allocation
	Cost        float64
	Flexibility float64
	Clusters    []hgraph.ID
	Behaviours  []Behaviour
}

// ClusterString renders the implemented clusters (root omitted), e.g.
// "gD1 gI gU1".
func (im *Implementation) ClusterString(root hgraph.ID) string {
	var parts []string
	for _, c := range im.Clusters {
		if c != root {
			parts = append(parts, string(c))
		}
	}
	return strings.Join(parts, " ")
}

// String implements fmt.Stringer.
func (im *Implementation) String() string {
	return fmt.Sprintf("%s c=%g f=%g", im.Allocation, im.Cost, im.Flexibility)
}

// Options configures exploration.
type Options struct {
	// Timing is the performance test applied during binding (the paper
	// uses the 69 % utilization estimate).
	Timing bind.TimingPolicy
	// Weighted switches the flexibility metric to the footnote-2
	// weighted variant.
	Weighted bool
	// IncludeUselessComm disables the useless-bus pruning of the
	// allocation enumeration.
	IncludeUselessComm bool
	// DisableFlexBound disables the paper's flexibility-estimation
	// bound (every possible allocation is then implemented) — ablation.
	DisableFlexBound bool
	// StopAtMaxFlex terminates the exploration as soon as the maximum
	// flexibility of the specification has been implemented. The full
	// cost-ordered scan (paper behaviour) is the default.
	StopAtMaxFlex bool
	// AllBehaviours records every feasible elementary cluster
	// activation in the implementation instead of only those that
	// extend the implemented cluster set. Needed when the behaviours
	// drive a runtime simulation (package sim); irrelevant for the
	// flexibility value.
	AllBehaviours bool
	// MaxECS bounds the number of elementary cluster activations tested
	// per candidate (0 = 10000).
	MaxECS int
	// MaxScan bounds the allocation subsets scanned (0 = unbounded).
	MaxScan int
	// MaxBindNodes bounds each binding search (0 = unbounded).
	MaxBindNodes int
}

func (o Options) maxECS() int {
	if o.MaxECS <= 0 {
		return 10000
	}
	return o.MaxECS
}

// Stats aggregates the effort counters the paper reports in Section 5.
type Stats struct {
	// DesignSpace is 2^(allocatable units + problem clusters), the
	// paper's headline search-space size (2^25 for the case study).
	DesignSpace float64
	// AllocSpace is 2^(allocatable units).
	AllocSpace float64
	// Scanned counts allocation subsets generated in cost order.
	Scanned int
	// PossibleAllocations counts subsets passing the possibility test
	// (the paper's "set of possible resource allocations").
	PossibleAllocations int
	// Estimated counts flexibility estimations performed (one boolean
	// equation per candidate, in the paper's terms).
	Estimated int
	// Attempted counts candidates whose estimate beat the implemented
	// flexibility and therefore went to implementation construction.
	Attempted int
	// ECSTested counts elementary cluster activations submitted to the
	// binding solver; BindingRuns counts solver invocations (one per
	// architecture configuration tried); BindingNodes their summed
	// search nodes.
	ECSTested    int
	BindingRuns  int
	BindingNodes int
	// Feasible counts candidates that yielded an implementation with
	// positive flexibility.
	Feasible int
}

// Result is the outcome of an exploration.
type Result struct {
	// Front is the Pareto-optimal set, sorted by increasing cost.
	Front []*Implementation
	// MaxFlexibility is the flexibility of the specification when every
	// bindable cluster is activated (upper bound of the front).
	MaxFlexibility float64
	Stats          Stats
}

// FrontTable renders the Pareto set in the layout of the paper's
// Section 5 table.
func (r *Result) FrontTable(root hgraph.ID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s | %-44s | %6s | %3s\n", "Resources", "Clusters", "c", "f")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 92))
	for _, im := range r.Front {
		res := strings.Trim(im.Allocation.String(), "{}")
		fmt.Fprintf(&b, "%-28s | %-44s | $%5.0f | %4g\n", res, im.ClusterString(root), im.Cost, im.Flexibility)
	}
	return b.String()
}

// flexOf evaluates the configured flexibility metric for an activation
// set.
func (o Options) flexOf(g *hgraph.Graph, active map[hgraph.ID]bool) float64 {
	if o.Weighted {
		return flex.WeightedFlexibility(g, flex.FromSet(active))
	}
	return flex.Flexibility(g, flex.FromSet(active))
}

// Implement attempts to construct an implementation for one resource
// allocation: it determines the supportable clusters, tests every
// elementary cluster activation over the allocation's architecture
// configurations with the binding solver, and evaluates the flexibility
// of the clusters that are part of at least one feasible behaviour.
// It returns nil when no behaviour is feasible. Search effort is added
// to stats (which may be nil).
func Implement(s *spec.Spec, a spec.Allocation, opts Options, stats *Stats) *Implementation {
	if stats == nil {
		stats = &Stats{}
	}
	supportable := alloc.SupportableClusters(s, a)
	feasible := map[hgraph.ID]bool{}
	var behaviours []Behaviour

	// Architecture configurations are enumerated once.
	var views []*spec.ArchView
	a.EnumerateArchSelections(s, func(sel hgraph.Selection) bool {
		if av, err := s.ArchViewFor(a, sel); err == nil {
			views = append(views, av)
		}
		return true
	})

	tested := 0
	cover.Enumerate(s.Problem, supportable, func(e cover.ECS) bool {
		tested++
		// Skip behaviours that cannot extend the feasible cluster set
		// (unless the caller wants the full behaviour inventory).
		if !opts.AllBehaviours {
			novel := false
			for _, c := range e.Clusters {
				if !feasible[c] {
					novel = true
					break
				}
			}
			if !novel {
				return tested < opts.maxECS()
			}
		}
		stats.ECSTested++
		fp, err := s.Problem.Flatten(e.Selection)
		if err != nil {
			return tested < opts.maxECS()
		}
		for _, av := range views {
			stats.BindingRuns++
			res, ok := bind.Find(s, fp, av, bind.Options{Timing: opts.Timing, MaxNodes: opts.MaxBindNodes})
			stats.BindingNodes += res.Nodes
			if ok {
				for _, c := range e.Clusters {
					feasible[c] = true
				}
				behaviours = append(behaviours, Behaviour{
					ECS: e, ArchSelection: av.Selection, Binding: res.Binding,
				})
				break
			}
		}
		return tested < opts.maxECS()
	})

	implemented := flex.ActivatableClusters(s.Problem, flex.FromSet(feasible))
	f := opts.flexOf(s.Problem, implemented)
	if f <= 0 {
		return nil
	}
	clusters := make([]hgraph.ID, 0, len(implemented))
	for c := range implemented {
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i] < clusters[j] })
	// Keep only behaviours whose clusters survived normalization.
	kept := behaviours[:0]
	for _, b := range behaviours {
		all := true
		for _, c := range b.ECS.Clusters {
			if !implemented[c] {
				all = false
				break
			}
		}
		if all {
			kept = append(kept, b)
		}
	}
	return &Implementation{
		Allocation:  a.Clone(),
		Cost:        a.Cost(s),
		Flexibility: f,
		Clusters:    clusters,
		Behaviours:  kept,
	}
}

// Estimate computes the paper's flexibility estimation for an
// allocation: the flexibility of the specification reduced to the
// clusters supportable under the allocation, ignoring binding and
// timing feasibility. It is an upper bound on the implementable
// flexibility.
func Estimate(s *spec.Spec, a spec.Allocation, opts Options) float64 {
	return opts.flexOf(s.Problem, alloc.SupportableClusters(s, a))
}

// MaxFlexibility returns the flexibility upper bound of the whole
// specification: the estimate under the full allocation (every unit).
func MaxFlexibility(s *spec.Spec, opts Options) float64 {
	full := spec.Allocation{}
	for _, u := range alloc.Units(s) {
		full[u.ID] = true
	}
	return Estimate(s, full, opts)
}
