package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hgraph"
	"repro/internal/spec"
)

// FamilyAnalysis summarizes a Pareto front from the platform-based
// design perspective the paper's introduction motivates: for every
// behaviour variant (leaf cluster), at which price point does the
// product family first offer it, and which variants ship in every tier
// (the commonality that defines the platform)?
type FamilyAnalysis struct {
	// EntryCost maps each implementable cluster to the cost of the
	// cheapest front implementation offering it.
	EntryCost map[hgraph.ID]float64
	// Common lists the clusters implemented by every front member
	// (root and intermediate clusters excluded), sorted.
	Common []hgraph.ID
	// Unreachable lists leaf clusters no front implementation offers.
	Unreachable []hgraph.ID
	// MarginalCost lists, per consecutive front pair, the cost per
	// added flexibility unit.
	MarginalCost []float64
}

// AnalyzeFamily computes the family analysis of an explored front.
func AnalyzeFamily(s *spec.Spec, front []*Implementation) *FamilyAnalysis {
	fa := &FamilyAnalysis{EntryCost: map[hgraph.ID]float64{}}
	leafClusters := map[hgraph.ID]bool{}
	for _, c := range s.Problem.Clusters() {
		if len(c.Interfaces) == 0 && c != s.Problem.Root {
			leafClusters[c.ID] = true
		}
	}
	counts := map[hgraph.ID]int{}
	for _, im := range front {
		for _, c := range im.Clusters {
			if !leafClusters[c] {
				continue
			}
			counts[c]++
			if _, seen := fa.EntryCost[c]; !seen {
				fa.EntryCost[c] = im.Cost
			}
		}
	}
	for c := range leafClusters {
		if counts[c] == len(front) && len(front) > 0 {
			fa.Common = append(fa.Common, c)
		}
		if counts[c] == 0 {
			fa.Unreachable = append(fa.Unreachable, c)
		}
	}
	sort.Slice(fa.Common, func(i, j int) bool { return fa.Common[i] < fa.Common[j] })
	sort.Slice(fa.Unreachable, func(i, j int) bool { return fa.Unreachable[i] < fa.Unreachable[j] })
	for i := 1; i < len(front); i++ {
		df := front[i].Flexibility - front[i-1].Flexibility
		dc := front[i].Cost - front[i-1].Cost
		if df > 0 {
			fa.MarginalCost = append(fa.MarginalCost, dc/df)
		}
	}
	return fa
}

// String renders the analysis as a compact report.
func (fa *FamilyAnalysis) String() string {
	var b strings.Builder
	b.WriteString("behaviour entry costs:\n")
	var ids []hgraph.ID
	for id := range fa.EntryCost {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if fa.EntryCost[ids[i]] != fa.EntryCost[ids[j]] {
			return fa.EntryCost[ids[i]] < fa.EntryCost[ids[j]]
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		fmt.Fprintf(&b, "  %-6s from $%g\n", id, fa.EntryCost[id])
	}
	fmt.Fprintf(&b, "platform commonality (in every tier): %v\n", fa.Common)
	if len(fa.Unreachable) > 0 {
		fmt.Fprintf(&b, "never offered: %v\n", fa.Unreachable)
	}
	if len(fa.MarginalCost) > 0 {
		fmt.Fprintf(&b, "marginal cost per flexibility unit: %v\n", fa.MarginalCost)
	}
	return b.String()
}
