package core

import (
	"encoding/json"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/alloc"
	"repro/internal/bind"
	"repro/internal/flex"
	"repro/internal/hgraph"
	"repro/internal/models"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// paperRow is one row of the paper's Section 5 Pareto table.
type paperRow struct {
	alloc    spec.Allocation
	cost     float64
	flex     float64
	clusters []hgraph.ID // implemented clusters excluding the root and gG/gD parents
}

// paperPareto returns the published Pareto-optimal set of the Set-Top
// box case study (allocations translated to our unit IDs: FPGA designs
// are the clusters dD3/dU2/dG1).
func paperPareto() []paperRow {
	return []paperRow{
		{spec.NewAllocation("uP2"), 100, 2,
			[]hgraph.ID{"gI", "gD1", "gU1"}},
		{spec.NewAllocation("uP1"), 120, 3,
			[]hgraph.ID{"gI", "gG1", "gD1", "gU1"}},
		{spec.NewAllocation("uP2", "dG1", "dU2", "C1"), 230, 4,
			[]hgraph.ID{"gI", "gG1", "gD1", "gU1", "gU2"}},
		{spec.NewAllocation("uP2", "dD3", "dG1", "dU2", "C1"), 290, 5,
			[]hgraph.ID{"gI", "gG1", "gD1", "gD3", "gU1", "gU2"}},
		{spec.NewAllocation("uP2", "A1", "C2"), 360, 7,
			[]hgraph.ID{"gI", "gG1", "gG2", "gG3", "gD1", "gD2", "gU1", "gU2"}},
		{spec.NewAllocation("uP2", "A1", "dD3", "C1", "C2"), 430, 8,
			[]hgraph.ID{"gI", "gG1", "gG2", "gG3", "gD1", "gD2", "gD3", "gU1", "gU2"}},
	}
}

// TestCaseStudyParetoTable is experiment E6: EXPLORE on the Set-Top box
// reproduces the paper's six-row Pareto table exactly — allocations,
// implemented clusters, costs and flexibilities.
func TestCaseStudyParetoTable(t *testing.T) {
	s := models.SetTopBox()
	r := Explore(s, Options{})
	rows := paperPareto()
	if len(r.Front) != len(rows) {
		t.Fatalf("front size = %d, want %d", len(r.Front), len(rows))
	}
	if r.MaxFlexibility != 8 {
		t.Errorf("max flexibility = %v, want 8", r.MaxFlexibility)
	}
	for i, want := range rows {
		got := r.Front[i]
		if got.Cost != want.cost || got.Flexibility != want.flex {
			t.Errorf("row %d: (cost,f) = (%v,%v), want (%v,%v)", i, got.Cost, got.Flexibility, want.cost, want.flex)
		}
		if !got.Allocation.Equal(want.alloc) {
			t.Errorf("row %d: allocation = %v, want %v", i, got.Allocation, want.alloc)
		}
		implemented := map[hgraph.ID]bool{}
		for _, c := range got.Clusters {
			implemented[c] = true
		}
		for _, c := range want.clusters {
			if !implemented[c] {
				t.Errorf("row %d: cluster %s not implemented", i, c)
			}
		}
	}
}

// TestPaperRowsViaImplement independently verifies every published row:
// constructing an implementation for the published allocation yields
// the published cost and flexibility (this also covers the fact that
// the $230 row is one of several equal optima — the published one is a
// valid optimum).
func TestPaperRowsViaImplement(t *testing.T) {
	s := models.SetTopBox()
	for i, want := range paperPareto() {
		im := Implement(s, want.alloc, Options{}, nil)
		if im == nil {
			t.Fatalf("row %d: Implement returned nil", i)
		}
		if im.Cost != want.cost {
			t.Errorf("row %d: cost = %v, want %v", i, im.Cost, want.cost)
		}
		if im.Flexibility != want.flex {
			t.Errorf("row %d: flexibility = %v, want %v", i, im.Flexibility, want.flex)
		}
	}
}

// TestWorkedFeasibility is experiment E9: the paper's worked analysis
// of the first candidate μP2 — browser and digital TV feasible, game
// console rejected by the 69 % bound — giving f_impl = 2; and of μP1,
// where the game console fits, giving f = 3.
func TestWorkedFeasibility(t *testing.T) {
	s := models.SetTopBox()
	im2 := Implement(s, spec.NewAllocation("uP2"), Options{}, nil)
	if im2 == nil {
		t.Fatal("uP2 should be implementable")
	}
	if im2.Flexibility != 2 {
		t.Errorf("f(uP2) = %v, want 2", im2.Flexibility)
	}
	got := map[hgraph.ID]bool{}
	for _, c := range im2.Clusters {
		got[c] = true
	}
	if got["gG"] || got["gG1"] {
		t.Error("game console must be rejected on uP2 ((95+90)/240 > 0.69)")
	}
	if !got["gI"] || !got["gD1"] || !got["gU1"] {
		t.Error("browser and digital TV must be implemented on uP2")
	}

	im1 := Implement(s, spec.NewAllocation("uP1"), Options{}, nil)
	if im1 == nil || im1.Flexibility != 3 {
		t.Fatalf("f(uP1) = %v, want 3 ((75+70)/240 <= 0.69)", im1)
	}
}

// TestImplementBehavioursValid re-checks every behaviour of every front
// implementation against the independent binding validator.
func TestImplementBehavioursValid(t *testing.T) {
	s := models.SetTopBox()
	r := Explore(s, Options{})
	for _, im := range r.Front {
		if len(im.Behaviours) == 0 {
			t.Errorf("%v has no behaviours", im)
		}
		for _, b := range im.Behaviours {
			fp, err := s.Problem.Flatten(b.ECS.Selection)
			if err != nil {
				t.Fatalf("%v: flatten: %v", im, err)
			}
			av, err := s.ArchViewFor(im.Allocation, b.ArchSelection)
			if err != nil {
				t.Fatalf("%v: arch view: %v", im, err)
			}
			if err := bind.Check(s, fp, av, b.Binding, bind.Options{Timing: bind.TimingPaper}); err != nil {
				t.Errorf("%v: behaviour %v invalid: %v", im, b.ECS, err)
			}
		}
	}
}

// TestCaseStudyPruningStats is experiment E7: the search-space
// reduction numbers. The paper reports 2^25 design points, a reduction
// to 2^14 allocation candidates, ~7000 possible allocations
// investigated and ~1050 implementation attempts; our deterministic
// counters give the same orders of magnitude (the difference in the
// last two is the strictly cost-sorted candidate order, which tightens
// the flexibility bound — see EXPERIMENTS.md).
func TestCaseStudyPruningStats(t *testing.T) {
	s := models.SetTopBox()

	r := Explore(s, Options{})
	if r.Stats.DesignSpace != 1<<25 {
		t.Errorf("design space = %v, want 2^25", r.Stats.DesignSpace)
	}
	if r.Stats.AllocSpace != 1<<14 {
		t.Errorf("allocation space = %v, want 2^14", r.Stats.AllocSpace)
	}
	if r.Stats.PossibleAllocations != 2371 {
		t.Errorf("possible allocations (bus-pruned) = %d, want 2371", r.Stats.PossibleAllocations)
	}
	if r.Stats.Attempted != 25 {
		t.Errorf("implementation attempts = %d, want 25", r.Stats.Attempted)
	}

	// Without the useless-bus pruning the possible-allocation count is
	// the upward closure of {a processor}: 3/4 of 2^14.
	r2 := Explore(s, Options{IncludeUselessComm: true})
	if r2.Stats.PossibleAllocations != 12288 {
		t.Errorf("possible allocations (unpruned) = %d, want 12288", r2.Stats.PossibleAllocations)
	}
	if len(r2.Front) != 6 {
		t.Errorf("unpruned exploration front size = %d, want 6", len(r2.Front))
	}
	// The flexibility bound must prune the vast majority of candidates.
	if r2.Stats.Attempted >= r2.Stats.PossibleAllocations/10 {
		t.Errorf("bound too weak: %d of %d attempted", r2.Stats.Attempted, r2.Stats.PossibleAllocations)
	}
}

// TestExhaustiveAgrees validates EXPLORE against the exhaustive
// baseline: identical fronts, far less effort.
func TestExhaustiveAgrees(t *testing.T) {
	s := models.SetTopBox()
	ex := Exhaustive(s, Options{})
	fast := Explore(s, Options{})
	if len(ex.Front) != len(fast.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(ex.Front), len(fast.Front))
	}
	for i := range ex.Front {
		if ex.Front[i].Cost != fast.Front[i].Cost || ex.Front[i].Flexibility != fast.Front[i].Flexibility {
			t.Errorf("row %d differs: (%v,%v) vs (%v,%v)", i,
				ex.Front[i].Cost, ex.Front[i].Flexibility,
				fast.Front[i].Cost, fast.Front[i].Flexibility)
		}
	}
	if fast.Stats.BindingRuns*10 > ex.Stats.BindingRuns {
		t.Errorf("EXPLORE used %d binding runs, exhaustive %d — expected >10x reduction",
			fast.Stats.BindingRuns, ex.Stats.BindingRuns)
	}
}

// TestStopAtMaxFlex: early termination at maximum flexibility returns
// the same front while scanning fewer subsets.
func TestStopAtMaxFlex(t *testing.T) {
	s := models.SetTopBox()
	full := Explore(s, Options{})
	early := Explore(s, Options{StopAtMaxFlex: true})
	if len(early.Front) != len(full.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(early.Front), len(full.Front))
	}
	for i := range full.Front {
		if full.Front[i].Cost != early.Front[i].Cost || full.Front[i].Flexibility != early.Front[i].Flexibility {
			t.Errorf("row %d differs", i)
		}
	}
	if early.Stats.Scanned >= full.Stats.Scanned {
		t.Errorf("early stop scanned %d >= full %d", early.Stats.Scanned, full.Stats.Scanned)
	}
}

// TestFlexBoundAblation: disabling the flexibility-estimation bound
// must not change the front, only the effort.
func TestFlexBoundAblation(t *testing.T) {
	s := models.SetTopBox()
	with := Explore(s, Options{})
	without := Explore(s, Options{DisableFlexBound: true})
	if len(with.Front) != len(without.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(with.Front), len(without.Front))
	}
	for i := range with.Front {
		if with.Front[i].Cost != without.Front[i].Cost ||
			with.Front[i].Flexibility != without.Front[i].Flexibility {
			t.Errorf("row %d differs", i)
		}
	}
	if without.Stats.Attempted <= with.Stats.Attempted {
		t.Error("ablation should attempt strictly more candidates")
	}
}

// TestRandomSearchBaseline: random search never finds a point outside
// the exact front's dominance region, and with a healthy budget it
// still tends to miss Pareto points that EXPLORE guarantees.
func TestRandomSearchBaseline(t *testing.T) {
	s := models.SetTopBox()
	exact := Explore(s, Options{})
	rs := RandomSearch(s, Options{}, 300, 42)
	exactFront := &pareto.Front{}
	for _, im := range exact.Front {
		exactFront.Add(&pareto.Entry{Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility)})
	}
	for _, im := range rs.Front {
		obj := pareto.CostFlexObjectives(im.Cost, im.Flexibility)
		if !exactFront.DominatesPoint(obj) {
			t.Errorf("random search found %v outside the exact front", im)
		}
	}
}

// TestEvolutionaryBaseline (experiment E11): the EA approximates the
// front; every EA point is covered by the exact front, and the EA finds
// at least the extreme points with the default budget.
func TestEvolutionaryBaseline(t *testing.T) {
	s := models.SetTopBox()
	exact := Explore(s, Options{})
	ea := Evolutionary(s, Options{}, EAConfig{Seed: 1})
	exactFront := &pareto.Front{}
	for _, im := range exact.Front {
		exactFront.Add(&pareto.Entry{Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility)})
	}
	for _, im := range ea.Front {
		if !exactFront.DominatesPoint(pareto.CostFlexObjectives(im.Cost, im.Flexibility)) {
			t.Errorf("EA found %v outside the exact front", im)
		}
	}
	if len(ea.Front) < 3 {
		t.Errorf("EA found only %d front points; expected at least 3", len(ea.Front))
	}
}

// TestWeightedExploration (experiment E10): the footnote-2 weighted
// metric reshapes the front; doubling the browser's weight raises the
// flexibility of every implementation containing γI by 1.
func TestWeightedExploration(t *testing.T) {
	s := models.SetTopBox()
	s.Problem.ClusterByID("gI").Attrs = hgraph.Attrs{spec.AttrWeight: 2}
	r := Explore(s, Options{Weighted: true})
	if r.MaxFlexibility != 9 {
		t.Errorf("weighted max flexibility = %v, want 9", r.MaxFlexibility)
	}
	if len(r.Front) == 0 {
		t.Fatal("empty weighted front")
	}
	first := r.Front[0]
	if first.Cost != 100 || first.Flexibility != 3 {
		t.Errorf("first weighted row = (%v,%v), want (100,3)", first.Cost, first.Flexibility)
	}
	last := r.Front[len(r.Front)-1]
	if last.Flexibility != 9 {
		t.Errorf("last weighted row f = %v, want 9", last.Flexibility)
	}
}

// TestDecoderExploration explores the Fig. 2 decoder: the front is
// (50,1) μP alone, (75,2) one FPGA design added, (95,3) both FPGA
// designs (time-multiplexed reconfiguration), (180,4) ASIC + D3 design
// for the full decoder family — with the reconstructed costs.
func TestDecoderExploration(t *testing.T) {
	s := models.Decoder()
	r := Explore(s, Options{})
	want := [][2]float64{{50, 1}, {75, 2}, {95, 3}, {180, 4}}
	if len(r.Front) != len(want) {
		t.Fatalf("decoder front size = %d, want %d: %v", len(r.Front), len(want), r.Front)
	}
	for i, w := range want {
		if r.Front[i].Cost != w[0] || r.Front[i].Flexibility != w[1] {
			t.Errorf("row %d = (%v,%v), want (%v,%v)", i, r.Front[i].Cost, r.Front[i].Flexibility, w[0], w[1])
		}
	}
	if r.MaxFlexibility != 4 {
		t.Errorf("decoder max flexibility = %v, want 4", r.MaxFlexibility)
	}
}

// TestTimingPolicyAblation: with exact RTA instead of the paper's 69 %
// estimate, the game console fits on μP2 (utilization 0.77 but worst
// response 185 ≤ 240), so the cheapest implementation gains γG1.
func TestTimingPolicyAblation(t *testing.T) {
	s := models.SetTopBox()
	im := Implement(s, spec.NewAllocation("uP2"), Options{Timing: bind.TimingRTA}, nil)
	if im == nil {
		t.Fatal("uP2 should be implementable")
	}
	if im.Flexibility != 3 {
		t.Errorf("f(uP2) under RTA = %v, want 3 (game console accepted)", im.Flexibility)
	}
}

// TestFrontTable renders without panicking and contains each row.
func TestFrontTable(t *testing.T) {
	s := models.SetTopBox()
	r := Explore(s, Options{})
	table := r.FrontTable(s.Problem.Root.ID)
	for _, sub := range []string{"uP2", "uP1", "$  100", "$  430", "Resources"} {
		if !containsStr(table, sub) {
			t.Errorf("table lacks %q:\n%s", sub, table)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexStr(haystack, needle) >= 0
}

func indexStr(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}

// Property: on synthetic specifications, EXPLORE and the exhaustive
// baseline return identical fronts, and front flexibility increases
// strictly with cost.
func TestPropExploreMatchesExhaustive(t *testing.T) {
	prop := func(seed int64) bool {
		p := models.SyntheticParams{
			Seed: seed % 100, Apps: 2, Depth: 1, Branch: 2, Vertices: 1,
			Processors: 1, ASICs: 1, Designs: 1, Buses: 2, TimedFraction: 0.4,
		}
		s := models.Synthetic(p)
		fast := Explore(s, Options{})
		ex := Exhaustive(s, Options{})
		if len(fast.Front) != len(ex.Front) {
			return false
		}
		prevF := 0.0
		for i := range fast.Front {
			if fast.Front[i].Cost != ex.Front[i].Cost ||
				fast.Front[i].Flexibility != ex.Front[i].Flexibility {
				return false
			}
			if fast.Front[i].Flexibility <= prevF {
				return false
			}
			prevF = fast.Front[i].Flexibility
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: every explored front point's implementation is internally
// consistent — cost matches the allocation, flexibility matches the
// cluster set.
func TestPropFrontConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		p := models.DefaultSynthetic(seed % 50)
		p.ASICs, p.Designs, p.Buses = 1, 1, 2
		s := models.Synthetic(p)
		r := Explore(s, Options{})
		for _, im := range r.Front {
			if im.Cost != im.Allocation.Cost(s) {
				return false
			}
			re := Implement(s, im.Allocation, Options{}, nil)
			if re == nil || re.Flexibility != im.Flexibility {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func BenchmarkExploreCaseStudy(b *testing.B) {
	s := models.SetTopBox()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Explore(s, Options{})
		if len(r.Front) != 6 {
			b.Fatal("wrong front")
		}
	}
}

func BenchmarkExhaustiveCaseStudy(b *testing.B) {
	s := models.SetTopBox()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Exhaustive(s, Options{})
		if len(r.Front) != 6 {
			b.Fatal("wrong front")
		}
	}
}

func BenchmarkImplement(b *testing.B) {
	s := models.SetTopBox()
	a := spec.NewAllocation("uP2", "A1", "dD3", "C1", "C2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if im := Implement(s, a, Options{}, nil); im == nil {
			b.Fatal("should implement")
		}
	}
}

// TestPropReduceMatchesEstimate: the paper computes the flexibility
// estimation on the reduced specification graph; our Estimate shortcut
// (supportable-cluster activation) must agree with the maximum
// flexibility of spec.Reduce's explicit reduction.
func TestPropReduceMatchesEstimate(t *testing.T) {
	s := models.SetTopBox()
	units := alloc.Units(s)
	prop := func(seed int64) bool {
		a := spec.Allocation{}
		bits := seed
		if bits < 0 {
			bits = -bits
		}
		for _, u := range units {
			if bits&1 == 1 {
				a[u.ID] = true
			}
			bits >>= 1
		}
		reduced, err := s.Reduce(a)
		if !alloc.Possible(s, a) {
			return err != nil
		}
		if err != nil {
			return false
		}
		return flex.MaxFlexibility(reduced.Problem) == Estimate(s, a, Options{})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIndustrialScaleWithinSeconds backs the paper's closing claim that
// "industrial size applications can be efficiently explored within
// minutes": a synthetic specification with a 2^71-design-point space is
// explored to its full front in a few seconds on a laptop-class core.
func TestIndustrialScaleWithinSeconds(t *testing.T) {
	if testing.Short() {
		t.Skip("industrial-scale exploration skipped in -short mode")
	}
	p := models.SyntheticParams{
		Seed: 3, Apps: 4, Depth: 2, Branch: 3, Vertices: 2,
		Processors: 3, ASICs: 4, Designs: 4, Buses: 8,
		TimedFraction: 0.3, AccelOnlyFraction: 0.3,
	}
	s := models.Synthetic(p)
	start := time.Now()
	r := Explore(s, Options{StopAtMaxFlex: true, MaxScan: 200000})
	elapsed := time.Since(start)
	if len(r.Front) == 0 {
		t.Fatal("no front found")
	}
	if r.Stats.DesignSpace < 1e20 {
		t.Errorf("design space = %v, want > 1e20", r.Stats.DesignSpace)
	}
	if elapsed > 60*time.Second {
		t.Errorf("exploration took %v, want well under a minute", elapsed)
	}
	t.Logf("explored %.3g design points to a %d-point front in %v",
		r.Stats.DesignSpace, len(r.Front), elapsed)
}

// TestResultJSON: the exploration result serializes deterministically
// with the published numbers embedded.
func TestResultJSON(t *testing.T) {
	s := models.SetTopBox()
	r := Explore(s, Options{})
	data, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		MaxFlexibility float64 `json:"maxFlexibility"`
		Front          []struct {
			Allocation  []string `json:"allocation"`
			Cost        float64  `json:"cost"`
			Flexibility float64  `json:"flexibility"`
		} `json:"front"`
		Stats struct {
			DesignSpace float64 `json:"designSpace"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.MaxFlexibility != 8 || len(decoded.Front) != 6 {
		t.Errorf("decoded maxFlex=%v front=%d", decoded.MaxFlexibility, len(decoded.Front))
	}
	if decoded.Front[0].Cost != 100 || decoded.Front[5].Flexibility != 8 {
		t.Error("front rows wrong in JSON")
	}
	if decoded.Stats.DesignSpace != 1<<25 {
		t.Errorf("design space in JSON = %v", decoded.Stats.DesignSpace)
	}
	again, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("JSON encoding not deterministic")
	}
}
