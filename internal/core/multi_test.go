package core

import (
	"math"
	"testing"

	"repro/internal/hgraph"
	"repro/internal/models"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// TestExploreMultiDefaultMatchesExplore: with the paper's two
// objectives, the generalized explorer returns the same front values as
// EXPLORE.
func TestExploreMultiDefaultMatchesExplore(t *testing.T) {
	s := models.SetTopBox()
	bi := Explore(s, Options{})
	multi := ExploreMulti(s, Options{}, nil)
	if len(multi.Front) != len(bi.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(multi.Front), len(bi.Front))
	}
	for i := range bi.Front {
		if multi.Front[i].Cost != bi.Front[i].Cost ||
			multi.Front[i].Flexibility != bi.Front[i].Flexibility {
			t.Errorf("row %d differs: (%v,%v) vs (%v,%v)", i,
				multi.Front[i].Cost, multi.Front[i].Flexibility,
				bi.Front[i].Cost, bi.Front[i].Flexibility)
		}
	}
	if multi.Names[0] != "cost" || multi.Names[1] != "1/flexibility" {
		t.Errorf("objective names = %v", multi.Names)
	}
}

// TestExploreMultiTriObjective adds mean optimal latency as a third
// criterion: every bi-objective Pareto point stays non-dominated, and
// at least one new point appears that buys speed with money (e.g. a
// faster ASIC).
func TestExploreMultiTriObjective(t *testing.T) {
	s := models.SetTopBox()
	objs := []Objective{CostObjective(), InvFlexibilityObjective(), MeanLatencyObjective()}
	multi := ExploreMulti(s, Options{AllBehaviours: true}, objs)
	bi := Explore(s, Options{AllBehaviours: true})

	if len(multi.Front) <= len(bi.Front) {
		t.Errorf("tri-objective front (%d) should exceed the bi-objective front (%d)",
			len(multi.Front), len(bi.Front))
	}
	// All bi-front (cost, f) pairs survive.
	for _, want := range bi.Front {
		found := false
		for _, im := range multi.Front {
			if im.Cost == want.Cost && im.Flexibility == want.Flexibility {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("bi-objective point (%v,%v) lost in tri-objective front", want.Cost, want.Flexibility)
		}
	}
	// Mutual non-dominance of the reported vectors.
	for i := range multi.Objectives {
		for j := range multi.Objectives {
			if i != j && pareto.Dominates(multi.Objectives[i], multi.Objectives[j]) {
				t.Errorf("front point %d dominates %d", i, j)
			}
		}
	}
	// No vector may be infinite (all points must have evaluable latency).
	for i, vec := range multi.Objectives {
		for _, v := range vec {
			if math.IsInf(v, 0) {
				t.Errorf("point %d has infinite objective: %v", i, vec)
			}
		}
	}
	// At least one extra point uses a faster ASIC (A2 or A3).
	extra := false
	for _, im := range multi.Front {
		if im.Allocation["A2"] || im.Allocation["A3"] {
			extra = true
		}
	}
	if !extra {
		t.Error("expected a latency-motivated point using A2/A3")
	}
}

// TestResourceSumObjective: a power annotation becomes a first-class
// criterion.
func TestResourceSumObjective(t *testing.T) {
	s := models.SetTopBox()
	power := map[hgraph.ID]float64{
		"uP1": 8, "uP2": 5, "A1": 20, "A2": 22, "A3": 25,
		"D3": 3, "U2": 3, "G1": 3,
		"C1": 1, "C2": 1, "C3": 1, "C4": 1, "C5": 1, "C6": 1,
	}
	for id, w := range power {
		v := s.Arch.VertexByID(id)
		if v.Attrs == nil {
			v.Attrs = hgraph.Attrs{}
		}
		v.Attrs["power"] = w
	}
	objs := []Objective{ResourceSumObjective("power"), InvFlexibilityObjective()}
	multi := ExploreMulti(s, Options{}, objs)
	if len(multi.Front) == 0 {
		t.Fatal("empty power/flexibility front")
	}
	// Lowest-power point: uP2 alone (5) with f=2.
	first := multi.Objectives[0]
	if first[0] != 5 || first[1] != 0.5 {
		t.Errorf("first point = %v, want (5, 0.5)", first)
	}
	// The f=8 point needs uP2+A1+D3+C1+C2 = 5+20+3+1+1 = 30.
	last := multi.Objectives[len(multi.Objectives)-1]
	if last[1] != 0.125 || last[0] != 30 {
		t.Errorf("last point = %v, want (30, 0.125)", last)
	}
}

// TestExploreMultiPruningSound: disabling the dominance pruning does
// not change the front.
func TestExploreMultiPruningSound(t *testing.T) {
	s := models.Decoder()
	objs := []Objective{CostObjective(), InvFlexibilityObjective()}
	with := ExploreMulti(s, Options{}, objs)
	without := ExploreMulti(s, Options{DisableFlexBound: true}, objs)
	if len(with.Front) != len(without.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(with.Front), len(without.Front))
	}
	for i := range with.Objectives {
		for k := range with.Objectives[i] {
			if with.Objectives[i][k] != without.Objectives[i][k] {
				t.Errorf("point %d differs", i)
			}
		}
	}
	if with.Stats.Attempted >= without.Stats.Attempted {
		t.Error("pruning should reduce attempts")
	}
}

func TestObjectiveOnEmptyBehaviours(t *testing.T) {
	s := models.SetTopBox()
	im := &Implementation{Allocation: spec.NewAllocation("uP2"), Cost: 100, Flexibility: 0}
	if got := MeanLatencyObjective().Eval(s, im); !math.IsInf(got, 1) {
		t.Errorf("latency of behaviour-less implementation = %v, want +Inf", got)
	}
	if got := InvFlexibilityObjective().Eval(s, im); !math.IsInf(got, 1) {
		t.Errorf("1/f of zero flexibility = %v, want +Inf", got)
	}
}

func BenchmarkExploreMultiTri(b *testing.B) {
	s := models.SetTopBox()
	objs := []Objective{CostObjective(), InvFlexibilityObjective(), MeanLatencyObjective()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ExploreMulti(s, Options{AllBehaviours: true}, objs)
		if len(r.Front) == 0 {
			b.Fatal("empty front")
		}
	}
}
