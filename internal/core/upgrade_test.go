package core

import (
	"testing"
	"testing/quick"

	"repro/internal/hgraph"
	"repro/internal/models"
	"repro/internal/spec"
)

// TestUpgradeFromCheapestBox: upgrading the deployed $100 box (uP2,
// f=2) without discarding hardware. The fresh-design front jumps to μP1
// at $120 for f=3, but an upgrade cannot drop uP2; the cheapest f=3
// upgrades instead add one FPGA design plus its bus (+$70) — the
// deterministic enumeration surfaces the D3 variant among the three
// equal-cost options.
func TestUpgradeFromCheapestBox(t *testing.T) {
	s := models.SetTopBox()
	r := Upgrade(s, spec.NewAllocation("uP2"), Options{})
	want := [][2]float64{{170, 3}, {230, 4}, {290, 5}, {360, 7}, {430, 8}}
	if len(r.Front) != len(want) {
		t.Fatalf("upgrade front size = %d, want %d: %v", len(r.Front), len(want), r.Front)
	}
	for i, w := range want {
		if r.Front[i].Cost != w[0] || r.Front[i].Flexibility != w[1] {
			t.Errorf("row %d = (%v,%v), want (%v,%v)",
				i, r.Front[i].Cost, r.Front[i].Flexibility, w[0], w[1])
		}
		if !spec.NewAllocation("uP2").Subset(r.Front[i].Allocation) {
			t.Errorf("row %d discards deployed hardware: %v", i, r.Front[i].Allocation)
		}
	}
	// First upgrade adds exactly one design and the bus C1.
	if !r.Front[0].Allocation.Equal(spec.NewAllocation("uP2", "C1", "dD3")) {
		t.Errorf("first upgrade = %v, want {C1 dD3 uP2}", r.Front[0].Allocation)
	}
}

// TestUpgradePreservesBaseBehaviours: every upgrade implements a
// superset of the base implementation's clusters — the guarantee the
// paper notes Pop et al.'s probabilistic approach cannot give.
func TestUpgradePreservesBaseBehaviours(t *testing.T) {
	s := models.SetTopBox()
	base := spec.NewAllocation("uP1")
	baseImpl := Implement(s, base, Options{}, nil)
	if baseImpl == nil {
		t.Fatal("base should implement")
	}
	r := Upgrade(s, base, Options{})
	baseClusters := map[hgraph.ID]bool{}
	for _, c := range baseImpl.Clusters {
		baseClusters[c] = true
	}
	for _, im := range r.Front {
		have := map[hgraph.ID]bool{}
		for _, c := range im.Clusters {
			have[c] = true
		}
		for c := range baseClusters {
			if !have[c] {
				t.Errorf("upgrade %v lost base cluster %s", im, c)
			}
		}
		if im.Flexibility <= baseImpl.Flexibility {
			t.Errorf("upgrade %v does not improve on base f=%g", im, baseImpl.Flexibility)
		}
	}
}

// TestUpgradeFromMaxedOut: upgrading the richest box yields an empty
// front (nothing to gain).
func TestUpgradeFromMaxedOut(t *testing.T) {
	s := models.SetTopBox()
	r := Upgrade(s, spec.NewAllocation("uP2", "A1", "dD3", "C1", "C2"), Options{})
	if len(r.Front) != 0 {
		t.Errorf("no upgrade should exist beyond f=8, got %v", r.Front)
	}
}

// TestUpgradeFromEmptyEqualsExplore: with an empty base, Upgrade
// degenerates to a full exploration (same front values).
func TestUpgradeFromEmptyEqualsExplore(t *testing.T) {
	s := models.SetTopBox()
	up := Upgrade(s, spec.Allocation{}, Options{})
	ex := Explore(s, Options{})
	if len(up.Front) != len(ex.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(up.Front), len(ex.Front))
	}
	for i := range ex.Front {
		if up.Front[i].Cost != ex.Front[i].Cost || up.Front[i].Flexibility != ex.Front[i].Flexibility {
			t.Errorf("row %d differs", i)
		}
	}
}

// Property: on synthetic models, upgrades are supersets of the base and
// monotone in flexibility; the upgrade front never beats the fresh
// front at equal flexibility.
func TestPropUpgradeConsistent(t *testing.T) {
	prop := func(seed int64) bool {
		p := models.SyntheticParams{
			Seed: seed % 40, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
			Processors: 2, ASICs: 1, Designs: 1, Buses: 2,
			TimedFraction: 0.3, AccelOnlyFraction: 0.3,
		}
		s := models.Synthetic(p)
		base := spec.NewAllocation("uP1")
		baseImpl := Implement(s, base, Options{}, nil)
		if baseImpl == nil {
			return true
		}
		up := Upgrade(s, base, Options{})
		fresh := Explore(s, Options{})
		freshCost := map[float64]float64{} // flexibility -> cheapest cost
		for _, im := range fresh.Front {
			freshCost[im.Flexibility] = im.Cost
		}
		for _, im := range up.Front {
			if !base.Subset(im.Allocation) {
				return false
			}
			if im.Flexibility <= baseImpl.Flexibility {
				return false
			}
			if fc, ok := freshCost[im.Flexibility]; ok && im.Cost < fc {
				return false // upgrade cannot be cheaper than fresh design
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpgrade(b *testing.B) {
	s := models.SetTopBox()
	base := spec.NewAllocation("uP2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Upgrade(s, base, Options{})
		if len(r.Front) != 5 {
			b.Fatal("wrong upgrade front")
		}
	}
}
