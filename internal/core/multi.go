package core

import (
	"context"
	"math"

	"repro/internal/alloc"
	"repro/internal/bind"
	"repro/internal/bitset"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// Objective is one minimized criterion evaluated on an implementation.
// The paper's Section 4 motivates more than two objectives ("execution
// time, cost, area, power consumption, weight, etc."); ExploreMulti
// generalizes the flexibility/cost exploration to any objective vector.
type Objective struct {
	Name string
	// Eval extracts the minimized value.
	Eval func(s *spec.Spec, im *Implementation) float64
	// LowerBound, if non-nil, bounds the best achievable value for any
	// implementation of the given allocation; used for dominance
	// pruning. A nil LowerBound contributes 0 (no pruning power).
	LowerBound func(s *spec.Spec, a spec.Allocation) float64
}

// CostObjective minimizes the allocation cost.
func CostObjective() Objective {
	return Objective{
		Name: "cost",
		Eval: func(s *spec.Spec, im *Implementation) float64 { return im.Cost },
		LowerBound: func(s *spec.Spec, a spec.Allocation) float64 {
			return a.Cost(s)
		},
	}
}

// InvFlexibilityObjective minimizes 1/flexibility (the paper's second
// criterion).
func InvFlexibilityObjective() Objective {
	return Objective{
		Name: "1/flexibility",
		Eval: func(s *spec.Spec, im *Implementation) float64 {
			if im.Flexibility <= 0 {
				return math.Inf(1)
			}
			return 1 / im.Flexibility
		},
		LowerBound: func(s *spec.Spec, a spec.Allocation) float64 {
			est := Estimate(s, a, Options{})
			if est <= 0 {
				return math.Inf(1)
			}
			return 1 / est
		},
	}
}

// MeanLatencyObjective minimizes the mean, over implemented behaviours,
// of the latency-optimal total execution time — the refinement
// criterion: a platform that is flexible *and* fast.
func MeanLatencyObjective() Objective {
	return Objective{
		Name: "mean-latency",
		Eval: func(s *spec.Spec, im *Implementation) float64 {
			if len(im.Behaviours) == 0 {
				return math.Inf(1)
			}
			total := 0.0
			for _, beh := range im.Behaviours {
				fp, err := s.Problem.Flatten(beh.ECS.Selection)
				if err != nil {
					return math.Inf(1)
				}
				av, err := s.ArchViewFor(im.Allocation, beh.ArchSelection)
				if err != nil {
					return math.Inf(1)
				}
				best, ok := bind.FindMinLatency(s, fp, av, bind.Options{Timing: bind.TimingPaper})
				if !ok {
					return math.Inf(1)
				}
				total += bind.TotalLatency(s, best.Binding)
			}
			return total / float64(len(im.Behaviours))
		},
	}
}

// ResourceSumObjective minimizes the sum of a numeric attribute (e.g. a
// "power" annotation) over the allocated resources.
func ResourceSumObjective(attr string) Objective {
	sum := func(s *spec.Spec, a spec.Allocation) float64 {
		total := 0.0
		for _, r := range a.Resources(s) {
			if v := s.Arch.VertexByID(r); v != nil {
				total += v.Attrs.GetDefault(attr, 0)
			}
		}
		return total
	}
	return Objective{
		Name: attr,
		Eval: func(s *spec.Spec, im *Implementation) float64 {
			return sum(s, im.Allocation)
		},
		LowerBound: sum,
	}
}

// MultiResult is the outcome of a multi-objective exploration.
type MultiResult struct {
	// Front holds the non-dominated implementations with their
	// objective vectors (parallel slices, sorted lexicographically by
	// vector).
	Front      []*Implementation
	Objectives [][]float64
	Names      []string
	// Interrupted/Reason/Cursor carry the anytime-termination state,
	// with the same semantics as Result: an interrupted front is the
	// exact non-dominated set of the explored cost-ordered prefix.
	Interrupted bool
	Reason      Reason
	Cursor      int
	Stats       Stats
}

// ExploreMulti explores the possible resource allocations under an
// arbitrary objective vector. Candidates still arrive in nondecreasing
// cost; a candidate is pruned when its best-case vector (per-objective
// lower bounds) is already dominated or matched by an archived point.
// With exactly {CostObjective, InvFlexibilityObjective} the result
// coincides with Explore (property-tested), but the pruning is weaker
// than EXPLORE's scalar bound, which exploits the cost ordering.
func ExploreMulti(s *spec.Spec, opts Options, objectives []Objective) *MultiResult {
	return ExploreMultiContext(context.Background(), s, opts, objectives)
}

// ExploreMultiContext is ExploreMulti under a context: cancellation or
// deadline expiry stops the cost-ordered scan cleanly and returns the
// best-so-far front with Interrupted set and Cursor at the first
// unevaluated candidate.
func ExploreMultiContext(ctx context.Context, s *spec.Spec, opts Options, objectives []Objective) *MultiResult {
	if len(objectives) == 0 {
		objectives = []Objective{CostObjective(), InvFlexibilityObjective()}
	}
	res := &MultiResult{Reason: ReasonCompleted}
	for _, o := range objectives {
		res.Names = append(res.Names, o.Name)
	}
	front := &pareto.Front{}
	ev := newEvaluator(s, opts)
	_, _, pc, _ := s.Problem.ElementCount()
	aStats := enumerateRange(s, opts, opts.producersFor(1, len(alloc.Units(s))), 0, func(c alloc.Candidate) bool {
		if ctx.Err() != nil {
			res.Interrupted, res.Reason = true, reasonFor(ctx)
			return false
		}
		res.Stats.PossibleAllocations++
		res.Cursor++
		res.Stats.Estimated++
		if !opts.DisableFlexBound {
			best := make([]float64, len(objectives))
			for i, o := range objectives {
				if o.LowerBound != nil {
					best[i] = o.LowerBound(s, c.Allocation)
				}
			}
			if front.DominatesPoint(best) {
				return true
			}
		}
		res.Stats.Attempted++
		im := ev.implement(c.Allocation, bitset.Set{}, false, &res.Stats)
		if im == nil {
			return true
		}
		res.Stats.Feasible++
		vec := make([]float64, len(objectives))
		for i, o := range objectives {
			vec[i] = o.Eval(s, im)
		}
		front.Add(&pareto.Entry{Objectives: vec, Value: im})
		return true
	})
	ev.fold(&res.Stats)
	res.Stats.Scanned = aStats.Scanned
	res.Stats.AllocSpace = aStats.SearchSpace
	res.Stats.DesignSpace = aStats.SearchSpace * alloc.SearchSpace(pc)
	res.Stats.Pipeline.Producers = aStats.Producers
	res.Stats.Pipeline.ProducerBusyNanos = aStats.ProducerBusyNanos
	res.Stats.Pipeline.MergeStalls = aStats.MergeStalls
	if res.Reason == ReasonCompleted && opts.MaxScan > 0 && aStats.Scanned >= opts.MaxScan {
		res.Reason = ReasonScanBound
	}
	for _, e := range front.Entries() {
		res.Front = append(res.Front, e.Value.(*Implementation))
		res.Objectives = append(res.Objectives, e.Objectives)
	}
	return res
}
