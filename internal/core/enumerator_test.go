package core

import (
	"reflect"
	"testing"

	"repro/internal/alloc"
	"repro/internal/models"
	"repro/internal/spec"
)

// TestEnumeratorResolution pins the dispatch rule: explicit choices
// win, auto (in both spellings) switches on the unit count, and a
// misspelled enumerator panics instead of silently falling back.
func TestEnumeratorResolution(t *testing.T) {
	cases := []struct {
		e    Enumerator
		n    int
		want Enumerator
	}{
		{EnumeratorAuto, autoSymbolicUnits, EnumeratorBitset},
		{EnumeratorAuto, autoSymbolicUnits + 1, EnumeratorSymbolic},
		{Enumerator("auto"), autoSymbolicUnits, EnumeratorBitset},
		{Enumerator("auto"), autoSymbolicUnits + 1, EnumeratorSymbolic},
		{EnumeratorBitset, 1000, EnumeratorBitset},
		{EnumeratorSymbolic, 1, EnumeratorSymbolic},
	}
	for _, tc := range cases {
		if got := (Options{Enumerator: tc.e}).enumeratorFor(tc.n); got != tc.want {
			t.Errorf("enumeratorFor(%q, %d) = %q, want %q", tc.e, tc.n, got, tc.want)
		}
	}
	for _, s := range []string{"", "auto", "bitset", "symbolic"} {
		if !ValidEnumerator(s) {
			t.Errorf("ValidEnumerator(%q) = false, want true", s)
		}
	}
	for _, s := range []string{"bdd", "Bitset", "symbolic "} {
		if ValidEnumerator(s) {
			t.Errorf("ValidEnumerator(%q) = true, want false", s)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("enumeratorFor on an unknown value did not panic")
			}
		}()
		(Options{Enumerator: "bogus"}).enumeratorFor(5)
	}()

	// The paper's case study must stay on the bitset scan under auto —
	// that is what keeps the seed's goldens and Scanned figures intact.
	if n := len(alloc.Units(models.SetTopBox())); n > autoSymbolicUnits {
		t.Errorf("set-top box has %d units, above the auto threshold %d", n, autoSymbolicUnits)
	}
}

// TestEnumeratorDifferentialGrid (acceptance): across specifications,
// worker counts, batch sizes, and resume splits, exploring with the
// symbolic enumerator returns bit-identical fronts, cursors, reasons
// and semantic counters to the bitset scan. CI runs this under -race.
//
// MaxScan is deliberately absent from the grid: it is an
// enumerator-specific effort budget (subsets scanned vs BDD nodes
// visited), so a budgeted run legitimately stops at different stream
// positions under the two producers.
func TestEnumeratorDifferentialGrid(t *testing.T) {
	synth := func(seed int64) *spec.Spec {
		return models.Synthetic(models.SyntheticParams{
			Seed: seed, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
			Processors: 2, ASICs: 2, Designs: 2, Buses: 3,
			TimedFraction: 0.3, AccelOnlyFraction: 0.3,
		})
	}
	specs := []struct {
		name string
		s    *spec.Spec
		opts Options
		// stopEarly marks runs that end before the scan is exhausted.
		// There a parallel producer legitimately enumerates ahead of the
		// stop decision still in flight, so PossibleAllocations may
		// overshoot the sequential baseline (see
		// TestPipelineDifferentialGrid); everything committed — fronts,
		// cursor, reason, evaluation counters — must still be identical.
		stopEarly bool
	}{
		{"settop", models.SetTopBox(), Options{}, false},
		{"decoder", models.Decoder(), Options{}, false},
		{"synth3", synth(3), Options{}, false},
		{"synth7-nobound", synth(7), Options{DisableFlexBound: true}, false},
		{"settop-stopmax", models.SetTopBox(), Options{StopAtMaxFlex: true}, true},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			bitOpts := tc.opts
			bitOpts.Enumerator = EnumeratorBitset
			symOpts := tc.opts
			symOpts.Enumerator = EnumeratorSymbolic
			bit := Explore(tc.s, bitOpts)

			compare := func(label string, sym *Result) {
				t.Helper()
				sameFronts(t, bit, sym)
				if sym.Cursor != bit.Cursor {
					t.Errorf("%s: cursor %d != bitset %d", label, sym.Cursor, bit.Cursor)
				}
				if sym.Reason != bit.Reason {
					t.Errorf("%s: reason %q != bitset %q", label, sym.Reason, bit.Reason)
				}
				ss, bs := sym.Stats.Semantic(), bit.Stats.Semantic()
				if tc.stopEarly {
					if ss.PossibleAllocations < bs.PossibleAllocations {
						t.Errorf("%s: enumerated less than the sequential bitset run", label)
					}
					ss.PossibleAllocations, bs.PossibleAllocations = 0, 0
				}
				if !reflect.DeepEqual(ss, bs) {
					t.Errorf("%s: semantic stats diverge:\nsym: %+v\nbit: %+v", label, ss, bs)
				}
			}

			compare("sequential", Explore(tc.s, symOpts))
			for _, w := range []int{2, 4, 8} {
				for _, b := range []int{1, 64, 0} { // 0 = adaptive ramp
					opts := symOpts
					opts.Batch = b
					compare("parallel", ExploreParallel(tc.s, opts, w, 2*w))
				}
			}

			if tc.opts.StopAtMaxFlex {
				// The early-stop cursor depends only on the stream, which
				// the cases above already pin; the resume split below
				// needs the full scan.
				return
			}
			// Cross-enumerator resume: interrupt a bitset run mid-scan
			// and continue it symbolically (sequential and parallel).
			// The shared candidate stream makes the snapshot
			// interchangeable, cursor for cursor.
			k := bit.Stats.PossibleAllocations / 2
			if k == 0 {
				k = 1
			}
			part := cancelAt(tc.s, bitOpts, k)
			if !part.Interrupted || part.Cursor != k {
				t.Fatalf("interrupt failed: interrupted=%v cursor=%d", part.Interrupted, part.Cursor)
			}
			res := &Resume{Cursor: part.Cursor, Front: part.Front, Stats: part.Stats}
			resOpts := symOpts
			resOpts.Resume = res
			compare("resume-seq", Explore(tc.s, resOpts))
			compare("resume-par", ExploreParallel(tc.s, resOpts, 4, 8))
		})
	}
}
