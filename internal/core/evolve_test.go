package core

import (
	"testing"

	"repro/internal/hgraph"
	"repro/internal/models"
	"repro/internal/spec"
)

// TestIncrementalNewStandard plays the paper's §1 incremental-design
// scenario end to end: after the Set-Top boxes ship, a fourth
// decryption standard D4 appears (implementable on the ASICs or, more
// cheaply, on a new FPGA design). Evolving the specification and
// re-exploring upgrades of each deployed box quantifies the cost of the
// new standard per installed platform — with the guarantee that the
// shipped behaviours survive.
func TestIncrementalNewStandard(t *testing.T) {
	s := models.SetTopBox()

	// Evolve the architecture first: the FPGA gains a D4 design. (The
	// architecture graph is also hierarchical; AddCluster works there
	// alike.)
	d4design := &hgraph.Cluster{
		ID: "dD4", Name: "dD4",
		Vertices:    []*hgraph.Vertex{{ID: "D4", Name: "D4", Attrs: hgraph.Attrs{spec.AttrCost: 65}}},
		PortBinding: map[string]hgraph.ID{"bus": "D4"},
	}
	if err := s.Arch.AddCluster("FPGA", d4design); err != nil {
		t.Fatal(err)
	}
	// Then the behaviour: decryption variant γD4.
	d4 := &hgraph.Cluster{
		ID: "gD4", Name: "gD4",
		Vertices: []*hgraph.Vertex{{
			ID: "PD4", Name: "PD4", Attrs: hgraph.Attrs{spec.AttrPeriod: models.TVPeriod},
		}},
		PortBinding: map[string]hgraph.ID{"in": "PD4", "out": "PD4"},
	}
	if err := s.AddBehaviour("ID", d4, []*spec.Mapping{
		{Process: "PD4", Resource: "A1", Latency: 30},
		{Process: "PD4", Resource: "A2", Latency: 28},
		{Process: "PD4", Resource: "D4", Latency: 70},
	}); err != nil {
		t.Fatal(err)
	}

	// The evolved specification has one more cluster and a max
	// flexibility of 9.
	if got := MaxFlexibility(s, Options{}); got != 9 {
		t.Errorf("evolved max flexibility = %v, want 9", got)
	}

	// Upgrading the deployed $100 box to cover D4: cheapest extension
	// adds the D4 design and the FPGA bus.
	up := Upgrade(s, spec.NewAllocation("uP2"), Options{})
	if len(up.Front) == 0 {
		t.Fatal("upgrades must exist")
	}
	// The cheapest upgrade may still prefer an unrelated variant (D3 is
	// cheaper than D4), but the upgrade path must eventually implement
	// the new standard.
	found := false
	for _, im := range up.Front {
		for _, c := range im.Clusters {
			if c == "gD4" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no upgrade implements the new standard gD4")
	}

	// Full re-exploration: the evolved front's maximum reaches f=9.
	r := Explore(s, Options{})
	last := r.Front[len(r.Front)-1]
	if last.Flexibility != 9 {
		t.Errorf("evolved front max f = %v, want 9", last.Flexibility)
	}
}

// TestEvolveRollbacks: invalid evolutions leave the specification
// untouched.
func TestEvolveRollbacks(t *testing.T) {
	s := models.SetTopBox()
	before := len(s.Mappings)

	// Unknown interface.
	err := s.AddBehaviour("NOPE", &hgraph.Cluster{ID: "x"}, nil)
	if err == nil {
		t.Error("unknown interface must fail")
	}
	// Duplicate cluster ID.
	err = s.AddBehaviour("ID", &hgraph.Cluster{ID: "gD1"}, nil)
	if err == nil {
		t.Error("duplicate cluster ID must fail")
	}
	// Invalid mapping (unknown resource) must roll back the cluster.
	bad := &hgraph.Cluster{
		ID: "gDx", Vertices: []*hgraph.Vertex{{ID: "PDx"}},
		PortBinding: map[string]hgraph.ID{"in": "PDx", "out": "PDx"},
	}
	err = s.AddBehaviour("ID", bad, []*spec.Mapping{{Process: "PDx", Resource: "GHOST"}})
	if err == nil {
		t.Error("unknown resource must fail")
	}
	if s.Problem.ClusterByID("gDx") != nil {
		t.Error("failed evolution left the cluster behind")
	}
	if len(s.Mappings) != before {
		t.Error("failed evolution changed the mappings")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("spec corrupted: %v", err)
	}
	// The front is unchanged.
	r := Explore(s, Options{})
	if len(r.Front) != 6 {
		t.Errorf("front size = %d after rollbacks, want 6", len(r.Front))
	}
}

// TestRemoveBehaviour: discontinuing a variant lowers flexibility and
// removes its mappings.
func TestRemoveBehaviour(t *testing.T) {
	s := models.SetTopBox()
	if err := s.RemoveBehaviour("gD3"); err != nil {
		t.Fatal(err)
	}
	if s.Problem.ClusterByID("gD3") != nil {
		t.Error("gD3 still present")
	}
	if len(s.MappingsFor("PD3")) != 0 {
		t.Error("PD3 mappings survived")
	}
	if got := MaxFlexibility(s, Options{}); got != 7 {
		t.Errorf("max flexibility without gD3 = %v, want 7", got)
	}
	// Removing the last uncompression cluster chain is rejected at one
	// remaining cluster.
	if err := s.RemoveBehaviour("gU1"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveBehaviour("gU2"); err == nil {
		t.Error("removing the last cluster of IU must fail")
	}
	if err := s.RemoveBehaviour("nope"); err == nil {
		t.Error("unknown cluster must fail")
	}
}
