package core

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/bind"
	"repro/internal/bitset"
	"repro/internal/cover"
	"repro/internal/flex"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// evaluator is the per-run candidate-evaluation engine behind the
// explorers. It carries the three caches the cost-ordered scan can
// exploit across candidates:
//
//   - interned problem flattenings keyed by the canonical ECS
//     selection, so each elementary cluster activation is flattened
//     once per run instead of once per (candidate × ECS);
//   - interned architecture flattenings keyed by the canonical
//     architecture selection, for the same reason;
//   - a binding memo keyed by (ECS selection, architecture selection)
//     holding, per present-resource set, the solver outcome, with a
//     monotone-dominance rule: a binding found feasible under a
//     resource set stays feasible under any superset (extra resources
//     only add present vertices and links, and the timing tests depend
//     only on the binding itself), so it is replayed — and verified
//     with bind.Check — instead of rerun; an ECS proven infeasible on
//     a resource superset (by an untruncated search) is skipped on any
//     subset.
//
// The feasible-superset replay is gated on Options.MaxBindNodes == 0:
// a truncated search is not monotone (a larger search space can
// truncate before finding the solution the smaller one found), so with
// a node bound only exact-key hits — deterministic replays of the very
// same inputs — are reused, and infeasible-by-truncation outcomes are
// never used as dominance proofs.
//
// On top of the caches, the evaluator keeps cluster/activation/resource
// sets as dense bitsets (internal/bitset) over per-run indexers instead
// of map[hgraph.ID]bool, cutting the per-candidate allocation count.
//
// All caches are sharded and mutex-striped, so one evaluator is shared
// by the parallel explorer's workers; counters are atomics, folded into
// Stats.Cache at progress emissions and on completion.
//
// With Options.DisableCache the evaluator degrades to the exported
// Implement/Estimate functions — the uncached reference the
// differential tests compare against.
type evaluator struct {
	s      *spec.Spec
	opts   Options
	legacy bool

	sup *alloc.Supporter

	flats *shardMap // ECS selection string -> *flatSlot
	archs *shardMap // arch selection string -> *flatSlot
	binds *shardMap // ECS key + "\x00" + arch key -> *bindMemo
	ecss  *shardMap // supportable-set key -> *ecsSlot
	views *shardMap // arch key + "\x00" + present key -> *viewSlot

	base CacheStats // counters carried over from Options.Resume

	flattenHits    atomic.Int64
	flattenMisses  atomic.Int64
	archHits       atomic.Int64
	archMisses     atomic.Int64
	bindExactHits  atomic.Int64
	bindReplayHits atomic.Int64
	bindInfeasHits atomic.Int64
	bindMisses     atomic.Int64
	supportReused  atomic.Int64
}

// newEvaluator builds the evaluation engine for one exploration run.
func newEvaluator(s *spec.Spec, opts Options) *evaluator {
	ev := &evaluator{s: s, opts: opts, legacy: opts.DisableCache}
	if ev.legacy {
		return ev
	}
	ev.sup = alloc.NewSupporter(s)
	ev.flats = newShardMap()
	ev.archs = newShardMap()
	ev.binds = newShardMap()
	ev.ecss = newShardMap()
	ev.views = newShardMap()
	if opts.Resume != nil {
		ev.base = opts.Resume.Stats.Cache
	}
	return ev
}

// snapshot reads the atomic counters into a CacheStats.
func (ev *evaluator) snapshot() CacheStats {
	return CacheStats{
		FlattenHits:        int(ev.flattenHits.Load()),
		FlattenMisses:      int(ev.flattenMisses.Load()),
		ArchFlattenHits:    int(ev.archHits.Load()),
		ArchFlattenMisses:  int(ev.archMisses.Load()),
		BindExactHits:      int(ev.bindExactHits.Load()),
		BindReplayHits:     int(ev.bindReplayHits.Load()),
		BindInfeasibleHits: int(ev.bindInfeasHits.Load()),
		BindMisses:         int(ev.bindMisses.Load()),
		SupportableReused:  int(ev.supportReused.Load()),
	}
}

// fold publishes the cache counters (continued from any Resume base)
// into the run's stats. Safe to call repeatedly; the counters are
// cumulative.
func (ev *evaluator) fold(st *Stats) {
	if ev.legacy {
		return
	}
	st.Cache = ev.base.plus(ev.snapshot())
}

// estimate computes the flexibility estimation for an allocation and
// returns the supportable-cluster set alongside, so the caller can hand
// it to implement and avoid the historical double computation. The
// boolean reports whether the set is valid (false on the legacy path).
func (ev *evaluator) estimate(a spec.Allocation) (float64, bitset.Set, bool) {
	if ev.legacy {
		return Estimate(ev.s, a, ev.opts), bitset.Set{}, false
	}
	sup := ev.sup.SupportableOf(a)
	return ev.flexOfBits(sup), sup, true
}

func (ev *evaluator) flexOfBits(set bitset.Set) float64 {
	act := flex.FromBits(set, ev.sup.Clusters)
	if ev.opts.Weighted {
		return flex.WeightedFlexibility(ev.s.Problem, act)
	}
	return flex.Flexibility(ev.s.Problem, act)
}

// implement is Implement through the caches. sup is the supportable set
// computed by estimate (haveSup false when the caller has none, e.g.
// the multi-objective and sampling explorers, which skip estimation).
func (ev *evaluator) implement(a spec.Allocation, sup bitset.Set, haveSup bool, stats *Stats) *Implementation {
	if ev.legacy {
		return Implement(ev.s, a, ev.opts, stats)
	}
	if stats == nil {
		stats = &Stats{}
	}
	if haveSup {
		ev.supportReused.Add(1)
	} else {
		sup = ev.sup.SupportableOf(a)
	}
	avail := ev.sup.AvailOf(a)
	cix := ev.sup.Clusters
	rix := ev.sup.Resources

	feasible := bitset.New(cix.Len())
	var behaviours []Behaviour

	// Architecture configurations, through the interned flattenings.
	type viewEntry struct {
		av         *spec.ArchView
		key        string
		present    bitset.Set
		presentKey string
	}
	var views []viewEntry
	a.EnumerateArchSelections(ev.s, func(sel hgraph.Selection) bool {
		key := sel.String()
		fg, ok := ev.archFlat(key, sel)
		if !ok {
			return true
		}
		present := bitset.New(rix.Len())
		for _, v := range fg.Vertices {
			if i, ok := rix.Index(v.ID); ok && avail.Has(i) {
				present.Add(i)
			}
		}
		presentKey := present.Key()
		views = append(views, viewEntry{
			av:         ev.viewFor(key+"\x00"+presentKey, fg, present, sel),
			key:        key,
			present:    present,
			presentKey: presentKey,
		})
		return true
	})

	tested := 0
	maxECS := ev.opts.maxECS()
	list := ev.ecsList(sup)
	for i := range list {
		en := &list[i]
		tested++
		// Novelty: skip an ECS whose clusters are all covered already
		// (unless every behaviour is wanted).
		if !ev.opts.AllBehaviours && en.bits.SubsetOf(feasible) {
			if tested >= maxECS {
				break
			}
			continue
		}
		stats.ECSTested++
		if !en.fpok {
			if tested >= maxECS {
				break
			}
			continue
		}
		for _, ve := range views {
			b, ok := ev.bindFor(en.key, ve.key, ve.present, ve.presentKey, en.fp, ve.av, stats)
			if ok {
				feasible.UnionWith(en.bits)
				behaviours = append(behaviours, Behaviour{
					ECS: en.e, ArchSelection: ve.av.Selection, Binding: b,
				})
				break
			}
		}
		if tested >= maxECS {
			break
		}
	}

	implemented := flex.ActivatableSet(ev.s.Problem, feasible, cix)
	f := ev.flexOfBits(implemented)
	if f <= 0 {
		return nil
	}
	clusters := cix.IDs(implemented)
	kept := behaviours[:0]
	for _, b := range behaviours {
		all := true
		for _, c := range b.ECS.Clusters {
			if i, ok := cix.Index(c); !ok || !implemented.Has(i) {
				all = false
				break
			}
		}
		if all {
			kept = append(kept, b)
		}
	}
	return &Implementation{
		Allocation:  a.Clone(),
		Cost:        a.Cost(ev.s),
		Flexibility: f,
		Clusters:    clusters,
		Behaviours:  kept,
	}
}

// ecsEntry is one elementary cluster activation of a supportable set,
// with everything the per-candidate loop needs precomputed: the
// canonical selection key, the activated-cluster bitset, and the
// interned problem flattening.
type ecsEntry struct {
	e    cover.ECS
	key  string
	bits bitset.Set
	fp   *hgraph.FlatGraph
	fpok bool
}

// ecsSlot interns the ECS enumeration of one supportable-cluster set.
type ecsSlot struct {
	once sync.Once
	list []ecsEntry
}

// ecsList returns the interned ECS enumeration for a supportable set.
// The enumeration order is deterministic in the set, so candidates with
// equal supportable sets iterate byte-identical lists — the cover walk,
// the selection keys and the cluster bitsets are paid once per distinct
// set instead of once per candidate. The entries are shared and must be
// treated as read-only.
func (ev *evaluator) ecsList(sup bitset.Set) []ecsEntry {
	v, _ := ev.ecss.getOrCreate(sup.Key(), func() any { return &ecsSlot{} })
	slot := v.(*ecsSlot)
	slot.once.Do(func() {
		cix := ev.sup.Clusters
		cover.EnumerateFunc(ev.s.Problem, func(id hgraph.ID) bool {
			i, ok := cix.Index(id)
			return ok && sup.Has(i)
		}, func(e cover.ECS) bool {
			en := ecsEntry{e: e, key: e.Selection.String(), bits: bitset.New(cix.Len())}
			for _, c := range e.Clusters {
				if i, ok := cix.Index(c); ok {
					en.bits.Add(i)
				}
			}
			en.fp, en.fpok = ev.flatProblem(en.key, e.Selection)
			slot.list = append(slot.list, en)
			return true
		})
	})
	return slot.list
}

// viewSlot interns one architecture view.
type viewSlot struct {
	once sync.Once
	av   *spec.ArchView
}

// viewFor returns the interned architecture view for an (architecture
// selection, present-resource set) pair. Distinct allocations frequently
// induce the same present set on a given flattening — resources outside
// the selected design do not change the view — so the adjacency build
// is shared across them.
func (ev *evaluator) viewFor(key string, fg *hgraph.FlatGraph, present bitset.Set, sel hgraph.Selection) *spec.ArchView {
	v, _ := ev.views.getOrCreate(key, func() any { return &viewSlot{} })
	slot := v.(*viewSlot)
	slot.once.Do(func() {
		rix := ev.sup.Resources
		slot.av = ev.s.ArchViewFromFlat(fg, func(id hgraph.ID) bool {
			i, ok := rix.Index(id)
			return ok && present.Has(i)
		}, sel)
	})
	return slot.av
}

// flatSlot interns one flattening; the Once gives single-flight
// construction under concurrent lookups.
type flatSlot struct {
	once sync.Once
	fg   *hgraph.FlatGraph
	ok   bool
}

// flatProblem returns the interned problem flattening for an ECS
// selection, flattening (and precomputing adjacency, for concurrent
// readers) on first use.
func (ev *evaluator) flatProblem(key string, sel hgraph.Selection) (*hgraph.FlatGraph, bool) {
	v, created := ev.flats.getOrCreate(key, func() any { return &flatSlot{} })
	if created {
		ev.flattenMisses.Add(1)
	} else {
		ev.flattenHits.Add(1)
	}
	slot := v.(*flatSlot)
	slot.once.Do(func() {
		if fg, err := ev.s.Problem.Flatten(sel); err == nil {
			fg.Precompute()
			slot.fg, slot.ok = fg, true
		}
	})
	return slot.fg, slot.ok
}

// archFlat returns the interned partial architecture flattening for an
// architecture selection.
func (ev *evaluator) archFlat(key string, sel hgraph.Selection) (*hgraph.FlatGraph, bool) {
	v, created := ev.archs.getOrCreate(key, func() any { return &flatSlot{} })
	if created {
		ev.archMisses.Add(1)
	} else {
		ev.archHits.Add(1)
	}
	slot := v.(*flatSlot)
	slot.once.Do(func() {
		if fg, err := ev.s.Arch.FlattenPartial(sel); err == nil {
			fg.Precompute()
			slot.fg, slot.ok = fg, true
		}
	})
	return slot.fg, slot.ok
}

// bindOutcome is one memoized solver verdict for a present-resource
// set under a fixed (ECS, arch selection) pair.
type bindOutcome struct {
	present bitset.Set
	ok      bool
	binding bind.Binding
	// proof reports the infeasibility was established by an untruncated
	// search and may therefore be used as a subset-dominance proof.
	proof bool
}

// bindMemo collects the outcomes of one (ECS, arch selection) pair.
type bindMemo struct {
	mu         sync.Mutex
	exact      map[string]*bindOutcome
	feasible   []*bindOutcome
	infeasible []*bindOutcome
}

// bindFor decides binding feasibility of the flattened ECS fp on the
// view av through the memo: exact present-set recurrence replays the
// stored verdict; a feasible binding under a subset is replayed and
// verified under the present superset (unbounded solver only); an
// infeasibility proven on a superset dominates the present subset.
// Only on a miss does the solver run, and its outcome is stored.
func (ev *evaluator) bindFor(ecsKey, archKey string, present bitset.Set, presentKey string, fp *hgraph.FlatGraph, av *spec.ArchView, stats *Stats) (bind.Binding, bool) {
	v, _ := ev.binds.getOrCreate(ecsKey+"\x00"+archKey, func() any {
		return &bindMemo{exact: map[string]*bindOutcome{}}
	})
	m := v.(*bindMemo)

	m.mu.Lock()
	if o, ok := m.exact[presentKey]; ok {
		m.mu.Unlock()
		ev.bindExactHits.Add(1)
		if o.ok {
			return o.binding.Clone(), true
		}
		return nil, false
	}
	for _, o := range m.infeasible {
		if o.proof && present.SubsetOf(o.present) {
			m.mu.Unlock()
			ev.bindInfeasHits.Add(1)
			return nil, false
		}
	}
	var replay *bindOutcome
	if ev.opts.MaxBindNodes == 0 {
		for _, o := range m.feasible {
			if o.present.SubsetOf(present) {
				replay = o
				break
			}
		}
	}
	m.mu.Unlock()

	bopts := bind.Options{Timing: ev.opts.Timing, MaxNodes: ev.opts.MaxBindNodes}
	if replay != nil {
		// Monotone dominance: the binding stays feasible when resources
		// are only added. Verify anyway — Check is far cheaper than the
		// solver — and fall back to a full solve if it ever disagrees.
		if bind.Check(ev.s, fp, av, replay.binding, bopts) == nil {
			ev.bindReplayHits.Add(1)
			out := &bindOutcome{present: present, ok: true, binding: replay.binding}
			m.mu.Lock()
			m.exact[presentKey] = out
			m.mu.Unlock()
			return replay.binding.Clone(), true
		}
	}

	ev.bindMisses.Add(1)
	stats.BindingRuns++
	res, ok := bind.Find(ev.s, fp, av, bopts)
	stats.BindingNodes += res.Nodes
	out := &bindOutcome{present: present, ok: ok}
	if ok {
		// Store a private copy: the solver's map goes to the caller's
		// Behaviour, the memo keeps its own.
		out.binding = res.Binding.Clone()
	} else {
		out.proof = !res.Truncated
	}
	m.mu.Lock()
	m.exact[presentKey] = out
	if ok {
		m.feasible = append(m.feasible, out)
	} else if out.proof {
		m.infeasible = append(m.infeasible, out)
	}
	m.mu.Unlock()
	if ok {
		return res.Binding, true
	}
	return nil, false
}

// shardMap is a mutex-striped string-keyed map shared by the parallel
// explorer's workers; striping keeps contention off the hot path.
type shardMap struct {
	seed   maphash.Seed
	shards [32]shard
}

type shard struct {
	mu sync.Mutex
	m  map[string]any
}

func newShardMap() *shardMap {
	sm := &shardMap{seed: maphash.MakeSeed()}
	for i := range sm.shards {
		sm.shards[i].m = map[string]any{}
	}
	return sm
}

// getOrCreate returns the value under key, creating it with mk while
// holding only the shard's lock. The boolean reports creation (a cache
// miss). mk must be cheap; expensive construction belongs behind a
// sync.Once in the stored value.
func (sm *shardMap) getOrCreate(key string, mk func() any) (any, bool) {
	sh := &sm.shards[maphash.String(sm.seed, key)%uint64(len(sm.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.m[key]; ok {
		return v, false
	}
	v := mk()
	sh.m[key] = v
	return v, true
}
