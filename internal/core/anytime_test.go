package core

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/faultinject"
	"repro/internal/models"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// prefixFront implements the first k possible candidates of the
// cost-ordered enumeration unconditionally and folds them into a Pareto
// front — the ground truth the anytime invariant is checked against:
// an exploration interrupted with Cursor == k must return exactly this
// front.
func prefixFront(s *spec.Spec, opts Options, k int) []*Implementation {
	front := &pareto.Front{}
	idx := 0
	alloc.Enumerate(s, alloc.Options{
		IncludeUselessComm: opts.IncludeUselessComm,
		MaxScan:            opts.MaxScan,
	}, func(c alloc.Candidate) bool {
		if idx >= k {
			return false
		}
		idx++
		if im := Implement(s, c.Allocation, opts, nil); im != nil {
			front.Add(&pareto.Entry{
				Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility),
				Value:      im,
			})
		}
		return true
	})
	return frontToImplementations(front)
}

func frontsEqual(a, b []*Implementation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cost != b[i].Cost || a[i].Flexibility != b[i].Flexibility ||
			!a[i].Allocation.Equal(b[i].Allocation) {
			return false
		}
	}
	return true
}

// cancelAt runs ExploreContext with a fault-injected cancellation at
// candidate index k — the deterministic stand-in for SIGINT/deadline.
func cancelAt(s *spec.Spec, opts Options, k int) *Result {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Fault = faultinject.New().CancelAt(SiteEstimate, k).Bind(cancel)
	return ExploreContext(ctx, s, opts)
}

func TestExploreCancelledImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := ExploreContext(ctx, models.Decoder(), Options{})
	if !r.Interrupted || r.Reason != ReasonCancelled {
		t.Fatalf("interrupted=%v reason=%q, want cancelled", r.Interrupted, r.Reason)
	}
	if r.Cursor != 0 || len(r.Front) != 0 {
		t.Fatalf("cursor=%d front=%d, want empty prefix", r.Cursor, len(r.Front))
	}
}

func TestExploreDeadlineReason(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	r := ExploreContext(ctx, models.Decoder(), Options{})
	if !r.Interrupted || r.Reason != ReasonDeadline {
		t.Fatalf("interrupted=%v reason=%q, want deadline", r.Interrupted, r.Reason)
	}
}

// TestAnytimePrefixInvariant: a scan cancelled at candidate k returns
// Cursor == k and exactly the Pareto front of the first k candidates —
// the paper's cost-ordering argument, now load-bearing for anytime use.
func TestAnytimePrefixInvariant(t *testing.T) {
	s := models.SetTopBox()
	for _, k := range []int{1, 7, 50, 200} {
		r := cancelAt(s, Options{}, k)
		if !r.Interrupted || r.Reason != ReasonCancelled {
			t.Fatalf("k=%d: interrupted=%v reason=%q", k, r.Interrupted, r.Reason)
		}
		if r.Cursor != k {
			t.Fatalf("k=%d: cursor=%d", k, r.Cursor)
		}
		want := prefixFront(s, Options{}, k)
		if !frontsEqual(r.Front, want) {
			t.Errorf("k=%d: partial front (%d entries) is not the Pareto set of the prefix (%d entries)",
				k, len(r.Front), len(want))
		}
	}
}

// TestProgressPrefixInvariant: every periodic Progress report carries a
// front that is exactly the Pareto set of the candidates before its
// cursor — what makes checkpoints taken from Progress trustworthy.
func TestProgressPrefixInvariant(t *testing.T) {
	s := models.Decoder()
	var reports []Progress
	Explore(s, Options{ProgressEvery: 5, Progress: func(p Progress) {
		reports = append(reports, p)
	}})
	if len(reports) == 0 {
		t.Fatal("no progress reports")
	}
	for _, p := range reports {
		want := prefixFront(s, Options{}, p.Cursor)
		if !frontsEqual(p.Front, want) {
			t.Errorf("cursor=%d: progress front deviates from prefix Pareto set", p.Cursor)
		}
	}
}

// TestResumeEquivalence (acceptance): on each model, an exploration
// interrupted mid-scan and resumed from its own partial result matches
// the uninterrupted run bit-for-bit — fronts and effort counters — for
// both the sequential and the parallel explorer.
func TestResumeEquivalence(t *testing.T) {
	synth := models.Synthetic(models.SyntheticParams{
		Seed: 1, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
		Processors: 2, ASICs: 1, Designs: 1, Buses: 3,
		TimedFraction: 0.3, AccelOnlyFraction: 0.3,
	})
	for _, tc := range []struct {
		name string
		s    *spec.Spec
	}{
		{"settop", models.SetTopBox()},
		{"decoder", models.Decoder()},
		{"synthetic", synth},
	} {
		t.Run(tc.name, func(t *testing.T) {
			full := Explore(tc.s, Options{})
			k := full.Stats.PossibleAllocations / 2
			if k == 0 {
				k = 1
			}
			part := cancelAt(tc.s, Options{}, k)
			if !part.Interrupted || part.Cursor != k {
				t.Fatalf("interrupt failed: interrupted=%v cursor=%d", part.Interrupted, part.Cursor)
			}
			res := &Resume{Cursor: part.Cursor, Front: part.Front, Stats: part.Stats}

			resumed := Explore(tc.s, Options{Resume: res})
			if !frontsEqual(resumed.Front, full.Front) {
				t.Errorf("resumed sequential front differs from uninterrupted run")
			}
			if resumed.Interrupted || resumed.Reason != ReasonCompleted {
				t.Errorf("resumed run: interrupted=%v reason=%q", resumed.Interrupted, resumed.Reason)
			}
			// Semantic counters (scanned, estimated, attempted,
			// feasible, ...) continue exactly across the resume; solver
			// effort and cache counters do not — the resumed run restarts
			// with a cold evaluation cache, so it redoes binding work the
			// warm uninterrupted run avoided.
			if !reflect.DeepEqual(resumed.Stats.Semantic(), full.Stats.Semantic()) {
				t.Errorf("resumed stats %+v\n  differ from uninterrupted %+v", resumed.Stats, full.Stats)
			}

			par := ExploreParallel(tc.s, Options{}, 4, 8)
			if !frontsEqual(par.Front, full.Front) {
				t.Errorf("parallel front differs from sequential")
			}
			parResumed := ExploreParallel(tc.s, Options{Resume: res}, 4, 8)
			if !frontsEqual(parResumed.Front, full.Front) {
				t.Errorf("parallel resumed front differs from uninterrupted run")
			}
		})
	}
}

// TestCrossModeResumeEquivalence (acceptance): a snapshot taken from a
// Progress emission mid-pipeline is a valid resume point for *either*
// explorer — the sequential resume and the pipelined resume both land
// on the uninterrupted run's front and semantic counters, and the
// mid-pipeline front itself is prefix-exact. This is what makes
// checkpoints interchangeable between -workers=1 and -workers=N runs.
func TestCrossModeResumeEquivalence(t *testing.T) {
	s := models.SetTopBox()
	full := Explore(s, Options{})

	var snap *Progress
	ExploreParallel(s, Options{ProgressEvery: 16, Progress: func(p Progress) {
		if snap == nil && p.Cursor >= 48 && p.Cursor < full.Cursor {
			cp := p
			cp.Front = append([]*Implementation(nil), p.Front...)
			snap = &cp
		}
	}}, 4, 8)
	if snap == nil {
		t.Fatal("no mid-scan progress emission from the pipeline")
	}
	if want := prefixFront(s, Options{}, snap.Cursor); !frontsEqual(snap.Front, want) {
		t.Fatalf("cursor=%d: mid-pipeline progress front is not the prefix Pareto set", snap.Cursor)
	}

	res := &Resume{Cursor: snap.Cursor, Front: snap.Front, Stats: snap.Stats}
	seqResumed := Explore(s, Options{Resume: res})
	parResumed := ExploreParallel(s, Options{Resume: res}, 4, 8)
	if !frontsEqual(seqResumed.Front, full.Front) {
		t.Errorf("sequential resume of a pipeline snapshot diverges from the full run")
	}
	if !frontsEqual(parResumed.Front, full.Front) {
		t.Errorf("pipelined resume of a pipeline snapshot diverges from the full run")
	}
	if seqResumed.Cursor != full.Cursor || parResumed.Cursor != full.Cursor {
		t.Errorf("resumed cursors %d/%d != full run's %d",
			seqResumed.Cursor, parResumed.Cursor, full.Cursor)
	}
	if !reflect.DeepEqual(seqResumed.Stats.Semantic(), full.Stats.Semantic()) {
		t.Errorf("sequential resume semantic stats diverge:\n%+v\n%+v",
			seqResumed.Stats.Semantic(), full.Stats.Semantic())
	}
	if !reflect.DeepEqual(parResumed.Stats.Semantic(), full.Stats.Semantic()) {
		t.Errorf("pipelined resume semantic stats diverge:\n%+v\n%+v",
			parResumed.Stats.Semantic(), full.Stats.Semantic())
	}
}

// TestPipelineFinalProgress: the scan tail past the last periodic
// emission still reports — the pipeline fires a closing Progress event
// at the final cursor (the old wave explorer silently dropped the final
// partial batch). With ProgressEvery larger than the scan, that final
// event is the only one, and it must carry the complete front.
func TestPipelineFinalProgress(t *testing.T) {
	s := models.Decoder()
	var last *Progress
	count := 0
	r := ExploreParallel(s, Options{ProgressEvery: 1 << 30, Progress: func(p Progress) {
		count++
		cp := p
		cp.Front = append([]*Implementation(nil), p.Front...)
		last = &cp
	}}, 2, 4)
	if count != 1 {
		t.Fatalf("got %d progress emissions, want exactly the final one", count)
	}
	if last.Cursor != r.Cursor {
		t.Errorf("final progress cursor %d != result cursor %d", last.Cursor, r.Cursor)
	}
	if !frontsEqual(last.Front, r.Front) {
		t.Errorf("final progress front differs from the result front")
	}
	if last.Stats.PossibleAllocations != r.Stats.PossibleAllocations {
		t.Errorf("final progress stats incomplete: possible %d != %d",
			last.Stats.PossibleAllocations, r.Stats.PossibleAllocations)
	}
}

// TestParallelCancelPrefixExact: cancelling the parallel explorer stops
// the fold at the first unevaluated candidate, so its partial front is
// the Pareto set of the prefix before Cursor.
func TestParallelCancelPrefixExact(t *testing.T) {
	s := models.SetTopBox()
	const k = 100
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{Fault: faultinject.New().CancelAt(SiteEstimate, k).Bind(cancel)}
	r := ExploreParallelContext(ctx, s, opts, 4, 16)
	if !r.Interrupted || r.Reason != ReasonCancelled {
		t.Fatalf("interrupted=%v reason=%q", r.Interrupted, r.Reason)
	}
	// Workers race the cancellation, so the exact stop point may land
	// anywhere in the wave containing k — but wherever it lands, the
	// front must be the prefix Pareto set at that cursor.
	if r.Cursor <= 0 || r.Cursor > k+16 {
		t.Fatalf("cursor=%d out of the expected window", r.Cursor)
	}
	if want := prefixFront(s, Options{}, r.Cursor); !frontsEqual(r.Front, want) {
		t.Errorf("cursor=%d: parallel partial front is not the prefix Pareto set", r.Cursor)
	}
	res := &Resume{Cursor: r.Cursor, Front: r.Front, Stats: r.Stats}
	if resumed := ExploreParallel(s, Options{Resume: res}, 4, 16); !frontsEqual(resumed.Front, Explore(s, Options{}).Front) {
		t.Errorf("parallel interrupted+resumed front differs from uninterrupted run")
	}
}

// TestParallelPanicIsolation: a candidate whose evaluation panics is
// recovered in its worker, recorded as a structured diagnostic, and
// skipped; the rest of the scan — and the front — are unaffected when
// the poisoned candidate is not a front member.
func TestParallelPanicIsolation(t *testing.T) {
	s := models.SetTopBox()
	full := Explore(s, Options{})
	onFront := func(a spec.Allocation) bool {
		for _, im := range full.Front {
			if im.Allocation.Equal(a) {
				return true
			}
		}
		return false
	}
	// Pick a candidate that is not a Pareto-front member, so skipping it
	// must leave the front unchanged.
	victim := -1
	idx := 0
	alloc.Enumerate(s, alloc.Options{}, func(c alloc.Candidate) bool {
		if !onFront(c.Allocation) {
			victim = idx
			return false
		}
		idx++
		return true
	})
	if victim < 0 {
		t.Fatal("no non-front candidate found")
	}

	plan := faultinject.New().PanicAt(SiteEstimate, victim, "poisoned candidate")
	r := ExploreParallel(s, Options{Fault: plan}, 4, 16)
	if r.Interrupted || r.Reason != ReasonCompleted {
		t.Fatalf("run did not complete: interrupted=%v reason=%q", r.Interrupted, r.Reason)
	}
	if !frontsEqual(r.Front, full.Front) {
		t.Errorf("front changed after skipping a non-front candidate")
	}
	if len(r.Stats.Diags) != 1 {
		t.Fatalf("diags=%d, want 1", len(r.Stats.Diags))
	}
	d := r.Stats.Diags[0]
	if d.Kind != DiagPanic || d.Site != SiteEstimate || d.Cursor != victim {
		t.Errorf("diag %+v, want panic at %s[%d]", d, SiteEstimate, victim)
	}
	if !strings.Contains(d.Message, "poisoned candidate") || d.Stack == "" {
		t.Errorf("diag lacks message/stack: %+v", d)
	}
}

// TestParallelPanicEveryCandidate: even when every single evaluation
// panics the scan terminates normally with one diagnostic per candidate
// and an empty front.
func TestParallelPanicEveryCandidate(t *testing.T) {
	s := models.Decoder()
	plan := faultinject.New().PanicAt(SiteEstimate, -1, "all down")
	r := ExploreParallel(s, Options{Fault: plan}, 4, 8)
	if r.Interrupted {
		t.Fatal("interrupted")
	}
	if len(r.Front) != 0 {
		t.Fatalf("front has %d entries, want 0", len(r.Front))
	}
	if len(r.Stats.Diags) != r.Stats.PossibleAllocations {
		t.Errorf("diags=%d, possible=%d — every candidate should carry one",
			len(r.Stats.Diags), r.Stats.PossibleAllocations)
	}
}

// TestInjectedErrorSkipsCandidate: an injected (non-panic) estimation
// error is recorded and the candidate skipped, sequentially and in
// parallel.
func TestInjectedErrorSkipsCandidate(t *testing.T) {
	s := models.Decoder()
	for _, parallel := range []bool{false, true} {
		plan := faultinject.New().ErrorAt(SiteEstimate, 0, nil)
		opts := Options{Fault: plan}
		var r *Result
		if parallel {
			r = ExploreParallel(s, opts, 4, 8)
		} else {
			r = Explore(s, opts)
		}
		if len(r.Stats.Diags) != 1 || r.Stats.Diags[0].Kind != DiagError {
			t.Fatalf("parallel=%v: diags %+v, want one error diag", parallel, r.Stats.Diags)
		}
		if len(plan.Firings()) != 1 {
			t.Fatalf("parallel=%v: firings %v", parallel, plan.Firings())
		}
	}
}

// TestStopAtMaxFlexFinalFlush: the termination reason of a StopAtMaxFlex
// hit must survive the parallel explorer's *final* wave flush (whose
// boolean result is discarded), including with a batch so large the
// entire scan is that one final flush.
func TestStopAtMaxFlexFinalFlush(t *testing.T) {
	s := models.SetTopBox()
	seq := Explore(s, Options{StopAtMaxFlex: true})
	if seq.Reason != ReasonMaxFlex {
		t.Fatalf("sequential reason=%q, want max-flex", seq.Reason)
	}
	par := ExploreParallel(s, Options{StopAtMaxFlex: true}, 4, 100000)
	if par.Reason != ReasonMaxFlex {
		t.Errorf("parallel reason=%q, want max-flex (final flush dropped the stop signal)", par.Reason)
	}
	if !frontsEqual(seq.Front, par.Front) {
		t.Errorf("fronts differ under StopAtMaxFlex")
	}
}

func TestRandomSearchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := RandomSearchContext(ctx, models.Decoder(), Options{}, 100, 1)
	if !r.Interrupted || r.Reason != ReasonCancelled || r.Cursor != 0 {
		t.Fatalf("interrupted=%v reason=%q cursor=%d", r.Interrupted, r.Reason, r.Cursor)
	}
}

func TestEvolutionaryCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := EvolutionaryContext(ctx, models.Decoder(), Options{}, EAConfig{Seed: 1})
	if !r.Interrupted || r.Reason != ReasonCancelled {
		t.Fatalf("interrupted=%v reason=%q", r.Interrupted, r.Reason)
	}
}

func TestExploreMultiCancel(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	r := ExploreMultiContext(ctx, models.Decoder(), Options{}, nil)
	if !r.Interrupted || r.Reason != ReasonDeadline || len(r.Front) != 0 {
		t.Fatalf("interrupted=%v reason=%q front=%d", r.Interrupted, r.Reason, len(r.Front))
	}
}

func TestUpgradeCancel(t *testing.T) {
	s := models.SetTopBox()
	full := Explore(s, Options{})
	if len(full.Front) == 0 {
		t.Fatal("no base")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := UpgradeContext(ctx, s, full.Front[0].Allocation, Options{})
	if !r.Interrupted || r.Reason != ReasonCancelled {
		t.Fatalf("interrupted=%v reason=%q", r.Interrupted, r.Reason)
	}
}

// TestExhaustiveDeadlineAnytime: the exhaustive baseline inherits the
// anytime semantics; its interrupted front must also be prefix-exact
// (with the exhaustive option overrides applied to the ground truth).
func TestExhaustiveDeadlineAnytime(t *testing.T) {
	s := models.SetTopBox()
	const k = 64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{Fault: faultinject.New().CancelAt(SiteEstimate, k).Bind(cancel)}
	r := ExhaustiveContext(ctx, s, opts)
	if !r.Interrupted || r.Cursor != k {
		t.Fatalf("interrupted=%v cursor=%d", r.Interrupted, r.Cursor)
	}
	exOpts := Options{DisableFlexBound: true, IncludeUselessComm: true}
	if want := prefixFront(s, exOpts, k); !frontsEqual(r.Front, want) {
		t.Errorf("exhaustive partial front is not the prefix Pareto set")
	}
}
