package core

import (
	"strings"
	"testing"

	"repro/internal/hgraph"
	"repro/internal/models"
)

func TestAnalyzeFamilyCaseStudy(t *testing.T) {
	s := models.SetTopBox()
	r := Explore(s, Options{})
	fa := AnalyzeFamily(s, r.Front)

	wantEntry := map[hgraph.ID]float64{
		"gI": 100, "gD1": 100, "gU1": 100, // shipped from the cheapest box
		"gG1": 120, // needs μP1 (or an accelerator)
		"gU2": 230,
		"gD3": 290,
		"gG2": 360, "gG3": 360, "gD2": 360, // need an ASIC
	}
	for c, want := range wantEntry {
		if got := fa.EntryCost[c]; got != want {
			t.Errorf("entry cost of %s = %v, want %v", c, got, want)
		}
	}
	// The commonality is the browser + basic TV chain.
	wantCommon := []hgraph.ID{"gD1", "gI", "gU1"}
	if len(fa.Common) != len(wantCommon) {
		t.Fatalf("common = %v, want %v", fa.Common, wantCommon)
	}
	for i := range wantCommon {
		if fa.Common[i] != wantCommon[i] {
			t.Errorf("common[%d] = %s, want %s", i, fa.Common[i], wantCommon[i])
		}
	}
	if len(fa.Unreachable) != 0 {
		t.Errorf("unreachable = %v, want none", fa.Unreachable)
	}
	// Marginal costs: 20/1, 110/1, 60/1, 70/2, 70/1.
	want := []float64{20, 110, 60, 35, 70}
	if len(fa.MarginalCost) != len(want) {
		t.Fatalf("marginal costs = %v", fa.MarginalCost)
	}
	for i := range want {
		if fa.MarginalCost[i] != want[i] {
			t.Errorf("marginal[%d] = %v, want %v", i, fa.MarginalCost[i], want[i])
		}
	}
	out := fa.String()
	for _, frag := range []string{"gI", "from $100", "commonality", "marginal cost"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report lacks %q:\n%s", frag, out)
		}
	}
}

func TestAnalyzeFamilyUnreachable(t *testing.T) {
	// Remove the only resource of gD3 (the FPGA D3 design has no
	// substitute): exploring the spec without dD3 never offers gD3.
	s := models.SetTopBox()
	if err := s.Arch.RemoveCluster("dD3"); err != nil {
		t.Fatal(err)
	}
	kept := s.Mappings[:0]
	for _, m := range s.Mappings {
		if m.Resource != "D3" {
			kept = append(kept, m)
		}
	}
	s.Mappings = kept
	s2 := s.Clone()
	r := Explore(s2, Options{})
	fa := AnalyzeFamily(s2, r.Front)
	found := false
	for _, c := range fa.Unreachable {
		if c == "gD3" {
			found = true
		}
	}
	if !found {
		t.Errorf("gD3 should be unreachable without D3, got %v", fa.Unreachable)
	}
}

func TestAnalyzeFamilyEmptyFront(t *testing.T) {
	s := models.SetTopBox()
	fa := AnalyzeFamily(s, nil)
	if len(fa.Common) != 0 || len(fa.EntryCost) != 0 {
		t.Error("empty front should yield empty analysis")
	}
	if len(fa.Unreachable) == 0 {
		t.Error("everything is unreachable with an empty front")
	}
}
