package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/spec"
)

// Exploring the paper's Set-Top box case study reproduces the published
// Pareto table.
func ExampleExplore() {
	s := models.SetTopBox()
	r := core.Explore(s, core.Options{})
	for _, im := range r.Front {
		fmt.Printf("$%g f=%g %v\n", im.Cost, im.Flexibility, im.Allocation)
	}
	// Output:
	// $100 f=2 {uP2}
	// $120 f=3 {uP1}
	// $230 f=4 {C1 dG1 dU2 uP2}
	// $290 f=5 {C1 dD3 dG1 dU2 uP2}
	// $360 f=7 {A1 C2 uP2}
	// $430 f=8 {A1 C1 C2 dD3 uP2}
}

// Constructing one implementation reproduces the paper's worked
// feasibility analysis of the cheapest candidate: browser and digital
// TV fit on μP2, the game console fails the 69 % utilization estimate.
func ExampleImplement() {
	s := models.SetTopBox()
	im := core.Implement(s, spec.NewAllocation("uP2"), core.Options{}, nil)
	fmt.Printf("cost $%g, flexibility %g\n", im.Cost, im.Flexibility)
	for _, b := range im.Behaviours {
		fmt.Println("behaviour", b.ECS)
	}
	// Output:
	// cost $100, flexibility 2
	// behaviour {GP gI}
	// behaviour {GP gD gD1 gU1}
}
