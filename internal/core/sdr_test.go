package core

import (
	"testing"

	"repro/internal/hgraph"
	"repro/internal/models"
	"repro/internal/spec"
)

// TestSDRExploration pins the second case study (software-defined
// radio): the Pareto front, its agreement with exhaustive search, and
// the structural reasons behind each step.
func TestSDRExploration(t *testing.T) {
	s := models.SDR()
	r := Explore(s, Options{})
	if r.MaxFlexibility != 6 {
		t.Errorf("max flexibility = %v, want 6 (gsm 3 + wifi 2 + bt 1)", r.MaxFlexibility)
	}
	want := []struct {
		alloc spec.Allocation
		cost  float64
		flex  float64
	}{
		{spec.NewAllocation("DSP1"), 150, 2},
		{spec.NewAllocation("DSP2", "B5", "dVit"), 239, 3},
		{spec.NewAllocation("DSP2", "B5", "dVit", "dOFDM"), 294, 4},
		{spec.NewAllocation("DSP2", "B4", "ACC"), 412, 6},
	}
	if len(r.Front) != len(want) {
		t.Fatalf("front size = %d, want %d: %v", len(r.Front), len(want), r.Front)
	}
	for i, w := range want {
		got := r.Front[i]
		if got.Cost != w.cost || got.Flexibility != w.flex || !got.Allocation.Equal(w.alloc) {
			t.Errorf("row %d = %v, want %v at (%v,%v)", i, got, w.alloc, w.cost, w.flex)
		}
	}

	ex := Exhaustive(s, Options{})
	if len(ex.Front) != len(r.Front) {
		t.Fatalf("exhaustive disagrees: %d rows", len(ex.Front))
	}
	for i := range ex.Front {
		if ex.Front[i].Cost != r.Front[i].Cost || ex.Front[i].Flexibility != r.Front[i].Flexibility {
			t.Errorf("exhaustive row %d differs", i)
		}
	}
}

// TestSDRStructuralFacts checks the domain constraints that shape the
// front: the FPGA cannot host OFDM and Viterbi at once, WiFi does not
// fit on DSP2 alone (utilization), and the accelerator unlocks the
// heavy GSM alternatives.
func TestSDRStructuralFacts(t *testing.T) {
	s := models.SDR()

	// WiFi on DSP2 alone: (300+330)/500 = 1.26 — rejected.
	im := Implement(s, spec.NewAllocation("DSP2"), Options{}, nil)
	if im == nil {
		t.Fatal("DSP2 implements at least GSM-FR + BT")
	}
	for _, c := range im.Clusters {
		if c == "wifi" {
			t.Error("wifi must not fit on DSP2 alone")
		}
	}

	// With both FPGA designs but no DSP2 bus to them... B1 connects
	// DSP1; Pofdm has no DSP1 mapping, so wifi needs B5+DSP2 or ACC.
	im2 := Implement(s, spec.NewAllocation("DSP1", "B1", "dOFDM", "dVit"), Options{}, nil)
	if im2 != nil {
		for _, c := range im2.Clusters {
			if c == "wifi" {
				t.Error("OFDM+Viterbi both on the single FPGA cannot coexist, and DSP1 hosts neither")
			}
		}
	}

	// The 412 solution implements everything; verify its behaviours
	// include all three standards.
	im3 := Implement(s, spec.NewAllocation("DSP2", "B4", "ACC"), Options{AllBehaviours: true}, nil)
	if im3 == nil || im3.Flexibility != 6 {
		t.Fatalf("full SDR = %v, want f=6", im3)
	}
	stds := map[hgraph.ID]bool{}
	for _, b := range im3.Behaviours {
		stds[b.ECS.Selection["IStd"]] = true
	}
	for _, std := range []hgraph.ID{"gsm", "wifi", "bt"} {
		if !stds[std] {
			t.Errorf("standard %s not among implemented behaviours", std)
		}
	}
}

func BenchmarkSDRExplore(b *testing.B) {
	s := models.SDR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Explore(s, Options{})
		if len(r.Front) != 4 {
			b.Fatal("wrong front")
		}
	}
}
