package core

import (
	"context"

	"repro/internal/alloc"
	"repro/internal/bitset"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// Upgrade explores the incremental-design question the paper raises
// when discussing Pop et al. [10]: how to extend an already deployed
// platform for more functionality *with a guarantee* that the running
// behaviours keep working. Candidates are restricted to supersets of
// the base allocation, so every behaviour feasible on the base remains
// feasible (its bindings and timing are untouched by added resources);
// implemented flexibility is therefore monotone along the upgrade path.
//
// The returned front contains the Pareto-optimal upgrades with strictly
// more flexibility than the base implementation (the base itself is the
// front's implicit origin and is not repeated).
func Upgrade(s *spec.Spec, base spec.Allocation, opts Options) *Result {
	return UpgradeContext(context.Background(), s, base, opts)
}

// UpgradeContext is Upgrade under a context, with the same anytime
// semantics as ExploreContext: an interrupted run returns the
// Pareto-optimal upgrades over the explored cost-ordered prefix.
func UpgradeContext(ctx context.Context, s *spec.Spec, base spec.Allocation, opts Options) *Result {
	res := &Result{MaxFlexibility: MaxFlexibility(s, opts), Reason: ReasonCompleted}
	front := &pareto.Front{}
	ev := newEvaluator(s, opts)

	baseImpl := ev.implement(base, bitset.Set{}, false, &res.Stats)
	fcur := 0.0
	if baseImpl != nil {
		fcur = baseImpl.Flexibility
	}
	baseFlex := fcur

	_, _, pc, _ := s.Problem.ElementCount()
	aStats := alloc.EnumerateExtensions(s, base, alloc.Options{
		IncludeUselessComm: opts.IncludeUselessComm,
		MaxScan:            opts.MaxScan,
	}, func(c alloc.Candidate) bool {
		if ctx.Err() != nil {
			res.Interrupted, res.Reason = true, reasonFor(ctx)
			return false
		}
		res.Stats.PossibleAllocations++
		res.Cursor++
		res.Stats.Estimated++
		est, sup, haveSup := ev.estimate(c.Allocation)
		if !opts.DisableFlexBound && est <= fcur {
			return true
		}
		res.Stats.Attempted++
		im := ev.implement(c.Allocation, sup, haveSup, &res.Stats)
		if im == nil || im.Flexibility <= baseFlex {
			return true
		}
		res.Stats.Feasible++
		if front.Add(&pareto.Entry{
			Objectives: pareto.CostFlexObjectives(im.Cost, im.Flexibility),
			Value:      im,
		}) && im.Flexibility > fcur {
			fcur = im.Flexibility
		}
		if opts.StopAtMaxFlex && fcur >= res.MaxFlexibility {
			res.Reason = ReasonMaxFlex
			return false
		}
		return true
	})
	ev.fold(&res.Stats)
	finishResult(res, aStats, pc, opts)
	res.Front = frontToImplementations(front)
	return res
}
