package core

import (
	"runtime"
	"sync"

	"repro/internal/alloc"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// ExploreParallel runs EXPLORE with the per-candidate work — the
// flexibility estimation and the implementation construction — fanned
// out over worker goroutines while keeping the resulting front
// bit-for-bit identical to the sequential explorer.
//
// Determinism is preserved by processing candidates in waves: the
// cost-ordered enumeration fills a batch, workers evaluate the batch
// members concurrently against the bound as of the wave start, and the
// results are folded into the front in the original candidate order.
// The flexibility bound therefore lags by at most one wave compared to
// the sequential run, which can only cause extra work, never different
// fronts (a candidate the sequential run skips has estimate ≤ its
// bound, so its implementation is dominated by the archive).
//
// workers <= 0 selects GOMAXPROCS; batch <= 0 selects 8 x workers. On a
// single-core host the wave machinery adds only a few percent overhead;
// the speedup materializes with GOMAXPROCS > 1 because candidates are
// evaluated independently.
func ExploreParallel(s *spec.Spec, opts Options, workers, batch int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Explore(s, opts)
	}
	if batch <= 0 {
		batch = 8 * workers
	}
	// Warm the lazy indexes of the specification before concurrent use.
	_ = Estimate(s, spec.Allocation{}, opts)

	res := &Result{MaxFlexibility: MaxFlexibility(s, opts)}
	front := &pareto.Front{}
	fcur := 0.0

	type job struct {
		alloc     spec.Allocation
		est       float64
		attempted bool
		impl      *Implementation
		stats     Stats
	}
	var wave []*job

	flush := func() bool {
		bound := fcur
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for _, j := range wave {
			wg.Add(1)
			sem <- struct{}{}
			go func(j *job) {
				defer wg.Done()
				defer func() { <-sem }()
				j.est = Estimate(s, j.alloc, opts)
				if !opts.DisableFlexBound && j.est <= bound {
					return
				}
				j.attempted = true
				j.impl = Implement(s, j.alloc, opts, &j.stats)
			}(j)
		}
		wg.Wait()
		stop := false
		for _, j := range wave {
			res.Stats.Estimated++
			if !j.attempted {
				continue
			}
			// Second chance against the bound tightened within this
			// wave: drop results the sequential run would have skipped
			// (they are dominated anyway; skipping keeps the counters
			// closer to the sequential run's).
			if !opts.DisableFlexBound && j.est <= fcur {
				continue
			}
			res.Stats.Attempted++
			res.Stats.ECSTested += j.stats.ECSTested
			res.Stats.BindingRuns += j.stats.BindingRuns
			res.Stats.BindingNodes += j.stats.BindingNodes
			if j.impl == nil {
				continue
			}
			res.Stats.Feasible++
			if front.Add(&pareto.Entry{
				Objectives: pareto.CostFlexObjectives(j.impl.Cost, j.impl.Flexibility),
				Value:      j.impl,
			}) && j.impl.Flexibility > fcur {
				fcur = j.impl.Flexibility
			}
			if opts.StopAtMaxFlex && fcur >= res.MaxFlexibility {
				stop = true
			}
		}
		wave = wave[:0]
		return !stop
	}

	_, _, pc, _ := s.Problem.ElementCount()
	aStats := alloc.Enumerate(s, alloc.Options{
		IncludeUselessComm: opts.IncludeUselessComm,
		MaxScan:            opts.MaxScan,
	}, func(c alloc.Candidate) bool {
		res.Stats.PossibleAllocations++
		wave = append(wave, &job{alloc: c.Allocation.Clone()})
		if len(wave) >= batch {
			return flush()
		}
		return true
	})
	flush()
	res.Stats.Scanned = aStats.Scanned
	res.Stats.AllocSpace = aStats.SearchSpace
	res.Stats.DesignSpace = aStats.SearchSpace * pow2(pc)
	res.Front = frontToImplementations(front)
	return res
}
