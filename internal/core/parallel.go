package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/bitset"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// ExploreParallel runs EXPLORE with the per-candidate work — the
// flexibility estimation and the implementation construction — fanned
// out over a pool of worker goroutines while keeping the resulting
// front bit-for-bit identical to the sequential explorer.
//
// The engine is a streaming pipeline. The cost-ordered enumeration
// feeds candidates into a bounded job channel; a fixed pool of workers
// (spawned once, never per candidate) evaluates them against the
// current flexibility bound, published through an atomic; and an
// ordered-commit stage reassembles results in candidate order through a
// reorder buffer before folding them into the Pareto front. There is no
// batch barrier: a slow implementation stalls only the commit of later
// candidates, never their evaluation.
//
// Determinism is preserved by the commit order plus a second-chance
// bound check: a worker may act on a stale (i.e. lower) bound, which
// only causes extra work — the commit stage re-applies the exact
// sequential bound, so fronts, cursors, termination reasons and all
// semantic counters equal the sequential run's.
//
// workers <= 0 selects GOMAXPROCS; queue <= 0 selects 8 x workers. On a
// single-core host the pipeline adds only a few percent overhead; the
// speedup materializes with GOMAXPROCS > 1 because candidates are
// evaluated independently.
func ExploreParallel(s *spec.Spec, opts Options, workers, queue int) *Result {
	return ExploreParallelContext(context.Background(), s, opts, workers, queue)
}

// ExploreParallelContext is ExploreParallel under a context, with the
// same anytime semantics as ExploreContext: on cancellation the commit
// stage stops at the first unevaluated candidate (in candidate order),
// so the partial front is exactly the Pareto set of the explored prefix
// and Cursor marks where a resumed run continues.
//
// Candidate evaluations are additionally isolated against panics: a
// panicking estimation or implementation construction is recovered in
// its worker, recorded as a structured Diag in Stats, and the candidate
// is skipped — one poisoned design point cannot take down a long scan.
// (The sequential explorer deliberately does not recover: combined with
// periodic checkpointing, a crash there is recovered by resuming.)
func ExploreParallelContext(ctx context.Context, s *spec.Spec, opts Options, workers, queue int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return ExploreContext(ctx, s, opts)
	}
	if queue <= 0 {
		queue = 8 * workers
	}
	// Warm the lazy indexes of the specification before concurrent use.
	_ = Estimate(s, spec.Allocation{}, opts)

	// One evaluator, shared by all workers: its caches are sharded and
	// mutex-striped, so a binding proved (in)feasible by one worker is
	// reused by every other.
	ev := newEvaluator(s, opts)

	res := &Result{MaxFlexibility: MaxFlexibility(s, opts), Reason: ReasonCompleted}
	front := &pareto.Front{}
	fcur, startCursor := seedResume(res, front, opts.Resume)
	res.Cursor = startCursor
	res.Stats.Pipeline = PipelineStats{Workers: workers, QueueDepth: queue}

	p := &pipeline{
		ctx:  ctx,
		ev:   ev,
		opts: opts,
		jobs: make(chan *pipeJob, queue),
		// Sized so a worker can always deposit a result without
		// blocking the commit stage's drain: at most queue+workers jobs
		// are in flight between producer and committer.
		results: make(chan *pipeJob, queue+workers),
		done:    make(chan struct{}),
	}
	p.storeBound(fcur)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range p.jobs {
				p.evaluate(j)
				p.results <- j
			}
		}()
	}
	go func() {
		wg.Wait()
		close(p.results)
	}()

	c := &committer{
		p:        p,
		res:      res,
		front:    front,
		fcur:     fcur,
		next:     startCursor,
		lastEmit: startCursor,
		pending:  map[int]*pipeJob{},
	}
	commitDone := make(chan struct{})
	go func() {
		defer close(commitDone)
		c.run()
	}()

	// The producer: the cost-ordered enumeration runs on this
	// goroutine and feeds the job channel.
	idx := 0
	producerCancelled := false
	_, _, pc, _ := s.Problem.ElementCount()
	aStats := alloc.Enumerate(s, alloc.Options{
		IncludeUselessComm: opts.IncludeUselessComm,
		MaxScan:            opts.MaxScan,
	}, func(cd alloc.Candidate) bool {
		p.possible.Add(1)
		if idx < startCursor {
			// Resume: replay the deterministic enumeration up to the
			// snapshot's cursor without re-evaluating candidates.
			idx++
			return true
		}
		if ctx.Err() != nil {
			producerCancelled = true
			return false
		}
		j := &pipeJob{idx: idx, alloc: cd.Allocation}
		idx++
		select {
		case p.jobs <- j:
			if l := int64(len(p.jobs)); l > p.highWater.Load() {
				p.highWater.Store(l)
			}
			return true
		case <-p.done:
			// The commit stage ended the scan (cancellation committed
			// in order, or StopAtMaxFlex); j is dropped.
			return false
		}
	})
	close(p.jobs)
	<-commitDone

	if producerCancelled && !c.stopped {
		// The producer observed the cancellation but every in-flight
		// job had already completed: the scan still ends interrupted,
		// prefix-exact at the last committed candidate.
		res.Interrupted, res.Reason = true, reasonFor(ctx)
	}
	res.Stats.PossibleAllocations = int(p.possible.Load())
	res.Stats.Pipeline.QueueHighWater = int(p.highWater.Load())
	res.Stats.Pipeline.CommitStalls = c.stalls
	res.Stats.Pipeline.BusyNanos = p.busy.Load()
	ev.fold(&res.Stats)
	// A final progress event covers the scan tail past the last
	// periodic emission, so long tails still report (and a checkpoint
	// writer hooked on Progress captures the finished prefix).
	if opts.Progress != nil && res.Cursor > c.lastEmit {
		opts.Progress(Progress{
			Cursor:         res.Cursor,
			BestFlex:       c.fcur,
			MaxFlexibility: res.MaxFlexibility,
			Front:          frontToImplementations(front),
			Stats:          res.Stats,
		})
	}
	finishResult(res, aStats, pc, opts)
	res.Front = frontToImplementations(front)
	return res
}

// pipeJob is one candidate travelling through the pipeline, carrying
// its evaluation outcome from a worker to the ordered-commit stage.
type pipeJob struct {
	idx       int
	alloc     spec.Allocation
	site      string
	est       float64
	sup       bitset.Set
	haveSup   bool
	estimated bool
	attempted bool
	cancelled bool
	impl      *Implementation
	stats     Stats
	diag      *Diag
}

// pipeline holds the shared state of one parallel run: the channels,
// the atomically published flexibility bound, and the contention
// gauges.
type pipeline struct {
	ctx     context.Context
	ev      *evaluator
	opts    Options
	jobs    chan *pipeJob
	results chan *pipeJob
	// done is closed by the commit stage when the scan must stop;
	// producer and workers treat it as a fast-path skip.
	done chan struct{}
	// bound is the best implemented flexibility (math.Float64bits),
	// written by the commit stage, read by workers. A stale read only
	// admits extra implementation attempts; the commit stage re-checks
	// against the exact bound.
	bound     atomic.Uint64
	possible  atomic.Int64
	highWater atomic.Int64
	busy      atomic.Int64
}

// loadBound reads the published flexibility bound. It and storeBound
// are the only places allowed to convert the bound through
// math.Float64bits (enforced by flexvet FX002).
//
//flexvet:bound-helper
func (p *pipeline) loadBound() float64 {
	return math.Float64frombits(p.bound.Load())
}

// storeBound publishes a new flexibility bound to the workers.
//
//flexvet:bound-helper
func (p *pipeline) storeBound(f float64) {
	p.bound.Store(math.Float64bits(f))
}

// evaluate runs the per-candidate work on a worker goroutine, mirroring
// the sequential explorer's order of operations exactly: estimate
// failpoint, cancellation re-check, estimation, bound check, implement
// failpoint, implementation construction.
func (p *pipeline) evaluate(j *pipeJob) {
	start := time.Now() //flexvet:ignore FX006 busy gauge: elapsed time is telemetry, never part of results
	defer func() { p.busy.Add(time.Since(start).Nanoseconds()) }()
	defer func() {
		if r := recover(); r != nil {
			j.diag = &Diag{
				Kind: DiagPanic, Site: j.site, Cursor: j.idx,
				Allocation: j.alloc.String(),
				Message:    fmt.Sprint(r),
				Stack:      trimStack(debug.Stack()),
			}
		}
	}()
	select {
	case <-p.done:
		// The scan already ended at an earlier candidate; the commit
		// stage discards this job unexamined.
		return
	default:
	}
	if p.ctx.Err() != nil {
		j.cancelled = true
		return
	}
	j.site = SiteEstimate
	if err := p.opts.Fault.Fire(SiteEstimate, j.idx); err != nil {
		j.diag = &Diag{
			Kind: DiagError, Site: SiteEstimate, Cursor: j.idx,
			Allocation: j.alloc.String(), Message: err.Error(),
		}
		return
	}
	if p.ctx.Err() != nil {
		// A Cancel failpoint fired between the two checks.
		j.cancelled = true
		return
	}
	j.estimated = true
	j.est, j.sup, j.haveSup = p.ev.estimate(j.alloc)
	if !p.opts.DisableFlexBound && j.est <= p.loadBound() {
		return
	}
	j.site = SiteImplement
	if err := p.opts.Fault.Fire(SiteImplement, j.idx); err != nil {
		j.diag = &Diag{
			Kind: DiagError, Site: SiteImplement, Cursor: j.idx,
			Allocation: j.alloc.String(), Message: err.Error(),
		}
		return
	}
	j.attempted = true
	j.impl = p.ev.implement(j.alloc, j.sup, j.haveSup, &j.stats)
}

// committer is the ordered-commit stage: it owns the result, the front
// and the exact flexibility bound, folding worker results strictly in
// candidate order through a reorder buffer.
type committer struct {
	p        *pipeline
	res      *Result
	front    *pareto.Front
	fcur     float64
	next     int
	lastEmit int
	pending  map[int]*pipeJob
	stalls   int
	stopped  bool
}

func (c *committer) run() {
	for j := range c.p.results {
		if c.stopped {
			// Drain: the scan already ended at an earlier candidate.
			continue
		}
		if j.idx != c.next {
			c.pending[j.idx] = j
			c.stalls++
			continue
		}
		c.commit(j)
		for !c.stopped {
			nj, ok := c.pending[c.next]
			if !ok {
				break
			}
			delete(c.pending, c.next)
			c.commit(nj)
		}
	}
}

// commit folds one in-order result into the front — the same fold, in
// the same order, as the sequential explorer's candidate loop.
func (c *committer) commit(j *pipeJob) {
	if j.cancelled {
		// The commit stops at the first candidate that was not
		// evaluated; completed jobs after it are discarded so the front
		// stays prefix-exact.
		c.res.Interrupted, c.res.Reason = true, reasonFor(c.p.ctx)
		c.res.Cursor = j.idx
		c.stop()
		return
	}
	if j.estimated {
		c.res.Stats.Estimated++
	}
	if j.diag != nil {
		// Faulted or panicked: record the diagnostic, skip the
		// candidate, keep scanning.
		c.res.Stats.Diags = append(c.res.Stats.Diags, *j.diag)
		c.advance(j.idx + 1)
		return
	}
	// Second chance against the exact bound as of this commit: drop
	// results the sequential run would have skipped. The atomic bound a
	// worker saw is never above the commit-time bound (the bound only
	// rises, in commit order), so the worker attempted a superset of
	// the sequential run's attempts and this filter restores exact
	// equality of fronts and counters.
	if j.attempted && (c.p.opts.DisableFlexBound || j.est > c.fcur) {
		c.res.Stats.Attempted++
		c.res.Stats.ECSTested += j.stats.ECSTested
		c.res.Stats.BindingRuns += j.stats.BindingRuns
		c.res.Stats.BindingNodes += j.stats.BindingNodes
		if j.impl != nil {
			c.res.Stats.Feasible++
			if c.front.Add(&pareto.Entry{
				Objectives: pareto.CostFlexObjectives(j.impl.Cost, j.impl.Flexibility),
				Value:      j.impl,
			}) && j.impl.Flexibility > c.fcur {
				c.fcur = j.impl.Flexibility
				c.p.storeBound(c.fcur)
			}
		}
		// Same stopping rule as the sequential explorer: check only
		// after an attempted implementation.
		if c.p.opts.StopAtMaxFlex && c.fcur >= c.res.MaxFlexibility {
			c.res.Reason = ReasonMaxFlex
			c.res.Cursor = j.idx + 1
			c.stop()
			return
		}
	}
	c.advance(j.idx + 1)
}

func (c *committer) advance(cursor int) {
	c.next = cursor
	c.res.Cursor = cursor
	if c.p.opts.Progress != nil && cursor-c.lastEmit >= c.p.opts.progressEvery() {
		c.p.ev.fold(&c.res.Stats)
		c.res.Stats.PossibleAllocations = int(c.p.possible.Load())
		c.res.Stats.Pipeline.QueueHighWater = int(c.p.highWater.Load())
		c.res.Stats.Pipeline.CommitStalls = c.stalls
		c.res.Stats.Pipeline.BusyNanos = c.p.busy.Load()
		c.p.opts.Progress(Progress{
			Cursor:         cursor,
			BestFlex:       c.fcur,
			MaxFlexibility: c.res.MaxFlexibility,
			Front:          frontToImplementations(c.front),
			Stats:          c.res.Stats,
		})
		c.lastEmit = cursor
	}
}

func (c *committer) stop() {
	c.stopped = true
	close(c.p.done)
}

// trimStack bounds a recovered panic's stack trace so Stats diags stay
// checkpoint-friendly.
func trimStack(stack []byte) string {
	const max = 2048
	if len(stack) > max {
		return string(stack[:max]) + "\n...[truncated]"
	}
	return string(stack)
}
