package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/alloc"
	"repro/internal/bitset"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// ExploreParallel runs EXPLORE with the per-candidate work — the
// flexibility estimation and the implementation construction — fanned
// out over worker goroutines while keeping the resulting front
// bit-for-bit identical to the sequential explorer.
//
// Determinism is preserved by processing candidates in waves: the
// cost-ordered enumeration fills a batch, workers evaluate the batch
// members concurrently against the bound as of the wave start, and the
// results are folded into the front in the original candidate order.
// The flexibility bound therefore lags by at most one wave compared to
// the sequential run, which can only cause extra work, never different
// fronts (a candidate the sequential run skips has estimate ≤ its
// bound, so its implementation is dominated by the archive).
//
// workers <= 0 selects GOMAXPROCS; batch <= 0 selects 8 x workers. On a
// single-core host the wave machinery adds only a few percent overhead;
// the speedup materializes with GOMAXPROCS > 1 because candidates are
// evaluated independently.
func ExploreParallel(s *spec.Spec, opts Options, workers, batch int) *Result {
	return ExploreParallelContext(context.Background(), s, opts, workers, batch)
}

// ExploreParallelContext is ExploreParallel under a context, with the
// same anytime semantics as ExploreContext: on cancellation the fold
// stops at the first unevaluated candidate (in candidate order), so the
// partial front is exactly the Pareto set of the explored prefix and
// Cursor marks where a resumed run continues.
//
// Candidate evaluations are additionally isolated against panics: a
// panicking estimation or implementation construction is recovered in
// its worker, recorded as a structured Diag in Stats, and the candidate
// is skipped — one poisoned design point cannot take down a long scan.
// (The sequential explorer deliberately does not recover: combined with
// periodic checkpointing, a crash there is recovered by resuming.)
func ExploreParallelContext(ctx context.Context, s *spec.Spec, opts Options, workers, batch int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return ExploreContext(ctx, s, opts)
	}
	if batch <= 0 {
		batch = 8 * workers
	}
	// Warm the lazy indexes of the specification before concurrent use.
	_ = Estimate(s, spec.Allocation{}, opts)

	// One evaluator, shared by all workers: its caches are sharded and
	// mutex-striped, so a binding proved (in)feasible by one worker is
	// reused by every other.
	ev := newEvaluator(s, opts)

	res := &Result{MaxFlexibility: MaxFlexibility(s, opts), Reason: ReasonCompleted}
	front := &pareto.Front{}
	fcur, startCursor := seedResume(res, front, opts.Resume)
	idx := 0
	lastEmit := startCursor
	res.Cursor = startCursor

	type job struct {
		idx       int
		alloc     spec.Allocation
		site      string
		est       float64
		sup       bitset.Set
		haveSup   bool
		estimated bool
		attempted bool
		cancelled bool
		impl      *Implementation
		stats     Stats
		diag      *Diag
	}
	var wave []*job

	// flush evaluates the pending wave concurrently and folds it into
	// the front in candidate order. It returns false when the scan must
	// stop (cancellation observed, or StopAtMaxFlex satisfied); the
	// termination reason and cursor are recorded on res either way, so
	// nothing is lost if a caller discards the return value.
	flush := func() bool {
		if len(wave) == 0 {
			return true
		}
		bound := fcur
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for _, j := range wave {
			wg.Add(1)
			sem <- struct{}{}
			go func(j *job) {
				defer wg.Done()
				defer func() { <-sem }()
				defer func() {
					if r := recover(); r != nil {
						j.diag = &Diag{
							Kind: DiagPanic, Site: j.site, Cursor: j.idx,
							Allocation: j.alloc.String(),
							Message:    fmt.Sprint(r),
							Stack:      trimStack(debug.Stack()),
						}
					}
				}()
				if ctx.Err() != nil {
					j.cancelled = true
					return
				}
				j.site = SiteEstimate
				if err := opts.Fault.Fire(SiteEstimate, j.idx); err != nil {
					j.diag = &Diag{
						Kind: DiagError, Site: SiteEstimate, Cursor: j.idx,
						Allocation: j.alloc.String(), Message: err.Error(),
					}
					return
				}
				if ctx.Err() != nil {
					j.cancelled = true
					return
				}
				j.estimated = true
				j.est, j.sup, j.haveSup = ev.estimate(j.alloc)
				if !opts.DisableFlexBound && j.est <= bound {
					return
				}
				j.site = SiteImplement
				if err := opts.Fault.Fire(SiteImplement, j.idx); err != nil {
					j.diag = &Diag{
						Kind: DiagError, Site: SiteImplement, Cursor: j.idx,
						Allocation: j.alloc.String(), Message: err.Error(),
					}
					return
				}
				j.attempted = true
				j.impl = ev.implement(j.alloc, j.sup, j.haveSup, &j.stats)
			}(j)
		}
		wg.Wait()
		stop := false
		for _, j := range wave {
			if j.cancelled {
				// The fold stops at the first candidate that was not
				// evaluated; completed jobs after it are discarded so
				// the front stays prefix-exact.
				res.Interrupted, res.Reason = true, reasonFor(ctx)
				res.Cursor = j.idx
				stop = true
				break
			}
			if j.estimated {
				res.Stats.Estimated++
			}
			if j.diag != nil {
				// Faulted or panicked: record the diagnostic, skip the
				// candidate, keep scanning.
				res.Stats.Diags = append(res.Stats.Diags, *j.diag)
				res.Cursor = j.idx + 1
				continue
			}
			// Second chance against the bound tightened within this
			// wave: drop results the sequential run would have skipped
			// (they are dominated anyway; skipping keeps the counters
			// closer to the sequential run's).
			if j.attempted && (opts.DisableFlexBound || j.est > fcur) {
				res.Stats.Attempted++
				res.Stats.ECSTested += j.stats.ECSTested
				res.Stats.BindingRuns += j.stats.BindingRuns
				res.Stats.BindingNodes += j.stats.BindingNodes
				if j.impl != nil {
					res.Stats.Feasible++
					if front.Add(&pareto.Entry{
						Objectives: pareto.CostFlexObjectives(j.impl.Cost, j.impl.Flexibility),
						Value:      j.impl,
					}) && j.impl.Flexibility > fcur {
						fcur = j.impl.Flexibility
					}
				}
				// Same stopping rule as the sequential explorer: check
				// only after an attempted implementation.
				if opts.StopAtMaxFlex && fcur >= res.MaxFlexibility {
					res.Reason = ReasonMaxFlex
					res.Cursor = j.idx + 1
					stop = true
					break
				}
			}
			res.Cursor = j.idx + 1
		}
		wave = wave[:0]
		return !stop
	}

	_, _, pc, _ := s.Problem.ElementCount()
	aStats := alloc.Enumerate(s, alloc.Options{
		IncludeUselessComm: opts.IncludeUselessComm,
		MaxScan:            opts.MaxScan,
	}, func(c alloc.Candidate) bool {
		res.Stats.PossibleAllocations++
		if idx < startCursor {
			idx++
			return true
		}
		if ctx.Err() != nil {
			if len(wave) == 0 {
				res.Interrupted, res.Reason = true, reasonFor(ctx)
			} else {
				// Fold the pending wave: its workers observe the
				// cancelled context and the fold lands on the first
				// unevaluated candidate.
				flush()
			}
			return false
		}
		wave = append(wave, &job{idx: idx, alloc: c.Allocation.Clone()})
		idx++
		if len(wave) >= batch {
			if !flush() {
				return false
			}
			if opts.Progress != nil && res.Cursor-lastEmit >= opts.progressEvery() {
				ev.fold(&res.Stats)
				opts.Progress(Progress{
					Cursor:         res.Cursor,
					BestFlex:       fcur,
					MaxFlexibility: res.MaxFlexibility,
					Front:          frontToImplementations(front),
					Stats:          res.Stats,
				})
				lastEmit = res.Cursor
			}
		}
		return true
	})
	// Final partial wave: flush records any StopAtMaxFlex hit or
	// cancellation on res (previously the return value — and with it
	// the termination reason — was silently discarded here).
	flush()
	ev.fold(&res.Stats)
	finishResult(res, aStats, pc, opts)
	res.Front = frontToImplementations(front)
	return res
}

// trimStack bounds a recovered panic's stack trace so Stats diags stay
// checkpoint-friendly.
func trimStack(stack []byte) string {
	const max = 2048
	if len(stack) > max {
		return string(stack[:max]) + "\n...[truncated]"
	}
	return string(stack)
}
