package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/pareto"
	"repro/internal/spec"
)

// ExploreParallel runs EXPLORE with the per-candidate work — the
// flexibility estimation and the implementation construction — fanned
// out over a pool of worker goroutines while keeping the resulting
// front bit-for-bit identical to the sequential explorer.
//
// The engine is a pipeline over *range jobs*: the cost-ordered
// enumeration is chunked into contiguous candidate ranges (adaptive
// size, or Options.Batch), a fixed pool of workers evaluates each
// range against a locally cached flexibility bound and folds the
// survivors into a private pareto.Front, and an ordered-commit stage
// reassembles the ranges in candidate order, replays their
// per-candidate records against the exact bound and merges the whole
// per-batch archives into the result front (pareto.Front.Merge).
// Compared to per-candidate jobs this removes the two serial
// bottlenecks that flattened the scaling curve: the channel handoff
// and the commit bookkeeping are paid once per range instead of once
// per candidate, and the shared bound is republished once per batch
// commit instead of once per implementation.
//
// Determinism is preserved by the commit order plus a second-chance
// re-check: a worker may act on a stale (i.e. lower) bound, which only
// causes extra implementation attempts; the commit stage replays each
// range's records against the exact sequential bound, so fronts,
// cursors, termination reasons and all semantic counters equal the
// sequential run's (see committer.commitBatch for the argument).
//
// workers <= 0 selects GOMAXPROCS; queue <= 0 selects 2 x workers
// range jobs of look-ahead. On a single-core host the pipeline adds
// only a few percent overhead; the speedup materializes with
// GOMAXPROCS > 1 because ranges are evaluated independently.
func ExploreParallel(s *spec.Spec, opts Options, workers, queue int) *Result {
	return ExploreParallelContext(context.Background(), s, opts, workers, queue)
}

// ExploreParallelContext is ExploreParallel under a context, with the
// same anytime semantics as ExploreContext: on cancellation the commit
// stage stops at the first unevaluated candidate (in candidate order),
// so the partial front is exactly the Pareto set of the explored prefix
// and Cursor marks where a resumed run continues.
//
// Candidate evaluations are additionally isolated against panics: a
// panicking estimation or implementation construction is recovered in
// its worker, recorded as a structured Diag in Stats, and the candidate
// is skipped — one poisoned design point cannot take down a long scan.
// (The sequential explorer deliberately does not recover: combined with
// periodic checkpointing, a crash there is recovered by resuming.)
func ExploreParallelContext(ctx context.Context, s *spec.Spec, opts Options, workers, queue int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return ExploreContext(ctx, s, opts)
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	// Warm the lazy indexes of the specification before concurrent use.
	_ = Estimate(s, spec.Allocation{}, opts)

	// One evaluator, shared by all workers: its caches are sharded and
	// mutex-striped, so a binding proved (in)feasible by one worker is
	// reused by every other.
	ev := newEvaluator(s, opts)

	res := &Result{MaxFlexibility: MaxFlexibility(s, opts), Reason: ReasonCompleted}
	front := &pareto.Front{}
	fcur, startCursor := seedResume(res, front, opts.Resume)
	res.Cursor = startCursor
	res.Stats.Pipeline = PipelineStats{Workers: workers, QueueDepth: queue}

	p := &pipeline{
		ctx:  ctx,
		ev:   ev,
		opts: opts,
		jobs: make(chan *pipeBatch, queue),
		// Sized so a worker can always deposit a result without
		// blocking the commit stage's drain: at most queue+workers
		// range jobs are in flight between producer and committer.
		results: make(chan *pipeBatch, queue+workers),
		done:    make(chan struct{}),
	}
	// The enumeration replays the resumed prefix internally; seed the
	// counter so the running count matches a from-scratch scan.
	p.possible.Store(int64(startCursor))
	p.storeBound(fcur)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range p.jobs {
				p.evaluate(b)
				p.results <- b
			}
		}()
	}
	go func() {
		wg.Wait()
		close(p.results)
	}()

	c := &committer{
		p:        p,
		res:      res,
		front:    front,
		fcur:     fcur,
		next:     startCursor,
		lastEmit: startCursor,
		pending:  map[int]*pipeBatch{},
	}
	commitDone := make(chan struct{})
	go func() {
		defer close(commitDone)
		c.run()
	}()

	// The producer: the cost-ordered enumeration runs on this
	// goroutine, slicing the candidate stream into contiguous range
	// jobs. Candidate indices are assigned here, so a range job is
	// addressed by its start index alone.
	idx := startCursor
	emitted := 0
	producerCancelled := false
	var cur *pipeBatch
	send := func(b *pipeBatch) bool {
		select {
		case p.jobs <- b:
			if l := int64(len(b.cands)); l > p.maxBatch.Load() {
				p.maxBatch.Store(l)
			}
			if l := int64(len(p.jobs)); l > p.highWater.Load() {
				p.highWater.Store(l)
			}
			// Yield once, after the first dispatch, so the scan's first
			// range job starts before the producer saturates the queue.
			// With sharded producers the stream arrives pre-buffered and
			// sends become back-to-back; on a single-P runtime the
			// scheduler's LIFO wakeup would then run the *latest*-readied
			// worker first, letting a late batch evaluate (and e.g. trip
			// a cancellation) before the first batch is even started —
			// collapsing the anytime cursor to 0. Yielding only here (not
			// per send) keeps the queue free to fill behind busy workers.
			if emitted == 1 {
				runtime.Gosched()
			}
			return true
		case <-p.done:
			// The commit stage ended the scan (cancellation committed
			// in order, or StopAtMaxFlex); b is dropped.
			return false
		}
	}
	_, _, pc, _ := s.Problem.ElementCount()
	producers := opts.producersFor(workers, len(alloc.Units(s)))
	aStats := enumerateRange(s, opts, producers, startCursor, func(cd alloc.Candidate) bool {
		p.possible.Add(1)
		if ctx.Err() != nil {
			producerCancelled = true
			return false
		}
		if cur == nil {
			cur = &pipeBatch{
				start: idx,
				cands: make([]spec.Allocation, 0, opts.batchSizeFor(emitted)),
			}
		}
		cur.cands = append(cur.cands, cd.Allocation)
		idx++
		if len(cur.cands) == cap(cur.cands) {
			b := cur
			cur = nil
			emitted++
			return send(b)
		}
		return true
	})
	if cur != nil && !producerCancelled {
		// The scan tail: a partial final range. If send fails the scan
		// already stopped and the tail is irrelevant.
		send(cur)
	}
	close(p.jobs)
	<-commitDone

	if producerCancelled && !c.stopped {
		// The producer observed the cancellation but every in-flight
		// range had already completed: the scan still ends interrupted,
		// prefix-exact at the last committed candidate.
		res.Interrupted, res.Reason = true, reasonFor(ctx)
	}
	res.Stats.PossibleAllocations = int(p.possible.Load())
	res.Stats.Pipeline.QueueHighWater = int(p.highWater.Load())
	res.Stats.Pipeline.CommitStalls = c.stalls
	res.Stats.Pipeline.BusyNanos = p.busy.Load()
	res.Stats.Pipeline.BatchSize = int(p.maxBatch.Load())
	res.Stats.Pipeline.BatchesCommitted = c.batches
	res.Stats.Pipeline.BoundPublishes = int(p.publishes.Load())
	ev.fold(&res.Stats)
	// A final progress event covers the scan tail past the last
	// periodic emission, so long tails still report (and a checkpoint
	// writer hooked on Progress captures the finished prefix).
	if opts.Progress != nil && res.Cursor > c.lastEmit {
		opts.Progress(Progress{
			Cursor:         res.Cursor,
			BestFlex:       c.fcur,
			MaxFlexibility: res.MaxFlexibility,
			Front:          frontToImplementations(front),
			Stats:          res.Stats,
		})
	}
	finishResult(res, aStats, pc, opts)
	res.Front = frontToImplementations(front)
	return res
}

// batchSizeFor returns the size of the k-th range job of a run. An
// explicit Options.Batch pins every batch to that size. The adaptive
// default ramps 4, 8, 16, ... so the first commits land quickly (low
// latency for Progress consumers and StopAtMaxFlex), then settles at
// 64 candidates per job — large enough to amortize the channel handoff
// and commit bookkeeping, small enough to keep the reorder buffer and
// the cancellation overshoot bounded. When progress reporting is on,
// the ramp is additionally capped at the progress interval so batch
// commits never emit coarser than ProgressEvery.
func (o Options) batchSizeFor(k int) int {
	if o.Batch > 0 {
		return o.Batch
	}
	limit := 64
	if o.Progress != nil && o.progressEvery() < limit {
		limit = o.progressEvery()
	}
	size := 4
	for i := 0; i < k && size < limit; i++ {
		size *= 2
	}
	if size > limit {
		size = limit
	}
	return size
}

// pipeBatch is one contiguous candidate range travelling through the
// pipeline: the allocations to evaluate (indices start..start+len-1 of
// the cost-ordered enumeration), one record per candidate carrying its
// evaluation outcome, and the worker's private archive of the
// implementations that survived its local bound.
type pipeBatch struct {
	start int
	cands []spec.Allocation
	recs  []batchRec
	front *pareto.Front
}

// batchRec is the per-candidate evaluation record the ordered-commit
// stage replays against the exact flexibility bound. It carries the
// implementation pointer as well — redundant with the batch front in
// the common case, but required for the rare mid-batch stop, where the
// committed prefix ends inside the range and the batch archive (which
// covers the whole range) cannot be merged wholesale.
type batchRec struct {
	site         string
	est          float64
	estimated    bool
	attempted    bool
	cancelled    bool
	impl         *Implementation
	ecsTested    int
	bindingRuns  int
	bindingNodes int
	diag         *Diag
}

// pipeline holds the shared state of one parallel run: the channels,
// the atomically published flexibility bound, and the contention
// gauges.
type pipeline struct {
	ctx     context.Context
	ev      *evaluator
	opts    Options
	jobs    chan *pipeBatch
	results chan *pipeBatch
	// done is closed by the commit stage when the scan must stop;
	// producer and workers treat it as a fast-path skip.
	done chan struct{}
	// bound is the best implemented flexibility (math.Float64bits),
	// written by the commit stage once per committed batch, read by
	// workers once per batch. A stale read only admits extra
	// implementation attempts; the commit stage re-checks against the
	// exact bound.
	bound     atomic.Uint64
	publishes atomic.Int64
	possible  atomic.Int64
	highWater atomic.Int64
	busy      atomic.Int64
	maxBatch  atomic.Int64
}

// loadBound reads the published flexibility bound. It and storeBound
// are the only places allowed to convert the bound through
// math.Float64bits (enforced by flexvet FX002).
//
//flexvet:bound-helper
func (p *pipeline) loadBound() float64 {
	return math.Float64frombits(p.bound.Load())
}

// storeBound publishes a new flexibility bound to the workers and
// counts the publication — the relaxed per-batch cadence is the
// BoundPublishes gauge.
//
//flexvet:bound-helper
func (p *pipeline) storeBound(f float64) {
	p.bound.Store(math.Float64bits(f))
	p.publishes.Add(1)
}

// evaluate runs one range job on a worker goroutine. The published
// bound is read once per batch into a worker-local bound, which the
// worker's own implemented flexibilities then raise: for any candidate
// the local bound is never above the exact sequential bound at that
// candidate (the atomic is at most the bound at the batch's commit
// turn, and an own implementation's flexibility F at an earlier index
// satisfies F <= est there, which is <= the sequential bound whenever
// the sequential run skipped it) — so the worker attempts a superset
// of the sequential run's attempts and skips none of them, which is
// what makes the committer's exact replay sufficient.
func (p *pipeline) evaluate(b *pipeBatch) {
	start := time.Now() //flexvet:ignore FX006 busy gauge: elapsed time is telemetry, never part of results
	defer func() { p.busy.Add(time.Since(start).Nanoseconds()) }()
	b.recs = make([]batchRec, len(b.cands))
	b.front = &pareto.Front{}
	bound := p.loadBound()
	for i := range b.cands {
		select {
		case <-p.done:
			// The scan already ended at an earlier candidate; the
			// commit stage discards this range unexamined.
			return
		default:
		}
		if p.ctx.Err() != nil {
			b.recs[i].cancelled = true
			return
		}
		bound = p.evalOne(b, i, bound)
		if b.recs[i].cancelled {
			return
		}
	}
}

// evalOne runs the per-candidate work, mirroring the sequential
// explorer's order of operations exactly: estimate failpoint,
// cancellation re-check, estimation, bound check, implement failpoint,
// implementation construction. It returns the (possibly raised)
// worker-local bound. A panic is recovered into a per-candidate Diag,
// exactly isolating the poisoned candidate.
func (p *pipeline) evalOne(b *pipeBatch, i int, bound float64) float64 {
	idx := b.start + i
	r := &b.recs[i]
	defer func() {
		if rec := recover(); rec != nil {
			r.diag = &Diag{
				Kind: DiagPanic, Site: r.site, Cursor: idx,
				Allocation: b.cands[i].String(),
				Message:    fmt.Sprint(rec),
				Stack:      trimStack(debug.Stack()),
			}
		}
	}()
	r.site = SiteEstimate
	if err := p.opts.Fault.Fire(SiteEstimate, idx); err != nil {
		r.diag = &Diag{
			Kind: DiagError, Site: SiteEstimate, Cursor: idx,
			Allocation: b.cands[i].String(), Message: err.Error(),
		}
		return bound
	}
	if p.ctx.Err() != nil {
		// A Cancel failpoint fired between the two checks.
		r.cancelled = true
		return bound
	}
	r.estimated = true
	est, sup, haveSup := p.ev.estimate(b.cands[i])
	r.est = est
	if !p.opts.DisableFlexBound && est <= bound {
		return bound
	}
	r.site = SiteImplement
	if err := p.opts.Fault.Fire(SiteImplement, idx); err != nil {
		r.diag = &Diag{
			Kind: DiagError, Site: SiteImplement, Cursor: idx,
			Allocation: b.cands[i].String(), Message: err.Error(),
		}
		return bound
	}
	r.attempted = true
	var st Stats
	r.impl = p.ev.implement(b.cands[i], sup, haveSup, &st)
	r.ecsTested, r.bindingRuns, r.bindingNodes = st.ECSTested, st.BindingRuns, st.BindingNodes
	if r.impl != nil {
		b.front.Add(&pareto.Entry{
			Objectives: pareto.CostFlexObjectives(r.impl.Cost, r.impl.Flexibility),
			Value:      r.impl,
		})
		if r.impl.Flexibility > bound {
			bound = r.impl.Flexibility
		}
	}
	return bound
}

// committer is the ordered-commit stage: it owns the result, the front
// and the exact flexibility bound, folding whole range jobs strictly in
// candidate order through a reorder buffer keyed by range start.
type committer struct {
	p        *pipeline
	res      *Result
	front    *pareto.Front
	fcur     float64
	next     int
	lastEmit int
	pending  map[int]*pipeBatch
	stalls   int
	batches  int
	stopped  bool
}

func (c *committer) run() {
	for b := range c.p.results {
		if c.stopped {
			// Drain: the scan already ended at an earlier candidate.
			continue
		}
		if b.start != c.next {
			c.pending[b.start] = b
			c.stalls++
			continue
		}
		c.commitBatch(b)
		for !c.stopped {
			nb, ok := c.pending[c.next]
			if !ok {
				break
			}
			delete(c.pending, c.next)
			c.commitBatch(nb)
		}
	}
}

// commitBatch folds one in-order range job into the result — the same
// fold, in the same order, as the sequential explorer's candidate
// loop. The counters and the exact bound come from replaying the
// per-candidate records; the front comes from merging the batch's
// private archive wholesale.
//
// Why the wholesale merge is exact: by induction the committed front
// is the sequential front of the prefix and c.fcur the sequential
// bound. The worker attempted a superset of the sequential attempts
// (see evaluate), so every implementation the sequential run folds is
// in the batch records; the replay filter `attempted && est > fcur`
// recovers exactly the sequential attempt set, and raising fcur by
// each such implementation's flexibility equals the sequential
// front.Add-gated update (an implementation with flexibility above
// fcur is never dominated — every archived entry has flexibility
// <= fcur). For the front itself, any *extra* survivor in the batch
// archive (attempted only under the stale bound, est <= fcur at its
// turn) has flexibility <= est <= fcur while the committed front
// always holds an entry with flexibility >= fcur and cost <= the
// batch's costs (cost-ordered scan), so Merge rejects it as
// dominated-or-equal; and any batch-archive eviction it caused would
// have been rejected by the sequential Add for the same reason. Equal-
// objective ties keep the earliest entry in both designs. Hence
// Merge(batch archive) == the per-candidate sequential fold, payloads
// included.
func (c *committer) commitBatch(b *pipeBatch) {
	entry := c.fcur
	for i := range b.recs {
		r := &b.recs[i]
		idx := b.start + i
		if r.cancelled || (!r.estimated && r.diag == nil) {
			// First unevaluated candidate: the scan ends here,
			// prefix-exact. The batch archive covers candidates past
			// the stop, so the prefix is refolded per candidate.
			c.refold(b, i, entry)
			c.res.Interrupted, c.res.Reason = true, reasonFor(c.p.ctx)
			c.res.Cursor = idx
			c.stop()
			return
		}
		if r.estimated {
			c.res.Stats.Estimated++
		}
		if r.diag != nil {
			// Faulted or panicked: record the diagnostic, skip the
			// candidate, keep scanning.
			c.res.Stats.Diags = append(c.res.Stats.Diags, *r.diag)
			continue
		}
		// Second chance against the exact bound as of this candidate's
		// commit turn: drop attempts the sequential run would have
		// skipped.
		if r.attempted && (c.p.opts.DisableFlexBound || r.est > c.fcur) {
			c.res.Stats.Attempted++
			c.res.Stats.ECSTested += r.ecsTested
			c.res.Stats.BindingRuns += r.bindingRuns
			c.res.Stats.BindingNodes += r.bindingNodes
			if r.impl != nil {
				c.res.Stats.Feasible++
				if r.impl.Flexibility > c.fcur {
					c.fcur = r.impl.Flexibility
				}
			}
			// Same stopping rule as the sequential explorer: check
			// only after an attempted implementation.
			if c.p.opts.StopAtMaxFlex && c.fcur >= c.res.MaxFlexibility {
				c.refold(b, i+1, entry)
				c.res.Reason = ReasonMaxFlex
				c.res.Cursor = idx + 1
				c.stop()
				return
			}
		}
	}
	c.front.Merge(b.front)
	if c.fcur > entry {
		// Republish once per committed batch — the relaxed cadence.
		c.p.storeBound(c.fcur)
	}
	c.batches++
	c.advance(b.start + len(b.recs))
}

// refold is the rare mid-batch stop path (cancellation, StopAtMaxFlex):
// the batch archive cannot be merged wholesale because it covers
// candidates past the stopping point, so the committed prefix
// recs[:end] is folded per candidate instead — the literal sequential
// fold, replaying the exact-bound filter from the batch-entry bound.
func (c *committer) refold(b *pipeBatch, end int, fcur float64) {
	for i := 0; i < end; i++ {
		r := &b.recs[i]
		if r.diag != nil || !r.attempted {
			continue
		}
		if !c.p.opts.DisableFlexBound && r.est <= fcur {
			continue
		}
		if r.impl == nil {
			continue
		}
		c.front.Add(&pareto.Entry{
			Objectives: pareto.CostFlexObjectives(r.impl.Cost, r.impl.Flexibility),
			Value:      r.impl,
		})
		if r.impl.Flexibility > fcur {
			fcur = r.impl.Flexibility
		}
	}
}

func (c *committer) advance(cursor int) {
	c.next = cursor
	c.res.Cursor = cursor
	if c.p.opts.Progress != nil && cursor-c.lastEmit >= c.p.opts.progressEvery() {
		c.p.ev.fold(&c.res.Stats)
		c.res.Stats.PossibleAllocations = int(c.p.possible.Load())
		c.res.Stats.Pipeline.QueueHighWater = int(c.p.highWater.Load())
		c.res.Stats.Pipeline.CommitStalls = c.stalls
		c.res.Stats.Pipeline.BusyNanos = c.p.busy.Load()
		c.res.Stats.Pipeline.BatchSize = int(c.p.maxBatch.Load())
		c.res.Stats.Pipeline.BatchesCommitted = c.batches
		c.res.Stats.Pipeline.BoundPublishes = int(c.p.publishes.Load())
		c.p.opts.Progress(Progress{
			Cursor:         cursor,
			BestFlex:       c.fcur,
			MaxFlexibility: c.res.MaxFlexibility,
			Front:          frontToImplementations(c.front),
			Stats:          c.res.Stats,
		})
		c.lastEmit = cursor
	}
}

func (c *committer) stop() {
	c.stopped = true
	close(c.p.done)
}

// trimStack bounds a recovered panic's stack trace so Stats diags stay
// checkpoint-friendly.
func trimStack(stack []byte) string {
	const max = 2048
	if len(stack) > max {
		return string(stack[:max]) + "\n...[truncated]"
	}
	return string(stack)
}
