package core

import (
	"encoding/json"

	"repro/internal/hgraph"
)

// jsonResult is the wire form of an exploration result, for downstream
// tooling (plotting, regression dashboards).
type jsonResult struct {
	MaxFlexibility float64              `json:"maxFlexibility"`
	Interrupted    bool                 `json:"interrupted,omitempty"`
	Reason         string               `json:"reason,omitempty"`
	Cursor         int                  `json:"cursor"`
	Front          []jsonImplementation `json:"front"`
	Stats          jsonStats            `json:"stats"`
}

type jsonImplementation struct {
	Allocation  []string        `json:"allocation"`
	Cost        float64         `json:"cost"`
	Flexibility float64         `json:"flexibility"`
	Clusters    []string        `json:"clusters"`
	Behaviours  []jsonBehaviour `json:"behaviours,omitempty"`
}

type jsonBehaviour struct {
	Selection     map[string]string `json:"selection"`
	ArchSelection map[string]string `json:"archSelection,omitempty"`
	Binding       map[string]string `json:"binding"`
}

type jsonStats struct {
	DesignSpace         float64    `json:"designSpace"`
	AllocSpace          float64    `json:"allocSpace"`
	Scanned             int        `json:"scanned"`
	PossibleAllocations int        `json:"possibleAllocations"`
	Attempted           int        `json:"attempted"`
	Feasible            int        `json:"feasible"`
	ECSTested           int        `json:"ecsTested"`
	BindingRuns         int        `json:"bindingRuns"`
	BindingNodes        int        `json:"bindingNodes"`
	Cache               CacheStats `json:"cache"`
	// Pipeline appears only for parallel runs (nil for sequential ones,
	// keeping their wire form unchanged).
	Pipeline *PipelineStats `json:"pipeline,omitempty"`
	Diags    []Diag         `json:"diags,omitempty"`
}

// MarshalJSON encodes the result — front, per-implementation behaviours
// and effort counters — deterministically.
func (r *Result) MarshalJSON() ([]byte, error) {
	out := jsonResult{
		MaxFlexibility: r.MaxFlexibility,
		Interrupted:    r.Interrupted,
		Reason:         string(r.Reason),
		Cursor:         r.Cursor,
		Stats: jsonStats{
			DesignSpace:         r.Stats.DesignSpace,
			AllocSpace:          r.Stats.AllocSpace,
			Scanned:             r.Stats.Scanned,
			PossibleAllocations: r.Stats.PossibleAllocations,
			Attempted:           r.Stats.Attempted,
			Feasible:            r.Stats.Feasible,
			ECSTested:           r.Stats.ECSTested,
			BindingRuns:         r.Stats.BindingRuns,
			BindingNodes:        r.Stats.BindingNodes,
			Cache:               r.Stats.Cache,
			Diags:               r.Stats.Diags,
		},
	}
	if p := r.Stats.Pipeline; p != (PipelineStats{}) {
		out.Stats.Pipeline = &p
	}
	for _, im := range r.Front {
		ji := jsonImplementation{
			Cost:        im.Cost,
			Flexibility: im.Flexibility,
		}
		for _, id := range im.Allocation.IDs() {
			ji.Allocation = append(ji.Allocation, string(id))
		}
		for _, c := range im.Clusters {
			ji.Clusters = append(ji.Clusters, string(c))
		}
		for _, b := range im.Behaviours {
			ji.Behaviours = append(ji.Behaviours, jsonBehaviour{
				Selection:     selToMap(b.ECS.Selection),
				ArchSelection: selToMap(b.ArchSelection),
				Binding:       bindToMap(b.Binding),
			})
		}
		out.Front = append(out.Front, ji)
	}
	return json.MarshalIndent(out, "", "  ")
}

func selToMap(s hgraph.Selection) map[string]string {
	if len(s) == 0 {
		return nil
	}
	m := map[string]string{}
	for k, v := range s {
		m[string(k)] = string(v)
	}
	return m
}

func bindToMap(b map[hgraph.ID]hgraph.ID) map[string]string {
	m := map[string]string{}
	for k, v := range b {
		m[string(k)] = string(v)
	}
	return m
}
