package bind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hgraph"
	"repro/internal/spec"
)

// buildFig2 constructs a Fig. 2-style decoder specification. The
// architecture has no bus between the ASIC and the FPGA, so the
// published infeasible-binding example (decryption on the ASIC,
// uncompression on the FPGA) must be rejected.
func buildFig2(t testing.TB) *spec.Spec {
	t.Helper()
	pb := hgraph.NewBuilder("problem", "ptop")
	r := pb.Root()
	r.Vertex("PA").Vertex("PC")
	ifD := r.Interface("IfD", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	ifD.Cluster("gD1").Vertex("PD1", spec.AttrPeriod, 300).Bind("in", "PD1").Bind("out", "PD1")
	ifD.Cluster("gD2").Vertex("PD2", spec.AttrPeriod, 300).Bind("in", "PD2").Bind("out", "PD2")
	ifD.Cluster("gD3").Vertex("PD3", spec.AttrPeriod, 300).Bind("in", "PD3").Bind("out", "PD3")
	ifU := r.Interface("IfU", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	ifU.Cluster("gU1").Vertex("PU1", spec.AttrPeriod, 300).Bind("in", "PU1").Bind("out", "PU1")
	ifU.Cluster("gU2").Vertex("PU2", spec.AttrPeriod, 300).Bind("in", "PU2").Bind("out", "PU2")
	r.PortEdge("PC", "", "IfD", "in")
	r.PortEdge("IfD", "out", "IfU", "in")
	problem := pb.MustBuild()

	ab := hgraph.NewBuilder("arch", "atop")
	ar := ab.Root()
	ar.Vertex("uP", spec.AttrCost, 50)
	ar.Vertex("A", spec.AttrCost, 100)
	ar.Vertex("C1", spec.AttrCost, 5, spec.AttrComm, 1)
	ar.Vertex("C2", spec.AttrCost, 5, spec.AttrComm, 1)
	fpga := ar.Interface("FPGA", hgraph.Port{Name: "bus"})
	fpga.Cluster("dD3").Vertex("D3", spec.AttrCost, 20).Bind("bus", "D3")
	fpga.Cluster("dU2").Vertex("U2", spec.AttrCost, 20).Bind("bus", "U2")
	ar.Edge("uP", "C1")
	ar.PortEdge("C1", "", "FPGA", "bus")
	ar.Edge("uP", "C2")
	ar.Edge("C2", "A")
	arch := ab.MustBuild()

	return spec.MustNew("fig2", problem, arch, []*spec.Mapping{
		{Process: "PA", Resource: "uP", Latency: 55},
		{Process: "PC", Resource: "uP", Latency: 10},
		{Process: "PD1", Resource: "uP", Latency: 85},
		{Process: "PD1", Resource: "A", Latency: 25},
		{Process: "PD2", Resource: "A", Latency: 35},
		{Process: "PD3", Resource: "D3", Latency: 63},
		{Process: "PU1", Resource: "uP", Latency: 40},
		{Process: "PU1", Resource: "A", Latency: 15},
		{Process: "PU2", Resource: "A", Latency: 29},
		{Process: "PU2", Resource: "U2", Latency: 59},
	})
}

// flatAndView flattens the problem graph under a decoder behaviour and
// builds the architecture view for an allocation.
func flatAndView(t testing.TB, s *spec.Spec, d, u string, alloc spec.Allocation, archSel hgraph.Selection) (*hgraph.FlatGraph, *spec.ArchView) {
	t.Helper()
	fp, err := s.Problem.Flatten(hgraph.Selection{"IfD": hgraph.ID(d), "IfU": hgraph.ID(u)})
	if err != nil {
		t.Fatal(err)
	}
	av, err := s.ArchViewFor(alloc, archSel)
	if err != nil {
		t.Fatal(err)
	}
	return fp, av
}

func TestFindOnSingleProcessor(t *testing.T) {
	s := buildFig2(t)
	fp, av := flatAndView(t, s, "gD1", "gU1", spec.NewAllocation("uP"), nil)
	res, ok := Find(s, fp, av, Options{})
	if !ok {
		t.Fatal("binding on uP alone should exist (PD1, PU1 both map to uP)")
	}
	if res.Binding["PD1"] != "uP" || res.Binding["PU1"] != "uP" {
		t.Errorf("binding = %v", res.Binding)
	}
	if err := Check(s, fp, av, res.Binding, Options{}); err != nil {
		t.Errorf("Check rejected solver output: %v", err)
	}
}

// TestFig2InfeasibleExample reproduces the paper's infeasible binding:
// P_D2 on the ASIC and the uncompression on the FPGA cannot
// communicate because no bus connects ASIC and FPGA.
func TestFig2InfeasibleExample(t *testing.T) {
	s := buildFig2(t)
	alloc := spec.NewAllocation("uP", "A", "C1", "C2", "dU2")
	fp, av := flatAndView(t, s, "gD2", "gU2", alloc, hgraph.Selection{"FPGA": "dU2"})

	// The manual infeasible binding is rejected by the validator.
	bad := Binding{"PA": "uP", "PC": "uP", "PD2": "A", "PU2": "U2"}
	if err := Check(s, fp, av, bad, Options{}); err == nil {
		t.Error("Check accepted the paper's infeasible binding (A ↔ FPGA without bus)")
	}

	// The solver finds the feasible alternative (PU2 on the ASIC).
	res, ok := Find(s, fp, av, Options{})
	if !ok {
		t.Fatal("a feasible binding exists (PD2 and PU2 both on A)")
	}
	if res.Binding["PD2"] != "A" || res.Binding["PU2"] != "A" {
		t.Errorf("binding = %v, want PD2 and PU2 on A", res.Binding)
	}
}

func TestFindInfeasibleWhenOnlyFPGAHostsU2(t *testing.T) {
	s := buildFig2(t)
	// Without the ASIC, PD2 has no resource at all.
	alloc := spec.NewAllocation("uP", "C1", "dU2")
	fp, av := flatAndView(t, s, "gD2", "gU2", alloc, hgraph.Selection{"FPGA": "dU2"})
	if _, ok := Find(s, fp, av, Options{}); ok {
		t.Error("PD2 unbindable without ASIC; Find must fail")
	}
}

func TestFindCommunicationViaBus(t *testing.T) {
	s := buildFig2(t)
	// PD3 only runs on the FPGA design D3; PU1 then must sit on uP
	// (reachable via C1), not on the unconnected ASIC.
	alloc := spec.NewAllocation("uP", "A", "C1", "dD3")
	fp, av := flatAndView(t, s, "gD3", "gU1", alloc, hgraph.Selection{"FPGA": "dD3"})
	res, ok := Find(s, fp, av, Options{})
	if !ok {
		t.Fatal("feasible binding exists (PD3 on D3, PU1 on uP)")
	}
	if res.Binding["PD3"] != "D3" || res.Binding["PU1"] != "uP" {
		t.Errorf("binding = %v", res.Binding)
	}
	if err := Check(s, fp, av, res.Binding, Options{}); err != nil {
		t.Error(err)
	}
}

func TestTimingPolicies(t *testing.T) {
	// Two period-240 tasks of 95 and 90 on a single processor: the
	// paper's 69% test rejects (U = 0.77), exact RTA accepts
	// (R = 95, 185 ≤ 240) — the ablation the paper's §2 foreshadows.
	pb := hgraph.NewBuilder("p", "pt")
	pb.Root().Vertex("X", spec.AttrPeriod, 240).Vertex("Y", spec.AttrPeriod, 240)
	pb.Root().Edge("X", "Y")
	prob := pb.MustBuild()
	ab := hgraph.NewBuilder("a", "at")
	ab.Root().Vertex("uP", spec.AttrCost, 100)
	arch := ab.MustBuild()
	s := spec.MustNew("timing", prob, arch, []*spec.Mapping{
		{Process: "X", Resource: "uP", Latency: 95},
		{Process: "Y", Resource: "uP", Latency: 90},
	})
	fp, err := s.Problem.Flatten(nil)
	if err != nil {
		t.Fatal(err)
	}
	av, err := s.ArchViewFor(spec.NewAllocation("uP"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Find(s, fp, av, Options{Timing: TimingPaper}); ok {
		t.Error("paper 69% test must reject U=0.77")
	}
	if _, ok := Find(s, fp, av, Options{Timing: TimingLiuLayland}); !ok {
		t.Error("exact Liu-Layland bound accepts U=0.77 for n=2 (bound 0.828)")
	}
	if _, ok := Find(s, fp, av, Options{Timing: TimingRTA}); !ok {
		t.Error("exact RTA should accept")
	}
	if _, ok := Find(s, fp, av, Options{Timing: TimingNone}); !ok {
		t.Error("TimingNone should accept")
	}
}

func TestCheckRejections(t *testing.T) {
	s := buildFig2(t)
	alloc := spec.NewAllocation("uP", "A", "C2")
	fp, av := flatAndView(t, s, "gD1", "gU1", alloc, nil)
	good := Binding{"PA": "uP", "PC": "uP", "PD1": "A", "PU1": "A"}
	if err := Check(s, fp, av, good, Options{}); err != nil {
		t.Fatalf("good binding rejected: %v", err)
	}
	cases := []struct {
		name string
		b    Binding
	}{
		{"unbound process", Binding{"PA": "uP", "PC": "uP", "PD1": "A"}},
		{"no mapping edge", Binding{"PA": "A", "PC": "uP", "PD1": "A", "PU1": "A"}},
		{"resource not allocated", Binding{"PA": "uP", "PC": "uP", "PD1": "uP", "PU1": "U2"}},
		{"extra process", Binding{"PA": "uP", "PC": "uP", "PD1": "A", "PU1": "A", "PD2": "A"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Check(s, fp, av, tc.b, Options{}); err == nil {
				t.Errorf("Check accepted %s", tc.name)
			}
		})
	}
}

func TestMaxNodesTruncation(t *testing.T) {
	s := buildFig2(t)
	alloc := spec.NewAllocation("uP", "A", "C1", "C2", "dD3")
	fp, av := flatAndView(t, s, "gD3", "gU1", alloc, hgraph.Selection{"FPGA": "dD3"})
	res, ok := Find(s, fp, av, Options{MaxNodes: 1})
	if ok {
		t.Error("MaxNodes=1 cannot complete this instance")
	}
	if !res.Truncated {
		t.Error("Truncated flag should be set")
	}
}

func TestDeterminism(t *testing.T) {
	s := buildFig2(t)
	alloc := spec.NewAllocation("uP", "A", "C1", "C2", "dD3", "dU2")
	fp, av := flatAndView(t, s, "gD1", "gU2", alloc, hgraph.Selection{"FPGA": "dU2"})
	first, ok := Find(s, fp, av, Options{})
	if !ok {
		t.Fatal("binding should exist")
	}
	for i := 0; i < 5; i++ {
		again, ok := Find(s, fp, av, Options{})
		if !ok || again.Binding.String() != first.Binding.String() {
			t.Fatalf("nondeterministic result: %v vs %v", again.Binding, first.Binding)
		}
		if again.Nodes != first.Nodes {
			t.Fatalf("nondeterministic node count: %d vs %d", again.Nodes, first.Nodes)
		}
	}
}

func TestTotalLatency(t *testing.T) {
	s := buildFig2(t)
	b := Binding{"PA": "uP", "PC": "uP", "PD1": "A", "PU1": "A"}
	if got := TotalLatency(s, b); got != 55+10+25+15 {
		t.Errorf("TotalLatency = %v, want 105", got)
	}
}

func TestBindingCloneAndString(t *testing.T) {
	b := Binding{"p": "r"}
	c := b.Clone()
	c["p"] = "other"
	if b["p"] != "r" {
		t.Error("Clone shares storage")
	}
	if b.String() != "{p->r}" {
		t.Errorf("String = %s", b.String())
	}
}

// Property: whenever Find succeeds, Check accepts its output — across
// random allocations, behaviours and timing policies.
func TestPropFindOutputsAreValid(t *testing.T) {
	s := buildFig2(t)
	elems := []hgraph.ID{"uP", "A", "C1", "C2", "dD3", "dU2"}
	ds := []string{"gD1", "gD2", "gD3"}
	us := []string{"gU1", "gU2"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alloc := spec.Allocation{}
		for _, e := range elems {
			if rng.Intn(2) == 0 {
				alloc[e] = true
			}
		}
		d := ds[rng.Intn(len(ds))]
		u := us[rng.Intn(len(us))]
		policy := TimingPolicy(rng.Intn(4))
		ok := true
		alloc.EnumerateArchSelections(s, func(archSel hgraph.Selection) bool {
			fp, err := s.Problem.Flatten(hgraph.Selection{"IfD": hgraph.ID(d), "IfU": hgraph.ID(u)})
			if err != nil {
				ok = false
				return false
			}
			av, err := s.ArchViewFor(alloc, archSel)
			if err != nil {
				ok = false
				return false
			}
			res, found := Find(s, fp, av, Options{Timing: policy})
			if found {
				if err := Check(s, fp, av, res.Binding, Options{Timing: policy}); err != nil {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: a stricter timing policy never finds a binding where a
// looser one proves infeasibility (None ⊇ RTA ⊇ {LL, Paper} acceptance).
func TestPropTimingPolicyOrdering(t *testing.T) {
	s := buildFig2(t)
	ds := []string{"gD1", "gD2", "gD3"}
	us := []string{"gU1", "gU2"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alloc := spec.NewAllocation("uP", "A", "C1", "C2")
		d := ds[rng.Intn(len(ds))]
		u := us[rng.Intn(len(us))]
		fp, err := s.Problem.Flatten(hgraph.Selection{"IfD": hgraph.ID(d), "IfU": hgraph.ID(u)})
		if err != nil {
			return true // unbindable behaviours are fine
		}
		av, err := s.ArchViewFor(alloc, nil)
		if err != nil {
			return false
		}
		_, okNone := Find(s, fp, av, Options{Timing: TimingNone})
		_, okRTA := Find(s, fp, av, Options{Timing: TimingRTA})
		_, okLL := Find(s, fp, av, Options{Timing: TimingLiuLayland})
		_, okPaper := Find(s, fp, av, Options{Timing: TimingPaper})
		if okRTA && !okNone {
			return false
		}
		if okLL && !okRTA {
			return false
		}
		if okPaper && !okRTA {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFind(b *testing.B) {
	s := buildFig2(b)
	alloc := spec.NewAllocation("uP", "A", "C1", "C2", "dD3", "dU2")
	fp, err := s.Problem.Flatten(hgraph.Selection{"IfD": "gD3", "IfU": "gU2"})
	if err != nil {
		b.Fatal(err)
	}
	av, err := s.ArchViewFor(alloc, hgraph.Selection{"FPGA": "dD3"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Find(s, fp, av, Options{})
	}
}

func TestTimingEDFPolicy(t *testing.T) {
	// Two period-240 tasks of 95 and 90: U = 0.77 — rejected by the
	// paper's estimate, accepted by EDF (U ≤ 1).
	pb := hgraph.NewBuilder("p", "pt2")
	pb.Root().Vertex("X2", spec.AttrPeriod, 240).Vertex("Y2", spec.AttrPeriod, 240)
	prob := pb.MustBuild()
	ab := hgraph.NewBuilder("a", "at2")
	ab.Root().Vertex("uP", spec.AttrCost, 100)
	arch := ab.MustBuild()
	s := spec.MustNew("edf", prob, arch, []*spec.Mapping{
		{Process: "X2", Resource: "uP", Latency: 95},
		{Process: "Y2", Resource: "uP", Latency: 90},
	})
	fp, err := s.Problem.Flatten(nil)
	if err != nil {
		t.Fatal(err)
	}
	av, err := s.ArchViewFor(spec.NewAllocation("uP"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Find(s, fp, av, Options{Timing: TimingEDF}); !ok {
		t.Error("EDF policy should accept U=0.77")
	}
	if TimingEDF.String() != "edf" {
		t.Errorf("String = %s", TimingEDF.String())
	}
}

func TestTimingHyperbolicPolicy(t *testing.T) {
	// Classic set (1,2)+(1,3): LL rejects, hyperbolic accepts exactly.
	pb := hgraph.NewBuilder("p", "pth")
	pb.Root().Vertex("H1", spec.AttrPeriod, 2).Vertex("H2", spec.AttrPeriod, 3)
	prob := pb.MustBuild()
	ab := hgraph.NewBuilder("a", "ath")
	ab.Root().Vertex("R", spec.AttrCost, 1)
	arch := ab.MustBuild()
	s := spec.MustNew("hyp", prob, arch, []*spec.Mapping{
		{Process: "H1", Resource: "R", Latency: 1},
		{Process: "H2", Resource: "R", Latency: 1},
	})
	fp, err := s.Problem.Flatten(nil)
	if err != nil {
		t.Fatal(err)
	}
	av, err := s.ArchViewFor(spec.NewAllocation("R"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Find(s, fp, av, Options{Timing: TimingLiuLayland}); ok {
		t.Error("LL must reject U=0.833 for n=2")
	}
	if _, ok := Find(s, fp, av, Options{Timing: TimingHyperbolic}); !ok {
		t.Error("hyperbolic bound accepts (1.5)(4/3) = 2")
	}
	if TimingHyperbolic.String() != "hyperbolic" {
		t.Error("String")
	}
}
