package bind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hgraph"
	"repro/internal/spec"
)

func TestFindMinLatencyBeatsFirstFeasible(t *testing.T) {
	s := buildFig2(t)
	alloc := spec.NewAllocation("uP", "A", "C2")
	fp, av := flatAndView(t, s, "gD1", "gU1", alloc, nil)
	first, ok := Find(s, fp, av, Options{})
	if !ok {
		t.Fatal("feasible")
	}
	best, ok := FindMinLatency(s, fp, av, Options{})
	if !ok {
		t.Fatal("optimum exists")
	}
	if err := Check(s, fp, av, best.Binding, Options{}); err != nil {
		t.Fatalf("optimal binding invalid: %v", err)
	}
	if TotalLatency(s, best.Binding) > TotalLatency(s, first.Binding) {
		t.Errorf("optimum %v (%v) worse than first feasible %v (%v)",
			best.Binding, TotalLatency(s, best.Binding),
			first.Binding, TotalLatency(s, first.Binding))
	}
	// Optimal: PA 55 + PC 10 on uP, PD1 25 + PU1 15 on A = 105.
	if got := TotalLatency(s, best.Binding); got != 105 {
		t.Errorf("optimal latency = %v, want 105", got)
	}
}

func TestFindMinLatencyInfeasible(t *testing.T) {
	s := buildFig2(t)
	fp, av := flatAndView(t, s, "gD2", "gU2", spec.NewAllocation("uP"), nil)
	if _, ok := FindMinLatency(s, fp, av, Options{}); ok {
		t.Error("PD2 unbindable on uP alone")
	}
}

func TestFindMinLatencyRespectsTiming(t *testing.T) {
	// The fastest resource may be timing-saturated; the optimizer must
	// route around it.
	pb := hgraph.NewBuilder("p", "pt")
	pb.Root().Vertex("T1", spec.AttrPeriod, 100).Vertex("T2", spec.AttrPeriod, 100)
	prob := pb.MustBuild()
	ab := hgraph.NewBuilder("a", "at")
	ab.Root().Vertex("FAST", spec.AttrCost, 10)
	ab.Root().Vertex("SLOW", spec.AttrCost, 10)
	ab.Root().Vertex("B", spec.AttrCost, 1, spec.AttrComm, 1)
	ab.Root().Edge("FAST", "B")
	ab.Root().Edge("B", "SLOW")
	arch := ab.MustBuild()
	s := spec.MustNew("t", prob, arch, []*spec.Mapping{
		{Process: "T1", Resource: "FAST", Latency: 40},
		{Process: "T1", Resource: "SLOW", Latency: 60},
		{Process: "T2", Resource: "FAST", Latency: 40},
		{Process: "T2", Resource: "SLOW", Latency: 60},
	})
	fp, err := s.Problem.Flatten(nil)
	if err != nil {
		t.Fatal(err)
	}
	av, err := s.ArchViewFor(spec.NewAllocation("FAST", "SLOW", "B"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both on FAST: (40+40)/100 = 0.8 > 0.69 — one must take SLOW.
	best, ok := FindMinLatency(s, fp, av, Options{})
	if !ok {
		t.Fatal("feasible split exists")
	}
	if got := TotalLatency(s, best.Binding); got != 100 {
		t.Errorf("optimal latency = %v, want 40+60 = 100", got)
	}
}

// Property: FindMinLatency output is valid and no brute-force
// enumeration finds a cheaper feasible binding.
func TestPropMinLatencyOptimal(t *testing.T) {
	s := buildFig2(t)
	ds := []string{"gD1", "gD2", "gD3"}
	us := []string{"gU1", "gU2"}
	elems := []hgraph.ID{"uP", "A", "C1", "C2", "dD3", "dU2"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alloc := spec.Allocation{}
		for _, e := range elems {
			if rng.Intn(2) == 0 {
				alloc[e] = true
			}
		}
		d, u := ds[rng.Intn(3)], us[rng.Intn(2)]
		fp, err := s.Problem.Flatten(hgraph.Selection{"IfD": hgraph.ID(d), "IfU": hgraph.ID(u)})
		if err != nil {
			return false
		}
		ok := true
		alloc.EnumerateArchSelections(s, func(sel hgraph.Selection) bool {
			av, err := s.ArchViewFor(alloc, sel)
			if err != nil {
				ok = false
				return false
			}
			best, feasible := FindMinLatency(s, fp, av, Options{})
			// Brute force over all bindings.
			bruteBest := -1.0
			var assign func(k int, cur Binding)
			assign = func(k int, cur Binding) {
				if k == len(fp.Vertices) {
					if Check(s, fp, av, cur, Options{}) == nil {
						tot := TotalLatency(s, cur)
						if bruteBest < 0 || tot < bruteBest {
							bruteBest = tot
						}
					}
					return
				}
				p := fp.Vertices[k].ID
				for _, m := range s.MappingsFor(p) {
					if av.Present(m.Resource) {
						cur[p] = m.Resource
						assign(k+1, cur)
						delete(cur, p)
					}
				}
			}
			assign(0, Binding{})
			if feasible != (bruteBest >= 0) {
				ok = false
				return false
			}
			if feasible && TotalLatency(s, best.Binding) != bruteBest {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFindMinLatency(b *testing.B) {
	s := buildFig2(b)
	alloc := spec.NewAllocation("uP", "A", "C1", "C2", "dD3", "dU2")
	fp, err := s.Problem.Flatten(hgraph.Selection{"IfD": "gD1", "IfU": "gU2"})
	if err != nil {
		b.Fatal(err)
	}
	av, err := s.ArchViewFor(alloc, hgraph.Selection{"FPGA": "dU2"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindMinLatency(s, fp, av, Options{})
	}
}
