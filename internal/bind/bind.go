// Package bind solves the binding problem of the paper: assign every
// activated leaf of the (flattened) problem graph to exactly one
// allocated resource via a mapping edge, such that every data
// dependence can be handled (both endpoints on one resource, or an
// activated architecture link/bus connects the two resources), and such
// that the timing estimate accepts every resource's load.
//
// Binding is NP-complete (the paper cites [2]); this package implements
// a backtracking search with minimum-remaining-values ordering and
// incremental constraint propagation, which is exact and fast at the
// scale of platform specifications.
package bind

import (
	"fmt"
	"sort"

	"repro/internal/hgraph"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Binding is a timed binding β(t) for one behaviour (one elementary
// cluster activation): it maps every activated process to the resource
// implementing it, i.e. it identifies the activated mapping edges.
type Binding map[hgraph.ID]hgraph.ID

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// String renders the binding deterministically.
func (b Binding) String() string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += k + "->" + string(b[hgraph.ID(k)])
	}
	return out + "}"
}

// TimingPolicy selects the performance test applied to each resource's
// task set.
type TimingPolicy int

// Timing policies.
const (
	// TimingPaper is the paper's test: utilization ≤ 69 %.
	TimingPaper TimingPolicy = iota
	// TimingNone disables the performance check (pure binding
	// feasibility, as in the paper's "possible resource allocation"
	// stage).
	TimingNone
	// TimingLiuLayland applies the exact bound n(2^(1/n)−1).
	TimingLiuLayland
	// TimingRTA applies exact response-time analysis.
	TimingRTA
	// TimingEDF applies the exact EDF bound U ≤ 1 — what an
	// earliest-deadline-first runtime could admit on each resource.
	TimingEDF
	// TimingHyperbolic applies Bini's hyperbolic bound Π(U_i+1) ≤ 2,
	// which dominates the Liu–Layland bound while staying sufficient.
	TimingHyperbolic
)

// String implements fmt.Stringer.
func (p TimingPolicy) String() string {
	switch p {
	case TimingPaper:
		return "paper-69%"
	case TimingNone:
		return "none"
	case TimingLiuLayland:
		return "liu-layland"
	case TimingRTA:
		return "rta"
	case TimingEDF:
		return "edf"
	case TimingHyperbolic:
		return "hyperbolic"
	default:
		return fmt.Sprintf("TimingPolicy(%d)", int(p))
	}
}

func (p TimingPolicy) test(tasks []sched.Task) bool {
	switch p {
	case TimingNone:
		return true
	case TimingLiuLayland:
		return sched.LiuLaylandTest(tasks)
	case TimingRTA:
		return sched.RTATest(tasks)
	case TimingEDF:
		return sched.EDFTest(tasks)
	case TimingHyperbolic:
		return sched.HyperbolicTest(tasks)
	default:
		return sched.PaperTest(tasks)
	}
}

// Options configures the solver.
type Options struct {
	Timing TimingPolicy
	// MaxNodes bounds the number of search nodes (0 = unbounded). When
	// the bound is hit the search reports infeasible-with-timeout.
	MaxNodes int
}

// Result carries the solution and search statistics.
type Result struct {
	Binding Binding
	// Nodes is the number of assignments tried (search effort).
	Nodes int
	// Truncated reports that MaxNodes stopped the search before it
	// could prove infeasibility.
	Truncated bool
}

// Find searches for a feasible timed binding of the flattened problem
// graph fp onto the architecture view av. It returns the result and
// whether a feasible binding exists. Processes without any mapping edge
// to a present resource make the instance trivially infeasible.
func Find(s *spec.Spec, fp *hgraph.FlatGraph, av *spec.ArchView, opts Options) (*Result, bool) {
	res := &Result{}
	n := len(fp.Vertices)
	procs := make([]hgraph.ID, n)
	cands := make([][]hgraph.ID, n)
	pos := map[hgraph.ID]int{}
	for i, v := range fp.Vertices {
		procs[i] = v.ID
		pos[v.ID] = i
		for _, m := range s.MappingsFor(v.ID) {
			if av.Present(m.Resource) {
				cands[i] = append(cands[i], m.Resource)
			}
		}
		if len(cands[i]) == 0 {
			return res, false
		}
	}
	// MRV: bind the most constrained processes first (stable order for
	// determinism).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if len(cands[order[a]]) != len(cands[order[b]]) {
			return len(cands[order[a]]) < len(cands[order[b]])
		}
		return procs[order[a]] < procs[order[b]]
	})

	// adjacency of the flat problem graph in index space
	adj := make([][]int, n)
	for _, e := range fp.Edges {
		i, j := pos[e.From], pos[e.To]
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}

	assigned := make([]hgraph.ID, n) // "" = unassigned
	// tasksOn accumulates the timed load per resource.
	tasksOn := map[hgraph.ID][]sched.Task{}

	var solve func(k int) bool
	solve = func(k int) bool {
		if k == n {
			return true
		}
		idx := order[k]
		p := procs[idx]
		period := s.Period(p)
		for _, r := range cands[idx] {
			if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
				res.Truncated = true
				return false
			}
			res.Nodes++
			// Communication feasibility against already-bound neighbours.
			ok := true
			for _, nb := range adj[idx] {
				if assigned[nb] != "" && !av.CanCommunicate(r, assigned[nb]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Timing feasibility of the partial load on r. All policies
			// are monotone in the task set, so pruning is sound.
			var saved []sched.Task
			if period > 0 {
				m := s.Mapping(p, r)
				saved = tasksOn[r]
				tasksOn[r] = append(saved, sched.Task{ID: string(p), WCET: m.Latency, Period: period})
				if !opts.Timing.test(tasksOn[r]) {
					tasksOn[r] = saved
					continue
				}
			}
			assigned[idx] = r
			if solve(k + 1) {
				return true
			}
			assigned[idx] = ""
			if period > 0 {
				tasksOn[r] = saved
			}
		}
		return false
	}
	if !solve(0) {
		return res, false
	}
	res.Binding = Binding{}
	for i, r := range assigned {
		res.Binding[procs[i]] = r
	}
	return res, true
}

// Check verifies a complete binding against the paper's feasibility
// rules and the timing policy; it reports the first violation found.
// It is the library's independent validator (the solver constructs only
// bindings that pass it).
func Check(s *spec.Spec, fp *hgraph.FlatGraph, av *spec.ArchView, b Binding, opts Options) error {
	// Rule 2: each activated leaf has exactly one activated mapping edge.
	for _, v := range fp.Vertices {
		r, ok := b[v.ID]
		if !ok {
			return fmt.Errorf("bind: process %q unbound", v.ID)
		}
		if s.Mapping(v.ID, r) == nil {
			return fmt.Errorf("bind: no mapping edge %q=>%q", v.ID, r)
		}
		if !av.Present(r) {
			return fmt.Errorf("bind: resource %q not activated", r)
		}
	}
	for p := range b {
		if fp.VertexByID(p) == nil {
			return fmt.Errorf("bind: binding for inactive process %q", p)
		}
	}
	// Rule 3: every dependence is handled.
	for _, e := range fp.Edges {
		if !av.CanCommunicate(b[e.From], b[e.To]) {
			return fmt.Errorf("bind: dependence %s->%s unroutable between %q and %q",
				e.From, e.To, b[e.From], b[e.To])
		}
	}
	// Timing.
	tasksOn := map[hgraph.ID][]sched.Task{}
	for _, v := range fp.Vertices {
		period := s.Period(v.ID)
		if period <= 0 {
			continue
		}
		r := b[v.ID]
		m := s.Mapping(v.ID, r)
		tasksOn[r] = append(tasksOn[r], sched.Task{ID: string(v.ID), WCET: m.Latency, Period: period})
	}
	for r, tasks := range tasksOn {
		if !opts.Timing.test(tasks) {
			return fmt.Errorf("bind: resource %q fails timing policy %v (utilization %.3f)",
				r, opts.Timing, sched.Utilization(tasks))
		}
	}
	return nil
}

// TotalLatency sums the mapped execution latencies of a binding — a
// simple secondary metric used by examples and benchmarks.
func TotalLatency(s *spec.Spec, b Binding) float64 {
	total := 0.0
	for p, r := range b {
		if m := s.Mapping(p, r); m != nil {
			total += m.Latency
		}
	}
	return total
}
