package bind

import (
	"repro/internal/hgraph"
	"repro/internal/sched"
	"repro/internal/spec"
)

// FindMinLatency searches for the feasible binding minimizing the total
// mapped execution latency — the refinement step the paper's Section 4
// motivates ("first explore different optimal solutions ..., and
// subsequently select and refine one of those solutions"): once an
// allocation is chosen from the flexibility/cost front, each behaviour
// can be re-bound for speed within the same resources.
//
// The search is branch-and-bound over the same constraint model as
// Find; the lower bound adds each unassigned process's cheapest
// candidate latency. It returns the optimum (nil Binding if
// infeasible).
func FindMinLatency(s *spec.Spec, fp *hgraph.FlatGraph, av *spec.ArchView, opts Options) (*Result, bool) {
	res := &Result{}
	n := len(fp.Vertices)
	procs := make([]hgraph.ID, n)
	cands := make([][]hgraph.ID, n)
	lats := make([][]float64, n)
	minLat := make([]float64, n)
	pos := map[hgraph.ID]int{}
	for i, v := range fp.Vertices {
		procs[i] = v.ID
		pos[v.ID] = i
		for _, m := range s.MappingsFor(v.ID) {
			if av.Present(m.Resource) {
				cands[i] = append(cands[i], m.Resource)
				lats[i] = append(lats[i], m.Latency)
			}
		}
		if len(cands[i]) == 0 {
			return res, false
		}
		minLat[i] = lats[i][0]
		for _, l := range lats[i] {
			if l < minLat[i] {
				minLat[i] = l
			}
		}
	}
	order := mrvOrder(procs, cands)
	// Suffix sums of minimal latencies along the search order.
	suffix := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1] + minLat[order[k]]
	}
	adj := make([][]int, n)
	for _, e := range fp.Edges {
		i, j := pos[e.From], pos[e.To]
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}

	assigned := make([]hgraph.ID, n)
	tasksOn := map[hgraph.ID][]sched.Task{}
	bestCost := -1.0
	var best Binding

	var solve func(k int, acc float64)
	solve = func(k int, acc float64) {
		if bestCost >= 0 && acc+suffix[k] >= bestCost {
			return // bound
		}
		if k == n {
			bestCost = acc
			best = Binding{}
			for i, r := range assigned {
				best[procs[i]] = r
			}
			return
		}
		idx := order[k]
		p := procs[idx]
		period := s.Period(p)
		for ci, r := range cands[idx] {
			if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
				res.Truncated = true
				return
			}
			res.Nodes++
			ok := true
			for _, nb := range adj[idx] {
				if assigned[nb] != "" && !av.CanCommunicate(r, assigned[nb]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			var saved []sched.Task
			if period > 0 {
				saved = tasksOn[r]
				tasksOn[r] = append(saved, sched.Task{ID: string(p), WCET: lats[idx][ci], Period: period})
				if !opts.Timing.test(tasksOn[r]) {
					tasksOn[r] = saved
					continue
				}
			}
			assigned[idx] = r
			solve(k+1, acc+lats[idx][ci])
			assigned[idx] = ""
			if period > 0 {
				tasksOn[r] = saved
			}
		}
	}
	solve(0, 0)
	if best == nil {
		return res, false
	}
	res.Binding = best
	return res, true
}

func mrvOrder(procs []hgraph.ID, cands [][]hgraph.ID) []int {
	order := make([]int, len(procs))
	for i := range order {
		order[i] = i
	}
	// Most-constrained first, stable on IDs for determinism.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if len(cands[a]) > len(cands[b]) ||
				(len(cands[a]) == len(cands[b]) && procs[a] > procs[b]) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order
}
