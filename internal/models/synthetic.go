package models

import (
	"fmt"
	"math/rand"

	"repro/internal/hgraph"
	"repro/internal/spec"
)

// SyntheticParams parameterizes the synthetic specification generator
// used for the paper's scalability claims ("a typical search space with
// 10^5–10^12 design points can be reduced ... to a few 10^3–10^4
// possible resource allocations"). The generated platform follows the
// Set-Top box pattern: an application interface with alternative
// behaviours over processors, accelerators, a reconfigurable component
// and buses.
type SyntheticParams struct {
	Seed int64
	// Apps is the number of alternative top-level behaviours.
	Apps int
	// Depth is the nesting depth below each behaviour (0 = flat apps).
	Depth int
	// Branch is the number of alternative clusters per nested interface.
	Branch int
	// Vertices is the number of processes per cluster.
	Vertices int
	// Processors, ASICs, Designs and Buses size the architecture.
	Processors, ASICs, Designs, Buses int
	// TimedFraction is the probability that a process carries a period.
	TimedFraction float64
	// AccelOnlyFraction is the probability that a non-controller
	// process is implementable only on accelerators or reconfigurable
	// designs (like P_G2/P_G3/P_D2/P_D3/P_U2 in Table 1), which is what
	// makes fronts non-trivial.
	AccelOnlyFraction float64
}

// DefaultSynthetic returns parameters producing a platform of roughly
// the case study's size.
func DefaultSynthetic(seed int64) SyntheticParams {
	return SyntheticParams{
		Seed: seed, Apps: 3, Depth: 1, Branch: 3, Vertices: 2,
		Processors: 2, ASICs: 3, Designs: 3, Buses: 6,
		TimedFraction: 0.5, AccelOnlyFraction: 0.25,
	}
}

// ScaledSynthetic returns parameters whose architecture flattens to
// exactly units allocation units (alloc.Units counts the processors,
// ASICs, buses and FPGA design clusters), apportioned roughly like the
// case study: ~1/10 processors, ~1/5 ASICs, ~1/10 FPGA designs, the
// rest buses. The problem graph keeps the default shape, so the unit
// count — the number of binary variables a possible-allocation
// enumerator branches on — is the only axis that grows; the bitset
// scan over such a spec touches 2^units subsets while the symbolic
// enumerator walks only the satisfying region.
func ScaledSynthetic(seed int64, units int) SyntheticParams {
	if units < 8 {
		units = 8
	}
	procs := maxInt(2, units/10)
	asics := maxInt(1, units/5)
	designs := maxInt(1, units/10)
	return SyntheticParams{
		Seed: seed, Apps: 3, Depth: 1, Branch: 2, Vertices: 2,
		Processors: procs, ASICs: asics, Designs: designs,
		Buses:         units - procs - asics - designs,
		TimedFraction: 0.4, AccelOnlyFraction: 0.25,
	}
}

func (p SyntheticParams) withDefaults() SyntheticParams {
	if p.Apps <= 0 {
		p.Apps = 3
	}
	if p.Branch <= 0 {
		p.Branch = 2
	}
	if p.Vertices <= 0 {
		p.Vertices = 2
	}
	if p.Processors <= 0 {
		p.Processors = 1
	}
	return p
}

// Synthetic generates a deterministic random specification from the
// parameters. Every process is mappable to at least one processor, so
// possible resource allocations always exist; accelerator and
// reconfigurable-design mappings are sprinkled with faster latencies,
// mirroring Table 1's structure.
func Synthetic(p SyntheticParams) *spec.Spec {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	// --- problem graph ---
	pb := hgraph.NewBuilder(fmt.Sprintf("syn%d-problem", p.Seed), "GP")
	pb.Root().Vertex("Ctl") // always-active controller
	app := pb.Root().Interface("IApp")
	var processes []hgraph.ID
	processes = append(processes, "Ctl")
	vertexCount := 0
	// clusterOf records which cluster each process belongs to; accel-only
	// processes of one cluster are later mapped onto one shared ASIC so
	// their mutual data dependences stay communication-feasible (the
	// generated buses never join two ASICs).
	clusterOf := map[hgraph.ID]int{}
	clusterSeq := 0
	var fill func(cb *hgraph.ClusterBuilder, depth int)
	fill = func(cb *hgraph.ClusterBuilder, depth int) {
		cid := clusterSeq
		clusterSeq++
		var prev hgraph.ID
		for k := 0; k < p.Vertices; k++ {
			vertexCount++
			id := hgraph.ID(fmt.Sprintf("P%d", vertexCount))
			clusterOf[id] = cid
			if rng.Float64() < p.TimedFraction {
				period := float64(200 + 50*rng.Intn(5))
				cb.Vertex(id, spec.AttrPeriod, period)
			} else {
				cb.Vertex(id)
			}
			processes = append(processes, id)
			if k > 0 {
				cb.Edge(prev, id)
			}
			prev = id
		}
		if depth > 0 {
			iid := hgraph.ID(fmt.Sprintf("I%d", vertexCount))
			ib := cb.Interface(iid, hgraph.Port{Name: "p"})
			for j := 0; j < p.Branch; j++ {
				sub := ib.Cluster(hgraph.ID(fmt.Sprintf("g%d_%d", vertexCount, j)))
				before := vertexCount
				fill(sub, depth-1)
				sub.Bind("p", hgraph.ID(fmt.Sprintf("P%d", before+1)))
			}
		}
	}
	for a := 0; a < p.Apps; a++ {
		cl := app.Cluster(hgraph.ID(fmt.Sprintf("app%d", a)))
		fill(cl, p.Depth)
	}
	problem := pb.MustBuild()

	// --- architecture graph ---
	ab := hgraph.NewBuilder(fmt.Sprintf("syn%d-arch", p.Seed), "GA")
	ar := ab.Root()
	var procs, accels []hgraph.ID
	for i := 0; i < p.Processors; i++ {
		id := hgraph.ID(fmt.Sprintf("uP%d", i+1))
		ar.Vertex(id, spec.AttrCost, float64(100+20*i))
		procs = append(procs, id)
	}
	for i := 0; i < p.ASICs; i++ {
		id := hgraph.ID(fmt.Sprintf("AS%d", i+1))
		ar.Vertex(id, spec.AttrCost, float64(250+30*i))
		accels = append(accels, id)
	}
	var designs []hgraph.ID
	if p.Designs > 0 {
		fpga := ar.Interface("FPGA", hgraph.Port{Name: "bus"})
		for i := 0; i < p.Designs; i++ {
			id := hgraph.ID(fmt.Sprintf("DS%d", i+1))
			fpga.Cluster(hgraph.ID(fmt.Sprintf("dDS%d", i+1))).
				Vertex(id, spec.AttrCost, float64(50+10*i)).Bind("bus", id)
			designs = append(designs, id)
		}
	}
	// Buses: connect processors round-robin to ASICs, the FPGA and each
	// other, so communication is possible but not universal.
	nTargets := len(accels) + boolToInt(p.Designs > 0) + maxInt(0, len(procs)-1)
	targets := func(i int) (hgraph.ID, string) {
		k := i % nTargets
		if k < len(accels) {
			return accels[k], ""
		}
		k -= len(accels)
		if p.Designs > 0 && k == 0 {
			return "FPGA", "bus"
		}
		return procs[1+(k-boolToInt(p.Designs > 0))%maxInt(1, len(procs)-1)], ""
	}
	if nTargets == 0 {
		p.Buses = 0
	}
	for i := 0; i < p.Buses; i++ {
		id := hgraph.ID(fmt.Sprintf("B%d", i+1))
		ar.Vertex(id, spec.AttrCost, float64(10+5*(i%3)), spec.AttrComm, 1)
		from := procs[i%len(procs)]
		ar.Edge(from, id)
		to, port := targets(i)
		if port != "" {
			ar.PortEdge(id, "", to, port)
		} else if to != from {
			ar.Edge(id, to)
		}
	}
	arch := ab.MustBuild()

	// --- mapping edges ---
	var mappings []*spec.Mapping
	for _, proc := range processes {
		base := float64(20 + rng.Intn(80))
		accelOnly := proc != "Ctl" && (len(accels) > 0 || len(designs) > 0) &&
			rng.Float64() < p.AccelOnlyFraction
		if !accelOnly {
			for _, r := range procs {
				mappings = append(mappings, &spec.Mapping{
					Process: proc, Resource: r,
					Latency: base * (1 + 0.3*rng.Float64()),
				})
			}
		}
		onAccel := false
		if len(accels) > 0 && (accelOnly || rng.Float64() < 0.5) {
			var r hgraph.ID
			if accelOnly {
				r = accels[clusterOf[proc]%len(accels)]
			} else {
				r = accels[rng.Intn(len(accels))]
			}
			mappings = append(mappings, &spec.Mapping{
				Process: proc, Resource: r, Latency: base / 3,
			})
			onAccel = true
		}
		if len(designs) > 0 && ((accelOnly && !onAccel) || rng.Float64() < 0.3) {
			r := designs[rng.Intn(len(designs))]
			mappings = append(mappings, &spec.Mapping{
				Process: proc, Resource: r, Latency: base / 2,
			})
		}
	}
	return spec.MustNew(fmt.Sprintf("syn%d", p.Seed), problem, arch, mappings)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
