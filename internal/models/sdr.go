package models

import (
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// SDR builds a second, independent case study: a software-defined
// radio that must support several air interfaces — a GSM-style
// narrowband standard (with alternative demodulators and speech
// codecs), a WiFi-style OFDM standard (with alternative FEC decoders),
// and a Bluetooth-style hopping standard. The platform offers two DSPs,
// a hardware accelerator and an FPGA whose designs implement a Viterbi
// decoder or an OFDM pipeline.
//
// The model exercises the same mechanics as the paper's Set-Top box —
// nested alternatives, accelerator-only processes, a reconfigurable
// FPGA, bus-limited communication, per-standard timing constraints —
// on a different domain, and is pinned by tests against the exhaustive
// explorer. Maximum flexibility: gsm (2+2−1) + wifi 2 + bt 1 = 6.
func SDR() *spec.Spec {
	pb := hgraph.NewBuilder("sdr-problem", "RP")
	std := pb.Root().Interface("IStd")

	gsm := std.Cluster("gsm")
	gsm.Vertex("Psync")
	dem := gsm.Interface("IDemod", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	dem.Cluster("demCoh").Vertex("PdemC", spec.AttrPeriod, 1000).Bind("in", "PdemC").Bind("out", "PdemC")
	dem.Cluster("demNon").Vertex("PdemN", spec.AttrPeriod, 1000).Bind("in", "PdemN").Bind("out", "PdemN")
	cod := gsm.Interface("ICodec", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	cod.Cluster("codFR").Vertex("PcodF", spec.AttrPeriod, 1000).Bind("in", "PcodF").Bind("out", "PcodF")
	cod.Cluster("codEFR").Vertex("PcodE", spec.AttrPeriod, 1000).Bind("in", "PcodE").Bind("out", "PcodE")
	gsm.PortEdge("Psync", "", "IDemod", "in")
	gsm.PortEdge("IDemod", "out", "ICodec", "in")

	wifi := std.Cluster("wifi")
	wifi.Vertex("Pofdm", spec.AttrPeriod, 500)
	fec := wifi.Interface("IFec", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	fec.Cluster("fecVit").Vertex("Pvit", spec.AttrPeriod, 500).Bind("in", "Pvit").Bind("out", "Pvit")
	fec.Cluster("fecTur").Vertex("Ptur", spec.AttrPeriod, 500).Bind("in", "Ptur").Bind("out", "Ptur")
	wifi.PortEdge("Pofdm", "", "IFec", "in")

	bt := std.Cluster("bt")
	bt.Vertex("Phop").Vertex("Pgfsk", spec.AttrPeriod, 625)
	bt.Edge("Phop", "Pgfsk")

	problem := pb.MustBuild()

	ab := hgraph.NewBuilder("sdr-arch", "RA")
	r := ab.Root()
	r.Vertex("DSP1", spec.AttrCost, 150)
	r.Vertex("DSP2", spec.AttrCost, 180)
	r.Vertex("ACC", spec.AttrCost, 220)
	r.Vertex("B1", spec.AttrCost, 10, spec.AttrComm, 1) // DSP1 - FPGA
	r.Vertex("B2", spec.AttrCost, 10, spec.AttrComm, 1) // DSP1 - ACC
	r.Vertex("B3", spec.AttrCost, 15, spec.AttrComm, 1) // DSP1 - DSP2
	r.Vertex("B4", spec.AttrCost, 12, spec.AttrComm, 1) // DSP2 - ACC
	r.Vertex("B5", spec.AttrCost, 14, spec.AttrComm, 1) // DSP2 - FPGA
	fpga := r.Interface("FPGA", hgraph.Port{Name: "bus"})
	fpga.Cluster("dVit").Vertex("VIT", spec.AttrCost, 45).Bind("bus", "VIT")
	fpga.Cluster("dOFDM").Vertex("OFD", spec.AttrCost, 55).Bind("bus", "OFD")
	r.Edge("DSP1", "B1")
	r.PortEdge("B1", "", "FPGA", "bus")
	r.Edge("DSP1", "B2")
	r.Edge("B2", "ACC")
	r.Edge("DSP1", "B3")
	r.Edge("B3", "DSP2")
	r.Edge("DSP2", "B4")
	r.Edge("B4", "ACC")
	r.Edge("DSP2", "B5")
	r.PortEdge("B5", "", "FPGA", "bus")
	arch := ab.MustBuild()

	return spec.MustNew("sdr", problem, arch, []*spec.Mapping{
		// GSM: sync and the coherent demodulator run on DSPs; the
		// non-coherent demodulator and the EFR codec are heavy and need
		// the accelerator; the FR codec runs anywhere.
		{Process: "Psync", Resource: "DSP1", Latency: 80},
		{Process: "Psync", Resource: "DSP2", Latency: 90},
		{Process: "PdemC", Resource: "DSP1", Latency: 320},
		{Process: "PdemC", Resource: "DSP2", Latency: 350},
		{Process: "PdemN", Resource: "ACC", Latency: 120},
		{Process: "PcodF", Resource: "DSP1", Latency: 260},
		{Process: "PcodF", Resource: "DSP2", Latency: 280},
		{Process: "PcodE", Resource: "ACC", Latency: 150},
		{Process: "PcodE", Resource: "DSP2", Latency: 640},
		// WiFi: the OFDM pipeline runs on the FPGA design or DSP2; FEC
		// on the FPGA Viterbi design, the accelerator, or (turbo only)
		// DSP2.
		{Process: "Pofdm", Resource: "OFD", Latency: 110},
		{Process: "Pofdm", Resource: "DSP2", Latency: 300},
		{Process: "Pvit", Resource: "VIT", Latency: 90},
		{Process: "Pvit", Resource: "ACC", Latency: 130},
		{Process: "Ptur", Resource: "ACC", Latency: 160},
		{Process: "Ptur", Resource: "DSP2", Latency: 330},
		// Bluetooth: light, processor-only.
		{Process: "Phop", Resource: "DSP1", Latency: 40},
		{Process: "Phop", Resource: "DSP2", Latency: 45},
		{Process: "Pgfsk", Resource: "DSP1", Latency: 210},
		{Process: "Pgfsk", Resource: "DSP2", Latency: 230},
	})
}
