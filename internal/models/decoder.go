package models

import (
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// DecoderProblem builds the digital TV decoder problem graph of Fig. 1:
// top-level authentification P_A and controller P_C, a decryption
// interface I_D with three alternative algorithms and an uncompression
// interface I_U with two, where uncompression requires input data from
// decryption. The leaves are therefore
// {P_A, P_C, P_D¹, P_D², P_D³, P_U¹, P_U²} (Eq. 1).
func DecoderProblem() *hgraph.Graph {
	b := hgraph.NewBuilder("decoder-problem", "top")
	r := b.Root()
	r.Vertex("PA").Vertex("PC")
	id := r.Interface("ID", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	id.Cluster("gD1").Vertex("PD1", spec.AttrPeriod, TVPeriod).Bind("in", "PD1").Bind("out", "PD1")
	id.Cluster("gD2").Vertex("PD2", spec.AttrPeriod, TVPeriod).Bind("in", "PD2").Bind("out", "PD2")
	id.Cluster("gD3").Vertex("PD3", spec.AttrPeriod, TVPeriod).Bind("in", "PD3").Bind("out", "PD3")
	iu := r.Interface("IU", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	iu.Cluster("gU1").Vertex("PU1", spec.AttrPeriod, TVPeriod).Bind("in", "PU1").Bind("out", "PU1")
	iu.Cluster("gU2").Vertex("PU2", spec.AttrPeriod, TVPeriod).Bind("in", "PU2").Bind("out", "PU2")
	r.PortEdge("PC", "", "ID", "in")
	r.PortEdge("ID", "out", "IU", "in")
	return b.MustBuild()
}

// DecoderArch builds the Fig. 2 architecture: a μ-controller μP, an
// ASIC A and an FPGA with alternative designs, connected by bus C1
// (μP ↔ FPGA) and bus C2 (μP ↔ A). No bus connects the ASIC and the
// FPGA — the paper's infeasible-binding example depends on that. The
// FPGA designs are D3 (third decryption) and U2 (second uncompression);
// costs are reconstructed (the figure's annotations are not in the
// text).
func DecoderArch() *hgraph.Graph {
	b := hgraph.NewBuilder("decoder-arch", "atop")
	r := b.Root()
	r.Vertex("uP", spec.AttrCost, 50)
	r.Vertex("A", spec.AttrCost, 100)
	r.Vertex("C1", spec.AttrCost, 5, spec.AttrComm, 1)
	r.Vertex("C2", spec.AttrCost, 5, spec.AttrComm, 1)
	fpga := r.Interface("FPGA", hgraph.Port{Name: "bus"})
	fpga.Cluster("dD3").Vertex("D3", spec.AttrCost, 20).Bind("bus", "D3")
	fpga.Cluster("dU2").Vertex("U2", spec.AttrCost, 20).Bind("bus", "U2")
	r.Edge("uP", "C1")
	r.PortEdge("C1", "", "FPGA", "bus")
	r.Edge("uP", "C2")
	r.Edge("C2", "A")
	return b.MustBuild()
}

// Decoder assembles the Fig. 2 hierarchical specification graph. The
// only latency published in the text is P_U¹ → μP (40 ns) / A (15 ns);
// the remaining mapping edges are reconstructed consistently with the
// narrative (P_D² implementable only on the ASIC, P_D³ only on the
// FPGA design D3, P_U² on the ASIC or the FPGA design U2).
func Decoder() *spec.Spec {
	return spec.MustNew("decoder", DecoderProblem(), DecoderArch(), []*spec.Mapping{
		{Process: "PA", Resource: "uP", Latency: 55},
		{Process: "PC", Resource: "uP", Latency: 10},
		{Process: "PD1", Resource: "uP", Latency: 85},
		{Process: "PD1", Resource: "A", Latency: 25},
		{Process: "PD2", Resource: "A", Latency: 35},
		{Process: "PD3", Resource: "D3", Latency: 63},
		{Process: "PU1", Resource: "uP", Latency: 40},
		{Process: "PU1", Resource: "A", Latency: 15},
		{Process: "PU2", Resource: "A", Latency: 29},
		{Process: "PU2", Resource: "U2", Latency: 59},
	})
}
