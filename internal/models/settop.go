// Package models provides the paper's example systems — the digital TV
// decoder of Figs. 1 and 2, the Set-Top box family of Figs. 3 and 5
// with the mapping latencies of Table 1 — plus a parameterized
// synthetic-specification generator for scalability experiments.
//
// Where the paper's figures carry annotations that did not survive into
// the text (Fig. 5 allocation costs and bus topology, most Fig. 2
// latencies), the values here are reconstructed so that every published
// number remains true; see DESIGN.md ("Substitutions") for the
// derivation. Notably, the reconstructed architecture has 14
// allocatable units which, together with the 11 problem-graph clusters,
// span exactly the paper's 2^25 design space.
package models

import (
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// Timing constraints of the Set-Top box case study (Section 5): the
// game console's output process P_D must execute every 240 ns, the
// digital TV's uncompression every 300 ns.
const (
	GamePeriod = 240
	TVPeriod   = 300
)

// SetTopProblem builds the problem graph of Fig. 3: the application
// interface IApp refined by an Internet browser (γI), a game console
// (γG, whose core interface IG has three game classes) and a digital TV
// decoder (γD, with three decryptions and two uncompressions). Timed
// processes carry their minimal periods; controller, authentification,
// parser and formatter processes are untimed, matching the paper's
// estimation (they are neglected: start-up only or ~0.01% of calls).
func SetTopProblem() *hgraph.Graph {
	b := hgraph.NewBuilder("settop-problem", "GP")
	app := b.Root().Interface("IApp")

	gI := app.Cluster("gI")
	gI.Vertex("PCI").Vertex("PP").Vertex("PF")
	gI.Edge("PCI", "PP").Edge("PP", "PF")

	gG := app.Cluster("gG")
	gG.Vertex("PCG").Vertex("PD", spec.AttrPeriod, GamePeriod)
	ig := gG.Interface("IG", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	ig.Cluster("gG1").Vertex("PG1", spec.AttrPeriod, GamePeriod).Bind("in", "PG1").Bind("out", "PG1")
	ig.Cluster("gG2").Vertex("PG2", spec.AttrPeriod, GamePeriod).Bind("in", "PG2").Bind("out", "PG2")
	ig.Cluster("gG3").Vertex("PG3", spec.AttrPeriod, GamePeriod).Bind("in", "PG3").Bind("out", "PG3")
	gG.PortEdge("PCG", "", "IG", "in")
	gG.PortEdge("IG", "out", "PD", "")

	gD := app.Cluster("gD")
	gD.Vertex("PA").Vertex("PCD")
	id := gD.Interface("ID", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	id.Cluster("gD1").Vertex("PD1", spec.AttrPeriod, TVPeriod).Bind("in", "PD1").Bind("out", "PD1")
	id.Cluster("gD2").Vertex("PD2", spec.AttrPeriod, TVPeriod).Bind("in", "PD2").Bind("out", "PD2")
	id.Cluster("gD3").Vertex("PD3", spec.AttrPeriod, TVPeriod).Bind("in", "PD3").Bind("out", "PD3")
	iu := gD.Interface("IU", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	iu.Cluster("gU1").Vertex("PU1", spec.AttrPeriod, TVPeriod).Bind("in", "PU1").Bind("out", "PU1")
	iu.Cluster("gU2").Vertex("PU2", spec.AttrPeriod, TVPeriod).Bind("in", "PU2").Bind("out", "PU2")
	gD.PortEdge("PCD", "", "ID", "in")
	gD.PortEdge("ID", "out", "IU", "in")

	return b.MustBuild()
}

// SetTopArch builds the architecture graph of Fig. 5: two processors
// μP1 and μP2, three ASICs A1–A3, and an FPGA that can be configured as
// a D3 decryption coprocessor, a U2 uncompression coprocessor or a G1
// game-core coprocessor. Six buses interconnect the components: C1–C4
// attach μP2 to the FPGA and the three ASICs, C5 attaches μP1 to the
// FPGA, and C6 couples the two processors. There is deliberately no bus
// between any ASIC and the FPGA. Allocation costs are the
// reconstruction derived in DESIGN.md:
//
//	μP2 $100, μP1 $120, A1 $250, A2 $280, A3 $300,
//	FPGA designs D3/U2/G1 $60 each, C1–C4/C6 cheap ($10/$20), C5 $60.
func SetTopArch() *hgraph.Graph {
	b := hgraph.NewBuilder("settop-arch", "GA")
	r := b.Root()
	r.Vertex("uP1", spec.AttrCost, 120)
	r.Vertex("uP2", spec.AttrCost, 100)
	r.Vertex("A1", spec.AttrCost, 250)
	r.Vertex("A2", spec.AttrCost, 280)
	r.Vertex("A3", spec.AttrCost, 300)
	r.Vertex("C1", spec.AttrCost, 10, spec.AttrComm, 1)
	r.Vertex("C2", spec.AttrCost, 10, spec.AttrComm, 1)
	r.Vertex("C3", spec.AttrCost, 10, spec.AttrComm, 1)
	r.Vertex("C4", spec.AttrCost, 10, spec.AttrComm, 1)
	r.Vertex("C5", spec.AttrCost, 60, spec.AttrComm, 1)
	r.Vertex("C6", spec.AttrCost, 20, spec.AttrComm, 1)
	fpga := r.Interface("FPGA", hgraph.Port{Name: "bus"})
	fpga.Cluster("dD3").Vertex("D3", spec.AttrCost, 60).Bind("bus", "D3")
	fpga.Cluster("dU2").Vertex("U2", spec.AttrCost, 60).Bind("bus", "U2")
	fpga.Cluster("dG1").Vertex("G1", spec.AttrCost, 60).Bind("bus", "G1")
	r.Edge("uP2", "C1")
	r.PortEdge("C1", "", "FPGA", "bus")
	r.Edge("uP2", "C2")
	r.Edge("C2", "A1")
	r.Edge("uP2", "C3")
	r.Edge("C3", "A2")
	r.Edge("uP2", "C4")
	r.Edge("C4", "A3")
	r.Edge("uP1", "C5")
	r.PortEdge("C5", "", "FPGA", "bus")
	r.Edge("uP1", "C6")
	r.Edge("C6", "uP2")
	return b.MustBuild()
}

// Table1Row is one row of Table 1: a process and its core execution
// times on each resource (absent entries mean "not mappable").
type Table1Row struct {
	Process   hgraph.ID
	Latencies map[hgraph.ID]float64
}

// Table1 returns the possible mappings of Fig. 5 with their core
// execution times in ns, exactly as published.
func Table1() []Table1Row {
	l := func(pairs ...any) map[hgraph.ID]float64 {
		m := map[hgraph.ID]float64{}
		for i := 0; i < len(pairs); i += 2 {
			m[hgraph.ID(pairs[i].(string))] = float64(pairs[i+1].(int))
		}
		return m
	}
	return []Table1Row{
		{"PCI", l("uP1", 10, "uP2", 12)},
		{"PP", l("uP1", 15, "uP2", 19)},
		{"PF", l("uP1", 50, "uP2", 75)},
		{"PCG", l("uP1", 25, "uP2", 27)},
		{"PG1", l("uP1", 75, "uP2", 95, "A1", 15, "A2", 15, "A3", 15, "G1", 20)},
		{"PG2", l("A1", 25, "A2", 22, "A3", 22)},
		{"PG3", l("A1", 50, "A2", 45, "A3", 35)},
		{"PD", l("uP1", 70, "uP2", 90, "A1", 30, "A2", 30, "A3", 25)},
		{"PCD", l("uP1", 10, "uP2", 10)},
		{"PA", l("uP1", 55, "uP2", 60)},
		{"PD1", l("uP1", 85, "uP2", 95, "A1", 25, "A2", 22, "A3", 22)},
		{"PD2", l("A1", 35, "A2", 33, "A3", 32)},
		{"PD3", l("D3", 63)},
		{"PU1", l("uP1", 40, "uP2", 45, "A1", 15, "A2", 12, "A3", 10)},
		{"PU2", l("A1", 29, "A2", 27, "A3", 22, "U2", 59)},
	}
}

// SetTopBox assembles the complete case-study specification of
// Section 5: the Fig. 3/5 problem and architecture graphs joined by the
// Table 1 mapping edges.
func SetTopBox() *spec.Spec {
	var mappings []*spec.Mapping
	for _, row := range Table1() {
		for _, res := range []hgraph.ID{"uP1", "uP2", "A1", "A2", "A3", "D3", "U2", "G1"} {
			if lat, ok := row.Latencies[res]; ok {
				mappings = append(mappings, &spec.Mapping{
					Process: row.Process, Resource: res, Latency: lat,
				})
			}
		}
	}
	return spec.MustNew("settop", SetTopProblem(), SetTopArch(), mappings)
}
