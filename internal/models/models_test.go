package models

import (
	"os"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/flex"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// TestFig1Leaves checks Eq. (1) on the Fig. 1 decoder: the leaves are
// {P_A, P_C, P_D1..3, P_U1..2}.
func TestFig1Leaves(t *testing.T) {
	g := DecoderProblem()
	leaves := g.Leaves()
	want := []hgraph.ID{"PA", "PC", "PD1", "PD2", "PD3", "PU1", "PU2"}
	if len(leaves) != len(want) {
		t.Fatalf("got %d leaves, want %d", len(leaves), len(want))
	}
	for i, w := range want {
		if leaves[i].ID != w {
			t.Errorf("leaf %d = %s, want %s", i, leaves[i].ID, w)
		}
	}
	if got := g.CountVariants(); got != 6 {
		t.Errorf("decoder variants = %d, want 6", got)
	}
}

// TestFig3Flexibility checks the paper's worked flexibility equation on
// the Set-Top problem graph: maximum flexibility 8; without the game
// cluster, 5.
func TestFig3Flexibility(t *testing.T) {
	g := SetTopProblem()
	if got := flex.MaxFlexibility(g); got != 8 {
		t.Errorf("max flexibility = %v, want 8", got)
	}
	if got := flex.Flexibility(g, flex.Except(flex.AllActive, "gG")); got != 5 {
		t.Errorf("flexibility without gG = %v, want 5", got)
	}
}

// TestSearchSpaceSize verifies the 2^25 headline: 14 allocatable
// architecture units plus 11 problem-graph clusters give 25 binary
// design decisions.
func TestSearchSpaceSize(t *testing.T) {
	s := SetTopBox()
	units := alloc.Units(s)
	if len(units) != 14 {
		t.Errorf("allocatable units = %d, want 14", len(units))
	}
	_, _, clusters, _ := s.Problem.ElementCount()
	if clusters != 11 {
		t.Errorf("problem clusters = %d, want 11", clusters)
	}
	if len(units)+clusters != 25 {
		t.Errorf("design decisions = %d, want 25 (search space 2^25)", len(units)+clusters)
	}
}

func TestTable1Published(t *testing.T) {
	rows := Table1()
	if len(rows) != 15 {
		t.Fatalf("Table 1 rows = %d, want 15", len(rows))
	}
	get := func(p, r string) float64 {
		for _, row := range rows {
			if row.Process == hgraph.ID(p) {
				return row.Latencies[hgraph.ID(r)]
			}
		}
		t.Fatalf("no row for %s", p)
		return 0
	}
	checks := []struct {
		p, r string
		want float64
	}{
		{"PCI", "uP1", 10}, {"PCI", "uP2", 12},
		{"PF", "uP2", 75},
		{"PG1", "G1", 20}, {"PG1", "A3", 15}, {"PG1", "uP1", 75}, {"PG1", "uP2", 95},
		{"PG3", "A3", 35},
		{"PD", "uP1", 70}, {"PD", "uP2", 90}, {"PD", "A3", 25},
		{"PD1", "uP1", 85}, {"PD1", "uP2", 95},
		{"PD3", "D3", 63},
		{"PU1", "uP1", 40}, {"PU1", "uP2", 45}, {"PU1", "A3", 10},
		{"PU2", "U2", 59}, {"PU2", "A3", 22},
	}
	for _, c := range checks {
		if got := get(c.p, c.r); got != c.want {
			t.Errorf("Table1[%s][%s] = %v, want %v", c.p, c.r, got, c.want)
		}
	}
	// Published gaps: PG2/PG3/PD2/PD3/PU2 have no processor mapping.
	for _, p := range []string{"PG2", "PG3", "PD2", "PD3", "PU2"} {
		if get(p, "uP1") != 0 || get(p, "uP2") != 0 {
			t.Errorf("%s must not map to processors", p)
		}
	}
}

func TestSetTopBoxAssembly(t *testing.T) {
	s := SetTopBox()
	if err := s.Validate(); err != nil {
		t.Fatalf("case study spec invalid: %v", err)
	}
	if got := len(s.Mappings); got != 47 {
		t.Errorf("mapping edges = %d, want 47 (Table 1 entries)", got)
	}
	if got := s.Period("PD"); got != GamePeriod {
		t.Errorf("Period(PD) = %v, want %v", got, GamePeriod)
	}
	if got := s.Period("PU2"); got != TVPeriod {
		t.Errorf("Period(PU2) = %v, want %v", got, TVPeriod)
	}
	if s.Period("PA") != 0 || s.Period("PCG") != 0 {
		t.Error("controllers/authentification must be untimed")
	}
	// Reconstructed allocation costs.
	costs := map[hgraph.ID]float64{
		"uP1": 120, "uP2": 100, "A1": 250, "A2": 280, "A3": 300,
		"D3": 60, "U2": 60, "G1": 60, "C1": 10, "C5": 60,
	}
	for id, want := range costs {
		if got := s.ResourceCost(id); got != want {
			t.Errorf("cost(%s) = %v, want %v", id, got, want)
		}
	}
}

// TestSetTopTopology checks the reconstructed bus topology: μP2 reaches
// FPGA and every ASIC, μP1 reaches only the FPGA (and μP2), and no
// ASIC↔FPGA link exists.
func TestSetTopTopology(t *testing.T) {
	s := SetTopBox()
	full := spec.NewAllocation("uP1", "uP2", "A1", "A2", "A3",
		"C1", "C2", "C3", "C4", "C5", "C6", "dD3")
	av, err := s.ArchViewFor(full, hgraph.Selection{"FPGA": "dD3"})
	if err != nil {
		t.Fatal(err)
	}
	if !av.CanCommunicate("uP2", "D3") || !av.CanCommunicate("uP2", "A1") ||
		!av.CanCommunicate("uP2", "A2") || !av.CanCommunicate("uP2", "A3") {
		t.Error("uP2 must reach FPGA and all ASICs")
	}
	if !av.CanCommunicate("uP1", "D3") || !av.CanCommunicate("uP1", "uP2") {
		t.Error("uP1 must reach FPGA and uP2")
	}
	if av.CanCommunicate("uP1", "A1") || av.CanCommunicate("A1", "D3") || av.CanCommunicate("A1", "A2") {
		t.Error("forbidden links present (uP1↔ASIC, ASIC↔FPGA, ASIC↔ASIC)")
	}
}

func TestDecoderSpec(t *testing.T) {
	s := Decoder()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The only latencies published in the text.
	if m := s.Mapping("PU1", "uP"); m == nil || m.Latency != 40 {
		t.Errorf("Mapping(PU1,uP) = %v, want 40", m)
	}
	if m := s.Mapping("PU1", "A"); m == nil || m.Latency != 15 {
		t.Errorf("Mapping(PU1,A) = %v, want 15", m)
	}
	if !alloc.Possible(s, spec.NewAllocation("uP")) {
		t.Error("{uP} must be a possible allocation of the decoder")
	}
	if alloc.Possible(s, spec.NewAllocation("A", "C2")) {
		t.Error("decoder without uP cannot be possible")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(DefaultSynthetic(7))
	b := Synthetic(DefaultSynthetic(7))
	ja, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Error("same seed must produce identical specifications")
	}
	c := Synthetic(DefaultSynthetic(8))
	jc, _ := c.MarshalJSON()
	if string(ja) == string(jc) {
		t.Error("different seeds should differ")
	}
}

func TestSyntheticShape(t *testing.T) {
	p := SyntheticParams{Seed: 3, Apps: 4, Depth: 2, Branch: 2, Vertices: 2,
		Processors: 2, ASICs: 2, Designs: 2, Buses: 5, TimedFraction: 0.5}
	s := Synthetic(p)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 apps, each with nested interfaces: variants = (per-app variants) summed.
	if v := s.Problem.CountVariants(); v < 4 {
		t.Errorf("variants = %d, want >= 4", v)
	}
	// Every process must map to at least one processor.
	for _, v := range s.Problem.Leaves() {
		found := false
		for _, m := range s.MappingsFor(v.ID) {
			if m.Resource == "uP1" || m.Resource == "uP2" {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("process %s has no processor mapping", v.ID)
		}
	}
	// A processor-only allocation is always possible.
	if !alloc.Possible(s, spec.NewAllocation("uP1", "uP2")) {
		t.Error("processor allocation must be possible")
	}
}

// Property: Synthetic always produces a valid specification whose
// maximum flexibility is at least the number of apps.
func TestPropSyntheticValid(t *testing.T) {
	prop := func(seed int64) bool {
		p := DefaultSynthetic(seed % 1000)
		p.Depth = int(seed % 3)
		s := Synthetic(p)
		if err := s.Validate(); err != nil {
			return false
		}
		return flex.MaxFlexibility(s.Problem) >= float64(p.Apps)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestScaledSynthetic: the scaled family hits its unit budget exactly
// (the unit count is the symbolic enumerator's variable count, so the
// scaling benchmarks depend on it being precise) and always admits at
// least one possible allocation.
func TestScaledSynthetic(t *testing.T) {
	for _, u := range []int{30, 50, 100} {
		s := Synthetic(ScaledSynthetic(1, u))
		if err := s.Validate(); err != nil {
			t.Fatalf("units=%d: invalid spec: %v", u, err)
		}
		if got := len(alloc.Units(s)); got != u {
			t.Errorf("units=%d: alloc.Units = %d", u, got)
		}
		if n := alloc.CountPossibleBig(s); n.Sign() <= 0 {
			t.Errorf("units=%d: no possible allocations", u)
		}
	}
}

func TestSyntheticDegenerate(t *testing.T) {
	// Zero-valued params fall back to defaults without panicking.
	s := Synthetic(SyntheticParams{Seed: 1})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// No designs, single processor, no buses.
	s2 := Synthetic(SyntheticParams{Seed: 2, Apps: 2, Processors: 1})
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetTopBoxBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SetTopBox()
	}
}

func BenchmarkSyntheticBuild(b *testing.B) {
	p := DefaultSynthetic(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Synthetic(p)
	}
}

// TestGoldenJSON guards the shipped testdata/settop.json against model
// drift: the file must decode to a specification identical to the
// in-code case study.
func TestGoldenJSON(t *testing.T) {
	f, err := os.Open("../../testdata/settop.json")
	if err != nil {
		t.Fatalf("open golden file: %v", err)
	}
	defer f.Close()
	fromFile, err := spec.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fromFile.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := SetTopBox().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("testdata/settop.json is out of date; regenerate it from models.SetTopBox")
	}
}

// TestSDRModel validates the second case study's structure.
func TestSDRModel(t *testing.T) {
	s := SDR()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := flex.MaxFlexibility(s.Problem); got != 6 {
		t.Errorf("SDR max flexibility = %v, want 6 (gsm 3 + wifi 2 + bt 1)", got)
	}
	if got := s.Problem.CountVariants(); got != 7 {
		t.Errorf("SDR behaviours = %d, want 7 (4 gsm + 2 wifi + 1 bt)", got)
	}
	units := alloc.Units(s)
	if len(units) != 10 {
		t.Errorf("SDR units = %d, want 10 (3 proc/acc-class + 5 buses + 2 designs)", len(units))
	}
	// The FPGA designs are mutually exclusive at any instant.
	a := spec.NewAllocation("DSP1", "dVit", "dOFDM", "B1")
	n := 0
	a.EnumerateArchSelections(s, func(hgraph.Selection) bool { n++; return true })
	if n != 2 {
		t.Errorf("FPGA configurations = %d, want 2", n)
	}
	if !alloc.Possible(s, spec.NewAllocation("DSP1")) {
		t.Error("{DSP1} must be possible (GSM-FR + BT)")
	}
	if alloc.Possible(s, spec.NewAllocation("ACC", "B2")) {
		t.Error("no processor: impossible")
	}
}
