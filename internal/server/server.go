// Package server turns the anytime exploration runtime into a
// fault-tolerant service: an HTTP/JSON job API over
// core.ExploreContext / core.ExploreParallelContext with robustness as
// the headline.
//
//   - Admission control: the lint preflight (internal/lint) rejects
//     defective specifications at the door with a structured 422 and
//     the full diagnostic report; a bounded job queue returns 429 +
//     Retry-After when full.
//   - Per-job budgets: wall-clock deadline, worker count, and
//     candidate-scan budget ride the existing context/cursor machinery;
//     a deadline expiry completes the job with its prefix-exact partial
//     front — graceful degradation, never a dropped job.
//   - Load shedding: when queue pressure crosses the high-water mark,
//     the scheduler suspends the oldest running job through a
//     digest-guarded checkpoint (internal/checkpoint) and parks it; the
//     job resumes bit-identically when pressure drops below the
//     low-water mark.
//   - Crash safety: per-job panic isolation (one poisoned job cannot
//     take down the server), checkpoint writes under bounded
//     retry-with-jittered-backoff (checkpoint.RetryPolicy), and a
//     graceful drain that checkpoints every in-flight job before exit.
//   - Observability: per-job progress over SSE, /healthz, /readyz, and
//     a JSON /stats with queue depth, shed count, retry counters and
//     per-job pipeline gauges.
//
// The state machine, endpoints and error codes are documented in
// docs/explored-api.md; cmd/explored is the daemon front-end.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
)

// Failpoint sites of the serving path (see internal/faultinject). All
// are fired with the job's admission sequence number, so tests can
// target an exact job deterministically; the checkpoint I/O underneath
// additionally fires the checkpoint/write and checkpoint/rename sites.
const (
	// SiteAdmit fires during admission, after validation and before
	// enqueueing — an injected error simulates a transient
	// admission-path failure (503).
	SiteAdmit = "server/admit"
	// SiteRun fires at the start of each run segment. An injected error
	// fails the job with a structured error; an injected panic
	// exercises the per-job panic isolation.
	SiteRun = "server/run"
	// SiteSuspend fires before a suspension writes its checkpoint — an
	// injected error forces the park to fall back to in-memory resume
	// state (the job is still never lost).
	SiteSuspend = "server/suspend"
	// SiteResume fires before a resume loads its checkpoint from disk —
	// an injected error forces the fallback to in-memory resume state.
	SiteResume = "server/resume"
)

// Config parameterizes a Server. The zero value of every field selects
// a sensible default except CheckpointDir, which is required.
type Config struct {
	// CheckpointDir receives the digest-guarded job snapshots
	// (job-<seq>.ck.json). Required; created if missing.
	CheckpointDir string
	// QueueDepth bounds the admission queue (jobs waiting for a run
	// slot); a full queue returns 429 + Retry-After. <= 0 selects 16.
	QueueDepth int
	// MaxRunning bounds the concurrently running jobs. <= 0 selects 2.
	MaxRunning int
	// HighWater is the queue length at which the scheduler starts
	// shedding load by suspending the oldest running job; parked jobs
	// resume when the queue drains to HighWater/2. <= 0 selects
	// 3/4 of QueueDepth (minimum 1). Must not exceed QueueDepth.
	HighWater int
	// MaxDeadline caps (and defaults) the per-job wall-clock budget;
	// 0 = no default and no cap.
	MaxDeadline time.Duration
	// JobTTL evicts terminal (completed/failed/cancelled) jobs from the
	// in-memory registry once they have been terminal for this long;
	// subsequent GETs answer 404 and /stats counts the eviction. The
	// checkpoint file on disk is left untouched — eviction frees server
	// memory, it never destroys a resumable snapshot. 0 keeps terminal
	// jobs forever.
	JobTTL time.Duration
	// DefaultWorkers is the worker budget of jobs that do not ask for
	// one. <= 0 selects 1 (sequential).
	DefaultWorkers int
	// Lint enables the admission lint preflight. Disable only in tests
	// that need to admit defective specifications.
	Lint bool
	// Retry shapes the bounded retry of checkpoint writes. Sleep and
	// OnRetry are overridden per save (OnRetry feeds the /stats retry
	// counters); the remaining fields pass through.
	Retry checkpoint.RetryPolicy
	// Fault injects deterministic failures at the server/* sites and,
	// through the checkpoint writer, at checkpoint/write and
	// checkpoint/rename. A nil plan is inert. Test harness only.
	Fault *faultinject.Plan
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 16
	}
	return c.QueueDepth
}

func (c Config) maxRunning() int {
	if c.MaxRunning <= 0 {
		return 2
	}
	return c.MaxRunning
}

func (c Config) highWater() int {
	if c.HighWater > 0 {
		return c.HighWater
	}
	hw := c.queueDepth() * 3 / 4
	if hw < 1 {
		hw = 1
	}
	return hw
}

// lowWater is the queue length at which parked jobs resume: half the
// high-water mark, giving the shed/resume cycle hysteresis.
func (c Config) lowWater() int {
	return c.highWater() / 2
}

func (c Config) defaultWorkers() int {
	if c.DefaultWorkers <= 0 {
		return 1
	}
	return c.DefaultWorkers
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Counters are the service-level monotonic counters exposed by /stats.
type Counters struct {
	Admitted           int `json:"admitted"`
	RejectedLint       int `json:"rejectedLint"`
	RejectedInvalid    int `json:"rejectedInvalid"`
	RejectedFull       int `json:"rejectedQueueFull"`
	RejectedDraining   int `json:"rejectedDraining"`
	Shed               int `json:"shed"`
	Suspends           int `json:"suspends"`
	Resumes            int `json:"resumes"`
	ResumeFallbacks    int `json:"resumeFallbacks"`
	CheckpointRetries  int `json:"checkpointRetries"`
	CheckpointFailures int `json:"checkpointFailures"`
	PanicsRecovered    int `json:"panicsRecovered"`
	Completed          int `json:"completed"`
	Failed             int `json:"failed"`
	Cancelled          int `json:"cancelled"`
	Evicted            int `json:"evicted"`
}

// Stats is the /stats document: the live queue gauges, the counters,
// and one view per job (admission order).
type Stats struct {
	QueueLen  int       `json:"queueLen"`
	QueueCap  int       `json:"queueCap"`
	HighWater int       `json:"highWater"`
	LowWater  int       `json:"lowWater"`
	Running   int       `json:"running"`
	Parked    int       `json:"parked"`
	Draining  bool      `json:"draining"`
	Counters  Counters  `json:"counters"`
	Jobs      []JobView `json:"jobs"`
}

// Server is the exploration service. Create with New, mount Handler,
// stop with Shutdown.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*job
	order    []*job // admission order
	queue    []*job // waiting for a run slot
	parked   []*job // suspended, waiting for pressure to drop
	running  map[string]*job
	draining bool
	nextSeq  int
	counters Counters
	changed  chan struct{} // pulsed on every state change (Shutdown waits on it)
	wg       sync.WaitGroup

	sweepStop chan struct{} // closes the TTL sweeper; nil when JobTTL == 0
	sweepOnce sync.Once
}

// New validates the configuration, creates the checkpoint directory
// and returns a ready (but not yet listening) server; mount Handler on
// an http.Server to serve it.
func New(cfg Config) (*Server, error) {
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("server: CheckpointDir is required")
	}
	if cfg.HighWater > cfg.queueDepth() {
		return nil, fmt.Errorf("server: HighWater %d exceeds QueueDepth %d", cfg.HighWater, cfg.queueDepth())
	}
	if cfg.JobTTL < 0 {
		return nil, fmt.Errorf("server: JobTTL must be >= 0, got %s", cfg.JobTTL)
	}
	if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating checkpoint dir: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		jobs:    map[string]*job{},
		running: map[string]*job{},
		changed: make(chan struct{}, 1),
	}
	if cfg.JobTTL > 0 {
		s.sweepStop = make(chan struct{})
		go s.sweeper(s.sweepStop)
	}
	return s, nil
}

// stopSweeper shuts the TTL sweeper down exactly once; safe to call on
// a server that never started one.
func (s *Server) stopSweeper() {
	s.sweepOnce.Do(func() {
		if s.sweepStop != nil {
			close(s.sweepStop)
		}
	})
}

// sweeper periodically evicts terminal jobs past their TTL. The ticker
// cadence only bounds staleness; the eviction decision itself lives in
// sweep, which tests drive with explicit clocks.
func (s *Server) sweeper(stop <-chan struct{}) {
	t := time.NewTicker(sweepInterval(s.cfg.JobTTL))
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			s.sweep(now)
		case <-stop:
			return
		}
	}
}

// sweepInterval picks the sweeper cadence: half the TTL, clamped to
// [1s, 1min] so tiny TTLs cannot busy-spin and huge TTLs still evict
// within a minute of expiry.
func sweepInterval(ttl time.Duration) time.Duration {
	iv := ttl / 2
	if iv < time.Second {
		iv = time.Second
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	return iv
}

// sweep evicts every terminal job whose terminal transition is at
// least JobTTL old as of now, returning the eviction count. Terminal
// jobs live only in the jobs map and the admission-order list (never
// in queue/parked/running), so removal there is complete; the
// checkpoint file stays on disk.
func (s *Server) sweep(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.JobTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.JobTTL)
	n := 0
	kept := s.order[:0]
	for _, j := range s.order {
		if j.state.Terminal() && !j.doneAt.IsZero() && !j.doneAt.After(cutoff) {
			delete(s.jobs, j.id)
			s.counters.Evicted++
			n++
			continue
		}
		kept = append(kept, j)
	}
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil // release the evicted jobs to the GC
	}
	s.order = kept
	if n > 0 {
		s.cfg.logf("evicted %d terminal job(s) older than %s", n, s.cfg.JobTTL)
	}
	return n
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /jobs/{id}/suspend", s.handleSuspend)
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// notifyLocked pulses the change channel; caller holds mu.
func (s *Server) notifyLocked() {
	select {
	case s.changed <- struct{}{}:
	default:
	}
}

// handleSubmit is POST /jobs: parse → lint → budget-check → enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if s.draining {
		s.counters.RejectedDraining++
		s.mu.Unlock()
		(&apiError{Status: http.StatusServiceUnavailable, Code: CodeDraining,
			Message: "server is draining; resubmit elsewhere", RetryAfter: 5}).writeTo(w)
		return
	}
	s.mu.Unlock()

	_, j, aerr := s.parseRequest(http.MaxBytesReader(w, r.Body, 8<<20))
	if aerr != nil {
		s.mu.Lock()
		if aerr.Code == CodeLint {
			s.counters.RejectedLint++
		} else {
			s.counters.RejectedInvalid++
		}
		s.mu.Unlock()
		aerr.writeTo(w)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.counters.RejectedDraining++
		s.mu.Unlock()
		(&apiError{Status: http.StatusServiceUnavailable, Code: CodeDraining,
			Message: "server is draining; resubmit elsewhere", RetryAfter: 5}).writeTo(w)
		return
	}
	seq := s.nextSeq + 1
	if err := s.cfg.Fault.Fire(SiteAdmit, seq); err != nil {
		s.mu.Unlock()
		(&apiError{Status: http.StatusServiceUnavailable, Code: CodeAdmission,
			Message: fmt.Sprintf("transient admission failure: %v", err), RetryAfter: 1}).writeTo(w)
		return
	}
	if len(s.queue) >= s.cfg.queueDepth() {
		s.counters.RejectedFull++
		s.mu.Unlock()
		(&apiError{Status: http.StatusTooManyRequests, Code: CodeQueueFull,
			Message:    fmt.Sprintf("admission queue full (%d jobs); retry shortly", s.cfg.queueDepth()),
			RetryAfter: 1}).writeTo(w)
		return
	}
	s.nextSeq = seq
	j.seq = seq
	j.id = fmt.Sprintf("j-%d", seq)
	j.state = StateQueued
	j.ckPath = filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("job-%d.ck.json", seq))
	j.done = make(chan struct{})
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.queue = append(s.queue, j)
	s.counters.Admitted++
	s.scheduleLocked()
	view := j.viewLocked()
	s.notifyLocked()
	s.mu.Unlock()

	s.cfg.logf("admitted %s (spec %q, workers %d)", j.id, j.spec.Name, j.workers)
	w.Header().Set("Location", "/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, view)
}

// lookup resolves {id}; a miss writes the 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		(&apiError{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: fmt.Sprintf("no job %q", r.PathValue("id"))}).writeTo(w)
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, j := range s.order {
		views = append(views, j.viewLocked())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string][]JobView{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	view := j.viewLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// handleResult is GET /jobs/{id}/result: 200 with the full result once
// completed (including deadline-bounded partial fronts), 202 while the
// job is still in flight, 409 for failed/cancelled jobs.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state, res, errMsg := j.state, j.result, j.errMsg
	view := j.viewLocked()
	s.mu.Unlock()
	switch {
	case state == StateCompleted:
		data, err := res.MarshalJSON()
		if err != nil {
			(&apiError{Status: http.StatusInternalServerError, Code: "encoding",
				Message: err.Error()}).writeTo(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
		_, _ = w.Write([]byte("\n"))
	case state.Terminal():
		(&apiError{Status: http.StatusConflict, Code: CodeWrongState,
			Message: fmt.Sprintf("job %s %s: %s", j.id, state, errMsg)}).writeTo(w)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports whether the server can accept work: 503 while
// draining or while the admission queue is full.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, queueLen := s.draining, len(s.queue)
	s.mu.Unlock()
	switch {
	case draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case queueLen >= s.cfg.queueDepth():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "saturated"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot assembles the /stats document.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		QueueLen:  len(s.queue),
		QueueCap:  s.cfg.queueDepth(),
		HighWater: s.cfg.highWater(),
		LowWater:  s.cfg.lowWater(),
		Running:   len(s.running),
		Parked:    len(s.parked),
		Draining:  s.draining,
		Counters:  s.counters,
	}
	// s.order is admission order, which is also ascending job sequence.
	for _, j := range s.order {
		st.Jobs = append(st.Jobs, j.viewLocked())
	}
	return st
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
