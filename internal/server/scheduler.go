package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// scheduleLocked is the scheduler's single decision point, called under
// mu after every state change:
//
//  1. fill free run slots — a forced (operator-resumed) parked job
//     first, then parked jobs when queue pressure has dropped to the
//     low-water mark, then the oldest queued job;
//  2. shed load — while the queue is at or above the high-water mark,
//     suspend the oldest running job (at most one per pass; its slot
//     frees asynchronously once the checkpoint is parked).
func (s *Server) scheduleLocked() {
	if s.draining {
		return
	}
	for len(s.running) < s.cfg.maxRunning() {
		j := s.pickLocked()
		if j == nil {
			break
		}
		s.startLocked(j)
	}
	if len(s.queue) >= s.cfg.highWater() {
		if victim := s.oldestRunningLocked(); victim != nil {
			s.counters.Shed++
			victim.sheds++
			s.requestSuspendLocked(victim, suspendShed)
		}
	}
}

// pickLocked selects the next job to (re)start; caller holds mu. An
// explicitly resumed park always wins; shed parks resume once queue
// pressure has dropped to the low-water mark; operator and drain parks
// are held until their explicit resume.
func (s *Server) pickLocked() *job {
	for i, j := range s.parked {
		if j.forced {
			s.parked = append(s.parked[:i], s.parked[i+1:]...)
			return j
		}
	}
	if len(s.queue) <= s.cfg.lowWater() {
		for i, j := range s.parked {
			if !j.held {
				s.parked = append(s.parked[:i], s.parked[i+1:]...)
				return j
			}
		}
	}
	if len(s.queue) > 0 {
		j := s.queue[0]
		s.queue = s.queue[1:]
		return j
	}
	return nil
}

// oldestRunningLocked returns the running job with the lowest admission
// sequence that is not already being interrupted; caller holds mu.
func (s *Server) oldestRunningLocked() *job {
	var oldest *job
	for _, j := range s.running {
		if j.pending != pendingNone {
			continue
		}
		if oldest == nil || j.seq < oldest.seq {
			oldest = j
		}
	}
	return oldest
}

// requestSuspendLocked marks the job for suspension and cancels its run
// segment; the runner parks it (checkpointed) when the segment returns.
// Caller holds mu.
func (s *Server) requestSuspendLocked(j *job, kind suspendKind) {
	j.pending = pendingSuspend
	j.kind = kind
	if j.segCancel != nil {
		j.segCancel()
	}
}

// startLocked moves a queued or parked job into a run slot and spawns
// its runner goroutine; caller holds mu.
func (s *Server) startLocked(j *job) {
	resumed := j.state == StateSuspended
	j.state = StateRunning
	j.pending = pendingNone
	j.forced = false
	j.held = false
	var ctx context.Context
	var cancel context.CancelFunc
	if j.deadline.IsZero() {
		ctx, cancel = context.WithCancel(context.Background())
	} else {
		ctx, cancel = context.WithDeadline(context.Background(), j.deadline)
	}
	segCtx, segCancel := context.WithCancel(ctx)
	j.segCancel = func() { segCancel() }
	s.running[j.id] = j
	if resumed {
		s.counters.Resumes++
	}
	j.publishLocked(j.eventLocked())
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		defer segCancel()
		s.runJob(segCtx, j)
	}()
}

// runJob executes one run segment and commits its outcome. The
// expensive work (exploration, checkpoint I/O) happens outside mu.
func (s *Server) runJob(ctx context.Context, j *job) {
	resume, fellBack := s.loadResume(j)
	res, runErr, panicked := s.runSegment(ctx, j, resume)

	// A suspension checkpoint is written outside the lock (retry
	// backoff can sleep); decide first, write, then commit.
	s.mu.Lock()
	j.runSegments++
	if fellBack {
		s.counters.ResumeFallbacks++
	}
	delete(s.running, j.id)
	j.segCancel = nil
	action := j.pending
	kind := j.kind
	j.pending = pendingNone
	s.mu.Unlock()

	switch {
	case runErr != nil:
		s.finalize(j, StateFailed, nil, runErr.Error(), panicked)
	case action == pendingCancel:
		s.finalize(j, StateCancelled, res, "", false)
	case action == pendingSuspend && res.Interrupted && res.Reason == core.ReasonCancelled:
		s.park(j, res, kind)
	default:
		// Natural end of scan — including a deadline expiry, which
		// completes the job with its prefix-exact partial front.
		s.finalize(j, StateCompleted, res, "", false)
	}
}

// loadResume returns the resume state for the next segment: the
// digest-guarded checkpoint when one exists (every disk resume is
// revalidated against the spec and options digests), falling back to
// the in-memory state on injected faults or unreadable snapshots. The
// bool reports that a fallback happened.
func (s *Server) loadResume(j *job) (*core.Resume, bool) {
	s.mu.Lock()
	onDisk, mem := j.onDisk, j.resume
	s.mu.Unlock()
	if !onDisk {
		return mem, false
	}
	if err := s.cfg.Fault.Fire(SiteResume, j.seq); err != nil {
		s.cfg.logf("%s: resume fault: %v; falling back to in-memory state", j.id, err)
		return mem, true
	}
	snap, err := checkpoint.Load(j.ckPath)
	if err == nil {
		var r *core.Resume
		r, err = snap.Resume(j.spec, j.opts)
		if err == nil {
			return r, false
		}
	}
	s.cfg.logf("%s: checkpoint resume failed: %v; falling back to in-memory state", j.id, err)
	return mem, true
}

// runSegment runs the exploration under panic isolation: a panicking
// job is recovered here, recorded, and fails alone — the server and
// every other job keep going.
func (s *Server) runSegment(ctx context.Context, j *job, resume *core.Resume) (res *core.Result, runErr error, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			panicked = true
			runErr = fmt.Errorf("job panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if err := s.cfg.Fault.Fire(SiteRun, j.seq); err != nil {
		return nil, fmt.Errorf("run fault: %w", err), false
	}

	opts := j.opts
	opts.Resume = resume
	opts.ProgressEvery = j.ckEvery
	writer := &checkpoint.Writer{Path: j.ckPath, Fault: s.cfg.Fault}
	opts.Progress = func(p core.Progress) {
		s.publishProgress(j, p)
		if j.periodic {
			snap, err := checkpoint.Capture(j.spec, j.opts, p)
			if err == nil {
				err = s.saveWithRetry(j, writer, snap)
			}
			if err != nil {
				s.cfg.logf("%s: periodic checkpoint: %v", j.id, err)
			} else {
				s.mu.Lock()
				j.onDisk = true
				s.mu.Unlock()
			}
		}
	}

	if j.workers != 1 {
		res = core.ExploreParallelContext(ctx, j.spec, opts, j.workers, 0)
	} else {
		res = core.ExploreContext(ctx, j.spec, opts)
	}
	return res, nil, false
}

// publishProgress converts a core progress snapshot into the job's
// latest event and fans it out to SSE subscribers.
func (s *Server) publishProgress(j *job, p core.Progress) {
	ev := ProgressEvent{
		JobID:          j.id,
		State:          StateRunning,
		Cursor:         p.Cursor,
		BestFlex:       p.BestFlex,
		MaxFlexibility: p.MaxFlexibility,
		FrontSize:      len(p.Front),
		Possible:       p.Stats.PossibleAllocations,
	}
	if p.Stats.Pipeline != (core.PipelineStats{}) {
		pipe := p.Stats.Pipeline
		ev.Pipeline = &pipe
	}
	s.mu.Lock()
	j.publishLocked(ev)
	s.mu.Unlock()
}

// saveWithRetry writes a snapshot under the configured retry policy,
// wiring the retry counters into /stats. The jitter seed decorrelates
// writers per job and per save while staying deterministic.
func (s *Server) saveWithRetry(j *job, w *checkpoint.Writer, snap *checkpoint.Snapshot) error {
	s.mu.Lock()
	j.saves++
	pol := s.cfg.Retry
	pol.Seed = int64(j.seq)<<20 | int64(j.saves)
	s.mu.Unlock()
	pol.OnRetry = func(attempt int, err error) {
		s.cfg.logf("%s: checkpoint attempt %d failed: %v; retrying", j.id, attempt, err)
		s.mu.Lock()
		j.retries++
		s.counters.CheckpointRetries++
		s.mu.Unlock()
	}
	return w.SaveWithRetry(snap, pol)
}

// park suspends an interrupted job: persist the digest-guarded
// snapshot (bounded retry; an exhausted retry or an injected
// server/suspend fault degrades to in-memory resume state — the job is
// never lost), then append it to the parked list for resumption when
// pressure drops.
func (s *Server) park(j *job, res *core.Result, kind suspendKind) {
	onDisk := false
	if err := s.cfg.Fault.Fire(SiteSuspend, j.seq); err != nil {
		s.cfg.logf("%s: suspend fault: %v; parking with in-memory state only", j.id, err)
	} else {
		snap, err := checkpoint.FromResult(j.spec, j.opts, res)
		if err == nil {
			err = s.saveWithRetry(j, &checkpoint.Writer{Path: j.ckPath, Fault: s.cfg.Fault}, snap)
		}
		if err != nil {
			s.cfg.logf("%s: suspend checkpoint: %v; parking with in-memory state only", j.id, err)
		} else {
			onDisk = true
		}
	}

	s.mu.Lock()
	if onDisk {
		j.onDisk = true
	} else {
		s.counters.CheckpointFailures++
	}
	j.resume = resumeFromResult(res)
	j.state = StateSuspended
	j.held = kind != suspendShed
	j.suspends++
	// The last periodic progress event lags the interruption; surface
	// the exact suspension cursor in views and streams.
	j.latest.Cursor = res.Cursor
	j.latest.FrontSize = len(res.Front)
	if bf := bestFlexOf(res.Front); bf > j.latest.BestFlex {
		j.latest.BestFlex = bf
	}
	s.counters.Suspends++
	if j.pending == pendingCancel {
		// A DELETE raced the park; honour it without dropping the lock,
		// so the racing handler cannot finalize the job concurrently.
		s.finalizeLocked(j, StateCancelled, res, "", false)
		s.mu.Unlock()
		s.cfg.logf("%s %s", j.id, StateCancelled)
		return
	}
	s.parked = append(s.parked, j)
	j.publishLocked(j.eventLocked())
	s.scheduleLocked()
	s.notifyLocked()
	s.mu.Unlock()
	s.cfg.logf("suspended %s at cursor %d (%s, checkpoint=%v)", j.id, res.Cursor, kind, onDisk)
}

// finalize commits a terminal state and wakes waiters and subscribers.
func (s *Server) finalize(j *job, st State, res *core.Result, errMsg string, panicked bool) {
	s.mu.Lock()
	committed := s.finalizeLocked(j, st, res, errMsg, panicked)
	s.mu.Unlock()
	if committed {
		s.cfg.logf("%s %s", j.id, st)
	}
}

// finalizeLocked commits a terminal state; caller holds mu. It is
// idempotent — a job that is already terminal is left untouched (and
// false is returned), so a DELETE racing a park, or two concurrent
// DELETEs, can never double-close done or double-count a terminal
// transition.
func (s *Server) finalizeLocked(j *job, st State, res *core.Result, errMsg string, panicked bool) bool {
	if j.state.Terminal() {
		return false
	}
	j.state = st
	j.pending = pendingNone
	j.result = res
	j.errMsg = errMsg
	j.doneAt = time.Now() // starts the JobTTL eviction clock
	switch st {
	case StateCompleted:
		s.counters.Completed++
	case StateFailed:
		s.counters.Failed++
		if panicked {
			s.counters.PanicsRecovered++
		}
	case StateCancelled:
		s.counters.Cancelled++
	}
	close(j.done)
	j.publishLocked(j.eventLocked())
	s.scheduleLocked()
	s.notifyLocked()
	return true
}

// handleCancel is DELETE /jobs/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	switch {
	case j.state.Terminal():
		view := j.viewLocked()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, view)
		return
	case j.state == StateRunning:
		j.pending = pendingCancel
		if j.segCancel != nil {
			j.segCancel()
		}
		view := j.viewLocked()
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, view)
		return
	default:
		// Queued or suspended: remove from the waiting lists and
		// finalize immediately — one critical section, so a concurrent
		// DELETE or a racing park cannot finalize the job twice.
		s.queue = removeJob(s.queue, j)
		s.parked = removeJob(s.parked, j)
		s.finalizeLocked(j, StateCancelled, nil, "", false)
		view := j.viewLocked()
		s.mu.Unlock()
		s.cfg.logf("%s %s", j.id, StateCancelled)
		writeJSON(w, http.StatusOK, view)
		return
	}
}

// handleSuspend is POST /jobs/{id}/suspend: operator-forced park of a
// running job.
func (s *Server) handleSuspend(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	// The s.running membership check closes the window after runJob has
	// committed the segment (job removed from running, state not yet
	// updated by finalize/park): a suspend accepted there would never be
	// honoured.
	if j.state != StateRunning || j.pending != pendingNone || s.running[j.id] != j {
		state := j.state
		s.mu.Unlock()
		(&apiError{Status: http.StatusConflict, Code: CodeWrongState,
			Message: fmt.Sprintf("job %s is %s; only an uninterrupted running job can be suspended", j.id, state)}).writeTo(w)
		return
	}
	s.requestSuspendLocked(j, suspendManual)
	view := j.viewLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, view)
}

// handleResume is POST /jobs/{id}/resume: operator-forced resume of a
// suspended job, overriding the pressure gate.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		// scheduleLocked no-ops during a drain, so accepting the resume
		// would silently never honour it.
		(&apiError{Status: http.StatusServiceUnavailable, Code: CodeDraining,
			Message: "server is draining; resume the job from its checkpoint after restart", RetryAfter: 5}).writeTo(w)
		return
	}
	if j.state != StateSuspended {
		state := j.state
		s.mu.Unlock()
		(&apiError{Status: http.StatusConflict, Code: CodeWrongState,
			Message: fmt.Sprintf("job %s is %s; only a suspended job can be resumed", j.id, state)}).writeTo(w)
		return
	}
	j.forced = true
	s.scheduleLocked()
	view := j.viewLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, view)
}

// removeJob returns list without j, preserving order.
func removeJob(list []*job, j *job) []*job {
	for i, x := range list {
		if x == j {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Shutdown drains the server gracefully: admission closes (429/503 on
// new work, /readyz flips), every running job is interrupted and
// parked through a digest-guarded checkpoint, and every queued or
// in-memory-suspended job gets a snapshot too — no admitted job leaves
// without a resumable checkpoint on disk. Shutdown returns once all
// in-flight work is parked or terminal, or with an error when ctx
// expires first (remaining segments are then force-cancelled).
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopSweeper()
	s.mu.Lock()
	s.draining = true
	for _, j := range s.running {
		if j.pending == pendingNone {
			s.requestSuspendLocked(j, suspendDrain)
		}
	}
	s.mu.Unlock()

	var ctxErr error
	for {
		s.mu.Lock()
		n := len(s.running)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-s.changed:
		case <-ctx.Done():
			ctxErr = fmt.Errorf("server: drain interrupted with %d job(s) still running: %w", n, ctx.Err())
			s.mu.Lock()
			for _, j := range s.running {
				j.pending = pendingCancel
				if j.segCancel != nil {
					j.segCancel()
				}
			}
			s.mu.Unlock()
		}
		if ctxErr != nil {
			break
		}
	}
	// Runner goroutines exit promptly once their contexts are
	// cancelled; wait so no checkpoint write is in flight below. A
	// runner wedged inside checkpoint I/O must not wedge the drain,
	// so the wait itself also honours ctx.
	waitCh := make(chan struct{})
	go func() { s.wg.Wait(); close(waitCh) }()
	select {
	case <-waitCh:
	case <-ctx.Done():
		if ctxErr == nil {
			ctxErr = fmt.Errorf("server: drain interrupted while parking jobs: %w", ctx.Err())
		}
		return ctxErr
	}

	// Queued jobs and parks whose write failed still deserve a
	// resumable snapshot: persist their current (possibly empty)
	// prefix.
	s.mu.Lock()
	var pend []*job
	for _, j := range s.order {
		if (j.state == StateQueued || j.state == StateSuspended) && !j.onDisk {
			pend = append(pend, j)
		}
		if j.state == StateQueued {
			j.state = StateSuspended
			j.publishLocked(j.eventLocked())
		}
	}
	s.queue = nil
	s.mu.Unlock()

	var errs []error
	for _, j := range pend {
		snap, err := s.drainSnapshot(j)
		if err == nil {
			err = s.saveWithRetry(j, &checkpoint.Writer{Path: j.ckPath, Fault: s.cfg.Fault}, snap)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", j.id, err))
			continue
		}
		s.mu.Lock()
		j.onDisk = true
		s.mu.Unlock()
	}
	if len(errs) > 0 {
		errs = append(errs, ctxErr)
		return fmt.Errorf("server: drain checkpoints: %w", errors.Join(errs...))
	}
	return ctxErr
}

// drainSnapshot captures a job's current prefix — the in-memory resume
// state, or the empty prefix for a job that never ran.
func (s *Server) drainSnapshot(j *job) (*checkpoint.Snapshot, error) {
	s.mu.Lock()
	r := j.resume
	s.mu.Unlock()
	p := core.Progress{}
	if r != nil {
		p.Cursor = r.Cursor
		p.Front = r.Front
		p.Stats = r.Stats
		p.BestFlex = bestFlexOf(r.Front)
	}
	return checkpoint.Capture(j.spec, j.opts, p)
}

// CheckpointPath returns the snapshot path of a job id, or "" when the
// job is unknown — the hook tests and operators use to resume a
// drained job out of process.
func (s *Server) CheckpointPath(id string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		return j.ckPath
	}
	return ""
}
