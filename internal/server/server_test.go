package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/models"
	"repro/internal/spec"
)

// newTestServer builds a server plus an httptest front-end. The zero
// Config fields get test-friendly defaults: a TempDir checkpoint
// directory and the lint preflight enabled.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post submits body to path and returns the status plus decoded JSON.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil && err != io.EOF {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, m
}

func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil && err != io.EOF {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, m
}

// submit posts a job request and returns its id, failing on non-202.
func submit(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	status, m := post(t, ts, "/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit %s: status %d (%v)", body, status, m)
	}
	id, _ := m["id"].(string)
	if id == "" {
		t.Fatalf("submit response has no id: %v", m)
	}
	return id
}

// waitState polls the job until it reaches want or the deadline trips.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...State) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, m := get(t, ts, "/jobs/"+id)
		st, _ := m["state"].(string)
		for _, w := range want {
			if st == string(w) {
				return m
			}
		}
		if State(st).Terminal() {
			t.Fatalf("job %s reached terminal state %q, want one of %v (%v)", id, st, want, m)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want one of %v", id, st, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fetchResult GETs /jobs/{id}/result until it answers 200 and returns
// the decoded result document.
func fetchResult(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				t.Fatalf("result not JSON: %v\n%s", err, body)
			}
			return m
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				t.Fatalf("job %s never completed", id)
			}
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("result %s: status %d: %s", id, resp.StatusCode, body)
		}
	}
}

// frontJSON extracts the canonical front encoding from a result
// document (HTTP) or a *core.Result (baseline) for byte comparison.
// The per-behaviour binding witnesses are dropped first: the front
// contract (allocation, cost, flexibility, clusters — the repo-wide
// frontsEqual notion) is exact across resume splits, but a binding
// search restarted on a cold cache may pick a different, equally valid
// witness for the same behaviour.
func frontJSON(t *testing.T, doc map[string]any) string {
	t.Helper()
	entries, _ := doc["front"].([]any)
	canon := make([]map[string]any, 0, len(entries))
	for _, e := range entries {
		em, _ := e.(map[string]any)
		ce := map[string]any{}
		for k, v := range em {
			if k != "behaviours" {
				ce[k] = v
			}
		}
		canon = append(canon, ce)
	}
	b, err := json.Marshal(canon)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func baselineDoc(t *testing.T, r *core.Result) map[string]any {
	t.Helper()
	data, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// requireSameFront compares a job's served result against a directly
// computed baseline: byte-identical front and equal semantic effort
// counters (telemetry like cache hits may differ across resume splits).
func requireSameFront(t *testing.T, got map[string]any, want *core.Result) {
	t.Helper()
	wd := baselineDoc(t, want)
	if g, w := frontJSON(t, got), frontJSON(t, wd); g != w {
		t.Errorf("front differs from baseline:\n got %s\nwant %s", g, w)
	}
	if g, w := got["maxFlexibility"], wd["maxFlexibility"]; g != w {
		t.Errorf("maxFlexibility = %v, want %v", g, w)
	}
	if g, w := got["cursor"], wd["cursor"]; g != w {
		t.Errorf("cursor = %v, want %v", g, w)
	}
	gs, _ := got["stats"].(map[string]any)
	ws, _ := wd["stats"].(map[string]any)
	for _, k := range []string{"scanned", "possibleAllocations", "attempted", "feasible", "ecsTested"} {
		if gs[k] != ws[k] {
			t.Errorf("stats.%s = %v, want %v", k, gs[k], ws[k])
		}
	}
}

func apiErrOf(t *testing.T, m map[string]any) map[string]any {
	t.Helper()
	e, _ := m["error"].(map[string]any)
	if e == nil {
		t.Fatalf("response is not an error document: %v", m)
	}
	return e
}

// TestSubmitToResult: the happy path — submit a settop job, watch it
// complete, and require the served result to match a direct
// core.Explore run exactly.
func TestSubmitToResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Lint: true})
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"model": "settop", "workers": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/j-1" {
		t.Errorf("Location = %q, want /jobs/j-1", loc)
	}
	got := fetchResult(t, ts, "j-1")
	requireSameFront(t, got, core.Explore(models.SetTopBox(), core.Options{}))
	if got["reason"] != "completed" {
		t.Errorf("reason = %v, want completed", got["reason"])
	}
}

// TestSubmitSymbolicEnumerator: a job may pick the symbolic producer;
// the served result matches the symbolic baseline (front, cursor, and
// the producer's own scanned count).
func TestSubmitSymbolicEnumerator(t *testing.T) {
	_, ts := newTestServer(t, Config{Lint: true})
	id := submit(t, ts, `{"model": "settop", "workers": 1, "enumerator": "symbolic"}`)
	got := fetchResult(t, ts, id)
	requireSameFront(t, got, core.Explore(models.SetTopBox(), core.Options{Enumerator: core.EnumeratorSymbolic}))
	if got["reason"] != "completed" {
		t.Errorf("reason = %v, want completed", got["reason"])
	}
}

// TestSubmitShardedProducers: a job may shard candidate production;
// the served result matches the single-producer baseline (the merge is
// bit-identical) and the result's pipeline stats report the shard
// count actually used.
func TestSubmitShardedProducers(t *testing.T) {
	_, ts := newTestServer(t, Config{Lint: true})
	id := submit(t, ts, `{"model": "settop", "workers": 1, "producers": 2}`)
	got := fetchResult(t, ts, id)
	requireSameFront(t, got, core.Explore(models.SetTopBox(), core.Options{}))
	if got["reason"] != "completed" {
		t.Errorf("reason = %v, want completed", got["reason"])
	}
	stats, _ := got["stats"].(map[string]any)
	pipe, _ := stats["pipeline"].(map[string]any)
	if pipe == nil {
		t.Fatalf("result stats carry no pipeline block: %v", stats)
	}
	if p, _ := pipe["producers"].(float64); p != 2 {
		t.Errorf("pipeline.producers = %v, want 2", pipe["producers"])
	}
}

// TestLintAdmission: a structurally valid but defective specification
// (SL001 corpus: an unreachable leaf) is rejected at the door with 422
// and the full diagnostic report.
func TestLintAdmission(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "lint", "SL001.json"))
	if err != nil {
		t.Fatal(err)
	}
	// The corpus file must stay strict-parse clean for this test to
	// exercise the lint gate rather than the structural one.
	if _, err := spec.Read(bytes.NewReader(raw)); err != nil {
		t.Fatalf("SL001 corpus no longer passes strict read: %v", err)
	}

	s, ts := newTestServer(t, Config{Lint: true})
	status, m := post(t, ts, "/jobs", fmt.Sprintf(`{"spec": %s}`, raw))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%v)", status, m)
	}
	e := apiErrOf(t, m)
	if e["code"] != CodeLint {
		t.Errorf("code = %v, want %s", e["code"], CodeLint)
	}
	diags, _ := e["diagnostics"].([]any)
	if len(diags) == 0 {
		t.Error("422 carries no diagnostics")
	}
	if n := s.Snapshot().Counters.RejectedLint; n != 1 {
		t.Errorf("rejectedLint = %d, want 1", n)
	}

	// With the preflight disabled the same specification is admitted —
	// the gate, not the spec reader, was the rejector.
	_, ts2 := newTestServer(t, Config{})
	if status, m := post(t, ts2, "/jobs", fmt.Sprintf(`{"spec": %s, "workers": 1}`, raw)); status != http.StatusAccepted {
		t.Fatalf("lint-off submit: status %d (%v)", status, m)
	}
}

// TestAdmissionRejections walks the 4xx admission table.
func TestAdmissionRejections(t *testing.T) {
	s, ts := newTestServer(t, Config{Lint: true, MaxDeadline: time.Minute})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"not json", `{"model": `, http.StatusBadRequest, CodeMalformed},
		{"unknown field", `{"model": "settop", "maxScans": 5}`, http.StatusBadRequest, CodeMalformed},
		{"trailing data", `{"model": "settop"} {"model": "settop"}`, http.StatusBadRequest, CodeMalformed},
		{"spec and model", `{"model": "settop", "spec": {"name": "x"}}`, http.StatusBadRequest, CodeMalformed},
		{"neither spec nor model", `{"workers": 2}`, http.StatusBadRequest, CodeMalformed},
		{"unknown model", `{"model": "warehouse"}`, http.StatusBadRequest, CodeMalformed},
		{"invalid spec", `{"spec": {"name": "broken"}}`, http.StatusBadRequest, CodeBadSpec},
		{"negative workers", `{"model": "settop", "workers": -1}`, http.StatusBadRequest, CodeBadBudget},
		{"negative scan budget", `{"model": "settop", "maxScan": -5}`, http.StatusBadRequest, CodeBadBudget},
		{"negative deadline", `{"model": "settop", "deadlineMs": -1}`, http.StatusBadRequest, CodeBadBudget},
		{"deadline above cap", `{"model": "settop", "deadlineMs": 6000000}`, http.StatusBadRequest, CodeBadBudget},
		{"negative cadence", `{"model": "settop", "checkpointEvery": -2}`, http.StatusBadRequest, CodeBadBudget},
		{"negative batch", `{"model": "settop", "batch": -1}`, http.StatusBadRequest, CodeBadBudget},
		{"negative producers", `{"model": "settop", "producers": -2}`, http.StatusBadRequest, CodeBadBudget},
		{"unknown timing", `{"model": "settop", "timing": "edf"}`, http.StatusBadRequest, CodeBadBudget},
		{"unknown enumerator", `{"model": "settop", "enumerator": "bdd"}`, http.StatusBadRequest, CodeBadBudget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, m := post(t, ts, "/jobs", tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (%v)", status, tc.status, m)
			}
			if e := apiErrOf(t, m); e["code"] != tc.code {
				t.Errorf("code = %v, want %s", e["code"], tc.code)
			}
		})
	}
	st := s.Snapshot()
	if st.Counters.RejectedInvalid != len(cases) {
		t.Errorf("rejectedInvalid = %d, want %d", st.Counters.RejectedInvalid, len(cases))
	}
	if st.Counters.Admitted != 0 {
		t.Errorf("admitted = %d, want 0", st.Counters.Admitted)
	}
}

// TestLookupErrors: 404s and wrong-state 409s.
func TestLookupErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, m := get(t, ts, "/jobs/j-99"); status != http.StatusNotFound {
		t.Errorf("get unknown: status %d (%v)", status, m)
	}
	if status, _ := get(t, ts, "/jobs/j-99/result"); status != http.StatusNotFound {
		t.Errorf("result unknown: status %d", status)
	}
	id := submit(t, ts, `{"model": "decoder", "workers": 1}`)
	waitState(t, ts, id, StateCompleted)
	if status, m := post(t, ts, "/jobs/"+id+"/suspend", ""); status != http.StatusConflict {
		t.Errorf("suspend completed job: status %d (%v)", status, m)
	}
	if status, m := post(t, ts, "/jobs/"+id+"/resume", ""); status != http.StatusConflict {
		t.Errorf("resume completed job: status %d (%v)", status, m)
	}
}

// TestHealthEndpoints: /healthz is unconditional, /readyz tracks
// drain state.
func TestHealthEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if status, m := get(t, ts, "/healthz"); status != http.StatusOK || m["status"] != "ok" {
		t.Errorf("healthz: %d %v", status, m)
	}
	if status, m := get(t, ts, "/readyz"); status != http.StatusOK || m["status"] != "ready" {
		t.Errorf("readyz: %d %v", status, m)
	}
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	if status, m := get(t, ts, "/readyz"); status != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Errorf("readyz while draining: %d %v", status, m)
	}
	status, m := post(t, ts, "/jobs", `{"model": "settop"}`)
	if status != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d (%v)", status, m)
	}
	if e := apiErrOf(t, m); e["code"] != CodeDraining {
		t.Errorf("code = %v, want %s", e["code"], CodeDraining)
	}
	if n := s.Snapshot().Counters.RejectedDraining; n != 1 {
		t.Errorf("rejectedDraining = %d, want 1", n)
	}
}

// TestDeadlineCompletesWithPartialFront: a job whose wall-clock budget
// expires mid-scan completes (never fails) with the exact Pareto front
// of the prefix it covered.
func TestDeadlineCompletesWithPartialFront(t *testing.T) {
	_, ts := newTestServer(t, Config{Lint: true})
	id := submit(t, ts, `{"model": "settop", "workers": 1, "exhaustive": true, "deadlineMs": 120, "checkpointEvery": 8}`)
	got := fetchResult(t, ts, id)
	if got["interrupted"] != true || got["reason"] != "deadline" {
		t.Skipf("scan finished inside the deadline on this machine (reason=%v)", got["reason"])
	}
	cursor := int(got["cursor"].(float64))
	if cursor <= 0 {
		t.Fatalf("deadline job made no progress (cursor %d)", cursor)
	}
	// The partial front must be the exact front of the prefix
	// [0, cursor): reproduce it with a direct scan interrupted at the
	// same possible-candidate index. (MaxScan would not do — it counts
	// raw scanned subsets, a coarser unit than the candidate cursor.)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := core.ExploreContext(ctx, models.SetTopBox(), core.Options{
		DisableFlexBound: true, IncludeUselessComm: true,
		Fault: faultinject.New().CancelAt(core.SiteEstimate, cursor).Bind(cancel),
	})
	if base.Cursor != cursor {
		t.Fatalf("baseline interrupt missed: cursor %d, want %d", base.Cursor, cursor)
	}
	if g, w := frontJSON(t, got), frontJSON(t, baselineDoc(t, base)); g != w {
		t.Errorf("partial front is not the exact prefix front:\n got %s\nwant %s", g, w)
	}
}

// TestCancel: DELETE cancels queued and running jobs; the result
// endpoint answers 409 for them.
func TestCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRunning: 1})
	running := submit(t, ts, `{"model": "settop", "workers": 1, "exhaustive": true}`)
	queued := submit(t, ts, `{"model": "settop", "workers": 1}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: status %d", resp.StatusCode)
	}
	waitState(t, ts, queued, StateCancelled)

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+running, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: status %d", resp.StatusCode)
	}
	waitState(t, ts, running, StateCancelled)

	status, m := get(t, ts, "/jobs/"+running+"/result")
	if status != http.StatusConflict {
		t.Errorf("result of cancelled job: status %d (%v)", status, m)
	}
}

// TestConcurrentCancelFinalizesOnce: racing DELETEs of the same queued
// job must finalize it exactly once — a double finalize used to close
// j.done twice, panicking with the server mutex held and deadlocking
// every later request.
func TestConcurrentCancelFinalizesOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxRunning: 1})
	running := submit(t, ts, `{"model": "settop", "workers": 1, "exhaustive": true}`)
	queued := submit(t, ts, `{"model": "settop", "workers": 1}`)

	const racers = 8
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("concurrent cancel: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent cancel: status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	waitState(t, ts, queued, StateCancelled)
	if c := s.Snapshot().Counters; c.Cancelled != 1 {
		t.Errorf("cancelled counter = %d, want 1", c.Cancelled)
	}
	// The server must still be serving: the blocked running job finishes.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+running, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, running, StateCancelled)
}

// TestResumeWhileDraining: a drain parks jobs for an out-of-process
// restart; accepting a resume then would silently never honour it, so
// the API refuses with 503 draining.
func TestResumeWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxRunning: 1})
	id := submit(t, ts, `{"model": "settop", "workers": 1, "exhaustive": true}`)
	waitState(t, ts, id, StateRunning)
	if status, m := post(t, ts, "/jobs/"+id+"/suspend", ""); status != http.StatusAccepted {
		t.Fatalf("suspend: status %d (%v)", status, m)
	}
	waitState(t, ts, id, StateSuspended)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	status, m := post(t, ts, "/jobs/"+id+"/resume", "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("resume while draining: status %d (%v), want 503", status, m)
	}
	if errObj, _ := m["error"].(map[string]any); errObj["code"] != CodeDraining {
		t.Errorf("resume while draining: code %v, want %q", m, CodeDraining)
	}
}

// TestStatsDocument: the /stats gauges and per-job views.
func TestStatsDocument(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxRunning: 2, HighWater: 6})
	id := submit(t, ts, `{"model": "settop", "workers": 1}`)
	waitState(t, ts, id, StateCompleted)
	status, m := get(t, ts, "/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	if m["queueCap"] != float64(8) || m["highWater"] != float64(6) || m["lowWater"] != float64(3) {
		t.Errorf("gauges wrong: %v", m)
	}
	counters, _ := m["counters"].(map[string]any)
	if counters["admitted"] != float64(1) || counters["completed"] != float64(1) {
		t.Errorf("counters wrong: %v", counters)
	}
	jobs, _ := m["jobs"].([]any)
	if len(jobs) != 1 {
		t.Fatalf("jobs len %d, want 1", len(jobs))
	}
	jv, _ := jobs[0].(map[string]any)
	if jv["id"] != id || jv["state"] != "completed" || jv["spec"] != "settop" {
		t.Errorf("job view wrong: %v", jv)
	}
}

// TestEventsStream: the SSE stream opens with the current state and
// ends with the terminal event.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := submit(t, ts, `{"model": "settop", "workers": 1, "checkpointEvery": 64}`)
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // server closes the stream at the terminal event
	if err != nil {
		t.Fatal(err)
	}
	frames := strings.Split(strings.TrimSpace(string(body)), "\n\n")
	if len(frames) == 0 {
		t.Fatal("no SSE frames")
	}
	var last ProgressEvent
	for _, f := range frames {
		for _, line := range strings.Split(f, "\n") {
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				if err := json.Unmarshal([]byte(data), &last); err != nil {
					t.Fatalf("bad SSE data %q: %v", data, err)
				}
			}
		}
	}
	if last.State != StateCompleted || last.JobID != id {
		t.Errorf("terminal event = %+v", last)
	}
	base := core.Explore(models.SetTopBox(), core.Options{})
	if last.Cursor != base.Cursor || last.FrontSize != len(base.Front) {
		t.Errorf("terminal event cursor/front = %d/%d, want %d/%d",
			last.Cursor, last.FrontSize, base.Cursor, len(base.Front))
	}
}

// TestConfigValidation: New rejects nonsensical configurations.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("want error for missing CheckpointDir")
	}
	if _, err := New(Config{CheckpointDir: t.TempDir(), QueueDepth: 4, HighWater: 9}); err == nil {
		t.Error("want error for HighWater above QueueDepth")
	}
}

// TestJobTTLEviction: terminal jobs past the TTL vanish from the
// registry (404, gone from /stats) while fresher and non-terminal jobs
// survive. The sweep is driven with explicit clocks so the test never
// sleeps through a real TTL.
func TestJobTTLEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{JobTTL: time.Minute})
	old := submit(t, ts, `{"model": "settop", "workers": 1}`)
	fresh := submit(t, ts, `{"model": "settop", "workers": 1}`)
	waitState(t, ts, old, StateCompleted)
	waitState(t, ts, fresh, StateCompleted)

	// Pin the terminal timestamps so the sweep decision is deterministic:
	// "old" expired exactly at base+TTL, "fresh" has 30s left.
	base := time.Now()
	s.mu.Lock()
	s.jobs[old].doneAt = base
	s.jobs[fresh].doneAt = base.Add(30 * time.Second)
	s.mu.Unlock()

	if n := s.sweep(base.Add(time.Minute)); n != 1 {
		t.Fatalf("sweep evicted %d jobs, want 1", n)
	}
	if status, m := get(t, ts, "/jobs/"+old); status != http.StatusNotFound {
		t.Errorf("GET evicted job: status %d (%v), want 404", status, m)
	}
	if status, _ := get(t, ts, "/jobs/"+fresh); status != http.StatusOK {
		t.Errorf("GET fresh job: status %d, want 200", status)
	}
	st := s.Snapshot()
	if st.Counters.Evicted != 1 {
		t.Errorf("evicted counter = %d, want 1", st.Counters.Evicted)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].ID != fresh {
		t.Errorf("stats jobs = %+v, want only %s", st.Jobs, fresh)
	}

	// Idempotent at the same instant; a non-terminal job is never
	// evicted no matter how stale its clock looks.
	if n := s.sweep(base.Add(time.Minute)); n != 0 {
		t.Errorf("second sweep evicted %d jobs, want 0", n)
	}
	s.mu.Lock()
	s.jobs[fresh].state = StateRunning
	s.jobs[fresh].doneAt = base.Add(-time.Hour)
	s.mu.Unlock()
	if n := s.sweep(base.Add(time.Hour)); n != 0 {
		t.Errorf("sweep evicted a non-terminal job")
	}
	s.mu.Lock()
	s.jobs[fresh].state = StateCompleted
	s.mu.Unlock()

	// Eviction frees memory, not disk: the checkpoint file (if any)
	// and a zero-TTL server's jobs are untouched.
	s0, ts0 := newTestServer(t, Config{})
	id0 := submit(t, ts0, `{"model": "settop", "workers": 1}`)
	waitState(t, ts0, id0, StateCompleted)
	if n := s0.sweep(time.Now().Add(24 * time.Hour)); n != 0 {
		t.Errorf("zero-TTL sweep evicted %d jobs, want 0", n)
	}
}
