package server

import (
	"time"

	"repro/internal/core"
	"repro/internal/spec"
)

// State is a job's position in the service's lifecycle state machine:
//
//	queued ──► running ──► completed
//	  │           │ ▲  ╲──► failed
//	  │           ▼ │  ╲──► cancelled
//	  │        suspended ──► cancelled
//	  │       (checkpointed,
//	  │        parked) ──────► running (resumed bit-identically)
//	  └──► cancelled
//
// A deadline expiry is not a failure: the job completes with its
// prefix-exact partial front and Result.Interrupted set (graceful
// degradation — the service never drops an admitted job).
type State string

// Job states.
const (
	// StateQueued: admitted, waiting for a run slot.
	StateQueued State = "queued"
	// StateRunning: a run segment is executing on the exploration
	// runtime.
	StateRunning State = "running"
	// StateSuspended: parked under load shedding, an operator request,
	// or a drain; progress is persisted as a digest-guarded checkpoint
	// and the job resumes bit-identically when pressure drops.
	StateSuspended State = "suspended"
	// StateCompleted: the scan ended (exhausted, max-flex, scan-bound,
	// or deadline with a partial front); the result is fetchable.
	StateCompleted State = "completed"
	// StateFailed: the job's evaluation errored or panicked; the panic
	// was isolated to the job and the server kept serving.
	StateFailed State = "failed"
	// StateCancelled: deleted by the client.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCancelled
}

// pendingAction is the interruption requested for a running segment,
// recorded before its context is cancelled so the post-run handler can
// tell a suspend from a client cancellation.
type pendingAction int

const (
	pendingNone pendingAction = iota
	pendingSuspend
	pendingCancel
)

// suspendKind classifies who asked for a suspension, for /stats.
type suspendKind string

const (
	suspendShed   suspendKind = "shed"
	suspendManual suspendKind = "manual"
	suspendDrain  suspendKind = "drain"
)

// job is one admitted exploration job. All mutable fields are guarded
// by the server's single mutex; the immutable configuration (spec,
// semantic options, budgets, checkpoint path) is set at admission and
// read freely by the runner goroutine.
type job struct {
	seq      int
	id       string
	spec     *spec.Spec
	opts     core.Options // semantic options only; runtime hooks are set per segment
	workers  int
	ckPath   string
	ckEvery  int
	periodic bool
	deadline time.Time // zero = no deadline; absolute, spans suspensions

	// Guarded by Server.mu.
	state       State
	pending     pendingAction
	kind        suspendKind
	forced      bool // operator-requested resume overrides the pressure gate
	held        bool // operator/drain park: only an explicit resume restarts it
	segCancel   func()
	resume      *core.Resume // in-memory resume state (disk is authoritative when onDisk)
	onDisk      bool         // a digest-guarded checkpoint exists at ckPath
	result      *core.Result
	errMsg      string
	doneAt      time.Time // when the job turned terminal; zero until then
	latest      ProgressEvent
	subs        map[int]chan ProgressEvent
	nextSub     int
	runSegments int
	suspends    int
	sheds       int
	retries     int
	saves       int
	done        chan struct{}
}

// ProgressEvent is the wire form of one progress update, streamed over
// SSE and embedded in job views.
type ProgressEvent struct {
	JobID          string              `json:"jobId"`
	State          State               `json:"state"`
	Cursor         int                 `json:"cursor"`
	BestFlex       float64             `json:"bestFlex"`
	MaxFlexibility float64             `json:"maxFlexibility"`
	FrontSize      int                 `json:"frontSize"`
	Possible       int                 `json:"possibleAllocations"`
	Reason         string              `json:"reason,omitempty"`
	Error          string              `json:"error,omitempty"`
	Pipeline       *core.PipelineStats `json:"pipeline,omitempty"`
}

// JobView is the wire form of a job's externally visible state.
type JobView struct {
	ID             string  `json:"id"`
	State          State   `json:"state"`
	Spec           string  `json:"spec"`
	Cursor         int     `json:"cursor"`
	FrontSize      int     `json:"frontSize"`
	BestFlex       float64 `json:"bestFlex"`
	MaxFlexibility float64 `json:"maxFlexibility"`
	Reason         string  `json:"reason,omitempty"`
	Error          string  `json:"error,omitempty"`
	RunSegments    int     `json:"runSegments"`
	Suspends       int     `json:"suspends"`
	Sheds          int     `json:"sheds"`
	Retries        int     `json:"checkpointRetries"`
	Checkpointed   bool    `json:"checkpointed"`
}

// viewLocked renders the job; caller holds Server.mu.
func (j *job) viewLocked() JobView {
	v := JobView{
		ID:             j.id,
		State:          j.state,
		Spec:           j.spec.Name,
		Cursor:         j.latest.Cursor,
		FrontSize:      j.latest.FrontSize,
		BestFlex:       j.latest.BestFlex,
		MaxFlexibility: j.latest.MaxFlexibility,
		Error:          j.errMsg,
		RunSegments:    j.runSegments,
		Suspends:       j.suspends,
		Sheds:          j.sheds,
		Retries:        j.retries,
		Checkpointed:   j.onDisk,
	}
	if j.result != nil {
		v.Cursor = j.result.Cursor
		v.FrontSize = len(j.result.Front)
		v.MaxFlexibility = j.result.MaxFlexibility
		v.Reason = string(j.result.Reason)
		// The last progress event lags by up to the checkpoint cadence;
		// the final front is authoritative.
		if bf := bestFlexOf(j.result.Front); bf > v.BestFlex {
			v.BestFlex = bf
		}
	}
	return v
}

// eventLocked renders the job's current progress as an SSE event;
// caller holds Server.mu.
func (j *job) eventLocked() ProgressEvent {
	ev := j.latest
	ev.JobID = j.id
	ev.State = j.state
	ev.Error = j.errMsg
	if j.result != nil {
		ev.Cursor = j.result.Cursor
		ev.FrontSize = len(j.result.Front)
		ev.MaxFlexibility = j.result.MaxFlexibility
		ev.Reason = string(j.result.Reason)
		if bf := bestFlexOf(j.result.Front); bf > ev.BestFlex {
			ev.BestFlex = bf
		}
	}
	return ev
}

// bestFlexOf returns the best flexibility on a Pareto front.
func bestFlexOf(front []*core.Implementation) float64 {
	var best float64
	for _, im := range front {
		if im.Flexibility > best {
			best = im.Flexibility
		}
	}
	return best
}

// publishLocked records the event as the job's latest and fans it out
// to subscribers without blocking: a slow SSE client loses intermediate
// progress events, never the terminal one (the stream reads the final
// state directly when done closes). Caller holds Server.mu.
func (j *job) publishLocked(ev ProgressEvent) {
	j.latest = ev
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribeLocked registers an SSE subscriber; caller holds Server.mu.
func (j *job) subscribeLocked() (int, chan ProgressEvent) {
	if j.subs == nil {
		j.subs = map[int]chan ProgressEvent{}
	}
	id := j.nextSub
	j.nextSub++
	ch := make(chan ProgressEvent, 16)
	j.subs[id] = ch
	return id, ch
}

// resumeFromResult turns an interrupted segment's result into the
// in-memory resume state for the next segment. The cost-ordered
// enumeration replays the prefix deterministically, so continuing from
// (Cursor, Front, Stats) is bit-identical to never having stopped.
func resumeFromResult(r *core.Result) *core.Resume {
	return &core.Resume{Cursor: r.Cursor, Front: r.Front, Stats: r.Stats}
}
