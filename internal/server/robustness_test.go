package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/models"
	"repro/internal/spec"
)

// exhaustive is the slow-job request body: the unpruned settop scan
// (12288 candidates, hundreds of milliseconds sequential) leaves a wide
// window to interrupt mid-run.
const exhaustiveSettop = `{"model": "settop", "workers": 1, "exhaustive": true, "checkpointEvery": 16}`

func exhaustiveOpts() core.Options {
	return core.Options{DisableFlexBound: true, IncludeUselessComm: true}
}

// waitCursor polls until the job has scanned at least n candidates —
// proof it is genuinely mid-run.
func waitCursor(t *testing.T, ts *httptest.Server, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, m := get(t, ts, "/jobs/"+id)
		if c, _ := m["cursor"].(float64); int(c) >= n {
			return
		}
		if st, _ := m["state"].(string); State(st).Terminal() {
			t.Fatalf("job %s finished (%s) before reaching cursor %d", id, st, n)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached cursor %d", id, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSuspendResumeBitIdentical: an operator suspend parks the job
// behind a digest-guarded checkpoint; the resumed job finishes with a
// front and semantic counters identical to a never-interrupted run.
func TestSuspendResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CheckpointDir: dir, Lint: true})
	id := submit(t, ts, exhaustiveSettop)
	waitCursor(t, ts, id, 32)

	if status, m := post(t, ts, "/jobs/"+id+"/suspend", ""); status != http.StatusAccepted {
		t.Fatalf("suspend: status %d (%v)", status, m)
	}
	m := waitState(t, ts, id, StateSuspended)
	if m["checkpointed"] != true {
		t.Fatalf("suspended job has no checkpoint: %v", m)
	}
	cursor := int(m["cursor"].(float64))
	if cursor <= 0 {
		t.Fatalf("suspended at cursor %d", cursor)
	}

	// The on-disk snapshot must be digest-valid and carry the
	// suspension cursor.
	snap, err := checkpoint.Load(s.CheckpointPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Resume(models.SetTopBox(), exhaustiveOpts()); err != nil {
		t.Fatalf("snapshot fails digest validation: %v", err)
	}
	if snap.Cursor != cursor {
		t.Errorf("snapshot cursor %d, job cursor %d", snap.Cursor, cursor)
	}

	if status, m := post(t, ts, "/jobs/"+id+"/resume", ""); status != http.StatusAccepted {
		t.Fatalf("resume: status %d (%v)", status, m)
	}
	got := fetchResult(t, ts, id)
	requireSameFront(t, got, core.Explore(models.SetTopBox(), exhaustiveOpts()))

	_, jm := get(t, ts, "/jobs/"+id)
	if jm["runSegments"].(float64) < 2 || jm["suspends"].(float64) != 1 {
		t.Errorf("segments/suspends = %v/%v, want >=2/1", jm["runSegments"], jm["suspends"])
	}
	st := s.Snapshot().Counters
	if st.Suspends != 1 || st.Resumes != 1 || st.ResumeFallbacks != 0 {
		t.Errorf("counters = %+v, want 1 suspend, 1 resume, 0 fallbacks", st)
	}
}

// TestShedAndBackpressure: with the queue at the high-water mark the
// scheduler parks the oldest running job (checkpoint-backed) to drain
// the queue faster, and a full queue answers 429 + Retry-After. The
// parked job resumes when pressure drops and still produces the exact
// front. Checkpoint writes are blocked on a gate while the queue-full
// window is asserted, making the 429 deterministic.
func TestShedAndBackpressure(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{
		MaxRunning: 1,
		QueueDepth: 2,
		HighWater:  2,
		Lint:       true,
		// The first write attempt fails; the backoff sleep blocks on
		// the gate, pinning the shed victim mid-park (its run slot is
		// free but the park has not committed, so the queue cannot be
		// seen to drain by the test) until 429 has been asserted.
		// Closing the gate turns every later sleep into a no-op.
		Fault: faultinject.New().ErrorAt(checkpoint.SiteWrite, 0, nil),
		Retry: checkpoint.RetryPolicy{
			MaxAttempts: 3,
			Sleep:       func(time.Duration) { <-gate },
		},
	})

	victim := submit(t, ts, exhaustiveSettop)
	waitCursor(t, ts, victim, 16)
	q1 := submit(t, ts, `{"model": "settop", "workers": 1}`)
	q2 := submit(t, ts, `{"model": "decoder", "workers": 1}`) // queue = 2 = high water -> shed

	// Wait for the shed to take the victim off its run slot; its park
	// is pinned in the gated retry sleep, so the queue stays full.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := s.Snapshot()
		if st.Running == 0 && st.QueueLen == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shed never happened: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	status, m := post(t, ts, "/jobs", `{"model": "sdr", "workers": 1}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("submit on full queue: status %d (%v)", status, m)
	}
	if e := apiErrOf(t, m); e["code"] != CodeQueueFull {
		t.Errorf("code = %v, want %s", e["code"], CodeQueueFull)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz on full queue: %d, want 503", resp.StatusCode)
	}

	close(gate)

	// Pressure drains: the queued jobs run, the shed victim resumes and
	// completes with the exact front despite the interruption and the
	// transient write failure.
	requireSameFront(t, fetchResult(t, ts, q1), core.Explore(models.SetTopBox(), core.Options{}))
	requireSameFront(t, fetchResult(t, ts, q2), core.Explore(models.Decoder(), core.Options{}))
	requireSameFront(t, fetchResult(t, ts, victim), core.Explore(models.SetTopBox(), exhaustiveOpts()))

	c := s.Snapshot().Counters
	if c.Shed != 1 || c.Suspends != 1 || c.RejectedFull != 1 {
		t.Errorf("counters = %+v, want shed=1 suspends=1 rejectedFull=1", c)
	}
	if c.CheckpointRetries == 0 {
		t.Error("the injected transient write failure never surfaced as a retry")
	}
	if _, v := get(t, ts, "/jobs/"+victim); v["sheds"] != float64(1) {
		t.Errorf("victim sheds = %v, want 1", v["sheds"])
	}
}

// TestPanicIsolation: a job that panics inside its run segment fails
// alone; the server keeps scheduling and completing other jobs.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxRunning: 2,
		Fault:      faultinject.New().PanicAt(SiteRun, 2, "poisoned job"),
	})
	ok1 := submit(t, ts, `{"model": "settop", "workers": 1}`) // seq 1
	bad := submit(t, ts, `{"model": "settop", "workers": 1}`) // seq 2: panics
	waitState(t, ts, bad, StateFailed)
	_, m := get(t, ts, "/jobs/"+bad)
	if errStr, _ := m["error"].(string); errStr == "" {
		t.Error("failed job carries no error message")
	}
	if status, _ := get(t, ts, "/jobs/"+bad+"/result"); status != http.StatusConflict {
		t.Errorf("result of failed job: status %d, want 409", status)
	}

	requireSameFront(t, fetchResult(t, ts, ok1), core.Explore(models.SetTopBox(), core.Options{}))
	ok2 := submit(t, ts, `{"model": "decoder", "workers": 1}`) // after the panic
	requireSameFront(t, fetchResult(t, ts, ok2), core.Explore(models.Decoder(), core.Options{}))

	c := s.Snapshot().Counters
	if c.PanicsRecovered != 1 || c.Failed != 1 || c.Completed != 2 {
		t.Errorf("counters = %+v, want 1 panic, 1 failed, 2 completed", c)
	}
}

// TestResumeFallback: when the on-disk checkpoint cannot be used (an
// injected server/resume fault), the job still resumes from its
// in-memory state and completes exactly.
func TestResumeFallback(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Fault: faultinject.New().ErrorAt(SiteResume, 1, nil),
	})
	id := submit(t, ts, exhaustiveSettop) // seq 1
	waitCursor(t, ts, id, 32)
	if status, m := post(t, ts, "/jobs/"+id+"/suspend", ""); status != http.StatusAccepted {
		t.Fatalf("suspend: status %d (%v)", status, m)
	}
	waitState(t, ts, id, StateSuspended)
	if status, m := post(t, ts, "/jobs/"+id+"/resume", ""); status != http.StatusAccepted {
		t.Fatalf("resume: status %d (%v)", status, m)
	}
	requireSameFront(t, fetchResult(t, ts, id), core.Explore(models.SetTopBox(), exhaustiveOpts()))
	if c := s.Snapshot().Counters; c.ResumeFallbacks == 0 {
		t.Errorf("counters = %+v, want a resume fallback", c)
	}
}

// TestSuspendCheckpointFailureDegrades: when the suspension checkpoint
// cannot be written at all (server/suspend fault), the job parks with
// in-memory state only — degraded, but never lost.
func TestSuspendCheckpointFailureDegrades(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Fault: faultinject.New().ErrorAt(SiteSuspend, 1, nil),
	})
	id := submit(t, ts, exhaustiveSettop) // seq 1
	waitCursor(t, ts, id, 32)
	if status, m := post(t, ts, "/jobs/"+id+"/suspend", ""); status != http.StatusAccepted {
		t.Fatalf("suspend: status %d (%v)", status, m)
	}
	m := waitState(t, ts, id, StateSuspended)
	if m["checkpointed"] != false {
		t.Fatalf("park should have no checkpoint under the injected fault: %v", m)
	}
	if status, m := post(t, ts, "/jobs/"+id+"/resume", ""); status != http.StatusAccepted {
		t.Fatalf("resume: status %d (%v)", status, m)
	}
	requireSameFront(t, fetchResult(t, ts, id), core.Explore(models.SetTopBox(), exhaustiveOpts()))
	if c := s.Snapshot().Counters; c.CheckpointFailures != 1 {
		t.Errorf("checkpointFailures = %d, want 1", c.CheckpointFailures)
	}
}

// TestGracefulDrain is the SIGTERM-path contract: Shutdown interrupts
// every running job, checkpoints all in-flight work (running, queued,
// parked), and each snapshot resumes out-of-process to a front
// bit-identical to an uninterrupted run. One transient write failure is
// injected to prove the drain path also rides the bounded retry.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		CheckpointDir: dir,
		MaxRunning:    2,
		Lint:          true,
		Fault:         faultinject.New().ErrorAt(checkpoint.SiteWrite, 0, nil),
		Retry:         checkpoint.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}},
	})
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, submit(t, ts, exhaustiveSettop))
	}
	waitCursor(t, ts, ids[0], 32)
	waitCursor(t, ts, ids[1], 32)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	base := core.Explore(models.SetTopBox(), exhaustiveOpts())
	for _, id := range ids {
		_, m := get(t, ts, "/jobs/"+id)
		if m["state"] != "suspended" {
			t.Fatalf("%s left in state %v after drain", id, m["state"])
		}
		if m["checkpointed"] != true {
			t.Fatalf("%s has no checkpoint after drain: %v", id, m)
		}
		snap, err := checkpoint.Load(s.CheckpointPath(id))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		res, err := snap.Resume(models.SetTopBox(), exhaustiveOpts())
		if err != nil {
			t.Fatalf("%s: snapshot fails digest validation: %v", id, err)
		}
		resumed := core.Explore(models.SetTopBox(), core.Options{
			DisableFlexBound: true, IncludeUselessComm: true, Resume: res,
		})
		requireSameFront(t, baselineDoc(t, resumed), base)
	}
	if c := s.Snapshot().Counters; c.CheckpointRetries == 0 {
		t.Errorf("counters = %+v, want the injected write failure retried", c)
	}
}

// TestDrainDeadline: a drain whose context expires still returns (with
// an error) instead of hanging, force-cancelling the stragglers.
func TestDrainDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s, ts := newTestServer(t, Config{
		// Pin the park in its retry sleep so the drain cannot finish.
		Fault: faultinject.New().ErrorAt(checkpoint.SiteWrite, -1, nil),
		Retry: checkpoint.RetryPolicy{MaxAttempts: 1000, Sleep: func(time.Duration) { <-gate }},
	})
	id := submit(t, ts, exhaustiveSettop)
	waitCursor(t, ts, id, 16)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("expired drain returned nil error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain hung past its context deadline")
	}
}

// TestChaos is the acceptance stress: many concurrent jobs over a small
// shedding server with transient checkpoint-write failures, operator
// suspends racing completion, queue-full backpressure handled by
// resubmission, and a mid-run drain — after which every job has either
// completed with the exact front or left a digest-valid checkpoint that
// resumes to it. Zero lost jobs, under -race.
func TestChaos(t *testing.T) {
	type kind struct {
		body     string
		spec     func() *spec.Spec
		opts     core.Options
		parallel bool
	}
	kinds := []kind{
		{`{"model": "settop", "workers": 1, "exhaustive": true, "checkpointEvery": 16}`,
			models.SetTopBox, exhaustiveOpts(), false},
		{`{"model": "settop", "workers": 2, "exhaustive": true, "checkpointEvery": 16}`,
			models.SetTopBox, exhaustiveOpts(), true},
		{`{"model": "settop", "workers": 1}`, models.SetTopBox, core.Options{}, false},
		{`{"model": "synthetic", "seed": 7, "workers": 1, "periodicCheckpoint": true, "checkpointEvery": 32}`,
			func() *spec.Spec { return models.Synthetic(models.DefaultSynthetic(7)) }, core.Options{}, false},
		{`{"model": "sdr", "workers": 1}`, models.SDR, core.Options{}, false},
		{`{"model": "decoder", "workers": 1}`, models.Decoder, core.Options{}, false},
		{`{"model": "settop", "workers": 1, "exhaustive": true, "checkpointEvery": 16}`,
			models.SetTopBox, exhaustiveOpts(), false},
		{`{"model": "synthetic", "seed": 11, "workers": 2, "checkpointEvery": 32}`,
			func() *spec.Spec { return models.Synthetic(models.DefaultSynthetic(11)) }, core.Options{}, true},
		{`{"model": "settop", "workers": 1, "exhaustive": true, "checkpointEvery": 16}`,
			models.SetTopBox, exhaustiveOpts(), false},
	}
	s, ts := newTestServer(t, Config{
		MaxRunning: 2,
		QueueDepth: 4,
		HighWater:  3,
		Lint:       true,
		// Two transient write failures at distinct global write indices;
		// both must be absorbed by the bounded retry.
		Fault: faultinject.New().
			ErrorAt(checkpoint.SiteWrite, 0, nil).
			ErrorAt(checkpoint.SiteWrite, 3, nil).
			ErrorAt(checkpoint.SiteRename, 5, nil),
		Retry: checkpoint.RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {}},
	})

	// Submit all jobs, riding the 429 backpressure like a real client.
	ids := make([]string, len(kinds))
	for i, k := range kinds {
		for {
			status, m := post(t, ts, "/jobs", k.body)
			if status == http.StatusAccepted {
				ids[i] = m["id"].(string)
				break
			}
			if status != http.StatusTooManyRequests {
				t.Fatalf("submit %d: status %d (%v)", i, status, m)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Operator chaos: shower every job with suspends and resumes while
	// the scheduler sheds under queue pressure. 409s (wrong state) are
	// expected and fine — the point is racing interruptions against
	// completions without corrupting any result.
	for round := 0; round < 5; round++ {
		for _, id := range ids {
			resp, err := http.Post(ts.URL+"/jobs/"+id+"/suspend", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			resp, err = http.Post(ts.URL+"/jobs/"+id+"/resume", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Let roughly half the fleet finish, then pull the plug mid-run.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if s.Snapshot().Counters.Completed >= len(kinds)/2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never reached half completion")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Zero lost jobs: every admitted job either completed with the
	// exact front, or was parked with a digest-valid checkpoint that
	// resumes to it out of process.
	completed, parked := 0, 0
	for i, id := range ids {
		k := kinds[i]
		// An interrupted parallel pipeline legitimately enumerates a
		// little past its committed cursor, so suspended-and-resumed
		// parallel jobs can overshoot the scan-effort counters; their
		// fronts must still be exact.
		check := func(got map[string]any, want *core.Result) {
			if k.parallel {
				if g, w := frontJSON(t, got), frontJSON(t, baselineDoc(t, want)); g != w {
					t.Errorf("%s: front differs from baseline:\n got %s\nwant %s", id, g, w)
				}
				if g, w := got["maxFlexibility"], baselineDoc(t, want)["maxFlexibility"]; g != w {
					t.Errorf("%s: maxFlexibility = %v, want %v", id, g, w)
				}
			} else {
				requireSameFront(t, got, want)
			}
		}
		_, m := get(t, ts, "/jobs/"+id)
		switch m["state"] {
		case "completed":
			completed++
			check(fetchResult(t, ts, id), core.Explore(k.spec(), k.opts))
		case "suspended":
			parked++
			if m["checkpointed"] != true {
				t.Fatalf("%s parked without a checkpoint: %v", id, m)
			}
			snap, err := checkpoint.Load(s.CheckpointPath(id))
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			res, err := snap.Resume(k.spec(), k.opts)
			if err != nil {
				t.Fatalf("%s: snapshot fails digest validation: %v", id, err)
			}
			opts := k.opts
			opts.Resume = res
			check(baselineDoc(t, core.Explore(k.spec(), opts)), core.Explore(k.spec(), k.opts))
		default:
			t.Fatalf("%s lost: state %v (%v)", id, m["state"], m)
		}
	}
	t.Logf("chaos: %d completed, %d parked, counters %+v", completed, parked, s.Snapshot().Counters)
	if completed+parked != len(kinds) {
		t.Fatalf("%d+%d jobs accounted, want %d", completed, parked, len(kinds))
	}

	c := s.Snapshot().Counters
	if c.Admitted != len(kinds) {
		t.Errorf("admitted = %d, want %d", c.Admitted, len(kinds))
	}
	if c.Suspends == 0 {
		t.Error("chaos run never suspended a job")
	}
	if c.CheckpointRetries == 0 {
		t.Error("the injected transient write failures never hit the retry path")
	}
	if c.Failed != 0 || c.Cancelled != 0 {
		t.Errorf("counters = %+v, want no failed or cancelled jobs", c)
	}
}

// TestCheckpointFilesLandInDir: the server writes its snapshots under
// the configured directory, one per suspended job.
func TestCheckpointFilesLandInDir(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CheckpointDir: dir})
	id := submit(t, ts, exhaustiveSettop)
	waitCursor(t, ts, id, 32)
	if status, m := post(t, ts, "/jobs/"+id+"/suspend", ""); status != http.StatusAccepted {
		t.Fatalf("suspend: status %d (%v)", status, m)
	}
	waitState(t, ts, id, StateSuspended)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "job-1.ck.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("checkpoint dir holds %v, want [job-1.ck.json]", names)
	}
	if s.CheckpointPath(id) == "" {
		t.Error("CheckpointPath returned empty for a known job")
	}
	// Cancel the parked job so the test tears down promptly.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// TestProgressEventWireShape guards the ProgressEvent encoding used by
// the SSE stream and the /stats job views.
func TestProgressEventWireShape(t *testing.T) {
	ev := ProgressEvent{JobID: "j-1", State: StateRunning, Cursor: 5, FrontSize: 2}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"jobId"`, `"state"`, `"cursor"`, `"frontSize"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("event JSON %s misses %s", b, key)
		}
	}
}
