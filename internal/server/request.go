package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/lint"
	"repro/internal/models"
	"repro/internal/spec"
)

// Request is the body of POST /jobs: the specification to explore
// (inline JSON or a built-in model) plus the job's budgets and runtime
// knobs. Unknown fields are rejected — a typo in a budget field must
// not silently become an unbounded job.
type Request struct {
	// Spec is an inline specification graph (internal/spec JSON
	// format). Exactly one of Spec and Model is required.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Model selects a built-in model: settop | decoder | sdr |
	// synthetic.
	Model string `json:"model,omitempty"`
	// Seed parameterizes the synthetic model.
	Seed int64 `json:"seed,omitempty"`

	// Timing is the timing policy: paper (default) | rta | ll | none.
	Timing string `json:"timing,omitempty"`
	// Weighted selects the weighted flexibility metric.
	Weighted bool `json:"weighted,omitempty"`
	// Exhaustive disables the flexibility bound and the useless-bus
	// pruning (the exhaustive baseline scan).
	Exhaustive bool `json:"exhaustive,omitempty"`
	// StopAtMaxFlex terminates the scan once maximum flexibility is
	// implemented.
	StopAtMaxFlex bool `json:"stopAtMaxFlex,omitempty"`

	// MaxScan bounds the enumeration effort (0 = unbounded) — the
	// per-job candidate-scan budget, counted in the enumerator's own
	// unit: subsets scanned (bitset) or BDD search nodes visited
	// (symbolic).
	MaxScan int `json:"maxScan,omitempty"`
	// Enumerator selects the possible-allocation producer: "bitset",
	// "symbolic", or "auto"/"" (bitset at small unit counts, symbolic
	// above). The choice never changes the result — both producers emit
	// the bit-identical candidate stream — only the scan effort.
	Enumerator string `json:"enumerator,omitempty"`
	// MaxECS bounds the behaviours tested per candidate.
	MaxECS int `json:"maxEcs,omitempty"`
	// MaxBindNodes bounds each binding search.
	MaxBindNodes int `json:"maxBindNodes,omitempty"`

	// Workers is the job's worker budget (0 = server default, 1 =
	// sequential, N = parallel pipeline).
	Workers int `json:"workers,omitempty"`
	// Batch sets the parallel explorer's range-job size (0 = adaptive).
	Batch int `json:"batch,omitempty"`
	// Producers shards candidate production across goroutines, merged
	// back into the bit-identical cost-ordered stream (0 = auto: direct
	// scan for sequential jobs, min(workers, 4) for parallel ones).
	Producers int `json:"producers,omitempty"`
	// DeadlineMs is the job's wall-clock budget in milliseconds,
	// counted from admission and spanning suspensions; on expiry the
	// job completes with its prefix-exact partial front. 0 selects the
	// server default; the server's MaxDeadline caps it.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
	// CheckpointEvery is the progress (and periodic-checkpoint) cadence
	// in candidates (0 = 64).
	CheckpointEvery int `json:"checkpointEvery,omitempty"`
	// PeriodicCheckpoint persists a crash snapshot at every progress
	// interval, not only on suspension.
	PeriodicCheckpoint bool `json:"periodicCheckpoint,omitempty"`
}

// apiError is a structured admission or lookup failure, rendered as
// {"error": {...}} with the HTTP status.
type apiError struct {
	Status      int               `json:"-"`
	RetryAfter  int               `json:"-"` // seconds, sets Retry-After when > 0
	Code        string            `json:"code"`
	Message     string            `json:"message"`
	Diagnostics []lint.Diagnostic `json:"diagnostics,omitempty"`
}

// Error codes returned by the API.
const (
	CodeMalformed  = "malformed-request"
	CodeBadSpec    = "bad-spec"
	CodeLint       = "lint-rejected"
	CodeBadBudget  = "bad-budget"
	CodeQueueFull  = "queue-full"
	CodeDraining   = "draining"
	CodeNotFound   = "not-found"
	CodeWrongState = "wrong-state"
	CodeAdmission  = "admission-fault"
)

func errMalformed(msg string) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: CodeMalformed, Message: msg}
}

func errBudget(msg string) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: CodeBadBudget, Message: msg}
}

// writeTo renders the error.
func (e *apiError) writeTo(w http.ResponseWriter) {
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", e.RetryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]*apiError{"error": e})
}

// parseRequest decodes and validates a job submission: the request
// shape, the specification itself (structural validation), the lint
// preflight (admission control — defective specs are rejected at the
// door with the full diagnostic report), and the budgets against the
// server's caps. It returns the admitted job template or the
// structured 4xx to send.
func (s *Server) parseRequest(body io.Reader) (*Request, *job, *apiError) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, nil, errMalformed(fmt.Sprintf("decoding request: %v", err))
	}
	if dec.More() {
		return nil, nil, errMalformed("trailing data after the request object")
	}

	sp, aerr := s.loadSpec(&req)
	if aerr != nil {
		return nil, nil, aerr
	}
	if s.cfg.Lint {
		rep := lint.NewEngine().Run(sp)
		if rep.HasErrors() {
			errs, _, _ := rep.Counts()
			return nil, nil, &apiError{
				Status:      http.StatusUnprocessableEntity,
				Code:        CodeLint,
				Message:     fmt.Sprintf("lint preflight rejected specification %q: %d error(s)", sp.Name, errs),
				Diagnostics: rep.Diagnostics,
			}
		}
	}

	j, aerr := s.jobFromRequest(&req, sp)
	if aerr != nil {
		return nil, nil, aerr
	}
	return &req, j, nil
}

// loadSpec materializes the requested specification.
func (s *Server) loadSpec(req *Request) (*spec.Spec, *apiError) {
	switch {
	case len(req.Spec) > 0 && req.Model != "":
		return nil, errMalformed(`"spec" and "model" are mutually exclusive`)
	case len(req.Spec) == 0 && req.Model == "":
		return nil, errMalformed(`one of "spec" or "model" is required`)
	case len(req.Spec) > 0:
		sp, err := spec.Read(bytes.NewReader(req.Spec))
		if err != nil {
			return nil, &apiError{Status: http.StatusBadRequest, Code: CodeBadSpec,
				Message: fmt.Sprintf("invalid specification: %v", err)}
		}
		return sp, nil
	}
	switch req.Model {
	case "settop":
		return models.SetTopBox(), nil
	case "decoder":
		return models.Decoder(), nil
	case "sdr":
		return models.SDR(), nil
	case "synthetic":
		return models.Synthetic(models.DefaultSynthetic(req.Seed)), nil
	default:
		return nil, errMalformed(fmt.Sprintf("unknown model %q (settop | decoder | sdr | synthetic)", req.Model))
	}
}

// jobFromRequest validates the budgets and builds the job template
// (unadmitted: no id, no state).
func (s *Server) jobFromRequest(req *Request, sp *spec.Spec) (*job, *apiError) {
	if req.Workers < 0 {
		return nil, errBudget(`"workers" must be >= 0 (0 selects the server default)`)
	}
	if req.Batch < 0 {
		return nil, errBudget(`"batch" must be >= 0 (0 selects adaptive sizing)`)
	}
	if req.Producers < 0 {
		return nil, errBudget(`"producers" must be >= 0 (0 selects the automatic producer count)`)
	}
	if req.MaxScan < 0 || req.MaxECS < 0 || req.MaxBindNodes < 0 {
		return nil, errBudget(`"maxScan", "maxEcs" and "maxBindNodes" must be >= 0`)
	}
	if req.DeadlineMs < 0 {
		return nil, errBudget(`"deadlineMs" must be >= 0 (0 selects the server default)`)
	}
	if req.CheckpointEvery < 0 {
		return nil, errBudget(`"checkpointEvery" must be >= 0 (0 selects 64)`)
	}
	if !core.ValidEnumerator(req.Enumerator) {
		return nil, errBudget(fmt.Sprintf(`unknown "enumerator" %q (auto | bitset | symbolic)`, req.Enumerator))
	}
	deadline := time.Duration(req.DeadlineMs) * time.Millisecond
	if deadline == 0 {
		deadline = s.cfg.MaxDeadline
	}
	if s.cfg.MaxDeadline > 0 && deadline > s.cfg.MaxDeadline {
		return nil, errBudget(fmt.Sprintf(`"deadlineMs" %d exceeds the server cap %d`,
			req.DeadlineMs, s.cfg.MaxDeadline.Milliseconds()))
	}

	var timing bind.TimingPolicy
	switch req.Timing {
	case "", "paper":
		timing = bind.TimingPaper
	case "rta":
		timing = bind.TimingRTA
	case "ll":
		timing = bind.TimingLiuLayland
	case "none":
		timing = bind.TimingNone
	default:
		return nil, errBudget(fmt.Sprintf(`unknown "timing" policy %q (paper | rta | ll | none)`, req.Timing))
	}

	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.defaultWorkers()
	}
	ckEvery := req.CheckpointEvery
	if ckEvery == 0 {
		ckEvery = 64
	}
	j := &job{
		spec:     sp,
		workers:  workers,
		ckEvery:  ckEvery,
		periodic: req.PeriodicCheckpoint,
		opts: core.Options{
			Timing:             timing,
			Weighted:           req.Weighted,
			StopAtMaxFlex:      req.StopAtMaxFlex,
			DisableFlexBound:   req.Exhaustive,
			IncludeUselessComm: req.Exhaustive,
			MaxScan:            req.MaxScan,
			MaxECS:             req.MaxECS,
			MaxBindNodes:       req.MaxBindNodes,
			Batch:              req.Batch,
			Producers:          req.Producers,
			Enumerator:         core.Enumerator(req.Enumerator),
		},
	}
	if deadline > 0 {
		j.deadline = time.Now().Add(deadline)
	}
	return j, nil
}
