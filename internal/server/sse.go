package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// handleEvents is GET /jobs/{id}/events: a Server-Sent Events stream of
// the job's progress. The stream opens with the job's current state,
// carries progress events at the job's checkpointEvery cadence while it
// runs, and closes after the terminal event. Slow consumers lose
// intermediate events (the fan-out never blocks the exploration), never
// the terminal one.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		(&apiError{Status: http.StatusInternalServerError, Code: "no-flush",
			Message: "response writer does not support streaming"}).writeTo(w)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	s.mu.Lock()
	first := j.eventLocked()
	terminal := j.state.Terminal()
	var subID int
	var ch chan ProgressEvent
	if !terminal {
		subID, ch = j.subscribeLocked()
	}
	s.mu.Unlock()

	writeEvent(w, "progress", first)
	fl.Flush()
	if terminal {
		return
	}
	defer func() {
		s.mu.Lock()
		delete(j.subs, subID)
		s.mu.Unlock()
	}()

	for {
		select {
		case ev := <-ch:
			writeEvent(w, "progress", ev)
			fl.Flush()
			if ev.State.Terminal() {
				return
			}
		case <-j.done:
			// Drain anything already queued, then emit the terminal
			// state read directly from the job.
			for {
				select {
				case ev := <-ch:
					writeEvent(w, "progress", ev)
				default:
					s.mu.Lock()
					last := j.eventLocked()
					s.mu.Unlock()
					writeEvent(w, "progress", last)
					fl.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame.
func writeEvent(w http.ResponseWriter, name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
}
