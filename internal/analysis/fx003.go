package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FX003 enforces Stats completeness: differential and resume tests
// compare exploration runs through Stats.Semantic(), so every field of
// core.Stats must be consciously classified — either zeroed by
// Semantic() (runtime telemetry: solver effort, cache counters,
// pipeline gauges) or listed in the package's statsSemanticFields
// allowlist (semantic counters that must match across cache modes,
// worker counts and resume splits). A new field that is neither breaks
// the build's vet step instead of silently corrupting the differential
// tests. Every field of Stats and of the named struct types reachable
// from it must also carry a json tag, because Stats rides in
// checkpoint snapshots and -json output.
var FX003 = &Analyzer{
	Name: "fx003",
	Code: "FX003",
	Doc: "check that every core.Stats field is zeroed by Semantic() or " +
		"allowlisted in statsSemanticFields, and carries a json tag",
	Run: runFX003,
}

func runFX003(pass *Pass) error {
	if !ScopedTo(pass.Pkg, "core") {
		return nil
	}
	statsObj := pass.Pkg.Scope().Lookup("Stats")
	if statsObj == nil {
		return nil // not the explorer core (e.g. an unrelated "core" package)
	}
	statsNamed, ok := statsObj.Type().(*types.Named)
	if !ok {
		return nil
	}
	statsStruct, ok := statsNamed.Underlying().(*types.Struct)
	if !ok {
		return nil
	}

	semantic := findMethodDecl(pass, "Stats", "Semantic")
	if semantic == nil {
		pass.Reportf(statsObj.Pos(), "FX003: core.Stats has no Semantic() method to normalize telemetry fields")
		return nil
	}
	zeroed := receiverFieldAssignments(pass, semantic)
	allow, allowPos := stringBoolMapLiteral(pass, "statsSemanticFields")
	if allow == nil {
		pass.Reportf(statsObj.Pos(), "FX003: package has no statsSemanticFields allowlist declaring which Stats fields Semantic() preserves")
		allow = map[string]bool{}
	}

	fields := map[string]bool{}
	for i := 0; i < statsStruct.NumFields(); i++ {
		f := statsStruct.Field(i)
		fields[f.Name()] = true
		switch {
		case zeroed[f.Name()] && allow[f.Name()]:
			pass.Reportf(f.Pos(), "FX003: Stats field %s is both zeroed by Semantic() and allowlisted in statsSemanticFields; pick one", f.Name())
		case !zeroed[f.Name()] && !allow[f.Name()]:
			pass.Reportf(f.Pos(), "FX003: Stats field %s is neither zeroed by Semantic() nor allowlisted in statsSemanticFields: classify it as telemetry or semantics", f.Name())
		}
	}
	for name := range allow {
		if !fields[name] {
			pass.Reportf(allowPos.Pos(), "FX003: statsSemanticFields entry %q names no Stats field", name)
		}
	}

	checkJSONTags(pass, statsNamed)
	return nil
}

// checkJSONTags requires a json tag on every field of the named struct
// and of every named struct in the same package reachable through its
// field types.
func checkJSONTags(pass *Pass, root *types.Named) {
	seen := map[*types.Named]bool{}
	var visit func(n *types.Named)
	visit = func(n *types.Named) {
		if n == nil || seen[n] || n.Obj().Pkg() != pass.Pkg {
			return
		}
		seen[n] = true
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			if !strings.Contains(st.Tag(i), `json:"`) {
				pass.Reportf(f.Pos(), "FX003: field %s.%s has no json tag; Stats rides in checkpoints and -json output", n.Obj().Name(), f.Name())
			}
			visit(namedStructOf(f.Type()))
		}
	}
	visit(root)
}

// namedStructOf unwraps slices, arrays, pointers and maps down to a
// named struct type, or nil.
func namedStructOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u
			}
			return nil
		default:
			return nil
		}
	}
}

// findMethodDecl locates the declaration of a method by receiver type
// name and method name.
func findMethodDecl(pass *Pass, recvType, method string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Name.Name != method || len(fn.Recv.List) != 1 {
				continue
			}
			t := fn.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recvType {
				return fn
			}
		}
	}
	return nil
}

// receiverFieldAssignments collects the receiver fields assigned in the
// method body (s.Field = ...).
func receiverFieldAssignments(pass *Pass, fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fn.Body == nil || len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return out
	}
	recv := pass.TypesInfo.ObjectOf(fn.Recv.List[0].Names[0])
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == recv {
				out[sel.Sel.Name] = true
			}
		}
		return true
	})
	return out
}

// stringBoolMapLiteral finds a package-level `var <name> = map[string]bool{...}`
// and returns its literal keys.
func stringBoolMapLiteral(pass *Pass, name string) (map[string]bool, ast.Node) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					out := map[string]bool{}
					for _, el := range cl.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if lit, ok := kv.Key.(*ast.BasicLit); ok {
							out[strings.Trim(lit.Value, `"`)] = true
						}
					}
					return out, cl
				}
			}
		}
	}
	return nil, nil
}
