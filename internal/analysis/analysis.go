// Package analysis is a dependency-free reimplementation of the core
// of golang.org/x/tools/go/analysis, carrying the flexvet analyzer
// suite (FX001–FX007) that mechanically enforces this repository's
// concurrency and determinism invariants:
//
//	FX001  pool-pairing        every sync.Pool.Get must be Put (or
//	                           ownership-transferred) on all paths
//	FX002  atomic-bound        the shared flexibility bound is touched
//	                           only through //flexvet:bound-helper funcs
//	FX003  stats-completeness  every core.Stats field is zeroed by
//	                           Semantic() or allowlisted, and JSON-tagged
//	FX004  digest-completeness every core.Options field enters the
//	                           checkpoint options digest or is excluded
//	FX005  context-poll        candidate loops in explorers poll ctx
//	FX006  determinism         no wall clock, unseeded randomness, or
//	                           map-iteration-order-dependent output
//	FX007  error-wrapping      fmt.Errorf wraps error operands with %w
//
// The x/tools module is deliberately not imported — the repository is
// dependency-free — so the Analyzer/Pass surface here mirrors the
// upstream API closely enough that the analyzers would port to the real
// framework by changing imports, while the drivers (cmd/flexvet, the
// analysistest harness, the go vet -vettool unit-checker protocol) are
// implemented against the standard library only.
//
// Diagnostics can be suppressed per line with a trailing or preceding
//
//	//flexvet:ignore FXnnn reason...
//
// comment naming the code being silenced; the reason is mandatory
// documentation for the next reader, not parsed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring the upstream
// go/analysis.Analyzer surface (Name, Doc, Run).
type Analyzer struct {
	// Name is the lowercase identifier (e.g. "fx001") used for flags
	// and result grouping.
	Name string
	// Code is the diagnostic code (e.g. "FX001") used in messages and
	// matched by //flexvet:ignore directives.
	Code string
	// Doc is the one-paragraph description shown by flexvet -help.
	Doc string
	// Run reports diagnostics for one type-checked package through
	// pass.Report.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic; nil falls back to collecting into
	// Diagnostics.
	Report func(Diagnostic)

	diagnostics []Diagnostic
	ignores     map[string]map[int][]string // file -> line -> codes
}

// Diagnostic is one finding, positioned in Fset.
type Diagnostic struct {
	Pos     token.Pos
	Code    string
	Message string
}

// Reportf reports a diagnostic at pos unless an ignore directive
// covers (file, line, code).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignored(position.Filename, position.Line, p.Analyzer.Code) {
		return
	}
	d := Diagnostic{Pos: pos, Code: p.Analyzer.Code, Message: fmt.Sprintf(format, args...)}
	if p.Report != nil {
		p.Report(d)
		return
	}
	p.diagnostics = append(p.diagnostics, d)
}

// Diagnostics returns the findings collected when no Report hook was
// installed, in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diagnostics, func(i, j int) bool {
		return p.diagnostics[i].Pos < p.diagnostics[j].Pos
	})
	return p.diagnostics
}

// ignored reports whether an //flexvet:ignore directive on the line or
// the line above names the code (or "all").
func (p *Pass) ignored(file string, line int, code string) bool {
	if p.ignores == nil {
		p.ignores = collectIgnores(p.Fset, p.Files)
	}
	for _, l := range []int{line, line - 1} {
		for _, c := range p.ignores[file][l] {
			if c == code || c == "all" {
				return true
			}
		}
	}
	return false
}

// collectIgnores scans every comment for ignore directives.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//flexvet:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int][]string{}
				}
				out[pos.Filename][pos.Line] = append(out[pos.Filename][pos.Line], fields[0])
			}
		}
	}
	return out
}

// HasDirective reports whether the function declaration's doc comment
// (or a comment in its body's first line) carries the given
// //flexvet:<name> marker.
func HasDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, "//flexvet:"+name) {
			return true
		}
	}
	return false
}

// PathBase returns the last segment of an import path.
func PathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ScopedTo reports whether the package's import path ends in one of the
// given segment names. Real packages match by their directory name
// (repro/internal/core → "core"); the analysistest fixtures mirror the
// same trailing segment (fx002/core → "core").
func ScopedTo(pkg *types.Package, segments ...string) bool {
	base := PathBase(pkg.Path())
	for _, s := range segments {
		if base == s {
			return true
		}
	}
	return false
}

// CalleeFunc resolves a call expression to the package-level function
// or method it invokes, or nil (builtin, function value, type
// conversion).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// ReceiverNamed returns the named type of a method's receiver
// (dereferencing a pointer receiver), or nil for package-level
// functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsNamedType reports whether t (after pointer indirection) is the
// named type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
