package analysis

import (
	"go/ast"
	"go/types"
)

// FX005 enforces context polling in the explorer hot paths, so that
// cancellation (SIGINT, deadline, anytime checkpointing) is observed
// promptly instead of only between top-level phases. Two shapes are
// checked inside packages named "core":
//
//   - enumeration callbacks: a function literal passed to an
//     Enumerate call must poll the context;
//   - channel-drain loops: a `for ... range ch` over a channel, in a
//     function that has a context in scope (parameter or receiver
//     field), must poll the context in its body.
//
// Polling may be delegated: calling a same-package function, method or
// local closure whose body polls (transitively) satisfies the check,
// which is how worker loops that do all their work in an evaluate
// method comply.
var FX005 = &Analyzer{
	Name: "fx005",
	Code: "FX005",
	Doc: "check that enumeration callbacks and channel-drain loops in the " +
		"explorer poll ctx.Err()/Done(), directly or via a callee that does",
	Run: runFX005,
}

func runFX005(pass *Pass) error {
	if !ScopedTo(pass.Pkg, "core") {
		return nil
	}
	c := newPollChecker(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !c.hasContextAccess(fn) {
				// A function with no context in scope cannot poll one;
				// cancellation of such paths is the caller's concern.
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					c.checkEnumerateCallback(call)
				}
				return true
			})
			c.checkChannelLoops(fn.Body)
		}
	}
	return nil
}

// pollChecker resolves "does this code poll the context" queries with
// delegation through same-package callees.
type pollChecker struct {
	pass     *Pass
	funcs    map[types.Object]*ast.FuncDecl // package functions and methods
	closures map[types.Object]*ast.FuncLit  // f := func(...) {...} bindings
	memo     map[types.Object]pollState
}

type pollState int

const (
	pollUnknown pollState = iota
	pollInProgress
	pollYes
	pollNo
)

func newPollChecker(pass *Pass) *pollChecker {
	c := &pollChecker{
		pass:     pass,
		funcs:    map[types.Object]*ast.FuncDecl{},
		closures: map[types.Object]*ast.FuncLit{},
		memo:     map[types.Object]pollState{},
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					if obj := pass.TypesInfo.Defs[n.Name]; obj != nil {
						c.funcs[obj] = n
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							c.closures[obj] = lit
						}
					}
				}
			}
			return true
		})
	}
	return c
}

// checkEnumerateCallback flags function literals handed to an
// Enumerate call that never poll the context.
func (c *pollChecker) checkEnumerateCallback(call *ast.CallExpr) {
	fn := CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Enumerate" {
		return
	}
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		if !c.polls(lit.Body, nil) {
			c.pass.Reportf(lit.Pos(), "FX005: enumeration callback never polls the context; check ctx.Err() so cancellation stops the scan promptly")
		}
	}
}

// checkChannelLoops flags range-over-channel loops whose bodies never
// poll the context.
func (c *pollChecker) checkChannelLoops(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are checked where they are used
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := c.pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return true
		}
		if !c.polls(rng.Body, nil) {
			c.pass.Reportf(rng.Pos(), "FX005: channel-drain loop never polls the context; a cancelled run would keep consuming jobs")
		}
		return true
	})
}

// hasContextAccess reports whether the function can reach a
// context.Context: a parameter of that type, or a receiver whose
// struct type carries a context field.
func (c *pollChecker) hasContextAccess(fn *ast.FuncDecl) bool {
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			if IsContextType(c.pass.TypesInfo.TypeOf(f.Type)) {
				return true
			}
		}
	}
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if named := namedStructOf(c.pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)); named != nil {
			st := named.Underlying().(*types.Struct)
			for i := 0; i < st.NumFields(); i++ {
				if IsContextType(st.Field(i).Type()) {
					return true
				}
			}
		}
	}
	return false
}

// polls reports whether the node contains a context poll, following
// calls into same-package functions, methods and local closures. seen
// guards against recursion.
func (c *pollChecker) polls(n ast.Node, seen map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := CalleeFunc(c.pass.TypesInfo, call)
		if fn != nil {
			if fn.Pkg() != nil && fn.Pkg().Path() == "context" && (fn.Name() == "Err" || fn.Name() == "Done") {
				found = true
				return false
			}
			if c.callablePolls(fn, seen) {
				found = true
				return false
			}
			return true
		}
		// Calls through local closure variables.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				if c.callablePolls(obj, seen) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// callablePolls answers the delegation query for one callee object,
// memoized across the package.
func (c *pollChecker) callablePolls(obj types.Object, seen map[types.Object]bool) bool {
	switch c.memo[obj] {
	case pollYes:
		return true
	case pollNo, pollInProgress:
		return false
	}
	if seen == nil {
		seen = map[types.Object]bool{}
	}
	if seen[obj] {
		return false
	}
	seen[obj] = true

	var body *ast.BlockStmt
	if decl, ok := c.funcs[obj]; ok {
		body = decl.Body
	} else if lit, ok := c.closures[obj]; ok {
		body = lit.Body
	}
	if body == nil {
		return false
	}
	c.memo[obj] = pollInProgress
	if c.polls(body, seen) {
		c.memo[obj] = pollYes
		return true
	}
	c.memo[obj] = pollNo
	return false
}
