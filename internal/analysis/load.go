package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// LoadPackages loads the packages matched by the go list patterns,
// type-checking them against compiler export data produced by the go
// command — fully offline, no dependency downloads. Test files are not
// included (the go vet driver feeds them separately per compilation
// unit).
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var roots []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly {
			roots = append(roots, e)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, root := range roots {
		if root.Incomplete || len(root.GoFiles) == 0 {
			continue
		}
		p, err := typeCheckDir(fset, imp, root)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// typeCheckDir parses and type-checks one package's non-test files.
func typeCheckDir(fset *token.FileSet, imp types.Importer, e listEntry) (*Package, error) {
	var files []*ast.File
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", e.ImportPath, err)
	}
	return &Package{
		ImportPath: e.ImportPath,
		Dir:        e.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// NewTypesInfo allocates a types.Info with every map the analyzers
// consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// RunAnalyzers applies every analyzer to the package and returns the
// findings in position order.
func RunAnalyzers(p *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, p.ImportPath, err)
		}
		out = append(out, pass.Diagnostics()...)
	}
	return out, nil
}
