package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FX006 enforces determinism in the packages whose outputs are
// compared across runs (core, alloc, checkpoint, faultinject):
// differential tests, resume digests and golden files all assume that
// the same problem explored twice produces byte-identical results.
// Three sources of nondeterminism are flagged:
//
//   - time.Now(): wall-clock values leak into results; telemetry
//     gauges that legitimately measure elapsed time carry a
//     //flexvet:ignore FX006 directive;
//   - unseeded randomness: package-level math/rand and math/rand/v2
//     functions share a process-global, randomly seeded source.
//     Constructing an explicit seeded generator (rand.New,
//     rand.NewSource, rand.NewPCG, rand.NewChaCha8) is allowed;
//   - map-order-dependent output: ranging over a map while appending
//     to a slice or printing/serializing makes output depend on Go's
//     randomized map iteration order. Collecting then sorting is the
//     sanctioned pattern — a sort call after the loop in the same
//     block clears the finding.
var FX006 = &Analyzer{
	Name: "fx006",
	Code: "FX006",
	Doc: "check for wall-clock reads, unseeded randomness and " +
		"map-iteration-order-dependent output in deterministic packages",
	Run: runFX006,
}

// fx006RandConstructors are the math/rand entry points that build an
// explicitly seeded generator and are therefore deterministic.
var fx006RandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runFX006(pass *Pass) error {
	if !ScopedTo(pass.Pkg, "core", "alloc", "checkpoint", "faultinject") {
		return nil
	}
	for _, file := range pass.Files {
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkClockAndRand(pass, n)
			case *ast.RangeStmt:
				checkMapRangeOrder(pass, parents, n)
			}
			return true
		})
	}
	return nil
}

func checkClockAndRand(pass *Pass, call *ast.CallExpr) {
	fn := CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods on *rand.Rand etc. are seeded-instance calls
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(), "FX006: time.Now in a deterministic package; results must not depend on the wall clock")
		}
	case "math/rand", "math/rand/v2":
		if !fx006RandConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "FX006: package-level %s.%s uses the process-global random source; construct a seeded *rand.Rand instead",
				PathBase(fn.Pkg().Path()), fn.Name())
		}
	}
}

// checkMapRangeOrder flags a range over a map whose body emits ordered
// output (append, fmt printing, builder/buffer writes) with no sort
// call after the loop in the enclosing statement list.
func checkMapRangeOrder(pass *Pass, parents map[ast.Node]ast.Node, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if !emitsOrderedOutput(pass, rng.Body) {
		return
	}
	if sortFollows(pass, parents, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "FX006: output built while ranging over a map depends on random iteration order; collect and sort (a sort after the loop in the same block is recognized)")
}

// emitsOrderedOutput reports whether the loop body appends to a slice,
// prints via fmt, or writes to a strings.Builder/bytes.Buffer — all
// operations whose result observes iteration order.
func emitsOrderedOutput(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "append" {
				found = true
				return false
			}
		}
		fn := CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") ||
			strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Sprint") ||
			strings.HasPrefix(fn.Name(), "Append")) {
			found = true
			return false
		}
		if recv := ReceiverNamed(fn); recv != nil && strings.HasPrefix(fn.Name(), "Write") {
			obj := recv.Obj()
			if obj.Pkg() != nil && ((obj.Pkg().Path() == "strings" && obj.Name() == "Builder") ||
				(obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer")) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortFollows reports whether a sort.* or slices.Sort* call appears
// after the range statement in its enclosing statement list.
func sortFollows(pass *Pass, parents map[ast.Node]ast.Node, rng *ast.RangeStmt) bool {
	// Find the statement list holding the loop (possibly via labeled
	// statements) and the loop's index in it.
	stmt := ast.Node(rng)
	for {
		p := parents[stmt]
		if _, ok := p.(*ast.LabeledStmt); ok {
			stmt = p
			continue
		}
		break
	}
	var list []ast.Stmt
	switch p := parents[stmt].(type) {
	case *ast.BlockStmt:
		list = p.List
	case *ast.CaseClause:
		list = p.Body
	case *ast.CommClause:
		list = p.Body
	default:
		return false
	}
	after := false
	for _, s := range list {
		if s == stmt {
			after = true
			continue
		}
		if !after {
			continue
		}
		sorted := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path == "sort" || (path == "slices" && strings.Contains(fn.Name(), "Sort")) {
				sorted = true
				return false
			}
			return true
		})
		if sorted {
			return true
		}
	}
	return false
}

// buildParents records each node's parent within the file.
func buildParents(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
