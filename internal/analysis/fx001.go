package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FX001 enforces sync.Pool Get/Put pairing: a value obtained from a
// pool's Get must, on every path that leaves its scope — returns,
// breaks, continues, and the end of the enclosing block — either have
// been handed back through the same pool's Put or have had its
// ownership transferred (passed to a call, returned, stored into a
// structure, sent on a channel, aliased).
//
// The check is block-dominance based: a release covers an exit only
// when the release's innermost enclosing block also encloses the exit
// and the release comes first. That is exact for the structured
// Get/Put code in internal/alloc and internal/core and conservative
// elsewhere; a justified exception is silenced with
// //flexvet:ignore FX001 <reason>.
var FX001 = &Analyzer{
	Name: "fx001",
	Code: "FX001",
	Doc: "check that every sync.Pool.Get has a Put or an ownership transfer " +
		"reachable on all paths, including early returns",
	Run: runFX001,
}

func runFX001(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Body != nil {
				checkPoolPairing(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// poolUse is one tracked Get: the pool it came from, the local variable
// holding the result, and where the Get happened.
type poolUse struct {
	pool    types.Object // the sync.Pool variable or field
	local   types.Object // variable bound to the Get result (nil = consumed inline)
	getPos  token.Pos
	declBlk *ast.BlockStmt // block the result variable lives in
}

// checkPoolPairing analyzes one function body (function literals are
// visited through the same parent map; a Get inside a literal is
// checked against the literal's own blocks).
func checkPoolPairing(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	var uses []*poolUse
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)

		if call, ok := n.(*ast.CallExpr); ok {
			if pool, method := poolCall(info, call); pool != nil && method == "Get" {
				u := &poolUse{pool: pool, getPos: call.Pos()}
				u.local, u.declBlk = getResultBinding(info, parents, call)
				uses = append(uses, u)
			}
		}
		return true
	})

	for _, u := range uses {
		if u.local == nil || u.declBlk == nil {
			// The Get result is consumed inline (passed on, returned,
			// or deliberately dropped) — ownership left immediately.
			continue
		}
		checkPoolUse(pass, parents, u)
	}
}

// poolCall resolves a call to a sync.Pool method, returning the pool's
// root object and the method name.
func poolCall(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	if named := ReceiverNamed(fn); named == nil || named.Obj().Name() != "Pool" {
		return nil, ""
	}
	return rootObject(info, sel.X), fn.Name()
}

// rootObject resolves the identity of a pool expression: a plain
// variable (`pool.Get()`) or a field chain (`p.pool.Get()`), keyed by
// the final object so Get and Put on the same pool match.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return rootObject(info, e.X)
		}
	}
	return nil
}

// getResultBinding finds the local variable a Get result is bound to:
// pool.Get() possibly behind a type assertion, on the RHS of a define
// or assign with a single ident LHS. Any other consumption counts as an
// immediate ownership transfer.
func getResultBinding(info *types.Info, parents map[ast.Node]ast.Node, call *ast.CallExpr) (types.Object, *ast.BlockStmt) {
	n := ast.Node(call)
	for {
		p := parents[n]
		switch pt := p.(type) {
		case *ast.TypeAssertExpr, *ast.ParenExpr:
			n = p
			continue
		case *ast.AssignStmt:
			if len(pt.Lhs) == 1 && len(pt.Rhs) == 1 && pt.Rhs[0] == n {
				if id, ok := pt.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					return info.ObjectOf(id), enclosingBlock(parents, p)
				}
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

func enclosingBlock(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for p := parents[n]; p != nil; p = parents[p] {
		if b, ok := p.(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// checkPoolUse verifies one tracked Get against every exit of its
// scope.
func checkPoolUse(pass *Pass, parents map[ast.Node]ast.Node, u *poolUse) {
	info := pass.TypesInfo

	// Releases: Put on the same pool (incl. deferred), or an ownership
	// transfer of the tracked variable. Exits: returns and loop
	// branches after the Get, plus the end of the declaring block.
	var releases []token.Pos
	type exit struct {
		pos  token.Pos
		desc string
	}
	var exits []exit

	ast.Inspect(u.declBlk, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pool, method := poolCall(info, n); pool == u.pool && method == "Put" {
				releases = append(releases, n.Pos())
			} else if escapesThrough(info, n, u.local) {
				releases = append(releases, n.Pos())
			}
		case *ast.SendStmt:
			if usesObject(info, n.Value, u.local) {
				releases = append(releases, n.Pos())
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if usesObject(info, el, u.local) {
					releases = append(releases, n.Pos())
				}
			}
		case *ast.AssignStmt:
			// Aliasing or storing the value counts as a transfer.
			for _, rhs := range n.Rhs {
				if usesObject(info, rhs, u.local) {
					releases = append(releases, n.Pos())
				}
			}
		case *ast.ReturnStmt:
			if n.Pos() > u.getPos {
				for _, r := range n.Results {
					if usesObject(info, r, u.local) {
						releases = append(releases, n.Pos())
					}
				}
				exits = append(exits, exit{pos: n.Pos(), desc: "return"})
			}
		case *ast.BranchStmt:
			if n.Pos() > u.getPos && (n.Tok == token.BREAK || n.Tok == token.CONTINUE) {
				exits = append(exits, exit{pos: n.Pos(), desc: n.Tok.String()})
			}
		case *ast.FuncLit:
			// A nested literal is a different scope: its returns do not
			// leave the declaring block, and a Get inside it is tracked
			// separately. Only descend when this Get lives inside it.
			return u.getPos >= n.Pos() && u.getPos < n.End()
		}
		return true
	})
	// Falling off the end of the block is an exit too, unless the
	// block's last statement is a return (already recorded above).
	if n := len(u.declBlk.List); n == 0 || !isReturn(u.declBlk.List[n-1]) {
		exits = append(exits, exit{pos: u.declBlk.End(), desc: "end of scope"})
	}

	// A release covers an exit when it comes after the Get, not after
	// the exit, and its innermost enclosing block also encloses the
	// exit — i.e. the exit cannot be reached around the release's
	// branch.
	dominated := func(e exit) bool {
		for _, r := range releases {
			if r < u.getPos || r > e.pos {
				continue
			}
			if lo, hi, ok := scopeExtentAt(u.declBlk, r); ok && e.pos >= lo && e.pos <= hi {
				return true
			}
		}
		return false
	}
	for _, e := range exits {
		if !dominated(e) {
			pass.Reportf(e.pos, "FX001: pooled %s obtained from %s.Get at %v leaks at this %s: no Put or ownership transfer on this path",
				u.local.Name(), u.pool.Name(), pass.Fset.Position(u.getPos), e.desc)
		}
	}
}

func isReturn(s ast.Stmt) bool {
	_, ok := s.(*ast.ReturnStmt)
	return ok
}

// scopeExtentAt returns the extent of the innermost block-like scope —
// a BlockStmt, or the body of a case/comm clause — within root that
// covers pos.
func scopeExtentAt(root *ast.BlockStmt, pos token.Pos) (lo, hi token.Pos, ok bool) {
	if pos < root.Pos() || pos > root.End() {
		return 0, 0, false
	}
	lo, hi = root.Pos(), root.End()
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if n.Pos() > pos || n.End() < pos {
			return false
		}
		switch n := n.(type) {
		case *ast.BlockStmt:
			lo, hi = n.Pos(), n.End()
		case *ast.CaseClause:
			if pos > n.Colon {
				lo, hi = n.Colon, n.End()
			}
		case *ast.CommClause:
			if pos > n.Colon {
				lo, hi = n.Colon, n.End()
			}
		}
		return true
	})
	return lo, hi, true
}

// escapesThrough reports whether the call passes the tracked variable
// as a direct argument (ownership transfer to the callee).
func escapesThrough(info *types.Info, call *ast.CallExpr, local types.Object) bool {
	for _, arg := range call.Args {
		if usesObject(info, arg, local) {
			return true
		}
	}
	return false
}

// usesObject reports whether the expression is exactly the tracked
// variable.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}
