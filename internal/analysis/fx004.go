package analysis

import (
	"go/ast"
	"go/types"
)

// FX004 enforces digest completeness: checkpoint resume refuses to mix
// runs with different semantics, and it decides by comparing
// OptionsDigest(core.Options). Every field of Options must therefore be
// consciously classified — either formatted into the digest or listed
// in the package's digestExcluded map (operational knobs like progress
// reporting and fault injection that do not change which allocations
// are explored). A new Options field that is neither makes vet fail
// instead of letting two semantically different runs share a
// checkpoint.
var FX004 = &Analyzer{
	Name: "fx004",
	Code: "FX004",
	Doc: "check that every core.Options field is consumed by the checkpoint " +
		"OptionsDigest or listed in digestExcluded",
	Run: runFX004,
}

func runFX004(pass *Pass) error {
	if !ScopedTo(pass.Pkg, "checkpoint") {
		return nil
	}
	fn := findFuncDecl(pass, "OptionsDigest")
	if fn == nil {
		return nil
	}
	optStruct, optName := digestParamStruct(pass, fn)
	if optStruct == nil {
		pass.Reportf(fn.Name.Pos(), "FX004: OptionsDigest does not take an Options struct parameter")
		return nil
	}

	consumed := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if recv := namedStructOf(s.Recv()); recv != nil && recv.Obj().Name() == optName {
				consumed[s.Obj().Name()] = true
			}
		}
		return true
	})

	excluded, exclPos := stringBoolMapLiteral(pass, "digestExcluded")
	if excluded == nil {
		pass.Reportf(fn.Name.Pos(), "FX004: package has no digestExcluded map declaring which Options fields the digest deliberately skips")
		excluded = map[string]bool{}
	}

	fields := map[string]bool{}
	for i := 0; i < optStruct.NumFields(); i++ {
		f := optStruct.Field(i)
		fields[f.Name()] = true
		switch {
		case consumed[f.Name()] && excluded[f.Name()]:
			pass.Reportf(fn.Name.Pos(), "FX004: Options field %s is digested but also listed in digestExcluded; drop one", f.Name())
		case !consumed[f.Name()] && !excluded[f.Name()]:
			pass.Reportf(fn.Name.Pos(), "FX004: Options field %s is neither consumed by OptionsDigest nor listed in digestExcluded: semantic fields must enter the digest", f.Name())
		}
	}
	if exclPos != nil {
		for name := range excluded {
			if !fields[name] {
				pass.Reportf(exclPos.Pos(), "FX004: digestExcluded entry %q names no Options field", name)
			}
		}
	}
	return nil
}

// digestParamStruct returns the struct type and type name of the
// function's Options parameter (a named struct whose name ends in
// "Options", by value or pointer).
func digestParamStruct(pass *Pass, fn *ast.FuncDecl) (*types.Struct, string) {
	if fn.Type.Params == nil {
		return nil, ""
	}
	for _, field := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if named := namedStructOf(t); named != nil && containsFold(named.Obj().Name(), "options") {
			return named.Underlying().(*types.Struct), named.Obj().Name()
		}
	}
	return nil, ""
}

// findFuncDecl locates a package-level function declaration by name.
func findFuncDecl(pass *Pass, name string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == name {
				return fn
			}
		}
	}
	return nil
}
