package analysis

// All returns the complete flexvet analyzer suite in code order.
func All() []*Analyzer {
	return []*Analyzer{FX001, FX002, FX003, FX004, FX005, FX006, FX007}
}
