package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestFX001(t *testing.T) { analysistest.Run(t, "testdata", analysis.FX001, "fx001") }
func TestFX002(t *testing.T) { analysistest.Run(t, "testdata", analysis.FX002, "fx002/core") }
func TestFX003(t *testing.T) { analysistest.Run(t, "testdata", analysis.FX003, "fx003/core") }
func TestFX004(t *testing.T) { analysistest.Run(t, "testdata", analysis.FX004, "fx004/checkpoint") }
func TestFX005(t *testing.T) { analysistest.Run(t, "testdata", analysis.FX005, "fx005/core") }
func TestFX006(t *testing.T) { analysistest.Run(t, "testdata", analysis.FX006, "fx006/core") }
func TestFX007(t *testing.T) { analysistest.Run(t, "testdata", analysis.FX007, "fx007") }

// TestRepoClean is the acceptance gate: the whole module must be free
// of FX findings (modulo documented //flexvet:ignore directives).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.LoadPackages("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, p := range pkgs {
		diags, err := analysis.RunAnalyzers(p, analysis.All())
		if err != nil {
			t.Fatalf("run analyzers on %s: %v", p.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s", p.Fset.Position(d.Pos), d.Message)
		}
	}
}
