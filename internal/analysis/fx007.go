package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// FX007 enforces error wrapping: a fmt.Errorf whose operand is an
// error must use %w for it, so errors.Is/errors.As keep working
// through the explorer's layered contexts (CLI → runner → core →
// alloc). Formatting an error with %v or %s severs the chain and makes
// sentinel checks (context.Canceled, fs.ErrNotExist, checkpoint
// mismatches) silently fail at outer layers. Go ≥1.20 permits several
// %w verbs in one format string, so there is no excuse to demote a
// second error operand to %v.
var FX007 = &Analyzer{
	Name: "fx007",
	Code: "FX007",
	Doc:  "check that fmt.Errorf wraps error operands with %w, not %v or %s",
	Run:  runFX007,
}

func runFX007(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := CalleeFunc(pass.TypesInfo, call)
			if !IsPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			verbs := formatVerbs(format)
			operands := call.Args[1:]
			for i, verb := range verbs {
				if i >= len(operands) {
					break
				}
				if verb == 'w' {
					continue
				}
				t := pass.TypesInfo.TypeOf(operands[i])
				if t == nil || t == types.Typ[types.UntypedNil] {
					continue
				}
				if types.AssignableTo(t, errType) {
					pass.Reportf(operands[i].Pos(), "FX007: error operand formatted with %%%c; use %%w so errors.Is/As see through the wrap", verb)
				}
			}
			return true
		})
	}
	return nil
}

// formatVerbs returns the verb characters consuming successive
// operands, in order. Width/precision stars consume an operand and are
// recorded as '*'; explicit argument indexes ("%[1]d") are not handled
// and stop the scan conservatively.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '[' {
				return verbs // explicit index: bail out conservatively
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
