// Fixtures for FX003 Stats completeness.
package core

// statsSemanticFields declares which Stats fields Semantic preserves.
var statsSemanticFields = map[string]bool{ // want `FX003: statsSemanticFields entry "Ghost" names no Stats field`
	"Scanned": true,
	"Dup":     true,
	"Ghost":   true,
}

type Stats struct {
	Scanned int `json:"scanned"`
	Cache   int `json:"cache"`
	Oops    int `json:"oops"` // want `FX003: Stats field Oops is neither zeroed by Semantic\(\) nor allowlisted`
	NoTag   int // want `FX003: field Stats.NoTag has no json tag`
	Dup     int `json:"dup"` // want `FX003: Stats field Dup is both zeroed by Semantic\(\) and allowlisted`
}

// Semantic zeroes the telemetry fields.
func (s Stats) Semantic() Stats {
	s.Cache = 0
	s.NoTag = 0
	s.Dup = 0
	return s
}
