// Fixtures for FX006 determinism.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// clock reads the wall clock in a deterministic package.
func clock() int64 {
	return time.Now().UnixNano() // want `FX006: time.Now in a deterministic package`
}

// gauge is telemetry and carries the documented escape hatch.
func gauge() int64 {
	//flexvet:ignore FX006 busy gauge: elapsed time is telemetry, not a result
	return time.Now().UnixNano()
}

// roll uses the process-global, randomly seeded source.
func roll() int {
	return rand.Intn(6) // want `FX006: package-level rand.Intn uses the process-global random source`
}

// seeded constructs an explicit deterministic generator: allowed, and
// its methods are unrestricted.
func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

// orderBad builds a slice in map iteration order with no sort.
func orderBad(m map[string]int) []string {
	var keys []string
	for k := range m { // want `FX006: output built while ranging over a map`
		keys = append(keys, k)
	}
	return keys
}

// orderGood sorts after collecting, the sanctioned pattern.
func orderGood(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printBad emits output in map iteration order.
func printBad(m map[string]int) {
	for k, v := range m { // want `FX006: output built while ranging over a map`
		fmt.Println(k, v)
	}
}

// copyMap writes into another map: order-independent, clean.
func copyMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sumMap aggregates commutatively: clean.
func sumMap(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
