// Fixtures for FX001 pool-pairing.
package fx001

import "sync"

var pool = sync.Pool{New: func() any { b := make([]int, 0, 16); return &b }}

// leakEarlyReturn: the early return bypasses the Put at the end.
func leakEarlyReturn(n int) {
	buf := pool.Get().(*[]int)
	if n > 0 {
		return // want `FX001: pooled buf .* leaks at this return`
	}
	pool.Put(buf)
}

// leakNoPut: no Put anywhere, leak reported at the return.
func leakNoPut() int {
	buf := pool.Get().(*[]int)
	*buf = (*buf)[:0]
	return len(*buf) // want `FX001: pooled buf .* leaks at this return`
}

// cleanDefer: a deferred Put covers every exit.
func cleanDefer(n int) int {
	buf := pool.Get().(*[]int)
	defer pool.Put(buf)
	if n > 0 {
		return 1
	}
	return 0
}

// cleanBothPaths: each path releases before leaving.
func cleanBothPaths(n int) {
	buf := pool.Get().(*[]int)
	if n > 0 {
		pool.Put(buf)
		return
	}
	pool.Put(buf)
}

// cleanTransferReturn: returning the value transfers ownership to the
// caller.
func cleanTransferReturn() *[]int {
	buf := pool.Get().(*[]int)
	return buf
}

// cleanTransferCall: handing the value to a callee transfers ownership.
func cleanTransferCall() {
	buf := pool.Get().(*[]int)
	sink(buf)
}

// cleanTransferSend: sending the value on a channel transfers
// ownership.
func cleanTransferSend(ch chan *[]int) {
	buf := pool.Get().(*[]int)
	ch <- buf
}

func sink(*[]int) {}
