// Fixtures for FX002 atomic-bound discipline.
package core

import (
	"math"
	"sync/atomic"
)

type pipeline struct {
	bound atomic.Uint64
	count atomic.Uint64
}

//flexvet:bound-helper
func (p *pipeline) loadBound() float64 { return math.Float64frombits(p.bound.Load()) }

//flexvet:bound-helper
func (p *pipeline) storeBound(f float64) { p.bound.Store(math.Float64bits(f)) }

// goodViaHelper publishes the bound only through the helpers.
func goodViaHelper(p *pipeline, f float64) float64 {
	if f > p.loadBound() {
		p.storeBound(f)
	}
	return p.loadBound()
}

// goodOtherAtomic: atomics that are not the bound stay unrestricted.
func goodOtherAtomic(p *pipeline) uint64 {
	return p.count.Load()
}

// badRawLoad bypasses the helper: both the bit conversion and the
// field access are flagged.
func badRawLoad(p *pipeline) float64 {
	return math.Float64frombits(p.bound.Load()) // want `FX002: raw math.Float64frombits` `FX002: direct access to atomic bound field`
}

// badRawStore bypasses the helper on the write side.
func badRawStore(p *pipeline, f float64) {
	p.bound.Store(math.Float64bits(f)) // want `FX002: raw math.Float64bits` `FX002: direct access to atomic bound field`
}
