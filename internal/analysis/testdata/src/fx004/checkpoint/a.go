// Fixtures for FX004 digest completeness.
package checkpoint

import (
	"fmt"

	"fx004/core"
)

// digestExcluded lists the Options fields the digest deliberately
// skips.
var digestExcluded = map[string]bool{ // want `FX004: digestExcluded entry "Phantom" names no Options field`
	"Progress": true,
	"Phantom":  true,
}

// OptionsDigest consumes Timing and Weighted but forgets Mystery.
func OptionsDigest(o core.Options) string { // want `FX004: Options field Mystery is neither consumed by OptionsDigest nor listed in digestExcluded`
	return fmt.Sprintf("%v|%v", o.Timing, o.Weighted)
}
