// Fixture dependency for FX004: the Options struct being digested.
package core

type Options struct {
	Timing   bool
	Weighted bool
	Progress bool
	Mystery  bool
}
