// Fixtures for FX007 error wrapping.
package fx007

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// wrapGood uses %w: errors.Is sees through it.
func wrapGood(err error) error {
	return fmt.Errorf("load: %w", err)
}

// wrapBad severs the chain with %v.
func wrapBad(err error) error {
	return fmt.Errorf("load: %v", err) // want `FX007: error operand formatted with %v`
}

// wrapSecond demotes the second error to %s; Go 1.20+ allows two %w.
func wrapSecond(e1, e2 error) error {
	return fmt.Errorf("apply: %w (rollback failed: %s)", e1, e2) // want `FX007: error operand formatted with %s`
}

// nonError operands formatted with %v are fine.
func nonError(n int) error {
	return fmt.Errorf("count %d: %v: %w", n, "detail", errBase)
}

// stringified error values are out of scope: the author made the
// conversion explicit.
func stringified(err error) error {
	return fmt.Errorf("load: %s", err.Error())
}
