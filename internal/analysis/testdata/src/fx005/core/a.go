// Fixtures for FX005 context polling.
package core

import "context"

// Enumerate stands in for the allocation enumerator the explorers
// drive.
func Enumerate(n int, fn func(int) bool) {
	for i := 0; i < n; i++ {
		if !fn(i) {
			return
		}
	}
}

// scanBad: the enumeration callback never observes cancellation.
func scanBad(ctx context.Context, n int) int {
	seen := 0
	Enumerate(n, func(c int) bool { // want `FX005: enumeration callback never polls the context`
		seen += c
		return true
	})
	return seen
}

// scanGood polls ctx.Err directly in the callback.
func scanGood(ctx context.Context, n int) int {
	seen := 0
	Enumerate(n, func(c int) bool {
		if ctx.Err() != nil {
			return false
		}
		seen += c
		return true
	})
	return seen
}

type worker struct {
	ctx  context.Context
	jobs chan int
	done int
}

// drainBad consumes jobs forever, even after cancellation.
func (w *worker) drainBad() {
	for j := range w.jobs { // want `FX005: channel-drain loop never polls the context`
		w.done += j
	}
}

// drainGood polls in the loop body.
func (w *worker) drainGood() {
	for j := range w.jobs {
		if w.ctx.Err() != nil {
			return
		}
		w.done += j
	}
}

// drainDelegated polls through the evaluate method it calls.
func (w *worker) drainDelegated() {
	for j := range w.jobs {
		w.evaluate(j)
	}
}

func (w *worker) evaluate(j int) {
	if w.ctx.Err() != nil {
		return
	}
	w.done += j
}

// drainClosure polls through a local closure.
func (w *worker) drainClosure() {
	poll := func() bool { return w.ctx.Err() == nil }
	for j := range w.jobs {
		if !poll() {
			return
		}
		w.done += j
	}
}
