// Package analysistest runs flexvet analyzers over small fixture
// packages under testdata/src and checks the reported diagnostics
// against `// want "regexp"` comments in the fixtures — a
// dependency-free analogue of x/tools' go/analysis/analysistest.
//
// Fixture packages import each other by their path relative to
// testdata/src (e.g. `import "fx004/core"`); standard-library imports
// are resolved through the toolchain's compiler export data, so the
// fixtures can use sync, context, fmt and friends without vendoring
// anything.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each pattern — a directory under <testdata>/src holding
// one package — and checks the analyzer's diagnostics against the
// package's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	ld := newLoader(src)
	for _, pattern := range patterns {
		pkg, err := ld.load(pattern)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", pattern, err)
		}
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("analysistest: run %s on %s: %v", a.Name, pattern, err)
		}
		check(t, pattern, ld.fset, pkg.Files, diags)
	}
}

// loader parses and type-checks fixture packages, resolving fixture
// imports from testdata/src and everything else from compiler export
// data.
type loader struct {
	src  string
	fset *token.FileSet
	pkgs map[string]*analysis.Package
	std  types.Importer
}

func newLoader(src string) *loader {
	l := &loader{
		src:  src,
		fset: token.NewFileSet(),
		pkgs: map[string]*analysis.Package{},
	}
	l.std = importer.ForCompiler(l.fset, "gc", lookupStdExport)
	return l
}

// lookupStdExport asks the go command for a package's export data; the
// build cache makes this an offline, local operation.
func lookupStdExport(path string) (io.ReadCloser, error) {
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		return nil, fmt.Errorf("analysistest: go list -export %s: %w", path, err)
	}
	file := strings.TrimSpace(string(out))
	if file == "" {
		return nil, fmt.Errorf("analysistest: no export data for %q", path)
	}
	return os.Open(file)
}

// Import implements types.Importer over both namespaces.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(l.src, path)); err == nil && fi.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	p := &analysis.Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}
	l.pkgs[path] = p
	return p, nil
}

// expectation is one `// want` regexp awaiting a diagnostic on its
// line.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check pairs diagnostics with want comments one-to-one per line.
func check(t *testing.T, pattern string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				rest = strings.TrimSpace(rest)
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want comment: %q", key, rest)
						break
					}
					lit, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: malformed want pattern %s: %v", key, q, err)
						break
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, lit, err)
						break
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: lit})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, e := range wants[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: %s: unexpected diagnostic: %s", pattern, pos, d.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: %s: no diagnostic matched want %q", pattern, key, e.raw)
			}
		}
	}
}
