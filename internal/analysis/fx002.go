package analysis

import (
	"go/ast"
	"go/types"
)

// FX002 enforces the atomic-bound discipline of the parallel explorer:
// the shared flexibility bound travels through an atomic.Uint64 as
// math.Float64bits, and only the designated helpers — function
// declarations annotated //flexvet:bound-helper — may perform the raw
// bit conversion or touch the bound field. Everything else must call
// the helpers, so the publication protocol (commit stage writes,
// workers read, second-chance re-check at commit) stays in one place.
//
// Concretely, inside packages named "core" the analyzer flags, outside
// annotated helpers:
//
//   - any call of math.Float64bits or math.Float64frombits;
//   - any selector of a struct field of type sync/atomic.Uint64 whose
//     name contains "bound".
var FX002 = &Analyzer{
	Name: "fx002",
	Code: "FX002",
	Doc: "check that the shared flexibility bound is loaded and stored only " +
		"through the annotated //flexvet:bound-helper functions",
	Run: runFX002,
}

func runFX002(pass *Pass) error {
	if !ScopedTo(pass.Pkg, "core") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || HasDirective(fn, "bound-helper") {
				continue
			}
			checkBoundDiscipline(pass, fn)
		}
	}
	return nil
}

func checkBoundDiscipline(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := CalleeFunc(info, n)
			if IsPkgFunc(callee, "math", "Float64bits") || IsPkgFunc(callee, "math", "Float64frombits") {
				pass.Reportf(n.Pos(), "FX002: raw math.%s outside a //flexvet:bound-helper function; publish the flexibility bound through the designated helper",
					callee.Name())
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				field := sel.Obj()
				if isBoundField(field) {
					pass.Reportf(n.Pos(), "FX002: direct access to atomic bound field %q outside a //flexvet:bound-helper function",
						field.Name())
				}
			}
		}
		return true
	})
}

// isBoundField reports whether the object is a struct field of type
// sync/atomic.Uint64 whose name names the bound.
func isBoundField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	return containsFold(v.Name(), "bound") && IsNamedType(v.Type(), "sync/atomic", "Uint64")
}

// containsFold is a case-insensitive strings.Contains for ASCII names.
func containsFold(s, sub string) bool {
	lower := func(b byte) byte {
		if b >= 'A' && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
	n, m := len(s), len(sub)
	for i := 0; i+m <= n; i++ {
		match := true
		for j := 0; j < m; j++ {
			if lower(s[i+j]) != lower(sub[j]) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
