// Package dot renders hierarchical graphs and specification graphs in
// Graphviz DOT format (clusters as nested subgraph boxes, interfaces as
// double octagons, mapping edges as dotted lines, exactly the visual
// vocabulary of the paper's Figs. 1, 2, 3 and 5), and emits
// flexibility/cost trade-off curves as TSV series for plotting (Fig. 4).
package dot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hgraph"
	"repro/internal/spec"
)

// Hierarchical renders a hierarchical graph as DOT. Every cluster
// becomes a subgraph box, interfaces are drawn as double octagons, and
// a dashed edge links each interface to its alternative refinement
// clusters.
func Hierarchical(g *hgraph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  compound=true;\n  rankdir=TB;\n")
	writeCluster(&b, g.Root, "  ")
	// Edges last, collected globally (DOT allows cross-subgraph edges).
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e.From, e.To, edgeAttrs(e))
	}
	b.WriteString("}\n")
	return b.String()
}

func edgeAttrs(e *hgraph.Edge) string {
	var labels []string
	if e.FromPort != "" {
		labels = append(labels, "tail="+e.FromPort)
	}
	if e.ToPort != "" {
		labels = append(labels, "head="+e.ToPort)
	}
	if len(labels) == 0 {
		return ""
	}
	return fmt.Sprintf(" [label=%q]", strings.Join(labels, ","))
}

func writeCluster(b *strings.Builder, c *hgraph.Cluster, indent string) {
	fmt.Fprintf(b, "%ssubgraph \"cluster_%s\" {\n", indent, c.ID)
	fmt.Fprintf(b, "%s  label=%q;\n", indent, c.Name)
	for _, v := range c.Vertices {
		fmt.Fprintf(b, "%s  %q [shape=ellipse];\n", indent, v.ID)
	}
	for _, i := range c.Interfaces {
		fmt.Fprintf(b, "%s  %q [shape=doubleoctagon];\n", indent, i.ID)
		for _, sub := range i.Clusters {
			writeCluster(b, sub, indent+"  ")
		}
	}
	fmt.Fprintf(b, "%s}\n", indent)
	// Interface-to-cluster refinement links (outside the subgraph so
	// they do not force layout containment).
	for _, i := range c.Interfaces {
		for _, sub := range i.Clusters {
			if len(sub.Vertices) > 0 {
				fmt.Fprintf(b, "%s%q -> %q [style=dashed, arrowhead=none, lhead=\"cluster_%s\"];\n",
					indent, i.ID, sub.Vertices[0].ID, sub.ID)
			}
		}
	}
}

// Specification renders a full specification graph: the problem graph
// and architecture graph side by side with dotted mapping edges between
// their leaves, annotated with execution latencies — the layout of the
// paper's Fig. 2/Fig. 5.
func Specification(s *spec.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", s.Name)
	b.WriteString("  compound=true;\n  rankdir=LR;\n")
	b.WriteString("  subgraph cluster_problem {\n    label=\"problem graph\";\n")
	writeCluster(&b, s.Problem.Root, "    ")
	for _, e := range s.Problem.Edges() {
		fmt.Fprintf(&b, "    %q -> %q;\n", e.From, e.To)
	}
	b.WriteString("  }\n")
	b.WriteString("  subgraph cluster_arch {\n    label=\"architecture graph\";\n")
	writeCluster(&b, s.Arch.Root, "    ")
	for _, e := range s.Arch.Edges() {
		fmt.Fprintf(&b, "    %q -> %q [dir=none];\n", e.From, e.To)
	}
	b.WriteString("  }\n")
	ms := append([]*spec.Mapping(nil), s.Mappings...)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Process != ms[j].Process {
			return ms[i].Process < ms[j].Process
		}
		return ms[i].Resource < ms[j].Resource
	})
	for _, m := range ms {
		fmt.Fprintf(&b, "  %q -> %q [style=dotted, label=\"%g\"];\n", m.Process, m.Resource, m.Latency)
	}
	b.WriteString("}\n")
	return b.String()
}

// TradeoffPoint is one design point of a flexibility/cost curve.
type TradeoffPoint struct {
	Cost        float64
	Flexibility float64
	Label       string
}

// TradeoffTSV emits a Fig. 4-style series: cost, flexibility,
// 1/flexibility and a label per line, TSV, with a header. Points are
// sorted by cost.
func TradeoffTSV(points []TradeoffPoint) string {
	ps := append([]TradeoffPoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Cost < ps[j].Cost })
	var b strings.Builder
	b.WriteString("cost\tflexibility\tinv_flexibility\tlabel\n")
	for _, p := range ps {
		inv := "inf"
		if p.Flexibility > 0 {
			inv = fmt.Sprintf("%g", 1/p.Flexibility)
		}
		fmt.Fprintf(&b, "%g\t%g\t%s\t%s\n", p.Cost, p.Flexibility, inv, p.Label)
	}
	return b.String()
}

// TimelinePoint is one phase of a timed activation for plotting.
type TimelinePoint struct {
	Start         float64
	Behaviour     string
	Configuration string
}

// TimelineTSV emits a timed activation as a TSV series (start time,
// behaviour, architecture configuration), sorted by start — the
// plottable form of the adaptive-system schedules packages activation
// and sim produce.
func TimelineTSV(points []TimelinePoint) string {
	ps := append([]TimelinePoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	var b strings.Builder
	b.WriteString("start\tbehaviour\tconfiguration\n")
	for _, p := range ps {
		fmt.Fprintf(&b, "%g\t%s\t%s\n", p.Start, p.Behaviour, p.Configuration)
	}
	return b.String()
}
