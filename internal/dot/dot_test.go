package dot

import (
	"strings"
	"testing"

	"repro/internal/models"
)

func TestHierarchicalContainsStructure(t *testing.T) {
	g := models.SetTopProblem()
	out := Hierarchical(g)
	for _, want := range []string{
		"digraph \"settop-problem\"",
		"subgraph \"cluster_gD\"",
		"subgraph \"cluster_gG1\"",
		"\"IApp\" [shape=doubleoctagon]",
		"\"PCI\" [shape=ellipse]",
		"style=dashed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output lacks %q", want)
		}
	}
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
}

func TestHierarchicalDeterministic(t *testing.T) {
	g := models.SetTopProblem()
	if Hierarchical(g) != Hierarchical(g) {
		t.Error("output not deterministic")
	}
}

func TestSpecificationContainsMappings(t *testing.T) {
	s := models.Decoder()
	out := Specification(s)
	for _, want := range []string{
		"cluster_problem",
		"cluster_arch",
		`"PU1" -> "uP" [style=dotted, label="40"]`,
		`"PU1" -> "A" [style=dotted, label="15"]`,
		"subgraph \"cluster_dD3\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("spec DOT lacks %q", want)
		}
	}
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
}

func TestTradeoffTSV(t *testing.T) {
	out := TradeoffTSV([]TradeoffPoint{
		{Cost: 230, Flexibility: 4, Label: "x"},
		{Cost: 100, Flexibility: 2, Label: "uP2"},
		{Cost: 50, Flexibility: 0, Label: "infeasible"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header + 3", len(lines))
	}
	if lines[0] != "cost\tflexibility\tinv_flexibility\tlabel" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "50\t0\tinf") {
		t.Errorf("rows not sorted by cost or inf missing: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "100\t2\t0.5") {
		t.Errorf("row = %q", lines[2])
	}
}

func BenchmarkSpecificationDOT(b *testing.B) {
	s := models.SetTopBox()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Specification(s)
	}
}

func TestTimelineTSV(t *testing.T) {
	out := TimelineTSV([]TimelinePoint{
		{Start: 100, Behaviour: "game", Configuration: "FPGA=G1"},
		{Start: 0, Behaviour: "tv", Configuration: "FPGA=D3"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || lines[0] != "start\tbehaviour\tconfiguration" {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "0\ttv") || !strings.HasPrefix(lines[2], "100\tgame") {
		t.Errorf("rows unsorted:\n%s", out)
	}
}
