package alloc

import (
	"math/big"
	"sort"

	"repro/internal/boolfunc"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// EnumerateSymbolic is Enumerate driven by the symbolic characteristic
// function instead of the exhaustive subset scan: the possible-set BDD
// (conjoined with the useless-bus rule unless IncludeUselessComm) is
// walked by boolfunc's cost-ordered enumeration, which visits only
// subset-tree nodes whose subtree still contains a possible allocation.
// The emitted Candidate stream — order, costs, allocations — is
// bit-identical to Enumerate's, so the two producers are
// interchangeable mid-stream; only the effort statistics differ (see
// EnumerateSymbolicRange).
func EnumerateSymbolic(s *spec.Spec, opts Options, fn func(Candidate) bool) Stats {
	return EnumerateSymbolicRange(s, opts, 0, fn)
}

// EnumerateSymbolicRange is EnumerateRange's symbolic twin: the same
// possible-candidate stream and range addressing (the first start
// possible candidates are skipped without materializing their
// allocation maps), produced by pruned search instead of a 2^n scan.
//
// Statistics differ from the bitset scan where they measure effort
// rather than the stream: Scanned counts BDD search nodes visited
// (MaxScan bounds that count — an enumerator-specific effort budget,
// not a stream position), and PrunedComm is always 0 because
// useless-bus subsets are never generated in the first place — the rule
// is conjoined into the characteristic function. Possible and
// SearchSpace match the bitset scan exactly.
func EnumerateSymbolicRange(s *spec.Spec, opts Options, start int, fn func(Candidate) bool) Stats {
	m, f, units := Symbolic(s)
	n := len(units)
	stats := Stats{SearchSpace: SearchSpace(n)}
	if !opts.IncludeUselessComm {
		f = m.Apply(boolfunc.And, f, commConstraint(s, m, units))
	}
	costs := make([]float64, n)
	for i, u := range units {
		costs[i] = u.Cost
	}
	e := m.NewCostEnum(f, costs)
	e.MaxVisits = opts.MaxScan
	for {
		idx, cost, ok := e.Next()
		if !ok {
			break
		}
		stats.Possible++
		if stats.Possible <= start {
			// Before the range: counted, never materialized.
			continue
		}
		a := make(spec.Allocation, len(idx))
		for _, k := range idx {
			a[units[k].ID] = true
		}
		if !fn(Candidate{Allocation: a, Cost: cost}) {
			break
		}
	}
	stats.Scanned = e.Visited()
	return stats
}

// commConstraint encodes the useless-bus rule as a BDD: every allocated
// bus unit must connect at least two allocated functional units — the
// same adjacency and threshold the bitset scan tests per subset with
// hasUselessComm, here conjoined once into the characteristic function.
func commConstraint(s *spec.Spec, m *boolfunc.Manager, units []Unit) *boolfunc.Node {
	pos := make(map[hgraph.ID]int, len(units))
	for k, u := range units {
		pos[u.ID] = k
	}
	adj := commAdjacency(s, units)
	out := m.True()
	for k, u := range units {
		if !u.Comm {
			continue
		}
		var neigh []int
		for other := range adj[u.ID] {
			neigh = append(neigh, pos[other])
		}
		sort.Ints(neigh)
		// at-least-two as the usual one/two accumulation chain.
		one, two := m.False(), m.False()
		for _, j := range neigh {
			x := m.Var(j)
			two = m.Apply(boolfunc.Or, two, m.Apply(boolfunc.And, one, x))
			one = m.Apply(boolfunc.Or, one, x)
		}
		out = m.Apply(boolfunc.And, out, m.Apply(boolfunc.Or, m.NotVar(k), two))
	}
	return out
}

// CountPossibleBig returns the exact number of possible resource
// allocations as a big integer — exact at any unit count, where the
// float64 CountPossible rounds beyond 2^53.
func CountPossibleBig(s *spec.Spec) *big.Int {
	m, f, _ := Symbolic(s)
	return m.SatCountBig(f)
}
