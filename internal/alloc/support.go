package alloc

import (
	"repro/internal/bitset"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// Supporter answers SupportableClusters queries over dense bitsets. It
// precomputes, once per specification, the per-cluster reachability
// structure that the map-based SupportableClusters rebuilds on every
// candidate: for each problem cluster the resource sets its vertices
// can map onto, and the cluster tree in index space. A candidate
// evaluation then costs two bitset allocations and word-parallel
// intersection tests instead of several maps — the dominant
// per-candidate allocation cost of the EXPLORE estimation step.
//
// A Supporter is immutable after New and safe for concurrent use.
type Supporter struct {
	s *spec.Spec
	// Clusters indexes the problem-graph clusters; Supportable results
	// are bitsets over it.
	Clusters *bitset.Indexer[hgraph.ID]
	// Resources indexes the architecture-graph leaves; AvailOf results
	// are bitsets over it.
	Resources *bitset.Indexer[hgraph.ID]

	// provides maps every architecture leaf and cluster ID to the leaf
	// resources it contributes when allocated.
	provides map[hgraph.ID]bitset.Set
	// nodes holds per problem cluster (by index) the vertex needs and
	// child clusters.
	nodes []supportNode
	root  int
}

type supportNode struct {
	cluster *hgraph.Cluster
	// vertexNeeds has one resource set per own vertex: the resources a
	// mapping edge can reach. A vertex with no mappings has an empty
	// set, which never intersects an allocation.
	vertexNeeds []bitset.Set
	// ifaces lists, per interface of the cluster, the child cluster
	// indices.
	ifaces [][]int
}

// NewSupporter builds the reachability structure for a specification.
func NewSupporter(s *spec.Spec) *Supporter {
	var clusterIDs []hgraph.ID
	for _, c := range s.Problem.Clusters() {
		clusterIDs = append(clusterIDs, c.ID)
	}
	var resIDs []hgraph.ID
	for _, v := range s.Arch.Leaves() {
		resIDs = append(resIDs, v.ID)
	}
	sp := &Supporter{
		s:         s,
		Clusters:  bitset.NewIndexer(clusterIDs),
		Resources: bitset.NewIndexer(resIDs),
		provides:  map[hgraph.ID]bitset.Set{},
		nodes:     make([]supportNode, len(clusterIDs)),
	}
	for _, v := range s.Arch.Leaves() {
		sp.provides[v.ID] = sp.Resources.SetOf(v.ID)
	}
	for _, c := range s.Arch.Clusters() {
		set := bitset.New(sp.Resources.Len())
		for _, lv := range s.Arch.LeavesOf(c) {
			if i, ok := sp.Resources.Index(lv.ID); ok {
				set.Add(i)
			}
		}
		sp.provides[c.ID] = set
	}
	for _, c := range s.Problem.Clusters() {
		i, _ := sp.Clusters.Index(c.ID)
		n := supportNode{cluster: c}
		for _, v := range c.Vertices {
			need := bitset.New(sp.Resources.Len())
			for _, m := range s.MappingsFor(v.ID) {
				if ri, ok := sp.Resources.Index(m.Resource); ok {
					need.Add(ri)
				}
			}
			n.vertexNeeds = append(n.vertexNeeds, need)
		}
		for _, iface := range c.Interfaces {
			var subs []int
			for _, sub := range iface.Clusters {
				if si, ok := sp.Clusters.Index(sub.ID); ok {
					subs = append(subs, si)
				}
			}
			n.ifaces = append(n.ifaces, subs)
		}
		sp.nodes[i] = n
	}
	sp.root, _ = sp.Clusters.Index(s.Problem.Root.ID)
	return sp
}

// AvailOf returns the allocation's resource closure as a bitset over
// Resources — Allocation.ResourceSet without the maps.
func (sp *Supporter) AvailOf(a spec.Allocation) bitset.Set {
	avail := bitset.New(sp.Resources.Len())
	for id := range a {
		if set, ok := sp.provides[id]; ok {
			avail.UnionWith(set)
		}
	}
	return avail
}

// Supportable returns the problem clusters that remain activatable when
// the architecture is restricted to the given resource closure — the
// bitset counterpart of SupportableClusters, with identical semantics:
// a cluster is supportable iff each of its own vertices reaches the
// closure through a mapping edge and each of its interfaces has at
// least one supportable cluster; the result marks only clusters whose
// whole ancestor chain is supportable.
func (sp *Supporter) Supportable(avail bitset.Set) bitset.Set {
	memo := make([]int8, len(sp.nodes))
	out := bitset.New(len(sp.nodes))
	var mark func(i int)
	mark = func(i int) {
		if !sp.supportableFrom(i, avail, memo) {
			return
		}
		out.Add(i)
		for _, subs := range sp.nodes[i].ifaces {
			for _, si := range subs {
				mark(si)
			}
		}
	}
	mark(sp.root)
	return out
}

// supportableFrom reports whether the cluster at index i is supportable
// under the resource closure avail. memo holds one entry per cluster
// (0 unknown, 1 yes, 2 no) and must be zeroed between closures; callers
// that test many closures (the enumeration's possibility check) reuse
// one slice instead of allocating per candidate. Testing only the root
// — rule 4's possibility criterion — skips the marking pass that
// Supportable adds on top.
func (sp *Supporter) supportableFrom(i int, avail bitset.Set, memo []int8) bool {
	if memo[i] != 0 {
		return memo[i] == 1
	}
	n := &sp.nodes[i]
	res := true
	for _, need := range n.vertexNeeds {
		if !need.Intersects(avail) {
			res = false
			break
		}
	}
	if res {
		for _, subs := range n.ifaces {
			any := false
			for _, si := range subs {
				if sp.supportableFrom(si, avail, memo) {
					any = true
				}
			}
			if !any {
				res = false
				break
			}
		}
	}
	if res {
		memo[i] = 1
	} else {
		memo[i] = 2
	}
	return res
}

// SupportableOf is AvailOf followed by Supportable.
func (sp *Supporter) SupportableOf(a spec.Allocation) bitset.Set {
	return sp.Supportable(sp.AvailOf(a))
}
