package alloc

import (
	"testing"

	"repro/internal/spec"
)

func TestEnumerateExtensionsBaseFirst(t *testing.T) {
	s := buildFig2(t)
	base := spec.NewAllocation("uP")
	var first *Candidate
	n := 0
	EnumerateExtensions(s, base, Options{}, func(c Candidate) bool {
		if first == nil {
			cl := Candidate{Allocation: c.Allocation.Clone(), Cost: c.Cost}
			first = &cl
		}
		if !base.Subset(c.Allocation) {
			t.Errorf("extension %v drops the base", c.Allocation)
		}
		n++
		return true
	})
	if first == nil || !first.Allocation.Equal(base) || first.Cost != 50 {
		t.Errorf("first extension = %v, want the base itself at 50", first)
	}
	if n < 2 {
		t.Errorf("extensions = %d, want several", n)
	}
}

func TestEnumerateExtensionsCostOrderAndPruning(t *testing.T) {
	s := buildFig2(t)
	base := spec.NewAllocation("uP")
	prev := -1.0
	seen := map[string]bool{}
	stats := EnumerateExtensions(s, base, Options{}, func(c Candidate) bool {
		if c.Cost < prev {
			t.Errorf("cost order violated: %v after %v", c.Cost, prev)
		}
		prev = c.Cost
		if got := c.Allocation.Cost(s); got != c.Cost {
			t.Errorf("cost mismatch for %v: %v vs %v", c.Allocation, c.Cost, got)
		}
		seen[c.Allocation.String()] = true
		return true
	})
	if seen["{C1 uP}"] {
		t.Error("useless bus extension should be pruned")
	}
	if !seen["{C1 dD3 uP}"] {
		t.Error("useful bus extension missing")
	}
	if stats.PrunedComm == 0 {
		t.Error("pruning counter should be non-zero")
	}
}

func TestEnumerateExtensionsImpossibleBase(t *testing.T) {
	s := buildFig2(t)
	// Base without the processor: the base itself is impossible, but
	// extensions adding uP become possible.
	base := spec.NewAllocation("A", "C2")
	var cands []string
	EnumerateExtensions(s, base, Options{}, func(c Candidate) bool {
		cands = append(cands, c.Allocation.String())
		return true
	})
	if len(cands) == 0 {
		t.Fatal("extensions adding uP must appear")
	}
	if cands[0] != "{A C2 uP}" {
		t.Errorf("first possible extension = %s, want {A C2 uP}", cands[0])
	}
}

func TestEnumerateExtensionsMaxScanAndEarlyStop(t *testing.T) {
	s := buildFig2(t)
	stats := EnumerateExtensions(s, spec.NewAllocation("uP"), Options{MaxScan: 3}, func(Candidate) bool { return true })
	if stats.Scanned > 3 {
		t.Errorf("MaxScan exceeded: %d", stats.Scanned)
	}
	n := 0
	EnumerateExtensions(s, spec.NewAllocation("uP"), Options{}, func(Candidate) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop yielded %d", n)
	}
}

func TestEnumerateExtensionsFullBase(t *testing.T) {
	s := buildFig2(t)
	full := spec.NewAllocation("uP", "A", "C1", "C2", "dD3", "dU2")
	n := 0
	EnumerateExtensions(s, full, Options{IncludeUselessComm: true}, func(c Candidate) bool {
		if !c.Allocation.Equal(full) {
			t.Errorf("unexpected extension %v of the full base", c.Allocation)
		}
		n++
		return true
	})
	if n != 1 {
		t.Errorf("full base should yield exactly itself, got %d", n)
	}
}
