package alloc

import (
	"container/heap"

	"repro/internal/spec"
)

// EnumerateExtensions generates possible resource allocations that are
// supersets of base, in nondecreasing total cost, and passes each to fn
// until fn returns false. It supports incremental platform design: the
// deployed allocation is never shrunk, only extended. base itself is
// the first candidate when it is possible.
func EnumerateExtensions(s *spec.Spec, base spec.Allocation, opts Options, fn func(Candidate) bool) Stats {
	all := Units(s)
	var units []Unit
	baseCost := 0.0
	for _, u := range all {
		if base[u.ID] {
			baseCost += u.Cost
		} else {
			units = append(units, u)
		}
	}
	stats := Stats{SearchSpace: SearchSpace(len(units))}
	commAdj := commAdjacency(s, all)

	emit := func(extra []int, cost float64) bool {
		a := base.Clone()
		for _, k := range extra {
			a[units[k].ID] = true
		}
		stats.Scanned++
		if !opts.IncludeUselessComm {
			idx := make([]int, 0, len(a))
			for i, u := range all {
				if a[u.ID] {
					idx = append(idx, i)
				}
			}
			if hasUselessComm(all, idx, a, commAdj) {
				stats.PrunedComm++
				return true
			}
		}
		if !Possible(s, a) {
			return true
		}
		stats.Possible++
		return fn(Candidate{Allocation: a, Cost: cost})
	}

	if !emit(nil, baseCost) {
		return stats
	}
	h := &subsetHeap{}
	heap.Init(h)
	if len(units) > 0 {
		heap.Push(h, &subset{cost: units[0].Cost, idx: []int{0}})
	}
	for h.Len() > 0 {
		if opts.MaxScan > 0 && stats.Scanned >= opts.MaxScan {
			break
		}
		cur := heap.Pop(h).(*subset)
		m := cur.idx[len(cur.idx)-1]
		if m+1 < len(units) {
			ext := append(append([]int(nil), cur.idx...), m+1)
			heap.Push(h, &subset{cost: cur.cost + units[m+1].Cost, idx: ext})
			rep := append([]int(nil), cur.idx...)
			rep[len(rep)-1] = m + 1
			heap.Push(h, &subset{cost: cur.cost - units[m].Cost + units[m+1].Cost, idx: rep})
		}
		if !emit(cur.idx, baseCost+cur.cost) {
			break
		}
	}
	return stats
}
