package alloc

import (
	"sync"
	"time"

	"repro/internal/boolfunc"
	"repro/internal/spec"
)

// EnumerateSymbolicSharded is EnumerateSymbolic with candidate
// production split across producers goroutines, merged back into the
// bit-identical single-producer stream (see sharded.go for the shard
// addressing and the merge-determinism argument).
func EnumerateSymbolicSharded(s *spec.Spec, opts Options, producers int, fn func(Candidate) bool) Stats {
	return EnumerateSymbolicShardedRange(s, opts, producers, 0, fn)
}

// EnumerateSymbolicShardedRange is EnumerateSymbolicRange across
// producers sharded BDD walkers. The characteristic function is built
// once; the walk only reads the Manager (cofactor and memoized
// satisfiability probes, no node construction), so all walkers share
// the one BDD with per-shard scratch. Lane addressing, the sentinel
// protocol, and the merge are the exact machinery of the bitset
// sharded scan — lane k of the BDD walk prunes to the same possible
// subsets in the same order — so the merged stream, range cursor
// included, is bit-identical to the single symbolic producer (and
// hence to the bitset scan). Scanned sums the per-shard visit counts
// plus the central empty-allocation check; MaxScan splits into
// per-shard visit budgets like the bitset scan's pop budgets.
func EnumerateSymbolicShardedRange(s *spec.Spec, opts Options, producers, start int, fn func(Candidate) bool) Stats {
	m, f, units := Symbolic(s)
	n := len(units)
	p := producers
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	stats := Stats{SearchSpace: SearchSpace(n), Producers: p}
	if !opts.IncludeUselessComm {
		f = m.Apply(boolfunc.And, f, commConstraint(s, m, units))
	}
	costs := make([]float64, n)
	for i, u := range units {
		costs[i] = u.Cost
	}

	wchans := make([]chan laneRec, p)
	for i := range wchans {
		wchans[i] = make(chan laneRec, walkerChanBuf)
	}
	done := make(chan struct{})
	budgets := shardBudgets(opts.MaxScan, p)
	walkers := make([]shardWalker, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			symbolicShardWalk(&walkers[w], m, f, costs, n, w, p, budgets[w], wchans[w], done)
		}(w)
	}

	// The empty allocation is checked centrally, mirroring the single
	// producer's initial all-false visit.
	stats.Scanned++
	stop := false
	if m.Eval(f, make([]bool, n)) {
		stats.Possible++
		if stats.Possible > start && !fn(Candidate{Allocation: spec.Allocation{}, Cost: 0}) {
			stop = true
		}
	}
	if !stop && n > 0 {
		mergeLanes(units, p, &stats, start, fn, wchans)
	}
	close(done)
	wg.Wait()
	for i := range walkers {
		stats.Scanned += walkers[i].scanned
		stats.ProducerBusyNanos += walkers[i].busy
	}
	return stats
}

// symbolicShardWalk runs one symbolic producer: lane sentinels first
// (a pruned walk may never pop an unsatisfiable root, but the merge
// needs every lane's root record to gate activation), then the
// shard-scoped cost-ordered BDD walk.
func symbolicShardWalk(w *shardWalker, m *boolfunc.Manager, f *boolfunc.Node, costs []float64, n, shard, p, budget int, out chan<- laneRec, done <-chan struct{}) {
	defer close(out)
	started := time.Now() //flexvet:ignore FX006 -- wall-clock producer-busy gauge, telemetry only
	var sendWait time.Duration
	defer func() {
		w.busy = int64(time.Since(started) - sendWait)
	}()
	send := func(rec laneRec) bool {
		select {
		case out <- rec:
			return true
		default:
		}
		t0 := time.Now() //flexvet:ignore FX006 -- blocked-send accounting for the busy gauge
		select {
		case out <- rec:
			sendWait += time.Since(t0)
			return true
		case <-done:
			return false
		}
	}
	if budget == 0 {
		// No per-shard visit budget at all: like a bitset walker with a
		// zero pop budget, produce nothing (closing the stream closes
		// every owned lane).
		return
	}
	var roots []int
	for k := shard; k < n; k += p {
		roots = append(roots, k)
	}
	if len(roots) == 0 {
		return
	}
	e := m.NewCostEnumShard(f, costs, roots)
	if budget > 0 {
		e.MaxVisits = budget
	}
	defer func() {
		w.scanned = e.Visited()
	}()
	assignment := make([]bool, n)
	for _, k := range roots {
		assignment[k] = true
		possible := m.Eval(f, assignment)
		assignment[k] = false
		if !send(laneRec{lane: k, sentinel: true, possible: possible, cost: costs[k], idx: []int{k}}) {
			return
		}
	}
	for {
		idx, cost, ok := e.Next()
		if !ok {
			return
		}
		if len(idx) > 1 {
			rec := laneRec{lane: idx[0], possible: true, cost: cost, idx: append([]int(nil), idx...)}
			if !send(rec) {
				return
			}
		}
		for _, l := range e.TakeDrained() {
			if !send(laneRec{lane: l, laneClose: true}) {
				return
			}
		}
	}
}
