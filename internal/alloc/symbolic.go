package alloc

import (
	"math/big"

	"repro/internal/boolfunc"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// Symbolic builds the paper's "one boolean equation" for the set of
// possible resource allocations as a BDD over the allocatable units
// (variable i ↔ Units(s)[i] allocated): an allocation is possible iff
// the problem root is supportable, where a cluster is supportable iff
// each of its vertices has a mapping edge into some allocated unit and
// each of its interfaces has a supportable cluster.
//
// The returned function characterizes the whole possible-allocation set
// without enumerating the 2^n subsets; combine with SatCount for its
// exact size and with MinCostSat for the cheapest possible allocation.
func Symbolic(s *spec.Spec) (*boolfunc.Manager, *boolfunc.Node, []Unit) {
	units := Units(s)
	m := boolfunc.NewManager(len(units))

	// Map each reachable resource to the variable of its unit.
	varOf := map[hgraph.ID]int{}
	for i, u := range units {
		for _, r := range u.Resources {
			varOf[r] = i
		}
	}

	memo := map[hgraph.ID]*boolfunc.Node{}
	var supportable func(c *hgraph.Cluster) *boolfunc.Node
	supportable = func(c *hgraph.Cluster) *boolfunc.Node {
		if n, ok := memo[c.ID]; ok {
			return n
		}
		n := m.True()
		for _, v := range c.Vertices {
			reach := m.False()
			for _, mp := range s.MappingsFor(v.ID) {
				if idx, ok := varOf[mp.Resource]; ok {
					reach = m.Apply(boolfunc.Or, reach, m.Var(idx))
				}
			}
			n = m.Apply(boolfunc.And, n, reach)
		}
		for _, i := range c.Interfaces {
			any := m.False()
			for _, sub := range i.Clusters {
				any = m.Apply(boolfunc.Or, any, supportable(sub))
			}
			n = m.Apply(boolfunc.And, n, any)
		}
		memo[c.ID] = n
		return n
	}
	return m, supportable(s.Problem.Root), units
}

// CountPossible returns the number of possible resource allocations
// (unit subsets) by symbolic model counting — no subset is ever
// enumerated. The count is computed exactly (SatCountBig) and then
// rounded into a float64, which is lossless below 2^53; callers that
// may exceed 53 units should use CountPossibleBig directly.
func CountPossible(s *spec.Spec) float64 {
	f, _ := new(big.Float).SetInt(CountPossibleBig(s)).Float64()
	return f
}

// CheapestPossible returns the minimum-cost possible resource
// allocation and its cost via a single BDD walk. ok is false when no
// possible allocation exists.
func CheapestPossible(s *spec.Spec) (a spec.Allocation, cost float64, ok bool) {
	m, f, units := Symbolic(s)
	costs := make([]float64, len(units))
	for i, u := range units {
		costs[i] = u.Cost
	}
	asg, cost, ok := m.MinCostSat(f, costs)
	if !ok {
		return nil, 0, false
	}
	a = spec.Allocation{}
	for i, on := range asg {
		if on {
			a[units[i].ID] = true
		}
	}
	return a, cost, true
}
