package alloc

import (
	"math/big"
	"testing"

	"repro/internal/models"
	"repro/internal/spec"
)

// collect drains an enumerator into a comparable candidate list.
func collect(enum func(*spec.Spec, Options, int, func(Candidate) bool) Stats, s *spec.Spec, opts Options, start int) ([]Candidate, Stats) {
	var out []Candidate
	stats := enum(s, opts, start, func(c Candidate) bool {
		out = append(out, Candidate{Allocation: c.Allocation.Clone(), Cost: c.Cost})
		return true
	})
	return out, stats
}

// sameCandidates fails unless the two streams are bit-identical:
// same length, same order, same costs, same allocations.
func sameCandidates(t *testing.T, label string, bit, sym []Candidate) {
	t.Helper()
	if len(bit) != len(sym) {
		t.Fatalf("%s: bitset emitted %d candidates, symbolic %d", label, len(bit), len(sym))
	}
	for i := range bit {
		if bit[i].Cost != sym[i].Cost || !bit[i].Allocation.Equal(sym[i].Allocation) {
			t.Fatalf("%s: candidate %d differs: bitset %v ($%v), symbolic %v ($%v)",
				label, i, bit[i].Allocation, bit[i].Cost, sym[i].Allocation, sym[i].Cost)
		}
	}
}

// TestSymbolicStreamMatchesBitset is the producer-level differential
// test: on every spec the scan can still reach, the symbolic producer
// emits the bit-identical candidate stream, with both useless-bus
// settings, while visiting no more nodes than the scan scans.
func TestSymbolicStreamMatchesBitset(t *testing.T) {
	specs := map[string]*spec.Spec{
		"fig2":   buildFig2(t),
		"settop": models.SetTopBox(),
		"synth": models.Synthetic(models.SyntheticParams{
			Seed: 5, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
			Processors: 2, ASICs: 2, Designs: 2, Buses: 3,
			TimedFraction: 0.3, AccelOnlyFraction: 0.3,
		}),
	}
	for name, s := range specs {
		for _, include := range []bool{false, true} {
			label := name
			if include {
				label += "+uselesscomm"
			}
			opts := Options{IncludeUselessComm: include}
			bit, bitStats := collect(EnumerateRange, s, opts, 0)
			sym, symStats := collect(EnumerateSymbolicRange, s, opts, 0)
			sameCandidates(t, label, bit, sym)
			if bitStats.Possible != symStats.Possible {
				t.Errorf("%s: Possible = %d (bitset) vs %d (symbolic)", label, bitStats.Possible, symStats.Possible)
			}
			if bitStats.SearchSpace != symStats.SearchSpace {
				t.Errorf("%s: SearchSpace differs", label)
			}
			if symStats.Scanned > bitStats.Scanned {
				t.Errorf("%s: symbolic visited %d nodes, more than the %d subsets the scan needed",
					label, symStats.Scanned, bitStats.Scanned)
			}
			if symStats.PrunedComm != 0 {
				t.Errorf("%s: symbolic PrunedComm = %d, want 0 (rule is in the BDD)", label, symStats.PrunedComm)
			}
		}
	}
}

// TestSymbolicRangeSuffix checks the range contract: starting the
// symbolic producer at cursor k yields exactly the bitset stream's
// suffix from k.
func TestSymbolicRangeSuffix(t *testing.T) {
	s := models.SetTopBox()
	full, _ := collect(EnumerateRange, s, Options{}, 0)
	for _, start := range []int{1, 7, 100, len(full) - 1, len(full), len(full) + 5} {
		sym, stats := collect(EnumerateSymbolicRange, s, Options{}, start)
		wantLen := len(full) - start
		if wantLen < 0 {
			wantLen = 0
		}
		if len(sym) != wantLen {
			t.Fatalf("start %d: got %d candidates, want %d", start, len(sym), wantLen)
		}
		sameCandidates(t, "suffix", full[len(full)-wantLen:], sym)
		if stats.Possible != len(full) {
			t.Errorf("start %d: Possible = %d, want %d (skipped candidates still counted)", start, stats.Possible, len(full))
		}
	}
}

// TestSymbolicEarlyStop: returning false from the callback stops the
// producer mid-stream, as with the scan.
func TestSymbolicEarlyStop(t *testing.T) {
	s := models.SetTopBox()
	n := 0
	EnumerateSymbolic(s, Options{}, func(Candidate) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("callback ran %d times, want 5", n)
	}
}

// TestSymbolicMaxScanBudget: MaxScan bounds symbolic visits the way it
// bounds scanned subsets — a budget in the producer's own unit.
func TestSymbolicMaxScanBudget(t *testing.T) {
	s := models.SetTopBox()
	_, unbounded := collect(EnumerateSymbolicRange, s, Options{}, 0)
	budget := unbounded.Scanned / 2
	got, stats := collect(EnumerateSymbolicRange, s, Options{MaxScan: budget}, 0)
	if stats.Scanned > budget {
		t.Errorf("Scanned = %d, exceeds MaxScan %d", stats.Scanned, budget)
	}
	if len(got) == 0 || len(got) >= unbounded.Possible {
		t.Errorf("budgeted run emitted %d of %d candidates, want a proper prefix", len(got), unbounded.Possible)
	}
	// The budgeted emission is a prefix of the unbounded stream.
	full, _ := collect(EnumerateSymbolicRange, s, Options{}, 0)
	sameCandidates(t, "budget-prefix", full[:len(got)], got)
}

// TestSymbolicVisitBounds pins the tentpole's acceptance numbers: the
// symbolic producer's visit counter stays far below the 2^n subsets
// the bitset scan would pop to reach the same stream position.
//
//   - Case study (14 units): the full enumeration — all possible
//     allocations, not a prefix — visits no more than the 2^14 = 16384
//     subsets the scan is pinned to (measured: 4702 with useless buses
//     pruned, 12800 with them included).
//   - Scaled synthetic (30 units): a 4096-candidate cost-ordered prefix
//     visits at least 10x fewer nodes than the 2^30 subsets the scan
//     would have to pop before it could emit anything past the prefix.
func TestSymbolicVisitBounds(t *testing.T) {
	settop := models.SetTopBox()
	for _, include := range []bool{false, true} {
		_, st := collect(EnumerateSymbolicRange, settop, Options{IncludeUselessComm: include}, 0)
		if st.Scanned > 1<<14 {
			t.Errorf("settop(include=%v): visited %d nodes, want <= %d", include, st.Scanned, 1<<14)
		}
	}

	scaled := models.Synthetic(models.ScaledSynthetic(1, 30))
	if n := len(Units(scaled)); n != 30 {
		t.Fatalf("scaled spec has %d units, want 30", n)
	}
	emitted := 0
	st := EnumerateSymbolic(scaled, Options{}, func(Candidate) bool {
		emitted++
		return emitted < 4096
	})
	if emitted != 4096 {
		t.Fatalf("emitted %d candidates, want 4096 (the spec must admit at least that many)", emitted)
	}
	if limit := (1 << 30) / 10; st.Scanned >= limit {
		t.Errorf("30-unit prefix visited %d nodes, want < %d (10x below 2^30)", st.Scanned, limit)
	}
	t.Logf("30-unit 4096-candidate prefix: visited %d BDD nodes (2^30 = %d)", st.Scanned, 1<<30)
}

// TestCountPossibleBig: the big count matches the float64 one on small
// universes and stays exact on universes past float64 integer range.
func TestCountPossibleBig(t *testing.T) {
	for name, s := range map[string]*spec.Spec{"fig2": buildFig2(t), "settop": models.SetTopBox()} {
		want := int64(CountPossible(s))
		if got := CountPossibleBig(s); got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("%s: CountPossibleBig = %v, want %d", name, got, want)
		}
	}
}
