package alloc

import (
	"testing"
	"testing/quick"

	"repro/internal/hgraph"
	"repro/internal/spec"
)

// buildFig2 mirrors the Fig. 2-style decoder specification used across
// the library's tests: processor uP, ASIC A, buses C1 (uP↔FPGA) and C2
// (uP↔A), and an FPGA interface with designs dD3 and dU2.
func buildFig2(t testing.TB) *spec.Spec {
	t.Helper()
	pb := hgraph.NewBuilder("problem", "ptop")
	r := pb.Root()
	r.Vertex("PA").Vertex("PC")
	ifD := r.Interface("IfD", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	ifD.Cluster("gD1").Vertex("PD1").Bind("in", "PD1").Bind("out", "PD1")
	ifD.Cluster("gD2").Vertex("PD2").Bind("in", "PD2").Bind("out", "PD2")
	ifD.Cluster("gD3").Vertex("PD3").Bind("in", "PD3").Bind("out", "PD3")
	ifU := r.Interface("IfU", hgraph.Port{Name: "in"}, hgraph.Port{Name: "out", Dir: hgraph.Out})
	ifU.Cluster("gU1").Vertex("PU1").Bind("in", "PU1").Bind("out", "PU1")
	ifU.Cluster("gU2").Vertex("PU2").Bind("in", "PU2").Bind("out", "PU2")
	r.PortEdge("PC", "", "IfD", "in")
	r.PortEdge("IfD", "out", "IfU", "in")
	problem := pb.MustBuild()

	ab := hgraph.NewBuilder("arch", "atop")
	ar := ab.Root()
	ar.Vertex("uP", spec.AttrCost, 50)
	ar.Vertex("A", spec.AttrCost, 100)
	ar.Vertex("C1", spec.AttrCost, 5, spec.AttrComm, 1)
	ar.Vertex("C2", spec.AttrCost, 5, spec.AttrComm, 1)
	fpga := ar.Interface("FPGA", hgraph.Port{Name: "bus"})
	fpga.Cluster("dD3").Vertex("D3", spec.AttrCost, 20).Bind("bus", "D3")
	fpga.Cluster("dU2").Vertex("U2", spec.AttrCost, 20).Bind("bus", "U2")
	ar.Edge("uP", "C1")
	ar.PortEdge("C1", "", "FPGA", "bus")
	ar.Edge("uP", "C2")
	ar.Edge("C2", "A")
	arch := ab.MustBuild()

	return spec.MustNew("fig2", problem, arch, []*spec.Mapping{
		{Process: "PA", Resource: "uP", Latency: 55},
		{Process: "PC", Resource: "uP", Latency: 10},
		{Process: "PD1", Resource: "uP", Latency: 85},
		{Process: "PD1", Resource: "A", Latency: 25},
		{Process: "PD2", Resource: "A", Latency: 35},
		{Process: "PD3", Resource: "D3", Latency: 63},
		{Process: "PU1", Resource: "uP", Latency: 40},
		{Process: "PU1", Resource: "A", Latency: 15},
		{Process: "PU2", Resource: "A", Latency: 29},
		{Process: "PU2", Resource: "U2", Latency: 59},
	})
}

func TestUnits(t *testing.T) {
	s := buildFig2(t)
	us := Units(s)
	wantIDs := []hgraph.ID{"C1", "C2", "dD3", "dU2", "uP", "A"}
	wantCosts := []float64{5, 5, 20, 20, 50, 100}
	if len(us) != len(wantIDs) {
		t.Fatalf("got %d units, want %d", len(us), len(wantIDs))
	}
	for i := range us {
		if us[i].ID != wantIDs[i] || us[i].Cost != wantCosts[i] {
			t.Errorf("unit %d = %s/%v, want %s/%v", i, us[i].ID, us[i].Cost, wantIDs[i], wantCosts[i])
		}
	}
	if !us[0].Comm || us[4].Comm {
		t.Error("Comm flags wrong")
	}
	if len(us[2].Resources) != 1 || us[2].Resources[0] != "D3" {
		t.Errorf("dD3 resources = %v, want [D3]", us[2].Resources)
	}
}

func TestSupportableClusters(t *testing.T) {
	s := buildFig2(t)
	set := SupportableClusters(s, spec.NewAllocation("uP"))
	for _, id := range []hgraph.ID{"ptop", "gD1", "gU1"} {
		if !set[id] {
			t.Errorf("%s should be supportable under {uP}", id)
		}
	}
	for _, id := range []hgraph.ID{"gD2", "gD3", "gU2"} {
		if set[id] {
			t.Errorf("%s must not be supportable under {uP}", id)
		}
	}
	// Without a processor for PA/PC nothing is supportable from the root.
	set2 := SupportableClusters(s, spec.NewAllocation("A"))
	if set2["ptop"] {
		t.Error("root must not be supportable without uP")
	}
	// Full allocation supports everything.
	set3 := SupportableClusters(s, spec.NewAllocation("uP", "A", "dD3", "dU2", "C1", "C2"))
	if len(set3) != 6 {
		t.Errorf("full allocation supports %d clusters, want 6 (root + 3 decryption + 2 uncompression)", len(set3))
	}
}

func TestPossible(t *testing.T) {
	s := buildFig2(t)
	if !Possible(s, spec.NewAllocation("uP")) {
		t.Error("{uP} is a possible resource allocation (decoder via gD1,gU1)")
	}
	if Possible(s, spec.NewAllocation("A", "C2")) {
		t.Error("allocation without uP cannot host PA/PC")
	}
	if Possible(s, spec.Allocation{}) {
		t.Error("empty allocation cannot be possible")
	}
}

// TestEnumerateFig2Supersets reproduces the shape of the paper's Fig. 2
// possible-allocation set: with useless buses kept, A is exactly the
// upward closure of {μP} — all 32 subsets containing μP — and begins
// with μP itself.
func TestEnumerateFig2Supersets(t *testing.T) {
	s := buildFig2(t)
	var first *Candidate
	n := 0
	stats := Enumerate(s, Options{IncludeUselessComm: true}, func(c Candidate) bool {
		if first == nil {
			cl := Candidate{Allocation: c.Allocation.Clone(), Cost: c.Cost}
			first = &cl
		}
		if !c.Allocation["uP"] {
			t.Errorf("possible allocation %v lacks uP", c.Allocation)
		}
		n++
		return true
	})
	if n != 32 {
		t.Errorf("possible allocations = %d, want 2^5 = 32", n)
	}
	if first == nil || first.Allocation.String() != "{uP}" || first.Cost != 50 {
		t.Errorf("first candidate = %v, want {uP} at 50", first)
	}
	if stats.Scanned != 64 {
		t.Errorf("scanned = %d, want 64 (full space)", stats.Scanned)
	}
	if stats.SearchSpace != 64 {
		t.Errorf("SearchSpace = %v, want 64", stats.SearchSpace)
	}
}

func TestEnumerateUselessCommPruning(t *testing.T) {
	s := buildFig2(t)
	seen := map[string]bool{}
	Enumerate(s, Options{}, func(c Candidate) bool {
		seen[c.Allocation.String()] = true
		return true
	})
	// C1 without any FPGA design is useless; C2 without A is useless.
	if seen["{C1 uP}"] {
		t.Error("{C1 uP} should be pruned (bus connects only one unit)")
	}
	if seen["{C2 uP}"] {
		t.Error("{C2 uP} should be pruned")
	}
	if !seen["{C1 dD3 uP}"] {
		t.Error("{C1 dD3 uP} should survive")
	}
	if !seen["{A C2 uP}"] {
		t.Error("{A C2 uP} should survive")
	}
	// 21 subsets of the uP-closure satisfy both bus constraints.
	if len(seen) != 21 {
		t.Errorf("possible+useful allocations = %d, want 21", len(seen))
	}
}

func TestEnumerateCostOrder(t *testing.T) {
	s := buildFig2(t)
	prev := -1.0
	Enumerate(s, Options{IncludeUselessComm: true}, func(c Candidate) bool {
		if c.Cost < prev {
			t.Errorf("cost order violated: %v after %v", c.Cost, prev)
		}
		prev = c.Cost
		if got := c.Allocation.Cost(s); got != c.Cost {
			t.Errorf("reported cost %v != computed %v for %v", c.Cost, got, c.Allocation)
		}
		return true
	})
}

func TestEnumerateEarlyStopAndMaxScan(t *testing.T) {
	s := buildFig2(t)
	n := 0
	Enumerate(s, Options{}, func(Candidate) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop yielded %d, want 1", n)
	}
	stats := Enumerate(s, Options{MaxScan: 10}, func(Candidate) bool { return true })
	if stats.Scanned > 10 {
		t.Errorf("MaxScan exceeded: %d", stats.Scanned)
	}
}

func TestAll(t *testing.T) {
	s := buildFig2(t)
	cands, stats := All(s, Options{IncludeUselessComm: true})
	if len(cands) != 32 || stats.Possible != 32 {
		t.Errorf("All = %d candidates (stats %d), want 32", len(cands), stats.Possible)
	}
	// Materialized allocations are independent copies.
	cands[0].Allocation["X"] = true
	if cands[1].Allocation["X"] {
		t.Error("allocations share storage")
	}
}

// Property: the heap-based subset enumeration generates every subset of
// the unit set exactly once and in nondecreasing cost order.
func TestPropSubsetEnumeration(t *testing.T) {
	s := buildFig2(t)
	prop := func(_ int64) bool {
		seen := map[string]int{}
		prev := -1.0
		ok := true
		Enumerate(s, Options{IncludeUselessComm: true}, func(c Candidate) bool {
			seen[c.Allocation.String()]++
			if c.Cost < prev {
				ok = false
			}
			prev = c.Cost
			return true
		})
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return ok && len(seen) == 32
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3}); err != nil {
		t.Error(err)
	}
}

// Property: every yielded allocation is possible, and supersets of a
// possible allocation are possible too (upward closure).
func TestPropPossibleUpwardClosed(t *testing.T) {
	s := buildFig2(t)
	units := Units(s)
	prop := func(seed int64) bool {
		a := spec.Allocation{}
		bits := seed
		for _, u := range units {
			if bits&1 == 1 {
				a[u.ID] = true
			}
			bits >>= 1
		}
		if !Possible(s, a) {
			return true
		}
		// add any one missing unit: still possible
		for _, u := range units {
			if !a[u.ID] {
				b := a.Clone()
				b[u.ID] = true
				if !Possible(s, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEnumerate(b *testing.B) {
	s := buildFig2(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Enumerate(s, Options{}, func(Candidate) bool { return true })
	}
}

func BenchmarkPossible(b *testing.B) {
	s := buildFig2(b)
	a := spec.NewAllocation("uP", "A", "C1", "C2", "dD3")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Possible(s, a) {
			b.Fatal("should be possible")
		}
	}
}

// TestEnumerateAgainstBruteForce: the bitset-native possibility and
// useless-bus tests inside Enumerate agree with the exported map-based
// references (Possible, hasUselessComm) on every one of the 2^n unit
// subsets of the Fig. 2 model, with and without the bus pruning — the
// two code paths may never drift apart.
func TestEnumerateAgainstBruteForce(t *testing.T) {
	s := buildFig2(t)
	units := Units(s)
	adj := commAdjacency(s, units)
	for _, include := range []bool{true, false} {
		want := map[string]float64{}
		for mask := 0; mask < 1<<len(units); mask++ {
			a := spec.Allocation{}
			var idx []int
			cost := 0.0
			for k, u := range units {
				if mask>>k&1 == 1 {
					a[u.ID] = true
					idx = append(idx, k)
					cost += u.Cost
				}
			}
			if !include && hasUselessComm(units, idx, a, adj) {
				continue
			}
			if Possible(s, a) {
				want[a.String()] = cost
			}
		}
		got := map[string]float64{}
		Enumerate(s, Options{IncludeUselessComm: include}, func(c Candidate) bool {
			got[c.Allocation.String()] = c.Cost
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("include=%v: enumerated %d candidates, brute force says %d",
				include, len(got), len(want))
		}
		for k, cost := range want {
			if gc, ok := got[k]; !ok || gc != cost {
				t.Errorf("include=%v: %s missing or cost %v != %v", include, k, gc, cost)
			}
		}
	}
}

// TestEnumerateRangeSuffix: EnumerateRange(start) delivers exactly the
// suffix of the full enumeration from the start-th possible candidate,
// with identical statistics — the skipped prefix is still scanned and
// counted, just never materialized.
func TestEnumerateRangeSuffix(t *testing.T) {
	s := buildFig2(t)
	var all []Candidate
	full := Enumerate(s, Options{}, func(c Candidate) bool {
		all = append(all, Candidate{Allocation: c.Allocation.Clone(), Cost: c.Cost})
		return true
	})
	if len(all) < 3 {
		t.Fatalf("model too small: %d possible", len(all))
	}
	for _, start := range []int{0, 1, len(all) / 2, len(all) - 1, len(all), len(all) + 5} {
		var got []Candidate
		st := EnumerateRange(s, Options{}, start, func(c Candidate) bool {
			got = append(got, Candidate{Allocation: c.Allocation.Clone(), Cost: c.Cost})
			return true
		})
		if st != full {
			t.Errorf("start=%d: stats %+v != full scan's %+v", start, st, full)
		}
		wantLen := len(all) - start
		if wantLen < 0 {
			wantLen = 0
		}
		if len(got) != wantLen {
			t.Fatalf("start=%d: %d candidates, want %d", start, len(got), wantLen)
		}
		for i, c := range got {
			want := all[start+i]
			if c.Cost != want.Cost || !c.Allocation.Equal(want.Allocation) {
				t.Errorf("start=%d, item %d: %v ($%g) != %v ($%g)",
					start, i, c.Allocation, c.Cost, want.Allocation, want.Cost)
			}
		}
	}
}

// TestEnumerateRangeEarlyStop: stopping inside the range keeps the
// stats consistent (Scanned reflects only what was generated).
func TestEnumerateRangeEarlyStop(t *testing.T) {
	s := buildFig2(t)
	n := 0
	EnumerateRange(s, Options{}, 2, func(c Candidate) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("callback ran %d times after stop, want 1", n)
	}
}
