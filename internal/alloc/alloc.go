// Package alloc implements the paper's first search-space reduction:
// the enumeration of possible resource allocations in order of
// increasing allocation cost.
//
// A possible resource allocation is a partial allocation of resources
// in the architecture graph which allows the implementation of at least
// one feasible problem-graph activation while neglecting the
// feasibility of binding: every leaf of at least one elementary cluster
// activation must have a mapping edge into the allocation, and the
// always-activated top level of the problem graph must be coverable.
// Following the paper, only leaves of the top-level architecture graph
// and whole architecture clusters are allocatable units.
//
// Enumeration is lazy: subsets of the allocatable units are generated
// in nondecreasing total cost through a binary heap (extend/replace
// children, each subset generated exactly once), so the exploration can
// stop early without touching the full 2^n space.
package alloc

import (
	"container/heap"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// Unit is an allocatable architecture element: a leaf vertex of the
// top-level architecture graph or a whole architecture cluster.
type Unit struct {
	ID   hgraph.ID
	Cost float64
	// Comm marks a pure communication unit (a bus vertex).
	Comm bool
	// Resources are the leaf resources the unit provides.
	Resources []hgraph.ID
}

// Units returns the allocatable units of the specification, sorted by
// cost (ties by ID). Clusters nested below other clusters are not
// separate units — allocating the outer cluster allocates them; only
// clusters of interfaces reachable from the architecture root through
// vertices/interfaces of enclosing *allocated* scopes would need them,
// and the paper's models (and ours) keep reconfigurable interfaces at
// the top level.
func Units(s *spec.Spec) []Unit {
	var out []Unit
	for _, v := range s.Arch.Root.Vertices {
		out = append(out, Unit{
			ID:        v.ID,
			Cost:      v.Attrs.GetDefault(spec.AttrCost, 0),
			Comm:      s.IsComm(v.ID),
			Resources: []hgraph.ID{v.ID},
		})
	}
	for _, i := range s.Arch.Root.Interfaces {
		for _, c := range i.Clusters {
			u := Unit{ID: c.ID, Cost: c.Attrs.GetDefault(spec.AttrCost, 0)}
			for _, lv := range s.Arch.LeavesOf(c) {
				u.Cost += lv.Attrs.GetDefault(spec.AttrCost, 0)
				u.Resources = append(u.Resources, lv.ID)
			}
			out = append(out, u)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Cost != out[b].Cost {
			return out[a].Cost < out[b].Cost
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// SupportableClusters returns the problem-graph clusters that remain
// activatable when the architecture is restricted to the given
// allocation, ignoring binding feasibility: a cluster is supportable
// iff each of its own vertices has at least one mapping edge into the
// allocation's resources and each of its interfaces has at least one
// supportable cluster, along the reachable hierarchy. The root is
// included when supportable. This set drives the paper's flexibility
// estimation.
func SupportableClusters(s *spec.Spec, a spec.Allocation) map[hgraph.ID]bool {
	avail := a.ResourceSet(s)
	memo := map[hgraph.ID]bool{}
	var ok func(c *hgraph.Cluster) bool
	ok = func(c *hgraph.Cluster) bool {
		if v, seen := memo[c.ID]; seen {
			return v
		}
		res := true
		for _, v := range c.Vertices {
			reachable := false
			for _, m := range s.MappingsFor(v.ID) {
				if avail[m.Resource] {
					reachable = true
					break
				}
			}
			if !reachable {
				res = false
				break
			}
		}
		if res {
			for _, i := range c.Interfaces {
				any := false
				for _, sub := range i.Clusters {
					if ok(sub) {
						any = true
					}
				}
				if !any {
					res = false
					break
				}
			}
		}
		memo[c.ID] = res
		return res
	}
	out := map[hgraph.ID]bool{}
	var mark func(c *hgraph.Cluster)
	mark = func(c *hgraph.Cluster) {
		if !ok(c) {
			return
		}
		out[c.ID] = true
		for _, i := range c.Interfaces {
			for _, sub := range i.Clusters {
				mark(sub)
			}
		}
	}
	mark(s.Problem.Root)
	return out
}

// Possible reports whether the allocation is a possible resource
// allocation: the problem root must be supportable (rule 4 — all
// top-level vertices and interfaces are required).
func Possible(s *spec.Spec, a spec.Allocation) bool {
	return SupportableClusters(s, a)[s.Problem.Root.ID]
}

// Options configures the enumeration.
type Options struct {
	// IncludeUselessComm keeps allocations containing buses that
	// connect fewer than two allocated functional units. The paper's
	// Fig. 2 example lists such supersets (μP C1, ...); the case study
	// leaves them out as obviously non-Pareto-optimal.
	IncludeUselessComm bool
	// MaxScan bounds the enumeration effort: subsets scanned for the
	// bitset scan, BDD search nodes visited for the symbolic producer
	// (0 = unbounded). The unit is enumerator-specific — a budget, not
	// a stream position.
	MaxScan int
}

// Stats reports enumeration effort.
type Stats struct {
	// Scanned counts enumeration effort in the producer's own unit:
	// subsets generated in cost order (bitset scan) or BDD search nodes
	// visited (symbolic producer).
	Scanned int
	// Possible counts subsets that passed the possibility test and were
	// yielded to the callback.
	Possible int
	// PrunedComm counts subsets skipped by the useless-bus rule.
	PrunedComm int
	// SearchSpace is 2^(number of units), the size of the unreduced
	// allocation space.
	SearchSpace float64
	// Producers is the number of producer goroutines the candidates
	// flowed through: 0 for the direct single-goroutine scans, >= 1 for
	// the sharded enumerators (a sharded run with one producer still
	// pays the merge). Telemetry, not semantics.
	Producers int
	// ProducerBusyNanos sums, over producer goroutines, the time spent
	// walking the subset tree (wall time minus blocked-send time).
	// Telemetry, not semantics.
	ProducerBusyNanos int64
	// MergeStalls counts merge-side reads that found the needed
	// producer stream empty and had to block — the back-pressure signal
	// of the k-way merge. Telemetry, not semantics.
	MergeStalls int
}

// Candidate is one possible resource allocation with its cost.
type Candidate struct {
	Allocation spec.Allocation
	Cost       float64
}

// Enumerate generates possible resource allocations in nondecreasing
// cost order and passes each to fn until fn returns false or the space
// is exhausted. It returns enumeration statistics.
//
// The scan is bitset-native: each heap node carries the subset both as
// the ascending unit-index slice that drives the deterministic
// equal-cost tie-break and as a dense bitset over the unit universe,
// and nodes (slice and bitset included) are recycled through a
// sync.Pool. The useless-bus rule and the possibility test (rule 4:
// root supportability) run word-parallel against a per-call Supporter,
// so no map is allocated for a scanned subset — the map-backed
// spec.Allocation is materialized only for candidates actually emitted,
// and the callback owns that map.
func Enumerate(s *spec.Spec, opts Options, fn func(Candidate) bool) Stats {
	return EnumerateRange(s, opts, 0, fn)
}

// EnumerateRange is Enumerate addressed by possible-candidate index:
// the scan itself is identical (heap order, Scanned/Possible/PrunedComm
// counts, MaxScan), but the first start possible candidates are skipped
// without materializing their spec.Allocation maps. Because the cost
// order and its tie-break are deterministic, the possible-candidate
// index is a stable address into the enumeration — a resumed or
// range-partitioned scan replays its prefix at raw scan speed, paying
// the map allocation only for candidates actually delivered to fn.
func EnumerateRange(s *spec.Spec, opts Options, start int, fn func(Candidate) bool) Stats {
	env := newScanEnv(s)
	n := env.n
	stats := Stats{SearchSpace: SearchSpace(n)}

	sc := env.newScratch()
	pool := sync.Pool{New: func() any { return &subset{bits: bitset.New(n)} }}

	h := &subsetHeap{}
	if n > 0 {
		first := pool.Get().(*subset)
		first.cost = env.units[0].Cost
		first.idx = append(first.idx[:0], 0)
		first.bits.Clear()
		first.bits.Add(0)
		heap.Push(h, first)
	}
	// The empty allocation is scanned first (never possible for a
	// problem graph with vertices, but counted for fidelity).
	stats.Scanned++
	if sc.rootSupportable(nil) {
		stats.Possible++
		if stats.Possible > start && !fn(Candidate{Allocation: spec.Allocation{}, Cost: 0}) {
			return stats
		}
	}
	for h.Len() > 0 {
		if opts.MaxScan > 0 && stats.Scanned >= opts.MaxScan {
			break
		}
		cur := heap.Pop(h).(*subset)
		stats.Scanned++
		if m := cur.idx[len(cur.idx)-1]; m+1 < n {
			heap.Push(h, env.child(&pool, cur, false))
			heap.Push(h, env.child(&pool, cur, true))
		}
		switch {
		case !opts.IncludeUselessComm && sc.uselessComm(cur):
			stats.PrunedComm++
		case !sc.rootSupportable(cur.idx):
		default:
			stats.Possible++
			if stats.Possible <= start {
				// Before the range: counted, never materialized.
				break
			}
			a := make(spec.Allocation, len(cur.idx))
			for _, k := range cur.idx {
				a[env.units[k].ID] = true
			}
			if !fn(Candidate{Allocation: a, Cost: cur.cost}) {
				pool.Put(cur)
				return stats
			}
		}
		pool.Put(cur)
	}
	return stats
}

// scanEnv is the read-only state shared by every walker of a bitset
// scan: the cost-ordered unit universe, each unit's leaf-resource set,
// the bus-adjacency bitsets for the useless-bus rule, and the
// Supporter. It is built once per enumeration and is safe for any
// number of concurrent readers; all mutable scan state lives in
// per-goroutine scanScratch values.
type scanEnv struct {
	units []Unit
	n     int
	sup   *Supporter
	// unitRes[k]: leaf resources unit k provides. commAdjBits[k]: for a
	// bus unit, the unit indices it touches (nil for functional units).
	unitRes     []bitset.Set
	commAdjBits []bitset.Set
}

func newScanEnv(s *spec.Spec) *scanEnv {
	units := Units(s)
	n := len(units)
	env := &scanEnv{units: units, n: n, sup: NewSupporter(s)}
	env.unitRes = make([]bitset.Set, n)
	env.commAdjBits = make([]bitset.Set, n)
	pos := make(map[hgraph.ID]int, n)
	for k, u := range units {
		pos[u.ID] = k
	}
	adj := commAdjacency(s, units)
	for k, u := range units {
		env.unitRes[k] = env.sup.provides[u.ID]
		if u.Comm {
			bs := bitset.New(n)
			for other := range adj[u.ID] {
				bs.Add(pos[other])
			}
			env.commAdjBits[k] = bs
		}
	}
	return env
}

// scanScratch is the per-goroutine mutable side of the possibility
// test, reused across candidates so no allocation happens per scanned
// subset.
type scanScratch struct {
	env   *scanEnv
	memo  []int8
	avail bitset.Set
}

func (e *scanEnv) newScratch() *scanScratch {
	return &scanScratch{
		env:   e,
		memo:  make([]int8, e.sup.Clusters.Len()),
		avail: bitset.New(e.sup.Resources.Len()),
	}
}

// rootSupportable is the possibility test (rule 4: root
// supportability) for the subset with the given unit indices.
func (sc *scanScratch) rootSupportable(idx []int) bool {
	sc.avail.Clear()
	for _, k := range idx {
		sc.avail.UnionWith(sc.env.unitRes[k])
	}
	for i := range sc.memo {
		sc.memo[i] = 0
	}
	return sc.env.sup.supportableFrom(sc.env.sup.root, sc.avail, sc.memo)
}

// uselessComm applies the useless-bus rule: true when the subset
// contains a bus connecting fewer than two allocated units.
func (sc *scanScratch) uselessComm(cur *subset) bool {
	for _, k := range cur.idx {
		if sc.env.units[k].Comm && sc.env.commAdjBits[k].IntersectionCount(cur.bits) < 2 {
			return true
		}
	}
	return false
}

// child derives a heap node from cur: extend appends unit m+1, replace
// swaps the last unit m for m+1 (each subset generated exactly once).
// The node comes from pool, so walkers recycle nodes without sharing.
func (e *scanEnv) child(pool *sync.Pool, cur *subset, replace bool) *subset {
	m := cur.idx[len(cur.idx)-1]
	c := pool.Get().(*subset)
	c.idx = append(c.idx[:0], cur.idx...)
	c.bits.Clear()
	c.bits.UnionWith(cur.bits)
	if replace {
		c.idx[len(c.idx)-1] = m + 1
		c.bits.Remove(m)
		c.cost = cur.cost - e.units[m].Cost + e.units[m+1].Cost
	} else {
		c.idx = append(c.idx, m+1)
		c.cost = cur.cost + e.units[m+1].Cost
	}
	c.bits.Add(m + 1)
	return c
}

// All materializes every possible resource allocation (cost-ordered).
// Prefer Enumerate for large unit sets.
func All(s *spec.Spec, opts Options) ([]Candidate, Stats) {
	var out []Candidate
	stats := Enumerate(s, opts, func(c Candidate) bool {
		out = append(out, Candidate{Allocation: c.Allocation.Clone(), Cost: c.Cost})
		return true
	})
	return out, stats
}

// SearchSpace returns 2^n as a float64: the size of an n-element subset
// space. It is the one search-space helper shared by the allocation
// enumerators and the exploration statistics (which multiply further
// per-element choices on top for the full design space).
func SearchSpace(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out
}

// subset is a heap node: unit indices (sorted ascending), the same
// subset as a dense bitset over the unit universe (nil on the extension
// enumerator's nodes, which never consult it), and total cost.
type subset struct {
	cost float64
	idx  []int
	bits bitset.Set
}

type subsetHeap []*subset

func (h subsetHeap) Len() int { return len(h) }

// Less orders by total cost; equal-cost subsets are ordered
// deterministically by descending lexicographic index sequence. The
// paper does not define an order among equal-cost allocations (its
// published case-study representative at $230 is one of three equal
// optima); this tie-break is fixed so results are reproducible and
// happens to select the published representative.
func (h subsetHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	a, b := h[i].idx, h[j].idx
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] > b[k]
		}
	}
	return len(a) > len(b)
}
func (h subsetHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *subsetHeap) Push(x any)   { *h = append(*h, x.(*subset)) }
func (h *subsetHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// commAdjacency maps each top-level communication vertex to the set of
// unit IDs it touches in the architecture graph (interface endpoints
// count as all clusters of the interface).
func commAdjacency(s *spec.Spec, units []Unit) map[hgraph.ID]map[hgraph.ID]bool {
	unitByID := map[hgraph.ID]bool{}
	for _, u := range units {
		unitByID[u.ID] = true
	}
	adj := map[hgraph.ID]map[hgraph.ID]bool{}
	touch := func(comm hgraph.ID, other hgraph.ID) {
		if adj[comm] == nil {
			adj[comm] = map[hgraph.ID]bool{}
		}
		adj[comm][other] = true
	}
	endpoints := func(id hgraph.ID) []hgraph.ID {
		if unitByID[id] {
			return []hgraph.ID{id}
		}
		if i := s.Arch.InterfaceByID(id); i != nil {
			var out []hgraph.ID
			for _, c := range i.Clusters {
				if unitByID[c.ID] {
					out = append(out, c.ID)
				}
			}
			return out
		}
		return nil
	}
	for _, e := range s.Arch.Root.Edges {
		for _, x := range endpoints(e.From) {
			for _, y := range endpoints(e.To) {
				if s.IsComm(x) && !s.IsComm(y) {
					touch(x, y)
				}
				if s.IsComm(y) && !s.IsComm(x) {
					touch(y, x)
				}
			}
		}
	}
	return adj
}

// hasUselessComm reports whether the allocation contains a bus unit
// that connects fewer than two allocated functional units.
func hasUselessComm(units []Unit, idx []int, a spec.Allocation, adj map[hgraph.ID]map[hgraph.ID]bool) bool {
	for _, k := range idx {
		u := units[k]
		if !u.Comm {
			continue
		}
		n := 0
		for other := range adj[u.ID] {
			if a[other] {
				n++
			}
		}
		if n < 2 {
			return true
		}
	}
	return false
}
