package alloc

import (
	"testing"
	"testing/quick"

	"repro/internal/models"
	"repro/internal/spec"
)

func TestSymbolicCountMatchesEnumeration(t *testing.T) {
	s := buildFig2(t)
	// Enumeration with supersets kept found 32 possible allocations.
	if got := CountPossible(s); got != 32 {
		t.Errorf("CountPossible = %v, want 32", got)
	}
}

func TestSymbolicCountCaseStudy(t *testing.T) {
	// The Set-Top box: the upward closure of {a processor} over 14
	// units = 3/4 of 2^14, matching the scanned enumeration (E7).
	s := models.SetTopBox()
	if got := CountPossible(s); got != 12288 {
		t.Errorf("CountPossible(settop) = %v, want 12288", got)
	}
}

func TestSymbolicAgreesWithPossible(t *testing.T) {
	s := buildFig2(t)
	m, f, units := Symbolic(s)
	// Exhaustively compare the BDD against the procedural test.
	asg := make([]bool, len(units))
	for mask := 0; mask < 1<<len(units); mask++ {
		a := spec.Allocation{}
		for i := range units {
			asg[i] = mask&(1<<i) != 0
			if asg[i] {
				a[units[i].ID] = true
			}
		}
		if m.Eval(f, asg) != Possible(s, a) {
			t.Fatalf("BDD and Possible disagree on %v", a)
		}
	}
}

func TestCheapestPossible(t *testing.T) {
	s := buildFig2(t)
	a, cost, ok := CheapestPossible(s)
	if !ok {
		t.Fatal("possible allocation exists")
	}
	if cost != 50 || !a.Equal(spec.NewAllocation("uP")) {
		t.Errorf("cheapest = %v at %v, want {uP} at 50", a, cost)
	}

	st := models.SetTopBox()
	a2, cost2, ok := CheapestPossible(st)
	if !ok || cost2 != 100 || !a2.Equal(spec.NewAllocation("uP2")) {
		t.Errorf("cheapest settop = %v at %v, want {uP2} at 100", a2, cost2)
	}
}

func TestCheapestPossibleUnsat(t *testing.T) {
	// A process with no mapping edge makes every allocation impossible.
	s := buildFig2(t).Clone()
	var kept []*spec.Mapping
	for _, m := range s.Mappings {
		if m.Process != "PA" {
			kept = append(kept, m)
		}
	}
	s2 := spec.MustNew("nopa", s.Problem, s.Arch, kept)
	if _, _, ok := CheapestPossible(s2); ok {
		t.Error("unbindable PA must make the constraint unsatisfiable")
	}
	if got := CountPossible(s2); got != 0 {
		t.Errorf("CountPossible = %v, want 0", got)
	}
}

// Property: on synthetic models, the symbolic count equals the
// enumeration count (with supersets kept).
func TestPropSymbolicMatchesEnumeration(t *testing.T) {
	prop := func(seed int64) bool {
		p := models.SyntheticParams{
			Seed: seed % 60, Apps: 2, Depth: 1, Branch: 2, Vertices: 1,
			Processors: 1, ASICs: 1, Designs: 2, Buses: 2,
			AccelOnlyFraction: 0.4,
		}
		s := models.Synthetic(p)
		n := 0
		Enumerate(s, Options{IncludeUselessComm: true}, func(Candidate) bool {
			n++
			return true
		})
		return CountPossible(s) == float64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the cheapest symbolic allocation matches the first
// candidate of the cost-ordered enumeration.
func TestPropCheapestMatchesEnumeration(t *testing.T) {
	prop := func(seed int64) bool {
		p := models.SyntheticParams{
			Seed: seed % 60, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
			Processors: 2, ASICs: 1, Designs: 1, Buses: 2,
			AccelOnlyFraction: 0.3,
		}
		s := models.Synthetic(p)
		var firstCost float64
		found := false
		Enumerate(s, Options{IncludeUselessComm: true}, func(c Candidate) bool {
			firstCost = c.Cost
			found = true
			return false
		})
		_, cost, ok := CheapestPossible(s)
		if !found {
			return !ok
		}
		return ok && cost == firstCost
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSymbolicCount(b *testing.B) {
	s := models.SetTopBox()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if CountPossible(s) != 12288 {
			b.Fatal("wrong count")
		}
	}
}
