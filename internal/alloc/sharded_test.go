package alloc

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/models"
	"repro/internal/spec"
)

// collectSharded drains a sharded enumerator into a comparable list.
func collectSharded(enum func(*spec.Spec, Options, int, int, func(Candidate) bool) Stats, s *spec.Spec, opts Options, producers, start int) ([]Candidate, Stats) {
	var out []Candidate
	stats := enum(s, opts, producers, start, func(c Candidate) bool {
		out = append(out, Candidate{Allocation: c.Allocation.Clone(), Cost: c.Cost})
		return true
	})
	return out, stats
}

// shardedSpecs is the property-test corpus: the paper models plus a
// randomized family of small synthetic specs (different seeds shift
// unit costs, adjacency, and mapping structure, so equal-cost ties and
// pruned lanes all occur across the corpus).
func shardedSpecs(t *testing.T) map[string]*spec.Spec {
	t.Helper()
	specs := map[string]*spec.Spec{
		"fig2":   buildFig2(t),
		"settop": models.SetTopBox(),
	}
	for seed := int64(1); seed <= 6; seed++ {
		specs[fmt.Sprintf("synth%d", seed)] = models.Synthetic(models.SyntheticParams{
			Seed: seed, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
			Processors: 2, ASICs: 1 + int(seed%2), Designs: 2, Buses: 2 + int(seed%2),
			TimedFraction: 0.3, AccelOnlyFraction: 0.3,
		})
	}
	return specs
}

// TestShardedStreamIdentity is the tentpole's property test: for every
// corpus spec, every producer count in {1,2,3,4}, and both sharded
// enumerators, the merged stream is element-identical (allocations,
// costs, order) to the single-producer stream, with matching semantic
// stats.
func TestShardedStreamIdentity(t *testing.T) {
	for name, s := range shardedSpecs(t) {
		for _, include := range []bool{false, true} {
			opts := Options{IncludeUselessComm: include}
			label := name
			if include {
				label += "+uselesscomm"
			}
			want, wantStats := collect(EnumerateRange, s, opts, 0)
			for _, p := range []int{1, 2, 3, 4} {
				bit, bitStats := collectSharded(EnumerateShardedRange, s, opts, p, 0)
				sameCandidates(t, fmt.Sprintf("%s/bitset/p=%d", label, p), want, bit)
				sym, symStats := collectSharded(EnumerateSymbolicShardedRange, s, opts, p, 0)
				sameCandidates(t, fmt.Sprintf("%s/symbolic/p=%d", label, p), want, sym)
				if bitStats.Possible != wantStats.Possible || symStats.Possible != wantStats.Possible {
					t.Errorf("%s/p=%d: Possible = %d (bitset sharded) / %d (symbolic sharded), want %d",
						label, p, bitStats.Possible, symStats.Possible, wantStats.Possible)
				}
				// A complete bitset-sharded scan pops exactly the subsets the
				// direct scan pops, and prunes the same buses.
				if bitStats.Scanned != wantStats.Scanned || bitStats.PrunedComm != wantStats.PrunedComm {
					t.Errorf("%s/p=%d: Scanned/PrunedComm = %d/%d, want %d/%d",
						label, p, bitStats.Scanned, bitStats.PrunedComm, wantStats.Scanned, wantStats.PrunedComm)
				}
				wantP := p
				if n := len(Units(s)); wantP > n {
					wantP = n
				}
				if bitStats.Producers != wantP || symStats.Producers != wantP {
					t.Errorf("%s/p=%d: Producers gauge = %d/%d, want %d", label, p, bitStats.Producers, symStats.Producers, wantP)
				}
			}
		}
	}
}

// TestShardedRangeCursor checks the range contract under sharding:
// starting a P-producer enumeration at cursor k yields exactly the
// single-producer stream's suffix from k, for mid-stream and
// past-the-end cursors.
func TestShardedRangeCursor(t *testing.T) {
	for _, name := range []string{"settop", "synth3"} {
		s := shardedSpecs(t)[name]
		full, _ := collect(EnumerateRange, s, Options{}, 0)
		starts := []int{1, len(full) / 2, len(full) - 1, len(full), len(full) + 3}
		for _, p := range []int{2, 3, 4} {
			for _, start := range starts {
				wantLen := len(full) - start
				if wantLen < 0 {
					wantLen = 0
				}
				for enumName, enum := range map[string]func(*spec.Spec, Options, int, int, func(Candidate) bool) Stats{
					"bitset":   EnumerateShardedRange,
					"symbolic": EnumerateSymbolicShardedRange,
				} {
					got, stats := collectSharded(enum, s, Options{}, p, start)
					if len(got) != wantLen {
						t.Fatalf("%s/%s p=%d start %d: got %d candidates, want %d", name, enumName, p, start, len(got), wantLen)
					}
					sameCandidates(t, fmt.Sprintf("%s/%s/p=%d/start=%d", name, enumName, p, start), full[len(full)-wantLen:], got)
					if stats.Possible != len(full) {
						t.Errorf("%s/%s p=%d start %d: Possible = %d, want %d", name, enumName, p, start, stats.Possible, len(full))
					}
				}
			}
		}
	}
}

// TestShardedEarlyStop: a false callback return stops the merged
// stream mid-flight without deadlocking the walkers, and the emitted
// prefix is the single-producer prefix.
func TestShardedEarlyStop(t *testing.T) {
	s := models.SetTopBox()
	full, _ := collect(EnumerateRange, s, Options{}, 0)
	for _, p := range []int{1, 2, 4} {
		for enumName, enum := range map[string]func(*spec.Spec, Options, int, int, func(Candidate) bool) Stats{
			"bitset":   EnumerateShardedRange,
			"symbolic": EnumerateSymbolicShardedRange,
		} {
			var got []Candidate
			enum(s, Options{}, p, 0, func(c Candidate) bool {
				got = append(got, Candidate{Allocation: c.Allocation.Clone(), Cost: c.Cost})
				return len(got) < 7
			})
			if len(got) != 7 {
				t.Fatalf("%s p=%d: early stop emitted %d candidates, want 7", enumName, p, len(got))
			}
			sameCandidates(t, fmt.Sprintf("early/%s/p=%d", enumName, p), full[:7], got)
		}
	}
}

// TestShardedMaxScan: MaxScan splits into per-shard effort budgets.
// The total never exceeds the budget, the emission is deterministic
// for a fixed producer count, every emitted candidate comes from the
// single-producer stream in its global order (a subsequence — lanes
// truncate independently, so unlike the single producer the bounded
// emission need not be a prefix), and cost order is preserved.
func TestShardedMaxScan(t *testing.T) {
	s := models.SetTopBox()
	full, fullStats := collect(EnumerateRange, s, Options{}, 0)
	budget := fullStats.Scanned / 3
	for _, p := range []int{2, 4} {
		for enumName, enum := range map[string]func(*spec.Spec, Options, int, int, func(Candidate) bool) Stats{
			"bitset":   EnumerateShardedRange,
			"symbolic": EnumerateSymbolicShardedRange,
		} {
			got, stats := collectSharded(enum, s, Options{MaxScan: budget}, p, 0)
			if stats.Scanned > budget {
				t.Errorf("%s p=%d: Scanned = %d, exceeds MaxScan %d", enumName, p, stats.Scanned, budget)
			}
			again, _ := collectSharded(enum, s, Options{MaxScan: budget}, p, 0)
			sameCandidates(t, fmt.Sprintf("maxscan-repeat/%s/p=%d", enumName, p), got, again)
			// Subsequence-of-global check, and nondecreasing cost.
			j := 0
			for i, c := range got {
				if i > 0 && c.Cost < got[i-1].Cost {
					t.Fatalf("%s p=%d: cost order violated at %d", enumName, p, i)
				}
				for j < len(full) && !(full[j].Cost == c.Cost && full[j].Allocation.Equal(c.Allocation)) {
					j++
				}
				if j == len(full) {
					t.Fatalf("%s p=%d: candidate %d not a subsequence of the global stream", enumName, p, i)
				}
				j++
			}
		}
	}
}

// TestShardBudgets pins the budget split: the empty subset is funded
// centrally and the remainder spreads evenly, low shards first.
func TestShardBudgets(t *testing.T) {
	cases := []struct {
		maxScan, p int
		want       []int
	}{
		{0, 3, []int{-1, -1, -1}},
		{-2, 2, []int{-1, -1}},
		{1, 2, []int{0, 0}},
		{2, 2, []int{1, 0}},
		{10, 3, []int{3, 3, 3}},
		{12, 4, []int{3, 3, 3, 2}},
	}
	for _, c := range cases {
		got := shardBudgets(c.maxScan, c.p)
		if len(got) != len(c.want) {
			t.Fatalf("shardBudgets(%d,%d) = %v, want %v", c.maxScan, c.p, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("shardBudgets(%d,%d) = %v, want %v", c.maxScan, c.p, got, c.want)
			}
		}
	}
}

// TestShardedProducerClamp: producer counts beyond the unit count (or
// below 1) clamp rather than misbehave.
func TestShardedProducerClamp(t *testing.T) {
	s := buildFig2(t)
	n := len(Units(s))
	want, _ := collect(EnumerateRange, s, Options{}, 0)
	for _, p := range []int{0, -3, n + 5, 64} {
		got, stats := collectSharded(EnumerateShardedRange, s, Options{}, p, 0)
		sameCandidates(t, fmt.Sprintf("clamp/p=%d", p), want, got)
		if stats.Producers < 1 || stats.Producers > n {
			t.Errorf("p=%d: Producers gauge = %d, want within [1,%d]", p, stats.Producers, n)
		}
	}
}

// TestPropShardedMatchesDirect fuzzes the merge across randomized
// synthetic specifications: for a random seed, shard count, and
// mid-stream start cursor, both sharded enumerators emit exactly the
// direct scan's suffix. This complements the fixed corpus above with
// generator-driven structure (random costs force equal-cost ties;
// random adjacency forces pruned and empty lanes).
func TestPropShardedMatchesDirect(t *testing.T) {
	prop := func(seed int64, pRaw uint8, startRaw uint16) bool {
		s := models.Synthetic(models.SyntheticParams{
			Seed: seed % 50, Apps: 2, Depth: 1, Branch: 2, Vertices: 2,
			Processors: 2, ASICs: 1 + int(seed%3), Designs: 2, Buses: 2 + int(seed%2),
			TimedFraction: 0.3, AccelOnlyFraction: 0.3,
		})
		p := 2 + int(pRaw%3) // 2..4
		full, _ := collect(EnumerateRange, s, Options{}, 0)
		start := int(startRaw) % (len(full) + 2)
		want := full[min(start, len(full)):]
		for _, enum := range []func(*spec.Spec, Options, int, int, func(Candidate) bool) Stats{
			EnumerateShardedRange, EnumerateSymbolicShardedRange,
		} {
			got, _ := collectSharded(enum, s, Options{}, p, start)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i].Cost != want[i].Cost || !got[i].Allocation.Equal(want[i].Allocation) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
