// Sharded candidate production: the cost-ordered subset scan split
// across P producer goroutines, re-serialized by a deterministic k-way
// merge into a stream that is candidate-for-candidate and
// cursor-for-cursor identical to the single-producer scan.
//
// # Shard addressing
//
// The extend/replace subset tree has a static top-level decomposition:
// the replace move only ever swaps the *last* index, so the minimum
// element of a subset is decided once, at its lane root. Lane k is the
// singleton {k} plus all its extend/replace descendants — exactly the
// subsets whose minimum unit index is k — and the n lanes partition
// the nonempty subsets. Walker w (of P) owns lanes w, w+P, w+2P, …: a
// static address, so the decomposition is identical for every run and
// every P.
//
// # Merge determinism
//
// Each walker runs one heap over its own lanes. Restricted to a single
// lane, its pop order equals the global scan's pop order restricted to
// that lane (pruning-free subtree, same comparator), so every lane's
// record sequence is a fixed, P-independent stream. The merge holds
// one head per lane and repeatedly emits the comparator-minimum head
// (subsetHeap.Less, the exact tie-break of the global heap): because
// the global heap's content is at all times the union of the per-lane
// frontiers, the comparator-minimum over lane heads is the global
// heap's next pop. The one non-local rule is lane *availability*: in
// the global scan the root {k+1} enters the heap only when {k} is
// popped (it is the replace child of {k}), so the merge activates lane
// k+1 exactly when it consumes lane k's root record — every lane's
// first record is a sentinel marking its root — or when lane k drains
// without ever delivering its sentinel (per-shard budget exhaustion).
// Everything else is local, hence the merged stream is bit-identical
// to the single producer's, including under equal-cost ties.
package alloc

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/spec"
)

// walkerChanBuf is the per-walker output channel capacity. The merge
// drains exactly the stream it needs, so the buffer only smooths
// bursts; correctness does not depend on its size.
const walkerChanBuf = 256

// laneRec is one record of a walker stream. Every record names its
// lane; a lane's first record is its root sentinel (sent even when the
// root is not a possible allocation, because the merge gates the next
// lane's activation on it), and a laneClose record marks a lane fully
// walked.
type laneRec struct {
	lane      int
	laneClose bool
	sentinel  bool
	possible  bool
	cost      float64
	idx       []int
}

// mergeLane is the merge-side state of one lane: its routed-but-unread
// records, the current head, and the activation bookkeeping.
type mergeLane struct {
	q        []laneRec
	qh       int // index of the queue head within q
	head     laneRec
	has      bool
	active   bool
	closed   bool // no further records will arrive (queue may be nonempty)
	seenRoot bool // the root sentinel has been consumed
	notified bool // exhaustion has already activated the successor
}

// laneMerge restores the global enumeration order from P walker
// streams with a loser tree over the n lane heads, using the exact
// subsetHeap.Less comparator. See the package comment for why the
// result is bit-identical to the single-producer scan.
type laneMerge struct {
	lanes  []mergeLane
	wchans []chan laneRec
	owner  []int // lane -> walker stream index (lane % P)
	ls     []int // loser tree: ls[0] winner, internal nodes losers
	win    []int // scratch for full rebuilds
	stalls int
	dirty  bool // a lane other than the consumed winner changed state
}

func newLaneMerge(wchans []chan laneRec, n, p int) *laneMerge {
	m := &laneMerge{
		lanes:  make([]mergeLane, n),
		wchans: wchans,
		owner:  make([]int, n),
		ls:     make([]int, n),
		win:    make([]int, 2*n),
	}
	for l := range m.owner {
		m.owner[l] = l % p
	}
	m.activate(0)
	m.build()
	return m
}

// beats reports whether lane a's head precedes lane b's. It mirrors
// subsetHeap.Less exactly (heads of distinct lanes are distinct
// subsets, so the comparator is a strict total order); lanes without a
// head lose to every lane with one, ties among dead lanes break by
// index so the tournament stays a total order.
func (m *laneMerge) beats(a, b int) bool {
	la, lb := &m.lanes[a], &m.lanes[b]
	if !la.has || !lb.has {
		if la.has != lb.has {
			return la.has
		}
		return a < b
	}
	if la.head.cost != lb.head.cost {
		return la.head.cost < lb.head.cost
	}
	x, y := la.head.idx, lb.head.idx
	for k := 0; k < len(x) && k < len(y); k++ {
		if x[k] != y[k] {
			return x[k] > y[k]
		}
	}
	return len(x) > len(y)
}

// build recomputes the whole loser tree bottom-up. Used at startup and
// after lane activations (at most n times per enumeration); the hot
// path uses replay.
func (m *laneMerge) build() {
	n := len(m.lanes)
	for i := 0; i < n; i++ {
		m.win[n+i] = i
	}
	for t := n - 1; t >= 1; t-- {
		a, b := m.win[2*t], m.win[2*t+1]
		if m.beats(b, a) {
			a, b = b, a
		}
		m.win[t] = a
		m.ls[t] = b
	}
	m.ls[0] = m.win[1]
}

// replay reinserts leaf s after its element — the previous winner —
// was consumed: the classic O(log n) loser-tree walk, valid exactly
// because s's old element is absent from the internal nodes.
func (m *laneMerge) replay(s int) {
	cur := s
	for t := (s + len(m.lanes)) / 2; t >= 1; t /= 2 {
		if m.beats(m.ls[t], cur) {
			cur, m.ls[t] = m.ls[t], cur
		}
	}
	m.ls[0] = cur
}

// pull receives one record from walker stream w and routes it: data
// records append to their lane's queue, laneClose records (and a
// stream close, which closes every lane the walker owns) mark lanes
// closed.
func (m *laneMerge) pull(w int) {
	var rec laneRec
	var ok bool
	select {
	case rec, ok = <-m.wchans[w]:
	default:
		// The producer has not caught up: account the stall, then wait.
		m.stalls++
		rec, ok = <-m.wchans[w]
	}
	if !ok {
		m.wchans[w] = nil
		for l := range m.lanes {
			if m.owner[l] == w {
				m.lanes[l].closed = true
			}
		}
		return
	}
	if rec.laneClose {
		m.lanes[rec.lane].closed = true
		return
	}
	L := &m.lanes[rec.lane]
	L.q = append(L.q, rec)
}

// fetch makes lane l's head current: from its queue, else by pulling
// its owner's stream until a record for l (or its closure) arrives.
// A lane that turns out exhausted without ever delivering its sentinel
// activates its successor here — the budget-truncation counterpart of
// sentinel-gated activation.
func (m *laneMerge) fetch(l int) {
	L := &m.lanes[l]
	for !L.has && L.active {
		if L.qh < len(L.q) {
			L.head = L.q[L.qh]
			L.q[L.qh] = laneRec{}
			L.qh++
			if L.qh == len(L.q) {
				L.q, L.qh = L.q[:0], 0
			}
			L.has = true
			return
		}
		if L.closed {
			if !L.seenRoot && !L.notified {
				L.notified = true
				m.activate(l + 1)
			}
			return
		}
		if m.wchans[m.owner[l]] == nil {
			// Stream already gone (records routed before closure).
			L.closed = true
			continue
		}
		m.pull(m.owner[l])
	}
}

// activate opens lane l for merging. Activation cascades: fetching the
// new lane can discover further closed lanes and activate their
// successors in turn.
func (m *laneMerge) activate(l int) {
	if l >= len(m.lanes) || m.lanes[l].active {
		return
	}
	m.lanes[l].active = true
	m.dirty = true
	m.fetch(l)
}

// next returns the next record of the merged stream — the global
// enumeration order — or ok=false when every lane has drained.
func (m *laneMerge) next() (laneRec, bool) {
	w := m.ls[0]
	if !m.lanes[w].has {
		return laneRec{}, false
	}
	rec := m.lanes[w].head
	m.lanes[w].has = false
	m.lanes[w].head = laneRec{}
	m.dirty = false
	if rec.sentinel {
		m.lanes[w].seenRoot = true
		m.activate(w + 1)
	}
	m.fetch(w)
	if m.dirty {
		m.build()
	} else {
		m.replay(w)
	}
	return rec, true
}

// shardBudgets splits a MaxScan budget across p walkers: the empty
// subset is scanned centrally, the remaining pop budget is divided as
// evenly as possible (low shards take the remainder). -1 means
// unbounded. The split keeps the total effort bound exact — early
// stops may still overshoot Scanned, as documented since the range
// scans of PR 5.
func shardBudgets(maxScan, p int) []int {
	out := make([]int, p)
	if maxScan <= 0 {
		for i := range out {
			out[i] = -1
		}
		return out
	}
	total := maxScan - 1
	each, extra := total/p, total%p
	for i := range out {
		out[i] = each
		if i < extra {
			out[i]++
		}
	}
	return out
}

// shardWalker accumulates one producer goroutine's statistics; the
// aggregator reads them only after the goroutine exits.
type shardWalker struct {
	scanned int
	pruned  int
	busy    int64
}

// run walks lanes shard, shard+p, … with a single local heap, sending
// records in pop order on out. Per-lane pending counts detect the
// moment a lane is fully walked (laneClose). A close of done aborts.
func (w *shardWalker) run(env *scanEnv, opts Options, shard, p, budget int, out chan<- laneRec, done <-chan struct{}) {
	defer close(out)
	n := env.n
	started := time.Now() //flexvet:ignore FX006 -- wall-clock producer-busy gauge, telemetry only
	var sendWait time.Duration
	defer func() {
		w.busy = int64(time.Since(started) - sendWait)
	}()
	send := func(rec laneRec) bool {
		select {
		case out <- rec:
			return true
		default:
		}
		t0 := time.Now() //flexvet:ignore FX006 -- blocked-send accounting for the busy gauge
		select {
		case out <- rec:
			sendWait += time.Since(t0)
			return true
		case <-done:
			return false
		}
	}

	sc := env.newScratch()
	pool := sync.Pool{New: func() any { return &subset{bits: bitset.New(n)} }}
	h := &subsetHeap{}
	pending := make([]int, n)
	for k := shard; k < n; k += p {
		root := pool.Get().(*subset)
		root.cost = env.units[k].Cost
		root.idx = append(root.idx[:0], k)
		root.bits.Clear()
		root.bits.Add(k)
		heap.Push(h, root)
		pending[k] = 1
	}
	for h.Len() > 0 {
		if budget >= 0 && w.scanned >= budget {
			return
		}
		cur := heap.Pop(h).(*subset)
		w.scanned++
		lane := cur.idx[0]
		if m := cur.idx[len(cur.idx)-1]; m+1 < n {
			heap.Push(h, env.child(&pool, cur, false))
			pending[lane]++
			if len(cur.idx) > 1 {
				// The replace child of a lane root would swap the
				// minimum element out: that subset is another lane's
				// root, owned by whichever walker holds that lane.
				heap.Push(h, env.child(&pool, cur, true))
				pending[lane]++
			}
		}
		possible := false
		switch {
		case !opts.IncludeUselessComm && sc.uselessComm(cur):
			w.pruned++
		case !sc.rootSupportable(cur.idx):
		default:
			possible = true
		}
		if possible || len(cur.idx) == 1 {
			rec := laneRec{
				lane:     lane,
				sentinel: len(cur.idx) == 1,
				possible: possible,
				cost:     cur.cost,
				idx:      append([]int(nil), cur.idx...),
			}
			if !send(rec) {
				pool.Put(cur)
				return
			}
		}
		pending[lane]--
		if pending[lane] == 0 {
			if !send(laneRec{lane: lane, laneClose: true}) {
				pool.Put(cur)
				return
			}
		}
		pool.Put(cur)
	}
}

// EnumerateSharded is Enumerate with candidate production split across
// producers goroutines. The emitted stream — candidates, costs, their
// order, and the possible-candidate cursor — is bit-identical to
// Enumerate's; only the Scanned accounting of early-stopped runs may
// overshoot (buffered walkers run slightly ahead of the merge).
func EnumerateSharded(s *spec.Spec, opts Options, producers int, fn func(Candidate) bool) Stats {
	return EnumerateShardedRange(s, opts, producers, 0, fn)
}

// EnumerateShardedRange is EnumerateRange across producers sharded
// walker goroutines with the same range-cursor contract: start indexes
// possible candidates, and the stream past it is bit-identical to the
// single producer's. producers is clamped to [1, number of units]; one
// producer still runs the full walker/merge machinery (that overhead
// staying within noise of the direct path is benchmarked and gated).
func EnumerateShardedRange(s *spec.Spec, opts Options, producers, start int, fn func(Candidate) bool) Stats {
	env := newScanEnv(s)
	n := env.n
	p := producers
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	stats := Stats{SearchSpace: SearchSpace(n), Producers: p}

	wchans := make([]chan laneRec, p)
	for i := range wchans {
		wchans[i] = make(chan laneRec, walkerChanBuf)
	}
	done := make(chan struct{})
	budgets := shardBudgets(opts.MaxScan, p)
	walkers := make([]shardWalker, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			walkers[w].run(env, opts, w, p, budgets[w], wchans[w], done)
		}(w)
	}

	// The empty allocation precedes every lane in the cost order and is
	// scanned centrally, exactly as in the direct scan.
	sc := env.newScratch()
	stats.Scanned++
	stop := false
	if sc.rootSupportable(nil) {
		stats.Possible++
		if stats.Possible > start && !fn(Candidate{Allocation: spec.Allocation{}, Cost: 0}) {
			stop = true
		}
	}
	if !stop && n > 0 {
		mergeLanes(env.units, p, &stats, start, fn, wchans)
	}
	close(done)
	wg.Wait()
	for i := range walkers {
		stats.Scanned += walkers[i].scanned
		stats.PrunedComm += walkers[i].pruned
		stats.ProducerBusyNanos += walkers[i].busy
	}
	return stats
}

// mergeLanes drains the walker streams through the lane-gated loser
// tree, counting Possible and materializing in-range candidates for
// fn. Shared by the bitset and symbolic sharded enumerators. Returns
// false when fn stopped the stream early.
func mergeLanes(units []Unit, p int, stats *Stats, start int, fn func(Candidate) bool, wchans []chan laneRec) bool {
	m := newLaneMerge(wchans, len(units), p)
	defer func() { stats.MergeStalls = m.stalls }()
	for {
		rec, ok := m.next()
		if !ok {
			return true
		}
		if !rec.possible {
			continue
		}
		stats.Possible++
		if stats.Possible <= start {
			continue
		}
		a := make(spec.Allocation, len(rec.idx))
		for _, k := range rec.idx {
			a[units[k].ID] = true
		}
		if !fn(Candidate{Allocation: a, Cost: rec.cost}) {
			return false
		}
	}
}
