package checkpoint

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/models"
)

func frontsEqual(a, b []*core.Implementation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cost != b[i].Cost || a[i].Flexibility != b[i].Flexibility ||
			!a[i].Allocation.Equal(b[i].Allocation) {
			return false
		}
	}
	return true
}

// interruptedResult runs Explore with an injected cancellation at
// candidate k and returns the partial result.
func interruptedResult(t *testing.T, k int) *core.Result {
	t.Helper()
	s := models.SetTopBox()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := core.Options{Fault: faultinject.New().CancelAt(core.SiteEstimate, k).Bind(cancel)}
	r := core.ExploreContext(ctx, s, opts)
	if !r.Interrupted || r.Cursor != k {
		t.Fatalf("interrupt failed: interrupted=%v cursor=%d", r.Interrupted, r.Cursor)
	}
	return r
}

func TestSaveLoadResumeRoundtrip(t *testing.T) {
	s := models.SetTopBox()
	full := core.Explore(s, core.Options{})
	part := interruptedResult(t, full.Stats.PossibleAllocations/2)

	snap, err := FromResult(s, core.Options{}, part)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := (&Writer{Path: path}).Save(snap); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, snap) {
		t.Fatalf("snapshot changed across save/load:\n%+v\n%+v", loaded, snap)
	}
	res, err := loaded.Resume(s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cursor != part.Cursor || !frontsEqual(res.Front, part.Front) {
		t.Fatalf("resume state diverges from the interrupted result")
	}

	resumed := core.Explore(s, core.Options{Resume: res})
	if !frontsEqual(resumed.Front, full.Front) {
		t.Errorf("resumed-from-disk front differs from uninterrupted run")
	}
	// Compare through Semantic(): the resumed run restarts with a cold
	// evaluation cache, so solver-effort and cache counters may differ
	// while the semantic counters continue exactly.
	if !reflect.DeepEqual(resumed.Stats.Semantic(), full.Stats.Semantic()) {
		t.Errorf("resumed stats %+v\n  differ from uninterrupted %+v", resumed.Stats, full.Stats)
	}
}

func TestResumeRefusesSpecMismatch(t *testing.T) {
	settop := models.SetTopBox()
	part := interruptedResult(t, 50)
	snap, err := FromResult(settop, core.Options{}, part)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Resume(models.Decoder(), core.Options{}); err == nil ||
		!strings.Contains(err.Error(), "spec digest mismatch") {
		t.Fatalf("want spec digest refusal, got %v", err)
	}
}

func TestResumeRefusesOptionsMismatch(t *testing.T) {
	s := models.SetTopBox()
	part := interruptedResult(t, 50)
	snap, err := FromResult(s, core.Options{}, part)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Resume(s, core.Options{Weighted: true}); err == nil ||
		!strings.Contains(err.Error(), "options digest mismatch") {
		t.Fatalf("want options digest refusal, got %v", err)
	}
}

func TestOptionsDigestIgnoresRuntimeHooks(t *testing.T) {
	base := OptionsDigest(core.Options{})
	hooked := OptionsDigest(core.Options{
		Fault:         faultinject.New(),
		Progress:      func(core.Progress) {},
		ProgressEvery: 3,
		Resume:        &core.Resume{Cursor: 9},
	})
	if base != hooked {
		t.Fatal("runtime hooks leaked into the options digest")
	}
	if base == OptionsDigest(core.Options{MaxScan: 10}) {
		t.Fatal("scan-shaping option not in the digest")
	}
}

// TestOptionsDigestIgnoresCacheSwitch: -cache is a runtime/ablation
// switch with no semantic effect, so flipping it must not invalidate an
// existing checkpoint.
func TestOptionsDigestIgnoresCacheSwitch(t *testing.T) {
	if OptionsDigest(core.Options{}) != OptionsDigest(core.Options{DisableCache: true}) {
		t.Fatal("DisableCache leaked into the options digest")
	}
}

// TestResumeAcrossCacheModes: a snapshot taken by a cached run resumes
// under -cache=off (and vice versa) and still converges to the
// uninterrupted front.
func TestResumeAcrossCacheModes(t *testing.T) {
	s := models.SetTopBox()
	full := core.Explore(s, core.Options{})
	part := interruptedResult(t, 800)
	snap, err := FromResult(s, core.Options{}, part)
	if err != nil {
		t.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		opts := core.Options{DisableCache: disable}
		res, err := snap.Resume(s, opts)
		if err != nil {
			t.Fatalf("DisableCache=%v broke resume: %v", disable, err)
		}
		opts.Resume = res
		resumed := core.Explore(s, opts)
		if !frontsEqual(resumed.Front, full.Front) {
			t.Errorf("DisableCache=%v: resumed front differs from uninterrupted run", disable)
		}
	}
}

func TestLoadRefusesVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("want version refusal, got %v", err)
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte(`{"version": 1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt snapshot loaded")
	}
}

func TestResumeRefusesTamperedFront(t *testing.T) {
	s := models.SetTopBox()
	part := interruptedResult(t, 200)
	if len(part.Front) == 0 {
		t.Fatal("need a non-empty partial front")
	}
	snap, err := FromResult(s, core.Options{}, part)
	if err != nil {
		t.Fatal(err)
	}
	snap.Front[0].Flexibility += 1 // bit-rot the recorded objective
	if _, err := snap.Resume(s, core.Options{}); err == nil ||
		!strings.Contains(err.Error(), "refusing to resume") {
		t.Fatalf("want reconstruction refusal, got %v", err)
	}
}

// TestSaveAtomicUnderCrash: a crash (injected panic) between the temp
// write and the rename must leave the previously saved snapshot intact
// and loadable.
func TestSaveAtomicUnderCrash(t *testing.T) {
	s := models.SetTopBox()
	first, err := FromResult(s, core.Options{}, interruptedResult(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	second, err := FromResult(s, core.Options{}, interruptedResult(t, 100))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ck.json")
	w := &Writer{Path: path, Fault: faultinject.New().PanicAt(SiteRename, 1, "crash before rename")}
	if err := w.Save(first); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second save did not crash")
			}
		}()
		w.Save(second)
	}()

	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cursor != first.Cursor {
		t.Fatalf("crash corrupted the snapshot: cursor %d, want %d", loaded.Cursor, first.Cursor)
	}
}

func TestSaveWriteErrorInjected(t *testing.T) {
	w := &Writer{
		Path:  filepath.Join(t.TempDir(), "ck.json"),
		Fault: faultinject.New().ErrorAt(SiteWrite, 0, nil),
	}
	if err := w.Save(&Snapshot{Version: Version}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected write error, got %v", err)
	}
	if _, err := os.Stat(w.Path); !os.IsNotExist(err) {
		t.Fatal("failed save left a file behind")
	}
}

func TestSaveRenameErrorCleansTemp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	w := &Writer{Path: path, Fault: faultinject.New().ErrorAt(SiteRename, 0, nil)}
	if err := w.Save(&Snapshot{Version: Version}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected rename error, got %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file not cleaned up after rename failure")
	}
}

// TestCrashResumeMatchesUninterrupted is the acceptance scenario: a run
// checkpointing periodically via the Progress hook is killed by an
// injected panic mid-scan; the last snapshot on disk is loaded, resumed,
// and the final front and counters match the never-interrupted run.
func TestCrashResumeMatchesUninterrupted(t *testing.T) {
	s := models.SetTopBox()
	full := core.Explore(s, core.Options{})

	path := filepath.Join(t.TempDir(), "ck.json")
	w := &Writer{Path: path}
	opts := core.Options{
		ProgressEvery: 50,
		Fault:         faultinject.New().PanicAt(core.SiteEstimate, 500, "simulated crash"),
	}
	opts.Progress = func(p core.Progress) {
		snap, err := Capture(s, opts, p)
		if err != nil {
			t.Errorf("capture: %v", err)
			return
		}
		if err := w.Save(snap); err != nil {
			t.Errorf("save: %v", err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("the injected crash did not fire")
			}
		}()
		core.Explore(s, opts)
	}()

	snap, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cursor <= 0 || snap.Cursor > 500 {
		t.Fatalf("snapshot cursor %d outside the pre-crash window", snap.Cursor)
	}
	res, err := snap.Resume(s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resumed := core.Explore(s, core.Options{Resume: res})
	if !frontsEqual(resumed.Front, full.Front) {
		t.Errorf("crash+resume front differs from uninterrupted run")
	}
	if resumed.Stats.PossibleAllocations != full.Stats.PossibleAllocations ||
		resumed.Stats.Feasible != full.Stats.Feasible {
		t.Errorf("crash+resume counters diverge: %+v vs %+v", resumed.Stats, full.Stats)
	}
}

// TestDeadlineResumeMatchesUninterrupted covers the deadline
// interruption mode: an exhaustive-options scan (about a second on this
// model) is cut off by a short context deadline, snapshotted, and
// resumed to the uninterrupted front.
func TestDeadlineResumeMatchesUninterrupted(t *testing.T) {
	s := models.SetTopBox()
	opts := core.Options{DisableFlexBound: true, IncludeUselessComm: true}
	full := core.ExploreContext(context.Background(), s, opts)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	part := core.ExploreContext(ctx, s, opts)
	if !part.Interrupted {
		t.Skip("scan completed before the deadline on this machine")
	}
	if part.Reason != core.ReasonDeadline {
		t.Fatalf("reason=%q, want deadline", part.Reason)
	}

	snap, err := FromResult(s, opts, part)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := (&Writer{Path: path}).Save(snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Resume(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Resume = res
	resumed := core.ExploreContext(context.Background(), s, opts)
	if !frontsEqual(resumed.Front, full.Front) {
		t.Errorf("deadline+resume front differs from uninterrupted run")
	}
}

func TestSpecDigestStableAndDiscriminating(t *testing.T) {
	a, err := SpecDigest(models.SetTopBox())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpecDigest(models.SetTopBox())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("digest of identical specs differs — encoding is not canonical")
	}
	c, err := SpecDigest(models.Decoder())
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different specs collide")
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Fatalf("digest %q lacks scheme prefix", a)
	}
}

// TestPipelineCheckpointCrossModeResume: a checkpoint written from a
// Progress emission of the *pipelined* explorer loads, validates
// (digest compatibility is unaffected by worker count — workers and
// queue depth are call arguments, not digested options), and resumes to
// the uninterrupted front under either explorer. Snapshots are
// interchangeable between -workers=1 and -workers=N runs.
func TestPipelineCheckpointCrossModeResume(t *testing.T) {
	s := models.SetTopBox()
	full := core.Explore(s, core.Options{})

	path := filepath.Join(t.TempDir(), "ck.json")
	w := &Writer{Path: path}
	opts := core.Options{ProgressEvery: 16}
	saved := false
	opts.Progress = func(p core.Progress) {
		if saved || p.Cursor >= full.Cursor {
			return
		}
		snap, err := Capture(s, opts, p)
		if err != nil {
			t.Errorf("capture: %v", err)
			return
		}
		if err := w.Save(snap); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		saved = true
	}
	core.ExploreParallel(s, opts, 4, 8)
	if !saved {
		t.Fatal("no mid-pipeline checkpoint written")
	}

	snap, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.Pipeline.Workers != 4 {
		t.Errorf("snapshot lost the pipeline shape: %+v", snap.Stats.Pipeline)
	}
	res, err := snap.Resume(s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq := core.Explore(s, core.Options{Resume: res}); !frontsEqual(seq.Front, full.Front) {
		t.Errorf("sequential resume of a pipeline checkpoint diverges from the full run")
	}
	if par := core.ExploreParallel(s, core.Options{Resume: res}, 2, 4); !frontsEqual(par.Front, full.Front) {
		t.Errorf("pipelined resume of a pipeline checkpoint diverges from the full run")
	}
}

// TestOptionsDigestIgnoresBatch: -batch only sizes the parallel
// explorer's range jobs; the ordered commit makes results
// batch-size-invariant, so flipping it must not invalidate an existing
// checkpoint.
func TestOptionsDigestIgnoresBatch(t *testing.T) {
	base := OptionsDigest(core.Options{})
	for _, b := range []int{1, 4, 64} {
		if OptionsDigest(core.Options{Batch: b}) != base {
			t.Fatalf("Batch=%d leaked into the options digest", b)
		}
	}
}

// TestResumeAcrossBatchSizes: a checkpoint written mid-scan — at a
// cursor that is deliberately NOT a multiple of the resuming batch
// size, so the resumed run re-chunks the candidate stream on different
// boundaries — resumes under any batch size (and sequentially) and
// still converges to the uninterrupted front.
func TestResumeAcrossBatchSizes(t *testing.T) {
	s := models.SetTopBox()
	full := core.Explore(s, core.Options{})

	// Snapshot from a parallel run under Batch=4 at the first progress
	// emission past cursor 100: with ProgressEvery=1 the parallel
	// explorer emits at every batch commit, so a cursor of the form
	// 4k+2 (mod 64 != 0) exists in the emission stream.
	var snap *Snapshot
	opts := core.Options{ProgressEvery: 1, Batch: 4}
	opts.Progress = func(p core.Progress) {
		if snap != nil || p.Cursor < 100 || p.Cursor >= full.Cursor {
			return
		}
		sn, err := Capture(s, opts, p)
		if err != nil {
			t.Errorf("capture: %v", err)
			return
		}
		snap = sn
	}
	core.ExploreParallel(s, opts, 4, 8)
	if snap == nil {
		t.Fatal("no mid-scan checkpoint captured")
	}
	if snap.Cursor%64 == 0 {
		t.Fatalf("cursor %d is a batch-64 boundary; the test wants a mid-batch resume point", snap.Cursor)
	}

	for _, batch := range []int{0, 1, 64} {
		res, err := snap.Resume(s, core.Options{Batch: batch})
		if err != nil {
			t.Fatalf("Batch=%d refused the snapshot: %v", batch, err)
		}
		par := core.ExploreParallel(s, core.Options{Resume: res, Batch: batch}, 4, 8)
		if !frontsEqual(par.Front, full.Front) {
			t.Errorf("Batch=%d: resumed front diverges from the uninterrupted run", batch)
		}
		if par.Cursor != full.Cursor {
			t.Errorf("Batch=%d: resumed cursor %d, want %d", batch, par.Cursor, full.Cursor)
		}
	}
	res, err := snap.Resume(s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq := core.Explore(s, core.Options{Resume: res}); !frontsEqual(seq.Front, full.Front) {
		t.Errorf("sequential resume of a batched checkpoint diverges from the full run")
	}
}

// TestOptionsDigestIgnoresEnumerator (acceptance): the enumerator is a
// performance knob — both producers emit the bit-identical candidate
// stream — so choosing it must not invalidate an existing checkpoint.
func TestOptionsDigestIgnoresEnumerator(t *testing.T) {
	base := OptionsDigest(core.Options{})
	for _, e := range []core.Enumerator{core.EnumeratorBitset, core.EnumeratorSymbolic, "auto"} {
		if OptionsDigest(core.Options{Enumerator: e}) != base {
			t.Fatalf("Enumerator=%q leaked into the options digest", e)
		}
	}
}

// TestResumeAcrossEnumerators: a checkpoint written by a bitset-scan run
// resumes under the symbolic enumerator (and vice versa) and converges
// to the uninterrupted front at the uninterrupted cursor — the shared
// candidate stream makes the cursor transferable between producers.
func TestResumeAcrossEnumerators(t *testing.T) {
	s := models.SetTopBox()
	full := core.Explore(s, core.Options{})
	part := interruptedResult(t, 800)
	writeOpts := core.Options{Enumerator: core.EnumeratorBitset}
	snap, err := FromResult(s, writeOpts, part)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []core.Enumerator{core.EnumeratorSymbolic, core.EnumeratorBitset} {
		opts := core.Options{Enumerator: e}
		res, err := snap.Resume(s, opts)
		if err != nil {
			t.Fatalf("Enumerator=%q refused the bitset snapshot: %v", e, err)
		}
		opts.Resume = res
		resumed := core.Explore(s, opts)
		if !frontsEqual(resumed.Front, full.Front) {
			t.Errorf("Enumerator=%q: resumed front differs from uninterrupted run", e)
		}
		if resumed.Cursor != full.Cursor {
			t.Errorf("Enumerator=%q: resumed cursor %d, want %d", e, resumed.Cursor, full.Cursor)
		}
	}
}

// TestOptionsDigestIgnoresProducers: the producer count shards the
// candidate enumeration but the k-way merge restores the bit-identical
// stream, so flipping it must not invalidate an existing checkpoint.
func TestOptionsDigestIgnoresProducers(t *testing.T) {
	base := OptionsDigest(core.Options{})
	for _, p := range []int{1, 2, 8} {
		if OptionsDigest(core.Options{Producers: p}) != base {
			t.Fatalf("Producers=%d leaked into the options digest", p)
		}
	}
}

// TestResumeAcrossProducerCounts: a checkpoint written by a sharded run
// resumes under any other producer count — direct scan included — and
// converges to the uninterrupted front at the uninterrupted cursor: the
// merged stream is bit-identical for every shard count, so the cursor
// is transferable.
func TestResumeAcrossProducerCounts(t *testing.T) {
	s := models.SetTopBox()
	full := core.Explore(s, core.Options{})
	part := interruptedResult(t, 800)
	writeOpts := core.Options{Producers: 2}
	snap, err := FromResult(s, writeOpts, part)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 1, 3} {
		opts := core.Options{Producers: p}
		res, err := snap.Resume(s, opts)
		if err != nil {
			t.Fatalf("Producers=%d refused the sharded snapshot: %v", p, err)
		}
		opts.Resume = res
		resumed := core.Explore(s, opts)
		if !frontsEqual(resumed.Front, full.Front) {
			t.Errorf("Producers=%d: resumed front differs from uninterrupted run", p)
		}
		if resumed.Cursor != full.Cursor {
			t.Errorf("Producers=%d: resumed cursor %d, want %d", p, resumed.Cursor, full.Cursor)
		}
	}
	// And across the parallel explorer, which auto-shards.
	res, err := snap.Resume(s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if par := core.ExploreParallel(s, core.Options{Resume: res}, 4, 8); !frontsEqual(par.Front, full.Front) {
		t.Errorf("parallel resume of a sharded checkpoint diverges from the full run")
	}
}
