package checkpoint

import (
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy bounds the retries of a checkpoint save and shapes the
// backoff between attempts. Transient filesystem errors (a full page
// cache, a slow NFS rename, an injected fault) should not cost a
// long-running job its snapshot, so callers on the serving path wrap
// Save in SaveWithRetry; the jittered exponential backoff decorrelates
// concurrent writers that failed together.
//
// The policy is deterministic by construction: the jitter comes from a
// seeded generator (never the process-global source) and the sleeps go
// through an injectable Sleep, so tests can record the exact delay
// sequence. The zero value selects the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of Save attempts (1 = no retry);
	// <= 0 selects 3.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// further retry. <= 0 selects 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the un-jittered backoff; <= 0 selects 1s.
	MaxDelay time.Duration
	// Seed seeds the jitter generator. Concurrent writers should use
	// distinct seeds so their retries spread out; equal seeds are still
	// correct, just synchronized.
	Seed int64
	// Sleep is called with each backoff delay; nil selects time.Sleep.
	// Tests inject a recorder to make the schedule observable.
	Sleep func(time.Duration)
	// OnRetry, if non-nil, is called after each failed attempt that
	// will be retried, with the 1-based attempt number and its error —
	// the hook the server uses to count retries in /stats.
	OnRetry func(attempt int, err error)
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 10 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return time.Second
	}
	return p.MaxDelay
}

// backoff returns the jittered delay before retry number retry (1-based):
// equal-jitter over an exponential schedule, d/2 + uniform[0, d/2] where
// d = min(BaseDelay << (retry-1), MaxDelay).
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.baseDelay()
	for i := 1; i < retry && d < p.maxDelay(); i++ {
		d *= 2
	}
	if d > p.maxDelay() {
		d = p.maxDelay()
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// SaveWithRetry is Save under the retry policy: up to MaxAttempts
// attempts with jittered exponential backoff in between. Each attempt
// is a full Save, so the atomic write-rename guarantee holds throughout
// — a reader observes either the previous snapshot or the new one, no
// matter which attempt succeeded. Exhausting the attempts returns the
// last error, wrapped with the attempt count.
func (w *Writer) SaveWithRetry(snap *Snapshot, pol RetryPolicy) error {
	rng := rand.New(rand.NewSource(pol.Seed))
	sleep := pol.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = w.Save(snap)
		if err == nil {
			return nil
		}
		if attempt >= pol.maxAttempts() {
			return fmt.Errorf("checkpoint: save %s failed after %d attempt(s): %w", w.Path, attempt, err)
		}
		if pol.OnRetry != nil {
			pol.OnRetry(attempt, err)
		}
		sleep(pol.backoff(attempt, rng))
	}
}
