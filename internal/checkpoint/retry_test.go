package checkpoint

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/models"
)

// retrySnapshot builds a valid snapshot to exercise the writer with.
func retrySnapshot(t *testing.T) *Snapshot {
	t.Helper()
	s := models.SetTopBox()
	snap, err := FromResult(s, core.Options{}, core.Explore(s, core.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestSaveWithRetryRecoversTransientWrite: the first write attempt
// fails at the checkpoint/write site, the retry succeeds, and the file
// on disk is a loadable snapshot.
func TestSaveWithRetryRecoversTransientWrite(t *testing.T) {
	snap := retrySnapshot(t)
	path := filepath.Join(t.TempDir(), "ck.json")
	plan := faultinject.New().ErrorAt(SiteWrite, 0, nil)
	w := &Writer{Path: path, Fault: plan}

	var slept []time.Duration
	var retried []int
	pol := RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   8 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
		OnRetry:     func(attempt int, err error) { retried = append(retried, attempt) },
	}
	if err := w.SaveWithRetry(snap, pol); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("snapshot unreadable after retried save: %v", err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %v times, want exactly 1 backoff", len(slept))
	}
	if len(retried) != 1 || retried[0] != 1 {
		t.Fatalf("OnRetry calls = %v, want [1]", retried)
	}
	if got := len(plan.Firings()); got != 1 {
		t.Fatalf("fired %d rules, want 1", got)
	}
}

// TestSaveWithRetryRecoversTransientRename: same, for the
// checkpoint/rename site (the temp file was written, the rename failed).
func TestSaveWithRetryRecoversTransientRename(t *testing.T) {
	snap := retrySnapshot(t)
	path := filepath.Join(t.TempDir(), "ck.json")
	w := &Writer{Path: path, Fault: faultinject.New().ErrorAt(SiteRename, 0, nil)}
	pol := RetryPolicy{Sleep: func(time.Duration) {}}
	if err := w.SaveWithRetry(snap, pol); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("snapshot unreadable after retried save: %v", err)
	}
}

// TestSaveWithRetryExhausted: a persistent failure surfaces the last
// error (wrapping the injected sentinel) after exactly MaxAttempts
// attempts and MaxAttempts-1 sleeps.
func TestSaveWithRetryExhausted(t *testing.T) {
	snap := retrySnapshot(t)
	path := filepath.Join(t.TempDir(), "ck.json")
	w := &Writer{Path: path, Fault: faultinject.New().ErrorAt(SiteWrite, -1, nil)}

	var slept []time.Duration
	retries := 0
	pol := RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
		OnRetry:     func(int, error) { retries++ },
	}
	err := w.SaveWithRetry(snap, pol)
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error %v does not wrap the injected sentinel", err)
	}
	if len(slept) != 3 || retries != 3 {
		t.Fatalf("slept %d times, OnRetry %d times; want 3 and 3", len(slept), retries)
	}
}

// TestSaveWithRetryDeterministicSchedule: the same policy produces the
// same jittered delay sequence on every run — the seeded generator and
// the injected sleeper make the backoff fully reproducible.
func TestSaveWithRetryDeterministicSchedule(t *testing.T) {
	snap := retrySnapshot(t)
	schedule := func(seed int64) []time.Duration {
		w := &Writer{
			Path:  filepath.Join(t.TempDir(), "ck.json"),
			Fault: faultinject.New().ErrorAt(SiteWrite, -1, nil),
		}
		var slept []time.Duration
		pol := RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    40 * time.Millisecond,
			Seed:        seed,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		}
		if err := w.SaveWithRetry(snap, pol); err == nil {
			t.Fatal("want exhaustion")
		}
		return slept
	}
	a, b := schedule(7), schedule(7)
	if len(a) != 4 {
		t.Fatalf("want 4 backoffs, got %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic: %v vs %v", a, b)
		}
	}
	// Equal-jitter bounds: delay i sits in [d/2, d] for the exponential
	// un-jittered d capped at MaxDelay.
	caps := []time.Duration{10, 20, 40, 40}
	for i, d := range a {
		hi := caps[i] * time.Millisecond
		if d < hi/2 || d > hi {
			t.Errorf("backoff %d = %v outside [%v, %v]", i, d, hi/2, hi)
		}
	}
}

// TestSaveWithRetryFirstAttemptClean: a healthy writer neither sleeps
// nor reports retries.
func TestSaveWithRetryFirstAttemptClean(t *testing.T) {
	snap := retrySnapshot(t)
	w := &Writer{Path: filepath.Join(t.TempDir(), "ck.json")}
	pol := RetryPolicy{
		Sleep:   func(time.Duration) { t.Error("unexpected sleep") },
		OnRetry: func(int, error) { t.Error("unexpected retry") },
	}
	if err := w.SaveWithRetry(snap, pol); err != nil {
		t.Fatal(err)
	}
}
