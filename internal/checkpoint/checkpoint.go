// Package checkpoint makes long cost-ordered exploration scans
// crash-safe: a Writer periodically persists an atomic JSON snapshot of
// the scan cursor, the Pareto front, and the effort counters, and a
// Snapshot can be revalidated and turned back into a core.Resume after
// a crash, a deadline, or a SIGINT.
//
// Snapshots are written with the classic write-to-temp-then-rename
// protocol, so a reader never observes a torn file: a crash at any
// point leaves either the previous snapshot or the new one. Resume is
// refused unless the snapshot's specification digest and exploration
// options digest both match the current run — continuing a scan cursor
// against a different specification would silently mislabel the
// candidate sequence. The file format is versioned and documented in
// docs/checkpoint-format.md.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// Version is the snapshot schema version; Load refuses other versions.
const Version = 1

// Failpoint sites of the checkpoint I/O path (auto-indexed per save,
// see faultinject.Plan.Count).
const (
	// SiteWrite fires before the temp file is written.
	SiteWrite = "checkpoint/write"
	// SiteRename fires after the temp file is written, before the
	// atomic rename — a panic here simulates a crash between the two.
	SiteRename = "checkpoint/rename"
)

// FrontEntry is one Pareto-front member in wire form. Only the
// allocation is authoritative: Resume reconstructs the implementation
// deterministically and refuses the snapshot if cost or flexibility
// disagree with the recorded values.
type FrontEntry struct {
	Allocation  []string `json:"allocation"`
	Cost        float64  `json:"cost"`
	Flexibility float64  `json:"flexibility"`
}

// Snapshot is the versioned, self-validating state of a cost-ordered
// scan.
type Snapshot struct {
	Version        int          `json:"version"`
	SpecName       string       `json:"specName"`
	SpecDigest     string       `json:"specDigest"`
	OptsDigest     string       `json:"optsDigest"`
	Cursor         int          `json:"cursor"`
	BestFlex       float64      `json:"bestFlex"`
	MaxFlexibility float64      `json:"maxFlexibility"`
	Front          []FrontEntry `json:"front"`
	Stats          core.Stats   `json:"stats"`
}

// SpecDigest returns "sha256:<hex>" over the specification's canonical
// JSON encoding. Two specifications digest equal iff they enumerate the
// same cost-ordered candidate sequence and implement candidates
// identically, which is what makes a scan cursor transferable.
func SpecDigest(s *spec.Spec) (string, error) {
	data, err := s.MarshalJSON()
	if err != nil {
		return "", fmt.Errorf("checkpoint: digest spec %q: %w", s.Name, err)
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// digestExcluded is the documented list of core.Options fields
// OptionsDigest deliberately leaves out of the digest: runtime hooks
// and performance knobs that never change what a completed scan
// returns. Every Options field must either be formatted into the
// digest or appear here — flexvet FX004 enforces the split.
var digestExcluded = map[string]bool{
	// DisableCache only trades CPU for memory; differential tests
	// assert cache on/off runs are semantically identical.
	"DisableCache": true,
	// Batch only sizes the parallel explorer's range jobs; the ordered
	// commit replays every batch against the exact bound, so fronts and
	// semantic counters are batch-size-invariant (pinned by the
	// differential grid test). Excluding it lets a checkpoint written
	// under one batch size resume under any other.
	"Batch": true,
	// Enumerator selects how the possible-allocation stream is produced
	// (bitset scan vs symbolic BDD search), not what it contains: both
	// producers emit the bit-identical cost-ordered candidate sequence,
	// cursor for cursor (pinned by the enumerator differential grid
	// test). Excluding it lets a checkpoint written under one enumerator
	// resume under the other.
	"Enumerator": true,
	// Producers shards candidate production across goroutines and
	// merges the shards back into the bit-identical single-producer
	// stream (pinned by the producers dimension of the differential
	// grid test), so like Enumerator it never changes what a scan
	// returns. Excluding it lets a checkpoint written under one
	// producer count resume under any other.
	"Producers": true,
	// Fault is the fault-injection hook used by robustness tests.
	"Fault": true,
	// Progress and ProgressEvery only control reporting cadence.
	"Progress":      true,
	"ProgressEvery": true,
	// Resume is the mechanism consuming the digest, not an input to it.
	"Resume": true,
}

// OptionsDigest digests the exploration options that affect the
// candidate sequence or the per-candidate evaluation. Runtime hooks
// (Fault, Progress, Resume) are deliberately excluded: they never
// change what a completed scan returns.
func OptionsDigest(o core.Options) string {
	canon := fmt.Sprintf(
		"v%d|timing=%s|weighted=%t|uselesscomm=%t|noflexbound=%t|stopatmax=%t|allbehaviours=%t|maxecs=%d|maxscan=%d|maxbindnodes=%d",
		Version, o.Timing, o.Weighted, o.IncludeUselessComm, o.DisableFlexBound,
		o.StopAtMaxFlex, o.AllBehaviours, o.MaxECS, o.MaxScan, o.MaxBindNodes)
	sum := sha256.Sum256([]byte(canon))
	return "sha256:" + hex.EncodeToString(sum[:])
}

// Capture builds a snapshot from an exploration progress report.
func Capture(s *spec.Spec, opts core.Options, p core.Progress) (*Snapshot, error) {
	sd, err := SpecDigest(s)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Version:        Version,
		SpecName:       s.Name,
		SpecDigest:     sd,
		OptsDigest:     OptionsDigest(opts),
		Cursor:         p.Cursor,
		BestFlex:       p.BestFlex,
		MaxFlexibility: p.MaxFlexibility,
		Stats:          p.Stats,
	}
	for _, im := range p.Front {
		fe := FrontEntry{Cost: im.Cost, Flexibility: im.Flexibility}
		for _, id := range im.Allocation.IDs() {
			fe.Allocation = append(fe.Allocation, string(id))
		}
		snap.Front = append(snap.Front, fe)
	}
	return snap, nil
}

// FromResult builds a snapshot from a finished (possibly interrupted)
// exploration result — the final flush before printing a partial front.
func FromResult(s *spec.Spec, opts core.Options, r *core.Result) (*Snapshot, error) {
	best := 0.0
	for _, im := range r.Front {
		if im.Flexibility > best {
			best = im.Flexibility
		}
	}
	return Capture(s, opts, core.Progress{
		Cursor:         r.Cursor,
		BestFlex:       best,
		MaxFlexibility: r.MaxFlexibility,
		Front:          r.Front,
		Stats:          r.Stats,
	})
}

// Writer persists snapshots to Path with atomic write-rename. The zero
// Fault is inert.
type Writer struct {
	Path  string
	Fault *faultinject.Plan
}

// Save writes the snapshot atomically: marshal, write Path+".tmp",
// rename over Path. A crash (or injected panic) between write and
// rename leaves the previous snapshot intact.
func (w *Writer) Save(snap *Snapshot) error {
	if err := w.Fault.Count(SiteWrite); err != nil {
		return fmt.Errorf("checkpoint: save %s: %w", w.Path, err)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: save %s: %w", w.Path, err)
	}
	tmp := w.Path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("checkpoint: save %s: %w", w.Path, err)
	}
	if err := w.Fault.Count(SiteRename); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: save %s: %w", w.Path, err)
	}
	if err := os.Rename(tmp, w.Path); err != nil {
		return fmt.Errorf("checkpoint: save %s: %w", w.Path, err)
	}
	return nil
}

// Load reads a snapshot and checks its schema version.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("checkpoint: load %s: %w", path, err)
	}
	if snap.Version != Version {
		return nil, fmt.Errorf("checkpoint: load %s: snapshot version %d, this build reads version %d",
			path, snap.Version, Version)
	}
	return &snap, nil
}

// Validate checks that the snapshot belongs to this specification and
// these exploration options; resuming across either mismatch is
// refused because the scan cursor would index a different candidate
// sequence.
func (snap *Snapshot) Validate(s *spec.Spec, opts core.Options) error {
	sd, err := SpecDigest(s)
	if err != nil {
		return err
	}
	if sd != snap.SpecDigest {
		return fmt.Errorf("checkpoint: spec digest mismatch (snapshot %s taken for %s, current spec %q is %s); refusing to resume",
			snap.SpecDigest, snap.SpecName, s.Name, sd)
	}
	if od := OptionsDigest(opts); od != snap.OptsDigest {
		return fmt.Errorf("checkpoint: exploration-options digest mismatch (snapshot %s, current %s); refusing to resume",
			snap.OptsDigest, od)
	}
	return nil
}

// Resume validates the snapshot and turns it back into exploration
// state: every front allocation is re-implemented deterministically,
// and the snapshot is refused if a reconstruction disagrees with the
// recorded cost or flexibility (corruption, or a drift the digests
// could not see).
func (snap *Snapshot) Resume(s *spec.Spec, opts core.Options) (*core.Resume, error) {
	if err := snap.Validate(s, opts); err != nil {
		return nil, err
	}
	r := &core.Resume{Cursor: snap.Cursor, Stats: snap.Stats}
	for _, fe := range snap.Front {
		a := spec.Allocation{}
		for _, id := range fe.Allocation {
			a[hgraph.ID(id)] = true
		}
		im := core.Implement(s, a, opts, nil)
		if im == nil {
			return nil, fmt.Errorf("checkpoint: front allocation %s no longer implements any behaviour; refusing to resume", a)
		}
		if im.Cost != fe.Cost || im.Flexibility != fe.Flexibility {
			return nil, fmt.Errorf("checkpoint: front allocation %s reconstructs to (c=%g, f=%g) but the snapshot recorded (c=%g, f=%g); refusing to resume",
				a, im.Cost, im.Flexibility, fe.Cost, fe.Flexibility)
		}
		r.Front = append(r.Front, im)
	}
	return r, nil
}
