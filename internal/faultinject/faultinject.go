// Package faultinject provides a deterministic fault-injection plan
// for testing the robustness of long-running scans. Code under test
// declares named failpoints ("sites") and fires them with the index of
// the unit of work being processed (for the exploration engine, the
// cost-ordered candidate index); a test registers rules that trigger an
// error, a panic, or a context cancellation at an exact (site, index)
// pair. Because the rules key on indices rather than wall-clock time,
// every injected failure is exactly reproducible, including under
// concurrent execution.
//
// A nil *Plan is inert: production code calls Fire/Count on the nil
// plan at full speed with no allocation and no locking.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the sentinel wrapped by every injected error, so tests
// and callers can recognize injected failures with errors.Is.
var ErrInjected = errors.New("injected fault")

// Kind is the effect of a fired rule.
type Kind int

const (
	// KindError makes Fire return an error.
	KindError Kind = iota
	// KindPanic makes Fire panic.
	KindPanic
	// KindCancel makes Fire call the bound context.CancelFunc and
	// return nil; the scan notices through its usual ctx checks.
	KindCancel
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindCancel:
		return "cancel"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule triggers a fault when Fire(Site, i) is called with i == Index
// (Index < 0 matches every index).
type Rule struct {
	Site  string
	Index int
	Kind  Kind
	// Err is returned by KindError rules; nil selects a default that
	// wraps ErrInjected.
	Err error
	// Msg is the payload of KindPanic rules.
	Msg string
}

// Firing records one triggered rule, for test assertions.
type Firing struct {
	Site  string
	Index int
	Kind  Kind
}

// Plan is a set of fault-injection rules plus per-site hit counters.
// All methods are safe for concurrent use.
type Plan struct {
	mu      sync.Mutex
	rules   []Rule
	counts  map[string]int
	cancel  context.CancelFunc
	firings []Firing
}

// New returns an empty plan.
func New() *Plan {
	return &Plan{counts: map[string]int{}}
}

// ErrorAt registers an error rule; err == nil selects the default
// injected error. Returns the plan for chaining.
func (p *Plan) ErrorAt(site string, index int, err error) *Plan {
	return p.add(Rule{Site: site, Index: index, Kind: KindError, Err: err})
}

// PanicAt registers a panic rule.
func (p *Plan) PanicAt(site string, index int, msg string) *Plan {
	return p.add(Rule{Site: site, Index: index, Kind: KindPanic, Msg: msg})
}

// CancelAt registers a cancellation rule; Bind the context's cancel
// func before the run starts.
func (p *Plan) CancelAt(site string, index int) *Plan {
	return p.add(Rule{Site: site, Index: index, Kind: KindCancel})
}

// Bind attaches the CancelFunc that KindCancel rules invoke.
func (p *Plan) Bind(cancel context.CancelFunc) *Plan {
	p.mu.Lock()
	p.cancel = cancel
	p.mu.Unlock()
	return p
}

func (p *Plan) add(r Rule) *Plan {
	p.mu.Lock()
	p.rules = append(p.rules, r)
	p.mu.Unlock()
	return p
}

// Fire triggers the first rule registered for (site, index): KindError
// rules return their error, KindPanic rules panic, KindCancel rules
// cancel the bound context and return nil. Without a matching rule (or
// on a nil plan) Fire returns nil.
func (p *Plan) Fire(site string, index int) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	var match *Rule
	for i := range p.rules {
		r := &p.rules[i]
		if r.Site == site && (r.Index < 0 || r.Index == index) {
			match = r
			break
		}
	}
	if match == nil {
		p.mu.Unlock()
		return nil
	}
	p.firings = append(p.firings, Firing{Site: site, Index: index, Kind: match.Kind})
	kind, err, msg, cancel := match.Kind, match.Err, match.Msg, p.cancel
	p.mu.Unlock()

	switch kind {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: %s[%d]: %s", site, index, msg))
	case KindCancel:
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		if err == nil {
			err = fmt.Errorf("%w at %s[%d]", ErrInjected, site, index)
		}
		return err
	}
}

// Count fires the site with its auto-incremented hit counter (0-based):
// the i-th Count call for a site behaves like Fire(site, i). Intended
// for sites without a natural work index, such as checkpoint writes.
func (p *Plan) Count(site string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	idx := p.counts[site]
	p.counts[site] = idx + 1
	p.mu.Unlock()
	return p.Fire(site, idx)
}

// Firings returns a copy of the log of triggered rules, in firing
// order.
func (p *Plan) Firings() []Firing {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Firing(nil), p.firings...)
}
