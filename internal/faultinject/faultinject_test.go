package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFireExactIndex(t *testing.T) {
	p := New().ErrorAt("site", 3, nil)
	for i := 0; i < 6; i++ {
		err := p.Fire("site", i)
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("index 3: want ErrInjected, got %v", err)
			}
		} else if err != nil {
			t.Fatalf("index %d: want nil, got %v", i, err)
		}
	}
	if err := p.Fire("other", 3); err != nil {
		t.Fatalf("unrelated site fired: %v", err)
	}
}

func TestFireEveryIndex(t *testing.T) {
	p := New().ErrorAt("site", -1, nil)
	for i := 0; i < 4; i++ {
		if err := p.Fire("site", i); !errors.Is(err, ErrInjected) {
			t.Fatalf("index %d: want ErrInjected, got %v", i, err)
		}
	}
}

func TestFireCustomError(t *testing.T) {
	custom := errors.New("disk on fire")
	if err := New().ErrorAt("s", 0, custom).Fire("s", 0); !errors.Is(err, custom) {
		t.Fatalf("want custom error, got %v", err)
	}
}

func TestFirePanic(t *testing.T) {
	p := New().PanicAt("s", 1, "boom")
	if err := p.Fire("s", 0); err != nil {
		t.Fatalf("index 0: %v", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "s[1]") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic message %q", msg)
		}
	}()
	p.Fire("s", 1)
}

func TestFireCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New().CancelAt("s", 2).Bind(cancel)
	if err := p.Fire("s", 2); err != nil {
		t.Fatalf("cancel rule returned error: %v", err)
	}
	if ctx.Err() == nil {
		t.Fatal("bound context not cancelled")
	}
}

func TestCancelWithoutBind(t *testing.T) {
	// A cancel rule with no bound CancelFunc must be a no-op, not a crash.
	if err := New().CancelAt("s", 0).Fire("s", 0); err != nil {
		t.Fatalf("unbound cancel: %v", err)
	}
}

func TestCountAutoIndex(t *testing.T) {
	p := New().ErrorAt("w", 2, nil)
	for i := 0; i < 2; i++ {
		if err := p.Count("w"); err != nil {
			t.Fatalf("count %d: %v", i, err)
		}
	}
	if err := p.Count("w"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third count: want ErrInjected, got %v", err)
	}
	// Counters are per site.
	if err := p.Count("v"); err != nil {
		t.Fatalf("fresh site: %v", err)
	}
}

func TestNilPlanInert(t *testing.T) {
	var p *Plan
	if err := p.Fire("s", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Count("s"); err != nil {
		t.Fatal(err)
	}
	if f := p.Firings(); f != nil {
		t.Fatalf("nil plan logged firings: %v", f)
	}
}

func TestFirings(t *testing.T) {
	p := New().ErrorAt("a", 1, nil).PanicAt("b", 0, "x")
	p.Fire("a", 0)
	p.Fire("a", 1)
	func() {
		defer func() { recover() }()
		p.Fire("b", 0)
	}()
	want := []Firing{{Site: "a", Index: 1, Kind: KindError}, {Site: "b", Index: 0, Kind: KindPanic}}
	got := p.Firings()
	if len(got) != len(want) {
		t.Fatalf("firings %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	custom := errors.New("first")
	p := New().ErrorAt("s", -1, custom).PanicAt("s", 0, "second")
	if err := p.Fire("s", 0); !errors.Is(err, custom) {
		t.Fatalf("want first rule's error, got %v", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindError: "error", KindPanic: "panic", KindCancel: "cancel", Kind(9): "Kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind %d: %q, want %q", int(k), got, want)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	p := New().ErrorAt("s", 7, nil)
	var wg sync.WaitGroup
	hits := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if p.Fire("s", i%10) != nil {
					hits[g]++
				}
				p.Count("c")
			}
		}(g)
	}
	wg.Wait()
	for g, h := range hits {
		if h != 10 {
			t.Errorf("goroutine %d: %d hits, want 10", g, h)
		}
	}
}
