// Package profiling wires the standard -cpuprofile/-memprofile/-trace
// flags into the CLI commands. The commands cannot rely on defers for
// teardown — they exit through os.Exit on several paths — so Start
// returns an explicit stop function the command must call before any
// exit that should produce usable profiles.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the profiling output paths of a command.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Enabled reports whether any profile was requested.
func (f Flags) Enabled() bool {
	return f.CPUProfile != "" || f.MemProfile != "" || f.Trace != ""
}

// Problems returns every reason the flag combination is rejected (the
// command exits with status 2 on a non-empty result, like its other
// flag validations): two profiles writing to the same file would
// silently corrupt each other.
func (f Flags) Problems() []string {
	var out []string
	seen := map[string]string{}
	check := func(name, path string) {
		if path == "" {
			return
		}
		if prev, ok := seen[path]; ok {
			out = append(out, fmt.Sprintf("-%s and -%s write to the same file %q", prev, name, path))
			return
		}
		seen[path] = name
	}
	check("cpuprofile", f.CPUProfile)
	check("memprofile", f.MemProfile)
	check("trace", f.Trace)
	return out
}

// Start begins the requested CPU profile and execution trace. The
// returned stop ends them and writes the heap profile; it is safe to
// call exactly once, and must be called on every exit path after a
// successful Start.
func (f Flags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	abort := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			abort()
			return nil, err
		}
		if err = trace.Start(traceFile); err != nil {
			traceFile.Close()
			abort()
			return nil, err
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			firstErr = cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				runtime.GC() // materialize up-to-date allocation stats
				if err := pprof.WriteHeapProfile(mf); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := mf.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}, nil
}
