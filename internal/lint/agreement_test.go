package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/spec"
)

// minimal returns the JSON of a well-formed two-process specification
// with the given fragments substituted in.
func minimal(problemRoot, archRoot, mappings string) string {
	if problemRoot == "" {
		problemRoot = `{"id":"GP","vertices":[{"id":"A"},{"id":"B"}],"edges":[{"from":"A","to":"B"}]}`
	}
	if archRoot == "" {
		archRoot = `{"id":"GA","vertices":[{"id":"R1","attrs":{"cost":10}}]}`
	}
	if mappings == "" {
		mappings = `[{"process":"A","resource":"R1","latency":5},{"process":"B","resource":"R1","latency":5}]`
	}
	return `{"name":"t","problem":{"name":"p","root":` + problemRoot +
		`},"arch":{"name":"a","root":` + archRoot + `},"mappings":` + mappings + `}`
}

// TestValidateRejectionsSurfaceAsErrors: every class of specification
// that spec validation rejects must surface as at least one
// error-severity SL0xx diagnostic, so the preflight never hides a
// rejection behind a softer severity.
func TestValidateRejectionsSurfaceAsErrors(t *testing.T) {
	cases := []struct {
		name     string
		json     string
		wantCode string
	}{
		{
			"duplicate ID",
			minimal(`{"id":"GP","vertices":[{"id":"A"},{"id":"A"},{"id":"B"}]}`, "", ""),
			"SL009",
		},
		{
			"empty ID",
			minimal(`{"id":"GP","vertices":[{"id":"A"},{"id":"B"},{"id":""}]}`, "", ""),
			"SL009",
		},
		{
			"edge to unknown node",
			minimal(`{"id":"GP","vertices":[{"id":"A"},{"id":"B"}],"edges":[{"from":"A","to":"NOPE"}]}`, "", ""),
			"SL009",
		},
		{
			"interface without clusters",
			minimal(`{"id":"GP","vertices":[{"id":"A"},{"id":"B"}],"interfaces":[{"id":"I1"}]}`, "", ""),
			"SL009",
		},
		{
			"missing port binding",
			minimal(`{"id":"GP","vertices":[{"id":"A"},{"id":"B"}],"interfaces":[{"id":"I1","ports":[{"name":"in"}],"clusters":[{"id":"g1","vertices":[{"id":"C"}]}]}]}`, "",
				`[{"process":"A","resource":"R1","latency":5},{"process":"B","resource":"R1","latency":5},{"process":"C","resource":"R1","latency":5}]`),
			"SL004",
		},
		{
			"dangling port binding",
			minimal(`{"id":"GP","vertices":[{"id":"A"},{"id":"B"}],"interfaces":[{"id":"I1","ports":[{"name":"in"}],"clusters":[{"id":"g1","vertices":[{"id":"C"}],"portBinding":{"in":"NOPE"}}]}]}`, "",
				`[{"process":"A","resource":"R1","latency":5},{"process":"B","resource":"R1","latency":5},{"process":"C","resource":"R1","latency":5}]`),
			"SL004",
		},
		{
			"duplicate interface port",
			minimal(`{"id":"GP","vertices":[{"id":"A"},{"id":"B"}],"interfaces":[{"id":"I1","ports":[{"name":"in"},{"name":"in"}],"clusters":[{"id":"g1","vertices":[{"id":"C"}],"portBinding":{"in":"C"}}]}]}`, "",
				`[{"process":"A","resource":"R1","latency":5},{"process":"B","resource":"R1","latency":5},{"process":"C","resource":"R1","latency":5}]`),
			"SL004",
		},
		{
			"mapping from unknown process",
			minimal("", "", `[{"process":"A","resource":"R1","latency":5},{"process":"B","resource":"R1","latency":5},{"process":"GHOST","resource":"R1","latency":5}]`),
			"SL010",
		},
		{
			"mapping onto unknown resource",
			minimal("", "", `[{"process":"A","resource":"R1","latency":5},{"process":"B","resource":"NOPE","latency":5}]`),
			"SL010",
		},
		{
			"duplicate mapping",
			minimal("", "", `[{"process":"A","resource":"R1","latency":5},{"process":"A","resource":"R1","latency":5},{"process":"B","resource":"R1","latency":5}]`),
			"SL010",
		},
		{
			"negative latency",
			minimal("", "", `[{"process":"A","resource":"R1","latency":-5},{"process":"B","resource":"R1","latency":5}]`),
			"SL005",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := spec.ReadLenient(strings.NewReader(tc.json))
			if err != nil {
				t.Fatalf("lenient read failed: %v", err)
			}
			if s.Validate() == nil {
				t.Fatal("spec.Validate accepts the spec; test case is broken")
			}
			rep := lint.NewEngine().Run(s)
			if !rep.HasErrors() {
				t.Fatalf("lint reports no errors for a Validate-rejected spec; diagnostics: %v", rep.Diagnostics)
			}
			found := false
			for _, d := range rep.Diagnostics {
				if d.Code == tc.wantCode && d.Severity == lint.Error {
					found = true
				}
			}
			if !found {
				t.Errorf("want an error with code %s, got %v", tc.wantCode, rep.Diagnostics)
			}
		})
	}
}

// TestCorpusAgreement checks both directions of the Validate/lint
// contract on the shipped corpus: lint errors on every file Validate
// rejects, and any file lint finds error-free passes Validate.
func TestCorpusAgreement(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "lint", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		s, err := spec.ReadLenient(strings.NewReader(string(data)))
		if err != nil {
			t.Errorf("%s: lenient read failed: %v", f, err)
			continue
		}
		rep := lint.NewEngine().Run(s)
		if s.Validate() != nil && !rep.HasErrors() {
			t.Errorf("%s: Validate rejects but lint reports no errors", f)
		}
		if !rep.HasErrors() && len(rep.Diagnostics) == 0 {
			if err := s.Validate(); err != nil {
				t.Errorf("%s: lint-clean but Validate rejects: %v", f, err)
			}
		}
	}
}
