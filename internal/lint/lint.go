// Package lint is a multi-pass static analyzer for hierarchical
// specification graphs (spec.Spec).
//
// The EXPLORE algorithm silently produces empty or misleading Pareto
// fronts when its input is malformed in ways Validate does not catch:
// a leaf without mapping edges makes every allocation impossible, a
// process whose fastest mapping already exceeds its period can never
// pass the Liu–Layland check, data-dependent processes whose candidate
// resources share no bus can never be bound. This package turns those
// modelling bugs into located, coded diagnostics before exploration
// runs.
//
// Architecture: an Engine runs a sequence of passes over a shared
// Context. The Context is built once per specification and precomputes
// the facts several passes need (element paths, structural problems,
// the union communication adjacency), so each pass is a pure function
// from facts to diagnostics and a new check is one file implementing
// Pass.
//
// Diagnostics carry a stable code (SL001…), a severity, the path of
// the offending element, a message and a suggested fix; cmd/speclint
// renders them as text or JSON, and cmd/explore / cmd/casestudy run
// the engine as a preflight. The analyzer accepts specifications that
// fail Validate (see spec.ReadLenient): every Validate rejection
// surfaces as an error-severity diagnostic.
package lint

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// Severity grades a diagnostic.
type Severity int

// Severities, ordered so that higher is more severe.
const (
	// Info marks an observation that needs no action.
	Info Severity = iota
	// Warn marks a likely modelling mistake that does not make the
	// specification unusable.
	Warn
	// Error marks a defect that makes exploration wrong, empty or
	// impossible. speclint exits non-zero iff an Error is present.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Diagnostic is one located finding.
type Diagnostic struct {
	// Code is the stable diagnostic code, e.g. "SL001".
	Code string `json:"code"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Element is the path of the offending element inside the
	// specification, e.g. "problem/GP/IApp/gD/ID/gD1/PD1" or
	// "mapping/PU1=>uP2".
	Element string `json:"element"`
	// Message states the defect.
	Message string `json:"message"`
	// Fix suggests a repair; may be empty.
	Fix string `json:"fix,omitempty"`
}

// String renders the diagnostic as a single line.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s %s %s: %s", d.Severity, d.Code, d.Element, d.Message)
	if d.Fix != "" {
		s += " (fix: " + d.Fix + ")"
	}
	return s
}

// Pass is one static-analysis check. Implementations live one per file
// in this package; adding a check means implementing Pass and listing
// it in AllPasses.
type Pass interface {
	// Code is the stable diagnostic code the pass emits, e.g. "SL001".
	Code() string
	// Name is a short kebab-case identifier, e.g. "unmappable-leaf".
	Name() string
	// Doc is a one-paragraph description (shown by speclint -codes and
	// docs/lint-codes.md).
	Doc() string
	// Run analyzes the shared context and returns its findings.
	Run(ctx *Context) []Diagnostic
}

// AllPasses returns every registered pass in code order.
func AllPasses() []Pass {
	return []Pass{
		UnmappableLeafPass{},
		DeadClusterPass{},
		IsolatedResourcePass{},
		PortConsistencyPass{},
		AttributePass{},
		TimingPass{},
		CommInfeasiblePass{},
		DegenerateInterfacePass{},
		StructurePass{},
		MappingPass{},
	}
}

// Engine runs a fixed sequence of passes over one shared Context.
type Engine struct {
	passes []Pass
}

// NewEngine creates an engine; with no arguments it runs every
// registered pass.
func NewEngine(passes ...Pass) *Engine {
	if len(passes) == 0 {
		passes = AllPasses()
	}
	return &Engine{passes: passes}
}

// Run lints one specification. The specification may be unvalidated
// (spec.ReadLenient) — structural defects become diagnostics, never
// panics.
func (e *Engine) Run(s *spec.Spec) *Report {
	rep := &Report{Spec: s.Name}
	if s.Problem == nil || s.Arch == nil {
		rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
			Code: "SL009", Severity: Error, Element: "spec/" + s.Name,
			Message: "problem and architecture graphs are required",
			Fix:     `provide both "problem" and "arch" graphs`,
		})
		return rep
	}
	ctx := newContext(s)
	for _, p := range e.passes {
		rep.Diagnostics = append(rep.Diagnostics, p.Run(ctx)...)
	}
	sort.SliceStable(rep.Diagnostics, func(i, j int) bool {
		a, b := rep.Diagnostics[i], rep.Diagnostics[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Element != b.Element {
			return a.Element < b.Element
		}
		return a.Message < b.Message
	})
	return rep
}

// Report is the result of linting one specification.
type Report struct {
	// Spec is the specification name.
	Spec string `json:"spec"`
	// Diagnostics is sorted by code, then element, then message.
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// HasErrors reports whether any diagnostic has Error severity.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Counts returns the number of diagnostics per severity.
func (r *Report) Counts() (errors, warnings, infos int) {
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case Error:
			errors++
		case Warn:
			warnings++
		default:
			infos++
		}
	}
	return
}
