package lint

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/spec"
)

// AttributePass (SL005) checks the numeric annotations the exploration
// consumes: allocation costs, execution latencies, timing periods and
// flexibility weights. Negative values are errors (they corrupt cost
// ordering, utilization sums and the weighted metric); an allocatable
// unit without any cost attribute and a zero-latency mapping of a
// timed process are reported as likely omissions.
type AttributePass struct{}

// Code implements Pass.
func (AttributePass) Code() string { return "SL005" }

// Name implements Pass.
func (AttributePass) Name() string { return "attribute-sanity" }

// Doc implements Pass.
func (AttributePass) Doc() string {
	return "A cost, latency, period or weight attribute is negative (breaking cost " +
		"ordering, utilization analysis or the weighted flexibility metric), an " +
		"allocatable unit carries no cost attribute at all (it is explored as free), " +
		"or a timed process has a zero-latency mapping (missing latency?)."
}

// Run implements Pass.
func (p AttributePass) Run(ctx *Context) []Diagnostic {
	var out []Diagnostic
	err := func(elem, format string, args ...any) {
		out = append(out, Diagnostic{
			Code: p.Code(), Severity: Error, Element: elem,
			Message: fmt.Sprintf(format, args...),
			Fix:     "use a non-negative value",
		})
	}

	// Architecture costs, at every level.
	for _, v := range ctx.Spec.Arch.Leaves() {
		if c := v.Attrs.GetDefault(spec.AttrCost, 0); c < 0 {
			err(ctx.ArchPath(v.ID), "resource %q has negative cost %g", v.ID, c)
		}
	}
	for _, c := range ctx.Spec.Arch.Clusters() {
		if cost := c.Attrs.GetDefault(spec.AttrCost, 0); cost < 0 {
			err(ctx.ArchPath(c.ID), "architecture cluster %q has negative cost %g", c.ID, cost)
		}
	}

	// Problem periods and weights.
	for _, v := range ctx.ProblemLeaves {
		if t := v.Attrs.GetDefault(spec.AttrPeriod, 0); t < 0 {
			err(ctx.ProblemPath(v.ID), "process %q has negative period %g", v.ID, t)
		}
	}
	for _, c := range ctx.Spec.Problem.Clusters() {
		if w := c.Attrs.GetDefault(spec.AttrWeight, 1); w < 0 {
			err(ctx.ProblemPath(c.ID), "cluster %q has negative weight %g", c.ID, w)
		}
	}

	// Mapping latencies.
	for _, m := range ctx.Spec.Mappings {
		if m.Latency < 0 {
			err(MappingPath(m), "mapping %v has negative latency", m)
		} else if m.Latency == 0 && ctx.Spec.Period(m.Process) > 0 {
			out = append(out, Diagnostic{
				Code: p.Code(), Severity: Warn, Element: MappingPath(m),
				Message: fmt.Sprintf("mapping %v of timed process %q has zero latency; the timing check sees no load", m, m.Process),
				Fix:     "annotate the mapping with the core execution time",
			})
		}
	}

	// Allocatable units without any explicit cost.
	for _, u := range ctx.Units {
		if u.Cost != 0 || unitHasCostAttr(ctx, u) {
			continue
		}
		out = append(out, Diagnostic{
			Code: p.Code(), Severity: Warn, Element: ctx.ArchPath(u.ID),
			Message: fmt.Sprintf("allocatable unit %q carries no cost attribute; exploration treats it as free", u.ID),
			Fix:     fmt.Sprintf("annotate %q (or its resources) with a cost", u.ID),
		})
	}
	return out
}

// unitHasCostAttr reports whether the unit element or any resource it
// provides carries an explicit cost attribute.
func unitHasCostAttr(ctx *Context, u alloc.Unit) bool {
	if v := ctx.Spec.Arch.VertexByID(u.ID); v != nil {
		if _, ok := v.Attrs.Get(spec.AttrCost); ok {
			return true
		}
	}
	if c := ctx.Spec.Arch.ClusterByID(u.ID); c != nil {
		if _, ok := c.Attrs.Get(spec.AttrCost); ok {
			return true
		}
	}
	for _, r := range u.Resources {
		if v := ctx.Spec.Arch.VertexByID(r); v != nil {
			if _, ok := v.Attrs.Get(spec.AttrCost); ok {
				return true
			}
		}
	}
	return false
}
