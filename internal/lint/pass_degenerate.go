package lint

// DegenerateInterfacePass (SL008) finds interfaces refined by exactly
// one cluster. Interfaces exist to hold alternatives; a one-cluster
// interface is pure nesting overhead. In the problem graph it adds no
// behaviour variant (Def. 4 counts a factor of 1), so it contributes
// nothing to flexibility; in the architecture graph it models a
// "reconfigurable" slot that can only ever hold one design.
type DegenerateInterfacePass struct{}

// Code implements Pass.
func (DegenerateInterfacePass) Code() string { return "SL008" }

// Name implements Pass.
func (DegenerateInterfacePass) Name() string { return "degenerate-interface" }

// Doc implements Pass.
func (DegenerateInterfacePass) Doc() string {
	return "An interface is refined by exactly one cluster. In the problem graph it " +
		"multiplies the variant count by one and contributes nothing to flexibility; " +
		"in the architecture graph it offers no reconfigurability. Either add " +
		"alternatives or inline the cluster."
}

// Run implements Pass.
func (p DegenerateInterfacePass) Run(ctx *Context) []Diagnostic {
	var out []Diagnostic
	for _, i := range ctx.Spec.Problem.Interfaces() {
		if len(i.Clusters) != 1 {
			continue
		}
		out = append(out, Diagnostic{
			Code: p.Code(), Severity: Warn, Element: ctx.ProblemPath(i.ID),
			Message: "interface \"" + string(i.ID) + "\" has exactly one refining cluster; it adds no behaviour variant and contributes nothing to flexibility",
			Fix:     "add an alternative cluster to \"" + string(i.ID) + "\" or inline its single cluster",
		})
	}
	for _, i := range ctx.Spec.Arch.Interfaces() {
		if len(i.Clusters) != 1 {
			continue
		}
		out = append(out, Diagnostic{
			Code: p.Code(), Severity: Info, Element: ctx.ArchPath(i.ID),
			Message: "architecture interface \"" + string(i.ID) + "\" has exactly one refining cluster; the slot offers no reconfigurability",
			Fix:     "add an alternative design to \"" + string(i.ID) + "\" or inline its single cluster",
		})
	}
	return out
}
