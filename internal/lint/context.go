package lint

import (
	"repro/internal/alloc"
	"repro/internal/hgraph"
	"repro/internal/spec"
)

// Context carries the specification under analysis plus the shared
// facts passes need. It is built once per Engine.Run; every computation
// here must tolerate specifications that fail Validate.
type Context struct {
	Spec *spec.Spec

	// ProblemIssues and ArchIssues are the structural well-formedness
	// problems of the two graphs (hgraph.Problems).
	ProblemIssues []hgraph.Problem
	ArchIssues    []hgraph.Problem

	// ProblemLeaves and ArchLeaves are the leaf vertices of the graphs.
	ProblemLeaves []*hgraph.Vertex
	ArchLeaves    []*hgraph.Vertex

	// Units are the allocatable architecture units (top-level leaves and
	// clusters of top-level interfaces).
	Units []alloc.Unit

	// ArchAdj is the union communication adjacency over architecture
	// leaves: two leaves are adjacent when some edge, under some cluster
	// selection, links them (interface endpoints resolved through port
	// bindings of every refining cluster). It over-approximates any
	// single instantaneous configuration, which is the safe direction
	// for error-severity findings.
	ArchAdj map[hgraph.ID]map[hgraph.ID]bool

	archLeafSet  map[hgraph.ID]bool
	problemPaths map[hgraph.ID]string
	archPaths    map[hgraph.ID]string
}

func newContext(s *spec.Spec) *Context {
	ctx := &Context{
		Spec:          s,
		ProblemIssues: s.Problem.Problems(),
		ArchIssues:    s.Arch.Problems(),
		ProblemLeaves: s.Problem.Leaves(),
		ArchLeaves:    s.Arch.Leaves(),
		Units:         alloc.Units(s),
		ArchAdj:       map[hgraph.ID]map[hgraph.ID]bool{},
		archLeafSet:   map[hgraph.ID]bool{},
		problemPaths:  elementPaths("problem", s.Problem),
		archPaths:     elementPaths("arch", s.Arch),
	}
	for _, v := range ctx.ArchLeaves {
		ctx.archLeafSet[v.ID] = true
	}
	link := func(a, b hgraph.ID) {
		if ctx.ArchAdj[a] == nil {
			ctx.ArchAdj[a] = map[hgraph.ID]bool{}
		}
		ctx.ArchAdj[a][b] = true
	}
	for _, e := range s.Arch.Edges() {
		for _, x := range s.Arch.EndpointLeaves(e.From, e.FromPort) {
			for _, y := range s.Arch.EndpointLeaves(e.To, e.ToPort) {
				link(x, y)
				link(y, x)
			}
		}
	}
	return ctx
}

// IsArchLeaf reports whether id names an architecture leaf vertex.
func (ctx *Context) IsArchLeaf(id hgraph.ID) bool { return ctx.archLeafSet[id] }

// ValidMappings returns the mapping edges of a process whose resource
// actually is an architecture leaf — on lenient specs, mappings onto
// unknown elements (reported by SL010) are excluded so downstream
// passes reason only about usable edges.
func (ctx *Context) ValidMappings(process hgraph.ID) []*spec.Mapping {
	var out []*spec.Mapping
	for _, m := range ctx.Spec.MappingsFor(process) {
		if ctx.archLeafSet[m.Resource] {
			out = append(out, m)
		}
	}
	return out
}

// CandidateResources returns the architecture leaves a process can be
// mapped onto (the paper's reachable resource set R_ij), sorted.
func (ctx *Context) CandidateResources(process hgraph.ID) []hgraph.ID {
	ms := ctx.ValidMappings(process)
	out := make([]hgraph.ID, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.Resource)
	}
	return out
}

// CanEverCommunicate reports whether operations bound to r1 and r2
// could ever exchange data in some configuration: same resource, a
// direct link, or a one-hop route through a communication resource.
func (ctx *Context) CanEverCommunicate(r1, r2 hgraph.ID) bool {
	if r1 == r2 {
		return true
	}
	if ctx.ArchAdj[r1][r2] {
		return true
	}
	for b := range ctx.ArchAdj[r1] {
		if ctx.Spec.IsComm(b) && ctx.ArchAdj[b][r2] {
			return true
		}
	}
	return false
}

// ProblemPath returns the hierarchical path of a problem-graph element.
func (ctx *Context) ProblemPath(id hgraph.ID) string {
	if p, ok := ctx.problemPaths[id]; ok {
		return p
	}
	return "problem/" + string(id)
}

// ArchPath returns the hierarchical path of an architecture element.
func (ctx *Context) ArchPath(id hgraph.ID) string {
	if p, ok := ctx.archPaths[id]; ok {
		return p
	}
	return "arch/" + string(id)
}

// MappingPath returns the element path of a mapping edge.
func MappingPath(m *spec.Mapping) string {
	return "mapping/" + string(m.Process) + "=>" + string(m.Resource)
}

// elementPaths maps every element ID to its slash-separated path from
// the graph label through the cluster/interface hierarchy. On duplicate
// IDs the first (outermost) occurrence wins.
func elementPaths(label string, g *hgraph.Graph) map[hgraph.ID]string {
	paths := map[hgraph.ID]string{}
	put := func(id hgraph.ID, p string) {
		if _, dup := paths[id]; !dup && id != "" {
			paths[id] = p
		}
	}
	var walk func(c *hgraph.Cluster, prefix string)
	walk = func(c *hgraph.Cluster, prefix string) {
		cp := prefix + "/" + string(c.ID)
		put(c.ID, cp)
		for _, v := range c.Vertices {
			put(v.ID, cp+"/"+string(v.ID))
		}
		for _, e := range c.Edges {
			put(e.ID, cp+"/"+string(e.ID))
		}
		for _, i := range c.Interfaces {
			ip := cp + "/" + string(i.ID)
			put(i.ID, ip)
			for _, sub := range i.Clusters {
				walk(sub, ip)
			}
		}
	}
	walk(g.Root, label)
	return paths
}
