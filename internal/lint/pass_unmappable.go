package lint

import "fmt"

// UnmappableLeafPass (SL001) finds problem-graph leaves with no mapping
// edge onto any existing architecture resource. Such a leaf makes every
// cluster containing it unimplementable in every allocation — if it
// sits at the top level, EXPLORE returns an empty front.
type UnmappableLeafPass struct{}

// Code implements Pass.
func (UnmappableLeafPass) Code() string { return "SL001" }

// Name implements Pass.
func (UnmappableLeafPass) Name() string { return "unmappable-leaf" }

// Doc implements Pass.
func (UnmappableLeafPass) Doc() string {
	return "A problem-graph leaf has no mapping edge onto any existing architecture " +
		"resource. No binding can ever activate it, so every cluster that contains it " +
		"is unimplementable; at the top level this guarantees an empty Pareto front."
}

// Run implements Pass.
func (p UnmappableLeafPass) Run(ctx *Context) []Diagnostic {
	var out []Diagnostic
	for _, v := range ctx.ProblemLeaves {
		if len(ctx.ValidMappings(v.ID)) > 0 {
			continue
		}
		out = append(out, Diagnostic{
			Code: p.Code(), Severity: Error, Element: ctx.ProblemPath(v.ID),
			Message: fmt.Sprintf("process %q has no mapping edge onto any architecture resource", v.ID),
			Fix:     fmt.Sprintf("add a mapping edge from %q to a resource that can implement it", v.ID),
		})
	}
	return out
}
