package lint

import "repro/internal/hgraph"

// StructurePass (SL009) surfaces the structural well-formedness
// violations of either graph that are not port-mapping issues (those
// are SL004): empty and duplicate IDs, interfaces without clusters,
// and edges with dangling endpoints. These are the hard invariants
// spec.Validate enforces; lint reports all of them at once instead of
// stopping at the first.
type StructurePass struct{}

// Code implements Pass.
func (StructurePass) Code() string { return "SL009" }

// Name implements Pass.
func (StructurePass) Name() string { return "structure" }

// Doc implements Pass.
func (StructurePass) Doc() string {
	return "A graph violates a structural invariant: an element has an empty or " +
		"duplicate ID, an interface has no refining cluster, or an edge endpoint " +
		"names a node that is not visible in its cluster. Such graphs are rejected " +
		"by validation and cannot be explored."
}

// Run implements Pass.
func (p StructurePass) Run(ctx *Context) []Diagnostic {
	isStructKind := func(k hgraph.ProblemKind) bool {
		switch k {
		case hgraph.ProblemEmptyID, hgraph.ProblemDuplicateID, hgraph.ProblemInterfaceNoCluster, hgraph.ProblemEdgeEndpoint:
			return true
		}
		return false
	}
	var out []Diagnostic
	emit := func(label string, issues []hgraph.Problem, path func(hgraph.ID) string) {
		for _, pr := range issues {
			if !isStructKind(pr.Kind) {
				continue
			}
			elem := label
			if pr.Element != "" {
				elem = path(pr.Element)
			}
			out = append(out, Diagnostic{
				Code: p.Code(), Severity: Error, Element: elem,
				Message: pr.Message,
				Fix:     "restore the structural invariant (unique non-empty IDs, >=1 cluster per interface, visible edge endpoints)",
			})
		}
	}
	emit("problem", ctx.ProblemIssues, ctx.ProblemPath)
	emit("arch", ctx.ArchIssues, ctx.ArchPath)
	return out
}
