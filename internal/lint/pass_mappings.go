package lint

import (
	"fmt"

	"repro/internal/hgraph"
)

// MappingPass (SL010) checks the user-defined mapping edges E_M: each
// must link an existing problem-graph leaf to an existing
// architecture-graph leaf, and no (process, resource) pair may appear
// twice. Mappings failing these rules are ignored by every analysis,
// which usually hides a typo in an element name.
type MappingPass struct{}

// Code implements Pass.
func (MappingPass) Code() string { return "SL010" }

// Name implements Pass.
func (MappingPass) Name() string { return "mapping-sanity" }

// Doc implements Pass.
func (MappingPass) Doc() string {
	return "A mapping edge does not link a problem-graph leaf to an " +
		"architecture-graph leaf, or the same (process, resource) pair is mapped " +
		"twice. Such edges are rejected by validation; a dangling endpoint is " +
		"usually a typo in an element name."
}

// Run implements Pass.
func (p MappingPass) Run(ctx *Context) []Diagnostic {
	var out []Diagnostic
	seen := map[[2]hgraph.ID]bool{}
	for _, m := range ctx.Spec.Mappings {
		if ctx.Spec.Problem.VertexByID(m.Process) == nil {
			out = append(out, Diagnostic{
				Code: p.Code(), Severity: Error, Element: MappingPath(m),
				Message: fmt.Sprintf("mapping %v: %q is not a problem-graph leaf", m, m.Process),
				Fix:     fmt.Sprintf("point the mapping at an existing process (is %q a typo?)", m.Process),
			})
		}
		if !ctx.IsArchLeaf(m.Resource) {
			out = append(out, Diagnostic{
				Code: p.Code(), Severity: Error, Element: MappingPath(m),
				Message: fmt.Sprintf("mapping %v: %q is not an architecture-graph leaf", m, m.Resource),
				Fix:     fmt.Sprintf("point the mapping at an existing resource (is %q a typo?)", m.Resource),
			})
		}
		key := [2]hgraph.ID{m.Process, m.Resource}
		if seen[key] {
			out = append(out, Diagnostic{
				Code: p.Code(), Severity: Error, Element: MappingPath(m),
				Message: fmt.Sprintf("duplicate mapping %v", m),
				Fix:     "remove the duplicate edge",
			})
		}
		seen[key] = true
	}
	return out
}
