package lint

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/spec"
)

// WriteText renders the report as human-readable lines followed by a
// one-line summary, mirroring the format of conventional linters.
func (r *Report) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	errs, warns, infos := r.Counts()
	_, err := fmt.Fprintf(w, "%s: %d error(s), %d warning(s), %d info(s)\n", r.Spec, errs, warns, infos)
	return err
}

// WriteJSON renders the report as indented JSON. Diagnostics is always
// an array, never null.
func (r *Report) WriteJSON(w io.Writer) error {
	out := *r
	if out.Diagnostics == nil {
		out.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// WriteJSONReports renders several reports as one indented JSON array.
func WriteJSONReports(w io.Writer, reports []*Report) error {
	out := make([]Report, len(reports))
	for i, r := range reports {
		out[i] = *r
		if out[i].Diagnostics == nil {
			out[i].Diagnostics = []Diagnostic{}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Preflight lints the specification with every registered pass, writes
// any findings to w, and returns an error iff the report contains
// error-severity diagnostics. cmd/explore and cmd/casestudy call this
// before exploring.
func Preflight(s *spec.Spec, w io.Writer) error {
	rep := NewEngine().Run(s)
	if len(rep.Diagnostics) > 0 {
		if err := rep.WriteText(w); err != nil {
			return err
		}
	}
	if rep.HasErrors() {
		errs, _, _ := rep.Counts()
		return fmt.Errorf("lint: %d error(s) in specification %q", errs, s.Name)
	}
	return nil
}
