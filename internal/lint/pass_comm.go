package lint

import (
	"fmt"
	"sort"

	"repro/internal/hgraph"
)

// CommInfeasiblePass (SL007) checks that every data dependence of the
// problem graph can be implemented by at least one binding. A problem
// edge between two processes needs its endpoints bound either to the
// same resource, to directly linked resources, or to resources joined
// by a communication resource. When no pair of candidate resources
// admits any of these, every binding is rejected by the communication
// feasibility rule and the edge makes all variants containing it
// unimplementable.
type CommInfeasiblePass struct{}

// Code implements Pass.
func (CommInfeasiblePass) Code() string { return "SL007" }

// Name implements Pass.
func (CommInfeasiblePass) Name() string { return "comm-infeasible" }

// Doc implements Pass.
func (CommInfeasiblePass) Doc() string {
	return "A problem-graph dependence cannot be implemented by any binding: no pair " +
		"of candidate resources of its endpoint processes is the same resource, " +
		"directly linked, or joined through a communication resource. Every variant " +
		"containing the edge is infeasible."
}

// Run implements Pass.
func (p CommInfeasiblePass) Run(ctx *Context) []Diagnostic {
	type pair struct{ a, b hgraph.ID }
	reported := map[string]map[pair]bool{}
	var out []Diagnostic
	for _, e := range ctx.Spec.Problem.Edges() {
		froms := ctx.Spec.Problem.EndpointLeaves(e.From, e.FromPort)
		tos := ctx.Spec.Problem.EndpointLeaves(e.To, e.ToPort)
		for _, p1 := range froms {
			for _, p2 := range tos {
				if p1 == p2 {
					continue
				}
				r1s := ctx.CandidateResources(p1)
				r2s := ctx.CandidateResources(p2)
				if len(r1s) == 0 || len(r2s) == 0 {
					continue // SL001 territory
				}
				feasible := false
				for _, r1 := range r1s {
					for _, r2 := range r2s {
						if ctx.CanEverCommunicate(r1, r2) {
							feasible = true
							break
						}
					}
					if feasible {
						break
					}
				}
				if feasible {
					continue
				}
				elem := ctx.ProblemPath(e.ID)
				if reported[elem] == nil {
					reported[elem] = map[pair]bool{}
				}
				if reported[elem][pair{p1, p2}] {
					continue
				}
				reported[elem][pair{p1, p2}] = true
				out = append(out, Diagnostic{
					Code: p.Code(), Severity: Error, Element: elem,
					Message: fmt.Sprintf("dependence %s->%s between %q and %q is communication-infeasible: no candidate resource pair is linked, shared, or joined by a bus (candidates %v vs %v)",
						e.From, e.To, p1, p2, r1s, r2s),
					Fix: fmt.Sprintf("add a bus linking the resources of %q and %q, or map both onto a shared resource", p1, p2),
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Message < out[j].Message })
	return out
}
