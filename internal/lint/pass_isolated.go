package lint

import (
	"fmt"

	"repro/internal/hgraph"
)

// IsolatedResourcePass (SL003) finds architecture leaves that have no
// incident edge (neither a local edge nor a port binding routing
// external edges to them) and no mapping edge onto them. Allocating
// such a resource only adds cost: nothing can run on it and nothing
// can route through it.
type IsolatedResourcePass struct{}

// Code implements Pass.
func (IsolatedResourcePass) Code() string { return "SL003" }

// Name implements Pass.
func (IsolatedResourcePass) Name() string { return "isolated-resource" }

// Doc implements Pass.
func (IsolatedResourcePass) Doc() string {
	return "An architecture resource has no incident edge, is not bound to any " +
		"interface port, and no mapping edge targets it. It can neither execute a " +
		"process nor carry communication, so allocating it is pure wasted cost."
}

// Run implements Pass.
func (p IsolatedResourcePass) Run(ctx *Context) []Diagnostic {
	// connected collects every leaf that some edge or port binding can
	// reach, at any level of the hierarchy.
	connected := map[hgraph.ID]bool{}
	var walk func(c *hgraph.Cluster)
	walk = func(c *hgraph.Cluster) {
		for _, e := range c.Edges {
			connected[e.From] = true
			connected[e.To] = true
		}
		for _, t := range c.PortBinding {
			connected[t] = true
		}
		for _, i := range c.Interfaces {
			for _, sub := range i.Clusters {
				walk(sub)
			}
		}
	}
	walk(ctx.Spec.Arch.Root)

	var out []Diagnostic
	for _, v := range ctx.ArchLeaves {
		if connected[v.ID] || len(ctx.Spec.MappingsOnto(v.ID)) > 0 {
			continue
		}
		kind := "resource"
		if ctx.Spec.IsComm(v.ID) {
			kind = "communication resource"
		}
		out = append(out, Diagnostic{
			Code: p.Code(), Severity: Warn, Element: ctx.ArchPath(v.ID),
			Message: fmt.Sprintf("%s %q has no links and no mapping edges; allocating it is wasted cost", kind, v.ID),
			Fix:     fmt.Sprintf("connect %q to the architecture, map a process onto it, or remove it", v.ID),
		})
	}
	return out
}
