package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/models"
	"repro/internal/spec"
)

// The shipped models are the reference inputs of every experiment; they
// must lint clean (no errors, no warnings — info-severity observations
// are acceptable).
func TestModelsLintClean(t *testing.T) {
	specs := []*spec.Spec{
		models.SetTopBox(),
		models.Decoder(),
		models.SDR(),
		models.Synthetic(models.DefaultSynthetic(1)),
		models.Synthetic(models.DefaultSynthetic(7)),
	}
	for _, s := range specs {
		rep := lint.NewEngine().Run(s)
		errs, warns, _ := rep.Counts()
		if errs > 0 || warns > 0 {
			t.Errorf("model %q: %d error(s), %d warning(s):", s.Name, errs, warns)
			for _, d := range rep.Diagnostics {
				if d.Severity >= lint.Warn {
					t.Errorf("  %s", d)
				}
			}
		}
	}
}
