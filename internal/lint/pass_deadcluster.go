package lint

import (
	"fmt"

	"repro/internal/hgraph"
)

// DeadClusterPass (SL002) finds problem-graph clusters that no resource
// allocation can ever activate: even with every allocatable unit
// present, some vertex of the cluster stays unmappable, or some of its
// interfaces has no activatable refinement. Dead clusters inflate the
// variant count |V_S| without ever contributing to flexibility; a dead
// root means no possible allocation exists at all and EXPLORE returns
// an empty front.
type DeadClusterPass struct{}

// Code implements Pass.
func (DeadClusterPass) Code() string { return "SL002" }

// Name implements Pass.
func (DeadClusterPass) Name() string { return "dead-cluster" }

// Doc implements Pass.
func (DeadClusterPass) Doc() string {
	return "A problem-graph cluster cannot be activated by any resource allocation, " +
		"even the full one — one of its own processes is unmappable or one of its " +
		"interfaces has no activatable refinement. The cluster contributes nothing to " +
		"flexibility and inflates the design-space headline; a dead root cluster " +
		"guarantees an empty Pareto front."
}

// Run implements Pass.
func (p DeadClusterPass) Run(ctx *Context) []Diagnostic {
	// alive mirrors alloc.SupportableClusters under the full allocation,
	// but is evaluated for every cluster independently of its ancestors
	// so a single dead cluster does not drag its healthy descendants
	// into the report.
	memo := map[hgraph.ID]bool{}
	var alive func(c *hgraph.Cluster) bool
	alive = func(c *hgraph.Cluster) bool {
		if v, seen := memo[c.ID]; seen {
			return v
		}
		memo[c.ID] = true // break cycles on malformed graphs
		res := true
		for _, v := range c.Vertices {
			if len(ctx.ValidMappings(v.ID)) == 0 {
				res = false
				break
			}
		}
		if res {
			for _, i := range c.Interfaces {
				any := false
				for _, sub := range i.Clusters {
					if alive(sub) {
						any = true
					}
				}
				if !any && len(i.Clusters) > 0 {
					res = false
					break
				}
			}
		}
		memo[c.ID] = res
		return res
	}

	var out []Diagnostic
	for _, c := range ctx.Spec.Problem.Clusters() {
		if alive(c) {
			continue
		}
		sev := Warn
		msg := fmt.Sprintf("cluster %q can never be activated by any resource allocation; it adds behaviour variants that no implementation realizes", c.ID)
		fix := fmt.Sprintf("map the unmappable processes below %q, or remove the cluster", c.ID)
		if c.ID == ctx.Spec.Problem.Root.ID {
			sev = Error
			msg = fmt.Sprintf("the always-active top level %q is not implementable by any allocation; exploration will return an empty front", c.ID)
			fix = "ensure every top-level process and at least one cluster per top-level interface is mappable"
		}
		out = append(out, Diagnostic{
			Code: p.Code(), Severity: sev, Element: ctx.ProblemPath(c.ID),
			Message: msg, Fix: fix,
		})
	}
	return out
}
