package lint

import "repro/internal/hgraph"

// PortConsistencyPass (SL004) reports port-mapping inconsistencies
// across interface/cluster boundaries in either graph: clusters that do
// not bind every port of the interface they refine, bindings that
// target nodes outside the cluster or ports the interface never
// declared, interfaces declaring a port twice, and edges whose
// interface endpoints name missing ports (or whose vertex endpoints
// name any port). Flattening either fails or silently drops
// dependences on such graphs.
type PortConsistencyPass struct{}

// Code implements Pass.
func (PortConsistencyPass) Code() string { return "SL004" }

// Name implements Pass.
func (PortConsistencyPass) Name() string { return "port-inconsistency" }

// Doc implements Pass.
func (PortConsistencyPass) Doc() string {
	return "A port mapping is inconsistent across an interface/cluster boundary: a " +
		"refining cluster misses a binding or binds to a non-internal node or an " +
		"undeclared port, an interface declares a port twice, or an edge names a " +
		"port that does not exist. Flattening cannot resolve such edges."
}

// Run implements Pass.
func (p PortConsistencyPass) Run(ctx *Context) []Diagnostic {
	isPortKind := func(k hgraph.ProblemKind) bool {
		return k == hgraph.ProblemPortBinding || k == hgraph.ProblemEdgePort || k == hgraph.ProblemDuplicatePort
	}
	var out []Diagnostic
	emit := func(issues []hgraph.Problem, path func(hgraph.ID) string) {
		for _, pr := range issues {
			if !isPortKind(pr.Kind) {
				continue
			}
			out = append(out, Diagnostic{
				Code: p.Code(), Severity: Error, Element: path(pr.Element),
				Message: pr.Message,
				Fix:     "align the interface's port list with the cluster's portBinding and the attaching edges",
			})
		}
	}
	emit(ctx.ProblemIssues, ctx.ProblemPath)
	emit(ctx.ArchIssues, ctx.ArchPath)
	return out
}
