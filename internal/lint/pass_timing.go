package lint

import (
	"fmt"
	"math"

	"repro/internal/sched"
)

// TimingPass (SL006) performs a per-process best-case schedulability
// check. For a timed process the utilization it contributes is at least
// min-latency/period, no matter which resource it is bound to and what
// else runs there. If even that lower bound exceeds 1 the process can
// never meet its period under any policy; if it exceeds the paper's
// 69% Liu–Layland limit on its own, every binding that shares the
// process's best resource with anything else is rejected.
type TimingPass struct{}

// Code implements Pass.
func (TimingPass) Code() string { return "SL006" }

// Name implements Pass.
func (TimingPass) Name() string { return "unsatisfiable-timing" }

// Doc implements Pass.
func (TimingPass) Doc() string {
	return "A timed process is unschedulable in the best case: its minimal execution " +
		"latency over all mapping edges exceeds its period (no policy can ever meet " +
		"the constraint), or the ratio alone exceeds the paper's 69% utilization " +
		"limit, leaving no headroom to share the resource."
}

// Run implements Pass.
func (p TimingPass) Run(ctx *Context) []Diagnostic {
	var out []Diagnostic
	for _, v := range ctx.ProblemLeaves {
		period := ctx.Spec.Period(v.ID)
		if period <= 0 {
			continue
		}
		ms := ctx.ValidMappings(v.ID)
		if len(ms) == 0 {
			continue // SL001 territory
		}
		minLat := math.Inf(1)
		for _, m := range ms {
			if m.Latency < minLat {
				minLat = m.Latency
			}
		}
		switch {
		case minLat > period:
			out = append(out, Diagnostic{
				Code: p.Code(), Severity: Error, Element: ctx.ProblemPath(v.ID),
				Message: fmt.Sprintf("process %q can never meet its period: minimal latency %g over all mappings exceeds period %g", v.ID, minLat, period),
				Fix:     fmt.Sprintf("add a faster mapping for %q or relax its period", v.ID),
			})
		case minLat/period > sched.PaperUtilizationLimit:
			out = append(out, Diagnostic{
				Code: p.Code(), Severity: Warn, Element: ctx.ProblemPath(v.ID),
				Message: fmt.Sprintf("process %q alone loads its best resource to %.0f%%, above the paper's 69%% utilization limit; it cannot share a resource with any other timed process", v.ID, 100*minLat/period),
				Fix:     fmt.Sprintf("add a faster mapping for %q or expect it to monopolize a resource", v.ID),
			})
		}
	}
	return out
}
