package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/spec"
)

func readCorpus(t *testing.T, name string) *spec.Spec {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "testdata", "lint", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := spec.ReadLenient(f)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSeverityStrings(t *testing.T) {
	cases := map[lint.Severity]string{lint.Info: "info", lint.Warn: "warn", lint.Error: "error"}
	for sev, want := range cases {
		if sev.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(sev), sev.String(), want)
		}
		data, err := json.Marshal(sev)
		if err != nil || string(data) != `"`+want+`"` {
			t.Errorf("Marshal(%v) = %s, %v", sev, data, err)
		}
	}
}

func TestPassRegistry(t *testing.T) {
	passes := lint.AllPasses()
	if len(passes) < 8 {
		t.Fatalf("only %d passes registered, want >= 8", len(passes))
	}
	seen := map[string]bool{}
	for _, p := range passes {
		if p.Code() == "" || p.Name() == "" || p.Doc() == "" {
			t.Errorf("pass %T has empty metadata", p)
		}
		if seen[p.Code()] {
			t.Errorf("duplicate code %s", p.Code())
		}
		seen[p.Code()] = true
	}
}

// TestReportSorted: diagnostics must come out ordered by code, element,
// message so output (and golden files) are deterministic.
func TestReportSorted(t *testing.T) {
	rep := lint.NewEngine().Run(readCorpus(t, "SL002.json"))
	if len(rep.Diagnostics) < 2 {
		t.Fatal("expected several diagnostics")
	}
	ok := sort.SliceIsSorted(rep.Diagnostics, func(i, j int) bool {
		a, b := rep.Diagnostics[i], rep.Diagnostics[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Element != b.Element {
			return a.Element < b.Element
		}
		return a.Message < b.Message
	})
	if !ok {
		t.Errorf("diagnostics not sorted: %v", rep.Diagnostics)
	}
}

func TestPreflight(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.Preflight(readCorpus(t, "clean.json"), &buf); err != nil {
		t.Errorf("clean spec: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("clean spec produced output: %s", buf.String())
	}
	buf.Reset()
	err := lint.Preflight(readCorpus(t, "SL001.json"), &buf)
	if err == nil {
		t.Error("defective spec: want error")
	}
	if !strings.Contains(buf.String(), "SL001") {
		t.Errorf("preflight output misses SL001:\n%s", buf.String())
	}
}

func TestNilGraphsDiagnostic(t *testing.T) {
	rep := lint.NewEngine().Run(&spec.Spec{Name: "empty"})
	if !rep.HasErrors() {
		t.Fatal("spec without graphs must be an error")
	}
	if rep.Diagnostics[0].Code != "SL009" {
		t.Errorf("code = %s, want SL009", rep.Diagnostics[0].Code)
	}
}

func TestWriteJSONNeverNull(t *testing.T) {
	var buf bytes.Buffer
	rep := lint.NewEngine().Run(readCorpus(t, "clean.json"))
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "null") {
		t.Errorf("JSON contains null: %s", buf.String())
	}
}
