package bitset

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Add(%d) not visible", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("count=%d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 7 {
		t.Fatalf("remove failed: %v", s)
	}
	if s.Has(-1) || s.Has(1000) {
		t.Fatal("out-of-range Has must be false")
	}
	s.Remove(-1)
	s.Remove(1000) // no panic
	if s.Empty() {
		t.Fatal("set is not empty")
	}
	s.Clear()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("Clear left elements behind")
	}
}

func TestSetRelations(t *testing.T) {
	a, b := New(100), New(100)
	for _, i := range []int{3, 50, 99} {
		a.Add(i)
		b.Add(i)
	}
	if !a.Equal(b) || !a.SubsetOf(b) || !b.SubsetOf(a) {
		t.Fatal("equal sets must be mutual subsets")
	}
	b.Add(70)
	if a.Equal(b) {
		t.Fatal("different sets compare equal")
	}
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("subset relation wrong")
	}
	if !a.Intersects(b) {
		t.Fatal("overlapping sets must intersect")
	}
	c := New(100)
	c.Add(1)
	if c.Intersects(a) {
		t.Fatal("disjoint sets must not intersect")
	}
	// Different sized ranges compare by content.
	d := New(500)
	for _, i := range []int{3, 50, 99} {
		d.Add(i)
	}
	if !d.Equal(a) || !a.Equal(d) {
		t.Fatal("size-independent equality failed")
	}
	if !a.SubsetOf(d) || !d.SubsetOf(a) {
		t.Fatal("size-independent subset failed")
	}
	d.Add(400)
	if d.Equal(a) || d.SubsetOf(a) {
		t.Fatal("content beyond a's range ignored")
	}
}

func TestUnionCloneForEachKey(t *testing.T) {
	a := New(128)
	a.Add(5)
	b := New(128)
	b.Add(90)
	a.UnionWith(b)
	var got []int
	a.ForEach(func(i int) bool { got = append(got, i); return true })
	if len(got) != 2 || got[0] != 5 || got[1] != 90 {
		t.Fatalf("ForEach order: %v", got)
	}
	c := a.Clone()
	c.Add(7)
	if a.Has(7) {
		t.Fatal("Clone aliases the original")
	}
	if a.Key() == c.Key() {
		t.Fatal("different sets share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Fatal("equal sets have different keys")
	}
	if a.String() != "{5 90}" {
		t.Fatalf("String=%q", a.String())
	}
	// Early stop.
	n := 0
	a.ForEach(func(int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("ForEach ignored early stop: %d", n)
	}
}

func TestSetAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200
	s := New(n)
	m := map[int]bool{}
	for step := 0; step < 5000; step++ {
		i := rng.Intn(n)
		if rng.Intn(2) == 0 {
			s.Add(i)
			m[i] = true
		} else {
			s.Remove(i)
			delete(m, i)
		}
	}
	if s.Count() != len(m) {
		t.Fatalf("count %d vs model %d", s.Count(), len(m))
	}
	for i := 0; i < n; i++ {
		if s.Has(i) != m[i] {
			t.Fatalf("element %d: set %v model %v", i, s.Has(i), m[i])
		}
	}
}

func TestIndexer(t *testing.T) {
	ix := NewIndexer([]string{"c", "a", "b", "a"})
	if ix.Len() != 3 {
		t.Fatalf("len=%d", ix.Len())
	}
	// Sorted order.
	for i, want := range []string{"a", "b", "c"} {
		if ix.At(i) != want {
			t.Fatalf("At(%d)=%q want %q", i, ix.At(i), want)
		}
		j, ok := ix.Index(want)
		if !ok || j != i {
			t.Fatalf("Index(%q)=(%d,%v)", want, j, ok)
		}
	}
	if _, ok := ix.Index("zzz"); ok {
		t.Fatal("unknown id indexed")
	}
	s := ix.SetOf("b", "zzz", "a")
	if s.Count() != 2 {
		t.Fatalf("SetOf count=%d", s.Count())
	}
	ids := ix.IDs(s)
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("IDs=%v", ids)
	}
}

func TestIntersectionCount(t *testing.T) {
	a := New(130)
	b := New(130)
	for _, i := range []int{0, 5, 63, 64, 100, 129} {
		a.Add(i)
	}
	for _, i := range []int{5, 64, 99, 129} {
		b.Add(i)
	}
	if got := a.IntersectionCount(b); got != 3 {
		t.Errorf("IntersectionCount = %d, want 3", got)
	}
	if got := b.IntersectionCount(a); got != 3 {
		t.Errorf("IntersectionCount reversed = %d, want 3", got)
	}
	// Different sized ranges: missing words read as empty.
	small := New(8)
	small.Add(5)
	if got := a.IntersectionCount(small); got != 1 {
		t.Errorf("mixed-size IntersectionCount = %d, want 1", got)
	}
	if got := (Set{}).IntersectionCount(a); got != 0 {
		t.Errorf("zero-value IntersectionCount = %d, want 0", got)
	}
}
