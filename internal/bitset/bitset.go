// Package bitset provides the dense bit-vector sets used on the
// exploration hot path. A Set over n indexed elements is a handful of
// machine words instead of a map[ID]bool, so the per-candidate
// cluster/activation/resource sets of the EXPLORE engine cost one
// allocation instead of dozens, and the subset/superset tests that
// drive the binding-memo dominance rule are word-parallel.
//
// Sets carry no element names; an Indexer translates between domain
// identifiers (problem clusters, architecture resources) and the dense
// indices a Set stores. Sets built against the same Indexer are
// directly comparable.
package bitset

import (
	"math/bits"
	"sort"
	"strings"
	"unsafe"
)

// Set is a dense bit vector. The zero value is the empty set over zero
// elements; use New to size one. Methods with a pointer receiver mutate
// the set; all others are read-only and safe for concurrent readers.
type Set struct {
	w []uint64
}

// New returns an empty set sized for indices [0, n).
func New(n int) Set {
	return Set{w: make([]uint64, (n+63)/64)}
}

// Has reports whether index i is in the set. Out-of-range indices are
// reported absent.
func (s Set) Has(i int) bool {
	if i < 0 || i>>6 >= len(s.w) {
		return false
	}
	return s.w[i>>6]&(1<<(uint(i)&63)) != 0
}

// Add inserts index i. It panics if i is outside the sized range, like
// an out-of-bounds slice write.
func (s Set) Add(i int) {
	s.w[i>>6] |= 1 << (uint(i) & 63)
}

// Remove deletes index i (no-op when absent or out of range).
func (s Set) Remove(i int) {
	if i < 0 || i>>6 >= len(s.w) {
		return
	}
	s.w[i>>6] &^= 1 << (uint(i) & 63)
}

// Count returns the number of elements in the set.
func (s Set) Count() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set contains no elements.
func (s Set) Empty() bool {
	for _, w := range s.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether both sets contain the same elements. Sets of
// different sized ranges compare by content (missing words read as 0).
func (s Set) Equal(t Set) bool {
	a, b := s.w, t.w
	if len(a) < len(b) {
		a, b = b, a
	}
	for i, w := range b {
		if a[i] != w {
			return false
		}
	}
	for _, w := range a[len(b):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.w {
		var tw uint64
		if i < len(t.w) {
			tw = t.w[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// IntersectionCount returns |s ∩ t| without materializing the
// intersection.
func (s Set) IntersectionCount(t Set) int {
	n := len(s.w)
	if len(t.w) < n {
		n = len(t.w)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.w[i] & t.w[i])
	}
	return c
}

// Intersects reports whether s ∩ t is non-empty.
func (s Set) Intersects(t Set) bool {
	n := len(s.w)
	if len(t.w) < n {
		n = len(t.w)
	}
	for i := 0; i < n; i++ {
		if s.w[i]&t.w[i] != 0 {
			return true
		}
	}
	return false
}

// UnionWith adds every element of t to s. The receiver must be sized to
// hold t's largest element.
func (s Set) UnionWith(t Set) {
	for i, w := range t.w {
		s.w[i] |= w
	}
}

// Clear removes every element, keeping the sized range.
func (s Set) Clear() {
	for i := range s.w {
		s.w[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{w: make([]uint64, len(s.w))}
	copy(c.w, s.w)
	return c
}

// ForEach calls fn for every element in ascending index order until fn
// returns false.
func (s Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi<<6 | b) {
				return
			}
			w &= w - 1
		}
	}
}

// Key returns the set's content as a compact string usable as a map
// key: sets that Equal (over the same sized range) share the key. The
// string is raw words, not printable; use String for debugging.
func (s Set) Key() string {
	if len(s.w) == 0 {
		return ""
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&s.w[0])), len(s.w)*8)
	return string(b)
}

// String renders the member indices, e.g. "{1 5 9}".
func (s Set) String() string {
	var parts []string
	s.ForEach(func(i int) bool {
		parts = append(parts, itoa(i))
		return true
	})
	return "{" + strings.Join(parts, " ") + "}"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// Indexer assigns dense indices to a fixed universe of identifiers, in
// the sorted order of the identifiers, so iterating a Set in index
// order visits IDs in their natural order. It is immutable after New
// and safe for concurrent use.
type Indexer[K interface {
	comparable
	~string
}] struct {
	ids []K
	pos map[K]int
}

// NewIndexer builds an indexer over the given identifiers (duplicates
// collapse). Indices follow the sorted identifier order.
func NewIndexer[K interface {
	comparable
	~string
}](ids []K) *Indexer[K] {
	uniq := make([]K, 0, len(ids))
	seen := make(map[K]bool, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	sort.Slice(uniq, func(a, b int) bool { return uniq[a] < uniq[b] })
	ix := &Indexer[K]{ids: uniq, pos: make(map[K]int, len(uniq))}
	for i, id := range uniq {
		ix.pos[id] = i
	}
	return ix
}

// Len returns the universe size.
func (ix *Indexer[K]) Len() int { return len(ix.ids) }

// Index returns the dense index of id and whether id is in the
// universe.
func (ix *Indexer[K]) Index(id K) (int, bool) {
	i, ok := ix.pos[id]
	return i, ok
}

// At returns the identifier at index i.
func (ix *Indexer[K]) At(i int) K { return ix.ids[i] }

// SetOf builds a set containing the given identifiers; unknown
// identifiers are ignored.
func (ix *Indexer[K]) SetOf(ids ...K) Set {
	s := New(len(ix.ids))
	for _, id := range ids {
		if i, ok := ix.pos[id]; ok {
			s.Add(i)
		}
	}
	return s
}

// IDs returns the identifiers of the set's members, in sorted order.
func (ix *Indexer[K]) IDs(s Set) []K {
	out := make([]K, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, ix.ids[i])
		return true
	})
	return out
}
