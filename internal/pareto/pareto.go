// Package pareto provides the multi-objective optimization utilities of
// the reproduction: dominance, a Pareto-front archive, and quality
// indicators (2-D hypervolume and set coverage).
//
// The paper's MOP minimizes the two objectives c_impl(α(t)) and
// 1/f_impl(α(t)) simultaneously; a design point is Pareto-optimal iff no
// other design point is better in all objectives (Fig. 4). Objective
// vectors here are always minimized.
package pareto

import (
	"math"
	"sort"
)

// Dominates reports whether objective vector a dominates b (both
// minimized): a is no worse in every component and strictly better in
// at least one. Vectors must have equal length; mismatched vectors are
// never comparable.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// CostFlexObjectives converts the paper's two criteria into a minimized
// objective vector (c_impl, 1/f_impl). Zero flexibility maps to +Inf,
// matching the intuition that an implementation realizing no behaviour
// is infinitely bad on the flexibility axis.
func CostFlexObjectives(cost, flexibility float64) []float64 {
	inv := math.Inf(1)
	if flexibility > 0 {
		inv = 1 / flexibility
	}
	return []float64{cost, inv}
}

// Entry couples an objective vector with an arbitrary payload (an
// implementation, an allocation, ...).
type Entry struct {
	Objectives []float64
	Value      any
}

// Front is an archive of mutually non-dominated entries. The zero value
// is ready to use.
type Front struct {
	entries []*Entry
}

// Add inserts the entry unless it is dominated by (or exactly equal in
// objectives to) an archived entry; entries the newcomer dominates are
// removed. It reports whether the entry was inserted.
func (f *Front) Add(e *Entry) bool {
	keep := f.entries[:0]
	for _, old := range f.entries {
		if Dominates(old.Objectives, e.Objectives) || equal(old.Objectives, e.Objectives) {
			// Newcomer dominated or duplicate: archive unchanged (old
			// entries before keep-slot compaction are all retained).
			return false
		}
		if !Dominates(e.Objectives, old.Objectives) {
			keep = append(keep, old)
		}
	}
	f.entries = append(keep, e)
	return true
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds every entry of other into f — in other's archive order,
// i.e. the insertion order of its surviving entries — and reports how
// many were inserted. Entry pointers are shared, not copied.
//
// Merge is the archive-level fold of a partitioned insertion sequence,
// with two algebraic guarantees the batched parallel explorer builds
// on (both pinned by property tests):
//
//   - Partition exactness: splitting any Add sequence into contiguous
//     chunks, archiving each chunk separately and merging the chunk
//     archives in chunk order yields exactly the front of the unsplit
//     sequence — same objective vectors AND same representative
//     entries at equal-objective ties, because Add keeps the first of
//     equals and the archive preserves insertion order.
//   - Order independence: the final set of objective vectors is the
//     non-dominated subset of the union, so merging archives in any
//     order (associatively or commuted) yields the same vectors; only
//     the representatives at exact ties follow the merge order.
func (f *Front) Merge(other *Front) int {
	if other == nil {
		return 0
	}
	inserted := 0
	for _, e := range other.entries {
		if f.Add(e) {
			inserted++
		}
	}
	return inserted
}

// Size returns the number of archived entries.
func (f *Front) Size() int { return len(f.entries) }

// Entries returns the archived entries sorted lexicographically by
// objective vector.
func (f *Front) Entries() []*Entry {
	out := append([]*Entry(nil), f.entries...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Objectives, out[j].Objectives
		for k := range a {
			if k >= len(b) {
				return false
			}
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// DominatesPoint reports whether some archived entry dominates or
// equals the given objective vector — i.e. whether the point is
// redundant with respect to the front.
func (f *Front) DominatesPoint(obj []float64) bool {
	for _, e := range f.entries {
		if Dominates(e.Objectives, obj) || equal(e.Objectives, obj) {
			return true
		}
	}
	return false
}

// Hypervolume2D computes the hypervolume indicator of a 2-D front with
// respect to a reference point (both objectives minimized; the
// reference must be dominated by every entry for the result to be
// meaningful). Entries with any objective at or beyond the reference
// contribute nothing.
func Hypervolume2D(f *Front, ref [2]float64) float64 {
	var pts [][2]float64
	for _, e := range f.entries {
		if len(e.Objectives) != 2 {
			continue
		}
		x, y := e.Objectives[0], e.Objectives[1]
		if x >= ref[0] || y >= ref[1] || math.IsInf(x, 0) || math.IsInf(y, 0) {
			continue
		}
		pts = append(pts, [2]float64{x, y})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i][0] != pts[j][0] {
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	hv := 0.0
	prevY := ref[1]
	for _, p := range pts {
		if p[1] < prevY {
			hv += (ref[0] - p[0]) * (prevY - p[1])
			prevY = p[1]
		}
	}
	return hv
}

// Coverage returns the coverage indicator C(A, B): the fraction of
// entries of B that are dominated by or equal to at least one entry of
// A. C(A,B) = 1 means A completely covers B. An empty B yields 0.
func Coverage(a, b *Front) float64 {
	if b.Size() == 0 {
		return 0
	}
	covered := 0
	for _, eb := range b.entries {
		for _, ea := range a.entries {
			if Dominates(ea.Objectives, eb.Objectives) || equal(ea.Objectives, eb.Objectives) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(b.Size())
}

// AdditiveEpsilon computes the additive ε-indicator ε(A, B): the
// smallest ε such that every point of B is weakly dominated by some
// point of A shifted by ε in every objective. ε(A, B) = 0 iff A covers
// B; smaller is better. Infinite objectives are skipped on both sides.
func AdditiveEpsilon(a, b *Front) float64 {
	worst := 0.0
	for _, eb := range b.entries {
		best := math.Inf(1)
		for _, ea := range a.entries {
			// Smallest shift making ea weakly dominate eb.
			if len(ea.Objectives) != len(eb.Objectives) {
				continue
			}
			shift := 0.0
			ok := true
			for k := range ea.Objectives {
				if math.IsInf(ea.Objectives[k], 0) || math.IsInf(eb.Objectives[k], 0) {
					ok = false
					break
				}
				if d := ea.Objectives[k] - eb.Objectives[k]; d > shift {
					shift = d
				}
			}
			if ok && shift < best {
				best = shift
			}
		}
		if !math.IsInf(best, 1) && best > worst {
			worst = best
		}
	}
	return worst
}
