package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false},
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{2, 1}, []float64{1, 2}, false},
		{[]float64{1}, []float64{1, 2}, false},
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: Dominates(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestCostFlexObjectives(t *testing.T) {
	obj := CostFlexObjectives(100, 2)
	if obj[0] != 100 || obj[1] != 0.5 {
		t.Errorf("objectives = %v, want [100 0.5]", obj)
	}
	if !math.IsInf(CostFlexObjectives(100, 0)[1], 1) {
		t.Error("zero flexibility should map to +Inf")
	}
}

// TestFig4ParetoPoints mirrors the Fig. 4 situation: four Pareto-optimal
// points on a cost vs 1/flexibility trade-off curve plus dominated
// points that must be pruned.
func TestFig4ParetoPoints(t *testing.T) {
	f := &Front{}
	pts := [][2]float64{ // (cost, flex)
		{100, 2}, {120, 3}, {230, 4}, {430, 8}, // Pareto
		{150, 2}, {240, 3}, {500, 8}, // dominated
	}
	for _, p := range pts {
		f.Add(&Entry{Objectives: CostFlexObjectives(p[0], p[1]), Value: p})
	}
	if f.Size() != 4 {
		t.Fatalf("front size = %d, want 4", f.Size())
	}
	es := f.Entries()
	wantCosts := []float64{100, 120, 230, 430}
	for i, e := range es {
		if e.Objectives[0] != wantCosts[i] {
			t.Errorf("entry %d cost = %v, want %v", i, e.Objectives[0], wantCosts[i])
		}
	}
}

func TestFrontAddSemantics(t *testing.T) {
	f := &Front{}
	if !f.Add(&Entry{Objectives: []float64{2, 2}}) {
		t.Error("first add should succeed")
	}
	if f.Add(&Entry{Objectives: []float64{2, 2}}) {
		t.Error("duplicate objectives should be rejected")
	}
	if f.Add(&Entry{Objectives: []float64{3, 3}}) {
		t.Error("dominated entry should be rejected")
	}
	if !f.Add(&Entry{Objectives: []float64{1, 3}}) {
		t.Error("incomparable entry should be accepted")
	}
	if !f.Add(&Entry{Objectives: []float64{1, 1}}) {
		t.Error("dominating entry should be accepted")
	}
	if f.Size() != 1 {
		t.Errorf("front size = %d, want 1 after a fully dominating insert", f.Size())
	}
	if !f.DominatesPoint([]float64{1, 1}) || !f.DominatesPoint([]float64{5, 5}) {
		t.Error("DominatesPoint misbehaves for covered points")
	}
	if f.DominatesPoint([]float64{0.5, 2}) {
		t.Error("DominatesPoint misbehaves for uncovered point")
	}
}

func TestHypervolume2D(t *testing.T) {
	f := &Front{}
	f.Add(&Entry{Objectives: []float64{1, 3}})
	f.Add(&Entry{Objectives: []float64{2, 2}})
	f.Add(&Entry{Objectives: []float64{3, 1}})
	ref := [2]float64{4, 4}
	// Areas: (4-1)*(4-3)=3, (4-2)*(3-2)=2, (4-3)*(2-1)=1 → 6
	if got := Hypervolume2D(f, ref); got != 6 {
		t.Errorf("hypervolume = %v, want 6", got)
	}
	// Points beyond the reference contribute nothing.
	f.Add(&Entry{Objectives: []float64{0.5, 5}})
	if got := Hypervolume2D(f, ref); got != 6 {
		t.Errorf("hypervolume with out-of-ref point = %v, want 6", got)
	}
	if got := Hypervolume2D(&Front{}, ref); got != 0 {
		t.Errorf("empty front hypervolume = %v, want 0", got)
	}
}

func TestCoverage(t *testing.T) {
	a, b := &Front{}, &Front{}
	a.Add(&Entry{Objectives: []float64{1, 1}})
	b.Add(&Entry{Objectives: []float64{2, 2}})
	b.Add(&Entry{Objectives: []float64{0.5, 3}})
	if got := Coverage(a, b); got != 0.5 {
		t.Errorf("Coverage = %v, want 0.5 (only (2,2) is covered)", got)
	}
	if got := Coverage(a, &Front{}); got != 0 {
		t.Errorf("Coverage of empty = %v, want 0", got)
	}
	if got := Coverage(b, a); got != 0 {
		t.Errorf("Coverage(b,a) = %v, want 0 (nothing in b dominates (1,1))", got)
	}
	c := &Front{}
	c.Add(&Entry{Objectives: []float64{0.5, 0.5}})
	if got := Coverage(c, a); got != 1 {
		t.Errorf("Coverage(c,a) = %v, want 1", got)
	}
}

// Property: the archive never holds two entries where one dominates the
// other, and every rejected point is dominated-or-equal.
func TestPropFrontInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := &Front{}
		for k := 0; k < 60; k++ {
			obj := []float64{float64(rng.Intn(10)), float64(rng.Intn(10))}
			added := f.Add(&Entry{Objectives: obj})
			if !added && !f.DominatesPoint(obj) {
				return false
			}
		}
		es := f.Entries()
		for i := range es {
			for j := range es {
				if i != j && Dominates(es[i].Objectives, es[j].Objectives) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: hypervolume never decreases as points are added.
func TestPropHypervolumeMonotone(t *testing.T) {
	ref := [2]float64{100, 100}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := &Front{}
		prev := 0.0
		for k := 0; k < 40; k++ {
			obj := []float64{1 + 98*rng.Float64(), 1 + 98*rng.Float64()}
			f.Add(&Entry{Objectives: obj})
			hv := Hypervolume2D(f, ref)
			if hv+1e-9 < prev {
				return false
			}
			prev = hv
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: insertion order does not change the resulting front.
func TestPropOrderIndependence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var objs [][]float64
		for k := 0; k < 30; k++ {
			objs = append(objs, []float64{float64(rng.Intn(8)), float64(rng.Intn(8))})
		}
		f1 := &Front{}
		for _, o := range objs {
			f1.Add(&Entry{Objectives: o})
		}
		rng.Shuffle(len(objs), func(i, j int) { objs[i], objs[j] = objs[j], objs[i] })
		f2 := &Front{}
		for _, o := range objs {
			f2.Add(&Entry{Objectives: o})
		}
		e1, e2 := f1.Entries(), f2.Entries()
		if len(e1) != len(e2) {
			return false
		}
		for i := range e1 {
			if e1[i].Objectives[0] != e2[i].Objectives[0] || e1[i].Objectives[1] != e2[i].Objectives[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFrontAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	objs := make([][]float64, 1000)
	for i := range objs {
		objs[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &Front{}
		for _, o := range objs {
			f.Add(&Entry{Objectives: o})
		}
	}
}

func TestAdditiveEpsilon(t *testing.T) {
	a, b := &Front{}, &Front{}
	a.Add(&Entry{Objectives: []float64{1, 1}})
	b.Add(&Entry{Objectives: []float64{1, 1}})
	if got := AdditiveEpsilon(a, b); got != 0 {
		t.Errorf("identical fronts: eps = %v, want 0", got)
	}
	b2 := &Front{}
	b2.Add(&Entry{Objectives: []float64{0.5, 2}})
	// a = (1,1): shift needed to cover (0.5,2): max(1-0.5, 1-2) = 0.5.
	if got := AdditiveEpsilon(a, b2); got != 0.5 {
		t.Errorf("eps = %v, want 0.5", got)
	}
	// Covering front has eps 0 against anything it dominates.
	c := &Front{}
	c.Add(&Entry{Objectives: []float64{0, 0}})
	if got := AdditiveEpsilon(c, b2); got != 0 {
		t.Errorf("dominating front eps = %v, want 0", got)
	}
	if got := AdditiveEpsilon(a, &Front{}); got != 0 {
		t.Errorf("empty B: eps = %v, want 0", got)
	}
}
